/**
 * @file
 * Cross-engine differential tests: the step-walking and EventQueue
 * replay engines must be indistinguishable -- same end cycles, same
 * stat counters, same ECC/RAS accounting, and the same Device command
 * stream command-by-command. Every design runs every quick benchmark
 * query under both engines; chipkill-at-cycle-T fault runs are
 * included so the comparison covers RAS retries and retirement, and
 * telemetry-on-vs-off cycle identity is pinned under the event engine.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "src/imdb/executor.hh"
#include "src/imdb/query.hh"
#include "src/sim/system.hh"
#include "src/sim/table_cache.hh"

namespace sam {
namespace {

SimConfig
smallConfig()
{
    SimConfig cfg;
    cfg.taRecords = 1024;
    cfg.tbRecords = 2048;
    cfg.collectStatsText = false;
    return cfg;
}

std::vector<Query>
allBenchmarkQueries()
{
    std::vector<Query> queries = benchmarkQQueries();
    const auto qs = benchmarkQsQueries();
    queries.insert(queries.end(), qs.begin(), qs.end());
    return queries;
}

/**
 * Shared pre-encoded table snapshots: every runUnder() System starts
 * from identical bytes, and the suite does not pay a full table encode
 * per (design, query, engine) combination.
 */
std::shared_ptr<TableCache>
sharedTables()
{
    static auto cache = std::make_shared<TableCache>(1);
    return cache;
}

/**
 * Run one query on a fresh System under the given engine, with the
 * full command trace captured. Fresh per call: RAS error logs and
 * fault-injector state accumulate inside a System, and a fair diff
 * needs both engines to start from the same state.
 */
RunStats
runUnder(SimConfig cfg, ReplayEngineKind engine, const Query &query)
{
    cfg.engine = engine;
    cfg.telemetry.enabled = true;
    cfg.telemetry.commandTrace = true;
    System sys(cfg, sharedTables());
    return sys.runQuery(query);
}

std::string
describeCommand(const Command &c)
{
    return c.str();
}

void
expectSameCommandStream(const RunStats &step, const RunStats &event,
                        const std::string &label)
{
    ASSERT_NE(step.telemetry, nullptr) << label;
    ASSERT_NE(event.telemetry, nullptr) << label;
    const std::vector<Command> &a = step.telemetry->commands;
    const std::vector<Command> &b = event.telemetry->commands;
    ASSERT_EQ(a.size(), b.size()) << label << ": command counts differ";
    for (std::size_t i = 0; i < a.size(); ++i) {
        const bool same =
            a[i].kind == b[i].kind && a[i].at == b[i].at &&
            a[i].mode == b[i].mode &&
            a[i].addr.channel == b[i].addr.channel &&
            a[i].addr.rank == b[i].addr.rank &&
            a[i].addr.bankGroup == b[i].addr.bankGroup &&
            a[i].addr.bank == b[i].addr.bank &&
            a[i].addr.row == b[i].addr.row &&
            a[i].addr.column == b[i].addr.column;
        ASSERT_TRUE(same)
            << label << ": command " << i << " diverges: step="
            << describeCommand(a[i])
            << " event=" << describeCommand(b[i]);
    }
}

void
expectSameStats(const RunStats &step, const RunStats &event,
                const std::string &label)
{
    EXPECT_TRUE(step.result == event.result) << label;
    EXPECT_EQ(step.cycles, event.cycles) << label;
    EXPECT_EQ(step.memReads, event.memReads) << label;
    EXPECT_EQ(step.memWrites, event.memWrites) << label;
    EXPECT_EQ(step.strideReads, event.strideReads) << label;
    EXPECT_EQ(step.strideWrites, event.strideWrites) << label;
    EXPECT_EQ(step.activates, event.activates) << label;
    EXPECT_EQ(step.rowHits, event.rowHits) << label;
    EXPECT_EQ(step.rowMisses, event.rowMisses) << label;
    EXPECT_EQ(step.modeSwitches, event.modeSwitches) << label;
    EXPECT_EQ(step.eccCorrectedLines, event.eccCorrectedLines) << label;
    EXPECT_EQ(step.eccUncorrectable, event.eccUncorrectable) << label;
    EXPECT_EQ(step.checkedCommands, event.checkedCommands) << label;
    EXPECT_EQ(step.scrubWritebacks, event.scrubWritebacks) << label;
    EXPECT_EQ(step.readRetries, event.readRetries) << label;
    EXPECT_EQ(step.poisonedReads, event.poisonedReads) << label;
    EXPECT_EQ(step.linesRetired, event.linesRetired) << label;
}

// --------------------------------------------------------------------
// Every design x every benchmark query, both engines
// --------------------------------------------------------------------

class EngineDiffTest : public ::testing::TestWithParam<DesignKind>
{
};

TEST_P(EngineDiffTest, StepAndEventEnginesAreIndistinguishable)
{
    SimConfig cfg = smallConfig();
    cfg.design = GetParam();
    for (const Query &q : allBenchmarkQueries()) {
        const std::string label =
            designName(GetParam()) + " " + q.name;
        const RunStats step =
            runUnder(cfg, ReplayEngineKind::Step, q);
        const RunStats event =
            runUnder(cfg, ReplayEngineKind::Event, q);
        expectSameStats(step, event, label);
        expectSameCommandStream(step, event, label);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllDesigns, EngineDiffTest,
    ::testing::Values(DesignKind::Baseline, DesignKind::RcNvmBit,
                      DesignKind::RcNvmWord, DesignKind::GsDram,
                      DesignKind::GsDramEcc, DesignKind::SamSub,
                      DesignKind::SamIo, DesignKind::SamEn,
                      DesignKind::Ideal),
    [](const ::testing::TestParamInfo<DesignKind> &info) {
        std::string name = designName(info.param);
        std::erase(name, '-');
        return name;
    });

// --------------------------------------------------------------------
// Fault paths: chipkill at cycle T exercises RAS retries, scrub
// writebacks, and retirement under both engines
// --------------------------------------------------------------------

TEST(EngineDiffFaults, ChipkillAtCycleTMatchesAcrossEngines)
{
    SimConfig cfg = smallConfig();
    cfg.design = DesignKind::SamEn;
    cfg.faults.model = FaultModel::Chipkill;
    // Cycle 50 lands mid-query at this table scale: reads before it
    // are clean, everything after reconstructs the dead chip.
    cfg.faults.chipkillAt = 50;
    cfg.faults.chipkillChip = 5;
    const Query q = benchmarkQQueries()[2];
    const RunStats step = runUnder(cfg, ReplayEngineKind::Step, q);
    const RunStats event = runUnder(cfg, ReplayEngineKind::Event, q);
    expectSameStats(step, event, "chipkill@50");
    expectSameCommandStream(step, event, "chipkill@50");
    // The fault actually fired -- the diff covered the RAS read path.
    EXPECT_GT(event.eccCorrectedLines + event.eccUncorrectable, 0u);
}

TEST(EngineDiffFaults, TransientFaultsMatchAcrossEngines)
{
    SimConfig cfg = smallConfig();
    cfg.design = DesignKind::GsDramEcc;
    cfg.faults.model = FaultModel::Transient;
    const Query q = benchmarkQQueries()[0];
    const RunStats step = runUnder(cfg, ReplayEngineKind::Step, q);
    const RunStats event = runUnder(cfg, ReplayEngineKind::Event, q);
    expectSameStats(step, event, "transient");
    expectSameCommandStream(step, event, "transient");
}

// --------------------------------------------------------------------
// Telemetry must be a pure observer: enabling it cannot move cycles
// under the event engine (satellite 4 pin)
// --------------------------------------------------------------------

TEST(EngineDiffTelemetry, TelemetryOnVsOffIsCycleIdenticalUnderEvent)
{
    SimConfig base = smallConfig();
    base.design = DesignKind::SamEn;
    base.engine = ReplayEngineKind::Event;
    for (const Query &q : allBenchmarkQueries()) {
        SimConfig on = base;
        on.telemetry.enabled = true;
        on.telemetry.commandTrace = true;
        SimConfig off = base;
        off.telemetry.enabled = false;
        System sysOn(on);
        System sysOff(off);
        const RunStats rOn = sysOn.runQuery(q);
        const RunStats rOff = sysOff.runQuery(q);
        expectSameStats(rOn, rOff, "telemetry on/off " + q.name);
        EXPECT_EQ(rOff.telemetry, nullptr);
    }
}

} // namespace
} // namespace sam
