/**
 * @file
 * Address-mapping property tests across geometry presets. The basic
 * decompose/compose behaviour on the paper's default geometry is pinned
 * in test_controller.cc; this file checks the properties hold on every
 * plausible geometry (multi-channel, single-rank, wide/narrow bank
 * configurations) and the stride-gather aliasing guarantees the SAM
 * designs rely on: a gather group never crosses a bank, the Figure 10
 * remap is a bijection within its group, and distinct groups never
 * alias.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "src/common/random.hh"
#include "src/common/types.hh"
#include "src/controller/address_mapping.hh"
#include "src/dram/timing.hh"

namespace sam {
namespace {

struct GeometryPreset
{
    const char *name;
    Geometry geom;
};

std::vector<GeometryPreset>
presets()
{
    std::vector<GeometryPreset> out;
    out.push_back({"paper_default", Geometry{}});

    Geometry two_channel;
    two_channel.channels = 2;
    out.push_back({"two_channel", two_channel});

    Geometry four_channel_one_rank;
    four_channel_one_rank.channels = 4;
    four_channel_one_rank.ranks = 1;
    out.push_back({"four_channel_one_rank", four_channel_one_rank});

    Geometry wide_groups;
    wide_groups.bankGroups = 8;
    wide_groups.banksPerGroup = 2;
    out.push_back({"wide_groups", wide_groups});

    Geometry tall_banks;
    tall_banks.bankGroups = 2;
    tall_banks.banksPerGroup = 8;
    tall_banks.ranks = 4;
    out.push_back({"tall_banks", tall_banks});

    return out;
}

class PresetMappingTest
    : public ::testing::TestWithParam<GeometryPreset>
{
  protected:
    const Geometry &geom() const { return GetParam().geom; }
};

TEST_P(PresetMappingTest, DecomposeComposeRoundTrip)
{
    const AddressMapping map(geom());
    Rng rng(11);
    for (int i = 0; i < 2000; ++i) {
        const Addr addr =
            (rng.next() % geom().capacityBytes()) & ~Addr{63};
        const MappedAddr m = map.decompose(addr);
        EXPECT_EQ(map.compose(m), addr);
    }
}

TEST_P(PresetMappingTest, CoordinatesStayInRange)
{
    const AddressMapping map(geom());
    Rng rng(12);
    for (int i = 0; i < 2000; ++i) {
        const Addr addr = rng.next() % geom().capacityBytes();
        const MappedAddr m = map.decompose(addr);
        EXPECT_LT(m.channel, geom().channels);
        EXPECT_LT(m.rank, geom().ranks);
        EXPECT_LT(m.bankGroup, geom().bankGroups);
        EXPECT_LT(m.bank, geom().banksPerGroup);
        EXPECT_LT(m.column, geom().linesPerRow());
        EXPECT_LT(m.row, geom().rowsPerBank);
        EXPECT_LT(m.flatBank(geom()), geom().totalBanks());
    }
}

TEST_P(PresetMappingTest, FieldWidthsCoverTheCapacityExactly)
{
    const AddressMapping map(geom());
    const unsigned total = map.offsetBits() + map.columnBits() +
                           map.channelBits() + map.bankBits() +
                           map.groupBits() + map.rankBits();
    // row bits on top of this must span the capacity exactly.
    EXPECT_EQ((Addr{geom().rowsPerBank} << total),
              geom().capacityBytes());
}

TEST_P(PresetMappingTest, DistinctCoordinatesComposeToDistinctAddrs)
{
    const AddressMapping map(geom());
    Rng rng(13);
    std::set<Addr> seen;
    std::set<std::string> coords;
    for (int i = 0; i < 1500; ++i) {
        const Addr addr =
            (rng.next() % geom().capacityBytes()) & ~Addr{63};
        const MappedAddr m = map.decompose(addr);
        const std::string key =
            std::to_string(m.channel) + "." + std::to_string(m.rank) +
            "." + std::to_string(m.bankGroup) + "." +
            std::to_string(m.bank) + "." + std::to_string(m.row) + "." +
            std::to_string(m.column);
        // A new address must decompose to new coordinates and back.
        EXPECT_EQ(seen.insert(addr).second, coords.insert(key).second);
    }
}

TEST_P(PresetMappingTest, StrideRemapIsAnInvolutionEverywhere)
{
    const AddressMapping map(geom());
    Rng rng(14);
    for (unsigned unit : {8u, 16u, 32u}) {
        const unsigned g = 64 / unit;
        for (int i = 0; i < 400; ++i) {
            const Addr v = rng.next() % geom().capacityBytes();
            EXPECT_EQ(map.strideUnmap(map.strideRemap(v, g, unit), g,
                                      unit),
                      v);
        }
    }
}

TEST_P(PresetMappingTest, StrideRemapPermutesChunksWithinTheGroup)
{
    // Figure 10's bit swap must be a bijection on the chunk addresses
    // of one G-line gather group: nothing leaves the group, nothing
    // collides inside it.
    const AddressMapping map(geom());
    for (unsigned unit : {8u, 16u, 32u}) {
        const unsigned g = 64 / unit;
        const Addr group_bytes = Addr{g} * kCachelineBytes;
        const Addr base = Addr{3} << 16;
        std::set<Addr> images;
        for (Addr chunk = 0; chunk < group_bytes; chunk += unit) {
            const Addr p = map.strideRemap(base + chunk, g, unit);
            EXPECT_GE(p, base);
            EXPECT_LT(p, base + group_bytes);
            EXPECT_EQ(p % unit, 0u);
            EXPECT_TRUE(images.insert(p).second) << "collision at "
                                                 << chunk;
        }
        EXPECT_EQ(images.size(), group_bytes / unit);
    }
}

TEST_P(PresetMappingTest, StrideGatherNeverCrossesABank)
{
    // Every line of a gather plan must live in the same row of the
    // same bank: an sload costs one activation, never a cross-bank
    // (or worse, cross-channel) scatter.
    const AddressMapping map(geom());
    Rng rng(15);
    for (unsigned unit : {8u, 16u, 32u}) {
        const unsigned g = 64 / unit;
        const Addr group_bytes = Addr{g} * kCachelineBytes;
        for (int i = 0; i < 300; ++i) {
            const Addr group =
                (rng.next() % geom().capacityBytes()) / group_bytes *
                group_bytes;
            const unsigned vline = static_cast<unsigned>(rng.below(g));
            const auto plan = map.strideGather(
                group + vline * kCachelineBytes, g, unit);
            ASSERT_EQ(plan.lines.size(), g);
            EXPECT_EQ(plan.sector, vline);
            const MappedAddr first = map.decompose(plan.lines[0]);
            for (const Addr line : plan.lines) {
                const MappedAddr m = map.decompose(line);
                EXPECT_TRUE(m.sameRow(first))
                    << GetParam().name << " unit " << unit;
                EXPECT_EQ(m.channel, first.channel);
            }
        }
    }
}

TEST_P(PresetMappingTest, DistinctGatherGroupsNeverAlias)
{
    // Plans of different gather groups must touch disjoint line sets;
    // plans of different virtual lines in the *same* group touch the
    // same lines at different sectors.
    const AddressMapping map(geom());
    const unsigned unit = 8, g = 8;
    const Addr group_bytes = Addr{g} * kCachelineBytes;
    const Addr base = Addr{5} << 14;

    std::set<Addr> all_lines;
    for (unsigned grp = 0; grp < 16; ++grp) {
        const Addr group = base + grp * group_bytes;
        std::set<Addr> group_lines;
        std::set<unsigned> sectors;
        for (unsigned vline = 0; vline < g; ++vline) {
            const auto plan = map.strideGather(
                group + vline * kCachelineBytes, g, unit);
            group_lines.insert(plan.lines.begin(), plan.lines.end());
            sectors.insert(plan.sector);
        }
        // One group's plans reuse exactly its own g lines...
        EXPECT_EQ(group_lines.size(), g);
        EXPECT_EQ(sectors.size(), g); // ...one sector per virtual line
        for (const Addr line : group_lines) {
            EXPECT_TRUE(all_lines.insert(line).second)
                << "group " << grp << " aliases an earlier group";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllPresets, PresetMappingTest, ::testing::ValuesIn(presets()),
    [](const auto &info) { return std::string(info.param.name); });

} // namespace
} // namespace sam
