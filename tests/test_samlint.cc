/**
 * @file
 * samlint engine tests: each check fires on its bad fixture and stays
 * quiet on the matching ok fixture; NOLINT suppression and the
 * include-graph surface walk behave as documented.
 */

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tools/samlint/checks.hh"
#include "tools/samlint/lexer.hh"

namespace {

using samlint::Finding;
using samlint::LintOptions;
using samlint::SourceFile;

std::string
fixture(const std::string &name)
{
    return std::string(SAM_SOURCE_DIR) + "/tools/samlint/fixtures/" +
           name;
}

SourceFile
lexFixture(const std::string &name)
{
    return samlint::lexFile(fixture(name),
                            "tools/samlint/fixtures/" + name);
}

std::vector<Finding>
runOn(std::vector<SourceFile> files, const std::string &check = "")
{
    LintOptions opt;
    opt.allSurface = true;
    if (!check.empty())
        opt.checks.push_back(check);
    return samlint::runChecks(files, opt);
}

std::set<std::string>
checksIn(const std::vector<Finding> &fs)
{
    std::set<std::string> out;
    for (const Finding &f : fs)
        out.insert(f.check);
    return out;
}

TEST(SamLintDeterminism, FlagsAmbientSourcesAndHashOrder)
{
    const auto fs = runOn({lexFixture("determinism_bad.cc")},
                          "sam-determinism");
    ASSERT_FALSE(fs.empty());
    EXPECT_EQ(checksIn(fs),
              std::set<std::string>{"sam-determinism"});
    const auto mentions = [&](const std::string &needle) {
        return std::any_of(fs.begin(), fs.end(),
                           [&](const Finding &f) {
                               return f.message.find(needle) !=
                                      std::string::npos;
                           });
    };
    EXPECT_TRUE(mentions("rand"));
    EXPECT_TRUE(mentions("steady_clock"));
    EXPECT_TRUE(mentions("system_clock"));
    EXPECT_TRUE(mentions("this_thread"));
    EXPECT_TRUE(mentions("getenv"));
    EXPECT_TRUE(mentions("hash order"));
    EXPECT_TRUE(mentions("keyed by pointer"));
}

TEST(SamLintDeterminism, KeyedAccessAndNolintAreClean)
{
    EXPECT_TRUE(runOn({lexFixture("determinism_ok.cc")},
                      "sam-determinism")
                    .empty());
}

TEST(SamLintDeterminism, EventQueueOrdersByIntegersNotPointersOrHash)
{
    // The production replay EventQueue: its heap key is only the
    // (cycle, source, seq) integers, so the determinism check must
    // stay quiet on the real header...
    const SourceFile real = samlint::lexFile(
        std::string(SAM_SOURCE_DIR) + "/src/sim/event_queue.hh",
        "src/sim/event_queue.hh");
    EXPECT_TRUE(runOn({real}, "sam-determinism").empty());

    // ...and fire on the anti-fixture that orders the same events by
    // allocation address and walks hash order for the minimum.
    const auto fs = runOn({lexFixture("event_queue_bad.cc")},
                          "sam-determinism");
    ASSERT_FALSE(fs.empty());
    const auto mentions = [&](const std::string &needle) {
        return std::any_of(fs.begin(), fs.end(),
                           [&](const Finding &f) {
                               return f.message.find(needle) !=
                                      std::string::npos;
                           });
    };
    EXPECT_TRUE(mentions("keyed by pointer"));
    EXPECT_TRUE(mentions("hash order"));
}

TEST(SamLintCycle, FlagsForeignMutationAndClockDomainMix)
{
    const auto fs = runOn({lexFixture("engine/state.hh"),
                           lexFixture("engine/state.cc"),
                           lexFixture("cycle_bad.cc")},
                          "sam-cycle-accounting");
    // Assign + compound-assign + wall comparison in cycle_bad.cc;
    // nothing in the declaring directory's own mutator.
    ASSERT_EQ(fs.size(), 3u);
    for (const Finding &f : fs)
        EXPECT_EQ(f.path, "tools/samlint/fixtures/cycle_bad.cc");
    EXPECT_NE(fs[2].message.find("clock domains"), std::string::npos);
}

TEST(SamLintCycle, ReadsAndSameDirMutationsAreClean)
{
    EXPECT_TRUE(runOn({lexFixture("engine/state.hh"),
                       lexFixture("engine/state.cc"),
                       lexFixture("cycle_ok.cc")},
                      "sam-cycle-accounting")
                    .empty());
}

TEST(SamLintObserver, FlagsUnpairedAttachAndDeviceReachBack)
{
    const auto fs = runOn({lexFixture("observer_bad.cc")},
                          "sam-observer-discipline");
    ASSERT_EQ(fs.size(), 2u);
    EXPECT_NE(fs[0].message.find("removeCommandObserver"),
              std::string::npos);
    EXPECT_NE(fs[1].message.find("reaches back"), std::string::npos);
}

TEST(SamLintObserver, PairedRecordOnlyObserverIsClean)
{
    EXPECT_TRUE(runOn({lexFixture("observer_ok.cc")},
                      "sam-observer-discipline")
                    .empty());
}

TEST(SamLintLocking, FlagsRawStdPrimitives)
{
    const auto fs =
        runOn({lexFixture("locking_bad.cc")}, "sam-locking");
    ASSERT_FALSE(fs.empty());
    for (const Finding &f : fs)
        EXPECT_NE(f.message.find("sam::Mutex"), std::string::npos);
}

TEST(SamLintLocking, AnnotatedWrappersAreClean)
{
    EXPECT_TRUE(
        runOn({lexFixture("locking_ok.cc")}, "sam-locking").empty());
}

TEST(SamLintCodec, FlagsDirectConstructionAndOwnership)
{
    const auto fs = runOn({lexFixture("codec_bad.cc")},
                          "sam-codec-construction");
    // Global instance, optional<> member, unique_ptr<> member, local,
    // make_unique, and a GF256 instance declaration.
    ASSERT_EQ(fs.size(), 6u);
    EXPECT_EQ(checksIn(fs),
              std::set<std::string>{"sam-codec-construction"});
    EXPECT_NE(fs[0].message.find("CodecRegistry::reedSolomon"),
              std::string::npos);
    EXPECT_NE(fs.back().message.find("GF256"), std::string::npos);
}

TEST(SamLintCodec, BorrowedReferencesAndForwardDeclsAreClean)
{
    EXPECT_TRUE(runOn({lexFixture("codec_ok.cc")},
                      "sam-codec-construction")
                    .empty());
}

TEST(SamLintLexer, NolintSuppressesOnlyNamedCheckOnTargetLine)
{
    const SourceFile f = samlint::lexString(
        "int a; // NOLINT(sam-locking)\n"
        "// NOLINTNEXTLINE(sam-determinism, sam-locking)\n"
        "int b;\n"
        "int c; // NOLINT\n",
        "x.cc");
    EXPECT_TRUE(f.suppressed(1, "sam-locking"));
    EXPECT_FALSE(f.suppressed(1, "sam-determinism"));
    EXPECT_TRUE(f.suppressed(3, "sam-determinism"));
    EXPECT_TRUE(f.suppressed(3, "sam-locking"));
    EXPECT_FALSE(f.suppressed(3, "sam-cycle-accounting"));
    EXPECT_TRUE(f.suppressed(4, "anything"));
    EXPECT_FALSE(f.suppressed(2, "sam-determinism"));
}

TEST(SamLintLexer, StripsLiteralsCommentsAndCapturesIncludes)
{
    const SourceFile f = samlint::lexString(
        "#include \"src/dram/device.hh\"\n"
        "#include <vector>\n"
        "const char *s = \"std::rand()\"; /* std::rand */\n"
        "char c = ':';\n",
        "x.cc");
    ASSERT_EQ(f.includes.size(), 1u);
    EXPECT_EQ(f.includes[0], "src/dram/device.hh");
    for (const samlint::Token &t : f.tokens)
        EXPECT_NE(t.text, "rand");
}

TEST(SamLintSurface, DeterminismOnlyFiresOnReachableFiles)
{
    // runner.cc -> src/sim/core.hh -> (stem pair) src/sim/core.cc,
    // while src/tools_like/offline.cc stays unreachable.
    SourceFile runner = samlint::lexString(
        "#include \"src/sim/core.hh\"\nint main() { return 0; }\n",
        "src/runner/main.cc");
    SourceFile coreHh = samlint::lexString(
        "struct Core { void step(); };\n", "src/sim/core.hh");
    SourceFile coreCc = samlint::lexString(
        "#include \"src/sim/core.hh\"\n"
        "#include <cstdlib>\n"
        "void stepImpl() { (void)std::rand(); }\n",
        "src/sim/core.cc");
    SourceFile offline = samlint::lexString(
        "#include <cstdlib>\n"
        "int offline() { return std::rand(); }\n",
        "src/tools_like/offline.cc");
    LintOptions opt;
    opt.checks.push_back("sam-determinism");
    const auto fs = samlint::runChecks(
        {runner, coreHh, coreCc, offline}, opt);
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs[0].path, "src/sim/core.cc");
}

} // namespace
