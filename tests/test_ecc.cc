/**
 * @file
 * Unit and property tests for the ECC stack: GF(2^8) arithmetic, the
 * Reed-Solomon codec, SEC-DED, and the chipkill ECC engine (including
 * whole-chip failure injection, the paper's reliability argument).
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "src/common/random.hh"
#include "src/common/types.hh"
#include "src/ecc/ecc_engine.hh"
#include "src/ecc/gf256.hh"
#include "src/ecc/reed_solomon.hh"
#include "src/ecc/secded.hh"
#include "tests/golden_ecc_vectors.hh"

namespace sam {
namespace {

// --------------------------------------------------------------------
// GF(2^8)
// --------------------------------------------------------------------

TEST(GF256, AddIsXor)
{
    EXPECT_EQ(GF256::add(0x57, 0x83), 0x57 ^ 0x83);
    EXPECT_EQ(GF256::sub(0x57, 0x83), 0x57 ^ 0x83);
}

/** Independent bitwise (shift-and-reduce) reference multiplier. */
std::uint8_t
refMul(std::uint8_t a, std::uint8_t b)
{
    unsigned acc = 0;
    unsigned aa = a;
    for (unsigned i = 0; i < 8; ++i) {
        if (b & (1u << i))
            acc ^= aa << i;
    }
    for (int d = 14; d >= 8; --d) {
        if (acc & (1u << d))
            acc ^= 0x11du << (d - 8);
    }
    return static_cast<std::uint8_t>(acc);
}

TEST(GF256, KnownProduct)
{
    EXPECT_EQ(GF256::mul(0x02, 0x80), 0x1d); // wraps through poly 0x11d
    EXPECT_EQ(GF256::mul(0x57, 0x83), refMul(0x57, 0x83));
}

TEST(GF256, MatchesBitwiseReferenceExhaustiveSample)
{
    Rng rng(17);
    for (int i = 0; i < 4000; ++i) {
        const auto a = static_cast<std::uint8_t>(rng.below(256));
        const auto b = static_cast<std::uint8_t>(rng.below(256));
        ASSERT_EQ(GF256::mul(a, b), refMul(a, b))
            << "a=" << int(a) << " b=" << int(b);
    }
}

TEST(GF256, MulIdentityAndZero)
{
    for (unsigned a = 0; a < 256; ++a) {
        EXPECT_EQ(GF256::mul(static_cast<std::uint8_t>(a), 1), a);
        EXPECT_EQ(GF256::mul(static_cast<std::uint8_t>(a), 0), 0);
    }
}

TEST(GF256, EveryNonZeroHasInverse)
{
    for (unsigned a = 1; a < 256; ++a) {
        const auto inv = GF256::inv(static_cast<std::uint8_t>(a));
        EXPECT_EQ(GF256::mul(static_cast<std::uint8_t>(a), inv), 1)
            << "a=" << a;
    }
}

TEST(GF256, MulCommutativeAssociativeSample)
{
    Rng rng(3);
    for (int i = 0; i < 500; ++i) {
        const auto a = static_cast<std::uint8_t>(rng.below(256));
        const auto b = static_cast<std::uint8_t>(rng.below(256));
        const auto c = static_cast<std::uint8_t>(rng.below(256));
        EXPECT_EQ(GF256::mul(a, b), GF256::mul(b, a));
        EXPECT_EQ(GF256::mul(GF256::mul(a, b), c),
                  GF256::mul(a, GF256::mul(b, c)));
        // Distributivity over addition.
        EXPECT_EQ(GF256::mul(a, GF256::add(b, c)),
                  GF256::add(GF256::mul(a, b), GF256::mul(a, c)));
    }
}

TEST(GF256, DivInvertsMul)
{
    Rng rng(4);
    for (int i = 0; i < 500; ++i) {
        const auto a = static_cast<std::uint8_t>(rng.below(256));
        const auto b = static_cast<std::uint8_t>(1 + rng.below(255));
        EXPECT_EQ(GF256::div(GF256::mul(a, b), b), a);
    }
}

TEST(GF256, PowMatchesRepeatedMul)
{
    const std::uint8_t a = 0x35;
    std::uint8_t acc = 1;
    for (unsigned n = 0; n < 300; ++n) {
        EXPECT_EQ(GF256::pow(a, n), acc) << "n=" << n;
        acc = GF256::mul(acc, a);
    }
}

TEST(GF256, AlphaOrder255)
{
    // alpha generates the multiplicative group: alpha^255 == 1 and no
    // smaller positive power is 1.
    EXPECT_EQ(GF256::alphaPow(255), 1);
    for (unsigned n = 1; n < 255; ++n)
        EXPECT_NE(GF256::alphaPow(n), 1) << "n=" << n;
}

TEST(GF256, ZeroOperandsPanic)
{
    EXPECT_THROW(GF256::inv(0), std::logic_error);
    EXPECT_THROW(GF256::div(5, 0), std::logic_error);
    EXPECT_THROW(GF256::log(0), std::logic_error);
}

// --------------------------------------------------------------------
// Reed-Solomon
// --------------------------------------------------------------------

std::vector<std::uint8_t>
randomData(Rng &rng, unsigned k)
{
    std::vector<std::uint8_t> data(k);
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.below(256));
    return data;
}

TEST(ReedSolomon, CleanRoundTrip)
{
    const ReedSolomon rs(18, 16);
    Rng rng(1);
    for (int i = 0; i < 50; ++i) {
        auto cw = rs.encode(randomData(rng, 16));
        const auto r = rs.decode(cw);
        EXPECT_EQ(r.status, DecodeStatus::Clean);
    }
}

TEST(ReedSolomon, SscCorrectsAnySingleSymbol)
{
    const ReedSolomon rs(18, 16);
    Rng rng(2);
    for (unsigned pos = 0; pos < 18; ++pos) {
        const auto data = randomData(rng, 16);
        auto cw = rs.encode(data);
        const auto original = cw;
        cw[pos] ^= static_cast<std::uint8_t>(1 + rng.below(255));
        const auto r = rs.decode(cw);
        ASSERT_EQ(r.status, DecodeStatus::Corrected) << "pos=" << pos;
        ASSERT_EQ(r.correctedPositions.size(), 1u);
        EXPECT_EQ(r.correctedPositions[0], pos);
        EXPECT_EQ(cw, original);
    }
}

TEST(ReedSolomon, SscDetectsDoubleSymbolErrors)
{
    const ReedSolomon rs(18, 16); // t = 1
    Rng rng(5);
    int detected = 0;
    const int trials = 200;
    for (int i = 0; i < trials; ++i) {
        auto cw = rs.encode(randomData(rng, 16));
        const unsigned p1 = static_cast<unsigned>(rng.below(18));
        unsigned p2;
        do {
            p2 = static_cast<unsigned>(rng.below(18));
        } while (p2 == p1);
        cw[p1] ^= static_cast<std::uint8_t>(1 + rng.below(255));
        cw[p2] ^= static_cast<std::uint8_t>(1 + rng.below(255));
        const auto r = rs.decode(cw);
        // A t=1 code cannot correct 2 errors; it must not mis-correct
        // into a *valid but wrong* codeword silently claiming success
        // with the original data. Detection is the expected outcome for
        // the vast majority of patterns.
        detected += (r.status == DecodeStatus::Detected);
    }
    EXPECT_GT(detected, trials * 3 / 4);
}

class RsParamTest : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(RsParamTest, CorrectsUpToTErrors)
{
    const auto [n, k] = GetParam();
    const ReedSolomon rs(n, k);
    Rng rng(42 + n);
    for (int trial = 0; trial < 40; ++trial) {
        const auto data = randomData(rng, k);
        auto cw = rs.encode(data);
        const auto original = cw;

        // Inject exactly t errors at distinct positions.
        std::vector<unsigned> positions;
        while (positions.size() < rs.t()) {
            const auto p = static_cast<unsigned>(rng.below(n));
            bool dup = false;
            for (unsigned q : positions)
                dup = dup || q == p;
            if (!dup)
                positions.push_back(p);
        }
        for (unsigned p : positions)
            cw[p] ^= static_cast<std::uint8_t>(1 + rng.below(255));

        const auto r = rs.decode(cw);
        ASSERT_EQ(r.status, DecodeStatus::Corrected);
        EXPECT_EQ(cw, original);
        EXPECT_EQ(r.correctedPositions.size(), rs.t());
    }
}

TEST_P(RsParamTest, DataPrefixIsSystematic)
{
    const auto [n, k] = GetParam();
    const ReedSolomon rs(n, k);
    Rng rng(7);
    const auto data = randomData(rng, k);
    const auto cw = rs.encode(data);
    for (int i = 0; i < k; ++i)
        EXPECT_EQ(cw[i], data[i]);
}

INSTANTIATE_TEST_SUITE_P(
    ChipkillGeometries, RsParamTest,
    ::testing::Values(std::pair{18, 16},   // SSC
                      std::pair{36, 32},   // SSC-DSD carrier
                      std::pair{72, 64},   // large-codeword variant [26]
                      std::pair{255, 223}, // classic deep-space code
                      std::pair{20, 12})); // t = 4 stress

TEST(ReedSolomon, MaxCorrectPolicyDowngradesToDetect)
{
    // RS(36,32) has t = 2; with max_correct = 1 a two-symbol error must
    // be *detected*, matching SSC-DSD correct-one/detect-two.
    const ReedSolomon rs(36, 32);
    Rng rng(9);
    auto cw = rs.encode(randomData(rng, 32));
    cw[3] ^= 0x55;
    cw[17] ^= 0xaa;
    const auto r = rs.decode(cw, 1);
    EXPECT_EQ(r.status, DecodeStatus::Detected);

    // But a single-symbol error is still corrected under the policy.
    auto cw2 = rs.encode(randomData(rng, 32));
    const auto orig2 = cw2;
    cw2[35] ^= 0x0f;
    const auto r2 = rs.decode(cw2, 1);
    EXPECT_EQ(r2.status, DecodeStatus::Corrected);
    EXPECT_EQ(cw2, orig2);
}

TEST(ReedSolomon, RejectsBadGeometry)
{
    EXPECT_THROW(ReedSolomon(16, 16), std::logic_error);
    EXPECT_THROW(ReedSolomon(19, 16), std::logic_error); // odd checks
    EXPECT_THROW(ReedSolomon(300, 200), std::logic_error);
}

// --------------------------------------------------------------------
// SEC-DED
// --------------------------------------------------------------------

TEST(SecDed, CleanWord)
{
    std::uint64_t data = 0x0123456789abcdefULL;
    std::uint8_t check = SecDed::encode(data);
    const auto r = SecDed::decode(data, check);
    EXPECT_EQ(r.status, SecDedResult::Status::Clean);
}

TEST(SecDed, CorrectsEverySingleDataBit)
{
    const std::uint64_t original = 0xfeedfacecafebeefULL;
    const std::uint8_t check = SecDed::encode(original);
    for (int bit = 0; bit < 64; ++bit) {
        std::uint64_t data = original ^ (std::uint64_t{1} << bit);
        std::uint8_t c = check;
        const auto r = SecDed::decode(data, c);
        ASSERT_EQ(r.status, SecDedResult::Status::CorrectedData)
            << "bit=" << bit;
        EXPECT_EQ(r.correctedBit, bit);
        EXPECT_EQ(data, original);
    }
}

TEST(SecDed, CorrectsEverySingleCheckBit)
{
    const std::uint64_t original = 0x5555aaaa3333ccccULL;
    const std::uint8_t check = SecDed::encode(original);
    for (int bit = 0; bit < 8; ++bit) {
        std::uint64_t data = original;
        std::uint8_t c = check ^ static_cast<std::uint8_t>(1u << bit);
        const auto r = SecDed::decode(data, c);
        ASSERT_EQ(r.status, SecDedResult::Status::CorrectedCheck)
            << "bit=" << bit;
        EXPECT_EQ(data, original);
        EXPECT_EQ(c, check);
    }
}

TEST(SecDed, DetectsDoubleBitErrors)
{
    const std::uint64_t original = 0x0011223344556677ULL;
    const std::uint8_t check = SecDed::encode(original);
    Rng rng(21);
    for (int trial = 0; trial < 300; ++trial) {
        const unsigned b1 = static_cast<unsigned>(rng.below(64));
        unsigned b2;
        do {
            b2 = static_cast<unsigned>(rng.below(64));
        } while (b2 == b1);
        std::uint64_t data = original ^ (std::uint64_t{1} << b1) ^
                             (std::uint64_t{1} << b2);
        std::uint8_t c = check;
        const auto r = SecDed::decode(data, c);
        EXPECT_EQ(r.status, SecDedResult::Status::Detected)
            << b1 << "," << b2;
    }
}

// --------------------------------------------------------------------
// EccEngine (rank-level, chip-accurate injection)
// --------------------------------------------------------------------

std::vector<std::uint8_t>
randomLine(Rng &rng)
{
    std::vector<std::uint8_t> line(kCachelineBytes);
    for (auto &b : line)
        b = static_cast<std::uint8_t>(rng.below(256));
    return line;
}

class EccEngineTest : public ::testing::TestWithParam<EccScheme>
{
};

TEST_P(EccEngineTest, EncodeDecodeRoundTrip)
{
    const EccEngine engine(GetParam());
    Rng rng(31);
    const auto line = randomLine(rng);
    auto blob = engine.encodeLine(line);
    EXPECT_EQ(blob.size(), kCachelineBytes + engine.parityBytesPerLine());
    const auto r = engine.decodeLine(blob);
    EXPECT_TRUE(r.clean);
    blob.resize(kCachelineBytes);
    EXPECT_EQ(blob, line);
}

// The backing store materialises absent lines as zeroed blobs, and the
// clean-read shortcut returns them without decoding. That is only
// sound if the all-zero blob is a valid (clean) codeword under every
// scheme -- pin it.
TEST_P(EccEngineTest, AllZeroLineIsACleanCodeword)
{
    const EccEngine engine(GetParam());
    const std::vector<std::uint8_t> zero(kCachelineBytes, 0);
    auto blob = engine.encodeLine(zero);
    for (const std::uint8_t b : blob)
        EXPECT_EQ(b, 0u);
    const auto r = engine.decodeLine(blob);
    EXPECT_TRUE(r.clean);
    EXPECT_FALSE(r.corrected);
    EXPECT_FALSE(r.uncorrectable);
}

// The allocation-free encode used on the simulated write path must
// produce byte-identical blobs to the allocating one.
TEST_P(EccEngineTest, EncodeLineIntoMatchesEncodeLine)
{
    const EccEngine engine(GetParam());
    Rng rng(47);
    for (unsigned trial = 0; trial < 16; ++trial) {
        const auto line = randomLine(rng);
        const auto blob = engine.encodeLine(line);
        std::vector<std::uint8_t> scratch(blob.size(), 0xff);
        engine.encodeLineInto(line.data(), scratch.data());
        EXPECT_EQ(scratch, blob);
    }
}

TEST_P(EccEngineTest, SingleBitErrorHandled)
{
    const EccEngine engine(GetParam());
    if (engine.scheme() == EccScheme::None)
        GTEST_SKIP() << "no ECC";
    Rng rng(33);
    const auto line = randomLine(rng);
    auto blob = engine.encodeLine(line);
    EccEngine::flipBit(blob, 5 * 8 + 3);
    const auto r = engine.decodeLine(blob);
    EXPECT_TRUE(r.corrected);
    EXPECT_FALSE(r.uncorrectable);
    blob.resize(kCachelineBytes);
    EXPECT_EQ(blob, line);
}

// Differential oracle for the shared CodecRegistry: an engine borrowing
// the process-wide codec must be byte- and stats-identical to one that
// builds its codec privately, across clean, correctable, and
// uncorrectable inputs. Any divergence here means the registry handed
// out the wrong (n, k) or shared mutable codec state.
TEST_P(EccEngineTest, RegistryCodecMatchesPrivateCodec)
{
    const EccEngine shared(GetParam());
    const EccEngine private_(GetParam(), EccEngine::PrivateCodec{});
    Rng rng(101);
    for (unsigned trial = 0; trial < 24; ++trial) {
        const auto line = randomLine(rng);
        auto blobA = shared.encodeLine(line);
        auto blobB = private_.encodeLine(line);
        ASSERT_EQ(blobA, blobB);

        if (shared.scheme() != EccScheme::None) {
            // Same fault into both copies: a single flipped bit, a
            // whole-chip failure, or two chip failures, cycling so
            // every scheme sees clean, corrected, and (for the weaker
            // codes) uncorrectable outcomes.
            switch (trial % 3) {
            case 0:
                EccEngine::flipBit(blobA, (trial * 37) % (64 * 8));
                EccEngine::flipBit(blobB, (trial * 37) % (64 * 8));
                break;
            case 1:
                shared.corruptChip(blobA, trial % shared.numChips());
                private_.corruptChip(blobB, trial % shared.numChips());
                break;
            case 2:
                shared.corruptChip(blobA, 2);
                shared.corruptChip(blobA, 9);
                private_.corruptChip(blobB, 2);
                private_.corruptChip(blobB, 9);
                break;
            }
        }

        const EccLineResult ra = shared.decodeLine(blobA);
        const EccLineResult rb = private_.decodeLine(blobB);
        EXPECT_EQ(ra.clean, rb.clean);
        EXPECT_EQ(ra.corrected, rb.corrected);
        EXPECT_EQ(ra.uncorrectable, rb.uncorrectable);
        EXPECT_EQ(ra.symbolsCorrected, rb.symbolsCorrected);
        EXPECT_EQ(blobA, blobB);
    }

    EXPECT_EQ(shared.stats().linesDecoded.value(),
              private_.stats().linesDecoded.value());
    EXPECT_EQ(shared.stats().codewordsCorrected.value(),
              private_.stats().codewordsCorrected.value());
    EXPECT_EQ(shared.stats().codewordsDetected.value(),
              private_.stats().codewordsDetected.value());
    EXPECT_EQ(shared.stats().symbolsCorrected.value(),
              private_.stats().symbolsCorrected.value());
}

// The registry hands back the same immutable codec on every call, so
// repeated engine construction is allocation-light and two engines for
// one scheme encode identically by construction.
TEST(EccEngine, RepeatedConstructionSharesBytes)
{
    Rng rng(7);
    const auto line = randomLine(rng);
    const EccEngine a(EccScheme::Bamboo72);
    const EccEngine b(EccScheme::Bamboo72);
    EXPECT_EQ(a.encodeLine(line), b.encodeLine(line));
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, EccEngineTest,
    ::testing::Values(EccScheme::None, EccScheme::SecDed, EccScheme::Ssc,
                      EccScheme::SscDsd, EccScheme::Ssc32,
                      EccScheme::Bamboo72),
    [](const auto &info) {
        std::string name = eccSchemeName(info.param);
        std::erase(name, '-');
        return name;
    });

TEST(EccEngine, ChipkillSchemesSurviveWholeChipFailure)
{
    // Section 2.3 / Table 1: SSC-family schemes must correct a whole
    // failed chip, for *every* chip in the rank.
    for (EccScheme scheme :
         {EccScheme::Ssc, EccScheme::SscDsd, EccScheme::Ssc32,
          EccScheme::Bamboo72}) {
        const EccEngine engine(scheme);
        EXPECT_TRUE(engine.toleratesChipFailure());
        Rng rng(55);
        const auto line = randomLine(rng);
        for (unsigned chip = 0; chip < engine.numChips(); ++chip) {
            auto blob = engine.encodeLine(line);
            engine.corruptChip(blob, chip);
            const auto r = engine.decodeLine(blob);
            EXPECT_TRUE(r.corrected)
                << eccSchemeName(scheme) << " chip " << chip;
            EXPECT_FALSE(r.uncorrectable)
                << eccSchemeName(scheme) << " chip " << chip;
            blob.resize(kCachelineBytes);
            EXPECT_EQ(blob, line) << eccSchemeName(scheme);
        }
    }
}

TEST(EccEngine, SecDedCannotSurviveChipFailure)
{
    // The motivation for chipkill: SEC-DED sees 4 flipped bits per
    // codeword when a chip dies -- beyond its correction capability.
    const EccEngine engine(EccScheme::SecDed);
    EXPECT_FALSE(engine.toleratesChipFailure());
    Rng rng(66);
    const auto line = randomLine(rng);
    auto blob = engine.encodeLine(line);
    engine.corruptChip(blob, 7);
    const auto r = engine.decodeLine(blob);
    // 4-bit (even) flips per word give even parity with a non-zero
    // syndrome: flagged as detected-uncorrectable, never silently wrong.
    EXPECT_TRUE(r.uncorrectable);
}

TEST(EccEngine, SscDsdDetectsTwoChipFailures)
{
    const EccEngine engine(EccScheme::SscDsd);
    Rng rng(77);
    const auto line = randomLine(rng);
    auto blob = engine.encodeLine(line);
    engine.corruptChip(blob, 3);
    engine.corruptChip(blob, 19);
    const auto r = engine.decodeLine(blob);
    EXPECT_TRUE(r.uncorrectable); // correct-one/detect-two policy
}

TEST(EccEngine, PartialChipFaultCorrected)
{
    const EccEngine engine(EccScheme::Ssc);
    Rng rng(88);
    const auto line = randomLine(rng);
    auto blob = engine.encodeLine(line);
    engine.corruptChipBits(blob, 11, 3, rng);
    const auto r = engine.decodeLine(blob);
    EXPECT_FALSE(r.uncorrectable);
    blob.resize(kCachelineBytes);
    EXPECT_EQ(blob, line);
}

TEST(EccEngine, Bamboo72SurvivesChipPlusTransient)
{
    // The large-codeword variant has t = 4: a whole failed chip (4
    // symbols) is correctable even with no margin to spare per stripe,
    // unlike SSC which dedicates its single correctable symbol per
    // codeword to the chip.
    const EccEngine engine(EccScheme::Bamboo72);
    Rng rng(123);
    const auto line = randomLine(rng);
    auto blob = engine.encodeLine(line);
    engine.corruptChip(blob, 9);
    const auto r = engine.decodeLine(blob);
    EXPECT_TRUE(r.corrected);
    EXPECT_EQ(r.symbolsCorrected, 4u);
    blob.resize(kCachelineBytes);
    EXPECT_EQ(blob, line);

    // Two whole chips = 8 symbol errors: beyond t = 4, detected.
    auto blob2 = engine.encodeLine(line);
    engine.corruptChip(blob2, 3);
    engine.corruptChip(blob2, 12);
    EXPECT_TRUE(engine.decodeLine(blob2).uncorrectable);
}

TEST(EccEngine, GeometryPerScheme)
{
    EXPECT_EQ(EccEngine(EccScheme::Ssc).numChips(), 18u);
    EXPECT_EQ(EccEngine(EccScheme::SscDsd).numChips(), 36u);
    EXPECT_EQ(EccEngine(EccScheme::None).numChips(), 16u);
    EXPECT_EQ(EccEngine(EccScheme::None).parityBytesPerLine(), 0u);
    EXPECT_EQ(EccEngine(EccScheme::Ssc).parityBytesPerLine(), 8u);
}

// --------------------------------------------------------------------
// Golden vectors (tests/golden_ecc_vectors.hh, independently derived
// by tools/gen_ecc_vectors.py from the published algebra)
// --------------------------------------------------------------------

template <std::size_t N>
std::vector<std::uint8_t>
vec(const std::uint8_t (&a)[N])
{
    return std::vector<std::uint8_t>(a, a + N);
}

TEST(GoldenVectors, Rs18EncodeMatchesReference)
{
    const ReedSolomon rs(18, 16);
    EXPECT_EQ(rs.encode(vec(golden::kRs18Data)),
              vec(golden::kRs18Codeword));
}

TEST(GoldenVectors, Rs36EncodeMatchesReference)
{
    const ReedSolomon rs(36, 32);
    EXPECT_EQ(rs.encode(vec(golden::kRs36Data)),
              vec(golden::kRs36Codeword));
}

TEST(GoldenVectors, Rs72EncodeMatchesReference)
{
    const ReedSolomon rs(72, 64);
    EXPECT_EQ(rs.encode(vec(golden::kRs72Data)),
              vec(golden::kRs72Codeword));
}

TEST(GoldenVectors, RsZeroDataEncodesToZeroCodeword)
{
    // Linearity: the zero message maps to the zero codeword, and the
    // committed vector pins that down byte-for-byte.
    const ReedSolomon rs(18, 16);
    const auto cw = rs.encode(std::vector<std::uint8_t>(16, 0));
    EXPECT_EQ(cw, vec(golden::kRs18ZeroCodeword));
    for (std::uint8_t b : cw)
        EXPECT_EQ(b, 0);
}

TEST(GoldenVectors, SecDedCheckBytesMatchReference)
{
    for (std::size_t i = 0; i < std::size(golden::kSecDedWords); ++i) {
        EXPECT_EQ(SecDed::encode(golden::kSecDedWords[i]),
                  golden::kSecDedChecks[i])
            << "word 0x" << std::hex << golden::kSecDedWords[i];
    }
}

TEST(GoldenVectors, SecDedGoldenWordsDecodeClean)
{
    for (std::size_t i = 0; i < std::size(golden::kSecDedWords); ++i) {
        std::uint64_t data = golden::kSecDedWords[i];
        std::uint8_t check = golden::kSecDedChecks[i];
        const auto r = SecDed::decode(data, check);
        EXPECT_EQ(r.status, SecDedResult::Status::Clean) << "i=" << i;
    }
}

struct GoldenBlobCase {
    EccScheme scheme;
    const std::uint8_t *blob;
    std::size_t size;
};

class GoldenBlobTest : public ::testing::TestWithParam<GoldenBlobCase>
{
protected:
    std::vector<std::uint8_t>
    goldenBlob() const
    {
        const auto &p = GetParam();
        return std::vector<std::uint8_t>(p.blob, p.blob + p.size);
    }
};

TEST_P(GoldenBlobTest, EncodeLineMatchesReference)
{
    const EccEngine engine(GetParam().scheme);
    EXPECT_EQ(engine.encodeLine(vec(golden::kEngineLine)), goldenBlob());
}

TEST_P(GoldenBlobTest, SingleSymbolErrorRestoresGoldenBlob)
{
    const EccEngine engine(GetParam().scheme);
    const auto pristine = goldenBlob();
    auto blob = pristine;
    // A single-bit flip is one symbol for the RS schemes and one data
    // bit for SEC-DED, so every scheme must fully recover.
    blob[21] ^= 0x04;
    const auto r = engine.decodeLine(blob);
    EXPECT_TRUE(r.corrected);
    EXPECT_FALSE(r.uncorrectable);
    EXPECT_EQ(blob, pristine);
}

TEST_P(GoldenBlobTest, ChipkillErasureAgainstGoldenBlob)
{
    const EccEngine engine(GetParam().scheme);
    const auto pristine = goldenBlob();
    auto blob = pristine;
    // Chip 7, not an arbitrary one: for SEC-DED a dead x4 chip flips an
    // aligned nibble per word, and some nibbles (e.g. chip 5's, data
    // bits 20-23 at Hamming positions 26,27,28,29) XOR to a *zero*
    // syndrome -- a silently undetectable failure. Chip 7's positions
    // (35,36,37,38) keep the syndrome non-zero, the case the existing
    // detection claim is about.
    engine.corruptChip(blob, 7);
    const auto r = engine.decodeLine(blob);
    if (engine.toleratesChipFailure()) {
        EXPECT_TRUE(r.corrected);
        EXPECT_FALSE(r.uncorrectable);
        EXPECT_EQ(blob, pristine);
    } else {
        EXPECT_TRUE(r.uncorrectable); // SEC-DED: detected, never silent
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, GoldenBlobTest,
    ::testing::Values(
        GoldenBlobCase{EccScheme::SecDed, golden::kSecDedBlob,
                       std::size(golden::kSecDedBlob)},
        GoldenBlobCase{EccScheme::Ssc, golden::kSscBlob,
                       std::size(golden::kSscBlob)},
        GoldenBlobCase{EccScheme::SscDsd, golden::kSscDsdBlob,
                       std::size(golden::kSscDsdBlob)},
        GoldenBlobCase{EccScheme::Ssc32, golden::kSsc32Blob,
                       std::size(golden::kSsc32Blob)},
        GoldenBlobCase{EccScheme::Bamboo72, golden::kBamboo72Blob,
                       std::size(golden::kBamboo72Blob)}),
    [](const auto &info) {
        std::string name = eccSchemeName(info.param.scheme);
        std::erase(name, '-');
        return name;
    });

TEST(GoldenVectors, SecDedChipFailureCanAliasToCleanSilently)
{
    // The flip side of the chipkill motivation: a whole-chip x4 failure
    // is not merely uncorrectable for SEC-DED -- for chips whose four
    // codeword positions XOR to zero it is *undetectable*. Chip 5
    // drives data bits 20-23, at Hamming positions 26^27^28^29 == 0
    // with even overall parity: the decoder reports clean and returns
    // corrupted data. This test pins that hazard so nobody "fixes" the
    // detection claim to cover all chips.
    const EccEngine engine(EccScheme::SecDed);
    std::vector<std::uint8_t> blob(
        golden::kSecDedBlob,
        golden::kSecDedBlob + std::size(golden::kSecDedBlob));
    engine.corruptChip(blob, 5);
    const auto r = engine.decodeLine(blob);
    EXPECT_FALSE(r.uncorrectable);
    EXPECT_FALSE(r.corrected);
    // ...and the data really is wrong.
    blob.resize(kCachelineBytes);
    EXPECT_NE(blob, vec(golden::kEngineLine));
}

TEST(GoldenVectors, SscDsdDetectOnlyBeyondPolicyOnGoldenBlob)
{
    // Two dead chips land two symbol errors in the same RS(36,32)
    // codeword; the correct-one/detect-two policy must refuse to
    // correct even though t = 2 could.
    const EccEngine engine(EccScheme::SscDsd);
    std::vector<std::uint8_t> blob(
        golden::kSscDsdBlob,
        golden::kSscDsdBlob + std::size(golden::kSscDsdBlob));
    engine.corruptChip(blob, 2);
    engine.corruptChip(blob, 9);
    const auto r = engine.decodeLine(blob);
    EXPECT_TRUE(r.uncorrectable);
    EXPECT_FALSE(r.corrected);
}

} // namespace
} // namespace sam
