/**
 * @file
 * Tests for the IMDB substrate: deterministic data generation, every
 * layout's addressing/materialization consistency, gather planning,
 * the Table 3 query definitions, and the executor's functional
 * equivalence with the pure reference executor.
 */

#include <gtest/gtest.h>

#include <set>

#include "src/common/logging.hh"
#include "src/controller/address_mapping.hh"
#include "src/imdb/executor.hh"
#include "src/imdb/query.hh"
#include "src/imdb/table.hh"

namespace sam {
namespace {

// --------------------------------------------------------------------
// Data generation
// --------------------------------------------------------------------

TEST(FieldValues, DeterministicAndBounded)
{
    for (std::uint64_t r = 0; r < 200; ++r) {
        for (unsigned f = 0; f < 16; ++f) {
            const auto v = fieldValue(r, f);
            EXPECT_LT(v, 1000u);
            EXPECT_EQ(v, fieldValue(r, f));
        }
    }
    EXPECT_NE(fieldValue(1, 2), fieldValue(2, 1));
}

TEST(FieldValues, SelectivityIsAccurate)
{
    const std::uint64_t t25 = selectivityThreshold(0.25);
    std::uint64_t hits = 0;
    const std::uint64_t n = 100000;
    for (std::uint64_t r = 0; r < n; ++r)
        hits += passesPredicate(r, 10, t25);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
    EXPECT_EQ(selectivityThreshold(1.0), 1000u);
    EXPECT_EQ(selectivityThreshold(0.0), 0u);
}

// --------------------------------------------------------------------
// Table layouts
// --------------------------------------------------------------------

class LayoutTest : public ::testing::TestWithParam<LayoutKind>
{
  protected:
    Geometry geom;
};

TEST_P(LayoutTest, FieldAddressesAreDisjoint)
{
    TableSchema sch{"T", 16, 512};
    Table t(sch, Addr{1} << 30, GetParam(), 8, geom);
    std::set<Addr> seen;
    for (std::uint64_t r = 0; r < sch.numRecords; ++r) {
        for (unsigned f = 0; f < sch.numFields; ++f) {
            const Addr a = t.fieldAddr(r, f);
            EXPECT_EQ(a % 8, 0u);
            EXPECT_TRUE(seen.insert(a).second)
                << "aliased rec " << r << " f " << f;
            EXPECT_GE(a, t.base());
            EXPECT_LT(a, t.base() + t.footprintBytes());
        }
    }
}

TEST_P(LayoutTest, MaterializeMatchesFieldAddr)
{
    // The layout inversion in materialize() must agree with
    // fieldAddr(): every field reads back its generated value.
    TableSchema sch{"T", 16, 512};
    Table t(sch, Addr{1} << 30, GetParam(), 8, geom);
    DataPath dp(EccScheme::SscDsd);
    t.materialize(dp);
    for (std::uint64_t r = 0; r < sch.numRecords; r += 7) {
        for (unsigned f = 0; f < sch.numFields; f += 3) {
            const Addr a = t.fieldAddr(r, f);
            const auto line = dp.readLine(a & ~Addr{63}).data;
            std::uint64_t v = 0;
            const unsigned off = static_cast<unsigned>(a % 64);
            for (int i = 7; i >= 0; --i)
                v = (v << 8) | line[off + i];
            ASSERT_EQ(v, fieldValue(r, f))
                << layoutName(GetParam()) << " rec " << r << " f " << f;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllLayouts, LayoutTest,
    ::testing::Values(LayoutKind::RowStore, LayoutKind::ColumnStore,
                      LayoutKind::SamAligned, LayoutKind::VerticalGroup,
                      LayoutKind::GsSegmented),
    [](const auto &info) {
        std::string name = layoutName(info.param);
        std::erase(name, '-');
        return name;
    });

TEST(TableTest, GatherPlanCoversAllRecordsOfGroup)
{
    Geometry geom;
    TableSchema sch{"Ta", 128, 1024};
    for (LayoutKind layout :
         {LayoutKind::SamAligned, LayoutKind::VerticalGroup,
          LayoutKind::GsSegmented}) {
        Table t(sch, Addr{1} << 30, layout, 8, geom);
        ASSERT_TRUE(t.strideUsable());
        for (std::uint64_t g = 0; g < 8; ++g) {
            const auto plan = t.gatherPlan(g, 10, 8);
            ASSERT_EQ(plan.lines.size(), 8u);
            for (unsigned i = 0; i < 8; ++i) {
                // The chunk of record g*8+i must live in line i of the
                // plan at the plan's sector.
                const Addr want = t.fieldAddr(g * 8 + i, 10);
                EXPECT_EQ(plan.lines[i], want & ~Addr{63})
                    << layoutName(layout);
                EXPECT_EQ(plan.sector,
                          static_cast<unsigned>((want % 64) / 8))
                    << layoutName(layout);
            }
        }
    }
}

TEST(TableTest, SamAlignedGatherStaysInOneRow)
{
    Geometry geom;
    TableSchema sch{"Ta", 128, 1024};
    Table t(sch, Addr{1} << 30, LayoutKind::SamAligned, 8, geom);
    for (std::uint64_t g = 0; g < t.numGroups(); g += 13) {
        const auto plan = t.gatherPlan(g, 3, 8);
        const Addr row0 = plan.lines[0] / geom.rowBytes;
        for (Addr l : plan.lines)
            EXPECT_EQ(l / geom.rowBytes, row0);
    }
}

TEST(TableTest, VerticalGroupGatherSpansRowsOfOneBank)
{
    // The gather's source lines sit in G *consecutive rows of one
    // physical bank* -- the column-wise subarray requirement.
    Geometry geom;
    AddressMapping map(geom);
    TableSchema sch{"Ta", 128, 4096};
    Table t(sch, Addr{1} << 30, LayoutKind::VerticalGroup, 8, geom);
    const auto plan = t.gatherPlan(3, 7, 8);
    const MappedAddr first = map.decompose(plan.lines[0]);
    for (unsigned i = 1; i < 8; ++i) {
        const MappedAddr m = map.decompose(plan.lines[i]);
        EXPECT_TRUE(m.sameBank(first)) << i;
        EXPECT_EQ(m.row, first.row + i);
        EXPECT_EQ(m.column, first.column);
    }
}

TEST(TableTest, StrideUsableRules)
{
    Geometry geom;
    TableSchema wide{"T", 128, 512};   // 1KB records
    TableSchema narrow{"T", 4, 512};   // 32B records
    EXPECT_TRUE(Table(wide, Addr{1} << 30, LayoutKind::SamAligned, 8,
                      geom)
                    .strideUsable());
    EXPECT_FALSE(Table(narrow, Addr{1} << 30, LayoutKind::SamAligned, 8,
                       geom)
                     .strideUsable());
    EXPECT_FALSE(Table(wide, Addr{1} << 30, LayoutKind::RowStore, 8,
                       geom)
                     .strideUsable());
    EXPECT_TRUE(Table(narrow, Addr{1} << 30, LayoutKind::VerticalGroup,
                      8, geom)
                    .strideUsable());
}

TEST(TableTest, InvalidConfigsRejected)
{
    Geometry geom;
    TableSchema sch{"T", 16, 512};
    EXPECT_THROW(Table(sch, 0x123, LayoutKind::RowStore, 8, geom),
                 std::logic_error); // unaligned base
    TableSchema odd{"T", 16, 513};  // not a gather multiple
    EXPECT_THROW(Table(odd, Addr{1} << 30, LayoutKind::RowStore, 8,
                       geom),
                 std::logic_error);
}

// --------------------------------------------------------------------
// Query definitions (Table 3)
// --------------------------------------------------------------------

TEST(QueryDefs, TwelveQQueriesMatchTable3)
{
    const auto qs = benchmarkQQueries();
    ASSERT_EQ(qs.size(), 12u);
    EXPECT_EQ(qs[0].name, "Q1");
    EXPECT_EQ(qs[0].fields, (std::vector<unsigned>{3, 4}));
    EXPECT_EQ(qs[1].kind, QueryKind::SelectStar);
    EXPECT_LT(qs[1].selectivity, 0.05); // "f10 > x mostly false"
    EXPECT_EQ(qs[6].kind, QueryKind::Join);
    EXPECT_TRUE(qs[6].joinExtraFilter);  // Q7
    EXPECT_FALSE(qs[7].joinExtraFilter); // Q8
    EXPECT_TRUE(qs[8].hasPredicate2);    // Q9
    EXPECT_EQ(qs[10].kind, QueryKind::Update); // Q11
    for (const auto &q : qs)
        EXPECT_FALSE(q.rowPreferred);
}

TEST(QueryDefs, SixQsQueriesPreferRowStore)
{
    const auto qs = benchmarkQsQueries();
    ASSERT_EQ(qs.size(), 6u);
    EXPECT_EQ(qs[0].limit, 1024u);
    EXPECT_EQ(qs[4].kind, QueryKind::Insert);
    for (const auto &q : qs)
        EXPECT_TRUE(q.rowPreferred);
}

TEST(QueryDefs, ArithAndAggrParameterisation)
{
    const Query arith = arithQuery(8, 0.4, 128);
    EXPECT_EQ(arith.fields.size(), 8u);
    EXPECT_TRUE(arith.recordMajor);
    EXPECT_FALSE(arith.fieldMajor);
    EXPECT_DOUBLE_EQ(arith.selectivity, 0.4);
    for (unsigned f : arith.fields) {
        EXPECT_NE(f, 0u); // predicate field not projected
        EXPECT_LT(f, 128u);
    }

    const Query aggr = aggrQuery(128, 1.0, 128);
    EXPECT_EQ(aggr.fields.size(), 128u); // full projectivity
    EXPECT_TRUE(aggr.fieldMajor);
    EXPECT_FALSE(aggr.recordMajor);
}

TEST(QueryDefs, ReferenceResultsAreConsistent)
{
    const TableSchema ta{"Ta", 128, 1024};
    const TableSchema tb{"Tb", 16, 1024};
    for (const auto &q : benchmarkQQueries()) {
        const auto r = referenceResult(q, ta, tb);
        if (q.kind != QueryKind::Join) {
            EXPECT_GT(r.rows, 0u) << q.name;
        }
        // Re-running gives identical results (pure function).
        EXPECT_TRUE(r == referenceResult(q, ta, tb)) << q.name;
    }
}

TEST(QueryDefs, ReferenceSelectivityScalesRows)
{
    const TableSchema ta{"Ta", 128, 4096};
    const TableSchema tb{"Tb", 16, 4096};
    Query q = benchmarkQQueries()[0]; // Q1, sel 0.25
    const auto r25 = referenceResult(q, ta, tb);
    q.selectivity = 0.5;
    const auto r50 = referenceResult(q, ta, tb);
    EXPECT_GT(r50.rows, r25.rows);
    EXPECT_NEAR(static_cast<double>(r25.rows) / 4096.0, 0.25, 0.02);
    EXPECT_NEAR(static_cast<double>(r50.rows) / 4096.0, 0.50, 0.02);
}

} // namespace
} // namespace sam
