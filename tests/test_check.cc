/**
 * @file
 * Tests for the protocol-checker oracle (src/check): hand-built illegal
 * command streams must each be rejected with the correct constraint
 * named, and legal streams -- hand-built, random Device traffic, and
 * full-system replays on every design -- must validate clean.
 */

#include <gtest/gtest.h>

#include <random>
#include <set>

#include "src/check/protocol_checker.hh"
#include "src/dram/device.hh"
#include "src/dram/timing.hh"
#include "src/imdb/query.hh"
#include "src/sim/system.hh"

namespace sam {
namespace {

// --------------------------------------------------------------------
// Hand-built command streams
// --------------------------------------------------------------------

Command
cmd(CmdKind kind, Cycle at, unsigned bg, unsigned bank,
    std::uint64_t row, AccessMode mode = AccessMode::Regular)
{
    Command c;
    c.kind = kind;
    c.at = at;
    c.addr.rank = 0;
    c.addr.bankGroup = bg;
    c.addr.bank = bank;
    c.addr.row = row;
    c.mode = mode;
    return c;
}

Command
rankCmd(CmdKind kind, Cycle at, unsigned rank,
        AccessMode mode = AccessMode::Regular)
{
    Command c;
    c.kind = kind;
    c.at = at;
    c.addr.rank = rank;
    c.mode = mode;
    return c;
}

class CheckerTest : public ::testing::Test
{
  protected:
    std::set<std::string>
    constraintsOf(ProtocolChecker &checker)
    {
        std::set<std::string> names;
        for (const Violation &v : checker.violations())
            names.insert(v.constraint);
        return names;
    }

    void
    expectSingle(ProtocolChecker &checker, const std::string &name)
    {
        EXPECT_EQ(checker.violations().size(), 1u) << checker.report();
        EXPECT_TRUE(constraintsOf(checker).count(name))
            << "expected " << name << "\n"
            << checker.report();
    }

    Geometry geom;
    TimingParams timing = ddr4Timing();
};

TEST_F(CheckerTest, CleanHandBuiltStreamPasses)
{
    ProtocolChecker checker(geom, timing);
    checker.observe(cmd(CmdKind::Act, 0, 0, 0, 1));
    checker.observe(cmd(CmdKind::Rd, 17, 0, 0, 1));
    checker.observe(cmd(CmdKind::Rd, 23, 0, 0, 1));
    checker.observe(cmd(CmdKind::Pre, 62, 0, 0, 1));
    checker.observe(cmd(CmdKind::Act, 79, 0, 0, 2));
    checker.observe(cmd(CmdKind::Wr, 96, 0, 0, 2));
    checker.observe(cmd(CmdKind::Rd, 121, 0, 0, 2));
    checker.observe(
        cmd(CmdKind::ModeSwitch, 125, 0, 0, 2, AccessMode::Stride));
    checker.observe(cmd(CmdKind::Rd, 127, 0, 0, 2, AccessMode::Stride));
    EXPECT_TRUE(checker.clean()) << checker.report();
    EXPECT_EQ(checker.commandCount(), 9u);
}

TEST_F(CheckerTest, FifthActivateInsideTfawDetected)
{
    ProtocolChecker checker(geom, timing);
    // Four ACTs spaced by tRRD_L across bank groups, then a fifth only
    // 24 cycles after the first -- inside the tFAW = 26 window.
    checker.observe(cmd(CmdKind::Act, 0, 0, 0, 1));
    checker.observe(cmd(CmdKind::Act, 6, 1, 0, 1));
    checker.observe(cmd(CmdKind::Act, 12, 2, 0, 1));
    checker.observe(cmd(CmdKind::Act, 18, 3, 0, 1));
    checker.observe(cmd(CmdKind::Act, 24, 0, 1, 1));
    expectSingle(checker, "tFAW");
}

TEST_F(CheckerTest, PrechargeBeforeTrasDetected)
{
    ProtocolChecker checker(geom, timing);
    checker.observe(cmd(CmdKind::Act, 0, 0, 0, 5));
    checker.observe(cmd(CmdKind::Pre, 10, 0, 0, 5));
    expectSingle(checker, "tRAS");
}

TEST_F(CheckerTest, ReadInsideTwtrLDetected)
{
    ProtocolChecker checker(geom, timing);
    checker.observe(cmd(CmdKind::Act, 0, 0, 0, 1));
    checker.observe(cmd(CmdKind::Wr, 17, 0, 0, 1));
    // Write data ends at 17 + CWL + tBL = 33. A read at 37 satisfies
    // the rank-wide tWTR_S = 3 but not the same-group tWTR_L = 9.
    checker.observe(cmd(CmdKind::Rd, 37, 0, 0, 1));
    expectSingle(checker, "tWTR_L");
    EXPECT_FALSE(constraintsOf(checker).count("tWTR_S"));
}

TEST_F(CheckerTest, CasInsideModeSwitchTrtrDetected)
{
    ProtocolChecker checker(geom, timing);
    checker.observe(cmd(CmdKind::Act, 0, 0, 0, 1));
    checker.observe(
        cmd(CmdKind::ModeSwitch, 20, 0, 0, 1, AccessMode::Stride));
    checker.observe(cmd(CmdKind::Rd, 21, 0, 0, 1, AccessMode::Stride));
    expectSingle(checker, "tRTR(mode)");
}

TEST_F(CheckerTest, DoubleActivateDetected)
{
    ProtocolChecker checker(geom, timing);
    checker.observe(cmd(CmdKind::Act, 0, 0, 0, 1));
    checker.observe(cmd(CmdKind::Act, 100, 0, 0, 2));
    expectSingle(checker, "bank-state");
}

TEST_F(CheckerTest, ReadToClosedBankDetected)
{
    ProtocolChecker checker(geom, timing);
    checker.observe(cmd(CmdKind::Rd, 0, 0, 0, 1));
    expectSingle(checker, "bank-state");
}

TEST_F(CheckerTest, ReadToWrongRowDetected)
{
    ProtocolChecker checker(geom, timing);
    checker.observe(cmd(CmdKind::Act, 0, 0, 0, 1));
    checker.observe(cmd(CmdKind::Rd, 17, 0, 0, 2));
    expectSingle(checker, "bank-state");
}

TEST_F(CheckerTest, RefreshWithOpenRowDetected)
{
    ProtocolChecker checker(geom, timing);
    checker.observe(cmd(CmdKind::Act, 0, 0, 0, 1));
    checker.observe(rankCmd(CmdKind::Ref, 100, 0));
    expectSingle(checker, "bank-state");
}

TEST_F(CheckerTest, CasModeMismatchDetected)
{
    ProtocolChecker checker(geom, timing);
    checker.observe(cmd(CmdKind::Act, 0, 0, 0, 1));
    // Stride CAS while the rank never left regular mode.
    checker.observe(cmd(CmdKind::Rd, 17, 0, 0, 1, AccessMode::Stride));
    expectSingle(checker, "mode-state");
}

TEST_F(CheckerTest, ModeSwitchAtLastCasDetected)
{
    ProtocolChecker checker(geom, timing);
    checker.observe(cmd(CmdKind::Act, 0, 0, 0, 1));
    checker.observe(cmd(CmdKind::Rd, 17, 0, 0, 1));
    // A switch in the same cycle as the rank's last CAS would
    // retroactively change that CAS's I/O mode.
    checker.observe(
        cmd(CmdKind::ModeSwitch, 17, 0, 0, 1, AccessMode::Stride));
    expectSingle(checker, "mode-state");
}

TEST_F(CheckerTest, DataBusOverlapAcrossRanksDetected)
{
    ProtocolChecker checker(geom, timing);
    Command act1 = cmd(CmdKind::Act, 0, 0, 0, 1);
    Command rd = cmd(CmdKind::Rd, 17, 0, 0, 1); // data [34, 38)
    Command act2 = rankCmd(CmdKind::Act, 0, 1);
    act2.addr.row = 1;
    Command wr = rankCmd(CmdKind::Wr, 24, 1); // data [36, 40)
    wr.addr.row = 1;
    checker.observe(act1);
    checker.observe(rd);
    checker.observe(act2);
    checker.observe(wr);
    expectSingle(checker, "bus-overlap");
}

TEST_F(CheckerTest, RankSwitchWithoutBubbleDetected)
{
    ProtocolChecker checker(geom, timing);
    Command act1 = cmd(CmdKind::Act, 0, 0, 0, 1);
    Command rd1 = cmd(CmdKind::Rd, 17, 0, 0, 1); // data [34, 38)
    Command act2 = rankCmd(CmdKind::Act, 0, 1);
    act2.addr.row = 1;
    Command rd2 = rankCmd(CmdKind::Rd, 22, 1); // data [39, 43)
    rd2.addr.row = 1;
    checker.observe(act1);
    checker.observe(rd1);
    checker.observe(act2);
    checker.observe(rd2);
    expectSingle(checker, "tRTR(bus)");
}

TEST_F(CheckerTest, ReadToWriteTurnaroundDetected)
{
    ProtocolChecker checker(geom, timing);
    checker.observe(cmd(CmdKind::Act, 0, 0, 0, 1));
    checker.observe(cmd(CmdKind::Rd, 17, 0, 0, 1)); // data [34, 38)
    // Write data at 27 + CWL = 39 follows read data without the
    // 2-cycle driver-turnaround bubble.
    checker.observe(cmd(CmdKind::Wr, 27, 0, 0, 1)); // data [39, 43)
    expectSingle(checker, "rd-wr-turnaround");
}

TEST_F(CheckerTest, CommandDuringRefreshBlackoutDetected)
{
    ProtocolChecker checker(geom, timing);
    checker.observe(rankCmd(CmdKind::Ref, 0, 0));
    checker.observe(cmd(CmdKind::Act, 100, 0, 0, 1)); // < tRFC = 420
    expectSingle(checker, "tRFC");
}

TEST_F(CheckerTest, RefreshPostponedPastDeadlineDetected)
{
    ProtocolChecker checker(geom, timing);
    // DDR4 allows postponing at most 8 refresh intervals.
    checker.observe(
        rankCmd(CmdKind::Ref, Cycle{9} * timing.tREFI + 1, 0));
    expectSingle(checker, "tREFI");
}

TEST_F(CheckerTest, RefreshOnRramIsIllegal)
{
    ProtocolChecker checker(geom, rramTiming());
    checker.observe(rankCmd(CmdKind::Ref, 0, 0));
    expectSingle(checker, "tREFI");
}

// --------------------------------------------------------------------
// Legal streams from the real timing engine
// --------------------------------------------------------------------

class RandomTrafficTest : public ::testing::TestWithParam<MemTech>
{
};

TEST_P(RandomTrafficTest, DeviceStreamValidatesClean)
{
    const Geometry geom;
    const TimingParams timing = timingFor(GetParam());
    Device device(geom, timing);
    ProtocolChecker checker(geom, timing);
    checker.attach(device);

    std::mt19937 rng(42);
    Cycle t = 0;
    for (int i = 0; i < 2000; ++i) {
        DeviceAccess acc;
        acc.addr.rank = rng() % geom.ranks;
        acc.addr.bankGroup = rng() % geom.bankGroups;
        acc.addr.bank = rng() % geom.banksPerGroup;
        acc.addr.row = rng() % 64;
        acc.addr.column = rng() % geom.linesPerRow();
        acc.isWrite = rng() % 4 == 0;
        acc.mode = rng() % 8 == 0 ? AccessMode::Stride
                                  : AccessMode::Regular;
        acc.extraBursts = rng() % 16 == 0 ? 1 : 0;
        device.access(acc, t);
        t += rng() % 20;
        if (rng() % 128 == 0)
            t += 5000; // idle gap: forces refresh catch-up bursts
    }
    EXPECT_TRUE(checker.clean()) << checker.report();
    EXPECT_GT(checker.commandCount(), 2000u);
    if (timing.tREFI > 0) {
        EXPECT_GT(device.stats().refreshes.value(), 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(BothTechs, RandomTrafficTest,
                         ::testing::Values(MemTech::DRAM,
                                           MemTech::RRAM));

class DesignCheckTest : public ::testing::TestWithParam<DesignKind>
{
};

TEST_P(DesignCheckTest, SystemReplayValidatesClean)
{
    SimConfig cfg;
    cfg.design = GetParam();
    cfg.taRecords = 1024;
    cfg.tbRecords = 2048;
    ASSERT_TRUE(cfg.check); // checking is the default
    System sys(cfg);
    // A protocol violation panics inside runQuery; surviving the calls
    // with a non-empty validated stream is the assertion.
    const RunStats arith = sys.runQuery(arithQuery(8, 0.25, cfg.taFields));
    EXPECT_GT(arith.checkedCommands, 0u);
    const RunStats join = sys.runQuery(benchmarkQsQueries().front());
    EXPECT_GT(join.checkedCommands, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllDesigns, DesignCheckTest,
    ::testing::Values(DesignKind::Baseline, DesignKind::RcNvmBit,
                      DesignKind::RcNvmWord, DesignKind::GsDram,
                      DesignKind::GsDramEcc, DesignKind::SamSub,
                      DesignKind::SamIo, DesignKind::SamEn,
                      DesignKind::Ideal),
    [](const ::testing::TestParamInfo<DesignKind> &info) {
        std::string name = designName(info.param);
        std::erase(name, '-');
        return name;
    });

} // namespace
} // namespace sam
