/**
 * @file
 * Unit tests for the common infrastructure: bit ops, RNG, stats,
 * type helpers, and table printing.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "src/common/bitops.hh"
#include "src/common/logging.hh"
#include "src/common/random.hh"
#include "src/common/stats.hh"
#include "src/common/table_printer.hh"
#include "src/common/types.hh"

namespace sam {
namespace {

TEST(BitOps, ExtractBasic)
{
    EXPECT_EQ(bits(0xdeadbeefULL, 0, 8), 0xefu);
    EXPECT_EQ(bits(0xdeadbeefULL, 8, 8), 0xbeu);
    EXPECT_EQ(bits(0xdeadbeefULL, 4, 4), 0xeu);
    EXPECT_EQ(bits(0xffULL, 0, 0), 0u);
    EXPECT_EQ(bits(~0ULL, 0, 64), ~0ULL);
}

TEST(BitOps, InsertRoundTrips)
{
    const std::uint64_t base = 0x123456789abcdef0ULL;
    for (unsigned first = 0; first < 60; first += 7) {
        for (unsigned len = 1; len <= 4; ++len) {
            const std::uint64_t field = bits(base, first, len);
            const std::uint64_t out = insertBits(0, first, len, field);
            EXPECT_EQ(bits(out, first, len), field);
        }
    }
}

TEST(BitOps, InsertPreservesOtherBits)
{
    const std::uint64_t v = insertBits(~0ULL, 8, 8, 0);
    EXPECT_EQ(v, ~0ULL & ~0xff00ULL);
}

TEST(BitOps, Log2AndPow2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(4096), 12u);
    EXPECT_TRUE(isPowerOf2(64));
    EXPECT_FALSE(isPowerOf2(96));
    EXPECT_FALSE(isPowerOf2(0));
}

TEST(BitOps, Rounding)
{
    EXPECT_EQ(roundUp(65, 64), 128u);
    EXPECT_EQ(roundUp(64, 64), 64u);
    EXPECT_EQ(roundDown(127, 64), 64u);
    EXPECT_EQ(divCeil(10, 3), 4u);
    EXPECT_EQ(divCeil(9, 3), 3u);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiffer)
{
    Rng a(1), b(2);
    EXPECT_NE(a.next(), b.next());
}

TEST(Rng, BelowInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BetweenInclusive)
{
    Rng rng(7);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        const std::int64_t v = rng.between(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u); // all values hit
}

TEST(Rng, UniformCoversUnitInterval)
{
    Rng rng(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng rng(13);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.chance(0.25);
    EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
}

TEST(Stats, CounterAndAccum)
{
    Counter c;
    ++c;
    c += 5;
    EXPECT_EQ(c.value(), 6u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);

    Accum a;
    a += 1.5;
    a += 2.5;
    EXPECT_DOUBLE_EQ(a.value(), 4.0);
}

TEST(Stats, GroupDumpAndLookup)
{
    Counter reads;
    Accum energy;
    reads += 3;
    energy += 12.5;

    StatGroup group("mem");
    group.addCounter("reads", reads, "number of reads");
    group.addAccum("energy", energy);

    EXPECT_EQ(group.counterValue("reads"), 3u);
    EXPECT_DOUBLE_EQ(group.accumValue("energy"), 12.5);
    EXPECT_EQ(group.counterValue("missing"), 0u);

    std::ostringstream oss;
    group.dump(oss);
    EXPECT_NE(oss.str().find("mem.reads"), std::string::npos);
    EXPECT_NE(oss.str().find("number of reads"), std::string::npos);
}

TEST(Types, DesignNamesMatchPaper)
{
    EXPECT_EQ(designName(DesignKind::SamEn), "SAM-en");
    EXPECT_EQ(designName(DesignKind::GsDramEcc), "GS-DRAM-ecc");
    EXPECT_EQ(designName(DesignKind::RcNvmBit), "RC-NVM-bit");
}

TEST(Types, StrideGranularityGeometry)
{
    // Section 4.4: SSC -> 8-bit symbols -> 16B strided unit, G = 4;
    // SSC-DSD -> 4-bit -> 8B unit, G = 8; SSC-32 -> 16-bit -> 32B, G = 2.
    EXPECT_EQ(strideUnitBytes(EccScheme::Ssc), 16u);
    EXPECT_EQ(gatherFactor(EccScheme::Ssc), 4u);
    EXPECT_EQ(strideUnitBytes(EccScheme::SscDsd), 8u);
    EXPECT_EQ(gatherFactor(EccScheme::SscDsd), 8u);
    EXPECT_EQ(strideUnitBytes(EccScheme::Ssc32), 32u);
    EXPECT_EQ(gatherFactor(EccScheme::Ssc32), 2u);
}

TEST(Logging, PanicThrows)
{
    EXPECT_THROW(panic("boom"), std::logic_error);
    EXPECT_THROW(fatal("bad config"), std::runtime_error);
}

TEST(Logging, AssertMacro)
{
    EXPECT_NO_THROW(sam_assert(1 + 1 == 2, "math"));
    EXPECT_THROW(sam_assert(false, "expected failure ", 42),
                 std::logic_error);
}

TEST(TablePrinter, AlignsColumns)
{
    TablePrinter tp;
    tp.header({"design", "speedup"});
    tp.row({"SAM-en", fmtNum(4.2)});
    tp.row({"baseline", fmtNum(1.0)});
    std::ostringstream oss;
    tp.print(oss);
    const std::string out = oss.str();
    EXPECT_NE(out.find("SAM-en"), std::string::npos);
    EXPECT_NE(out.find("4.20"), std::string::npos);
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TablePrinter, Formatting)
{
    EXPECT_EQ(fmtNum(3.14159, 3), "3.142");
    EXPECT_EQ(fmtPercent(0.072, 1), "7.2%");
}

} // namespace
} // namespace sam
