/**
 * @file
 * RAS pipeline tests: live fault injection, demand scrubbing, bounded
 * re-read retry, leaky-bucket line retirement, poison propagation, and
 * graceful query degradation. The headline acceptance scenario is a
 * chipkill firing mid-query: chipkill-capable schemes (SSC, SSC-DSD)
 * must complete with exact results plus nonzero scrub traffic, while
 * SEC-DED must fail *loudly* -- poisoned rows flagged in the query
 * result, never silent corruption.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>

#include "src/dram/backing_store.hh"
#include "src/dram/data_path.hh"
#include "src/faults/error_log.hh"
#include "src/faults/fault_injector.hh"
#include "src/faults/ras_engine.hh"
#include "src/imdb/executor.hh"
#include "src/imdb/query.hh"
#include "src/sim/system.hh"

namespace sam {
namespace {

SimConfig
smallConfig()
{
    SimConfig cfg;
    cfg.taRecords = 1024;
    cfg.tbRecords = 2048;
    return cfg;
}

std::vector<std::uint8_t>
patternLine(std::uint8_t tag)
{
    std::vector<std::uint8_t> line(kCachelineBytes);
    for (unsigned i = 0; i < kCachelineBytes; ++i)
        line[i] = static_cast<std::uint8_t>(tag ^ i);
    return line;
}

// --------------------------------------------------------------------
// Satellite: corruptLine on never-written lines
// --------------------------------------------------------------------

TEST(BackingStoreFaults, CorruptLineMaterializesUntouchedLines)
{
    BackingStore store(kCachelineBytes);
    const Addr line = 0x1000;
    ASSERT_FALSE(store.contains(line));

    std::vector<std::uint8_t> mask(kCachelineBytes, 0);
    mask[3] = 0x80;
    store.corruptLine(line, mask);

    // The fault landed: the line now exists, zero-filled except for
    // the flipped bit, instead of the injection being a silent no-op.
    EXPECT_TRUE(store.contains(line));
    EXPECT_EQ(store.lineCount(), 1u);
    const auto blob = store.readLine(line);
    ASSERT_EQ(blob.size(), kCachelineBytes);
    for (unsigned i = 0; i < kCachelineBytes; ++i)
        EXPECT_EQ(blob[i], i == 3 ? 0x80 : 0x00) << "byte " << i;
}

// --------------------------------------------------------------------
// Deterministic injection
// --------------------------------------------------------------------

TEST(FaultInjection, DeterministicUnderFixedSeed)
{
    SimConfig cfg = smallConfig();
    cfg.design = DesignKind::SamEn; // SSC-DSD: flips are correctable
    cfg.faults.model = FaultModel::Transient;
    cfg.faults.fitPerMcycle = 2000.0; // scaled-up rate for test budget
    cfg.faults.seed = 0xD15EA5E;

    const Query q3 = benchmarkQQueries()[2];
    System a(cfg);
    System b(cfg);
    const RunStats ra = a.runQuery(q3);
    const RunStats rb = b.runQuery(q3);

    ASSERT_NE(a.injector(), nullptr);
    EXPECT_GT(a.injector()->stats().storedFlips.value(), 0u);
    EXPECT_EQ(a.injector()->stats().storedFlips.value(),
              b.injector()->stats().storedFlips.value());
    EXPECT_TRUE(ra.result == rb.result);
    EXPECT_EQ(ra.cycles, rb.cycles);
    EXPECT_EQ(ra.eccCorrectedLines, rb.eccCorrectedLines);
    EXPECT_EQ(ra.scrubWritebacks, rb.scrubWritebacks);
    EXPECT_EQ(ra.poisonedReads, rb.poisonedReads);
}

// --------------------------------------------------------------------
// Chipkill mid-query under chipkill-capable ECC: corrected + scrubbed
// --------------------------------------------------------------------

class ChipkillCapableTest : public ::testing::TestWithParam<EccScheme>
{
};

TEST_P(ChipkillCapableTest, MidQueryKillIsCorrectedAndScrubbed)
{
    SimConfig cfg = smallConfig();
    cfg.design = DesignKind::SamEn;
    cfg.ecc = GetParam();
    const Query q3 = benchmarkQQueries()[2];

    // Clean reference run: same system, no fault source.
    System clean(cfg);
    const RunStats base = clean.runQuery(q3);

    // The phase-1 functional clock at this table scale spans a few
    // hundred cycles, so cycle 50 lands mid-query: reads before it
    // are clean, everything after sees the dead chip.
    cfg.faults.model = FaultModel::Chipkill;
    cfg.faults.chipkillAt = 50;
    cfg.faults.chipkillChip = 5;
    System sys(cfg);
    const RunStats r = sys.runQuery(q3);

    ASSERT_NE(sys.injector(), nullptr);
    EXPECT_TRUE(sys.injector()->chipkillFired());
    EXPECT_EQ(sys.injector()->stats().chipKills.value(), 1u);

    // Exact results, zero silent corruption, zero poison: the dead
    // chip is reconstructed on every read.
    EXPECT_TRUE(r.result ==
                referenceResult(q3, sys.taSchema(), sys.tbSchema()))
        << eccSchemeName(GetParam());
    EXPECT_EQ(r.result.poisonedRows, 0u);
    EXPECT_EQ(r.poisonedReads, 0u);
    EXPECT_EQ(r.eccUncorrectable, 0u);
    EXPECT_GT(r.eccCorrectedLines, 0u);

    // Demand scrubbing is live and costs real write bandwidth in the
    // timed replay.
    EXPECT_GT(r.scrubWritebacks, 0u);
    EXPECT_GT(r.memWrites, base.memWrites);
}

INSTANTIATE_TEST_SUITE_P(SscSchemes, ChipkillCapableTest,
                         ::testing::Values(EccScheme::Ssc,
                                           EccScheme::SscDsd),
                         [](const auto &info) {
                             std::string name = eccSchemeName(info.param);
                             name.erase(std::remove(name.begin(),
                                                    name.end(), '-'),
                                        name.end());
                             return name;
                         });

// --------------------------------------------------------------------
// Same chipkill under SEC-DED: poisoned, degraded, never silent
// --------------------------------------------------------------------

TEST(SystemFaults, ChipkillUnderSecDedPoisonsAndDegradesGracefully)
{
    SimConfig cfg = smallConfig();
    cfg.design = DesignKind::Baseline;
    cfg.ecc = EccScheme::SecDed;
    cfg.faults.model = FaultModel::Chipkill;
    cfg.faults.chipkillAt = 50; // mid-query at this scale
    // A dead chip whose bit positions SEC-DED *detects* (some chips
    // alias to a zero/single-bit syndrome and corrupt silently --
    // see DataPath.SecDedCannotProtectAgainstChipFailure).
    cfg.faults.chipkillChip = 0;

    const Query q3 = benchmarkQQueries()[2];
    System sys(cfg);
    const RunStats r = sys.runQuery(q3);

    // SEC-DED detects the 4-bit-per-codeword chip failure but cannot
    // correct it: the read path retries (useless against a dead chip),
    // exhausts the budget, and poisons. The executor flags every row
    // whose field reads were poisoned instead of using the garbage.
    EXPECT_GT(r.readRetries, 0u);
    EXPECT_GT(r.poisonedReads, 0u);
    EXPECT_GT(r.eccUncorrectable, 0u);
    EXPECT_TRUE(r.result.degraded());
    EXPECT_GT(r.result.poisonedRows, 0u);
    EXPECT_EQ(r.scrubWritebacks, 0u); // nothing correctable to scrub

    // Graceful failure contract: a result that differs from the
    // fault-free reference MUST carry the degradation flag.
    const QueryResult expect =
        referenceResult(q3, sys.taSchema(), sys.tbSchema());
    EXPECT_TRUE(r.result == expect || r.result.degraded());
}

// --------------------------------------------------------------------
// Bounded re-read retry clears transient bus faults
// --------------------------------------------------------------------

TEST(RasPipeline, RetryClearsTransientBusFault)
{
    DataPath dp(EccScheme::SecDed);
    RasEngine ras;
    dp.setRasPolicy(&ras);
    FaultConfig fc; // model None: only the armed test fault fires
    FaultInjector inj(fc);
    dp.setFaultHook(&inj);

    const auto original = patternLine(0x5A);
    dp.writeLine(0x40, original);

    // Two flipped bits in one codeword: uncorrectable for SEC-DED on
    // the first attempt, gone on the re-read (in-flight fault only).
    inj.armBusFault({0, 9}, 1);
    const ReadOutcome out = dp.readLine(0x40);

    EXPECT_EQ(out.retries, 1u);
    EXPECT_FALSE(out.uncorrectable);
    EXPECT_FALSE(out.poisoned);
    EXPECT_EQ(out.data, original);
    EXPECT_EQ(inj.stats().busFaults.value(), 1u);
    EXPECT_EQ(ras.stats().retriesAttempted.value(), 1u);
    EXPECT_EQ(ras.stats().poisonedReads.value(), 0u);
    // Final-failure counter stays clean: the retry rescued the read.
    EXPECT_EQ(dp.stats().uncorrectable.value(), 0u);
}

TEST(RasPipeline, RetryBudgetExhaustionPoisons)
{
    DataPath dp(EccScheme::SecDed);
    RasConfig rc;
    rc.maxRetries = 2;
    RasEngine ras(rc);
    dp.setRasPolicy(&ras);
    FaultConfig fc;
    FaultInjector inj(fc);
    dp.setFaultHook(&inj);

    dp.writeLine(0x80, patternLine(0x3C));

    // The bus fault outlives the whole retry budget.
    inj.armBusFault({0, 9}, 100);
    const ReadOutcome out = dp.readLine(0x80);

    EXPECT_EQ(out.retries, 2u);
    EXPECT_TRUE(out.uncorrectable);
    EXPECT_TRUE(out.poisoned);
    EXPECT_EQ(out.poisonBits, 1u);
    EXPECT_EQ(ras.stats().retriesExhausted.value(), 1u);
    EXPECT_EQ(ras.stats().poisonedReads.value(), 1u);
    EXPECT_EQ(dp.stats().uncorrectable.value(), 1u);
}

// --------------------------------------------------------------------
// Leaky-bucket retirement of repeat offenders
// --------------------------------------------------------------------

TEST(RasPipeline, LeakyBucketRetiresRepeatOffender)
{
    DataPath dp(EccScheme::Ssc);
    RasConfig rc;
    rc.bucketThreshold = 3.0;
    rc.bucketWindow = 1'000'000;
    RasEngine ras(rc);
    dp.setRasPolicy(&ras);

    const Addr line = 0x80;
    const auto original = patternLine(0x77);
    dp.writeLine(line, original);
    dp.failChip(5); // hard fault: every read needs correction

    for (int i = 0; i < 5; ++i) {
        dp.setNow(1000 * static_cast<Cycle>(i + 1));
        const ReadOutcome out = dp.readLine(line);
        EXPECT_FALSE(out.uncorrectable) << "read " << i;
        EXPECT_EQ(out.data, original) << "read " << i;
    }

    // The third corrected event crossed the threshold: classified
    // permanent and remapped to a spare.
    EXPECT_TRUE(ras.errorLog().isPermanent(line));
    EXPECT_EQ(ras.stats().linesRetired.value(), 1u);
    EXPECT_EQ(ras.retiredLineCount(), 1u);
    EXPECT_NE(ras.resolve(line), line);
    EXPECT_GE(ras.resolve(line), ras.config().spareBase);

    // Scrubbing a known-dead line buys nothing; after classification
    // the writebacks stop even though corrections continue. (The
    // bucket leaks a little between reads, so the crossing lands on
    // the third or fourth event.)
    EXPECT_GE(ras.stats().scrubWritebacks.value(), 3u);
    EXPECT_LE(ras.stats().scrubWritebacks.value(), 4u);
    EXPECT_GT(ras.stats().scrubsSuppressed.value(), 0u);
    EXPECT_GE(ras.errorLog().totalEvents(), 5u);
}

TEST(RasPipeline, IsolatedErrorIsScrubbedNotRetired)
{
    DataPath dp(EccScheme::Ssc);
    RasEngine ras;
    dp.setRasPolicy(&ras);

    const Addr line = 0x140;
    const auto original = patternLine(0x21);
    dp.writeLine(line, original);

    // One stored single-bit flip: corrected once, scrubbed, and the
    // stored copy is healed -- the next read is clean.
    std::vector<std::uint8_t> mask(dp.store().blobBytes(), 0);
    mask[7] = 0x01;
    dp.store().corruptLine(line, mask);

    const ReadOutcome first = dp.readLine(line);
    EXPECT_TRUE(first.corrected);
    EXPECT_EQ(first.data, original);
    ASSERT_EQ(first.scrubbedLines.size(), 1u);
    EXPECT_EQ(first.scrubbedLines[0], line);

    const ReadOutcome second = dp.readLine(line);
    EXPECT_FALSE(second.corrected);
    EXPECT_EQ(second.data, original);
    EXPECT_EQ(ras.stats().scrubWritebacks.value(), 1u);
    EXPECT_EQ(ras.stats().linesRetired.value(), 0u);
    EXPECT_EQ(ras.resolve(line), line);
}

// --------------------------------------------------------------------
// Clean-line fast path: observationally equivalent to full decode
// --------------------------------------------------------------------

/**
 * Differential check of the clean-line decode fast path: the same
 * seeded fault-injection workload, once with the fast path enabled
 * and once forced through the full decoder, must produce identical
 * decoded bytes, poison masks, and per-scheme ECC counters.
 */
class FastPathDifferentialTest
    : public ::testing::TestWithParam<std::tuple<EccScheme, FaultModel>>
{
  protected:
    struct Observed
    {
        std::vector<std::uint8_t> bytes;
        std::vector<std::uint32_t> flags;
        EccStats pathStats;
        EccEngineStats engineStats;
        FaultStats faultStats;
    };

    static std::uint32_t packFlags(const ReadFlags &f)
    {
        return (f.corrected ? 1u : 0u) | (f.uncorrectable ? 2u : 0u) |
               (f.poisoned ? 4u : 0u) | (f.scrubbed ? 8u : 0u) |
               (f.retries << 4) | (f.poisonBits << 8);
    }

    static Observed runWorkload(EccScheme scheme, FaultModel model,
                                bool fast_path)
    {
        DataPath dp(scheme);
        dp.setCleanFastPath(fast_path);

        FaultConfig fc;
        fc.model = model;
        fc.seed = 0x5EEDED;
        fc.fitPerMcycle = 5000.0; // rates scaled up so faults fire
        fc.stuckProbability = 0.3;
        fc.chipkillAt = 5'000;
        FaultInjector inj(fc);
        dp.setFaultHook(&inj);

        constexpr unsigned kLines = 64;
        std::vector<std::uint8_t> line(kCachelineBytes);
        for (unsigned i = 0; i < kLines; ++i) {
            for (unsigned b = 0; b < kCachelineBytes; ++b)
                line[b] = static_cast<std::uint8_t>(i * 7 + b);
            dp.writeLine(i * kCachelineBytes, line);
        }

        Observed out;
        std::uint8_t data[kCachelineBytes];
        Addr gather[8];
        for (unsigned step = 0; step < 400; ++step) {
            dp.setNow(Cycle{step} * 100);
            ReadFlags f;
            if (step % 3 == 0) {
                for (unsigned g = 0; g < 8; ++g)
                    gather[g] = ((step * 5 + g * 3) % kLines) *
                                kCachelineBytes;
                f = dp.strideReadInto(gather, 8, step % 8, 8, data);
            } else {
                f = dp.readLineInto(
                    ((step * 11) % kLines) * kCachelineBytes, data);
            }
            out.bytes.insert(out.bytes.end(), data,
                             data + kCachelineBytes);
            out.flags.push_back(packFlags(f));
            if (step % 17 == 0) {
                // Interleave writes so clean tags are re-earned after
                // the injector has dirtied lines.
                for (unsigned b = 0; b < kCachelineBytes; ++b)
                    line[b] = static_cast<std::uint8_t>(step + b);
                dp.writeLine(((step * 13) % kLines) * kCachelineBytes,
                             line);
            }
        }
        out.pathStats = dp.stats();
        out.engineStats = dp.ecc().stats();
        out.faultStats = inj.stats();
        return out;
    }
};

TEST_P(FastPathDifferentialTest, MatchesFullDecodeExactly)
{
    const auto [scheme, model] = GetParam();
    const Observed fast = runWorkload(scheme, model, true);
    const Observed slow = runWorkload(scheme, model, false);

    EXPECT_EQ(fast.bytes, slow.bytes);
    EXPECT_EQ(fast.flags, slow.flags);

    EXPECT_EQ(fast.pathStats.linesChecked.value(),
              slow.pathStats.linesChecked.value());
    EXPECT_EQ(fast.pathStats.correctedLines.value(),
              slow.pathStats.correctedLines.value());
    EXPECT_EQ(fast.pathStats.correctedSymbols.value(),
              slow.pathStats.correctedSymbols.value());
    EXPECT_EQ(fast.pathStats.uncorrectable.value(),
              slow.pathStats.uncorrectable.value());

    EXPECT_EQ(fast.engineStats.linesDecoded.value(),
              slow.engineStats.linesDecoded.value());
    EXPECT_EQ(fast.engineStats.codewordsCorrected.value(),
              slow.engineStats.codewordsCorrected.value());
    EXPECT_EQ(fast.engineStats.codewordsDetected.value(),
              slow.engineStats.codewordsDetected.value());
    EXPECT_EQ(fast.engineStats.symbolsCorrected.value(),
              slow.engineStats.symbolsCorrected.value());

    // The injector's RNG draws are part of the deterministic replay
    // surface, so both paths must consume them identically.
    EXPECT_EQ(fast.faultStats.storedFlips.value(),
              slow.faultStats.storedFlips.value());
    EXPECT_EQ(fast.faultStats.busFaults.value(),
              slow.faultStats.busFaults.value());
    EXPECT_EQ(fast.faultStats.chipKills.value(),
              slow.faultStats.chipKills.value());
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemesAllModels, FastPathDifferentialTest,
    ::testing::Combine(::testing::Values(EccScheme::None,
                                         EccScheme::SecDed,
                                         EccScheme::Ssc,
                                         EccScheme::SscDsd,
                                         EccScheme::Ssc32,
                                         EccScheme::Bamboo72),
                       ::testing::Values(FaultModel::Transient,
                                         FaultModel::StuckAt,
                                         FaultModel::Chipkill)));

} // namespace
} // namespace sam
