/**
 * @file
 * Tests for supervised campaign execution: retry/backoff determinism,
 * chaos-spec parsing and scheduling, thread- and process-isolation
 * execution, failure classification (crash / hang / error / corrupt),
 * and journal-backed resume through the Supervisor.
 */

#include <algorithm>
#include <cstdio>
#include <gtest/gtest.h>

#include <unistd.h>

#include "src/core/session.hh"
#include "src/runner/supervisor.hh"

namespace sam {
namespace {

std::string
scratchPath(const char *tag)
{
    static int counter = 0;
    return std::string("supervisor_test_") + tag + "_" +
           std::to_string(::getpid()) + "_" +
           std::to_string(counter++) + ".tmp.jsonl";
}

struct FileGuard
{
    std::string path;
    ~FileGuard() { std::remove(path.c_str()); }
};

SimConfig
tinyConfig(DesignKind design)
{
    SimConfig cfg;
    cfg.design = design;
    cfg.taRecords = 256;
    cfg.tbRecords = 256;
    return cfg;
}

std::vector<RunSpec>
tinySpecs()
{
    std::vector<RunSpec> specs;
    const auto queries = benchmarkQQueries();
    for (DesignKind d :
         {DesignKind::Baseline, DesignKind::SamEn, DesignKind::SamIo}) {
        for (std::size_t qi = 0; qi < 3; ++qi) {
            const Query &q = queries[qi];
            specs.push_back(RunSpec{designName(d) + "/" + q.name,
                                    tinyConfig(d), q,
                                    /*verify=*/false});
        }
    }
    return specs;
}

/** A spec whose execution always panics (field out of range). */
RunSpec
poisonSpec()
{
    Query q = benchmarkQQueries()[0];
    q.name = "poison";
    q.fields = {9999};
    return RunSpec{"poison", tinyConfig(DesignKind::SamEn), q, false};
}

RetryPolicy
fastRetry(unsigned attempts)
{
    RetryPolicy retry;
    retry.maxAttempts = attempts;
    retry.baseDelayMs = 1;
    retry.maxDelayMs = 4;
    return retry;
}

// ----- RetryPolicy ---------------------------------------------------

TEST(RetryPolicyTest, BackoffIsDeterministicAndBounded)
{
    RetryPolicy retry;
    retry.maxAttempts = 5;
    retry.baseDelayMs = 100;
    retry.maxDelayMs = 5000;
    retry.jitter = 0.5;
    retry.seed = 42;
    for (unsigned attempt = 1; attempt <= 4; ++attempt) {
        const unsigned a = retry.backoffMs(3, attempt);
        EXPECT_EQ(retry.backoffMs(3, attempt), a)
            << "backoff is not a pure function";
        const unsigned ideal = std::min(5000u, 100u << (attempt - 1));
        EXPECT_GE(a, ideal / 2) << "attempt " << attempt;
        EXPECT_LE(a, ideal + ideal / 2) << "attempt " << attempt;
    }
    // Different specs and seeds decorrelate (thundering-herd guard).
    EXPECT_NE(retry.backoffMs(3, 1), retry.backoffMs(4, 1));
    RetryPolicy other = retry;
    other.seed = 43;
    EXPECT_NE(other.backoffMs(3, 1), retry.backoffMs(3, 1));
}

TEST(RetryPolicyTest, CapsAtMaxDelay)
{
    RetryPolicy retry;
    retry.baseDelayMs = 100;
    retry.maxDelayMs = 400;
    retry.jitter = 0.0;
    EXPECT_EQ(retry.backoffMs(0, 1), 100u);
    EXPECT_EQ(retry.backoffMs(0, 2), 200u);
    EXPECT_EQ(retry.backoffMs(0, 3), 400u);
    EXPECT_EQ(retry.backoffMs(0, 9), 400u);
}

// ----- chaos spec parsing -------------------------------------------

TEST(ChaosSpecTest, ParsesTheDocumentedGrammar)
{
    ChaosConfig cfg;
    std::string error;
    ASSERT_TRUE(parseChaosSpec("seed=7,die@5", cfg, error)) << error;
    EXPECT_EQ(cfg.seed, 7u);
    ASSERT_EQ(cfg.launchPoints.size(), 1u);
    EXPECT_EQ(cfg.launchPoints[0].first, 5u);
    EXPECT_EQ(cfg.launchPoints[0].second, ChaosFault::Die);

    ASSERT_TRUE(parseChaosSpec("kill%25,hang@spec:0,corrupt@3,slow%10",
                               cfg, error))
        << error;
    EXPECT_EQ(cfg.percent.size(), 2u);
    ASSERT_EQ(cfg.specPoints.size(), 1u);
    EXPECT_EQ(cfg.specPoints[0].second, ChaosFault::Hang);
    ASSERT_EQ(cfg.launchPoints.size(), 1u);
    EXPECT_EQ(cfg.launchPoints[0].second, ChaosFault::Corrupt);
    EXPECT_TRUE(cfg.enabled());
}

TEST(ChaosSpecTest, RejectsGarbage)
{
    ChaosConfig cfg;
    std::string error;
    EXPECT_FALSE(parseChaosSpec("banana", cfg, error));
    EXPECT_NE(error.find("banana"), std::string::npos) << error;
    EXPECT_FALSE(parseChaosSpec("explode@3", cfg, error));
    EXPECT_FALSE(parseChaosSpec("kill@0", cfg, error));
    EXPECT_FALSE(parseChaosSpec("kill%0", cfg, error));
    EXPECT_FALSE(parseChaosSpec("kill%101", cfg, error));
    EXPECT_FALSE(parseChaosSpec("kill@spec:x", cfg, error));
    EXPECT_FALSE(parseChaosSpec("seed=12", cfg, error))
        << "a seed alone injects nothing";
    EXPECT_FALSE(parseChaosSpec("", cfg, error));
    EXPECT_FALSE(parseChaosSpec("kill@1,,die@2", cfg, error));
}

TEST(ChaosEngineTest, ScheduleIsDeterministic)
{
    ChaosConfig cfg;
    std::string error;
    ASSERT_TRUE(parseChaosSpec("seed=9,kill%30,slow%20", cfg, error))
        << error;
    ChaosEngine a(cfg);
    ChaosEngine b(cfg);
    unsigned faults = 0;
    for (std::size_t launch = 0; launch < 200; ++launch) {
        const ChaosPlan pa = a.nextLaunch(launch % 12);
        const ChaosPlan pb = b.nextLaunch(launch % 12);
        EXPECT_EQ(pa.fault, pb.fault);
        EXPECT_EQ(pa.point, pb.point);
        EXPECT_EQ(pa.delayMs, pb.delayMs);
        if (pa.fault != ChaosFault::None)
            ++faults;
    }
    // ~50% of 200 launches; wide margins, deterministic either way.
    EXPECT_GT(faults, 50u);
    EXPECT_LT(faults, 150u);
    EXPECT_EQ(a.launches(), 200u);
}

TEST(ChaosEngineTest, LaunchAndSpecPointsFire)
{
    ChaosConfig cfg;
    std::string error;
    ASSERT_TRUE(parseChaosSpec("die@3,corrupt@spec:1", cfg, error))
        << error;
    ChaosEngine engine(cfg);
    EXPECT_EQ(engine.nextLaunch(0).fault, ChaosFault::None);
    EXPECT_EQ(engine.nextLaunch(1).fault, ChaosFault::Corrupt);
    EXPECT_EQ(engine.nextLaunch(0).fault, ChaosFault::Die);
    EXPECT_EQ(engine.nextLaunch(1).fault, ChaosFault::Corrupt)
        << "spec points fire on every attempt";
}

// ----- Supervisor: thread isolation ---------------------------------

TEST(SupervisorTest, ThreadModeMatchesCampaignRunner)
{
    const auto specs = tinySpecs();
    CampaignRunner runner(2);
    const auto expect = runner.run(specs);

    SupervisorConfig cfg;
    cfg.isolation = Isolation::Thread;
    cfg.jobs = 2;
    Supervisor supervisor(cfg);
    const SupervisorReport report = supervisor.run(specs);

    ASSERT_EQ(report.runs.size(), specs.size());
    EXPECT_TRUE(report.allDone());
    EXPECT_EQ(report.executed, specs.size());
    EXPECT_EQ(report.fromJournal, 0u);
    EXPECT_EQ(report.retries, 0u);
    for (std::size_t i = 0; i < specs.size(); ++i) {
        SCOPED_TRACE(specs[i].id);
        const SupervisedRun &run = report.runs[i];
        EXPECT_EQ(run.outcome, SupervisedRun::Outcome::Done);
        EXPECT_EQ(run.attempts, 1u);
        EXPECT_EQ(run.result.id, expect[i].id);
        EXPECT_EQ(run.result.stats.cycles, expect[i].stats.cycles);
        EXPECT_EQ(run.result.stats.result.checksum,
                  expect[i].stats.result.checksum);
        // The record the BENCH file would carry matches the direct
        // serialization (wall time aside, which is measured anew).
        EXPECT_EQ(run.record.find("cycles")->asU64(),
                  expect[i].stats.cycles);
    }
}

TEST(SupervisorTest, ThreadModeRetriesThenFails)
{
    std::vector<RunSpec> specs = tinySpecs();
    specs.insert(specs.begin() + 2, poisonSpec());

    SupervisorConfig cfg;
    cfg.isolation = Isolation::Thread;
    cfg.jobs = 2;
    cfg.retry = fastRetry(3);
    Supervisor supervisor(cfg);
    const SupervisorReport report = supervisor.run(specs);

    EXPECT_FALSE(report.allDone());
    EXPECT_EQ(report.failed, 1u);
    EXPECT_EQ(report.retries, 2u);
    const SupervisedRun &bad = report.runs[2];
    EXPECT_EQ(bad.outcome, SupervisedRun::Outcome::Failed);
    EXPECT_EQ(bad.failure, FailureKind::Error);
    EXPECT_EQ(bad.attempts, 3u);
    EXPECT_NE(bad.error.find("field out of range"),
              std::string::npos)
        << bad.error;
    // Every healthy sibling still completed.
    for (std::size_t i = 0; i < specs.size(); ++i) {
        if (i != 2) {
            EXPECT_TRUE(report.runs[i].succeeded()) << specs[i].id;
        }
    }
}

// ----- Supervisor: process isolation --------------------------------

TEST(SupervisorTest, ProcessModeMatchesThreadMode)
{
    const auto specs = tinySpecs();
    SupervisorConfig tcfg;
    tcfg.isolation = Isolation::Thread;
    tcfg.jobs = 2;
    Supervisor threaded(tcfg);
    const SupervisorReport expect = threaded.run(specs);

    SupervisorConfig pcfg;
    pcfg.isolation = Isolation::Process;
    pcfg.jobs = 2;
    Supervisor forked(pcfg);
    const SupervisorReport report = forked.run(specs);

    ASSERT_EQ(report.runs.size(), specs.size());
    EXPECT_TRUE(report.allDone());
    EXPECT_EQ(report.launches, specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        SCOPED_TRACE(specs[i].id);
        const RunStats &a = report.runs[i].result.stats;
        const RunStats &b = expect.runs[i].result.stats;
        EXPECT_EQ(a.cycles, b.cycles);
        EXPECT_EQ(a.memReads, b.memReads);
        EXPECT_EQ(a.activates, b.activates);
        EXPECT_EQ(a.result.rows, b.result.rows);
        EXPECT_EQ(a.result.checksum, b.result.checksum);
        EXPECT_DOUBLE_EQ(a.power.totalEnergyPj(),
                         b.power.totalEnergyPj());
        // Worker records round-trip the pipe byte-identically
        // (wall_ms and the throughput derived from it are measured in
        // the child, so drop both).
        Json a_rec = report.runs[i].record;
        Json b_rec = expect.runs[i].record;
        a_rec.set("wall_ms", 0.0);
        b_rec.set("wall_ms", 0.0);
        a_rec.set("throughput", 0.0);
        b_rec.set("throughput", 0.0);
        EXPECT_EQ(a_rec.dump(0), b_rec.dump(0));
    }
}

TEST(SupervisorTest, ClassifiesWorkerCrash)
{
    std::vector<RunSpec> specs = tinySpecs();
    SupervisorConfig cfg;
    cfg.isolation = Isolation::Process;
    cfg.jobs = 2;
    cfg.retry = fastRetry(2);
    std::string error;
    ASSERT_TRUE(parseChaosSpec("seed=1,kill@spec:0", cfg.chaos, error))
        << error;
    Supervisor supervisor(cfg);
    const SupervisorReport report = supervisor.run(specs);

    EXPECT_EQ(report.failed, 1u);
    EXPECT_EQ(report.retries, 1u);
    const SupervisedRun &bad = report.runs[0];
    EXPECT_EQ(bad.failure, FailureKind::Crash);
    EXPECT_EQ(bad.attempts, 2u);
    EXPECT_NE(bad.error.find("signal"), std::string::npos)
        << bad.error;
    for (std::size_t i = 1; i < specs.size(); ++i)
        EXPECT_TRUE(report.runs[i].succeeded()) << specs[i].id;
}

TEST(SupervisorTest, ClassifiesCorruptResult)
{
    std::vector<RunSpec> specs = tinySpecs();
    SupervisorConfig cfg;
    cfg.isolation = Isolation::Process;
    cfg.jobs = 2;
    cfg.retry = fastRetry(1);
    std::string error;
    ASSERT_TRUE(
        parseChaosSpec("seed=1,corrupt@spec:1", cfg.chaos, error))
        << error;
    Supervisor supervisor(cfg);
    const SupervisorReport report = supervisor.run(specs);

    EXPECT_EQ(report.failed, 1u);
    EXPECT_EQ(report.runs[1].failure, FailureKind::Corrupt);
    EXPECT_NE(report.runs[1].error.find("unparseable"),
              std::string::npos)
        << report.runs[1].error;
}

TEST(SupervisorTest, ClassifiesHangViaDeadline)
{
    std::vector<RunSpec> specs = tinySpecs();
    specs.resize(4);
    SupervisorConfig cfg;
    cfg.isolation = Isolation::Process;
    cfg.jobs = 2;
    cfg.timeoutMs = 300;
    cfg.retry = fastRetry(1);
    std::string error;
    ASSERT_TRUE(parseChaosSpec("seed=1,hang@spec:0", cfg.chaos, error))
        << error;
    Supervisor supervisor(cfg);
    const SupervisorReport report = supervisor.run(specs);

    EXPECT_EQ(report.failed, 1u);
    EXPECT_EQ(report.runs[0].failure, FailureKind::Hang);
    EXPECT_NE(report.runs[0].error.find("deadline"), std::string::npos)
        << report.runs[0].error;
    for (std::size_t i = 1; i < specs.size(); ++i)
        EXPECT_TRUE(report.runs[i].succeeded()) << specs[i].id;
}

TEST(SupervisorTest, WorkerErrorsCarryTheMessage)
{
    std::vector<RunSpec> specs = {poisonSpec()};
    SupervisorConfig cfg;
    cfg.isolation = Isolation::Process;
    cfg.jobs = 1;
    cfg.retry = fastRetry(1);
    Supervisor supervisor(cfg);
    const SupervisorReport report = supervisor.run(specs);

    EXPECT_EQ(report.failed, 1u);
    EXPECT_EQ(report.runs[0].failure, FailureKind::Error);
    EXPECT_NE(report.runs[0].error.find("field out of range"),
              std::string::npos)
        << report.runs[0].error;
}

// ----- Supervisor: journal + resume ---------------------------------

TEST(SupervisorTest, ResumeSkipsJournaledRunsBitIdentically)
{
    const auto specs = tinySpecs();
    FileGuard guard{scratchPath("resume")};
    JournalHeader header;
    header.campaign = "test";
    header.scale = "quick";

    SupervisorReport first;
    {
        CampaignJournal journal(guard.path, header, false);
        SupervisorConfig cfg;
        cfg.isolation = Isolation::Thread;
        cfg.jobs = 2;
        cfg.journal = &journal;
        Supervisor supervisor(cfg);
        first = supervisor.run(specs);
        ASSERT_TRUE(first.allDone());
    }

    JournalState prior;
    std::string error;
    ASSERT_TRUE(loadJournal(guard.path, prior, error)) << error;
    ASSERT_EQ(prior.entries.size(), specs.size());

    CampaignJournal journal(guard.path, header, /*resume=*/true);
    SupervisorConfig cfg;
    cfg.isolation = Isolation::Thread;
    cfg.jobs = 2;
    cfg.journal = &journal;
    cfg.resume = &prior;
    Supervisor supervisor(cfg);
    const SupervisorReport report = supervisor.run(specs);

    EXPECT_EQ(report.fromJournal, specs.size());
    EXPECT_EQ(report.executed, 0u);
    for (std::size_t i = 0; i < specs.size(); ++i) {
        SCOPED_TRACE(specs[i].id);
        const SupervisedRun &run = report.runs[i];
        EXPECT_EQ(run.outcome, SupervisedRun::Outcome::FromJournal);
        // The record is the first run's, verbatim -- including its
        // wall_ms. This is the resume bit-identity contract.
        EXPECT_EQ(run.record.dump(0), first.runs[i].record.dump(0));
        EXPECT_EQ(run.result.stats.cycles,
                  first.runs[i].result.stats.cycles);
    }
}

TEST(SupervisorTest, StaleHashForcesReRun)
{
    std::vector<RunSpec> specs = tinySpecs();
    specs.resize(3);
    FileGuard guard{scratchPath("stale")};
    JournalHeader header;
    header.campaign = "test";
    header.scale = "quick";
    {
        CampaignJournal journal(guard.path, header, false);
        SupervisorConfig cfg;
        cfg.isolation = Isolation::Thread;
        cfg.jobs = 1;
        cfg.journal = &journal;
        Supervisor supervisor(cfg);
        ASSERT_TRUE(supervisor.run(specs).allDone());
    }
    JournalState prior;
    std::string error;
    ASSERT_TRUE(loadJournal(guard.path, prior, error)) << error;

    // Same id, different result-determining config: the journal entry
    // is stale for this spec and must not be trusted.
    specs[1].config.taRecords = 512;
    CampaignJournal journal(guard.path, header, true);
    SupervisorConfig cfg;
    cfg.isolation = Isolation::Thread;
    cfg.jobs = 1;
    cfg.journal = &journal;
    cfg.resume = &prior;
    Supervisor supervisor(cfg);
    const SupervisorReport report = supervisor.run(specs);

    EXPECT_EQ(report.fromJournal, 2u);
    EXPECT_EQ(report.executed, 1u);
    EXPECT_EQ(report.runs[1].outcome, SupervisedRun::Outcome::Done);
}

TEST(SupervisorTest, FailedEntriesAreRetriedOnResume)
{
    std::vector<RunSpec> specs = tinySpecs();
    specs.resize(3);
    FileGuard guard{scratchPath("refail")};
    JournalHeader header;
    header.campaign = "test";
    header.scale = "quick";
    {
        // First pass: spec 0 is chaos-killed into FAILED.
        CampaignJournal journal(guard.path, header, false);
        SupervisorConfig cfg;
        cfg.isolation = Isolation::Process;
        cfg.jobs = 2;
        cfg.retry = fastRetry(1);
        cfg.journal = &journal;
        std::string error;
        ASSERT_TRUE(
            parseChaosSpec("seed=1,kill@spec:0", cfg.chaos, error))
            << error;
        Supervisor supervisor(cfg);
        const SupervisorReport report = supervisor.run(specs);
        ASSERT_EQ(report.failed, 1u);
    }
    JournalState prior;
    std::string error;
    ASSERT_TRUE(loadJournal(guard.path, prior, error)) << error;
    EXPECT_FALSE(prior.entries.at(specs[0].id).completed);

    // Resume without chaos: the failed spec re-runs and succeeds;
    // the done entries are honored.
    CampaignJournal journal(guard.path, header, true);
    SupervisorConfig cfg;
    cfg.isolation = Isolation::Process;
    cfg.jobs = 2;
    cfg.journal = &journal;
    cfg.resume = &prior;
    Supervisor supervisor(cfg);
    const SupervisorReport report = supervisor.run(specs);

    EXPECT_TRUE(report.allDone());
    EXPECT_EQ(report.executed, 1u);
    EXPECT_EQ(report.fromJournal, 2u);

    // And the journal now replays fully done.
    JournalState after;
    ASSERT_TRUE(loadJournal(guard.path, after, error)) << error;
    EXPECT_TRUE(after.entries.at(specs[0].id).completed);
}

} // namespace
} // namespace sam
