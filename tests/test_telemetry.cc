/**
 * @file
 * Tests for the telemetry subsystem: the log-linear histogram and
 * windowed time series primitives, the Device multi-observer hook, the
 * passive collector's request/command attribution, the summary JSON
 * documents, and the Perfetto trace-event exporter. Also pins the
 * zero-overhead contract: enabling telemetry must not change simulated
 * cycles.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/common/histogram.hh"
#include "src/common/timeseries.hh"
#include "src/common/types.hh"
#include "src/dram/device.hh"
#include "src/dram/timing.hh"
#include "src/imdb/query.hh"
#include "src/sim/system.hh"
#include "src/telemetry/perfetto.hh"
#include "src/telemetry/telemetry.hh"

namespace sam {
namespace {

// --------------------------------------------------------------------
// Histogram
// --------------------------------------------------------------------

TEST(Histogram, EmptyHistogramIsAllZero)
{
    const Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.quantile(0.5), 0.0);
    const HistogramSummary s = h.summary();
    EXPECT_EQ(s.count, 0u);
    EXPECT_EQ(s.p99, 0.0);
}

TEST(Histogram, SmallValuesGetExactBuckets)
{
    // Values below kSubBuckets are their own bucket: no quantization.
    Histogram h;
    for (std::uint64_t v = 0; v < Histogram::kSubBuckets; ++v) {
        EXPECT_EQ(Histogram::bucketIndex(v), v);
        EXPECT_EQ(Histogram::bucketLow(v), v);
        EXPECT_EQ(Histogram::bucketWidth(v), 1u);
        h.record(v);
    }
    for (std::uint64_t v = 0; v < Histogram::kSubBuckets; ++v)
        EXPECT_EQ(h.bucketCount(v), 1u);
}

TEST(Histogram, TracksExactCountMinMaxMean)
{
    Histogram h;
    h.record(10);
    h.record(1000);
    h.record(100);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.min(), 10u);
    EXPECT_EQ(h.max(), 1000u);
    EXPECT_DOUBLE_EQ(h.mean(), (10.0 + 1000.0 + 100.0) / 3.0);
}

TEST(Histogram, BucketGeometryIsConsistent)
{
    // Every value must land in a bucket whose [low, low+width) range
    // contains it, and the index must be monotone in the value.
    std::size_t prev = 0;
    for (std::uint64_t v : {std::uint64_t{0}, std::uint64_t{1},
                            std::uint64_t{15}, std::uint64_t{16},
                            std::uint64_t{17}, std::uint64_t{31},
                            std::uint64_t{32}, std::uint64_t{1000},
                            std::uint64_t{65535}, std::uint64_t{1} << 20,
                            (std::uint64_t{1} << 40) + 12345,
                            ~std::uint64_t{0}}) {
        const std::size_t idx = Histogram::bucketIndex(v);
        ASSERT_LT(idx, Histogram::kBuckets) << "v=" << v;
        EXPECT_GE(idx, prev) << "v=" << v;
        prev = idx;
        const std::uint64_t low = Histogram::bucketLow(idx);
        const std::uint64_t width = Histogram::bucketWidth(idx);
        EXPECT_LE(low, v) << "v=" << v;
        EXPECT_LT(v - low, width) << "v=" << v;
    }
}

TEST(Histogram, QuantilesWithinBucketRelativeError)
{
    // Uniform 1..10000: quantile estimates may only be off by the
    // bucket quantization, bounded by 1/kSubBuckets relative error.
    Histogram h;
    for (std::uint64_t v = 1; v <= 10000; ++v)
        h.record(v);
    for (double q : {0.10, 0.50, 0.95, 0.99}) {
        const double exact = 1.0 + q * 9999.0;
        const double got = h.quantile(q);
        EXPECT_NEAR(got, exact, exact / Histogram::kSubBuckets + 1.0)
            << "q=" << q;
    }
}

TEST(Histogram, QuantileClampedToObservedRange)
{
    Histogram h;
    h.record(100);
    h.record(200);
    EXPECT_GE(h.quantile(0.0), 100.0);
    EXPECT_LE(h.quantile(1.0), 200.0);
    // A single sample answers every quantile with itself.
    Histogram one;
    one.record(777);
    EXPECT_DOUBLE_EQ(one.quantile(0.01), 777.0);
    EXPECT_DOUBLE_EQ(one.quantile(0.99), 777.0);
}

TEST(Histogram, MergeMatchesRecordingEverythingInOne)
{
    Histogram a, b, all;
    for (std::uint64_t v = 1; v < 500; ++v) {
        (v % 2 ? a : b).record(v * 7);
        all.record(v * 7);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_EQ(a.min(), all.min());
    EXPECT_EQ(a.max(), all.max());
    EXPECT_DOUBLE_EQ(a.mean(), all.mean());
    for (double q : {0.5, 0.95, 0.99})
        EXPECT_DOUBLE_EQ(a.quantile(q), all.quantile(q));
}

// --------------------------------------------------------------------
// WindowSeries
// --------------------------------------------------------------------

TEST(WindowSeries, AggregatesSamplesIntoWindows)
{
    WindowSeries s(100, 16);
    s.add(0, 10.0);
    s.add(50, 30.0);
    s.add(150, 5.0);
    ASSERT_EQ(s.size(), 2u);
    EXPECT_EQ(s.window(0).index, 0u);
    EXPECT_DOUBLE_EQ(s.window(0).sum, 40.0);
    EXPECT_EQ(s.window(0).count, 2u);
    EXPECT_DOUBLE_EQ(s.window(0).peak, 30.0);
    EXPECT_DOUBLE_EQ(s.window(0).mean(), 20.0);
    EXPECT_EQ(s.window(1).index, 1u);
    EXPECT_DOUBLE_EQ(s.totalSum(), 45.0);
    EXPECT_EQ(s.windowCycles(), 100u);
}

TEST(WindowSeries, SkippedSpansAreZeroFilled)
{
    // A clock that jumps over a stall window must leave explicit idle
    // windows behind, not holes: the event engine's skipped spans have
    // to read the same as the step engine ticking through them.
    WindowSeries s(10, 16);
    s.add(5, 1.0);
    s.add(95, 1.0); // window 9; windows 1..8 materialize as zeros
    ASSERT_EQ(s.size(), 10u);
    for (std::size_t i = 1; i < 9; ++i) {
        EXPECT_EQ(s.window(i).index, i);
        EXPECT_EQ(s.window(i).count, 0u);
        EXPECT_DOUBLE_EQ(s.window(i).sum, 0.0);
    }
    EXPECT_EQ(s.window(9).count, 1u);
}

TEST(WindowSeries, WideSkipMaterializesOnlyRetainedWindows)
{
    WindowSeries s(10, 16);
    s.add(5, 1.0);
    s.add(995, 1.0); // window 99; only 84..99 fit the capacity
    EXPECT_EQ(s.size(), 16u);
    EXPECT_EQ(s.window(0).index, 84u);
    EXPECT_EQ(s.window(15).index, 99u);
    // Window 0 plus zero-fills 1..83 were evicted.
    EXPECT_EQ(s.evicted(), 84u);
}

TEST(WindowSeries, OutOfOrderWithinRetainedRangeIsAccepted)
{
    WindowSeries s(10, 16);
    s.add(5, 1.0);  // window 0
    s.add(95, 1.0); // window 9
    s.add(7, 2.0);  // window 0 again -- retained, so accepted
    ASSERT_EQ(s.size(), 10u);
    EXPECT_EQ(s.window(0).index, 0u);
    EXPECT_DOUBLE_EQ(s.window(0).sum, 3.0);
    EXPECT_EQ(s.droppedOld(), 0u);

    // But a sample older than the series' first-ever window is
    // dropped: windows are never created behind the front (zero-fill
    // only covers spans between samples, not the span before the
    // first).
    WindowSeries late(10, 16);
    late.add(95, 1.0);
    late.add(5, 2.0);
    EXPECT_EQ(late.size(), 1u);
    EXPECT_EQ(late.droppedOld(), 1u);
}

TEST(WindowSeries, EvictsOldestBeyondCapacity)
{
    WindowSeries s(10, 4);
    for (Cycle at = 0; at < 60; at += 10)
        s.add(at, 1.0);
    EXPECT_EQ(s.size(), 4u);
    EXPECT_EQ(s.evicted(), 2u);
    EXPECT_EQ(s.window(0).index, 2u);
}

TEST(WindowSeries, CountsSamplesForEvictedWindows)
{
    WindowSeries s(10, 2);
    s.add(0, 1.0);
    s.add(10, 1.0);
    s.add(20, 1.0); // evicts window 0
    s.add(3, 9.0);  // window 0 is gone: dropped, not resurrected
    EXPECT_EQ(s.droppedOld(), 1u);
    EXPECT_EQ(s.size(), 2u);
    EXPECT_EQ(s.window(0).index, 1u);
    EXPECT_DOUBLE_EQ(s.totalSum(), 2.0);
}

TEST(WindowSeries, RejectsDegenerateConfiguration)
{
    EXPECT_THROW(WindowSeries(0, 4), std::logic_error);
    EXPECT_THROW(WindowSeries(10, 0), std::logic_error);
}

// --------------------------------------------------------------------
// Device command-observer list
// --------------------------------------------------------------------

DeviceAccess
readAt(unsigned bg, unsigned bank, std::uint64_t row)
{
    DeviceAccess acc;
    acc.addr.bankGroup = bg;
    acc.addr.bank = bank;
    acc.addr.row = row;
    return acc;
}

TEST(DeviceObservers, MultipleObserversSeeTheSameStreamInAttachOrder)
{
    Device dev(Geometry{}, ddr4Timing());
    std::vector<std::string> order;
    std::vector<Command> first, second;
    int a = 0, b = 0;
    dev.addCommandObserver(&a, [&](const Command &c) {
        order.push_back("a");
        first.push_back(c);
    });
    dev.addCommandObserver(&b, [&](const Command &c) {
        order.push_back("b");
        second.push_back(c);
    });
    EXPECT_EQ(dev.commandObservers(), 2u);

    dev.access(readAt(0, 0, 7), 0);
    ASSERT_FALSE(first.empty());
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(first[i].kind, second[i].kind);
        EXPECT_EQ(first[i].at, second[i].at);
    }
    // Notification order is strictly a,b,a,b,... per command.
    ASSERT_EQ(order.size(), 2 * first.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i % 2 ? "b" : "a");
}

TEST(DeviceObservers, DoubleAttachSameOwnerAsserts)
{
    Device dev(Geometry{}, ddr4Timing());
    int owner = 0;
    unsigned seen = 0;
    dev.addCommandObserver(&owner, [&](const Command &) { ++seen; });
    EXPECT_THROW(dev.addCommandObserver(&owner, [](const Command &) {}),
                 std::logic_error);
    // Strong guarantee: the failed attach leaves the list untouched --
    // the original observer is still registered, alone, and fires.
    EXPECT_EQ(dev.commandObservers(), 1u);
    dev.access(readAt(0, 0, 3), 0);
    EXPECT_GT(seen, 0u);
    dev.removeCommandObserver(&owner);
    EXPECT_EQ(dev.commandObservers(), 0u);
}

TEST(DeviceObservers, RemoveDetachesOnlyThatOwner)
{
    Device dev(Geometry{}, ddr4Timing());
    int a = 0, b = 0;
    unsigned seen_a = 0, seen_b = 0;
    dev.addCommandObserver(&a, [&](const Command &) { ++seen_a; });
    dev.addCommandObserver(&b, [&](const Command &) { ++seen_b; });

    dev.access(readAt(0, 0, 1), 0);
    EXPECT_GT(seen_a, 0u);
    EXPECT_EQ(seen_a, seen_b);

    dev.removeCommandObserver(&a);
    EXPECT_EQ(dev.commandObservers(), 1u);
    const unsigned a_before = seen_a;
    dev.access(readAt(1, 0, 1), 0);
    EXPECT_EQ(seen_a, a_before);   // a no longer notified
    EXPECT_GT(seen_b, a_before);   // b still live

    int absent = 0;
    dev.removeCommandObserver(&absent); // no-op, must not throw
    EXPECT_EQ(dev.commandObservers(), 1u);
}

// --------------------------------------------------------------------
// Telemetry collector
// --------------------------------------------------------------------

TelemetryConfig
tracedConfig()
{
    TelemetryConfig cfg;
    cfg.enabled = true;
    cfg.commandTrace = true;
    cfg.windowCycles = 256;
    return cfg;
}

/** Drive one observed request through an attached collector. */
AccessResult
driveRequest(Device &dev, Telemetry &tel, std::uint64_t id,
             RequestClass cls, const DeviceAccess &acc, Cycle arrival,
             Cycle earliest)
{
    tel.beginRequest(id, cls, /*core=*/0, acc.addr.channel, arrival,
                     /*read_depth=*/1, /*write_depth=*/0, earliest);
    const AccessResult r = dev.access(acc, earliest);
    tel.endRequest(r, r.done);
    return r;
}

TEST(Telemetry, AttributesLatencyAndCommandsToRequests)
{
    const Geometry geom;
    Device dev(geom, ddr4Timing());
    Telemetry tel(tracedConfig(), geom, ddr4Timing());
    tel.attach(dev);
    EXPECT_EQ(dev.commandObservers(), 1u);

    const AccessResult r0 =
        driveRequest(dev, tel, 1, RequestClass::Read, readAt(0, 0, 3),
                     /*arrival=*/0, /*earliest=*/0);
    DeviceAccess wr = readAt(0, 0, 3);
    wr.isWrite = true;
    driveRequest(dev, tel, 2, RequestClass::Write, wr, r0.done, r0.done);

    const auto snap = tel.finish();
    EXPECT_EQ(dev.commandObservers(), 0u); // finish() detaches
    EXPECT_EQ(snap->totalRequests, 2u);
    EXPECT_GE(snap->totalCommands, 2u); // at least ACT + RD (+WR)
    EXPECT_EQ(snap->classHistogram(RequestClass::Read).count(), 1u);
    EXPECT_EQ(snap->classHistogram(RequestClass::Write).count(), 1u);
    EXPECT_EQ(snap->classHistogram(RequestClass::Scrub).count(), 0u);
    EXPECT_EQ(snap->latency[0].min(), r0.done); // arrival 0

    ASSERT_EQ(snap->requests.size(), 2u);
    const RequestRecord &req = snap->requests[0];
    EXPECT_EQ(req.id, 1u);
    ASSERT_NE(req.firstCmd, RequestRecord::kNoCommand);
    ASSERT_LE(req.lastCmd, snap->commands.size() - 1);
    // The first request's span must cover its ACT and RD.
    bool saw_rd = false;
    for (std::size_t i = req.firstCmd; i <= req.lastCmd; ++i)
        saw_rd = saw_rd || snap->commands[i].kind == CmdKind::Rd;
    EXPECT_TRUE(saw_rd);
}

TEST(Telemetry, BandwidthSeriesCountLineBytesPerCas)
{
    const Geometry geom;
    Device dev(geom, ddr4Timing());
    Telemetry tel(tracedConfig(), geom, ddr4Timing());
    tel.attach(dev);

    Cycle t = 0;
    for (int i = 0; i < 4; ++i) {
        const auto r = driveRequest(dev, tel, i, RequestClass::Read,
                                    readAt(0, 0, 3), t, t);
        t = r.done;
    }
    const auto snap = tel.finish();
    // 4 reads on one open row = 4 CAS = 4 cachelines on channel 0, all
    // attributed to the one touched bank.
    EXPECT_DOUBLE_EQ(snap->channels[0].bandwidthBytes.totalSum(),
                     4.0 * kCachelineBytes);
    double bank_bytes = 0;
    std::size_t active = 0;
    for (const WindowSeries &b : snap->bankBandwidth) {
        bank_bytes += b.totalSum();
        active += b.size() ? 1 : 0;
    }
    EXPECT_DOUBLE_EQ(bank_bytes, 4.0 * kCachelineBytes);
    EXPECT_EQ(active, 1u);
    // One row hit rate sample per request; first is a miss.
    const WindowSeries &hits = snap->channels[0].rowHitRate;
    double hit_count = 0, hit_sum = 0;
    for (const SeriesWindow &w : hits.windows()) {
        hit_count += static_cast<double>(w.count);
        hit_sum += w.sum;
    }
    EXPECT_DOUBLE_EQ(hit_count, 4.0);
    EXPECT_DOUBLE_EQ(hit_sum, 3.0);
}

TEST(Telemetry, CommandTraceBoundIsRespected)
{
    const Geometry geom;
    TelemetryConfig cfg = tracedConfig();
    cfg.maxTraceCommands = 2;
    Device dev(geom, ddr4Timing());
    Telemetry tel(cfg, geom, ddr4Timing());
    tel.attach(dev);

    Cycle t = 0;
    for (int i = 0; i < 8; ++i) {
        const auto r = driveRequest(dev, tel, i, RequestClass::Read,
                                    readAt(0, 0, i), t, t);
        t = r.done;
    }
    const auto snap = tel.finish();
    EXPECT_EQ(snap->commands.size(), 2u);
    EXPECT_GT(snap->droppedCommands, 0u);
    EXPECT_EQ(snap->totalCommands,
              snap->commands.size() + snap->droppedCommands);
    // Histograms keep counting past the trace bound.
    EXPECT_EQ(snap->classHistogram(RequestClass::Read).count(), 8u);
}

TEST(Telemetry, LifecycleAsserts)
{
    const Geometry geom;
    Device dev(geom, ddr4Timing());
    Telemetry tel(tracedConfig(), geom, ddr4Timing());
    tel.attach(dev);
    EXPECT_THROW(tel.attach(dev), std::logic_error);

    AccessResult r;
    EXPECT_THROW(tel.endRequest(r, 10), std::logic_error);

    (void)tel.finish();
    EXPECT_THROW(tel.finish(), std::logic_error);
}

TEST(Telemetry, DestructorDetachesFromDevice)
{
    const Geometry geom;
    Device dev(geom, ddr4Timing());
    {
        Telemetry tel(tracedConfig(), geom, ddr4Timing());
        tel.attach(dev);
        EXPECT_EQ(dev.commandObservers(), 1u);
    }
    EXPECT_EQ(dev.commandObservers(), 0u);
}

TEST(Telemetry, SummaryJsonHasTheDocumentedShape)
{
    const Geometry geom;
    Device dev(geom, ddr4Timing());
    Telemetry tel(tracedConfig(), geom, ddr4Timing());
    tel.attach(dev);
    driveRequest(dev, tel, 1, RequestClass::StrideRead, readAt(0, 1, 2),
                 0, 0);
    const auto snap = tel.finish();

    const std::string doc = snap->summaryJson().dump();
    for (const char *needle :
         {"\"schema\": \"sam-telemetry-v1\"", "\"latencyCycles\"",
          "\"stride_read\"", "\"p99\"", "\"channels\"",
          "\"bandwidthBytes\"", "\"queueDepth\"", "\"rowHitRate\"",
          "\"modeSwitches\"", "\"banks\"", "\"counters\"",
          "\"totalCommands\""}) {
        EXPECT_NE(doc.find(needle), std::string::npos) << needle;
    }

    // latencyJson only lists classes that actually saw requests.
    const std::string lat = snap->latencyJson().dump();
    EXPECT_NE(lat.find("\"stride_read\""), std::string::npos);
    EXPECT_EQ(lat.find("\"scrub\""), std::string::npos);
}

TEST(Telemetry, BankLabelsDecodeFlatIndices)
{
    const Geometry geom; // 1 channel, 2 ranks, 4x4 banks
    Device dev(geom, ddr4Timing());
    Telemetry tel(tracedConfig(), geom, ddr4Timing());
    const auto snap = tel.finish();
    EXPECT_EQ(snap->bankLabel(0), "ch0.rk0.bg0.bk0");
    EXPECT_EQ(snap->bankLabel(5), "ch0.rk0.bg1.bk1");
    EXPECT_EQ(snap->bankLabel(16), "ch0.rk1.bg0.bk0");
    EXPECT_EQ(snap->bankLabel(31), "ch0.rk1.bg3.bk3");
}

// --------------------------------------------------------------------
// Perfetto exporter
// --------------------------------------------------------------------

TEST(Perfetto, TraceDocumentHasTracksSlicesAndFlows)
{
    const Geometry geom;
    Device dev(geom, ddr4Timing());
    Telemetry tel(tracedConfig(), geom, ddr4Timing());
    tel.attach(dev);
    Cycle t = 0;
    for (int i = 0; i < 3; ++i) {
        const auto r = driveRequest(dev, tel, i, RequestClass::Read,
                                    readAt(0, 0, i), t, t);
        t = r.done;
    }
    const auto snap = tel.finish();
    const std::string doc = perfettoTraceJson(*snap).dump();

    for (const char *needle :
         {"\"traceEvents\"", "\"displayTimeUnit\"",
          "\"process_name\"", "\"thread_name\"",
          "\"ph\": \"M\"", "\"ph\": \"X\"",
          // Request->command flows: start, step, finish.
          "\"ph\": \"s\"", "\"ph\": \"f\"",
          "\"bp\": \"e\"",
          "\"cat\": \"req\"",
          "\"ACT\"", "\"RD\"", "\"requests\""}) {
        EXPECT_NE(doc.find(needle), std::string::npos) << needle;
    }
    // Durations are in microseconds: no command lasts a millisecond.
    EXPECT_EQ(doc.find("\"dur\": -"), std::string::npos);
}

TEST(Perfetto, EmptySnapshotStillProducesAValidSkeleton)
{
    const Geometry geom;
    Telemetry tel(tracedConfig(), geom, ddr4Timing());
    const auto snap = tel.finish();
    const std::string doc = perfettoTraceJson(*snap).dump();
    EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(doc.find("\"process_name\""), std::string::npos);
    EXPECT_EQ(doc.find("\"ph\": \"s\""), std::string::npos); // no flows
}

// --------------------------------------------------------------------
// End to end through the system simulator
// --------------------------------------------------------------------

SimConfig
tinyConfig()
{
    SimConfig cfg;
    cfg.taRecords = 512;
    cfg.tbRecords = 512;
    return cfg;
}

TEST(TelemetrySystem, RunProducesSnapshotWithLatencies)
{
    SimConfig cfg = tinyConfig();
    cfg.design = DesignKind::SamEn;
    cfg.telemetry.enabled = true;
    System sys(cfg);
    const RunStats r = sys.runQuery(benchmarkQsQueries()[0]);
    ASSERT_NE(r.telemetry, nullptr);
    EXPECT_GT(r.telemetry->totalRequests, 0u);
    EXPECT_GT(r.telemetry->totalCommands, 0u);
    std::uint64_t samples = 0;
    for (const Histogram &h : r.telemetry->latency)
        samples += h.count();
    EXPECT_EQ(samples, r.telemetry->totalRequests);
    // Command trace stays off unless requested.
    EXPECT_TRUE(r.telemetry->commands.empty());
    EXPECT_TRUE(r.telemetry->requests.empty());
}

TEST(TelemetrySystem, DisabledTelemetryLeavesNoSnapshot)
{
    System sys(tinyConfig());
    const RunStats r = sys.runQuery(benchmarkQQueries()[0]);
    EXPECT_EQ(r.telemetry, nullptr);
}

TEST(TelemetrySystem, CollectionIsTimingNeutral)
{
    // The acceptance bar for the whole subsystem: observing a run must
    // not change it. Same config with and without telemetry (and with
    // the full command trace) must report identical cycle counts.
    const Query q = benchmarkQsQueries()[0];
    SimConfig off = tinyConfig();
    off.design = DesignKind::SamEn;

    SimConfig on = off;
    on.telemetry.enabled = true;
    on.telemetry.commandTrace = true;

    const RunStats r_off = System(off).runQuery(q);
    const RunStats r_on = System(on).runQuery(q);
    EXPECT_EQ(r_off.cycles, r_on.cycles);
    EXPECT_TRUE(r_off.result == r_on.result);
    ASSERT_NE(r_on.telemetry, nullptr);
    EXPECT_GT(r_on.telemetry->commands.size(), 0u);
}

} // namespace
} // namespace sam
