/**
 * @file
 * Tests for the design specifications (Table 1 traits, Section 4
 * capabilities), the request-expansion model, the area model
 * (Section 6.1 / Figure 14(c)), and the power model.
 */

#include <gtest/gtest.h>

#include "src/area/area_model.hh"
#include "src/controller/address_mapping.hh"
#include "src/designs/design.hh"
#include "src/designs/design_model.hh"
#include "src/power/power_model.hh"

namespace sam {
namespace {

// --------------------------------------------------------------------
// DesignSpec
// --------------------------------------------------------------------

TEST(DesignSpecs, StrideCapabilityPerDesign)
{
    EXPECT_FALSE(makeDesign(DesignKind::Baseline).supportsStride);
    EXPECT_FALSE(makeDesign(DesignKind::Ideal).supportsStride);
    for (DesignKind d :
         {DesignKind::RcNvmBit, DesignKind::RcNvmWord, DesignKind::GsDram,
          DesignKind::GsDramEcc, DesignKind::SamSub, DesignKind::SamIo,
          DesignKind::SamEn}) {
        EXPECT_TRUE(makeDesign(d).supportsStride) << designName(d);
    }
}

TEST(DesignSpecs, SubstrateTechnology)
{
    EXPECT_EQ(makeDesign(DesignKind::RcNvmBit).tech, MemTech::RRAM);
    EXPECT_EQ(makeDesign(DesignKind::RcNvmWord).tech, MemTech::RRAM);
    EXPECT_EQ(makeDesign(DesignKind::SamEn).tech, MemTech::DRAM);
    // Figure 14(a) override.
    const auto d = makeDesign(DesignKind::SamEn, EccScheme::SscDsd,
                              MemTech::RRAM, true);
    EXPECT_EQ(d.tech, MemTech::RRAM);
}

TEST(DesignSpecs, GsDramForfeitsChipkill)
{
    const auto gs = makeDesign(DesignKind::GsDram, EccScheme::SscDsd);
    EXPECT_EQ(gs.ecc, EccScheme::None);
    EXPECT_FALSE(gs.traits.reliable);
    EXPECT_TRUE(gs.zeroModeSwitchCost); // widened command interface
    EXPECT_TRUE(gs.traits.modifiesCommandInterface);

    const auto sam = makeDesign(DesignKind::SamEn, EccScheme::SscDsd);
    EXPECT_EQ(sam.ecc, EccScheme::SscDsd);
    EXPECT_TRUE(sam.traits.reliable);
    EXPECT_FALSE(sam.traits.modifiesCommandInterface);
}

TEST(DesignSpecs, Table1CriticalWordFirst)
{
    // Section 5.4.1: SAM-sub, SAM-en, RC-NVM keep the default layout;
    // SAM-IO and GS-DRAM cannot deliver critical-word-first.
    EXPECT_TRUE(makeDesign(DesignKind::RcNvmWord).traits
                    .criticalWordFirst);
    EXPECT_TRUE(makeDesign(DesignKind::SamSub).traits.criticalWordFirst);
    EXPECT_TRUE(makeDesign(DesignKind::SamEn).traits.criticalWordFirst);
    EXPECT_FALSE(makeDesign(DesignKind::SamIo).traits
                     .criticalWordFirst);
    EXPECT_FALSE(makeDesign(DesignKind::GsDram).traits
                     .criticalWordFirst);
}

TEST(DesignSpecs, LayoutAssignments)
{
    EXPECT_EQ(makeDesign(DesignKind::SamIo).layout,
              LayoutKind::SamAligned);
    EXPECT_EQ(makeDesign(DesignKind::SamSub).layout,
              LayoutKind::VerticalGroup);
    EXPECT_EQ(makeDesign(DesignKind::GsDram).layout,
              LayoutKind::GsSegmented);
    EXPECT_EQ(makeDesign(DesignKind::Baseline).layout,
              LayoutKind::RowStore);
}

TEST(DesignSpecs, PowerAdjustments)
{
    // SAM-IO fetches 4 buffers internally; SAM-en's fine-grained
    // activation avoids it and trims activation energy; SAM-sub burns
    // 2% extra background in its added SA/decode logic.
    EXPECT_DOUBLE_EQ(makeDesign(DesignKind::SamIo).power.strideBurst,
                     2.5);
    EXPECT_DOUBLE_EQ(makeDesign(DesignKind::SamEn).power.strideBurst,
                     1.0);
    EXPECT_LT(makeDesign(DesignKind::SamEn).power.strideAct, 1.0);
    EXPECT_NEAR(makeDesign(DesignKind::SamSub).power.background, 1.02,
                1e-9);
}

// --------------------------------------------------------------------
// Area model (Section 6.1 / Figure 14(c))
// --------------------------------------------------------------------

TEST(AreaModelTest, PaperTotals)
{
    EXPECT_NEAR(AreaModel::areaOverhead(DesignKind::SamSub), 0.072,
                0.001);
    EXPECT_LT(AreaModel::areaOverhead(DesignKind::SamIo), 0.0001);
    EXPECT_NEAR(AreaModel::areaOverhead(DesignKind::SamEn), 0.007,
                0.0005);
    EXPECT_NEAR(AreaModel::areaOverhead(DesignKind::RcNvmBit), 0.15,
                0.01);
    EXPECT_NEAR(AreaModel::areaOverhead(DesignKind::RcNvmWord), 0.33,
                0.01);
    EXPECT_DOUBLE_EQ(AreaModel::areaOverhead(DesignKind::Baseline), 0.0);
}

TEST(AreaModelTest, StorageAndMetalLayers)
{
    EXPECT_DOUBLE_EQ(AreaModel::storageOverhead(DesignKind::GsDramEcc),
                     0.125);
    EXPECT_DOUBLE_EQ(AreaModel::storageOverhead(DesignKind::SamEn), 0.0);
    EXPECT_EQ(AreaModel::report(DesignKind::RcNvmWord).extraMetalLayers,
              2u);
    EXPECT_EQ(AreaModel::report(DesignKind::SamEn).extraMetalLayers, 0u);
}

TEST(AreaModelTest, SamSubComponentsMatchSection61)
{
    const AreaReport r = AreaModel::report(DesignKind::SamSub);
    ASSERT_EQ(r.areaComponents.size(), 4u);
    EXPECT_NEAR(r.areaComponents[0].fraction, 0.057, 1e-9); // M2 BLs
    EXPECT_NEAR(r.areaComponents[1].fraction, 0.007, 1e-9); // M3 ctrl
    EXPECT_NEAR(r.areaComponents[2].fraction, 0.008, 1e-9); // global SAs
}

TEST(AreaModelTest, OverheadDeratesTiming)
{
    const auto sub = makeDesign(DesignKind::SamSub);
    const TimingParams base = ddr4Timing();
    const TimingParams derated = base.derated(sub.areaOverhead);
    EXPECT_GT(derated.tRCD, base.tRCD);
    const auto io = makeDesign(DesignKind::SamIo);
    EXPECT_EQ(base.derated(io.areaOverhead).tRCD, base.tRCD);
}

// --------------------------------------------------------------------
// DesignModel request expansion
// --------------------------------------------------------------------

class DesignModelTest : public ::testing::Test
{
  protected:
    Geometry geom;
    AddressMapping mapping{geom};
};

TEST_F(DesignModelTest, RegularRequestIsSingleLine)
{
    DesignModel model(makeDesign(DesignKind::SamEn), mapping, 8);
    const MemRequest r =
        model.lineRequest(AccessType::Read, 0x4000, 10, 2);
    EXPECT_EQ(r.gatherCount, 1u);
    EXPECT_EQ(r.device.mode, AccessMode::Regular);
    EXPECT_EQ(r.arrival, 10u);
    EXPECT_EQ(r.coreId, 2u);
    EXPECT_EQ(r.device.extraBursts, 0u);
}

TEST_F(DesignModelTest, SamStrideStaysInRowAndUsesStrideMode)
{
    DesignModel model(makeDesign(DesignKind::SamEn), mapping, 8);
    GatherPlan plan;
    for (unsigned i = 0; i < 8; ++i)
        plan.lines.push_back(0x10000 + i * 1024ull); // one 8KB row
    plan.sector = 2;
    const MemRequest r =
        model.strideRequest(AccessType::StrideRead, plan, 5, 0);
    EXPECT_EQ(r.device.mode, AccessMode::Stride);
    EXPECT_FALSE(r.device.columnActivate);
    EXPECT_EQ(r.gatherCount, 8u);
    EXPECT_EQ(r.strideUnit, 8u);
}

TEST_F(DesignModelTest, CrossRowSubRowGatherRejected)
{
    DesignModel model(makeDesign(DesignKind::SamIo), mapping, 8);
    GatherPlan plan;
    for (unsigned i = 0; i < 8; ++i)
        plan.lines.push_back(i * Addr{8192}); // 8 different rows
    EXPECT_THROW(
        model.strideRequest(AccessType::StrideRead, plan, 0, 0),
        std::logic_error);
}

TEST_F(DesignModelTest, ColumnSubarrayGetsSyntheticRow)
{
    DesignModel model(makeDesign(DesignKind::SamSub), mapping, 8);
    GatherPlan plan;
    for (unsigned i = 0; i < 8; ++i)
        plan.lines.push_back(0x40000000ull + i * (Addr{8192} * 32));
    plan.sector = 1;
    const MemRequest a =
        model.strideRequest(AccessType::StrideRead, plan, 0, 0);
    EXPECT_TRUE(a.device.columnActivate);
    // Same field column again: same synthetic row (buffer hit).
    const MemRequest b =
        model.strideRequest(AccessType::StrideRead, plan, 0, 0);
    EXPECT_EQ(a.device.addr.row, b.device.addr.row);
    // A different field column opens a different column row.
    GatherPlan plan2 = plan;
    plan2.sector = 5;
    const MemRequest c =
        model.strideRequest(AccessType::StrideRead, plan2, 0, 0);
    EXPECT_NE(a.device.addr.row, c.device.addr.row);
}

TEST_F(DesignModelTest, GsDramStrideAvoidsModeSwitch)
{
    DesignModel model(makeDesign(DesignKind::GsDram), mapping, 8);
    GatherPlan plan;
    for (unsigned i = 0; i < 8; ++i)
        plan.lines.push_back(0x20000 + i * 64ull);
    const MemRequest r =
        model.strideRequest(AccessType::StrideRead, plan, 0, 0);
    EXPECT_EQ(r.device.mode, AccessMode::Regular);
}

TEST_F(DesignModelTest, EmbeddedEccAddsBursts)
{
    DesignModel model(makeDesign(DesignKind::GsDramEcc), mapping, 8);
    // First access to an ECC region: +1 fetch. Neighbouring line under
    // the same ECC line: no extra. A write: +1 update burst.
    const MemRequest a =
        model.lineRequest(AccessType::Read, 0x0, 0, 0);
    EXPECT_EQ(a.device.extraBursts, 1u);
    const MemRequest b =
        model.lineRequest(AccessType::Read, 0x40, 0, 0);
    EXPECT_EQ(b.device.extraBursts, 0u);
    const MemRequest c =
        model.lineRequest(AccessType::Write, 0x80000, 0, 0);
    EXPECT_EQ(c.device.extraBursts, 2u); // new ECC line + write-back
    model.reset();
    const MemRequest d =
        model.lineRequest(AccessType::Read, 0x40, 0, 0);
    EXPECT_EQ(d.device.extraBursts, 1u); // tracker cleared
}

TEST_F(DesignModelTest, BaselineRejectsStride)
{
    DesignModel model(makeDesign(DesignKind::Baseline), mapping, 8);
    GatherPlan plan;
    plan.lines.assign(8, 0x1000);
    EXPECT_THROW(
        model.strideRequest(AccessType::StrideRead, plan, 0, 0),
        std::logic_error);
}

TEST_F(DesignModelTest, SamIoStrideReadsCarryCwfLatency)
{
    DesignModel io(makeDesign(DesignKind::SamIo), mapping, 8);
    DesignModel en(makeDesign(DesignKind::SamEn), mapping, 8);
    GatherPlan plan;
    for (unsigned i = 0; i < 8; ++i)
        plan.lines.push_back(0x10000 + i * 1024ull);
    EXPECT_GT(io.strideRequest(AccessType::StrideRead, plan, 0, 0)
                  .device.extraLatency,
              0u);
    EXPECT_EQ(en.strideRequest(AccessType::StrideRead, plan, 0, 0)
                  .device.extraLatency,
              0u);
}

// --------------------------------------------------------------------
// Power model
// --------------------------------------------------------------------

TEST(PowerModelTest, EnergyComposesFromCounters)
{
    const PowerModel pm(ddr4Idd(), ddr4Timing(), 18);
    DeviceStats stats;
    stats.activates += 100;
    stats.reads += 1000;
    stats.writes += 200;
    stats.busBusyCycles += 4800;
    const PowerBreakdown p = pm.compute(stats, 100000);
    EXPECT_GT(p.actEnergyPj, 0.0);
    EXPECT_GT(p.rdwrEnergyPj, 0.0);
    EXPECT_GT(p.backgroundEnergyPj, 0.0);
    EXPECT_NEAR(p.totalEnergyPj(),
                p.actEnergyPj + p.rdwrEnergyPj + p.backgroundEnergyPj +
                    p.refreshEnergyPj,
                1e-6);
    EXPECT_GT(p.totalPowerMw(), 0.0);
}

TEST(PowerModelTest, StrideBurstFactorRaisesReadEnergy)
{
    DeviceStats stats;
    stats.strideReads += 1000;
    stats.activates += 10;
    const PowerModel plain(ddr4Idd(), ddr4Timing(), 18, {});
    const PowerModel wide(ddr4Idd(), ddr4Timing(), 18,
                          {1.0, 4.0, 1.0}); // SAM-IO
    const auto p0 = plain.compute(stats, 50000, 1.0);
    const auto p1 = wide.compute(stats, 50000, 1.0);
    EXPECT_NEAR(p1.rdwrEnergyPj / p0.rdwrEnergyPj, 4.0, 1e-6);
    EXPECT_DOUBLE_EQ(p1.backgroundEnergyPj, p0.backgroundEnergyPj);
}

TEST(PowerModelTest, FineGrainedActivationSavesActEnergy)
{
    DeviceStats stats;
    stats.activates += 1000;
    const PowerModel plain(ddr4Idd(), ddr4Timing(), 18, {});
    const PowerModel fga(ddr4Idd(), ddr4Timing(), 18,
                         {1.0, 1.0, 0.5}); // SAM-en option 1
    const auto p0 = plain.compute(stats, 50000, 1.0);
    const auto p1 = fga.compute(stats, 50000, 1.0);
    EXPECT_NEAR(p1.actEnergyPj / p0.actEnergyPj, 0.5, 1e-6);
    // With no stride traffic the factor is inert.
    const auto q0 = plain.compute(stats, 50000, 0.0);
    const auto q1 = fga.compute(stats, 50000, 0.0);
    EXPECT_DOUBLE_EQ(q1.actEnergyPj, q0.actEnergyPj);
}

TEST(PowerModelTest, RramHasTinyBackgroundAndCostlyWrites)
{
    const IddParams dram = ddr4Idd();
    const IddParams rram = rramIdd();
    EXPECT_LT(rram.idd3n, dram.idd3n / 3.0);
    EXPECT_GT(rram.idd4w, dram.idd4w * 2.0);
    EXPECT_DOUBLE_EQ(rram.idd5b, 0.0); // no refresh
}

TEST(PowerModelTest, RefreshEnergyCounted)
{
    DeviceStats stats;
    stats.refreshes += 50;
    const PowerModel pm(ddr4Idd(), ddr4Timing(), 18);
    const auto p = pm.compute(stats, 500000);
    EXPECT_GT(p.refreshEnergyPj, 0.0);
}

} // namespace
} // namespace sam
