/**
 * @file
 * Seeded differential fuzzing. A deterministic generator draws random
 * queries (all kinds, random fields, predicates, selectivities, limits)
 * and random ECC schemes, then every design executes the same sequence
 * with the protocol-checker oracle armed (SimConfig::check, on by
 * default, panics the run on any DDR timing/state violation). Results
 * are compared against the pure functional reference executor, and
 * across designs, so a divergence pinpoints the offending design and
 * query shape from the seed alone.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/random.hh"
#include "src/ecc/ecc_engine.hh"
#include "src/imdb/executor.hh"
#include "src/imdb/query.hh"
#include "src/sim/system.hh"

namespace sam {
namespace {

SimConfig
fuzzConfig()
{
    SimConfig cfg;
    cfg.taRecords = 512;
    cfg.tbRecords = 512;
    return cfg;
}

std::vector<unsigned>
randomFields(Rng &rng, unsigned num_fields, unsigned max_take)
{
    const unsigned take = 1 + static_cast<unsigned>(rng.below(max_take));
    std::vector<unsigned> fields;
    for (unsigned i = 0; i < take; ++i) {
        const unsigned f = static_cast<unsigned>(rng.below(num_fields));
        bool dup = false;
        for (unsigned g : fields)
            dup = dup || g == f;
        if (!dup)
            fields.push_back(f);
    }
    return fields;
}

double
randomSelectivity(Rng &rng)
{
    // Includes the degenerate 0%/100% endpoints worth fuzzing.
    static constexpr double kChoices[] = {0.0, 0.05, 0.25, 0.5,
                                          0.75, 0.95, 1.0};
    return kChoices[rng.below(std::size(kChoices))];
}

/**
 * One random query. The generator only promises queries that are legal
 * against the fuzzConfig() schemas (field indices in range).
 */
Query
randomQuery(Rng &rng, unsigned trial, const SimConfig &cfg)
{
    Query q;
    q.name = "fuzz" + std::to_string(trial);
    q.table = rng.below(2) ? TableRef::Tb : TableRef::Ta;
    const unsigned num_fields =
        q.table == TableRef::Ta ? cfg.taFields : cfg.tbFields;

    switch (rng.below(6)) {
      case 0:
        q.kind = QueryKind::Select;
        q.fields = randomFields(rng, num_fields, 8);
        break;
      case 1:
        q.kind = QueryKind::SelectStar;
        q.limit = rng.below(2) ? 1 + rng.below(64) : 0;
        break;
      case 2:
        q.kind = QueryKind::Aggregate;
        q.fields = randomFields(rng, num_fields, 4);
        q.fieldMajor = rng.below(2) != 0;
        break;
      case 3:
        q.kind = QueryKind::Update;
        q.fields = randomFields(rng, num_fields, 4);
        break;
      case 4:
        q.kind = QueryKind::Insert;
        q.table = TableRef::Tb; // inserts target the narrow table
        q.insertCount = 1 + rng.below(64);
        break;
      default: {
        q.kind = QueryKind::Join;
        q.table = TableRef::Ta;
        // The join checksum projects fields[0] from Ta and fields[1]
        // from Tb, so exactly two in-range-for-both fields are needed.
        const unsigned fa = static_cast<unsigned>(rng.below(cfg.tbFields));
        const unsigned fb = static_cast<unsigned>(rng.below(cfg.tbFields));
        q.fields = {fa, fb};
        q.joinField = static_cast<unsigned>(rng.below(cfg.tbFields));
        q.joinSelectivity = randomSelectivity(rng);
        q.joinExtraFilter = rng.below(2) != 0;
        break;
      }
    }

    if (q.kind != QueryKind::Insert && q.kind != QueryKind::Join &&
        rng.below(4) != 0) {
        q.hasPredicate = true;
        q.predField = static_cast<unsigned>(rng.below(num_fields));
        q.selectivity = randomSelectivity(rng);
        if (rng.below(4) == 0) {
            q.hasPredicate2 = true;
            q.predField2 = static_cast<unsigned>(rng.below(num_fields));
            q.selectivity2 = randomSelectivity(rng);
        }
    }
    if (rng.below(4) == 0)
        q.rowPreferred = true;
    return q;
}

EccScheme
randomScheme(Rng &rng)
{
    static constexpr EccScheme kSchemes[] = {
        EccScheme::None,   EccScheme::SecDed, EccScheme::Ssc,
        EccScheme::SscDsd, EccScheme::Ssc32,  EccScheme::Bamboo72,
    };
    return kSchemes[rng.below(std::size(kSchemes))];
}

std::string
ident(const std::string &s)
{
    std::string out = s;
    std::erase(out, '-');
    return out;
}

class FuzzDesignTest : public ::testing::TestWithParam<DesignKind>
{
};

TEST_P(FuzzDesignTest, RandomQueriesMatchReferenceUnderChecker)
{
    // One seed drives both the query shapes and the ECC scheme, so the
    // identical sequence replays on every design (and in isolation when
    // a failure needs debugging). check=true means the protocol oracle
    // re-validates the full command stream of each run and panics --
    // i.e. fails this test -- on any timing violation.
    Rng rng(0xf0220 + 1); // same stream for every design
    SimConfig cfg = fuzzConfig();
    cfg.design = GetParam();
    cfg.ecc = randomScheme(rng);
    System sys(cfg);
    ASSERT_TRUE(cfg.check);

    for (unsigned trial = 0; trial < 10; ++trial) {
        const Query q = randomQuery(rng, trial, cfg);
        const RunStats r = sys.runQuery(q);
        const QueryResult expect =
            referenceResult(q, sys.taSchema(), sys.tbSchema());
        ASSERT_TRUE(r.result == expect)
            << designName(GetParam()) << " trial " << trial << " kind "
            << static_cast<int>(q.kind) << ": rows " << r.result.rows
            << "/" << expect.rows << " agg " << r.result.aggregate << "/"
            << expect.aggregate << " cksum " << r.result.checksum << "/"
            << expect.checksum;
        EXPECT_GT(r.cycles, 0u) << q.name;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllDesigns, FuzzDesignTest,
    ::testing::Values(DesignKind::Baseline, DesignKind::RcNvmBit,
                      DesignKind::RcNvmWord, DesignKind::GsDram,
                      DesignKind::GsDramEcc, DesignKind::SamSub,
                      DesignKind::SamIo, DesignKind::SamEn,
                      DesignKind::Ideal),
    [](const auto &info) { return ident(designName(info.param)); });

TEST(FuzzDifferential, AllDesignsAgreeOnTheSameRandomSequence)
{
    // Cross-design differential check: the *simulated* machines differ
    // wildly (layouts, gathers, codeword reassembly, caches) but the
    // data they return must be bit-identical.
    static constexpr DesignKind kDesigns[] = {
        DesignKind::Baseline, DesignKind::RcNvmBit, DesignKind::RcNvmWord,
        DesignKind::GsDram,   DesignKind::GsDramEcc, DesignKind::SamSub,
        DesignKind::SamIo,    DesignKind::SamEn,    DesignKind::Ideal,
    };

    for (unsigned round = 0; round < 3; ++round) {
        std::vector<QueryResult> results;
        for (DesignKind design : kDesigns) {
            Rng rng(0xd1ff + round); // same stream for every design
            SimConfig cfg = fuzzConfig();
            cfg.design = design;
            cfg.ecc = randomScheme(rng);
            System sys(cfg);
            const Query q = randomQuery(rng, round, cfg);
            results.push_back(sys.runQuery(q).result);
        }
        for (std::size_t i = 1; i < results.size(); ++i) {
            EXPECT_TRUE(results[i] == results[0])
                << "round " << round << ": " << designName(kDesigns[i])
                << " diverges from " << designName(kDesigns[0]);
        }
    }
}

// --------------------------------------------------------------------
// Cross-engine fuzzing: random design/geometry/fault configs must be
// indistinguishable between the step and event replay engines
// --------------------------------------------------------------------

/**
 * One random system shape: design, ECC scheme, core count and MSHR
 * depth (the knobs the replay engines schedule around), table
 * geometry, cache scale, and a random fault model -- including
 * chipkill at a random cycle T.
 */
SimConfig
randomSystemConfig(Rng &rng)
{
    SimConfig cfg;
    static constexpr DesignKind kDesigns[] = {
        DesignKind::Baseline, DesignKind::RcNvmBit, DesignKind::RcNvmWord,
        DesignKind::GsDram,   DesignKind::GsDramEcc, DesignKind::SamSub,
        DesignKind::SamIo,    DesignKind::SamEn,    DesignKind::Ideal,
    };
    cfg.design = kDesigns[rng.below(std::size(kDesigns))];
    cfg.ecc = randomScheme(rng);
    cfg.cores = 1 + static_cast<unsigned>(rng.below(8));
    cfg.mshrsPerCore = 1 + static_cast<unsigned>(rng.below(16));
    // Multiples of 256 keep every design's gather factor dividing the
    // record count (a materialization precondition).
    cfg.taRecords = 256 * (1 + rng.below(3));
    cfg.tbRecords = 256 * (1 + rng.below(3));
    if (rng.below(2)) {
        // Tiny caches force far more replay traffic per query.
        cfg.caches.l1 = CacheParams{4 * 1024, 2, 64, 1};
        cfg.caches.l2 = CacheParams{16 * 1024, 4, 64, 2};
        cfg.caches.llc = CacheParams{64 * 1024, 8, 64, 4};
    }
    switch (rng.below(4)) {
      case 0:
        break; // no fault source
      case 1:
        cfg.faults.model = FaultModel::Transient;
        break;
      case 2:
        cfg.faults.model = FaultModel::StuckAt;
        break;
      default:
        cfg.faults.model = FaultModel::Chipkill;
        cfg.faults.chipkillAt = 10 + rng.below(500);
        cfg.faults.chipkillChip = static_cast<unsigned>(rng.below(18));
        break;
    }
    return cfg;
}

TEST(FuzzCrossEngine, RandomConfigsMatchStepEngineUnderChecker)
{
    // Differential fuzz of the tentpole claim: for ANY system shape,
    // the EventQueue engine's timing is bit-identical to the step
    // loop's. Both runs keep the protocol oracle armed, so a scheduling
    // bug that produced an illegal command stream panics rather than
    // silently matching. Fresh System per engine: fault injectors and
    // RAS logs are stateful.
    for (unsigned trial = 0; trial < 12; ++trial) {
        Rng rng(0xe7e + trial);
        const SimConfig shape = randomSystemConfig(rng);
        const Query q = randomQuery(rng, trial, shape);

        auto runWith = [&](ReplayEngineKind engine) {
            SimConfig cfg = shape;
            cfg.engine = engine;
            System sys(cfg);
            EXPECT_TRUE(cfg.check);
            return sys.runQuery(q);
        };
        const RunStats step = runWith(ReplayEngineKind::Step);
        const RunStats event = runWith(ReplayEngineKind::Event);

        const std::string label =
            "trial " + std::to_string(trial) + " " +
            designName(shape.design) + " cores=" +
            std::to_string(shape.cores) + " mshrs=" +
            std::to_string(shape.mshrsPerCore) + " fault=" +
            std::to_string(static_cast<int>(shape.faults.model));
        ASSERT_TRUE(step.result == event.result) << label;
        ASSERT_EQ(step.cycles, event.cycles) << label;
        EXPECT_EQ(step.memReads, event.memReads) << label;
        EXPECT_EQ(step.memWrites, event.memWrites) << label;
        EXPECT_EQ(step.strideReads, event.strideReads) << label;
        EXPECT_EQ(step.strideWrites, event.strideWrites) << label;
        EXPECT_EQ(step.activates, event.activates) << label;
        EXPECT_EQ(step.rowHits, event.rowHits) << label;
        EXPECT_EQ(step.rowMisses, event.rowMisses) << label;
        EXPECT_EQ(step.modeSwitches, event.modeSwitches) << label;
        EXPECT_EQ(step.eccCorrectedLines, event.eccCorrectedLines)
            << label;
        EXPECT_EQ(step.eccUncorrectable, event.eccUncorrectable)
            << label;
        EXPECT_EQ(step.checkedCommands, event.checkedCommands) << label;
        EXPECT_EQ(step.scrubWritebacks, event.scrubWritebacks) << label;
        EXPECT_EQ(step.readRetries, event.readRetries) << label;
        EXPECT_EQ(step.poisonedReads, event.poisonedReads) << label;
        EXPECT_EQ(step.linesRetired, event.linesRetired) << label;
    }
}

TEST(FuzzCrossEngine, ChaosSeedsMatchAcrossEngines)
{
    // The chaos harness's seed convention (0xc405 + k) drives its
    // kill-point schedule; reuse the same seed stream here to pin the
    // configs it replays to cross-engine identity as well.
    for (unsigned k = 0; k < 4; ++k) {
        Rng rng(0xc405 + k);
        const SimConfig shape = randomSystemConfig(rng);
        const Query q = randomQuery(rng, k, shape);
        auto cyclesWith = [&](ReplayEngineKind engine) {
            SimConfig cfg = shape;
            cfg.engine = engine;
            System sys(cfg);
            return sys.runQuery(q).cycles;
        };
        EXPECT_EQ(cyclesWith(ReplayEngineKind::Step),
                  cyclesWith(ReplayEngineKind::Event))
            << "chaos seed " << k;
    }
}

TEST(FuzzDifferential, SequenceIsDeterministicAcrossRuns)
{
    // The same seed must reproduce the same queries and the same
    // simulated timing -- the property that makes fuzz failures
    // replayable from their seed.
    auto once = [] {
        Rng rng(0xbeef);
        SimConfig cfg = fuzzConfig();
        cfg.design = DesignKind::SamEn;
        System sys(cfg);
        std::vector<Cycle> cycles;
        for (unsigned trial = 0; trial < 3; ++trial)
            cycles.push_back(sys.runQuery(randomQuery(rng, trial, cfg))
                                 .cycles);
        return cycles;
    };
    EXPECT_EQ(once(), once());
}

} // namespace
} // namespace sam
