/**
 * @file
 * Tests for the parallel campaign runner: the work-stealing thread
 * pool, campaign determinism across jobs counts, materialized-table
 * sharing through the TableCache, and the JSON writer.
 */

#include <atomic>
#include <gtest/gtest.h>
#include <set>
#include <stdexcept>

#include "src/common/json.hh"
#include "src/core/session.hh"
#include "src/runner/campaign.hh"
#include "src/common/thread_pool.hh"

namespace sam {
namespace {

// ----- ThreadPool ----------------------------------------------------

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.workers(), 4u);

    constexpr int kTasks = 100;
    std::vector<std::atomic<int>> hits(kTasks);
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < kTasks; ++i)
        tasks.push_back([&hits, i] { ++hits[i]; });
    pool.run(std::move(tasks));
    for (int i = 0; i < kTasks; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "task " << i;
}

TEST(ThreadPoolTest, ReusableAcrossBatches)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    for (int batch = 0; batch < 5; ++batch) {
        std::vector<std::function<void()>> tasks;
        for (int i = 0; i < 7; ++i)
            tasks.push_back([&count] { ++count; });
        pool.run(std::move(tasks));
    }
    EXPECT_EQ(count.load(), 35);
}

TEST(ThreadPoolTest, EmptyBatchIsANoOp)
{
    ThreadPool pool(2);
    pool.run({});
}

TEST(ThreadPoolTest, RethrowsFirstTaskError)
{
    ThreadPool pool(3);
    std::atomic<int> completed{0};
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 10; ++i) {
        tasks.push_back([&completed, i] {
            if (i == 4)
                throw std::runtime_error("task 4 failed");
            ++completed;
        });
    }
    EXPECT_THROW(pool.run(std::move(tasks)), std::runtime_error);
    // The failing task doesn't cancel its siblings.
    EXPECT_EQ(completed.load(), 9);

    // The pool recovers after an error: the next batch runs clean.
    std::atomic<int> after{0};
    std::vector<std::function<void()>> next;
    for (int i = 0; i < 4; ++i)
        next.push_back([&after] { ++after; });
    pool.run(std::move(next));
    EXPECT_EQ(after.load(), 4);
}

/**
 * Several workers throwing inside the same batch epoch must surface as
 * exactly one exception: the first failure wins, the rest are dropped,
 * and the pool drains the whole batch before rethrowing (no sibling
 * cancellation, no terminate from a second in-flight exception).
 */
TEST(ThreadPoolTest, MultipleThrowersInOneEpochSurfaceOneError)
{
    ThreadPool pool(4);
    std::atomic<int> completed{0};
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 24; ++i) {
        tasks.push_back([&completed, i] {
            if (i % 3 == 0)
                throw std::runtime_error("task " + std::to_string(i) +
                                         " failed");
            ++completed;
        });
    }
    try {
        pool.run(std::move(tasks));
        FAIL() << "expected the batch to rethrow";
    } catch (const std::runtime_error &e) {
        // One of the 8 throwers, verbatim; which one is a scheduling
        // race, but it must be a single intact message.
        const std::string what = e.what();
        EXPECT_EQ(what.rfind("task ", 0), 0u) << what;
        EXPECT_NE(what.find(" failed"), std::string::npos) << what;
    }
    // Every non-throwing sibling still ran to completion.
    EXPECT_EQ(completed.load(), 16);

    // The pool is reusable after a multi-failure epoch.
    std::atomic<int> after{0};
    std::vector<std::function<void()>> next;
    for (int i = 0; i < 6; ++i)
        next.push_back([&after] { ++after; });
    pool.run(std::move(next));
    EXPECT_EQ(after.load(), 6);
}

/**
 * With one worker the batch executes in order, so "first error" is
 * deterministic: the lowest-index thrower's message must be the one
 * rethrown even when later tasks also throw.
 */
TEST(ThreadPoolTest, SingleWorkerFirstErrorIsDeterministic)
{
    ThreadPool pool(1);
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 8; ++i) {
        tasks.push_back([i] {
            if (i >= 2)
                throw std::runtime_error("task " + std::to_string(i));
        });
    }
    try {
        pool.run(std::move(tasks));
        FAIL() << "expected the batch to rethrow";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "task 2");
    }
}

TEST(ThreadPoolTest, DefaultsToHostWorkers)
{
    ThreadPool pool;
    EXPECT_GE(pool.workers(), 1u);
    EXPECT_EQ(pool.workers(), ThreadPool::defaultWorkers());
}

// ----- CampaignRunner ------------------------------------------------

SimConfig
tinyConfig(DesignKind design)
{
    SimConfig cfg;
    cfg.design = design;
    cfg.taRecords = 256;
    cfg.tbRecords = 256;
    return cfg;
}

std::vector<RunSpec>
tinySpecs()
{
    std::vector<RunSpec> specs;
    const auto queries = benchmarkQQueries();
    for (DesignKind d :
         {DesignKind::Baseline, DesignKind::SamEn, DesignKind::SamIo}) {
        for (std::size_t qi = 0; qi < 4; ++qi) {
            const Query &q = queries[qi];
            specs.push_back(RunSpec{designName(d) + "/" + q.name,
                                    tinyConfig(d), q,
                                    /*verify=*/true});
        }
    }
    return specs;
}

TEST(CampaignRunnerTest, ResultsComeBackInSpecOrder)
{
    CampaignRunner runner(4);
    const auto specs = tinySpecs();
    const auto results = runner.run(specs);
    ASSERT_EQ(results.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        EXPECT_EQ(results[i].id, specs[i].id);
        EXPECT_EQ(results[i].design, specs[i].config.design);
        EXPECT_EQ(results[i].query, specs[i].query.name);
        EXPECT_GT(results[i].stats.cycles, 0u);
        EXPECT_GE(results[i].wallMs, 0.0);
    }
}

/**
 * The determinism contract of the campaign runner: identical specs
 * produce bit-identical RunStats (cycles, counters, the full gem5-style
 * stats dump, and the functional result) no matter how many workers
 * execute them. This is what makes committed BENCH_*.json baselines
 * comparable across machines and jobs counts.
 */
TEST(CampaignRunnerTest, BitIdenticalAcrossJobsCounts)
{
    const auto specs = tinySpecs();
    CampaignRunner serial(1);
    CampaignRunner wide(8);
    const auto a = serial.run(specs);
    const auto b = wide.run(specs);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE(a[i].id);
        EXPECT_EQ(a[i].stats.cycles, b[i].stats.cycles);
        EXPECT_EQ(a[i].stats.result, b[i].stats.result);
        EXPECT_EQ(a[i].stats.statsText, b[i].stats.statsText);
        EXPECT_EQ(a[i].stats.memReads, b[i].stats.memReads);
        EXPECT_EQ(a[i].stats.memWrites, b[i].stats.memWrites);
        EXPECT_EQ(a[i].stats.strideReads, b[i].stats.strideReads);
        EXPECT_EQ(a[i].stats.activates, b[i].stats.activates);
        EXPECT_EQ(a[i].stats.rowHits, b[i].stats.rowHits);
        EXPECT_EQ(a[i].stats.rowMisses, b[i].stats.rowMisses);
        EXPECT_EQ(a[i].stats.eccCorrectedLines,
                  b[i].stats.eccCorrectedLines);
        EXPECT_DOUBLE_EQ(a[i].stats.power.totalEnergyPj(),
                         b[i].stats.power.totalEnergyPj());
    }
}

TEST(CampaignRunnerTest, RepeatedRunsShareTheTableCache)
{
    CampaignRunner runner(2);
    const auto specs = tinySpecs();
    runner.run(specs);
    const auto &cache = runner.tableCache();
    const std::uint64_t misses_first = cache->misses();
    EXPECT_GT(misses_first, 0u);
    // A second pass over the same specs re-encodes nothing.
    runner.run(specs);
    EXPECT_EQ(cache->misses(), misses_first);
    EXPECT_GT(cache->hits(), 0u);
}

// ----- Session table sharing ----------------------------------------

TEST(SessionTest, SecondDesignReusesMaterializedTables)
{
    const SimConfig cfg = tinyConfig(DesignKind::Baseline);
    Session session(cfg);
    const auto &cache = session.tableCache();
    ASSERT_NE(cache, nullptr);

    // Qs1 is row-preferred, so the ideal design picks the row-store
    // layout and shares Baseline's table snapshot.
    const Query q = benchmarkQsQueries()[0];
    const RunStats first = session.run(DesignKind::Baseline, q);
    session.checkResult(q, first);
    const std::uint64_t misses_after_first = cache->misses();
    EXPECT_GT(misses_after_first, 0u);

    // The second design's system must install the already-encoded
    // snapshot instead of re-materializing, and still compute the
    // correct functional result.
    const RunStats second = session.run(DesignKind::Ideal, q);
    session.checkResult(q, second);
    EXPECT_EQ(cache->misses(), misses_after_first);
    EXPECT_GT(cache->hits(), 0u);
    EXPECT_EQ(first.result, second.result);
}

TEST(SessionTest, SessionsSharingACacheEncodeOnce)
{
    auto cache = std::make_shared<TableCache>();
    const SimConfig cfg = tinyConfig(DesignKind::SamEn);
    const Query q = benchmarkQQueries()[0];

    Session first(cfg, cache);
    const RunStats a = first.run(DesignKind::SamEn, q);
    first.checkResult(q, a);
    const std::uint64_t misses = cache->misses();

    Session second(cfg, cache);
    const RunStats b = second.run(DesignKind::SamEn, q);
    second.checkResult(q, b);
    EXPECT_EQ(cache->misses(), misses);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.statsText, b.statsText);
}

TEST(TableCacheTest, ColdBuildBytesIdenticalAtAnyThreadCount)
{
    // Large enough (>= 2^14 lines total) that the 8-thread cache takes
    // the parallel encode path rather than the small-build serial
    // fallback; the snapshots must still match the serial build bit
    // for bit.
    const Geometry geom;
    const TableSchema sa{"Ta", 16, 8192};  // 1 MiB
    const TableSchema sb{"Tb", 8, 4096};   // 256 KiB
    const Table ta(sa, Addr{1} << 30, LayoutKind::SamAligned, 8, geom);
    const Table tb(sb, ta.base() + ta.footprintBytes(),
                   LayoutKind::SamAligned, 8, geom);

    TableCache serial(1);
    TableCache parallel(8);
    const auto a = serial.materialized(ta, tb, EccScheme::SscDsd);
    const auto b = parallel.materialized(ta, tb, EccScheme::SscDsd);

    ASSERT_EQ(a->size(), b->size());
    EXPECT_EQ(a->blobBytes, b->blobBytes);
    EXPECT_EQ(a->addrs, b->addrs);
    EXPECT_EQ(a->clean, b->clean);
    EXPECT_EQ(a->arena, b->arena);
}

// ----- Json ----------------------------------------------------------

TEST(JsonTest, SerializesScalarsAndContainers)
{
    Json doc = Json::object();
    doc.set("name", "fig12");
    doc.set("jobs", 8u);
    doc.set("speedup", 4.25);
    doc.set("quick", true);
    doc.set("note", Json());
    Json arr = Json::array();
    arr.push(std::uint64_t{1234567890123456789ull});
    arr.push(-7);
    doc.set("runs", std::move(arr));

    EXPECT_EQ(doc.dump(0),
              "{\"name\":\"fig12\",\"jobs\":8,\"speedup\":4.25,"
              "\"quick\":true,\"note\":null,"
              "\"runs\":[1234567890123456789,-7]}");
}

TEST(JsonTest, EscapesStringsAndKeepsInsertionOrder)
{
    Json doc = Json::object();
    doc.set("b", "quote \" slash \\ nl \n tab \t");
    doc.set("a", 1);
    doc.set("b", "replaced"); // overwrite keeps the original slot
    EXPECT_EQ(doc.dump(0), "{\"b\":\"replaced\",\"a\":1}");

    Json esc = Json::object();
    esc.set("s", "a\"b\\c\nd");
    EXPECT_EQ(esc.dump(0), "{\"s\":\"a\\\"b\\\\c\\nd\"}");
}

TEST(JsonTest, DoublesRoundTripCompactly)
{
    Json v(0.1);
    EXPECT_EQ(v.dump(0), "0.1");
    Json third(1.0 / 3.0);
    double back = 0.0;
    std::sscanf(third.dump(0).c_str(), "%lf", &back);
    EXPECT_DOUBLE_EQ(back, 1.0 / 3.0);
}

TEST(JsonTest, RunResultJsonCarriesTheRunCounters)
{
    RunResult r;
    r.id = "SAM-en/Q1";
    r.design = DesignKind::SamEn;
    r.query = "Q1";
    r.stats.cycles = 42;
    r.stats.memReads = 7;
    r.wallMs = 1.5;
    const std::string text = runResultJson(r).dump(0);
    EXPECT_NE(text.find("\"id\":\"SAM-en/Q1\""), std::string::npos);
    EXPECT_NE(text.find("\"cycles\":42"), std::string::npos);
    EXPECT_NE(text.find("\"mem_reads\":7"), std::string::npos);
    EXPECT_NE(text.find("\"wall_ms\":1.5"), std::string::npos);
}

} // namespace
} // namespace sam
