/**
 * @file
 * Unit and property tests for the memory controller layer: address
 * mapping (bit slicing, Figure 10 stride remap),
 * FR-FCFS scheduling, write-drain watermarks, and timing-only mode.
 */

#include <gtest/gtest.h>

#include <set>

#include "src/common/random.hh"
#include "src/controller/address_mapping.hh"
#include "src/controller/controller.hh"
#include "src/controller/request_queue.hh"
#include "src/dram/data_path.hh"
#include "src/dram/device.hh"

namespace sam {
namespace {

// --------------------------------------------------------------------
// Address mapping
// --------------------------------------------------------------------

class MappingTest : public ::testing::Test
{
  protected:
    Geometry geom;
    AddressMapping map{geom};
};

TEST_F(MappingTest, FieldWidthsMatchGeometry)
{
    EXPECT_EQ(map.offsetBits(), 6u);
    EXPECT_EQ(map.columnBits(), 7u);   // 128 lines per 8KB row
    EXPECT_EQ(map.channelBits(), 0u);
    EXPECT_EQ(map.bankBits(), 2u);
    EXPECT_EQ(map.groupBits(), 2u);
    EXPECT_EQ(map.rankBits(), 1u);
    EXPECT_EQ(map.bankSelBits(), 5u);
}

TEST_F(MappingTest, DecomposeComposeRoundTrip)
{
    Rng rng(1);
    for (int i = 0; i < 2000; ++i) {
        const Addr addr =
            (rng.next() % geom.capacityBytes()) & ~Addr{63};
        const MappedAddr m = map.decompose(addr);
        EXPECT_EQ(map.compose(m), addr);
    }
}

TEST_F(MappingTest, CoordinatesInRange)
{
    Rng rng(2);
    for (int i = 0; i < 2000; ++i) {
        const Addr addr = rng.next() % geom.capacityBytes();
        const MappedAddr m = map.decompose(addr);
        EXPECT_LT(m.channel, geom.channels);
        EXPECT_LT(m.rank, geom.ranks);
        EXPECT_LT(m.bankGroup, geom.bankGroups);
        EXPECT_LT(m.bank, geom.banksPerGroup);
        EXPECT_LT(m.column, geom.linesPerRow());
        EXPECT_LT(m.row, geom.rowsPerBank);
    }
}

TEST_F(MappingTest, ConsecutiveLinesShareRow)
{
    // Column bits sit lowest: sequential lines fill a row (open-page
    // friendliness, Table 2).
    const Addr base = Addr{7} << 30;
    const MappedAddr first = map.decompose(base);
    for (unsigned i = 1; i < geom.linesPerRow(); ++i) {
        const MappedAddr m = map.decompose(base + i * 64ull);
        EXPECT_TRUE(m.sameRow(first)) << i;
        EXPECT_EQ(m.column, i);
    }
    // The next line after the row moves to another bank, same row id.
    const MappedAddr next =
        map.decompose(base + Addr{geom.rowBytes});
    EXPECT_FALSE(next.sameBank(first));
}

TEST_F(MappingTest, SameBankStrideIsTheFullBankSpan)
{
    // Consecutive DRAM rows of one bank are a full bank-span apart in
    // the flat address space (Table 2's rw:rk:bk:ch:cl order).
    const Addr a = Addr{1} << 30;
    const Addr b = a + (Addr{1} << 18); // +1 row, same selector bits
    const MappedAddr ma = map.decompose(a);
    const MappedAddr mb = map.decompose(b);
    EXPECT_EQ(mb.row, ma.row + 1);
    EXPECT_TRUE(ma.sameBank(mb));
}

TEST_F(MappingTest, StrideRemapIsInvolution)
{
    Rng rng(4);
    for (unsigned unit : {8u, 16u, 32u}) {
        const unsigned g = 64 / unit;
        for (int i = 0; i < 500; ++i) {
            const Addr v = rng.next() & ((Addr{1} << 40) - 1);
            EXPECT_EQ(map.strideRemap(map.strideRemap(v, g, unit), g,
                                      unit),
                      v);
        }
    }
}

TEST_F(MappingTest, StrideRemapWalksChunksAcrossLines)
{
    // Figure 10 semantics: a virtually-contiguous strided walk of 16B
    // chunks lands on chunk slot s of G consecutive physical lines.
    const unsigned unit = 16, g = 4;
    const Addr page = Addr{5} << 12;
    for (unsigned chunk = 0; chunk < g; ++chunk) {
        const Addr v = page + chunk * unit; // virtual chunk index
        const Addr p = map.strideRemap(v, g, unit);
        // Physical: line `chunk` of the group, chunk slot 0.
        EXPECT_EQ(p, page + chunk * kCachelineBytes);
    }
    // The second virtual line selects chunk slot 1 of each line.
    const Addr v2 = page + kCachelineBytes;
    EXPECT_EQ(map.strideRemap(v2, g, unit), page + unit);
}

TEST_F(MappingTest, StrideRemapPreservesPageBase)
{
    Rng rng(5);
    for (int i = 0; i < 300; ++i) {
        const Addr v = rng.next() & ((Addr{1} << 40) - 1);
        const Addr p = map.strideRemap(v, 8, 8);
        EXPECT_EQ(p & ~Addr{511}, v & ~Addr{511}); // same 512B group
    }
}

TEST_F(MappingTest, StrideGatherBuildsLinePlans)
{
    // The hardware view of an sload: G consecutive physical lines at
    // one chunk slot each, derived purely from the Figure 10 remap.
    for (unsigned unit : {8u, 16u, 32u}) {
        const unsigned g = 64 / unit;
        const Addr group_base = Addr{3} << 20;
        for (unsigned vline = 0; vline < g; ++vline) {
            const auto plan = map.strideGather(
                group_base + vline * kCachelineBytes, g, unit);
            ASSERT_EQ(plan.lines.size(), g);
            EXPECT_EQ(plan.sector, vline); // virtual line = chunk slot
            for (unsigned i = 0; i < g; ++i)
                EXPECT_EQ(plan.lines[i],
                          group_base + i * kCachelineBytes);
        }
    }
}

TEST_F(MappingTest, StrideGatherRoundTripsThroughData)
{
    // Scatter then gather through a DataPath using the ISA-level plan:
    // the virtual stride line reads back exactly.
    DataPath dp(EccScheme::SscDsd);
    const unsigned unit = 8, g = 8;
    const Addr base = Addr{9} << 20;
    std::vector<std::uint8_t> stride_line(kCachelineBytes);
    for (unsigned i = 0; i < kCachelineBytes; ++i)
        stride_line[i] = static_cast<std::uint8_t>(i * 3 + 1);
    const auto plan = map.strideGather(base + 2 * kCachelineBytes, g,
                                       unit);
    dp.strideWrite(plan.lines, plan.sector, unit, stride_line);
    const auto r = dp.strideRead(plan.lines, plan.sector, unit);
    EXPECT_EQ(r.data, stride_line);
}

// --------------------------------------------------------------------
// FR-FCFS controller
// --------------------------------------------------------------------

class ControllerTest : public ::testing::Test
{
  protected:
    ControllerTest()
        : device(geom, ddr4Timing()), dataPath(EccScheme::Ssc),
          mapping(geom), ctrl(device, dataPath, mapping)
    {
    }

    MemRequest
    readReq(Addr line, Cycle arrival)
    {
        MemRequest r;
        r.type = AccessType::Read;
        r.addr = line;
        r.arrival = arrival;
        r.id = nextId++;
        r.setLine(line);
        r.device.addr = mapping.decompose(line);
        return r;
    }

    MemRequest
    writeReq(Addr line, Cycle arrival)
    {
        MemRequest r = readReq(line, arrival);
        r.type = AccessType::Write;
        r.device.isWrite = true;
        r.writeData.assign(kCachelineBytes, 0x5a);
        return r;
    }

    Geometry geom;
    Device device;
    DataPath dataPath;
    AddressMapping mapping;
    MemoryController ctrl;
    std::uint64_t nextId = 1;
};

TEST_F(ControllerTest, EmptyControllerReturnsNothing)
{
    EXPECT_FALSE(ctrl.serviceNext().has_value());
    EXPECT_FALSE(ctrl.hasPending());
}

TEST_F(ControllerTest, ServesSingleRead)
{
    std::vector<std::uint8_t> line(kCachelineBytes, 0xab);
    dataPath.writeLine(0x1000, line);
    ctrl.push(readReq(0x1000, 0));
    const auto c = ctrl.serviceNext();
    ASSERT_TRUE(c.has_value());
    EXPECT_TRUE(c->isRead);
    EXPECT_GT(c->done, 0u);
    EXPECT_EQ(c->outcome.data, line);
}

TEST_F(ControllerTest, RowHitPreferredOverOlderConflict)
{
    // Open a row, then queue a conflicting request (older) and a
    // row-hit request (younger): FR-FCFS must pick the hit.
    ctrl.push(readReq(0x0, 0));
    ctrl.serviceNext(); // opens row of 0x0

    ctrl.push(readReq(Addr{geom.rowBytes} * 32, 1)); // same bank, other row
    ctrl.push(readReq(0x40, 2));                     // row hit
    const auto first = ctrl.serviceNext();
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->id, 3u); // the row hit (ids 1,2,3 in push order)
    EXPECT_GE(ctrl.stats().frRowHitPicks.value(), 1u);
}

TEST_F(ControllerTest, WritesDrainWhenReadsIdle)
{
    ctrl.push(writeReq(0x2000, 0));
    const auto c = ctrl.serviceNext();
    ASSERT_TRUE(c.has_value());
    EXPECT_FALSE(c->isRead);
    EXPECT_EQ(ctrl.stats().writesServed.value(), 1u);
    // The write landed functionally.
    EXPECT_EQ(dataPath.readLine(0x2000).data[0], 0x5a);
}

TEST_F(ControllerTest, ReadsPrioritisedUntilWriteWatermark)
{
    // Queue a few writes (below high watermark) and one read: the read
    // must be served first.
    for (int i = 0; i < 4; ++i)
        ctrl.push(writeReq(0x4000 + i * 64ull, 0));
    ctrl.push(readReq(0x8000, 0));
    const auto c = ctrl.serviceNext();
    ASSERT_TRUE(c.has_value());
    EXPECT_TRUE(c->isRead);
}

TEST_F(ControllerTest, WriteBurstTriggersDrainMode)
{
    // Fill beyond the high watermark: writes must start draining even
    // with reads present.
    for (int i = 0; i < 25; ++i)
        ctrl.push(writeReq(0x10000 + i * 64ull, 0));
    ctrl.push(readReq(0x20000, 0));
    const auto c = ctrl.serviceNext();
    ASSERT_TRUE(c.has_value());
    EXPECT_FALSE(c->isRead); // draining
}

TEST_F(ControllerTest, DrainAllCompletesEverything)
{
    for (int i = 0; i < 10; ++i) {
        ctrl.push(readReq(0x40000 + i * 4096ull, i));
        ctrl.push(writeReq(0x80000 + i * 4096ull, i));
    }
    const Cycle last = ctrl.drainAll();
    EXPECT_FALSE(ctrl.hasPending());
    EXPECT_GT(last, 0u);
    EXPECT_EQ(ctrl.stats().readsServed.value(), 10u);
    EXPECT_EQ(ctrl.stats().writesServed.value(), 10u);
}

TEST_F(ControllerTest, SequentialReadsPipelineOnOpenRow)
{
    // 16 sequential lines: one ACT, 15 hits; throughput near tBL.
    std::vector<Cycle> done;
    for (int i = 0; i < 16; ++i)
        ctrl.push(readReq(0x100000 + i * 64ull, 0));
    while (auto c = ctrl.serviceNext())
        done.push_back(c->done);
    ASSERT_EQ(done.size(), 16u);
    // Average spacing of completions close to the burst length.
    const double span =
        static_cast<double>(done.back() - done.front());
    EXPECT_LT(span / 15.0, ddr4Timing().tCCD_L + 1);
    EXPECT_EQ(device.stats().activates.value(), 1u);
}

TEST_F(ControllerTest, TimingOnlyModeSkipsData)
{
    MemoryController dry(device, dataPath, mapping, {}, false);
    MemRequest r = readReq(0x3000, 0);
    dry.push(std::move(r));
    const auto c = dry.serviceNext();
    ASSERT_TRUE(c.has_value());
    EXPECT_TRUE(c->outcome.data.empty()); // no functional read
    // Timing-only writes need no payload.
    MemRequest w;
    w.type = AccessType::Write;
    w.addr = 0x3040;
    w.setLine(0x3040);
    w.device.addr = mapping.decompose(0x3040);
    w.device.isWrite = true;
    dry.push(std::move(w));
    EXPECT_NO_THROW(dry.serviceNext());
}

TEST_F(ControllerTest, StrideRequestGathersFunctionally)
{
    std::vector<Addr> lines;
    for (unsigned i = 0; i < 4; ++i) {
        const Addr a = 0x200000 + i * 64ull;
        std::vector<std::uint8_t> data(kCachelineBytes,
                                       static_cast<std::uint8_t>(i));
        dataPath.writeLine(a, data);
        lines.push_back(a);
    }
    MemRequest r;
    r.type = AccessType::StrideRead;
    r.addr = lines[0];
    r.sector = 1;
    r.strideUnit = 16;
    r.setLines(lines.data(), lines.size());
    r.device.addr = mapping.decompose(lines[0]);
    r.device.mode = AccessMode::Stride;
    r.id = 99;
    ctrl.push(std::move(r));
    const auto c = ctrl.serviceNext();
    ASSERT_TRUE(c.has_value());
    for (unsigned i = 0; i < 4; ++i) {
        for (unsigned b = 0; b < 16; ++b)
            EXPECT_EQ(c->outcome.data[i * 16 + b], i);
    }
    EXPECT_EQ(ctrl.stats().strideReadsServed.value(), 1u);
}

TEST_F(ControllerTest, ReadLatencyAccumulates)
{
    ctrl.push(readReq(0x5000, 0));
    ctrl.serviceNext();
    EXPECT_GT(ctrl.stats().totalReadLatency.value(), 0.0);
}

// The queue removes heap entries lazily and rebuilds its indexes once
// stale entries outnumber live ones (RequestQueue::maybeCompact). Churn
// through enough push/pop cycles to cross the rebuild budget
// (2 * live + 64) many times over while the live backlog stays small,
// and check the FR-FCFS pick order and size bookkeeping never drift.
// With no open rows in the device, every pick is rule 2: oldest
// insertion first.
TEST_F(ControllerTest, RequestQueueCompactionKeepsFcfsOrder)
{
    RequestQueue q(geom);
    bool row_hit = false;
    std::uint64_t expect_id = 1;

    // Sustained churn: grow the backlog to 96, then pop 64, for many
    // rounds. Spread requests over distinct rows so the row buckets
    // accumulate stale entries too.
    for (unsigned round = 0; round < 32; ++round) {
        for (unsigned i = 0; i < 96; ++i) {
            const Addr line =
                Addr{(round * 96 + i) % 1024} * geom.rowBytes +
                (i % 8) * kCachelineBytes;
            q.push(readReq(line, /*arrival=*/0));
        }
        for (unsigned i = 0; i < 64; ++i) {
            ASSERT_FALSE(q.empty());
            const MemRequest r = q.popBest(/*now=*/1, row_hit);
            EXPECT_FALSE(row_hit);
            ASSERT_EQ(r.id, expect_id++);
        }
    }
    // 32 * (96 - 64) requests remain; drain them in insertion order.
    EXPECT_EQ(q.size(), 32u * 32u);
    while (!q.empty()) {
        const MemRequest r = q.popBest(/*now=*/1, row_hit);
        ASSERT_EQ(r.id, expect_id++);
    }
    EXPECT_EQ(expect_id, nextId);
    EXPECT_EQ(q.size(), 0u);
}

// Same churn with future arrivals: requests promote from the pending
// heap as the clock advances, so compaction also runs against a queue
// whose eligible set is a moving subset of the backlog.
TEST_F(ControllerTest, RequestQueueCompactionWithStaggeredArrivals)
{
    RequestQueue q(geom);
    bool row_hit = false;
    // 1024 requests arriving at cycles 0, 10, 20, ...; each pop runs
    // at `now` just past its own request's arrival, so only a small
    // arrived window is eligible at any pick.
    for (unsigned i = 0; i < 1024; ++i) {
        q.push(readReq(Addr{i % 256} * geom.rowBytes,
                       /*arrival=*/Cycle{i} * 10));
    }
    std::uint64_t expect_id = nextId - 1024;
    for (unsigned i = 0; i < 1024; ++i) {
        const MemRequest r =
            q.popBest(/*now=*/Cycle{i} * 10 + 1, row_hit);
        ASSERT_EQ(r.id, expect_id++);
    }
    EXPECT_TRUE(q.empty());
}

} // namespace
} // namespace sam
