/**
 * @file
 * Integration tests: the full system simulator end to end. Every
 * benchmark query on every design must (a) produce functionally exact
 * results (checked against the pure reference executor -- the data
 * really flowed through layouts, gathers, codewords, and caches), and
 * (b) land in the paper's qualitative performance ordering. Also
 * covers chipkill failure injection during live queries and run
 * determinism.
 */

#include <gtest/gtest.h>

#include "src/core/session.hh"
#include "src/imdb/executor.hh"
#include "src/imdb/query.hh"
#include "src/sim/system.hh"

namespace sam {
namespace {

SimConfig
smallConfig()
{
    SimConfig cfg;
    cfg.taRecords = 1024;
    cfg.tbRecords = 2048;
    return cfg;
}

std::string
ident(const std::string &s)
{
    std::string out = s;
    std::erase(out, '-');
    return out;
}

// --------------------------------------------------------------------
// Functional exactness on every design x every query
// --------------------------------------------------------------------

class DesignQueryTest : public ::testing::TestWithParam<DesignKind>
{
};

TEST_P(DesignQueryTest, AllBenchmarkQueriesMatchReference)
{
    SimConfig cfg = smallConfig();
    cfg.design = GetParam();
    System sys(cfg);
    auto queries = benchmarkQQueries();
    const auto qs = benchmarkQsQueries();
    queries.insert(queries.end(), qs.begin(), qs.end());
    for (const auto &q : queries) {
        const RunStats r = sys.runQuery(q);
        const QueryResult expect =
            referenceResult(q, sys.taSchema(), sys.tbSchema());
        EXPECT_TRUE(r.result == expect)
            << designName(GetParam()) << " " << q.name << ": rows "
            << r.result.rows << "/" << expect.rows << " agg "
            << r.result.aggregate << "/" << expect.aggregate
            << " cksum " << r.result.checksum << "/" << expect.checksum;
        EXPECT_GT(r.cycles, 0u) << q.name;
        EXPECT_GT(r.power.totalPowerMw(), 0.0) << q.name;
    }
}

TEST_P(DesignQueryTest, ArithAndAggrMatchReference)
{
    SimConfig cfg = smallConfig();
    cfg.design = GetParam();
    System sys(cfg);
    for (const Query &q :
         {arithQuery(8, 0.3, cfg.taFields),
          aggrQuery(16, 0.6, cfg.taFields)}) {
        const RunStats r = sys.runQuery(q);
        const QueryResult expect =
            referenceResult(q, sys.taSchema(), sys.tbSchema());
        EXPECT_TRUE(r.result == expect)
            << designName(GetParam()) << " " << q.name;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllDesigns, DesignQueryTest,
    ::testing::Values(DesignKind::Baseline, DesignKind::RcNvmBit,
                      DesignKind::RcNvmWord, DesignKind::GsDram,
                      DesignKind::GsDramEcc, DesignKind::SamSub,
                      DesignKind::SamIo, DesignKind::SamEn,
                      DesignKind::Ideal),
    [](const auto &info) { return ident(designName(info.param)); });

// --------------------------------------------------------------------
// Paper-shape properties
// --------------------------------------------------------------------

class ShapeTest : public ::testing::Test
{
  protected:
    static Session &
    session()
    {
        static Session s([] {
            SimConfig cfg;
            cfg.taRecords = 4096;
            cfg.tbRecords = 4096;
            return cfg;
        }());
        return s;
    }
};

TEST_F(ShapeTest, SamAcceleratesColumnScans)
{
    const Query q1 = benchmarkQQueries()[0];
    const auto c = session().compare(DesignKind::SamEn, q1);
    EXPECT_GT(c.speedup, 2.0);
    EXPECT_GT(c.design.strideReads, 0u);
    EXPECT_EQ(c.baseline.strideReads, 0u);
}

TEST_F(ShapeTest, SamDoesNotDegradeRowScans)
{
    // Paper: < 1% degradation on Qs queries for SAM-IO / SAM-en.
    for (const auto &q : benchmarkQsQueries()) {
        const auto c = session().compare(DesignKind::SamEn, q);
        EXPECT_GT(c.speedup, 0.95) << q.name;
        EXPECT_EQ(c.design.strideReads, 0u) << q.name; // regular mode
    }
}

TEST_F(ShapeTest, ColumnSubarrayDesignsDegradeRowScans)
{
    // Paper: SAM-sub / RC-NVM lose 30-58% on Qs queries.
    const Query qs3 = benchmarkQsQueries()[2];
    for (DesignKind d : {DesignKind::SamSub, DesignKind::RcNvmWord}) {
        const auto c = session().compare(d, qs3);
        EXPECT_LT(c.speedup, 0.9) << designName(d);
        EXPECT_GT(c.speedup, 0.2) << designName(d);
    }
}

TEST_F(ShapeTest, GmeanOrderingMatchesFigure12)
{
    std::map<DesignKind, double> gmean;
    for (DesignKind d :
         {DesignKind::RcNvmBit, DesignKind::RcNvmWord,
          DesignKind::GsDramEcc, DesignKind::SamSub, DesignKind::SamIo,
          DesignKind::SamEn}) {
        std::vector<double> sp;
        for (const auto &q : benchmarkQQueries()) {
            if (q.kind == QueryKind::Join)
                continue; // joins are noisy at test scale
            sp.push_back(session().compare(d, q).speedup);
        }
        gmean[d] = geometricMean(sp);
    }
    // SAM-IO/SAM-en lead; SAM-sub beats RC-NVM-wd; GS-DRAM-ecc and
    // RC-NVM-bit trail (Figure 12 discussion).
    EXPECT_GE(gmean[DesignKind::SamEn], gmean[DesignKind::SamSub]);
    EXPECT_GE(gmean[DesignKind::SamIo], gmean[DesignKind::SamSub]);
    EXPECT_GE(gmean[DesignKind::SamSub], gmean[DesignKind::RcNvmWord]);
    EXPECT_GT(gmean[DesignKind::RcNvmWord],
              gmean[DesignKind::RcNvmBit]);
    EXPECT_GT(gmean[DesignKind::SamEn], gmean[DesignKind::GsDramEcc]);
    EXPECT_GT(gmean[DesignKind::SamEn], 2.0);
}

TEST_F(ShapeTest, SamIoDrawsMoreStridePowerThanSamEn)
{
    // Figure 13: SAM-IO's wide internal fetch raises read power; SAM-en
    // avoids it via fine-grained activation.
    const Query q5 = benchmarkQQueries()[4];
    const auto io = session().run(DesignKind::SamIo, q5);
    const auto en = session().run(DesignKind::SamEn, q5);
    EXPECT_GT(io.power.rdwrPowerMw(), en.power.rdwrPowerMw() * 1.5);
}

TEST_F(ShapeTest, EnergyEfficiencyImprovesWithSam)
{
    const Query q3 = benchmarkQQueries()[2];
    const auto c = session().compare(DesignKind::SamEn, q3);
    EXPECT_GT(c.energyEfficiency, 1.5);
}

TEST_F(ShapeTest, ModeSwitchesAreRare)
{
    // Section 5.3: "the mode switch does not happen frequently".
    const Query q1 = benchmarkQQueries()[0];
    const auto r = session().run(DesignKind::SamEn, q1);
    EXPECT_LT(r.modeSwitches * 20, r.strideReads + 1);
}

TEST_F(ShapeTest, RramSubstrateSlowsWrites)
{
    // Figure 14(a) mechanism: the same design on RRAM pays on writes.
    SimConfig cfg;
    cfg.taRecords = 1024;
    cfg.tbRecords = 1024;
    cfg.design = DesignKind::SamEn;
    System dram_sys(cfg);
    cfg.overrideTech = true;
    cfg.tech = MemTech::RRAM;
    System rram_sys(cfg);
    const Query qs6 = benchmarkQsQueries()[5]; // insert-heavy
    const auto dram_run = dram_sys.runQuery(qs6);
    const auto rram_run = rram_sys.runQuery(qs6);
    EXPECT_GT(rram_run.cycles, dram_run.cycles);
}

// --------------------------------------------------------------------
// Reliability: chipkill during live queries
// --------------------------------------------------------------------

TEST(SystemReliability, ChipFailureDuringQueryIsCorrected)
{
    SimConfig cfg = smallConfig();
    cfg.design = DesignKind::SamEn; // SSC-DSD chipkill
    System sys(cfg);
    const Query q3 = benchmarkQQueries()[2];
    // Warm run materializes tables; then fail a chip and re-run.
    sys.runQuery(q3);
    sys.dataPath().failChip(5);
    const RunStats r = sys.runQuery(q3);
    EXPECT_TRUE(r.result ==
                referenceResult(q3, sys.taSchema(), sys.tbSchema()));
    EXPECT_GT(r.eccCorrectedLines, 0u);
    EXPECT_EQ(r.eccUncorrectable, 0u);
}

TEST(SystemReliability, GsDramHasNoProtection)
{
    SimConfig cfg = smallConfig();
    cfg.design = DesignKind::GsDram; // EccScheme::None
    System sys(cfg);
    const Query q3 = benchmarkQQueries()[2];
    sys.runQuery(q3);
    sys.dataPath().failChip(5);
    const RunStats r = sys.runQuery(q3);
    // The corrupted data flows straight into the query result.
    EXPECT_FALSE(r.result ==
                 referenceResult(q3, sys.taSchema(), sys.tbSchema()));
    EXPECT_EQ(r.eccCorrectedLines, 0u);
}

// --------------------------------------------------------------------
// Determinism and Session API
// --------------------------------------------------------------------

TEST(SystemDeterminism, IdenticalRunsProduceIdenticalCycles)
{
    const Query q1 = benchmarkQQueries()[0];
    SimConfig cfg = smallConfig();
    cfg.design = DesignKind::SamIo;
    System a(cfg);
    System b(cfg);
    const auto ra = a.runQuery(q1);
    const auto rb = b.runQuery(q1);
    EXPECT_EQ(ra.cycles, rb.cycles);
    EXPECT_EQ(ra.activates, rb.activates);
    EXPECT_TRUE(ra.result == rb.result);
}

TEST(SessionApi, CompareComputesPaperMetrics)
{
    Session session(smallConfig());
    const Query q1 = benchmarkQQueries()[0];
    const auto c = session.compare(DesignKind::SamEn, q1);
    EXPECT_NEAR(c.speedup,
                static_cast<double>(c.baseline.cycles) /
                    static_cast<double>(c.design.cycles),
                1e-9);
    EXPECT_GT(c.energyEfficiency, 0.0);
    EXPECT_NO_THROW(session.checkResult(q1, c.design));
}

TEST(SessionApi, SystemsAreCachedPerDesign)
{
    Session session(smallConfig());
    System &a = session.system(DesignKind::SamEn);
    System &b = session.system(DesignKind::SamEn);
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(a.spec().kind, DesignKind::SamEn);
}

TEST(SessionApi, GeometricMeanBasics)
{
    EXPECT_DOUBLE_EQ(geometricMean({4.0, 1.0}), 2.0);
    EXPECT_NEAR(geometricMean({2.0, 2.0, 2.0}), 2.0, 1e-12);
    EXPECT_THROW(geometricMean({}), std::logic_error);
    EXPECT_THROW(geometricMean({1.0, 0.0}), std::logic_error);
}

TEST(SystemConfig, GranularityChangesGatherFactor)
{
    SimConfig cfg = smallConfig();
    cfg.ecc = EccScheme::Ssc; // 8-bit granularity: G = 4
    cfg.design = DesignKind::SamEn;
    System sys(cfg);
    EXPECT_EQ(sys.strideUnit(), 16u);
    const Query q3 = benchmarkQQueries()[2];
    const auto r = sys.runQuery(q3);
    EXPECT_TRUE(r.result ==
                referenceResult(q3, sys.taSchema(), sys.tbSchema()));
}

} // namespace
} // namespace sam
