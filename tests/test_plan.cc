/**
 * @file
 * Tests for the engine's cost-based plan selection (Section 6.2's
 * selectivity/projectivity trade-off): when column plans and stride
 * gathers pay off, how the ideal store picks its layout, and that the
 * executor's choices produce the expected access mix.
 */

#include <gtest/gtest.h>

#include "src/imdb/executor.hh"
#include "src/imdb/query.hh"
#include "src/sim/system.hh"

namespace sam {
namespace {

const TableSchema kTa{"Ta", 128, 4096};
const TableSchema kTb{"Tb", 16, 4096};

TEST(PlanChoice_, NarrowProjectionPrefersColumns)
{
    // Q1-shape: 2 fields of a 128-field record at 25% selectivity.
    Query q = benchmarkQQueries()[0];
    const PlanChoice p = choosePlan(q, kTa, 8);
    EXPECT_TRUE(p.worthColumns);
    EXPECT_TRUE(p.strideProject);
}

TEST(PlanChoice_, FullProjectionPrefersRows)
{
    // Reading every field of every record: nothing beats the
    // sequential record-major scan.
    const Query q = aggrQuery(128, 1.0, 128);
    const PlanChoice p = choosePlan(q, kTa, 8);
    EXPECT_FALSE(p.worthColumns);
}

TEST(PlanChoice_, HighProjectivityLowSelectivityFetchesRegularly)
{
    // Many fields of few records: gathers would drag G-1 unused
    // chunks per field; record-contiguous reads win.
    const Query q = arithQuery(64, 0.1, 128);
    const PlanChoice p = choosePlan(q, kTa, 8);
    EXPECT_FALSE(p.strideProject);
    EXPECT_TRUE(p.worthColumns); // the predicate scan still pays
}

TEST(PlanChoice_, SelectStarOnNarrowTableAtLowSelectivity)
{
    // Q2: SELECT * FROM Tb, predicate mostly false: the predicate
    // column scan dominates, columns pay.
    const Query q2 = benchmarkQQueries()[1];
    const PlanChoice p = choosePlan(q2, kTb, 8);
    EXPECT_TRUE(p.worthColumns);
}

TEST(PlanChoice_, RowFallbackChangesTheBreakEven)
{
    // A column store with no row copy pays column-line costs for the
    // projected fetch; with high projectivity at low selectivity it
    // should keep a row copy, while a stride design (row-aligned
    // layout underneath) can still justify the predicate sload scan.
    const Query q = arithQuery(128, 0.1, 128);
    EXPECT_TRUE(choosePlan(q, kTa, 8, true).worthColumns);
    EXPECT_FALSE(choosePlan(q, kTa, 8, false).worthColumns);
}

TEST(PlanChoice_, IdealPicksRowStoreForFullScans)
{
    SimConfig cfg;
    cfg.taRecords = 1024;
    cfg.tbRecords = 1024;
    cfg.design = DesignKind::Ideal;
    System sys(cfg);
    // Full-projectivity aggregate: speedup vs baseline must be ~1
    // (same layout, same plan), not a column-store pathology.
    const Query q = aggrQuery(cfg.taFields, 1.0, cfg.taFields);
    const RunStats ideal_run = sys.runQuery(q);
    SimConfig bcfg = cfg;
    bcfg.design = DesignKind::Baseline;
    const RunStats base_run = System(bcfg).runQuery(q);
    const double ratio = static_cast<double>(base_run.cycles) /
                         static_cast<double>(ideal_run.cycles);
    EXPECT_GT(ratio, 0.85);
    EXPECT_LT(ratio, 1.2);
}

TEST(PlanChoice_, SamFallsBackToRegularAtFullProjectivity)
{
    // At 100% projectivity and selectivity SAM reads everything like
    // the baseline: no stride accesses, speedup ~1 (Figure 15(c/i)).
    SimConfig cfg;
    cfg.taRecords = 1024;
    cfg.tbRecords = 1024;
    cfg.design = DesignKind::SamEn;
    System sys(cfg);
    const Query q = aggrQuery(cfg.taFields, 1.0, cfg.taFields);
    const RunStats r = sys.runQuery(q);
    EXPECT_EQ(r.strideReads, 0u);
    EXPECT_TRUE(r.result ==
                referenceResult(q, sys.taSchema(), sys.tbSchema()));
}

TEST(PlanChoice_, SamUsesStrideForNarrowScans)
{
    SimConfig cfg;
    cfg.taRecords = 1024;
    cfg.tbRecords = 1024;
    cfg.design = DesignKind::SamEn;
    System sys(cfg);
    const Query q3 = benchmarkQQueries()[2];
    const RunStats r = sys.runQuery(q3);
    EXPECT_GT(r.strideReads, 0u);
    EXPECT_EQ(r.memReads, 0u); // pure sload scan
}

TEST(PlanChoice_, AggregateBeatsArithmeticOnColumnSubarrays)
{
    // Figure 15(g) vs (a): the field-major aggregate relieves
    // RC-NVM-wd's field-switch penalty relative to the record-major
    // arithmetic query with the same parameters.
    SimConfig cfg;
    cfg.taRecords = 2048;
    cfg.tbRecords = 1024;
    cfg.design = DesignKind::RcNvmWord;
    System sys(cfg);
    const RunStats arith =
        sys.runQuery(arithQuery(8, 0.5, cfg.taFields));
    const RunStats aggr = sys.runQuery(aggrQuery(8, 0.5, cfg.taFields));
    EXPECT_LE(aggr.cycles, arith.cycles);
}

} // namespace
} // namespace sam
