/**
 * @file
 * Unit tests for the DRAM substrate: timing parameters, the device
 * timing engine (row hits/misses, bank parallelism, tFAW, mode
 * switches, refresh), the chip I/O path, stride gather/scatter, and the
 * functional data path with chip-failure injection.
 */

#include <gtest/gtest.h>

#include "src/common/random.hh"
#include "src/dram/data_path.hh"
#include "src/dram/device.hh"
#include "src/dram/io_buffer.hh"
#include "src/dram/timing.hh"

namespace sam {
namespace {

// --------------------------------------------------------------------
// Timing parameters
// --------------------------------------------------------------------

TEST(Timing, Ddr4MatchesTable2)
{
    const TimingParams t = ddr4Timing();
    EXPECT_EQ(t.cl, 17u);
    EXPECT_EQ(t.tRCD, 17u);
    EXPECT_EQ(t.tRP, 17u);
    EXPECT_EQ(t.tRTR, 2u);
    EXPECT_EQ(t.tCCD_S, 4u);
    EXPECT_EQ(t.tCCD_L, 6u);
}

TEST(Timing, RramMatchesTable2)
{
    const TimingParams t = rramTiming();
    EXPECT_EQ(t.cl, 17u);
    EXPECT_EQ(t.tRCD, 35u);
    EXPECT_EQ(t.tRP, 1u);
    EXPECT_EQ(t.tREFI, 0u); // non-volatile: no refresh
    EXPECT_GT(t.tWR, ddr4Timing().tWR); // slow writes
}

TEST(Timing, DeratingScalesArraySideOnly)
{
    const TimingParams base = ddr4Timing();
    const TimingParams d = base.derated(0.33);
    EXPECT_EQ(d.tRCD, 23u); // round(17 * 1.33)
    EXPECT_EQ(d.tRP, 23u);
    EXPECT_EQ(d.cl, base.cl);       // I/O side untouched
    EXPECT_EQ(d.tBL, base.tBL);
    EXPECT_EQ(d.tRTR, base.tRTR);
}

TEST(Timing, ZeroOverheadIsIdentity)
{
    const TimingParams base = ddr4Timing();
    const TimingParams d = base.derated(0.0);
    EXPECT_EQ(d.tRCD, base.tRCD);
    EXPECT_EQ(d.tRAS, base.tRAS);
}

TEST(Timing, Ddr4PresetInvariants)
{
    const TimingParams t = ddr4Timing();
    // Relationships every JEDEC-plausible DDR4 grade satisfies; the
    // protocol checker and the timing engine both rely on them.
    EXPECT_EQ(t.tRC(), Cycle{t.tRAS} + t.tRP);
    EXPECT_GE(t.tRAS, t.tRCD);         // row restore outlasts ACT->CAS
    EXPECT_GE(t.tCCD_L, t.tCCD_S);
    EXPECT_GE(t.tRRD_L, t.tRRD_S);
    EXPECT_GT(t.tWTR_L, t.tWTR_S);
    EXPECT_GE(t.tFAW, t.tRRD_S);       // window binds beyond pair rule
    EXPECT_GT(t.tREFI, t.tRFC);        // refresh fits in its interval
    EXPECT_GT(t.cl, t.cwl);            // DDR4: read latency > write
    EXPECT_GE(t.tCCD_S, t.tBL);        // back-to-back bursts fit
    // The mode-switch ordering in the engine (see RankState::
    // modeSwitchFloor) is timing-neutral only while this holds.
    EXPECT_GE(t.tCCD_S, t.tRTR + 1);
}

TEST(Timing, RramPresetInvariants)
{
    const TimingParams r = rramTiming();
    const TimingParams d = ddr4Timing();
    EXPECT_EQ(r.tRP, 1u);         // non-destructive reads: no restore
    EXPECT_EQ(r.tREFI, 0u);       // non-volatile: refresh disabled...
    EXPECT_EQ(r.tRFC, 0u);        // ...and no refresh cycle time
    EXPECT_GT(r.tRCD, d.tRCD);    // slow cell activation
    EXPECT_LT(r.tRAS, d.tRAS);    // no restore phase
    EXPECT_GT(r.tWR, d.tWR);      // long write pulse
    EXPECT_GT(r.tWTR_S, d.tWTR_S);
    EXPECT_GT(r.tWTR_L, r.tWTR_S);
    // Interface-side parameters reuse the DDR4 bus.
    EXPECT_EQ(r.cl, d.cl);
    EXPECT_EQ(r.tBL, d.tBL);
    EXPECT_EQ(r.tCCD_S, d.tCCD_S);
    EXPECT_EQ(r.tRTR, d.tRTR);
    EXPECT_GE(r.tCCD_S, r.tRTR + 1);
}

TEST(Timing, DeratingLeavesIoSideUntouched)
{
    for (const TimingParams &base : {ddr4Timing(), rramTiming()}) {
        for (const double overhead : {0.02, 0.33, 1.0}) {
            const TimingParams d = base.derated(overhead);
            // Array-side parameters scale up (or round to equal).
            EXPECT_GE(d.tRCD, base.tRCD);
            EXPECT_GE(d.tRP, base.tRP);
            EXPECT_GE(d.tRAS, base.tRAS);
            EXPECT_GE(d.tRRD_S, base.tRRD_S);
            EXPECT_GE(d.tRRD_L, base.tRRD_L);
            EXPECT_GE(d.tFAW, base.tFAW);
            EXPECT_GE(d.tWR, base.tWR);
            EXPECT_GE(d.tRTP, base.tRTP);
            EXPECT_GT(Cycle{d.tRCD} + d.tRAS + d.tWR,
                      Cycle{base.tRCD} + base.tRAS + base.tWR);
            // I/O-side parameters must be bit-identical: the paper
            // keeps core frequency and interface pipelines unchanged.
            EXPECT_EQ(d.cl, base.cl);
            EXPECT_EQ(d.cwl, base.cwl);
            EXPECT_EQ(d.tBL, base.tBL);
            EXPECT_EQ(d.tCCD_S, base.tCCD_S);
            EXPECT_EQ(d.tCCD_L, base.tCCD_L);
            EXPECT_EQ(d.tRTR, base.tRTR);
            EXPECT_EQ(d.tWTR_S, base.tWTR_S);
            EXPECT_EQ(d.tWTR_L, base.tWTR_L);
            EXPECT_EQ(d.tREFI, base.tREFI);
            EXPECT_EQ(d.tRFC, base.tRFC);
            EXPECT_DOUBLE_EQ(d.tCkNs, base.tCkNs);
        }
    }
}

TEST(Timing, GeometryCapacity)
{
    const Geometry g;
    EXPECT_EQ(g.banksPerRank(), 16u);
    EXPECT_EQ(g.linesPerRow(), 128u);
    EXPECT_EQ(g.rowsPerSubarray(), 512u);
    // 2 ranks x 16 banks x 128K rows x 8KB = 32 GB.
    EXPECT_EQ(g.capacityBytes(), 32ull << 30);
}

// --------------------------------------------------------------------
// Device timing engine
// --------------------------------------------------------------------

MappedAddr
mkAddr(unsigned rank, unsigned bg, unsigned bank, std::uint64_t row,
       unsigned col)
{
    MappedAddr a;
    a.rank = rank;
    a.bankGroup = bg;
    a.bank = bank;
    a.row = row;
    a.column = col;
    return a;
}

DeviceAccess
rd(const MappedAddr &a)
{
    DeviceAccess acc;
    acc.addr = a;
    return acc;
}

DeviceAccess
wr(const MappedAddr &a)
{
    DeviceAccess acc;
    acc.addr = a;
    acc.isWrite = true;
    return acc;
}

class DeviceTest : public ::testing::Test
{
  protected:
    Geometry geom;
    TimingParams timing = ddr4Timing();
};

TEST_F(DeviceTest, FirstReadPaysActPlusCas)
{
    Device dev(geom, timing);
    const auto r = dev.access(rd(mkAddr(0, 0, 0, 5, 0)), 0);
    EXPECT_FALSE(r.rowHit);
    EXPECT_EQ(r.activates, 1u);
    // ACT at 0, CAS at tRCD, data at tRCD + CL, done + tBL.
    EXPECT_EQ(r.issue, timing.tRCD);
    EXPECT_EQ(r.dataStart, timing.tRCD + timing.cl);
    EXPECT_EQ(r.done, timing.tRCD + timing.cl + timing.tBL);
}

TEST_F(DeviceTest, RowHitSkipsActivation)
{
    Device dev(geom, timing);
    const auto first = dev.access(rd(mkAddr(0, 0, 0, 5, 0)), 0);
    const auto second = dev.access(rd(mkAddr(0, 0, 0, 5, 1)),
                                   first.issue + 1);
    EXPECT_TRUE(second.rowHit);
    EXPECT_EQ(second.activates, 0u);
    // Second CAS is only gated by tCCD_L within the same bank group.
    EXPECT_EQ(second.issue, first.issue + timing.tCCD_L);
}

TEST_F(DeviceTest, RowConflictPaysPreActCas)
{
    Device dev(geom, timing);
    const auto first = dev.access(rd(mkAddr(0, 0, 0, 5, 0)), 0);
    const auto second = dev.access(rd(mkAddr(0, 0, 0, 9, 0)), first.done);
    EXPECT_FALSE(second.rowHit);
    // Bank must honour tRAS before the precharge: ACT(0) -> PRE no
    // earlier than tRAS.
    const Cycle pre_at = std::max<Cycle>(first.done, timing.tRAS);
    EXPECT_EQ(second.issue, pre_at + timing.tRP + timing.tRCD);
    EXPECT_EQ(dev.stats().precharges.value(), 1u);
}

TEST_F(DeviceTest, DifferentBankGroupsUseShortCcd)
{
    Device dev(geom, timing);
    // Open both rows first.
    dev.access(rd(mkAddr(0, 0, 0, 5, 0)), 0);
    dev.access(rd(mkAddr(0, 1, 0, 5, 0)), 0);
    const auto a = dev.access(rd(mkAddr(0, 0, 0, 5, 1)), 1000);
    const auto b = dev.access(rd(mkAddr(0, 1, 0, 5, 1)), 1000);
    // Cross-bank-group CAS separation is tCCD_S < tCCD_L, but the data
    // bus (tBL = 4 = tCCD_S) is the binding constraint.
    EXPECT_EQ(b.dataStart - a.dataStart, std::max(timing.tCCD_S,
                                                  timing.tBL));
}

TEST_F(DeviceTest, BankParallelismOverlapsActivation)
{
    Device dev(geom, timing);
    const auto a = dev.access(rd(mkAddr(0, 0, 0, 5, 0)), 0);
    const auto b = dev.access(rd(mkAddr(0, 1, 1, 7, 0)), 0);
    // The second bank's ACT proceeds in parallel (only tRRD_S apart);
    // its data slot lands right behind the first on the bus.
    EXPECT_EQ(b.dataStart, a.done);
    EXPECT_LT(b.done, 2 * a.done);
}

TEST_F(DeviceTest, FawLimitsBurstsOfActivates)
{
    Device dev(geom, timing);
    // Five activates to distinct banks in different groups; ACT i at
    // i*tRRD_S until the window fills.
    std::vector<Cycle> issue;
    for (unsigned i = 0; i < 5; ++i) {
        const auto r =
            dev.access(rd(mkAddr(0, i % 4, i / 4, 3, 0)), 0);
        issue.push_back(r.issue - timing.tRCD); // recover ACT time
    }
    EXPECT_EQ(issue[1] - issue[0], timing.tRRD_S);
    EXPECT_EQ(issue[3] - issue[0], 3 * timing.tRRD_S);
    // The 5th ACT must wait for the tFAW window to roll past ACT 0.
    EXPECT_GE(issue[4] - issue[0], static_cast<Cycle>(timing.tFAW));
}

TEST_F(DeviceTest, RankSwitchInsertsBubble)
{
    Device dev(geom, timing);
    dev.access(rd(mkAddr(0, 0, 0, 5, 0)), 0);
    dev.access(rd(mkAddr(1, 0, 0, 5, 0)), 0);
    const auto a = dev.access(rd(mkAddr(0, 0, 0, 5, 1)), 500);
    const auto b = dev.access(rd(mkAddr(1, 0, 0, 5, 1)), 500);
    // Back-to-back bursts from different ranks are separated by tRTR.
    EXPECT_EQ(b.dataStart - a.dataStart, timing.tBL + timing.tRTR);
}

TEST_F(DeviceTest, ModeSwitchCostsTrtr)
{
    Device dev(geom, timing);
    dev.access(rd(mkAddr(0, 0, 0, 5, 0)), 0); // open row, Regular mode
    auto stride = rd(mkAddr(0, 0, 0, 5, 1));
    stride.mode = AccessMode::Stride;
    const auto r = dev.access(stride, 200);
    EXPECT_TRUE(r.modeSwitched);
    EXPECT_EQ(dev.stats().modeSwitches.value(), 1u);

    // Staying in stride mode afterwards costs nothing extra.
    auto stride2 = rd(mkAddr(0, 0, 0, 5, 2));
    stride2.mode = AccessMode::Stride;
    const auto r2 = dev.access(stride2, 400);
    EXPECT_FALSE(r2.modeSwitched);
}

TEST_F(DeviceTest, WriteBlocksPrechargeUntilRecovery)
{
    Device dev(geom, timing);
    const auto w = dev.access(wr(mkAddr(0, 0, 0, 5, 0)), 0);
    // Conflict read: the precharge must wait for tWR after write data.
    const auto r = dev.access(rd(mkAddr(0, 0, 0, 8, 0)), w.issue + 1);
    const Cycle wr_end = w.issue + timing.cwl + timing.tBL;
    EXPECT_GE(r.issue, wr_end + timing.tWR + timing.tRP + timing.tRCD);
}

TEST_F(DeviceTest, WriteToReadTurnaround)
{
    Device dev(geom, timing);
    dev.access(rd(mkAddr(0, 0, 0, 5, 0)), 0);
    const auto w = dev.access(wr(mkAddr(0, 0, 0, 5, 1)), 200);
    const auto r = dev.access(rd(mkAddr(0, 1, 0, 5, 0)), w.issue + 1);
    // Same-rank read CAS waits tWTR_S after write data end. The read
    // also pays its own ACT (different bank), so only assert the CAS
    // floor.
    EXPECT_GE(r.issue,
              w.issue + timing.cwl + timing.tBL + timing.tWTR_S);
}

TEST_F(DeviceTest, ExtraBurstsExtendOccupancy)
{
    Device dev(geom, timing);
    auto acc = rd(mkAddr(0, 0, 0, 5, 0));
    acc.extraBursts = 2;
    const auto r = dev.access(acc, 0);
    const auto plain = Device(geom, timing).access(
        rd(mkAddr(0, 0, 0, 5, 0)), 0);
    EXPECT_EQ(r.done - plain.done, 2 * timing.tCCD_L);
    EXPECT_EQ(dev.stats().extraBursts.value(), 2u);
}

TEST_F(DeviceTest, RefreshBlocksRank)
{
    Device dev(geom, timing);
    dev.access(rd(mkAddr(0, 0, 0, 5, 0)), 0);
    // Jump past a refresh interval: the access must see the row closed
    // and the rank blocked until tRFC completes.
    const auto r = dev.access(rd(mkAddr(0, 0, 0, 5, 1)),
                              timing.tREFI + 1);
    EXPECT_FALSE(r.rowHit); // refresh closed the row
    EXPECT_GE(r.issue, static_cast<Cycle>(timing.tREFI) + timing.tRFC);
    EXPECT_GE(dev.stats().refreshes.value(), 1u);
}

TEST_F(DeviceTest, NoRefreshForRram)
{
    Device dev(geom, rramTiming());
    dev.access(rd(mkAddr(0, 0, 0, 5, 0)), 0);
    const auto r = dev.access(rd(mkAddr(0, 0, 0, 5, 1)), 1u << 20);
    EXPECT_TRUE(r.rowHit);
    EXPECT_EQ(dev.stats().refreshes.value(), 0u);
}

TEST_F(DeviceTest, ReadDataFollowsCasByCl)
{
    Device dev(geom, timing);
    const auto r = dev.access(rd(mkAddr(0, 0, 0, 1, 0)), 0);
    EXPECT_EQ(r.dataStart, r.issue + timing.cl);
    EXPECT_EQ(r.done, r.dataStart + timing.tBL);
}

TEST_F(DeviceTest, WriteDataFollowsCasByCwl)
{
    Device dev(geom, timing);
    const auto w = dev.access(wr(mkAddr(0, 0, 0, 1, 0)), 0);
    EXPECT_EQ(w.dataStart, w.issue + timing.cwl);
}

TEST_F(DeviceTest, ExtraLatencyDelaysCompletionOnly)
{
    Device dev(geom, timing);
    auto acc = rd(mkAddr(0, 0, 0, 1, 0));
    acc.extraLatency = 8;
    const auto r = dev.access(acc, 0);
    EXPECT_EQ(r.done, r.dataStart + timing.tBL + 8);
    // The bus frees at burst end, not at the delayed completion.
    EXPECT_EQ(dev.busFreeAt(), r.dataStart + timing.tBL);
}

TEST_F(DeviceTest, ColumnActivatesCountedSeparately)
{
    Device dev(geom, timing);
    auto acc = rd(mkAddr(0, 0, 0, 5, 0));
    acc.columnActivate = true;
    acc.mode = AccessMode::Stride;
    dev.access(acc, 0);
    EXPECT_EQ(dev.stats().activates.value(), 1u);
    EXPECT_EQ(dev.stats().columnActivates.value(), 1u);
    // A hit to the same synthetic row performs no further activation.
    acc.addr.column = 1;
    dev.access(acc, 100);
    EXPECT_EQ(dev.stats().columnActivates.value(), 1u);
}

TEST_F(DeviceTest, RandomTrafficKeepsResourceInvariants)
{
    // Property: for any access sequence, per-access results are
    // causally ordered (issue <= dataStart <= done) and the data bus
    // never double-books (successive bursts at least tBL apart).
    Device dev(geom, timing);
    Rng rng(2024);
    Cycle last_data_start = 0;
    bool first = true;
    for (int i = 0; i < 2000; ++i) {
        DeviceAccess acc;
        acc.addr = mkAddr(static_cast<unsigned>(rng.below(2)),
                          static_cast<unsigned>(rng.below(4)),
                          static_cast<unsigned>(rng.below(4)),
                          rng.below(64),
                          static_cast<unsigned>(rng.below(128)));
        acc.isWrite = rng.chance(0.3);
        acc.mode = rng.chance(0.2) ? AccessMode::Stride
                                   : AccessMode::Regular;
        const auto r = dev.access(acc, rng.below(50000));
        ASSERT_LE(r.issue, r.dataStart);
        ASSERT_LE(r.dataStart + timing.tBL, r.done + 1);
        if (!first) {
            // Bus slots may be scheduled out of order in wall-clock but
            // never overlap: track via the device's bus cursor.
            ASSERT_GE(dev.busFreeAt(), last_data_start + timing.tBL);
        }
        last_data_start = r.dataStart;
        first = false;
    }
    // Conservation: every access classified exactly once.
    const auto &st = dev.stats();
    EXPECT_EQ(st.reads.value() + st.writes.value() +
                  st.strideReads.value() + st.strideWrites.value(),
              2000u);
    EXPECT_EQ(st.rowHits.value() + st.rowMisses.value(), 2000u);
}

TEST_F(DeviceTest, StatsCountRowHitsAndMisses)
{
    Device dev(geom, timing);
    dev.access(rd(mkAddr(0, 0, 0, 5, 0)), 0);
    dev.access(rd(mkAddr(0, 0, 0, 5, 1)), 100);
    dev.access(rd(mkAddr(0, 0, 0, 6, 0)), 200);
    EXPECT_EQ(dev.stats().rowHits.value(), 1u);
    EXPECT_EQ(dev.stats().rowMisses.value(), 2u);
    EXPECT_EQ(dev.stats().reads.value(), 3u);
}

// --------------------------------------------------------------------
// Chip I/O path (Figures 7-9)
// --------------------------------------------------------------------

TEST(ChipIoPath, DriverEnableTableMatchesFigure7)
{
    ChipIoPath io;
    io.setMode(IoMode::X4);
    EXPECT_EQ(io.enabledDrivers(), (std::vector<unsigned>{0, 1, 2, 3}));
    io.setMode(IoMode::X8);
    EXPECT_EQ(io.enabledDrivers().size(), 8u);
    io.setMode(IoMode::X16);
    EXPECT_EQ(io.enabledDrivers().size(), 16u);
    io.setMode(IoMode::Sx4, 0);
    EXPECT_EQ(io.enabledDrivers(), (std::vector<unsigned>{0, 4, 8, 12}));
    io.setMode(IoMode::Sx4, 3);
    EXPECT_EQ(io.enabledDrivers(), (std::vector<unsigned>{3, 7, 11, 15}));
}

TEST(ChipIoPath, X4UsesOnlyBufferZero)
{
    ChipIoPath io;
    io.setMode(IoMode::X4);
    io.loadBuffer(0, 0x44332211);
    io.loadBuffer(1, 0xdeadbeef); // must not leak into output
    const auto p = io.burstPayload();
    ASSERT_EQ(p.size(), 4u);
    EXPECT_EQ(p[0], 0x11);
    EXPECT_EQ(p[1], 0x22);
    EXPECT_EQ(p[2], 0x33);
    EXPECT_EQ(p[3], 0x44);
}

TEST(ChipIoPath, StrideModeSelectsLaneAcrossBuffers)
{
    ChipIoPath io;
    // Buffer b holds the chip's slice of gather-source line b.
    io.loadBuffer(0, 0x04030201);
    io.loadBuffer(1, 0x14131211);
    io.loadBuffer(2, 0x24232221);
    io.loadBuffer(3, 0x34333231);
    io.setMode(IoMode::Sx4, 2); // lane 2 = byte 2 of each slice
    const auto p = io.burstPayload();
    ASSERT_EQ(p.size(), 4u);
    EXPECT_EQ(p[0], 0x03);
    EXPECT_EQ(p[1], 0x13);
    EXPECT_EQ(p[2], 0x23);
    EXPECT_EQ(p[3], 0x33);
}

TEST(ChipIoPath, ColumnWiseMatchesStrideBytes)
{
    // SAM-en property: the 2-D buffer's yz-plane read returns the same
    // bytes as Sx4_n, just in the default layout order.
    ChipIoPath io;
    Rng rng(5);
    for (unsigned b = 0; b < 4; ++b)
        io.loadBuffer(b, static_cast<std::uint32_t>(rng.next()));
    for (unsigned n = 0; n < 4; ++n) {
        io.setMode(IoMode::Sx4, n);
        EXPECT_EQ(io.columnWisePayload(n), io.burstPayload());
    }
}

TEST(ChipIoPath, X16StreamsAllBuffers)
{
    ChipIoPath io;
    for (unsigned b = 0; b < 4; ++b)
        io.loadBuffer(b, 0x01010101u * (b + 1));
    io.setMode(IoMode::X16);
    const auto p = io.burstPayload();
    ASSERT_EQ(p.size(), 16u);
    EXPECT_EQ(p[0], 0x01);
    EXPECT_EQ(p[15], 0x04);
}

TEST(ChipIoPath, BeatSerializationLsbFirst)
{
    ChipIoPath io;
    io.setMode(IoMode::X4);
    io.loadBuffer(0, 0x00000001); // only lane 0 bit 0 set
    EXPECT_EQ(io.beatBits(0), 0x1);
    EXPECT_EQ(io.beatBits(1), 0x0);
    io.loadBuffer(0, 0x80000000); // lane 3, bit 7
    EXPECT_EQ(io.beatBits(7), 0x8);
}

TEST(ChipIoPath, InterleavedNibblesCoverAllSymbols)
{
    ChipIoPath io;
    io.loadBuffer(0, 0x000000a1);
    io.loadBuffer(1, 0x000000b2);
    io.loadBuffer(2, 0x000000c3);
    io.loadBuffer(3, 0x000000d4);
    // Low nibbles of lane 0 from buffer pairs (0,1) and (2,3).
    const auto p = io.interleavedNibblePayload(0, 0);
    EXPECT_EQ(p[0], 0x21); // buf0 low nibble 1, buf1 low nibble 2
    EXPECT_EQ(p[1], 0x43);
}

// --------------------------------------------------------------------
// Stride gather / scatter
// --------------------------------------------------------------------

std::vector<std::uint8_t>
patternLine(std::uint8_t tag)
{
    std::vector<std::uint8_t> line(kCachelineBytes);
    for (unsigned i = 0; i < kCachelineBytes; ++i)
        line[i] = static_cast<std::uint8_t>(tag ^ i);
    return line;
}

class GatherTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(GatherTest, GatherPullsSameSectorOfEachLine)
{
    const unsigned unit = GetParam();
    const unsigned g = kCachelineBytes / unit;
    std::vector<std::vector<std::uint8_t>> lines;
    for (unsigned i = 0; i < g; ++i)
        lines.push_back(patternLine(static_cast<std::uint8_t>(0x10 * i)));

    for (unsigned sector = 0; sector < g; ++sector) {
        const auto out = StrideGather::gather(lines, sector, unit);
        ASSERT_EQ(out.size(), kCachelineBytes);
        for (unsigned i = 0; i < g; ++i) {
            for (unsigned b = 0; b < unit; ++b) {
                EXPECT_EQ(out[i * unit + b],
                          lines[i][sector * unit + b]);
            }
        }
    }
}

TEST_P(GatherTest, ScatterInvertsGather)
{
    const unsigned unit = GetParam();
    const unsigned g = kCachelineBytes / unit;
    std::vector<std::vector<std::uint8_t>> lines;
    for (unsigned i = 0; i < g; ++i)
        lines.push_back(patternLine(static_cast<std::uint8_t>(7 * i + 1)));
    const auto originals = lines;

    const unsigned sector = g / 2;
    const auto gathered = StrideGather::gather(lines, sector, unit);
    StrideGather::scatter(gathered, lines, sector, unit);
    EXPECT_EQ(lines, originals);

    // Scattering new data updates exactly the selected chunk.
    std::vector<std::uint8_t> fresh(kCachelineBytes, 0xee);
    StrideGather::scatter(fresh, lines, sector, unit);
    for (unsigned i = 0; i < g; ++i) {
        for (unsigned b = 0; b < kCachelineBytes; ++b) {
            const bool in_chunk = b >= sector * unit &&
                                  b < (sector + 1) * unit;
            EXPECT_EQ(lines[i][b], in_chunk ? 0xee : originals[i][b]);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Granularities, GatherTest,
                         ::testing::Values(8u, 16u, 32u),
                         [](const auto &info) {
                             return "unit" + std::to_string(info.param);
                         });

TEST(GatherChipConsistency, RankGatherMatchesChipLanes)
{
    // Cross-check: the rank-level gather of 16B chunks equals what 16
    // chips would produce in Sx4_n mode, chip by chip (SSC layout:
    // chip c holds byte 16*j + c of sector j).
    const unsigned unit = 16; // SSC
    std::vector<std::vector<std::uint8_t>> lines;
    for (unsigned i = 0; i < 4; ++i)
        lines.push_back(patternLine(static_cast<std::uint8_t>(0x40 + i)));
    const unsigned sector = 2;
    const auto rank_out = StrideGather::gather(lines, sector, unit);

    for (unsigned chip = 0; chip < 16; ++chip) {
        ChipIoPath io;
        for (unsigned b = 0; b < 4; ++b) {
            // The chip's 4B slice of line b: byte `chip` of each sector.
            std::uint32_t slice = 0;
            for (unsigned s = 0; s < 4; ++s)
                slice |= static_cast<std::uint32_t>(
                             lines[b][16 * s + chip])
                         << (8 * s);
            io.loadBuffer(b, slice);
        }
        io.setMode(IoMode::Sx4, sector);
        const auto chip_payload = io.burstPayload();
        // Chip c's contribution to gathered chunk i is byte 16*i + c.
        for (unsigned i = 0; i < 4; ++i)
            EXPECT_EQ(chip_payload[i], rank_out[16 * i + chip])
                << "chip " << chip << " chunk " << i;
    }
}

// --------------------------------------------------------------------
// DataPath (functional reads/writes with ECC on the way)
// --------------------------------------------------------------------

TEST(DataPath, WriteReadRoundTrip)
{
    DataPath dp(EccScheme::Ssc);
    Rng rng(9);
    std::vector<std::uint8_t> line(kCachelineBytes);
    for (auto &b : line)
        b = static_cast<std::uint8_t>(rng.below(256));
    dp.writeLine(0x1000, line);
    const auto r = dp.readLine(0x1000);
    EXPECT_EQ(r.data, line);
    EXPECT_FALSE(r.corrected);
}

TEST(DataPath, UnwrittenLinesReadZero)
{
    DataPath dp(EccScheme::Ssc);
    const auto r = dp.readLine(0x2000);
    EXPECT_EQ(r.data, std::vector<std::uint8_t>(kCachelineBytes, 0));
    // All-zero data with all-zero parity is a valid RS codeword.
    EXPECT_FALSE(r.uncorrectable);
}

TEST(DataPath, StrideReadGathersAcrossLines)
{
    DataPath dp(EccScheme::Ssc); // 16B chunks, G = 4
    std::vector<Addr> addrs;
    for (unsigned i = 0; i < 4; ++i) {
        const Addr a = 0x4000 + i * kCachelineBytes;
        dp.writeLine(a, patternLine(static_cast<std::uint8_t>(i + 1)));
        addrs.push_back(a);
    }
    const auto r = dp.strideRead(addrs, 1, 16);
    for (unsigned i = 0; i < 4; ++i) {
        const auto expect = patternLine(static_cast<std::uint8_t>(i + 1));
        for (unsigned b = 0; b < 16; ++b)
            EXPECT_EQ(r.data[i * 16 + b], expect[16 + b]);
    }
}

TEST(DataPath, StrideWriteUpdatesOnlyTargetChunks)
{
    DataPath dp(EccScheme::SscDsd); // 8B chunks, G = 8
    std::vector<Addr> addrs;
    for (unsigned i = 0; i < 8; ++i) {
        const Addr a = 0x8000 + i * kCachelineBytes;
        dp.writeLine(a, patternLine(static_cast<std::uint8_t>(i)));
        addrs.push_back(a);
    }
    std::vector<std::uint8_t> stride_line(kCachelineBytes, 0xab);
    dp.strideWrite(addrs, 3, 8, stride_line);

    for (unsigned i = 0; i < 8; ++i) {
        const auto r = dp.readLine(addrs[i]);
        EXPECT_FALSE(r.uncorrectable);
        const auto expect = patternLine(static_cast<std::uint8_t>(i));
        for (unsigned b = 0; b < kCachelineBytes; ++b) {
            const bool in_chunk = b >= 24 && b < 32; // sector 3 of 8B
            EXPECT_EQ(r.data[b], in_chunk ? 0xab : expect[b]);
        }
    }
}

TEST(DataPath, ChipFailureCorrectedOnRegularAndStridePaths)
{
    // The paper's central reliability claim: strided accesses remain
    // chipkill-protected.
    DataPath dp(EccScheme::Ssc);
    std::vector<Addr> addrs;
    for (unsigned i = 0; i < 4; ++i) {
        const Addr a = 0x10000 + i * kCachelineBytes;
        dp.writeLine(a, patternLine(static_cast<std::uint8_t>(0x30 + i)));
        addrs.push_back(a);
    }
    dp.failChip(6);

    const auto reg = dp.readLine(addrs[0]);
    EXPECT_TRUE(reg.corrected);
    EXPECT_FALSE(reg.uncorrectable);
    EXPECT_EQ(reg.data, patternLine(0x30));

    const auto st = dp.strideRead(addrs, 2, 16);
    EXPECT_TRUE(st.corrected);
    EXPECT_FALSE(st.uncorrectable);
    for (unsigned i = 0; i < 4; ++i) {
        const auto expect =
            patternLine(static_cast<std::uint8_t>(0x30 + i));
        for (unsigned b = 0; b < 16; ++b)
            EXPECT_EQ(st.data[i * 16 + b], expect[32 + b]);
    }
    EXPECT_GE(dp.stats().correctedLines.value(), 5u);
}

TEST(DataPath, SecDedCannotProtectAgainstChipFailure)
{
    // A failed x4 chip flips 4 bits per SEC-DED codeword. Depending on
    // which bits, the syndrome either flags an uncorrectable error or
    // -- worse -- aliases to zero/a single bit and the corruption goes
    // through silently (positions 18^19^20^21 == 0). Either way the
    // data is NOT protected, which is the paper's motivation for
    // requiring chipkill compatibility.
    const auto original = patternLine(0x11);
    bool any_unprotected = false;
    for (unsigned chip = 0; chip < 16; ++chip) {
        DataPath dp(EccScheme::SecDed);
        dp.writeLine(0x0, original);
        dp.failChip(chip);
        const auto r = dp.readLine(0x0);
        const bool protected_read = !r.uncorrectable &&
                                    r.data == original;
        EXPECT_FALSE(protected_read) << "chip " << chip;
        any_unprotected = any_unprotected || !protected_read;
    }
    EXPECT_TRUE(any_unprotected);
}

TEST(BackingStoreTest, CorruptLineXorsMask)
{
    BackingStore store(72);
    std::vector<std::uint8_t> blob(72, 0x0f);
    store.writeLine(0x40, blob);
    std::vector<std::uint8_t> mask(72, 0);
    mask[3] = 0xf0;
    store.corruptLine(0x40, mask);
    EXPECT_EQ(store.readLine(0x40)[3], 0xff);
    EXPECT_EQ(store.readLine(0x40)[4], 0x0f);
    EXPECT_THROW(store.readLine(0x41), std::logic_error); // unaligned
}

} // namespace
} // namespace sam
