/**
 * @file
 * Unit tests for the replay engines' EventQueue: deterministic
 * (cycle, source, seq) ordering, interleaved push/pop monotonicity,
 * and ordering of real device-published deadlines (refresh vs
 * bank-ready).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/dram/device.hh"
#include "src/dram/timing.hh"
#include "src/sim/event_queue.hh"

namespace sam {
namespace {

TEST(EventQueue, PopsInCycleOrder)
{
    EventQueue q;
    q.push(30, 0);
    q.push(10, 1);
    q.push(20, 2);
    EXPECT_EQ(q.size(), 3u);
    EXPECT_EQ(q.pop().cycle, 10u);
    EXPECT_EQ(q.pop().cycle, 20u);
    EXPECT_EQ(q.pop().cycle, 30u);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, EqualCyclesBreakTiesBySource)
{
    EventQueue q;
    q.push(5, 3);
    q.push(5, 1);
    q.push(5, 2);
    q.push(5, 0);
    for (std::uint32_t expect = 0; expect < 4; ++expect) {
        const EventQueue::Event e = q.pop();
        EXPECT_EQ(e.cycle, 5u);
        EXPECT_EQ(e.source, expect);
    }
}

TEST(EventQueue, EqualCycleAndSourceBreakTiesByInsertionSeq)
{
    EventQueue q;
    q.push(5, 7); // seq 0
    q.push(5, 7); // seq 1
    q.push(5, 7); // seq 2
    std::uint64_t last = 0;
    for (int i = 0; i < 3; ++i) {
        const EventQueue::Event e = q.pop();
        EXPECT_EQ(e.source, 7u);
        if (i > 0) {
            EXPECT_GT(e.seq, last);
        }
        last = e.seq;
    }
    EXPECT_EQ(q.pushed(), 3u);
}

TEST(EventQueue, IdenticalPushSequencesPopIdentically)
{
    // Determinism across instances: the ordering key is only the three
    // integers, so two queues fed the same pushes agree pop-for-pop.
    const std::vector<std::pair<Cycle, std::uint32_t>> pushes = {
        {40, 2}, {40, 2}, {7, 9}, {40, 1}, {7, 0},
        {99, 0}, {7, 9},  {0, 5}, {40, 2}, {7, 1},
    };
    EventQueue a;
    EventQueue b;
    for (const auto &[cycle, source] : pushes) {
        a.push(cycle, source);
        b.push(cycle, source);
    }
    while (!a.empty()) {
        ASSERT_FALSE(b.empty());
        const EventQueue::Event ea = a.pop();
        const EventQueue::Event eb = b.pop();
        EXPECT_EQ(ea.cycle, eb.cycle);
        EXPECT_EQ(ea.source, eb.source);
        EXPECT_EQ(ea.seq, eb.seq);
    }
    EXPECT_TRUE(b.empty());
}

TEST(EventQueue, InterleavedPushPopStaysMonotone)
{
    // Popped cycles never run backwards as long as pushes are not in
    // the popped past -- the engine's invariant (every published wake
    // is >= the round it is published in). Source/seq only order
    // events that coexist in the heap, so cycle is the cross-pop
    // monotone quantity.
    EventQueue q;
    Cycle last_cycle = 0;
    bool first = true;
    std::uint64_t state = 0x5eed;
    const auto next = [&state]() { // xorshift; no ambient randomness
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        return state;
    };
    q.push(1, 0);
    for (int round = 0; round < 1000; ++round) {
        if (!q.empty() && next() % 2 == 0) {
            const EventQueue::Event e = q.pop();
            if (!first) {
                EXPECT_GE(e.cycle, last_cycle)
                    << "pop went backwards at round " << round;
            }
            first = false;
            last_cycle = e.cycle;
            // Future pushes must be >= the last popped cycle for the
            // monotonicity contract; emulate the engine doing that.
            q.push(e.cycle + next() % 50, next() % 8);
        } else {
            q.push(last_cycle + next() % 50, next() % 8);
        }
    }
}

TEST(EventQueue, OrdersDevicePublishedDeadlines)
{
    // Feed the queue from the device's earliest-action accessors: a
    // bank's ready cycle and a rank's refresh deadline must pop in
    // deadline order, refresh first when it is the earlier of the two.
    Geometry geom;
    const TimingParams timing = ddr4Timing();
    Device dev(geom, timing);

    MappedAddr a;
    a.rank = 0;
    a.bankGroup = 0;
    a.bank = 0;
    a.row = 5;
    a.column = 0;
    DeviceAccess acc;
    acc.addr = a;
    const AccessResult r = dev.access(acc, 0);
    EXPECT_GT(r.done, 0u);

    const Cycle bank_ready = dev.bankReadyAt(a);
    const Cycle refresh_at = dev.nextRefreshAt(0, 0);
    ASSERT_GT(refresh_at, 0u) << "DDR4 must carry a refresh schedule";
    // After one access the bank is open and CAS-ready long before the
    // first tREFI deadline.
    ASSERT_LT(bank_ready, refresh_at);

    enum : std::uint32_t { kBank = 0, kRefresh = 1 };
    EventQueue q;
    q.push(refresh_at, kRefresh);
    q.push(bank_ready, kBank);
    EXPECT_EQ(q.pop().source, kBank);
    EXPECT_EQ(q.pop().source, kRefresh);

    // And the other way around: a bank whose next legal ACT lands past
    // the refresh deadline pops after it.
    EventQueue q2;
    q2.push(refresh_at, kRefresh);
    q2.push(refresh_at + timing.tRP, kBank);
    EXPECT_EQ(q2.pop().source, kRefresh);
    EXPECT_EQ(q2.pop().source, kBank);
}

TEST(EventQueue, PeekMatchesPop)
{
    EventQueue q;
    q.push(9, 4);
    q.push(3, 6);
    const EventQueue::Event top = q.peek();
    const EventQueue::Event popped = q.pop();
    EXPECT_EQ(top.cycle, popped.cycle);
    EXPECT_EQ(top.source, popped.source);
    EXPECT_EQ(top.seq, popped.seq);
    EXPECT_EQ(q.size(), 1u);
}

} // namespace
} // namespace sam
