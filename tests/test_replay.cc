/**
 * @file
 * Tests for the timing-replay machinery and cross-cutting system
 * properties: barrier epochs, MSHR limiting, stats plumbing
 * (StatGroup registration), chip I/O beat serialization equivalence,
 * and scale monotonicity.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "src/common/random.hh"
#include "src/dram/io_buffer.hh"
#include "src/imdb/query.hh"
#include "src/sim/system.hh"

namespace sam {
namespace {

// --------------------------------------------------------------------
// Stats plumbing
// --------------------------------------------------------------------

TEST(StatsPlumbing, DeviceStatsRegisterAndDump)
{
    Geometry geom;
    Device dev(geom, ddr4Timing());
    DeviceAccess acc;
    acc.addr.row = 3;
    dev.access(acc, 0);
    acc.addr.column = 1;
    dev.access(acc, 100);

    StatGroup group("device");
    dev.stats().registerIn(group);
    EXPECT_EQ(group.counterValue("activates"), 1u);
    EXPECT_EQ(group.counterValue("rowHits"), 1u);
    EXPECT_EQ(group.counterValue("reads"), 2u);

    std::ostringstream oss;
    group.dump(oss);
    EXPECT_NE(oss.str().find("device.activates"), std::string::npos);
    EXPECT_NE(oss.str().find("row activations"), std::string::npos);
}

TEST(StatsPlumbing, EccAndCacheStatsRegister)
{
    DataPath dp(EccScheme::Ssc);
    dp.writeLine(0x0, std::vector<std::uint8_t>(kCachelineBytes, 1));
    dp.readLine(0x0);
    StatGroup ecc_group("ecc");
    dp.stats().registerIn(ecc_group);
    EXPECT_EQ(ecc_group.counterValue("linesChecked"), 1u);

    SectorCache cache({1024, 2, 16, 1});
    cache.lookup(0x40, 0x1);
    StatGroup cache_group("l1");
    cache.stats().registerIn(cache_group);
    EXPECT_EQ(cache_group.counterValue("misses"), 1u);
}

// --------------------------------------------------------------------
// Chip I/O serialization property
// --------------------------------------------------------------------

TEST(IoSerialization, BeatBitsReconstructPayload)
{
    // Property: collecting bit `beat` of every active DQ over the 8
    // beats must reconstruct exactly the burst payload bytes, in every
    // mode (the serializer is just a transpose).
    Rng rng(77);
    for (int trial = 0; trial < 50; ++trial) {
        ChipIoPath io;
        for (unsigned b = 0; b < 4; ++b)
            io.loadBuffer(b, static_cast<std::uint32_t>(rng.next()));
        for (unsigned mode = 0; mode < 5; ++mode) {
            if (mode < 4)
                io.setMode(IoMode::Sx4, mode);
            else
                io.setMode(IoMode::X16);
            const auto payload = io.burstPayload();
            std::vector<std::uint8_t> rebuilt(payload.size(), 0);
            for (unsigned beat = 0; beat < kBurstLength; ++beat) {
                const std::uint16_t bits_now = io.beatBits(beat);
                for (std::size_t dq = 0; dq < payload.size(); ++dq) {
                    if (bits_now & (1u << dq))
                        rebuilt[dq] |= static_cast<std::uint8_t>(
                            1u << beat);
                }
            }
            EXPECT_EQ(rebuilt, payload) << "mode " << mode;
        }
    }
}

// --------------------------------------------------------------------
// Replay / epoch semantics via the System
// --------------------------------------------------------------------

SimConfig
tinyConfig(DesignKind design)
{
    SimConfig cfg;
    cfg.taRecords = 512;
    cfg.tbRecords = 512;
    cfg.design = design;
    return cfg;
}

TEST(Replay, FieldMajorQueriesTakeLongerThanTheirParts)
{
    // A field-major aggregate issues one epoch per projected field;
    // epochs are barriers, so more projected fields means strictly
    // more cycles.
    System sys(tinyConfig(DesignKind::SamSub));
    const auto r2 = sys.runQuery(aggrQuery(2, 1.0, 128));
    const auto r8 = sys.runQuery(aggrQuery(8, 1.0, 128));
    EXPECT_GT(r8.cycles, r2.cycles);
}

TEST(Replay, MoreMshrsNeverHurtMuch)
{
    const Query q3 = benchmarkQQueries()[2];
    SimConfig a = tinyConfig(DesignKind::Baseline);
    a.mshrsPerCore = 2;
    SimConfig b = a;
    b.mshrsPerCore = 16;
    const Cycle slow = System(a).runQuery(q3).cycles;
    const Cycle fast = System(b).runQuery(q3).cycles;
    // Deeper MLP can only help (small scheduling noise tolerated).
    EXPECT_LT(fast, slow * 11 / 10);
}

TEST(Replay, CyclesScaleRoughlyWithRecords)
{
    const Query q3 = benchmarkQQueries()[2];
    SimConfig small = tinyConfig(DesignKind::Baseline);
    SimConfig big = small;
    big.taRecords = 2048;
    big.tbRecords = 2048;
    const Cycle c1 = System(small).runQuery(q3).cycles;
    const Cycle c4 = System(big).runQuery(q3).cycles;
    const double ratio = static_cast<double>(c4) /
                         static_cast<double>(c1);
    EXPECT_GT(ratio, 2.0);
    EXPECT_LT(ratio, 8.0);
}

TEST(Replay, WriteQueriesGenerateWriteTraffic)
{
    System sys(tinyConfig(DesignKind::Baseline));
    const Query q11 = benchmarkQQueries()[10];
    const auto r = sys.runQuery(q11);
    EXPECT_GT(r.memWrites, 0u);
}

TEST(Replay, StrideWritesAppearForSamUpdates)
{
    System sys(tinyConfig(DesignKind::SamEn));
    const Query q11 = benchmarkQQueries()[10];
    const auto r = sys.runQuery(q11);
    EXPECT_GT(r.strideWrites, 0u); // sstore write-through path
    EXPECT_GT(r.strideReads, 0u);
}

TEST(Replay, SubsequentQueriesSeeUpdatedData)
{
    // An UPDATE dirties the tables; the next query must observe the
    // rebuilt (re-materialized) state and still verify.
    System sys(tinyConfig(DesignKind::SamEn));
    const Query q11 = benchmarkQQueries()[10];
    const Query q4 = benchmarkQQueries()[3]; // SUM over Tb
    sys.runQuery(q11);
    const auto r = sys.runQuery(q4);
    EXPECT_TRUE(r.result ==
                referenceResult(q4, sys.taSchema(), sys.tbSchema()));
}

TEST(Replay, RefreshAppearsOnLongDramRuns)
{
    // A Ta full scan at this scale runs past tREFI: the DRAM device
    // must log refreshes; an RRAM build of the same design must not.
    SimConfig cfg = tinyConfig(DesignKind::Baseline);
    cfg.taRecords = 4096;
    System dram_sys(cfg);
    const Query qs3 = benchmarkQsQueries()[2];
    const auto r = dram_sys.runQuery(qs3);
    if (r.cycles > ddr4Timing().tREFI) {
        SimConfig rcfg = cfg;
        rcfg.overrideTech = true;
        rcfg.tech = MemTech::RRAM;
        System rram_sys(rcfg);
        // No refresh counter surfaces in RunStats; assert via power:
        // RRAM refresh energy must be zero.
        const auto rr = rram_sys.runQuery(qs3);
        EXPECT_DOUBLE_EQ(rr.power.refreshEnergyPj, 0.0);
        EXPECT_GT(r.power.refreshEnergyPj, 0.0);
    }
}

TEST(Replay, StatsTextCoversAllComponents)
{
    System sys(tinyConfig(DesignKind::SamEn));
    const auto r = sys.runQuery(benchmarkQQueries()[2]);
    EXPECT_NE(r.statsText.find("device.strideReads"),
              std::string::npos);
    EXPECT_NE(r.statsText.find("controller.strideReadsServed"),
              std::string::npos);
    EXPECT_NE(r.statsText.find("ecc.linesChecked"), std::string::npos);
    EXPECT_NE(r.statsText.find("core0.l1.hits"), std::string::npos);
    EXPECT_NE(r.statsText.find("core3.l3.misses"), std::string::npos);
}

TEST(Replay, ResultsIndependentOfCoreCount)
{
    // Functional results must not depend on the degree of morsel
    // parallelism.
    const Query q1 = benchmarkQQueries()[0];
    SimConfig one = tinyConfig(DesignKind::SamEn);
    one.cores = 1;
    SimConfig four = tinyConfig(DesignKind::SamEn);
    four.cores = 4;
    const auto r1 = System(one).runQuery(q1);
    const auto r4 = System(four).runQuery(q1);
    EXPECT_TRUE(r1.result == r4.result);
    // And parallelism should help the bigger scans.
    EXPECT_LT(r4.cycles, r1.cycles);
}

// --------------------------------------------------------------------
// Bamboo-72 through the full system
// --------------------------------------------------------------------

TEST(Replay, Bamboo72SystemSurvivesChipFailure)
{
    SimConfig cfg = tinyConfig(DesignKind::SamEn);
    cfg.ecc = EccScheme::Bamboo72;
    System sys(cfg);
    const Query q3 = benchmarkQQueries()[2];
    sys.runQuery(q3);
    sys.dataPath().failChip(11);
    const auto r = sys.runQuery(q3);
    EXPECT_TRUE(r.result ==
                referenceResult(q3, sys.taSchema(), sys.tbSchema()));
    EXPECT_GT(r.eccCorrectedLines, 0u);
    EXPECT_EQ(r.eccUncorrectable, 0u);
}

} // namespace
} // namespace sam
