/**
 * @file
 * Unit tests for the sector cache and the three-level hierarchy:
 * sector valid/dirty tracking, LRU eviction, exclusive promotion,
 * stride fills, write-through sstores, write-combining allocation, and
 * dirty-data coherence between the cache and memory.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "src/cache/hierarchy.hh"
#include "src/cache/sector_cache.hh"
#include "src/common/random.hh"

namespace sam {
namespace {

std::vector<std::uint8_t>
pattern(std::uint8_t tag)
{
    std::vector<std::uint8_t> v(kCachelineBytes);
    for (unsigned i = 0; i < kCachelineBytes; ++i)
        v[i] = static_cast<std::uint8_t>(tag + i);
    return v;
}

// --------------------------------------------------------------------
// SectorCache
// --------------------------------------------------------------------

TEST(SectorCacheTest, MaskForCoversSpans)
{
    SectorCache cache({1024, 2, 16, 1});
    EXPECT_EQ(cache.sectorsPerLine(), 4u);
    EXPECT_EQ(cache.fullMask(), 0x0f);
    EXPECT_EQ(cache.maskFor(0, 8), 0x1);
    EXPECT_EQ(cache.maskFor(16, 16), 0x2);
    EXPECT_EQ(cache.maskFor(8, 16), 0x3);  // straddles sectors 0-1
    EXPECT_EQ(cache.maskFor(0, 64), 0x0f);
}

TEST(SectorCacheTest, MissThenFillThenHit)
{
    SectorCache cache({1024, 2, 16, 1});
    EXPECT_FALSE(cache.lookup(0x100, 0x1));
    const auto data = pattern(1);
    EXPECT_FALSE(cache.fill(0x100, 0x0f, data.data(), false));
    EXPECT_TRUE(cache.lookup(0x100, 0x0f));
    EXPECT_EQ(cache.stats().hits.value(), 1u);
    EXPECT_EQ(cache.stats().misses.value(), 1u);
}

TEST(SectorCacheTest, SectorMissOnPartialLine)
{
    SectorCache cache({1024, 2, 16, 1});
    const auto data = pattern(2);
    cache.fill(0x200, 0x2, data.data(), false); // only sector 1 valid
    EXPECT_TRUE(cache.lookup(0x200, 0x2));
    EXPECT_FALSE(cache.lookup(0x200, 0x1)); // sector 0 invalid
    EXPECT_EQ(cache.stats().sectorMisses.value(), 1u);
}

TEST(SectorCacheTest, ReadBytesReturnsFilledData)
{
    SectorCache cache({1024, 2, 16, 1});
    const auto data = pattern(3);
    cache.fill(0x300, 0x0f, data.data(), false);
    std::uint8_t out[8];
    cache.readBytes(0x300, 24, 8, out);
    EXPECT_EQ(0, std::memcmp(out, data.data() + 24, 8));
}

TEST(SectorCacheTest, WriteBytesSetsDirty)
{
    SectorCache cache({1024, 2, 16, 1});
    const auto data = pattern(4);
    cache.fill(0x400, 0x0f, data.data(), false);
    const std::uint8_t v[8] = {9, 9, 9, 9, 9, 9, 9, 9};
    cache.writeBytes(0x400, 16, 8, v);
    auto wb = cache.extract(0x400);
    ASSERT_TRUE(wb.has_value());
    EXPECT_EQ(wb->dirtyMask, 0x2);
    EXPECT_EQ(wb->data[16], 9);
}

TEST(SectorCacheTest, LruEvictsOldest)
{
    // 2-way, sector 64 (plain): two lines per set.
    SectorCache cache({128, 2, 64, 1});
    const auto d = pattern(0);
    cache.fill(0x0, 0x1, d.data(), false);
    cache.fill(0x80, 0x1, d.data(), false); // same set (2 sets of 2)
    cache.lookup(0x0, 0x1);                 // touch first
    // Insert third line into set 0: must evict 0x80 (LRU).
    cache.fill(0x100, 0x1, d.data(), false);
    EXPECT_TRUE(cache.lookup(0x0, 0x1));
    EXPECT_FALSE(cache.lookup(0x80, 0x1));
    EXPECT_EQ(cache.stats().evictions.value(), 1u);
}

TEST(SectorCacheTest, DirtyEvictionReturnsVictim)
{
    SectorCache cache({128, 2, 64, 1});
    const auto d = pattern(7);
    cache.fill(0x0, 0x1, d.data(), true);
    cache.fill(0x80, 0x1, d.data(), false);
    const auto victim = cache.fill(0x100, 0x1, d.data(), false);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->line, 0x0u);
    EXPECT_EQ(victim->dirtyMask, 0x1);
    EXPECT_EQ(cache.stats().dirtyEvictions.value(), 1u);
}

TEST(SectorCacheTest, MergeFillCombinesSectors)
{
    SectorCache cache({1024, 2, 16, 1});
    const auto a = pattern(1);
    const auto b = pattern(0x81);
    cache.fill(0x500, 0x1, a.data(), false);
    cache.fill(0x500, 0x4, b.data(), true);
    EXPECT_TRUE(cache.lookup(0x500, 0x5));
    auto wb = cache.extract(0x500);
    ASSERT_TRUE(wb.has_value());
    EXPECT_EQ(wb->validMask, 0x5);
    EXPECT_EQ(wb->dirtyMask, 0x4);
    EXPECT_EQ(wb->data[0], a[0]);
    EXPECT_EQ(wb->data[32], b[32]);
}

TEST(SectorCacheTest, FlushReturnsOnlyDirtyLines)
{
    SectorCache cache({1024, 4, 16, 1});
    const auto d = pattern(5);
    cache.fill(0x600, 0x0f, d.data(), false);
    cache.fill(0x640, 0x0f, d.data(), true);
    std::vector<Writeback> out;
    cache.flush(out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].line, 0x640u);
    EXPECT_FALSE(cache.lookup(0x600, 0x1)); // emptied
}

// --------------------------------------------------------------------
// CacheHierarchy with a scripted backend
// --------------------------------------------------------------------

class RecordingBackend : public MemBackend
{
  public:
    void
    fetchLine(Addr line, std::uint8_t *out64) override
    {
        ++fetches;
        auto it = memory.find(line);
        if (it != memory.end())
            std::memcpy(out64, it->second.data(), kCachelineBytes);
        else
            std::memset(out64, 0, kCachelineBytes);
    }

    void
    fetchStride(const GatherPlan &plan, std::uint8_t *out64) override
    {
        ++strideFetches;
        const unsigned unit =
            kCachelineBytes / static_cast<unsigned>(plan.lines.size());
        std::uint8_t line[kCachelineBytes];
        for (std::size_t i = 0; i < plan.lines.size(); ++i) {
            fetchLine(plan.lines[i], line);
            --fetches; // internal
            std::memcpy(out64 + i * unit, line + plan.sector * unit,
                        unit);
        }
    }

    void
    writeback(const Writeback &wb) override
    {
        ++writebacks;
        auto &line = memory[wb.line];
        if (line.empty())
            line.assign(kCachelineBytes, 0);
        // Apply only dirty sectors (sector size known by test).
        for (unsigned s = 0; s < 8; ++s) {
            if (wb.dirtyMask & (1u << s)) {
                std::memcpy(line.data() + s * 8, wb.data.data() + s * 8,
                            8);
            }
        }
    }

    void
    writeStride(const GatherPlan &plan,
                const std::uint8_t *line64) override
    {
        ++strideWrites;
        const unsigned unit =
            kCachelineBytes / static_cast<unsigned>(plan.lines.size());
        for (std::size_t i = 0; i < plan.lines.size(); ++i) {
            auto &line = memory[plan.lines[i]];
            if (line.empty())
                line.assign(kCachelineBytes, 0);
            std::memcpy(line.data() + plan.sector * unit,
                        line64 + i * unit, unit);
        }
    }

    std::map<Addr, std::vector<std::uint8_t>> memory;
    unsigned fetches = 0;
    unsigned strideFetches = 0;
    unsigned writebacks = 0;
    unsigned strideWrites = 0;
};

class HierarchyTest : public ::testing::Test
{
  protected:
    HierarchyTest()
        : hier({1024, 2, 8, 1}, {4096, 4, 8, 2}, {16384, 8, 8, 4},
               backend)
    {
    }

    std::uint8_t
    backendByte(Addr addr)
    {
        const Addr line = addr & ~Addr{63};
        auto it = backend.memory.find(line);
        if (it == backend.memory.end())
            return 0;
        return it->second[addr - line];
    }

    RecordingBackend backend;
    CacheHierarchy hier;
};

TEST_F(HierarchyTest, ReadMissFetchesOnceThenHits)
{
    backend.memory[0x1000] = pattern(0x10);
    std::uint8_t out[8];
    auto r1 = hier.read(0x1008, 8, out);
    EXPECT_TRUE(r1.memTouched);
    EXPECT_EQ(out[0], 0x18);
    auto r2 = hier.read(0x1010, 8, out);
    EXPECT_FALSE(r2.memTouched); // full-line fill covers all sectors
    EXPECT_EQ(backend.fetches, 1u);
}

TEST_F(HierarchyTest, WriteReadBackThroughCache)
{
    const std::uint8_t v[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    hier.write(0x2000, v, 8); // sector-aligned: no fetch
    EXPECT_EQ(backend.fetches, 0u);
    std::uint8_t out[8];
    hier.read(0x2000, 8, out);
    EXPECT_EQ(0, std::memcmp(out, v, 8));
}

TEST_F(HierarchyTest, PartialSectorWriteFetchesLine)
{
    backend.memory[0x3000] = pattern(0x30);
    const std::uint8_t v[4] = {9, 9, 9, 9};
    hier.write(0x3002, v, 4); // sub-sector: read-for-ownership
    EXPECT_EQ(backend.fetches, 1u);
    std::uint8_t out[8];
    hier.read(0x3000, 8, out);
    EXPECT_EQ(out[0], 0x30);
    EXPECT_EQ(out[2], 9);
}

TEST_F(HierarchyTest, FlushWritesDirtyDataBack)
{
    const std::uint8_t v[8] = {0xaa, 0xbb, 0xcc, 0xdd, 1, 2, 3, 4};
    hier.write(0x4000, v, 8);
    hier.flush();
    EXPECT_GE(backend.writebacks, 1u);
    ASSERT_TRUE(backend.memory.count(0x4000));
    EXPECT_EQ(backend.memory[0x4000][0], 0xaa);
}

TEST_F(HierarchyTest, StrideReadFillsSectors)
{
    GatherPlan plan;
    for (unsigned i = 0; i < 8; ++i) {
        const Addr a = 0x8000 + i * 64ull;
        backend.memory[a] = pattern(static_cast<std::uint8_t>(i));
        plan.lines.push_back(a);
    }
    plan.sector = 3;
    std::uint8_t out[kCachelineBytes];
    auto r = hier.strideRead(plan, 8, out);
    EXPECT_TRUE(r.memTouched);
    EXPECT_EQ(backend.strideFetches, 1u);
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_EQ(out[i * 8], static_cast<std::uint8_t>(i + 24));

    // Second stride read over the same chunks: all sectors cached.
    auto r2 = hier.strideRead(plan, 8, out);
    EXPECT_FALSE(r2.memTouched);
}

TEST_F(HierarchyTest, StrideReadHonoursDirtierCache)
{
    GatherPlan plan;
    for (unsigned i = 0; i < 8; ++i) {
        const Addr a = 0x9000 + i * 64ull;
        backend.memory[a] = pattern(0);
        plan.lines.push_back(a);
    }
    plan.sector = 0;
    // Dirty sector 0 of line 2 in the cache (newer than memory).
    const std::uint8_t v[8] = {0x77, 0x77, 0x77, 0x77, 0x77, 0x77,
                               0x77, 0x77};
    hier.write(0x9000 + 2 * 64, v, 8);
    std::uint8_t out[kCachelineBytes];
    hier.strideRead(plan, 8, out);
    EXPECT_EQ(out[2 * 8], 0x77); // cache wins
    EXPECT_EQ(out[3 * 8], 0x00); // memory elsewhere
}

TEST_F(HierarchyTest, StrideWriteGoesThroughImmediately)
{
    GatherPlan plan;
    for (unsigned i = 0; i < 8; ++i)
        plan.lines.push_back(0xa000 + i * 64ull);
    plan.sector = 2;
    std::uint8_t line[kCachelineBytes];
    for (unsigned i = 0; i < kCachelineBytes; ++i)
        line[i] = static_cast<std::uint8_t>(i);
    hier.strideWrite(plan, 8, line);
    EXPECT_EQ(backend.strideWrites, 1u);
    // Memory has the scattered chunks already (write-through).
    for (unsigned i = 0; i < 8; ++i) {
        ASSERT_TRUE(backend.memory.count(plan.lines[i]));
        EXPECT_EQ(backend.memory[plan.lines[i]][2 * 8],
                  static_cast<std::uint8_t>(i * 8));
    }
    // And the cached copies are clean: flushing writes nothing more.
    const unsigned wb_before = backend.writebacks;
    hier.flush();
    EXPECT_EQ(backend.writebacks, wb_before);
}

TEST_F(HierarchyTest, WriteAllocateSkipsFetch)
{
    const std::uint8_t v[8] = {5, 5, 5, 5, 5, 5, 5, 5};
    hier.writeAllocate(0xb000, v, 8);
    EXPECT_EQ(backend.fetches, 0u);
    std::uint8_t out[8];
    hier.read(0xb000, 8, out);
    EXPECT_EQ(out[0], 5);
    // Unwritten bytes of the allocated line read as zero.
    hier.read(0xb008, 8, out);
    EXPECT_EQ(out[0], 0);
}

TEST_F(HierarchyTest, EvictionCascadesThroughLevels)
{
    // Write enough distinct lines to overflow L1 (1KB = 16 lines) and
    // L2 (4KB = 64 lines); data must survive via LLC or memory.
    for (unsigned i = 0; i < 128; ++i) {
        const std::uint8_t v[8] = {static_cast<std::uint8_t>(i), 1, 2,
                                   3, 4, 5, 6, 7};
        hier.write(0x10000 + i * 64ull, v, 8);
    }
    for (unsigned i = 0; i < 128; ++i) {
        std::uint8_t out[8];
        hier.read(0x10000 + i * 64ull, 8, out);
        EXPECT_EQ(out[0], static_cast<std::uint8_t>(i)) << i;
    }
}

TEST_F(HierarchyTest, RandomisedCoherenceAgainstReferenceModel)
{
    // Property test: arbitrary interleavings of reads/writes/stride
    // ops must always observe the latest written value.
    Rng rng(99);
    std::map<Addr, std::uint8_t> ref;
    const Addr base = 0x40000;
    for (int op = 0; op < 4000; ++op) {
        const Addr addr = base + rng.below(256) * 8;
        const unsigned kind = static_cast<unsigned>(rng.below(3));
        if (kind == 0) {
            const std::uint8_t v =
                static_cast<std::uint8_t>(rng.below(256));
            std::uint8_t buf[8];
            std::memset(buf, v, 8);
            hier.write(addr, buf, 8);
            ref[addr] = v;
        } else if (kind == 1) {
            std::uint8_t out[8];
            hier.read(addr, 8, out);
            const std::uint8_t expect =
                ref.count(addr) ? ref[addr] : backendByte(addr);
            EXPECT_EQ(out[0], expect) << "op " << op;
        } else {
            hier.flush();
            for (auto &[a, v] : ref)
                EXPECT_EQ(backendByte(a), v);
        }
    }
}

} // namespace
} // namespace sam
