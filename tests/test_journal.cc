/**
 * @file
 * Tests for the crash-safe execution substrate: the JSON parser's
 * byte-identical round trip, atomic file writes, the write-ahead
 * campaign journal (append, replay, torn-line tolerance), spec
 * identity hashing, and RunResult restoration from journal records.
 */

#include <cstdio>
#include <fstream>
#include <gtest/gtest.h>
#include <sstream>

#include <unistd.h>

#include "src/common/json.hh"
#include "src/runner/journal.hh"

namespace sam {
namespace {

/** A unique scratch file path inside the test's working directory. */
std::string
scratchPath(const char *tag)
{
    static int counter = 0;
    return std::string("journal_test_") + tag + "_" +
           std::to_string(::getpid()) + "_" +
           std::to_string(counter++) + ".tmp.jsonl";
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

struct FileGuard
{
    std::string path;
    ~FileGuard() { std::remove(path.c_str()); }
};

// ----- Json::parse ---------------------------------------------------

TEST(JsonParseTest, RoundTripsByteIdentically)
{
    // Every kind the journal and BENCH records use, including doubles
    // that need shortest-exact formatting and negative/large ints.
    const std::string text =
        "{\"name\":\"fig12\",\"jobs\":8,\"speedup\":4.25,"
        "\"tiny\":0.1,\"third\":0.3333333333333333,"
        "\"energy\":963795.1276799998,"
        "\"big\":1234567890123456789,\"neg\":-7,\"quick\":true,"
        "\"note\":null,\"esc\":\"a\\\"b\\\\c\\nd\\tे\","
        "\"runs\":[{\"id\":\"SAM-en/Q1\",\"cycles\":535},[]],"
        "\"empty\":{}}";
    Json doc;
    std::string error;
    ASSERT_TRUE(Json::parse(text, doc, error)) << error;
    EXPECT_EQ(doc.dump(0), text);
}

TEST(JsonParseTest, PreservesNumericKinds)
{
    Json doc;
    std::string error;
    ASSERT_TRUE(Json::parse("{\"u\":18446744073709551615,\"i\":-3,"
                            "\"d\":2.5,\"e\":1e3}",
                            doc, error))
        << error;
    EXPECT_EQ(doc.find("u")->kind(), Json::Kind::Uint);
    EXPECT_EQ(doc.find("u")->asU64(), 18446744073709551615ull);
    EXPECT_EQ(doc.find("i")->kind(), Json::Kind::Int);
    EXPECT_EQ(doc.find("i")->asI64(), -3);
    EXPECT_EQ(doc.find("d")->kind(), Json::Kind::Double);
    // Numeric kinds coerce for readers.
    EXPECT_DOUBLE_EQ(doc.find("i")->asDouble(), -3.0);
    EXPECT_EQ(doc.find("d")->asU64(), 2u);
    EXPECT_DOUBLE_EQ(doc.find("e")->asDouble(), 1000.0);
}

TEST(JsonParseTest, RejectsMalformedInput)
{
    Json doc;
    std::string error;
    EXPECT_FALSE(Json::parse("", doc, error));
    EXPECT_FALSE(Json::parse("{\"a\":", doc, error));
    EXPECT_FALSE(Json::parse("{\"a\":1} trailing", doc, error));
    EXPECT_NE(error.find("offset"), std::string::npos) << error;
    EXPECT_FALSE(Json::parse("{\"a\":01}", doc, error));
    EXPECT_FALSE(Json::parse("[1,2,]", doc, error));
    EXPECT_FALSE(Json::parse("nul", doc, error));
    EXPECT_FALSE(Json::parse("{\"run\":@corrupted", doc, error));
}

TEST(JsonParseTest, RejectsPathologicalNesting)
{
    std::string deep;
    for (int i = 0; i < 200; ++i)
        deep += '[';
    Json doc;
    std::string error;
    EXPECT_FALSE(Json::parse(deep, doc, error));
    EXPECT_NE(error.find("deep"), std::string::npos) << error;
}

// ----- writeJsonFile -------------------------------------------------

TEST(AtomicWriteTest, LeavesNoTempFileBehind)
{
    FileGuard guard{scratchPath("atomic")};
    Json doc = Json::object();
    doc.set("hello", "world");
    writeJsonFile(guard.path, doc);
    EXPECT_EQ(slurp(guard.path), "{\n  \"hello\": \"world\"\n}\n");
    std::ifstream tmp(guard.path + ".tmp");
    EXPECT_FALSE(tmp.good()) << "temp file survived the rename";
}

TEST(AtomicWriteTest, ReplacesExistingFileCompletely)
{
    FileGuard guard{scratchPath("replace")};
    Json big = Json::object();
    std::string filler(4096, 'x');
    big.set("filler", filler);
    writeJsonFile(guard.path, big);
    Json tiny = Json::object();
    tiny.set("n", 1);
    writeJsonFile(guard.path, tiny);
    EXPECT_EQ(slurp(guard.path), "{\n  \"n\": 1\n}\n");
}

// ----- spec identity hashing ----------------------------------------

RunSpec
tinySpec(DesignKind design = DesignKind::SamEn)
{
    SimConfig cfg;
    cfg.design = design;
    cfg.taRecords = 256;
    cfg.tbRecords = 256;
    const Query q = benchmarkQQueries()[0];
    return RunSpec{designName(design) + "/" + q.name, cfg, q, false};
}

TEST(SpecHashTest, StableAndSensitive)
{
    const RunSpec spec = tinySpec();
    const std::uint64_t h = specHash(spec);
    EXPECT_EQ(specHash(spec), h) << "hash is not a pure function";

    RunSpec other = tinySpec(DesignKind::GsDram);
    EXPECT_NE(specHash(other), h);

    RunSpec scaled = tinySpec();
    scaled.config.taRecords = 512;
    EXPECT_NE(specHash(scaled), h);

    RunSpec verified = tinySpec();
    verified.verify = true;
    EXPECT_NE(specHash(verified), h);

    RunSpec requeried = tinySpec();
    requeried.query.selectivity = 0.75;
    EXPECT_NE(specHash(requeried), h);
}

TEST(SpecHashTest, IgnoresNonResultKnobs)
{
    const std::uint64_t h = specHash(tinySpec());
    // Telemetry collection is passive; flipping it must not invalidate
    // completed journal entries.
    RunSpec telem = tinySpec();
    telem.config.telemetry.enabled = !telem.config.telemetry.enabled;
    EXPECT_EQ(specHash(telem), h);
}

TEST(SpecHashTest, HexRendering)
{
    EXPECT_EQ(hashHex(0x0123456789abcdefull), "0123456789abcdef");
    EXPECT_EQ(hashHex(0), "0000000000000000");
}

// ----- journal write + replay ---------------------------------------

JournalHeader
testHeader()
{
    JournalHeader h;
    h.campaign = "fig12";
    h.scale = "quick";
    h.verify = false;
    h.telemetry = true;
    return h;
}

Json
fakeRunRecord(const std::string &id, std::uint64_t cycles)
{
    Json run = Json::object();
    run.set("id", id);
    run.set("design", "SAM-en");
    run.set("query", "Q1");
    run.set("cycles", cycles);
    run.set("mem_reads", std::uint64_t{7});
    run.set("result_rows", std::uint64_t{65});
    run.set("result_checksum", std::uint64_t{123456});
    run.set("wall_ms", 1.5);
    return run;
}

TEST(JournalTest, AppendsAndReplays)
{
    FileGuard guard{scratchPath("replay")};
    Json power = Json::object();
    power.set("act_pj", 12.5);
    power.set("rdwr_pj", 2.25);
    power.set("background_pj", 0.5);
    power.set("refresh_pj", 0.0);
    power.set("elapsed_ns", 100.0);
    {
        CampaignJournal journal(guard.path, testHeader(),
                                /*resume=*/false);
        journal.recordDone("SAM-en/Q1", 0xabcull, 1,
                           fakeRunRecord("SAM-en/Q1", 535), power);
        journal.recordFailed("SAM-en/Q2", 0xdefull, 3, "crash",
                             "killed by signal 9");
    }
    JournalState state;
    std::string error;
    ASSERT_TRUE(loadJournal(guard.path, state, error)) << error;
    EXPECT_EQ(state.header.campaign, "fig12");
    EXPECT_EQ(state.header.scale, "quick");
    EXPECT_FALSE(state.header.verify);
    EXPECT_TRUE(state.header.telemetry);
    EXPECT_EQ(state.truncatedLines, 0u);
    ASSERT_EQ(state.entries.size(), 2u);

    const JournalEntry &done = state.entries.at("SAM-en/Q1");
    EXPECT_TRUE(done.completed);
    EXPECT_EQ(done.hash, 0xabcull);
    EXPECT_EQ(done.attempts, 1u);
    EXPECT_EQ(done.run.find("cycles")->asU64(), 535u);
    EXPECT_DOUBLE_EQ(done.power.find("act_pj")->asDouble(), 12.5);

    const JournalEntry &failed = state.entries.at("SAM-en/Q2");
    EXPECT_FALSE(failed.completed);
    EXPECT_EQ(failed.attempts, 3u);
    EXPECT_EQ(failed.failure, "crash");
    EXPECT_EQ(failed.error, "killed by signal 9");
}

TEST(JournalTest, LatestRecordWinsPerSpec)
{
    FileGuard guard{scratchPath("latest")};
    {
        CampaignJournal journal(guard.path, testHeader(), false);
        journal.recordFailed("SAM-en/Q1", 0x1ull, 3, "hang",
                             "deadline exceeded");
    }
    {
        // A resumed campaign appends the successful retry after the
        // old failure; replay must surface the success.
        CampaignJournal journal(guard.path, testHeader(),
                                /*resume=*/true);
        journal.recordDone("SAM-en/Q1", 0x1ull, 1,
                           fakeRunRecord("SAM-en/Q1", 535),
                           Json::object());
    }
    JournalState state;
    std::string error;
    ASSERT_TRUE(loadJournal(guard.path, state, error)) << error;
    ASSERT_EQ(state.entries.size(), 1u);
    EXPECT_TRUE(state.entries.at("SAM-en/Q1").completed);
}

TEST(JournalTest, ToleratesTornTrailingLine)
{
    FileGuard guard{scratchPath("torn")};
    {
        CampaignJournal journal(guard.path, testHeader(), false);
        journal.recordDone("SAM-en/Q1", 0x1ull, 1,
                           fakeRunRecord("SAM-en/Q1", 535),
                           Json::object());
    }
    // Simulate a crash mid-append: half a record, no newline.
    {
        std::ofstream out(guard.path, std::ios::app);
        out << "{\"spec\":\"SAM-en/Q2\",\"hash\":\"00";
    }
    JournalState state;
    std::string error;
    ASSERT_TRUE(loadJournal(guard.path, state, error)) << error;
    EXPECT_EQ(state.truncatedLines, 1u);
    ASSERT_EQ(state.entries.size(), 1u);
    EXPECT_TRUE(state.entries.count("SAM-en/Q1"));
}

TEST(JournalTest, RejectsMissingAndForeignFiles)
{
    JournalState state;
    std::string error;
    EXPECT_FALSE(loadJournal("no_such_journal.jsonl", state, error));
    EXPECT_NE(error.find("cannot read"), std::string::npos) << error;

    FileGuard guard{scratchPath("foreign")};
    {
        std::ofstream out(guard.path);
        out << "{\"schema\":\"sam-campaign-v1\"}\n";
    }
    EXPECT_FALSE(loadJournal(guard.path, state, error));
    EXPECT_NE(error.find("sam-journal-v1"), std::string::npos)
        << error;

    FileGuard empty{scratchPath("empty")};
    { std::ofstream out(empty.path); }
    EXPECT_FALSE(loadJournal(empty.path, state, error));
}

TEST(JournalTest, RestoreRunResultRoundTrips)
{
    RunResult r;
    r.id = "SAM-en/Q1";
    r.design = DesignKind::SamEn;
    r.query = "Q1";
    r.stats.cycles = 535;
    r.stats.memReads = 94;
    r.stats.memWrites = 3;
    r.stats.strideReads = 17;
    r.stats.strideWrites = 2;
    r.stats.activates = 32;
    r.stats.rowHits = 60;
    r.stats.rowMisses = 34;
    r.stats.modeSwitches = 4;
    r.stats.eccCorrectedLines = 1;
    r.stats.eccUncorrectable = 0;
    r.stats.checkedCommands = 129;
    r.stats.result.rows = 65;
    r.stats.result.checksum = 987654321;
    r.stats.power.actEnergyPj = 12.5;
    r.stats.power.rdwrEnergyPj = 2.25;
    r.stats.power.backgroundEnergyPj = 0.5;
    r.stats.power.refreshEnergyPj = 0.125;
    r.stats.power.elapsedNs = 1000.0;
    r.wallMs = 3.5;

    JournalEntry entry;
    entry.id = r.id;
    entry.completed = true;
    entry.run = runResultJson(r);
    entry.power = powerJson(r.stats.power);
    const RunResult back = restoreRunResult(entry);

    EXPECT_EQ(back.id, r.id);
    EXPECT_EQ(back.design, r.design);
    EXPECT_EQ(back.query, r.query);
    EXPECT_EQ(back.stats.cycles, r.stats.cycles);
    EXPECT_EQ(back.stats.memReads, r.stats.memReads);
    EXPECT_EQ(back.stats.memWrites, r.stats.memWrites);
    EXPECT_EQ(back.stats.strideReads, r.stats.strideReads);
    EXPECT_EQ(back.stats.strideWrites, r.stats.strideWrites);
    EXPECT_EQ(back.stats.activates, r.stats.activates);
    EXPECT_EQ(back.stats.rowHits, r.stats.rowHits);
    EXPECT_EQ(back.stats.rowMisses, r.stats.rowMisses);
    EXPECT_EQ(back.stats.modeSwitches, r.stats.modeSwitches);
    EXPECT_EQ(back.stats.eccCorrectedLines,
              r.stats.eccCorrectedLines);
    EXPECT_EQ(back.stats.checkedCommands, r.stats.checkedCommands);
    EXPECT_EQ(back.stats.result.rows, r.stats.result.rows);
    EXPECT_EQ(back.stats.result.checksum, r.stats.result.checksum);
    EXPECT_DOUBLE_EQ(back.stats.power.actEnergyPj,
                     r.stats.power.actEnergyPj);
    EXPECT_DOUBLE_EQ(back.stats.power.totalEnergyPj(),
                     r.stats.power.totalEnergyPj());
    EXPECT_DOUBLE_EQ(back.wallMs, r.wallMs);

    // The verbatim record re-serializes byte-identically -- the
    // property resumed BENCH output depends on.
    Json reparsed;
    std::string error;
    ASSERT_TRUE(
        Json::parse(entry.run.dump(0), reparsed, error))
        << error;
    EXPECT_EQ(reparsed.dump(0), entry.run.dump(0));
}

} // namespace
} // namespace sam
