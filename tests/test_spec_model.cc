/**
 * @file
 * Tests for the declarative timing spec (src/check/spec_model).
 *
 * The golden tests pin the full rendered rule table for both timing
 * presets: any change to a derived gap, a rule's scope, or the rule
 * set itself must show up as a reviewed golden diff here. The unit
 * tests cross-check earliestLegal/bindingRules against hand-built
 * ProtocolChecker streams at the exact legality boundary, and the
 * verifier tests run the bounded exhaustive exploration in-process.
 */

#include <gtest/gtest.h>

#include "src/check/protocol_checker.hh"
#include "src/check/spec_model.hh"
#include "src/dram/timing.hh"

namespace sam {
namespace {

Geometry
smallGeom(unsigned ranks = 2, unsigned groups = 2, unsigned banks = 1)
{
    Geometry g;
    g.channels = 1;
    g.ranks = ranks;
    g.bankGroups = groups;
    g.banksPerGroup = banks;
    return g;
}

SpecModel::Cand
cand(CmdKind kind, unsigned rank, unsigned group = 0,
     std::uint64_t row = 0, AccessMode mode = AccessMode::Regular)
{
    SpecModel::Cand c;
    c.kind = kind;
    c.addr.rank = rank;
    c.addr.bankGroup = group;
    c.addr.row = row;
    c.mode = mode;
    return c;
}

Command
cmdAt(CmdKind kind, Cycle at, unsigned rank, unsigned group = 0,
      std::uint64_t row = 0, AccessMode mode = AccessMode::Regular)
{
    Command c;
    c.kind = kind;
    c.at = at;
    c.addr.rank = rank;
    c.addr.bankGroup = group;
    c.addr.row = row;
    c.mode = mode;
    return c;
}

std::vector<Violation>
replay(const Geometry &geom, const TimingParams &timing,
       const std::vector<Command> &cmds)
{
    ProtocolChecker pc(geom, timing);
    for (const Command &c : cmds)
        pc.observe(c);
    return pc.violations();
}

bool
flags(const std::vector<Violation> &vs, const std::string &constraint)
{
    for (const Violation &v : vs) {
        if (v.constraint == constraint)
            return true;
    }
    return false;
}

TEST(SpecRuleTable, GoldenDdr4)
{
    EXPECT_EQ(describeRuleTable(ddr4Timing()),
              "PRE->ACT bank any gap=17 tRP\n"
              "ACT->ACT bank any gap=56 tRC\n"
              "ACT->PRE bank any gap=39 tRAS\n"
              "RD->PRE bank any gap=9 tRTP\n"
              "WR->PRE bank any gap=34 tWR\n"
              "ACT->RD bank any gap=17 tRCD\n"
              "ACT->WR bank any gap=17 tRCD\n"
              "ACT->ACT rank any gap=4 tRRD_S\n"
              "ACT->ACT group any gap=6 tRRD_L\n"
              "RD->RD rank any gap=4 tCCD_S\n"
              "RD->WR rank any gap=4 tCCD_S\n"
              "WR->RD rank any gap=4 tCCD_S\n"
              "WR->WR rank any gap=4 tCCD_S\n"
              "RD->RD group any gap=6 tCCD_L\n"
              "RD->WR group any gap=6 tCCD_L\n"
              "WR->RD group any gap=6 tCCD_L\n"
              "WR->WR group any gap=6 tCCD_L\n"
              "WR->RD rank any gap=19 tWTR_S\n"
              "WR->RD group any gap=25 tWTR_L\n"
              "MSW->RD rank any gap=2 tRTR(mode)\n"
              "MSW->WR rank any gap=2 tRTR(mode)\n"
              "MSW->MSW rank any gap=2 tRTR(mode)\n"
              "RD->MSW rank any gap=1 mode-state\n"
              "WR->MSW rank any gap=1 mode-state\n"
              "REF->REF rank any gap=420 tRFC\n"
              "REF->ACT rank any gap=420 tRFC\n"
              "REF->RD rank any gap=420 tRFC\n"
              "REF->WR rank any gap=420 tRFC\n"
              "REF->MSW rank any gap=420 tRFC\n"
              "RD->REF rank any gap=1 tRFC\n"
              "WR->REF rank any gap=1 tRFC\n"
              "MSW->REF rank any gap=1 tRFC\n"
              "RD->RD channel same gap=4 bus-overlap\n"
              "RD->RD channel diff gap=6 tRTR(bus)\n"
              "RD->WR channel same gap=9 bus-overlap\n"
              "RD->WR channel same gap=11 rd-wr-turnaround\n"
              "RD->WR channel diff gap=11 tRTR(bus)\n"
              "WR->RD channel diff gap=1 tRTR(bus)\n"
              "WR->WR channel same gap=4 bus-overlap\n"
              "WR->WR channel diff gap=6 tRTR(bus)\n"
              "# tFAW: 5th ACT >= oldest-of-last-4-ACTs + 26 "
              "(rank window)\n"
              "# state: ACT needs bank closed; PRE needs bank open; "
              "RD/WR need open row and matching mode; REF needs all "
              "banks in rank closed\n"
              "# refresh: k-th REF due by (k+9)*9360 "
              "(tREFI, 8 postponements)\n");
}

TEST(SpecRuleTable, GoldenRram)
{
    EXPECT_EQ(describeRuleTable(rramTiming()),
              "PRE->ACT bank any gap=1 tRP\n"
              "ACT->ACT bank any gap=7 tRC\n"
              "ACT->PRE bank any gap=6 tRAS\n"
              "RD->PRE bank any gap=9 tRTP\n"
              "WR->PRE bank any gap=136 tWR\n"
              "ACT->RD bank any gap=35 tRCD\n"
              "ACT->WR bank any gap=35 tRCD\n"
              "ACT->ACT rank any gap=4 tRRD_S\n"
              "ACT->ACT group any gap=6 tRRD_L\n"
              "RD->RD rank any gap=4 tCCD_S\n"
              "RD->WR rank any gap=4 tCCD_S\n"
              "WR->RD rank any gap=4 tCCD_S\n"
              "WR->WR rank any gap=4 tCCD_S\n"
              "RD->RD group any gap=6 tCCD_L\n"
              "RD->WR group any gap=6 tCCD_L\n"
              "WR->RD group any gap=6 tCCD_L\n"
              "WR->WR group any gap=6 tCCD_L\n"
              "WR->RD rank any gap=28 tWTR_S\n"
              "WR->RD group any gap=40 tWTR_L\n"
              "MSW->RD rank any gap=2 tRTR(mode)\n"
              "MSW->WR rank any gap=2 tRTR(mode)\n"
              "MSW->MSW rank any gap=2 tRTR(mode)\n"
              "RD->MSW rank any gap=1 mode-state\n"
              "WR->MSW rank any gap=1 mode-state\n"
              "RD->RD channel same gap=4 bus-overlap\n"
              "RD->RD channel diff gap=6 tRTR(bus)\n"
              "RD->WR channel same gap=9 bus-overlap\n"
              "RD->WR channel same gap=11 rd-wr-turnaround\n"
              "RD->WR channel diff gap=11 tRTR(bus)\n"
              "WR->RD channel diff gap=1 tRTR(bus)\n"
              "WR->WR channel same gap=4 bus-overlap\n"
              "WR->WR channel diff gap=6 tRTR(bus)\n"
              "# tFAW: 5th ACT >= oldest-of-last-4-ACTs + 26 "
              "(rank window)\n"
              "# state: ACT needs bank closed; PRE needs bank open; "
              "RD/WR need open row and matching mode; REF needs all "
              "banks in rank closed\n"
              "# refresh: REF illegal (tREFI=0)\n");
}

TEST(SpecModel, ActToCasBoundaryMatchesChecker)
{
    const Geometry geom = smallGeom();
    const TimingParams t = ddr4Timing();
    SpecModel m(geom, t);
    m.apply(cand(CmdKind::Act, 0), 100);

    const SpecModel::Cand rd = cand(CmdKind::Rd, 0);
    ASSERT_TRUE(m.stateLegal(rd));
    const Cycle e = m.earliestLegal(rd, m.lastIssue());
    EXPECT_EQ(e, 100 + t.tRCD);
    EXPECT_EQ(m.bindingRules(rd, e),
              std::vector<std::string>{"tRCD"});
    EXPECT_TRUE(m.legalAt(rd, e));
    EXPECT_FALSE(m.legalAt(rd, e - 1));

    const std::vector<Command> ok = {cmdAt(CmdKind::Act, 100, 0),
                                     cmdAt(CmdKind::Rd, e, 0)};
    EXPECT_TRUE(replay(geom, t, ok).empty());
    const std::vector<Command> bad = {cmdAt(CmdKind::Act, 100, 0),
                                      cmdAt(CmdKind::Rd, e - 1, 0)};
    EXPECT_TRUE(flags(replay(geom, t, bad), "tRCD"));
}

TEST(SpecModel, WriteRecoveryFoldsDataOffset)
{
    const Geometry geom = smallGeom();
    const TimingParams t = ddr4Timing();
    SpecModel m(geom, t);
    m.apply(cand(CmdKind::Act, 0), 0);
    m.apply(cand(CmdKind::Wr, 0), t.tRCD);

    const SpecModel::Cand pre = cand(CmdKind::Pre, 0);
    const Cycle e = m.earliestLegal(pre, m.lastIssue());
    // tWR counts from write-data end: issue + CWL + tBL + tWR.
    EXPECT_EQ(e, t.tRCD + t.cwl + t.tBL + t.tWR);
    EXPECT_EQ(m.bindingRules(pre, e),
              std::vector<std::string>{"tWR"});

    const std::vector<Command> ok = {cmdAt(CmdKind::Act, 0, 0),
                                     cmdAt(CmdKind::Wr, t.tRCD, 0),
                                     cmdAt(CmdKind::Pre, e, 0)};
    EXPECT_TRUE(replay(geom, t, ok).empty());
    const std::vector<Command> bad = {cmdAt(CmdKind::Act, 0, 0),
                                      cmdAt(CmdKind::Wr, t.tRCD, 0),
                                      cmdAt(CmdKind::Pre, e - 1, 0)};
    EXPECT_TRUE(flags(replay(geom, t, bad), "tWR"));
}

TEST(SpecModel, TfawWindowBindsOnFifthAct)
{
    // Five banks on one rank so the 5th ACT is limited by the window
    // (with four banks, recycling a bank makes tRP dominate).
    const Geometry geom = smallGeom(1, 5, 1);
    const TimingParams t = ddr4Timing();
    SpecModel m(geom, t);
    std::vector<Command> cmds;
    for (unsigned i = 0; i < 4; ++i) {
        const Cycle at = i * t.tRRD_S;
        m.apply(cand(CmdKind::Act, 0, i), at);
        cmds.push_back(cmdAt(CmdKind::Act, at, 0, i));
    }
    const SpecModel::Cand fifth = cand(CmdKind::Act, 0, 4);
    const Cycle e = m.earliestLegal(fifth, m.lastIssue());
    EXPECT_EQ(e, t.tFAW); // Window opened at cycle 0.
    EXPECT_EQ(m.bindingRules(fifth, e),
              std::vector<std::string>{"tFAW"});

    cmds.push_back(cmdAt(CmdKind::Act, e, 0, 4));
    EXPECT_TRUE(replay(geom, t, cmds).empty());
    cmds.back().at = e - 1;
    EXPECT_TRUE(flags(replay(geom, t, cmds), "tFAW"));
}

TEST(SpecModel, RefreshBlackoutAndTiedSwitch)
{
    const Geometry geom = smallGeom();
    const TimingParams t = ddr4Timing();
    SpecModel m(geom, t);
    m.apply(cand(CmdKind::ModeSwitch, 0, 0, 0, AccessMode::Stride), 10);

    // REF must serialize strictly after the switch: an equal-time REF
    // sorts first and retroactively swallows the switch.
    const SpecModel::Cand ref = cand(CmdKind::Ref, 0);
    EXPECT_EQ(m.earliestLegal(ref, m.lastIssue()), 11);
    const std::vector<Command> tied = {
        cmdAt(CmdKind::ModeSwitch, 10, 0, 0, 0, AccessMode::Stride),
        cmdAt(CmdKind::Ref, 10, 0)};
    EXPECT_TRUE(flags(replay(geom, t, tied), "tRFC"));

    m.apply(ref, 11);
    const SpecModel::Cand act = cand(CmdKind::Act, 0);
    const Cycle e = m.earliestLegal(act, m.lastIssue());
    EXPECT_EQ(e, 11 + t.tRFC);
    EXPECT_EQ(m.bindingRules(act, e),
              std::vector<std::string>{"tRFC"});
}

TEST(SpecModel, StateRules)
{
    const Geometry geom = smallGeom();
    SpecModel m(geom, ddr4Timing());
    EXPECT_FALSE(m.stateLegal(cand(CmdKind::Pre, 0))); // Closed bank.
    EXPECT_TRUE(m.stateLegal(cand(CmdKind::Ref, 0)));
    m.apply(cand(CmdKind::Act, 0, 0, 7), 0);
    EXPECT_FALSE(m.stateLegal(cand(CmdKind::Act, 0))); // Open bank.
    EXPECT_FALSE(m.stateLegal(cand(CmdKind::Ref, 0))); // Open bank.
    EXPECT_FALSE(m.stateLegal(cand(CmdKind::Rd, 0, 0, 3))); // Row.
    EXPECT_FALSE(m.stateLegal(
        cand(CmdKind::Rd, 0, 0, 7, AccessMode::Stride))); // Mode.
    EXPECT_TRUE(m.stateLegal(cand(CmdKind::Rd, 0, 0, 7)));

    SpecModel rram(geom, rramTiming());
    EXPECT_FALSE(rram.stateLegal(cand(CmdKind::Ref, 0))); // tREFI=0.
}

TEST(SpecModel, LegalityIsUpwardClosed)
{
    const Geometry geom = smallGeom();
    const TimingParams t = ddr4Timing();
    SpecModel m(geom, t);
    m.apply(cand(CmdKind::Act, 0), 0);
    m.apply(cand(CmdKind::Rd, 0), t.tRCD);
    for (CmdKind kind : {CmdKind::Pre, CmdKind::Rd}) {
        const SpecModel::Cand c = cand(kind, 0);
        const Cycle e = m.earliestLegal(c, m.lastIssue());
        for (Cycle delta = 0; delta < 4; ++delta)
            EXPECT_TRUE(m.legalAt(c, e + delta));
    }
}

TEST(SpecModel, RefDeadlinePostponesEightIntervals)
{
    const TimingParams t = ddr4Timing();
    SpecModel m(smallGeom(), t);
    EXPECT_EQ(m.refDeadline(0, 0), Cycle{9} * t.tREFI);
    m.apply(cand(CmdKind::Ref, 0), 100);
    EXPECT_EQ(m.refDeadline(0, 0), Cycle{10} * t.tREFI);
}

TEST(SpecVerifier, ExhaustiveAgreementDdr4)
{
    VerifyOptions opt;
    opt.depth = 2;
    opt.maxNodes = 5000;
    const VerifyStats stats =
        verifySpecAgainstChecker(smallGeom(), ddr4Timing(), opt);
    EXPECT_TRUE(stats.ok()) << stats.summary()
                            << (stats.failures.empty()
                                    ? ""
                                    : "\n" + stats.failures.front());
    EXPECT_TRUE(stats.exhausted);
    EXPECT_GT(stats.boundaryProbes, 0u);
    EXPECT_GT(stats.stateProbes, 0u);
    EXPECT_GT(stats.monotoneProbes, 0u);
}

TEST(SpecVerifier, ExhaustiveAgreementRram)
{
    VerifyOptions opt;
    opt.depth = 2;
    opt.maxNodes = 5000;
    const VerifyStats stats =
        verifySpecAgainstChecker(smallGeom(), rramTiming(), opt);
    EXPECT_TRUE(stats.ok()) << stats.summary()
                            << (stats.failures.empty()
                                    ? ""
                                    : "\n" + stats.failures.front());
    EXPECT_TRUE(stats.exhausted);
}

TEST(SpecVerifier, DetectsInjectedSpecLooseness)
{
    // Sanity-check the harness itself: loosen one parameter on the
    // spec side only and the cross-examination must notice.
    VerifyOptions opt;
    opt.depth = 1;
    opt.maxNodes = 200;
    TimingParams loose = ddr4Timing();
    loose.tRCD = 16; // Spec table built from this...
    const Geometry geom = smallGeom();
    // ...but replay the probes against the real checker by hand.
    SpecModel m(geom, loose);
    m.apply(cand(CmdKind::Act, 0), 0);
    const Cycle e =
        m.earliestLegal(cand(CmdKind::Rd, 0), m.lastIssue());
    EXPECT_EQ(e, 16);
    const std::vector<Command> probe = {cmdAt(CmdKind::Act, 0, 0),
                                        cmdAt(CmdKind::Rd, e, 0)};
    EXPECT_TRUE(flags(replay(geom, ddr4Timing(), probe), "tRCD"));
}

} // namespace
} // namespace sam
