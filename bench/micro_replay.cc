/**
 * @file
 * google-benchmark microbenchmarks for the simulation hot paths this
 * perf work targets: arena trace append, the clean-line ECC read fast
 * path (on vs off), the allocation-free encode+store write path, and
 * an end-to-end phase-1 + replay run reported in records/second.
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "src/cache/sector_cache.hh"
#include "src/common/types.hh"
#include "src/controller/request_queue.hh"
#include "src/core/session.hh"
#include "src/dram/data_path.hh"
#include "src/ecc/ecc_engine.hh"
#include "src/imdb/query.hh"
#include "src/sim/event_queue.hh"
#include "src/sim/trace.hh"

namespace {

using namespace sam;

void
BM_TraceAppend(benchmark::State &state)
{
    CoreTrace trace;
    std::uint64_t n = 0;
    for (auto _ : state) {
        if (trace.entries.size() >= (1u << 20)) {
            // Reset before the offset fields overflow; keep the
            // capacity so steady state stays allocation-free.
            trace.pool.clear();
            trace.entries.clear();
            trace.epochEnds.clear();
        }
        const std::size_t offset = trace.pool.size();
        for (unsigned g = 0; g < 8; ++g)
            trace.pool.push_back((n + g) * kCachelineBytes);
        trace.append(AccessType::StrideRead, 3, offset, 8, 2);
        ++n;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_TraceAppend);

/** Gather 8 clean lines through the DataPath read path. */
void
strideReadBench(benchmark::State &state, bool fast_path)
{
    DataPath dp(EccScheme::SscDsd);
    dp.setCleanFastPath(fast_path);
    const unsigned kLines = 1024;
    std::vector<std::uint8_t> line(kCachelineBytes, 0xa5);
    for (unsigned i = 0; i < kLines; ++i)
        dp.writeLine(i * kCachelineBytes, line);
    Addr gather[8];
    std::uint8_t out[kCachelineBytes];
    std::uint64_t n = 0;
    for (auto _ : state) {
        for (unsigned g = 0; g < 8; ++g)
            gather[g] = ((n * 8 + g) % kLines) * kCachelineBytes;
        const ReadFlags f = dp.strideReadInto(gather, 8, 0, 8, out);
        benchmark::DoNotOptimize(f.uncorrectable);
        benchmark::DoNotOptimize(out[0]);
        ++n;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(n) * 8);
}

void
BM_CleanStrideRead(benchmark::State &state)
{
    strideReadBench(state, /*fast_path=*/true);
}
BENCHMARK(BM_CleanStrideRead);

void
BM_CleanStrideReadDecodePath(benchmark::State &state)
{
    strideReadBench(state, /*fast_path=*/false);
}
BENCHMARK(BM_CleanStrideReadDecodePath);

/** The encode+store write path (writebacks, strided RMW). */
void
BM_WriteLineEncoded(benchmark::State &state)
{
    DataPath dp(EccScheme::SscDsd);
    const unsigned kLines = 1024;
    std::vector<std::uint8_t> line(kCachelineBytes, 0x5a);
    std::uint64_t n = 0;
    for (auto _ : state) {
        line[0] = static_cast<std::uint8_t>(n);
        dp.writeLine((n % kLines) * kCachelineBytes, line);
        ++n;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_WriteLineEncoded);

/**
 * Raw EventQueue churn: a steady state of `depth` live sources where
 * every pop reschedules its source further out, the access pattern the
 * event engine's wake loop generates (one pop, a handful of pushes).
 */
void
BM_EventQueue(benchmark::State &state)
{
    const unsigned depth = static_cast<unsigned>(state.range(0));
    EventQueue q;
    for (unsigned s = 0; s < depth; ++s)
        q.push(/*cycle=*/s, /*source=*/s);
    std::uint64_t n = 0;
    for (auto _ : state) {
        const EventQueue::Event e = q.pop();
        benchmark::DoNotOptimize(e.source);
        // Reschedule with a deterministic, branchy-looking stride so
        // the heap sees realistic disorder rather than FIFO rotation.
        q.push(e.cycle + 1 + (e.seq % 7) * 3, e.source);
        ++n;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueue)->Arg(8)->Arg(64)->Arg(512);

/**
 * End-to-end phase-1 + MSHR-bounded replay of one design point,
 * reported in table-A records per second of host wall time (the
 * campaign `throughput` metric). Parameterized over the replay engine
 * so `--benchmark_filter=BM_SessionReplay` prints the step-vs-event
 * comparison directly; the two must agree cycle-for-cycle, so any gap
 * between them is pure host-time overhead of the losing loop.
 */
void
sessionReplayBench(benchmark::State &state, ReplayEngineKind engine)
{
    SimConfig cfg;
    cfg.taRecords = 2048;
    cfg.tbRecords = 8192;
    cfg.collectStatsText = false;
    cfg.engine = engine;
    const Query q = benchmarkQQueries()[0];
    // One shared table cache across iterations, as in a campaign:
    // tables are encoded once, each iteration simulates a fresh system.
    auto tables = std::make_shared<TableCache>();
    std::uint64_t n = 0;
    for (auto _ : state) {
        Session session(cfg, tables);
        RunStats stats = session.run(DesignKind::SamEn, q);
        benchmark::DoNotOptimize(stats.cycles);
        ++n;
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(n * cfg.taRecords));
}

void
BM_SessionReplay(benchmark::State &state)
{
    sessionReplayBench(state, ReplayEngineKind::Event);
}
BENCHMARK(BM_SessionReplay)->Unit(benchmark::kMillisecond);

void
BM_SessionReplayStepEngine(benchmark::State &state)
{
    sessionReplayBench(state, ReplayEngineKind::Step);
}
BENCHMARK(BM_SessionReplayStepEngine)->Unit(benchmark::kMillisecond);

/**
 * EccEngine construction: with the shared CodecRegistry this is a map
 * lookup, not a Reed-Solomon table build. Sessions, DataPaths, and
 * table-encode workers all construct engines freely.
 */
void
BM_EccEngineConstruct(benchmark::State &state)
{
    // Warm the registry so the bench measures the steady state, not
    // the one-time table build.
    { EccEngine warm(EccScheme::SscDsd); }
    for (auto _ : state) {
        EccEngine engine(EccScheme::SscDsd);
        benchmark::DoNotOptimize(engine.parityBytesPerLine());
    }
}
BENCHMARK(BM_EccEngineConstruct);

/**
 * Full Session construction against a warm TableCache: the per-design
 * setup cost a campaign pays before every replay.
 */
void
BM_SessionConstruct(benchmark::State &state)
{
    SimConfig cfg;
    cfg.taRecords = 2048;
    cfg.tbRecords = 8192;
    cfg.collectStatsText = false;
    auto tables = std::make_shared<TableCache>();
    for (auto _ : state) {
        Session session(cfg, tables);
        benchmark::DoNotOptimize(&session);
    }
}
BENCHMARK(BM_SessionConstruct);

/**
 * The sector-cache fill + extract pair on the arena-backed SoA
 * layout: the per-chunk path of every stride fill and exclusive
 * promotion, which must not allocate.
 */
void
BM_SectorCacheFillExtract(benchmark::State &state)
{
    CacheParams params;
    params.sectorBytes = 8;
    SectorCache cache(params);
    const unsigned kLines = 1024;
    std::uint8_t chunk[kCachelineBytes];
    for (unsigned i = 0; i < kCachelineBytes; ++i)
        chunk[i] = static_cast<std::uint8_t>(i);
    std::uint64_t n = 0;
    for (auto _ : state) {
        const Addr line = (n % kLines) * kCachelineBytes;
        cache.fill(line, 0x0f, chunk, /*dirty=*/true);
        auto wb = cache.extract(line);
        benchmark::DoNotOptimize(wb->dirtyMask);
        ++n;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SectorCacheFillExtract);

/**
 * FR-FCFS picks on a paper-scale geometry (256 banks) where most
 * banks hold an open row but only a few have eligible row hits --
 * the shape the hot-bank index targets (the former rule-1 scan was
 * O(totalBanks) per pick).
 */
void
BM_PopBestOpenRowHeavy(benchmark::State &state)
{
    Geometry geom;
    geom.channels = 8;  // 8 x 2 ranks x 16 banks = 256 flat banks.
    RequestQueue queue(geom);
    const unsigned banks_per_rank = geom.banksPerRank();
    const unsigned total_banks = geom.totalBanks();

    // Every bank has a row open (a busy steady state); row 7 is the
    // open row everywhere.
    for (unsigned fb = 0; fb < total_banks; ++fb)
        queue.noteRowOpened(fb, 7);

    std::uint64_t id = 0;
    auto makeReq = [&](unsigned fb, std::uint64_t row) {
        MemRequest req;
        req.id = ++id;
        req.arrival = 0;
        MappedAddr &a = req.device.addr;
        a.channel = fb / (geom.ranks * banks_per_rank);
        const unsigned in_channel = fb % (geom.ranks * banks_per_rank);
        a.rank = in_channel / banks_per_rank;
        const unsigned in_rank = in_channel % banks_per_rank;
        a.bankGroup = in_rank / geom.banksPerGroup;
        a.bank = in_rank % geom.banksPerGroup;
        a.row = row;
        return req;
    };

    // Backlog of 64 requests round-robin over the banks; 1 in 8 is a
    // row hit, the rest target closed rows of open banks.
    const unsigned kDepth = 64;
    std::uint64_t n = 0;
    for (unsigned i = 0; i < kDepth; ++i)
        queue.push(makeReq(i * 37 % total_banks,
                           i % 8 == 0 ? 7 : 1000 + i));
    bool row_hit = false;
    for (auto _ : state) {
        const MemRequest req = queue.popBest(/*now=*/1, row_hit);
        benchmark::DoNotOptimize(req.id);
        ++n;
        queue.push(makeReq(n * 37 % total_banks,
                           n % 8 == 0 ? 7 : 1000 + n % 512));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_PopBestOpenRowHeavy);

} // namespace

BENCHMARK_MAIN();
