/**
 * @file
 * google-benchmark microbenchmarks for the simulation hot paths this
 * perf work targets: arena trace append, the clean-line ECC read fast
 * path (on vs off), the allocation-free encode+store write path, and
 * an end-to-end phase-1 + replay run reported in records/second.
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "src/common/types.hh"
#include "src/core/session.hh"
#include "src/dram/data_path.hh"
#include "src/imdb/query.hh"
#include "src/sim/trace.hh"

namespace {

using namespace sam;

void
BM_TraceAppend(benchmark::State &state)
{
    CoreTrace trace;
    std::uint64_t n = 0;
    for (auto _ : state) {
        if (trace.entries.size() >= (1u << 20)) {
            // Reset before the offset fields overflow; keep the
            // capacity so steady state stays allocation-free.
            trace.pool.clear();
            trace.entries.clear();
            trace.epochEnds.clear();
        }
        const std::size_t offset = trace.pool.size();
        for (unsigned g = 0; g < 8; ++g)
            trace.pool.push_back((n + g) * kCachelineBytes);
        trace.append(AccessType::StrideRead, 3, offset, 8, 2);
        ++n;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_TraceAppend);

/** Gather 8 clean lines through the DataPath read path. */
void
strideReadBench(benchmark::State &state, bool fast_path)
{
    DataPath dp(EccScheme::SscDsd);
    dp.setCleanFastPath(fast_path);
    const unsigned kLines = 1024;
    std::vector<std::uint8_t> line(kCachelineBytes, 0xa5);
    for (unsigned i = 0; i < kLines; ++i)
        dp.writeLine(i * kCachelineBytes, line);
    Addr gather[8];
    std::uint8_t out[kCachelineBytes];
    std::uint64_t n = 0;
    for (auto _ : state) {
        for (unsigned g = 0; g < 8; ++g)
            gather[g] = ((n * 8 + g) % kLines) * kCachelineBytes;
        const ReadFlags f = dp.strideReadInto(gather, 8, 0, 8, out);
        benchmark::DoNotOptimize(f.uncorrectable);
        benchmark::DoNotOptimize(out[0]);
        ++n;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(n) * 8);
}

void
BM_CleanStrideRead(benchmark::State &state)
{
    strideReadBench(state, /*fast_path=*/true);
}
BENCHMARK(BM_CleanStrideRead);

void
BM_CleanStrideReadDecodePath(benchmark::State &state)
{
    strideReadBench(state, /*fast_path=*/false);
}
BENCHMARK(BM_CleanStrideReadDecodePath);

/** The encode+store write path (writebacks, strided RMW). */
void
BM_WriteLineEncoded(benchmark::State &state)
{
    DataPath dp(EccScheme::SscDsd);
    const unsigned kLines = 1024;
    std::vector<std::uint8_t> line(kCachelineBytes, 0x5a);
    std::uint64_t n = 0;
    for (auto _ : state) {
        line[0] = static_cast<std::uint8_t>(n);
        dp.writeLine((n % kLines) * kCachelineBytes, line);
        ++n;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_WriteLineEncoded);

/**
 * End-to-end phase-1 + MSHR-bounded replay of one design point,
 * reported in table-A records per second of host wall time (the
 * campaign `throughput` metric).
 */
void
BM_SessionReplay(benchmark::State &state)
{
    SimConfig cfg;
    cfg.taRecords = 2048;
    cfg.tbRecords = 8192;
    cfg.collectStatsText = false;
    const Query q = benchmarkQQueries()[0];
    // One shared table cache across iterations, as in a campaign:
    // tables are encoded once, each iteration simulates a fresh system.
    auto tables = std::make_shared<TableCache>();
    std::uint64_t n = 0;
    for (auto _ : state) {
        Session session(cfg, tables);
        RunStats stats = session.run(DesignKind::SamEn, q);
        benchmark::DoNotOptimize(stats.cycles);
        ++n;
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(n * cfg.taRecords));
}
BENCHMARK(BM_SessionReplay)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
