/**
 * @file
 * Figure 13 reproduction: memory power (mW, split into
 * Background / RD-WR / ACT like the paper's stacked bars) and
 * normalized energy efficiency, for the four query categories:
 * read-type Q (Q1-Q10), write-type Q (Q11-Q12), read-type Qs
 * (Qs1-Qs4), write-type Qs (Qs5-Qs6).
 *
 * Every (design x query) run is independent; the campaign pool
 * executes them in parallel and the category aggregation happens on
 * the collected per-run power breakdowns.
 *
 * Paper reference points: SAM-IO read-Q power ~1.8x baseline but
 * energy efficiency 2.4x; SAM-en power near baseline; NVM designs show
 * low read power (no background) but high write power; on Qs all
 * DRAM-based designs look like the baseline (regular mode).
 */

#include "bench/bench_common.hh"

int
main()
{
    using namespace sam;
    using namespace sam::bench;
    setQuietLogging(true);

    printHeader("Figure 13",
                "Power (mW) and energy efficiency (normalized to "
                "row-store) by query category");

    const SimConfig cfg = benchConfig();
    const auto designs = figureDesigns();

    const auto qq = benchmarkQQueries();
    const auto qs = benchmarkQsQueries();
    struct Category
    {
        std::string name;
        std::vector<Query> queries;
    };
    std::vector<Category> cats(4);
    cats[0].name = "Read (Q1-Q10)";
    cats[1].name = "Write (Q11,Q12)";
    cats[2].name = "Read (Qs1-Qs4)";
    cats[3].name = "Write (Qs5,Qs6)";
    for (std::size_t i = 0; i < qq.size(); ++i)
        cats[i < 10 ? 0 : 1].queries.push_back(qq[i]);
    for (std::size_t i = 0; i < qs.size(); ++i)
        cats[i < 4 ? 2 : 3].queries.push_back(qs[i]);

    BenchCampaign camp;
    for (const Category &cat : cats) {
        for (const Query &q : cat.queries) {
            camp.add(DesignKind::Baseline, cfg, q);
            for (DesignKind d : designs) {
                if (d == DesignKind::Ideal)
                    continue; // the paper's ideal bar is layout only
                camp.add(d, cfg, q);
            }
        }
    }
    camp.run();

    for (const Category &cat : cats) {
        std::cout << "-- " << cat.name << " --\n";
        TablePrinter tp;
        tp.header({"design", "background mW", "RD/WR mW", "ACT mW",
                   "total mW", "energy eff."});

        // Aggregate energy and elapsed time over the category.
        auto aggregate = [&](DesignKind d) {
            PowerBreakdown sum;
            for (const Query &q : cat.queries) {
                const RunStats &r =
                    camp.at(designName(d) + "/" + q.name).stats;
                sum.actEnergyPj += r.power.actEnergyPj;
                sum.rdwrEnergyPj += r.power.rdwrEnergyPj;
                sum.backgroundEnergyPj += r.power.backgroundEnergyPj;
                sum.refreshEnergyPj += r.power.refreshEnergyPj;
                sum.elapsedNs += r.power.elapsedNs;
            }
            return sum;
        };

        const PowerBreakdown base = aggregate(DesignKind::Baseline);
        tp.row({"baseline", fmtNum(base.backgroundPowerMw(), 1),
                fmtNum(base.rdwrPowerMw(), 1),
                fmtNum(base.actPowerMw(), 1),
                fmtNum(base.totalPowerMw(), 1), fmtNum(1.0)});
        for (DesignKind d : designs) {
            if (d == DesignKind::Ideal)
                continue;
            const PowerBreakdown p = aggregate(d);
            const double eff = p.totalEnergyPj() > 0
                ? base.totalEnergyPj() / p.totalEnergyPj()
                : 0.0;
            tp.row({designName(d), fmtNum(p.backgroundPowerMw(), 1),
                    fmtNum(p.rdwrPowerMw(), 1),
                    fmtNum(p.actPowerMw(), 1),
                    fmtNum(p.totalPowerMw(), 1), fmtNum(eff)});
        }
        tp.print(std::cout);
        std::cout << "\n";
    }
    maybeWriteBenchJson("fig13", camp);
    return 0;
}
