/**
 * @file
 * Shared helpers for the figure-reproduction benches: the evaluated
 * design list, benchmark-scale configuration, campaign plumbing, and
 * result printing.
 *
 * Every bench prints the same rows/series as the corresponding paper
 * figure. Set SAM_SCALE=quick|full|paper to pick the benchmark scale:
 * quick for smoke runs (smaller tables; same shapes, less wall time),
 * full for the committed-baseline scale, paper for the paper's 10M
 * records per table (Table 2). SAM_QUICK=1 is a compatibility alias
 * for SAM_SCALE=quick. Set SAM_JOBS=N to
 * fan the independent simulations across N worker threads (0 or unset
 * = one per host core); the printed tables are byte-identical for any
 * jobs count. Set SAM_BENCH_JSON=<dir> to also emit the campaign's
 * machine-readable BENCH_<figure>.json into that directory.
 */

#ifndef SAM_BENCH_BENCH_COMMON_HH
#define SAM_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "src/common/logging.hh"
#include "src/common/table_printer.hh"
#include "src/core/session.hh"
#include "src/imdb/query.hh"
#include "src/runner/campaign.hh"

namespace sam::bench {

/** The designs of Figure 12, in the paper's bar order. */
inline std::vector<DesignKind>
figureDesigns()
{
    return {DesignKind::RcNvmBit, DesignKind::RcNvmWord,
            DesignKind::GsDram,   DesignKind::GsDramEcc,
            DesignKind::SamSub,   DesignKind::SamIo,
            DesignKind::SamEn,    DesignKind::Ideal};
}

/** Benchmark scale: table sizes of the figure campaigns. */
enum class Scale { Quick, Full, Paper };

/**
 * The scale selected by the environment, resolved once: SAM_SCALE
 * wins, SAM_QUICK=1 is a compatibility alias for quick, default is
 * full. An unknown SAM_SCALE value is a usage error (one-line
 * diagnostic, exit 2) rather than a silent full-scale run.
 */
inline Scale
scaleMode()
{
    static const Scale scale = [] {
        const char *s = std::getenv("SAM_SCALE");
        if (s != nullptr && s[0] != '\0') {
            const std::string v(s);
            if (v == "quick")
                return Scale::Quick;
            if (v == "full")
                return Scale::Full;
            if (v == "paper")
                return Scale::Paper;
            std::fprintf(stderr,
                         "SAM_SCALE wants quick, full, or paper; got "
                         "'%s'\n",
                         s);
            std::exit(2);
        }
        const char *q = std::getenv("SAM_QUICK");
        return q != nullptr && q[0] != '0' ? Scale::Quick
                                           : Scale::Full;
    }();
    return scale;
}

inline const char *
scaleName(Scale s)
{
    switch (s) {
      case Scale::Quick: return "quick";
      case Scale::Full:  return "full";
      case Scale::Paper: return "paper";
    }
    panic("unknown Scale");
}

inline const char *
scaleName()
{
    return scaleName(scaleMode());
}

inline bool
quickMode()
{
    return scaleMode() == Scale::Quick;
}

/** SAM_JOBS worker-thread count for the campaigns; 0 = host cores. */
inline unsigned
jobsCount()
{
    static const unsigned jobs = [] {
        const char *j = std::getenv("SAM_JOBS");
        return j != nullptr
            ? static_cast<unsigned>(std::strtoul(j, nullptr, 10))
            : 0u;
    }();
    return jobs;
}

/**
 * Benchmark-scale configuration. Paper scale is Table 2's 10M records
 * per table (Ta 10M x 1KB = 10GB); quick and full scale down (full:
 * Ta 16K x 1KB = 16MB, Tb 64K x 128B = 8MB) -- selectivity,
 * projectivity, and layout alignment are preserved, so relative shapes
 * hold (see DESIGN.md, Substitutions).
 */
inline SimConfig
benchConfig()
{
    SimConfig cfg;
    switch (scaleMode()) {
      case Scale::Quick:
        cfg.taRecords = 4096;
        cfg.tbRecords = 8192;
        break;
      case Scale::Full:
        cfg.taRecords = 16384;
        cfg.tbRecords = 65536;
        break;
      case Scale::Paper:
        cfg.taRecords = 10'000'000;
        cfg.tbRecords = 10'000'000;
        break;
    }
    return cfg;
}

inline void
printHeader(const std::string &title, const std::string &what)
{
    std::cout << "\n==== " << title << " ====\n" << what << "\n";
    if (quickMode())
        std::cout << "(SAM_QUICK reduced scale)\n";
    else if (scaleMode() == Scale::Paper)
        std::cout << "(paper scale: 10M records per table)\n";
    std::cout << "\n";
}

/**
 * A figure bench's campaign: collect RunSpecs (deduplicated by id),
 * fan them across a SAM_JOBS-wide pool, then look results up by id
 * while printing the paper tables.
 */
class BenchCampaign
{
  public:
    BenchCampaign() : runner_(jobsCount()) {}

    /** Queue a run; duplicate ids collapse to the first spec. */
    void
    add(std::string id, const SimConfig &config, const Query &query,
        bool verify = false)
    {
        if (index_.count(id))
            return;
        index_.emplace(id, specs_.size());
        specs_.push_back(RunSpec{std::move(id), config, query, verify});
    }

    /** Convenience: id is "<design name>/<query name>". */
    void
    add(DesignKind design, const SimConfig &base, const Query &query,
        bool verify = false)
    {
        SimConfig cfg = base;
        cfg.design = design;
        add(designName(design) + "/" + query.name, cfg, query, verify);
    }

    /** Run everything queued; callable once. */
    void
    run()
    {
        sam_assert(results_.empty(), "campaign already ran");
        results_ = runner_.run(specs_);
    }

    const RunResult &
    at(const std::string &id) const
    {
        auto it = index_.find(id);
        sam_assert(it != index_.end(), "no campaign run '", id, "'");
        return results_.at(it->second);
    }

    Cycle
    cycles(const std::string &id) const
    {
        const Cycle c = at(id).stats.cycles;
        sam_assert(c > 0, "run '", id, "' produced no work");
        return c;
    }

    /** Figure 12 metric: baseline cycles over design cycles. */
    double
    speedup(const std::string &design_id,
            const std::string &baseline_id) const
    {
        return static_cast<double>(cycles(baseline_id)) /
               static_cast<double>(cycles(design_id));
    }

    unsigned jobs() const { return runner_.jobs(); }
    const std::vector<RunResult> &results() const { return results_; }

  private:
    CampaignRunner runner_;
    std::vector<RunSpec> specs_;
    std::vector<RunResult> results_;
    std::map<std::string, std::size_t> index_;
};

/**
 * When SAM_BENCH_JSON names a directory, dump the campaign's raw runs
 * to <dir>/BENCH_<figure>.json for tools/bench_diff.py.
 */
inline void
maybeWriteBenchJson(const std::string &figure, const BenchCampaign &camp)
{
    const char *dir = std::getenv("SAM_BENCH_JSON");
    if (dir == nullptr || dir[0] == '\0')
        return;
    Json doc = campaignJson(figure, camp.jobs(), camp.results());
    doc.set("scale", scaleName());
    const std::string path =
        std::string(dir) + "/BENCH_" + figure + ".json";
    writeJsonFile(path, doc);
    std::cout << "wrote " << path << "\n";
}

} // namespace sam::bench

#endif // SAM_BENCH_BENCH_COMMON_HH
