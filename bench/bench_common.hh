/**
 * @file
 * Shared helpers for the figure-reproduction benches: the evaluated
 * design list, benchmark-scale configuration, and result printing.
 *
 * Every bench prints the same rows/series as the corresponding paper
 * figure. Set SAM_QUICK=1 in the environment for a reduced-scale run
 * (smaller tables; same shapes, less wall time).
 */

#ifndef SAM_BENCH_BENCH_COMMON_HH
#define SAM_BENCH_BENCH_COMMON_HH

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "src/common/logging.hh"
#include "src/common/table_printer.hh"
#include "src/core/session.hh"
#include "src/imdb/query.hh"

namespace sam::bench {

/** The designs of Figure 12, in the paper's bar order. */
inline std::vector<DesignKind>
figureDesigns()
{
    return {DesignKind::RcNvmBit, DesignKind::RcNvmWord,
            DesignKind::GsDram,   DesignKind::GsDramEcc,
            DesignKind::SamSub,   DesignKind::SamIo,
            DesignKind::SamEn,    DesignKind::Ideal};
}

inline bool
quickMode()
{
    const char *q = std::getenv("SAM_QUICK");
    return q != nullptr && q[0] != '0';
}

/**
 * Benchmark-scale configuration. The paper loads 10M records per
 * table; we scale down (Ta 16K x 1KB = 16MB, Tb 64K x 128B = 8MB) --
 * selectivity, projectivity, and layout alignment are preserved, so
 * relative shapes hold (see DESIGN.md, Substitutions).
 */
inline SimConfig
benchConfig()
{
    SimConfig cfg;
    if (quickMode()) {
        cfg.taRecords = 4096;
        cfg.tbRecords = 8192;
    } else {
        cfg.taRecords = 16384;
        cfg.tbRecords = 65536;
    }
    return cfg;
}

inline void
printHeader(const std::string &title, const std::string &what)
{
    std::cout << "\n==== " << title << " ====\n" << what << "\n";
    if (quickMode())
        std::cout << "(SAM_QUICK reduced scale)\n";
    std::cout << "\n";
}

} // namespace sam::bench

#endif // SAM_BENCH_BENCH_COMMON_HH
