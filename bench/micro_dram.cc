/**
 * @file
 * google-benchmark microbenchmarks for the memory substrate: device
 * access scheduling throughput (row hits, conflicts, stride mode),
 * controller scheduling, and the functional stride gather path.
 */

#include <benchmark/benchmark.h>

#include "src/common/random.hh"
#include "src/controller/controller.hh"
#include "src/dram/data_path.hh"
#include "src/dram/device.hh"
#include "src/dram/io_buffer.hh"

namespace {

using namespace sam;

void
BM_DeviceRowHits(benchmark::State &state)
{
    Geometry geom;
    Device dev(geom, ddr4Timing());
    DeviceAccess acc;
    acc.addr.row = 7;
    Cycle t = 0;
    unsigned col = 0;
    for (auto _ : state) {
        acc.addr.column = col++ % geom.linesPerRow();
        const auto r = dev.access(acc, t);
        t = r.issue;
        benchmark::DoNotOptimize(r.done);
    }
}
BENCHMARK(BM_DeviceRowHits);

void
BM_DeviceRowConflicts(benchmark::State &state)
{
    Geometry geom;
    Device dev(geom, ddr4Timing());
    DeviceAccess acc;
    Cycle t = 0;
    std::uint64_t row = 0;
    for (auto _ : state) {
        acc.addr.row = row++ % geom.rowsPerBank;
        const auto r = dev.access(acc, t);
        t = r.issue;
        benchmark::DoNotOptimize(r.done);
    }
}
BENCHMARK(BM_DeviceRowConflicts);

void
BM_DeviceBankInterleaved(benchmark::State &state)
{
    Geometry geom;
    Device dev(geom, ddr4Timing());
    DeviceAccess acc;
    Rng rng(1);
    Cycle t = 0;
    for (auto _ : state) {
        acc.addr.bank = static_cast<unsigned>(rng.below(4));
        acc.addr.bankGroup = static_cast<unsigned>(rng.below(4));
        acc.addr.rank = static_cast<unsigned>(rng.below(2));
        acc.addr.row = rng.below(1024);
        const auto r = dev.access(acc, t);
        t = r.issue;
        benchmark::DoNotOptimize(r.done);
    }
}
BENCHMARK(BM_DeviceBankInterleaved);

void
BM_ControllerSequentialReads(benchmark::State &state)
{
    Geometry geom;
    Device dev(geom, ddr4Timing());
    DataPath dp(EccScheme::SscDsd);
    AddressMapping map(geom);
    MemoryController ctrl(dev, dp, map, {}, false);
    Addr addr = Addr{1} << 30;
    std::uint64_t id = 1;
    for (auto _ : state) {
        MemRequest r;
        r.type = AccessType::Read;
        r.addr = addr;
        r.id = id++;
        r.setLine(addr);
        r.device.addr = map.decompose(addr);
        ctrl.push(std::move(r));
        benchmark::DoNotOptimize(ctrl.serviceNext());
        addr += kCachelineBytes;
    }
}
BENCHMARK(BM_ControllerSequentialReads);

void
BM_DataPathStrideRead(benchmark::State &state)
{
    DataPath dp(EccScheme::SscDsd);
    Rng rng(2);
    std::vector<std::uint8_t> line(kCachelineBytes);
    std::vector<Addr> addrs;
    for (unsigned i = 0; i < 8; ++i) {
        for (auto &b : line)
            b = static_cast<std::uint8_t>(rng.below(256));
        dp.writeLine(i * 64ull, line);
        addrs.push_back(i * 64ull);
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(dp.strideRead(addrs, 3, 8));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            kCachelineBytes);
}
BENCHMARK(BM_DataPathStrideRead);

void
BM_StrideGatherOnly(benchmark::State &state)
{
    Rng rng(3);
    std::vector<std::vector<std::uint8_t>> lines(8);
    for (auto &l : lines) {
        l.resize(kCachelineBytes);
        for (auto &b : l)
            b = static_cast<std::uint8_t>(rng.below(256));
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(StrideGather::gather(lines, 5, 8));
    }
}
BENCHMARK(BM_StrideGatherOnly);

} // namespace

BENCHMARK_MAIN();
