/**
 * @file
 * Figure 14(c) reproduction: area / storage overhead of every design,
 * with the Section 6.1 component-level accounting itemised.
 *
 * Paper reference totals: SAM-sub ~7.2%, SAM-IO <0.01%, SAM-en ~0.7%,
 * RC-NVM-bit ~15% (+2 metal layers), RC-NVM-wd ~33% (+2 layers),
 * GS-DRAM-ecc 12.5% storage.
 */

#include "bench/bench_common.hh"
#include "src/area/area_model.hh"

int
main()
{
    using namespace sam;
    using namespace sam::bench;
    setQuietLogging(true);

    printHeader("Figure 14(c)",
                "Area and storage overhead per design (analytical "
                "model, Section 6.1 accounting)");

    TablePrinter tp;
    tp.header({"design", "area overhead", "storage overhead",
               "extra metal layers"});
    for (DesignKind d : figureDesigns()) {
        if (d == DesignKind::Ideal)
            continue;
        const AreaReport r = AreaModel::report(d);
        tp.row({designName(d), fmtPercent(r.areaOverhead(), 2),
                fmtPercent(r.storageOverhead, 1),
                std::to_string(r.extraMetalLayers)});
    }
    tp.print(std::cout);

    std::cout << "\nComponent breakdown (Section 6.1):\n";
    for (DesignKind d :
         {DesignKind::SamSub, DesignKind::SamIo, DesignKind::SamEn,
          DesignKind::RcNvmWord}) {
        const AreaReport r = AreaModel::report(d);
        std::cout << "  " << designName(d) << ":\n";
        for (const AreaComponent &c : r.areaComponents) {
            std::cout << "    " << fmtPercent(c.fraction, 2) << "  "
                      << c.name << "\n";
        }
    }
    return 0;
}
