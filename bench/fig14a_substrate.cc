/**
 * @file
 * Figure 14(a) reproduction: performance of the RC-NVM and SAM designs
 * when both are built on the NVM (RRAM) substrate vs the DRAM
 * substrate; gmean speedup over all queries (Q and Qs).
 *
 * The (design x substrate x query) grid plus the DRAM baseline runs
 * fan out across the SAM_JOBS campaign pool.
 *
 * Paper reference: RC-NVM-wd and SAM-sub are nearly equal on the same
 * substrate; RC-NVM always falls behind SAM-IO / SAM-en regardless of
 * substrate; DRAM beats RRAM for every design (writes especially).
 */

#include "bench/bench_common.hh"

int
main()
{
    using namespace sam;
    using namespace sam::bench;
    setQuietLogging(true);

    printHeader("Figure 14(a)",
                "Gmean speedup of RC-NVM / SAM designs on NVM vs DRAM "
                "substrates (all queries, normalized to row-store "
                "DRAM)");

    const SimConfig base_cfg = benchConfig();

    auto all_queries = benchmarkQQueries();
    const auto qs = benchmarkQsQueries();
    all_queries.insert(all_queries.end(), qs.begin(), qs.end());

    const std::vector<DesignKind> designs = {
        DesignKind::RcNvmWord, DesignKind::SamSub, DesignKind::SamIo,
        DesignKind::SamEn};
    const std::vector<MemTech> techs = {MemTech::RRAM, MemTech::DRAM};

    BenchCampaign camp;
    for (const Query &q : all_queries) {
        // Baseline: commodity DRAM row-store (no substrate override).
        camp.add(DesignKind::Baseline, base_cfg, q);
        for (DesignKind d : designs) {
            for (MemTech tech : techs) {
                SimConfig cfg = base_cfg;
                cfg.design = d;
                cfg.overrideTech = true;
                cfg.tech = tech;
                camp.add(designName(d) + "/" + memTechName(tech) + "/" +
                             q.name,
                         cfg, q);
            }
        }
    }
    camp.run();

    TablePrinter tp;
    tp.header({"design", "NVM substrate", "DRAM substrate"});
    for (DesignKind d : designs) {
        std::vector<std::string> row{designName(d)};
        for (MemTech tech : techs) {
            std::vector<double> sp;
            for (const Query &q : all_queries) {
                sp.push_back(camp.speedup(
                    designName(d) + "/" + memTechName(tech) + "/" +
                        q.name,
                    "baseline/" + q.name));
            }
            row.push_back(fmtNum(geometricMean(sp)));
        }
        tp.row(row);
    }
    tp.print(std::cout);
    maybeWriteBenchJson("fig14a", camp);
    return 0;
}
