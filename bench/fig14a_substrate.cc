/**
 * @file
 * Figure 14(a) reproduction: performance of the RC-NVM and SAM designs
 * when both are built on the NVM (RRAM) substrate vs the DRAM
 * substrate; gmean speedup over all queries (Q and Qs).
 *
 * Paper reference: RC-NVM-wd and SAM-sub are nearly equal on the same
 * substrate; RC-NVM always falls behind SAM-IO / SAM-en regardless of
 * substrate; DRAM beats RRAM for every design (writes especially).
 */

#include "bench/bench_common.hh"
#include "src/sim/system.hh"

int
main()
{
    using namespace sam;
    using namespace sam::bench;
    setQuietLogging(true);

    printHeader("Figure 14(a)",
                "Gmean speedup of RC-NVM / SAM designs on NVM vs DRAM "
                "substrates (all queries, normalized to row-store "
                "DRAM)");

    const SimConfig base_cfg = benchConfig();

    auto all_queries = benchmarkQQueries();
    const auto qs = benchmarkQsQueries();
    all_queries.insert(all_queries.end(), qs.begin(), qs.end());

    // Baseline: commodity DRAM row-store.
    SimConfig bcfg = base_cfg;
    bcfg.design = DesignKind::Baseline;
    System baseline(bcfg);
    std::map<std::string, Cycle> base_cycles;
    for (const Query &q : all_queries)
        base_cycles[q.name] = baseline.runQuery(q).cycles;

    const std::vector<DesignKind> designs = {
        DesignKind::RcNvmWord, DesignKind::SamSub, DesignKind::SamIo,
        DesignKind::SamEn};

    TablePrinter tp;
    tp.header({"design", "NVM substrate", "DRAM substrate"});
    for (DesignKind d : designs) {
        std::vector<std::string> row{designName(d)};
        for (MemTech tech : {MemTech::RRAM, MemTech::DRAM}) {
            SimConfig cfg = base_cfg;
            cfg.design = d;
            cfg.overrideTech = true;
            cfg.tech = tech;
            System sys(cfg);
            std::vector<double> sp;
            for (const Query &q : all_queries) {
                const RunStats r = sys.runQuery(q);
                sp.push_back(static_cast<double>(base_cycles[q.name]) /
                             static_cast<double>(r.cycles));
            }
            row.push_back(fmtNum(geometricMean(sp)));
        }
        tp.row(row);
    }
    tp.print(std::cout);
    return 0;
}
