/**
 * @file
 * Reliability characterization campaign (the paper's central claim is
 * chipkill compatibility, Sections 2.3 / 4.1): Monte-Carlo error
 * injection against every ECC scheme, reporting correction, detection,
 * and silent-corruption rates for
 *
 *   - random single-bit upsets,
 *   - multi-bit upsets within one chip (partial chip faults),
 *   - whole-chip failures (the chipkill scenario),
 *   - double-chip failures.
 *
 * Expected: SEC-DED corrects single bits but fails (often *silently*,
 * thanks to the aligned-nibble syndrome aliasing of x4 chips) on chip
 * faults; SSC/SSC-DSD correct any single chip; SSC-DSD detects double
 * chips; Bamboo-72 corrects a chip with margin.
 */

#include "bench/bench_common.hh"
#include "src/common/random.hh"
#include "src/ecc/ecc_engine.hh"
#include "src/common/thread_pool.hh"

using namespace sam;
using namespace sam::bench;

namespace {

struct Rates
{
    unsigned corrected = 0;
    unsigned detected = 0;
    unsigned silent = 0;
    unsigned clean = 0;
};

std::vector<std::uint8_t>
randomLine(Rng &rng)
{
    std::vector<std::uint8_t> line(kCachelineBytes);
    for (auto &b : line)
        b = static_cast<std::uint8_t>(rng.below(256));
    return line;
}

/** One injected trial; classifies the decode outcome. */
void
classify(const EccEngine &engine, const std::vector<std::uint8_t> &line,
         std::vector<std::uint8_t> blob, Rates &rates)
{
    const EccLineResult r = engine.decodeLine(blob);
    blob.resize(kCachelineBytes);
    const bool data_ok = blob == line;
    if (r.uncorrectable) {
        ++rates.detected;
    } else if (data_ok) {
        if (r.corrected)
            ++rates.corrected;
        else
            ++rates.clean;
    } else {
        ++rates.silent;
    }
}

std::string
rateCell(unsigned n, unsigned trials)
{
    return fmtPercent(static_cast<double>(n) / trials, 1);
}

} // namespace

int
main()
{
    setQuietLogging(true);
    printHeader("Reliability campaign",
                "Monte-Carlo error injection per ECC scheme "
                "(correction / detection / SILENT rates)");

    const unsigned trials = quickMode() ? 200 : 2000;
    const std::vector<EccScheme> schemes = {
        EccScheme::SecDed, EccScheme::Ssc, EccScheme::SscDsd,
        EccScheme::Ssc32, EccScheme::Bamboo72};

    struct Scenario
    {
        std::string name;
        // Returns the corrupted blob for one trial.
        std::function<std::vector<std::uint8_t>(
            const EccEngine &, const std::vector<std::uint8_t> &,
            Rng &)>
            inject;
    };
    const std::vector<Scenario> scenarios = {
        {"1-bit upset",
         [](const EccEngine &e, const std::vector<std::uint8_t> &line,
            Rng &rng) {
             auto blob = e.encodeLine(line);
             EccEngine::flipBit(blob, rng.below(blob.size() * 8));
             return blob;
         }},
        {"3 bits in one chip",
         [](const EccEngine &e, const std::vector<std::uint8_t> &line,
            Rng &rng) {
             auto blob = e.encodeLine(line);
             e.corruptChipBits(blob,
                               static_cast<unsigned>(
                                   rng.below(e.numChips())),
                               3, rng);
             return blob;
         }},
        {"whole-chip failure",
         [](const EccEngine &e, const std::vector<std::uint8_t> &line,
            Rng &rng) {
             auto blob = e.encodeLine(line);
             e.corruptChip(blob, static_cast<unsigned>(
                                     rng.below(e.numChips())));
             return blob;
         }},
        {"two chips fail",
         [](const EccEngine &e, const std::vector<std::uint8_t> &line,
            Rng &rng) {
             auto blob = e.encodeLine(line);
             const unsigned c1 =
                 static_cast<unsigned>(rng.below(e.numChips()));
             unsigned c2;
             do {
                 c2 = static_cast<unsigned>(rng.below(e.numChips()));
             } while (c2 == c1);
             e.corruptChip(blob, c1);
             e.corruptChip(blob, c2);
             return blob;
         }},
    };

    // Every (scenario, scheme) cell has its own deterministically
    // seeded RNG, so the cells are independent: fan them across the
    // SAM_JOBS pool and print from the collected rates.
    std::vector<std::vector<Rates>> rates(
        scenarios.size(), std::vector<Rates>(schemes.size()));
    {
        ThreadPool pool(jobsCount());
        std::vector<std::function<void()>> tasks;
        for (std::size_t s = 0; s < scenarios.size(); ++s) {
            for (std::size_t e = 0; e < schemes.size(); ++e) {
                tasks.push_back([&, s, e] {
                    const Scenario &sc = scenarios[s];
                    const EccScheme scheme = schemes[e];
                    const EccEngine engine(scheme);
                    Rng rng(0xC0FFEE ^
                            static_cast<std::uint64_t>(scheme));
                    Rates cell;
                    for (unsigned t = 0; t < trials; ++t) {
                        const auto line = randomLine(rng);
                        classify(engine, line,
                                 sc.inject(engine, line, rng), cell);
                    }
                    rates[s][e] = cell;
                });
            }
        }
        pool.run(std::move(tasks));
    }

    for (std::size_t s = 0; s < scenarios.size(); ++s) {
        std::cout << "-- " << scenarios[s].name << " (" << trials
                  << " trials) --\n";
        TablePrinter tp;
        tp.header({"scheme", "corrected", "detected", "SILENT",
                   "survives"});
        for (std::size_t e = 0; e < schemes.size(); ++e) {
            const Rates &cell = rates[s][e];
            tp.row({eccSchemeName(schemes[e]),
                    rateCell(cell.corrected + cell.clean, trials),
                    rateCell(cell.detected, trials),
                    rateCell(cell.silent, trials),
                    rateCell(cell.corrected + cell.clean, trials)});
        }
        tp.print(std::cout);
        std::cout << "\n";
    }

    std::cout << "SILENT rows are undetected wrong data -- the failure "
                 "mode chipkill exists to prevent.\n";
    return 0;
}
