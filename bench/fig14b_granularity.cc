/**
 * @file
 * Figure 14(b) reproduction: gmean speedup of RC-NVM-wd, GS-DRAM-ecc,
 * and SAM-en on the Q queries under different strided granularities:
 * 16-bit (SSC-32, 32B chunks, G=2), 8-bit (SSC, 16B chunks, G=4), and
 * 4-bit (SSC-DSD, 8B chunks, G=8, the default).
 *
 * Paper reference: finer granularity improves bandwidth utilization
 * and speedup for every design; SAM-en leads at every granularity.
 */

#include "bench/bench_common.hh"
#include "src/sim/system.hh"

int
main()
{
    using namespace sam;
    using namespace sam::bench;
    setQuietLogging(true);

    printHeader("Figure 14(b)",
                "Gmean speedup on Q queries vs strided granularity "
                "(chipkill symbol size)");

    const SimConfig base_cfg = benchConfig();
    const auto queries = benchmarkQQueries();
    const std::vector<DesignKind> designs = {
        DesignKind::RcNvmWord, DesignKind::GsDramEcc, DesignKind::SamEn};

    TablePrinter tp;
    tp.header({"granularity", "chunk", "G", "RC-NVM-wd", "GS-DRAM-ecc",
               "SAM-en"});
    for (EccScheme ecc :
         {EccScheme::Ssc32, EccScheme::Ssc, EccScheme::SscDsd}) {
        SimConfig bcfg = base_cfg;
        bcfg.ecc = ecc;
        bcfg.design = DesignKind::Baseline;
        System baseline(bcfg);
        std::map<std::string, Cycle> base_cycles;
        for (const Query &q : queries)
            base_cycles[q.name] = baseline.runQuery(q).cycles;

        std::vector<std::string> row{
            std::to_string(strideGranularityBits(ecc)) + "-bit (" +
                eccSchemeName(ecc) + ")",
            std::to_string(strideUnitBytes(ecc)) + "B",
            std::to_string(gatherFactor(ecc))};
        for (DesignKind d : designs) {
            SimConfig cfg = base_cfg;
            cfg.ecc = ecc;
            cfg.design = d;
            System sys(cfg);
            std::vector<double> sp;
            for (const Query &q : queries) {
                const RunStats r = sys.runQuery(q);
                sp.push_back(static_cast<double>(base_cycles[q.name]) /
                             static_cast<double>(r.cycles));
            }
            row.push_back(fmtNum(geometricMean(sp)));
        }
        tp.row(row);
    }
    tp.print(std::cout);
    return 0;
}
