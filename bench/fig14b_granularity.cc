/**
 * @file
 * Figure 14(b) reproduction: gmean speedup of RC-NVM-wd, GS-DRAM-ecc,
 * and SAM-en on the Q queries under different strided granularities:
 * 16-bit (SSC-32, 32B chunks, G=2), 8-bit (SSC, 16B chunks, G=4), and
 * 4-bit (SSC-DSD, 8B chunks, G=8, the default).
 *
 * Each (scheme x design x query) run -- including the per-scheme
 * baselines -- is independent and fans out across the campaign pool.
 *
 * Paper reference: finer granularity improves bandwidth utilization
 * and speedup for every design; SAM-en leads at every granularity.
 */

#include "bench/bench_common.hh"

int
main()
{
    using namespace sam;
    using namespace sam::bench;
    setQuietLogging(true);

    printHeader("Figure 14(b)",
                "Gmean speedup on Q queries vs strided granularity "
                "(chipkill symbol size)");

    const SimConfig base_cfg = benchConfig();
    const auto queries = benchmarkQQueries();
    const std::vector<DesignKind> designs = {
        DesignKind::RcNvmWord, DesignKind::GsDramEcc, DesignKind::SamEn};
    const std::vector<EccScheme> schemes = {
        EccScheme::Ssc32, EccScheme::Ssc, EccScheme::SscDsd};

    auto run_id = [](EccScheme ecc, const std::string &design,
                     const Query &q) {
        return eccSchemeName(ecc) + "/" + design + "/" + q.name;
    };

    BenchCampaign camp;
    for (EccScheme ecc : schemes) {
        for (const Query &q : queries) {
            SimConfig bcfg = base_cfg;
            bcfg.ecc = ecc;
            bcfg.design = DesignKind::Baseline;
            camp.add(run_id(ecc, "baseline", q), bcfg, q);
            for (DesignKind d : designs) {
                SimConfig cfg = base_cfg;
                cfg.ecc = ecc;
                cfg.design = d;
                camp.add(run_id(ecc, designName(d), q), cfg, q);
            }
        }
    }
    camp.run();

    TablePrinter tp;
    tp.header({"granularity", "chunk", "G", "RC-NVM-wd", "GS-DRAM-ecc",
               "SAM-en"});
    for (EccScheme ecc : schemes) {
        std::vector<std::string> row{
            std::to_string(strideGranularityBits(ecc)) + "-bit (" +
                eccSchemeName(ecc) + ")",
            std::to_string(strideUnitBytes(ecc)) + "B",
            std::to_string(gatherFactor(ecc))};
        for (DesignKind d : designs) {
            std::vector<double> sp;
            for (const Query &q : queries) {
                sp.push_back(camp.speedup(run_id(ecc, designName(d), q),
                                          run_id(ecc, "baseline", q)));
            }
            row.push_back(fmtNum(geometricMean(sp)));
        }
        tp.row(row);
    }
    tp.print(std::cout);
    maybeWriteBenchJson("fig14b", camp);
    return 0;
}
