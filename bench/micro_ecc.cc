/**
 * @file
 * google-benchmark microbenchmarks for the ECC stack: Reed-Solomon
 * encode/decode throughput per chipkill geometry, SEC-DED, and the
 * rank-level ECC engine on clean and chip-failed lines.
 */

#include <benchmark/benchmark.h>

#include "src/common/random.hh"
#include "src/ecc/ecc_engine.hh"
#include "src/ecc/reed_solomon.hh"
#include "src/ecc/secded.hh"

namespace {

using namespace sam;

void
BM_RsEncode(benchmark::State &state)
{
    const unsigned n = static_cast<unsigned>(state.range(0));
    const unsigned k = static_cast<unsigned>(state.range(1));
    const ReedSolomon rs(n, k);
    Rng rng(1);
    std::vector<std::uint8_t> data(k);
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.below(256));
    for (auto _ : state) {
        auto cw = rs.encode(data);
        benchmark::DoNotOptimize(cw);
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            k);
}
BENCHMARK(BM_RsEncode)->Args({18, 16})->Args({36, 32})->Args({72, 64});

void
BM_RsDecodeClean(benchmark::State &state)
{
    const ReedSolomon rs(static_cast<unsigned>(state.range(0)),
                         static_cast<unsigned>(state.range(1)));
    Rng rng(2);
    std::vector<std::uint8_t> data(rs.k());
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.below(256));
    const auto cw = rs.encode(data);
    for (auto _ : state) {
        auto c = cw;
        benchmark::DoNotOptimize(rs.decode(c));
    }
}
BENCHMARK(BM_RsDecodeClean)->Args({18, 16})->Args({36, 32});

void
BM_RsDecodeCorrect(benchmark::State &state)
{
    const ReedSolomon rs(static_cast<unsigned>(state.range(0)),
                         static_cast<unsigned>(state.range(1)));
    Rng rng(3);
    std::vector<std::uint8_t> data(rs.k());
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.below(256));
    auto cw = rs.encode(data);
    cw[5] ^= 0x5a; // one symbol error
    for (auto _ : state) {
        auto c = cw;
        benchmark::DoNotOptimize(rs.decode(c));
    }
}
BENCHMARK(BM_RsDecodeCorrect)->Args({18, 16})->Args({36, 32});

void
BM_SecDedEncode(benchmark::State &state)
{
    std::uint64_t data = 0x123456789abcdef0ULL;
    for (auto _ : state) {
        benchmark::DoNotOptimize(SecDed::encode(data));
        data = data * 6364136223846793005ULL + 1;
    }
}
BENCHMARK(BM_SecDedEncode);

void
BM_EccEngineLine(benchmark::State &state)
{
    const auto scheme = static_cast<EccScheme>(state.range(0));
    const EccEngine engine(scheme);
    Rng rng(4);
    std::vector<std::uint8_t> line(kCachelineBytes);
    for (auto &b : line)
        b = static_cast<std::uint8_t>(rng.below(256));
    const auto blob = engine.encodeLine(line);
    for (auto _ : state) {
        auto b = blob;
        benchmark::DoNotOptimize(engine.decodeLine(b));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            kCachelineBytes);
}
BENCHMARK(BM_EccEngineLine)
    ->Arg(static_cast<int>(EccScheme::SecDed))
    ->Arg(static_cast<int>(EccScheme::Ssc))
    ->Arg(static_cast<int>(EccScheme::SscDsd));

void
BM_EccEngineChipkillCorrection(benchmark::State &state)
{
    const EccEngine engine(EccScheme::SscDsd);
    Rng rng(5);
    std::vector<std::uint8_t> line(kCachelineBytes);
    for (auto &b : line)
        b = static_cast<std::uint8_t>(rng.below(256));
    auto blob = engine.encodeLine(line);
    engine.corruptChip(blob, 7);
    for (auto _ : state) {
        auto b = blob;
        benchmark::DoNotOptimize(engine.decodeLine(b));
    }
}
BENCHMARK(BM_EccEngineChipkillCorrection);

} // namespace

BENCHMARK_MAIN();
