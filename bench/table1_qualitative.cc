/**
 * @file
 * Table 1 reproduction: the qualitative comparison of designs for
 * strided access across system support, interface, and memory-device
 * dimensions, generated from the DesignSpec traits.
 */

#include "bench/bench_common.hh"
#include "src/designs/design.hh"

namespace {

std::string
mark(bool good)
{
    return good ? "yes" : "no";
}

std::string
rate(int r)
{
    return r > 0 ? "good" : (r == 0 ? "fair" : "poor");
}

} // namespace

int
main()
{
    using namespace sam;
    using namespace sam::bench;
    setQuietLogging(true);

    printHeader("Table 1",
                "Qualitative comparison of designs for strided access "
                "(from DesignSpec traits)");

    const std::vector<DesignKind> designs = {
        DesignKind::RcNvmBit, DesignKind::RcNvmWord, DesignKind::GsDram,
        DesignKind::SamSub,   DesignKind::SamIo,     DesignKind::SamEn};

    TablePrinter tp;
    std::vector<std::string> head{"dimension"};
    for (DesignKind d : designs)
        head.push_back(designName(d));
    tp.header(head);

    auto row = [&](const std::string &name, auto &&get) {
        std::vector<std::string> cells{name};
        for (DesignKind d : designs)
            cells.push_back(get(makeDesign(d)));
        tp.row(cells);
    };

    row("database alignment", [](const DesignSpec &s) {
        return mark(s.traits.needsDbAlignment);
    });
    row("ISA extension", [](const DesignSpec &s) {
        return mark(s.traits.needsIsaExtension);
    });
    row("sector/MDA cache", [](const DesignSpec &s) {
        return mark(s.traits.needsSectorCache);
    });
    tp.separator();
    row("memory controller mods", [](const DesignSpec &s) {
        return mark(s.traits.modifiesMemController);
    });
    row("command interface mods", [](const DesignSpec &s) {
        return mark(s.traits.modifiesCommandInterface);
    });
    row("critical-word-first", [](const DesignSpec &s) {
        return mark(s.traits.criticalWordFirst);
    });
    tp.separator();
    row("performance", [](const DesignSpec &s) {
        return rate(s.traits.performance);
    });
    row("power", [](const DesignSpec &s) {
        return rate(s.traits.powerRating);
    });
    row("area", [](const DesignSpec &s) {
        return rate(s.traits.areaRating);
    });
    row("chipkill reliability", [](const DesignSpec &s) {
        return mark(s.traits.reliable);
    });
    row("mode switch cost", [](const DesignSpec &s) {
        return rate(s.traits.modeSwitchRating);
    });
    tp.print(std::cout);
    return 0;
}
