/**
 * @file
 * Figure 15 reproduction: speedup (normalized to row-store) of
 * RC-NVM-wd, GS-DRAM-ecc, SAM-en, and the ideal store on the
 * parameterized arithmetic and aggregate queries:
 *
 *   (a)-(c) arithmetic query, selectivity sweep at 8 / 64 / all
 *           projected fields;
 *   (d)-(f) arithmetic query, projectivity sweep at 10% / 50% / 100%
 *           selectivity;
 *   (g)     aggregate query, selectivity sweep at 8 projected fields;
 *   (h)     aggregate query, projectivity sweep at 100% selectivity;
 *   (i)     record-size sweep at 100% selectivity and projectivity.
 *
 * Every sweep point is an independent simulation; the whole grid
 * (deduplicated across overlapping panels) fans out across the
 * SAM_JOBS campaign pool before the panels are printed.
 *
 * Paper reference shapes: speedup rises with selectivity and falls
 * with projectivity (the row store catches up); the aggregate query
 * lifts RC-NVM-wd to SAM-en's level (field-major processing removes
 * its field-switch penalty); in (i) only RC-NVM-wd degrades as records
 * grow (its vertical alignment thrashes rows on full scans).
 */

#include "bench/bench_common.hh"

using namespace sam;
using namespace sam::bench;

namespace {

const std::vector<DesignKind> kPanelDesigns = {
    DesignKind::RcNvmWord, DesignKind::GsDramEcc, DesignKind::SamEn,
    DesignKind::Ideal};

SimConfig
sweepConfig()
{
    SimConfig cfg = benchConfig();
    cfg.taRecords = quickMode() ? 2048 : 8192;
    cfg.tbRecords = 2048; // unused by the Ta-only sweeps
    return cfg;
}

/** Stable id of one sweep point, e.g. "arith/p8/s40". */
std::string
pointId(const char *kind, unsigned proj, double sel)
{
    return std::string(kind) + "/p" + std::to_string(proj) + "/s" +
           std::to_string(static_cast<unsigned>(sel * 100 + 0.5));
}

/** Queue one sweep point (all panel designs plus the baseline). */
void
addPoint(BenchCampaign &camp, const SimConfig &cfg,
         const std::string &point, const Query &q)
{
    camp.add(point + "/baseline", [&] {
        SimConfig c = cfg;
        c.design = DesignKind::Baseline;
        return c;
    }(), q);
    for (DesignKind d : kPanelDesigns) {
        SimConfig c = cfg;
        c.design = d;
        camp.add(point + "/" + designName(d), c, q, /*verify=*/true);
    }
}

/** Print one panel row from the campaign results. */
void
panelRow(const BenchCampaign &camp, const std::string &point,
         TablePrinter &tp, const std::string &x_label)
{
    std::vector<std::string> row{x_label};
    for (DesignKind d : kPanelDesigns) {
        row.push_back(fmtNum(camp.speedup(point + "/" + designName(d),
                                          point + "/baseline")));
    }
    tp.row(row);
}

std::vector<std::string>
panelHeader(const std::string &x_name)
{
    std::vector<std::string> head{x_name};
    for (DesignKind d : kPanelDesigns)
        head.push_back(designName(d));
    return head;
}

} // namespace

int
main()
{
    setQuietLogging(true);
    printHeader("Figure 15",
                "Speedup sweeps of the arithmetic / aggregate queries "
                "over selectivity, projectivity, and record size");

    const SimConfig cfg = sweepConfig();
    const unsigned nf = cfg.taFields;
    const std::vector<double> sels = {0.1, 0.2, 0.3, 0.4, 0.5,
                                      0.6, 0.7, 0.8, 0.9, 1.0};
    const std::vector<unsigned> projs = {2, 4, 8, 16, 32, 64, nf};

    auto recordId = [](unsigned fields) {
        return "rec" + std::to_string(fields * 8) + "B";
    };
    auto recordConfig = [&](unsigned fields) {
        SimConfig scfg = cfg;
        scfg.taFields = fields;
        // Keep the scanned volume roughly constant.
        scfg.taRecords = std::max<std::uint64_t>(
            1024, cfg.taRecords * nf / fields / 4);
        return scfg;
    };

    BenchCampaign camp;
    for (unsigned proj : {8u, 64u, nf})
        for (double sel : sels)
            addPoint(camp, cfg, pointId("arith", proj, sel),
                     arithQuery(proj, sel, nf));
    for (double sel : {0.1, 0.5, 1.0})
        for (unsigned proj : projs)
            addPoint(camp, cfg, pointId("arith", proj, sel),
                     arithQuery(proj, sel, nf));
    for (double sel : sels)
        addPoint(camp, cfg, pointId("aggr", 8, sel),
                 aggrQuery(8, sel, nf));
    for (unsigned proj : projs)
        addPoint(camp, cfg, pointId("aggr", proj, 1.0),
                 aggrQuery(proj, 1.0, nf));
    for (unsigned fields : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
        addPoint(camp, recordConfig(fields), recordId(fields),
                 aggrQuery(fields, 1.0, fields));
    }
    camp.run();

    // ----- (a)-(c): arithmetic, selectivity sweeps -------------------
    for (unsigned proj : {8u, 64u, nf}) {
        std::cout << "-- (a-c) arithmetic query, " << proj
                  << " fields projected, selectivity sweep --\n";
        TablePrinter tp;
        tp.header(panelHeader("selectivity"));
        for (double sel : sels) {
            panelRow(camp, pointId("arith", proj, sel), tp,
                     fmtPercent(sel, 0));
        }
        tp.print(std::cout);
        std::cout << "\n";
    }

    // ----- (d)-(f): arithmetic, projectivity sweeps ------------------
    for (double sel : {0.1, 0.5, 1.0}) {
        std::cout << "-- (d-f) arithmetic query, "
                  << fmtPercent(sel, 0)
                  << " records selected, projectivity sweep --\n";
        TablePrinter tp;
        tp.header(panelHeader("fields"));
        for (unsigned proj : projs) {
            panelRow(camp, pointId("arith", proj, sel), tp,
                     std::to_string(proj));
        }
        tp.print(std::cout);
        std::cout << "\n";
    }

    // ----- (g): aggregate, selectivity sweep -------------------------
    {
        std::cout << "-- (g) aggregate query, 8 fields projected, "
                     "selectivity sweep --\n";
        TablePrinter tp;
        tp.header(panelHeader("selectivity"));
        for (double sel : sels) {
            panelRow(camp, pointId("aggr", 8, sel), tp,
                     fmtPercent(sel, 0));
        }
        tp.print(std::cout);
        std::cout << "\n";
    }

    // ----- (h): aggregate, projectivity sweep ------------------------
    {
        std::cout << "-- (h) aggregate query, 100% records selected, "
                     "projectivity sweep --\n";
        TablePrinter tp;
        tp.header(panelHeader("fields"));
        for (unsigned proj : projs) {
            panelRow(camp, pointId("aggr", proj, 1.0), tp,
                     std::to_string(proj));
        }
        tp.print(std::cout);
        std::cout << "\n";
    }

    // ----- (i): record-size sweep ------------------------------------
    {
        std::cout << "-- (i) record-size sweep, 100% selectivity and "
                     "projectivity --\n";
        TablePrinter tp;
        tp.header(panelHeader("record"));
        for (unsigned fields : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u})
            panelRow(camp, recordId(fields), tp, recordId(fields).substr(3));
        tp.print(std::cout);
    }
    maybeWriteBenchJson("fig15", camp);
    return 0;
}
