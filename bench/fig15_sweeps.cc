/**
 * @file
 * Figure 15 reproduction: speedup (normalized to row-store) of
 * RC-NVM-wd, GS-DRAM-ecc, SAM-en, and the ideal store on the
 * parameterized arithmetic and aggregate queries:
 *
 *   (a)-(c) arithmetic query, selectivity sweep at 8 / 64 / all
 *           projected fields;
 *   (d)-(f) arithmetic query, projectivity sweep at 10% / 50% / 100%
 *           selectivity;
 *   (g)     aggregate query, selectivity sweep at 8 projected fields;
 *   (h)     aggregate query, projectivity sweep at 100% selectivity;
 *   (i)     record-size sweep at 100% selectivity and projectivity.
 *
 * Paper reference shapes: speedup rises with selectivity and falls
 * with projectivity (the row store catches up); the aggregate query
 * lifts RC-NVM-wd to SAM-en's level (field-major processing removes
 * its field-switch penalty); in (i) only RC-NVM-wd degrades as records
 * grow (its vertical alignment thrashes rows on full scans).
 */

#include "bench/bench_common.hh"
#include "src/sim/system.hh"

using namespace sam;
using namespace sam::bench;

namespace {

const std::vector<DesignKind> kPanelDesigns = {
    DesignKind::RcNvmWord, DesignKind::GsDramEcc, DesignKind::SamEn,
    DesignKind::Ideal};

SimConfig
sweepConfig()
{
    SimConfig cfg = benchConfig();
    cfg.taRecords = quickMode() ? 2048 : 8192;
    cfg.tbRecords = 2048; // unused by the Ta-only sweeps
    return cfg;
}

/** Run one parameterized query on all panel designs via a session. */
void
panelRow(Session &session, const Query &q, TablePrinter &tp,
         const std::string &x_label)
{
    std::vector<std::string> row{x_label};
    for (DesignKind d : kPanelDesigns) {
        const Comparison c = session.compare(d, q);
        session.checkResult(q, c.design);
        row.push_back(fmtNum(c.speedup));
    }
    tp.row(row);
}

std::vector<std::string>
panelHeader(const std::string &x_name)
{
    std::vector<std::string> head{x_name};
    for (DesignKind d : kPanelDesigns)
        head.push_back(designName(d));
    return head;
}

} // namespace

int
main()
{
    setQuietLogging(true);
    printHeader("Figure 15",
                "Speedup sweeps of the arithmetic / aggregate queries "
                "over selectivity, projectivity, and record size");

    const SimConfig cfg = sweepConfig();
    Session session(cfg);
    const unsigned nf = cfg.taFields;
    const std::vector<double> sels = {0.1, 0.2, 0.3, 0.4, 0.5,
                                      0.6, 0.7, 0.8, 0.9, 1.0};
    const std::vector<unsigned> projs = {2, 4, 8, 16, 32, 64, nf};

    // ----- (a)-(c): arithmetic, selectivity sweeps -------------------
    for (unsigned proj : {8u, 64u, nf}) {
        std::cout << "-- (a-c) arithmetic query, " << proj
                  << " fields projected, selectivity sweep --\n";
        TablePrinter tp;
        tp.header(panelHeader("selectivity"));
        for (double sel : sels) {
            panelRow(session, arithQuery(proj, sel, nf), tp,
                     fmtPercent(sel, 0));
        }
        tp.print(std::cout);
        std::cout << "\n";
    }

    // ----- (d)-(f): arithmetic, projectivity sweeps ------------------
    for (double sel : {0.1, 0.5, 1.0}) {
        std::cout << "-- (d-f) arithmetic query, "
                  << fmtPercent(sel, 0)
                  << " records selected, projectivity sweep --\n";
        TablePrinter tp;
        tp.header(panelHeader("fields"));
        for (unsigned proj : projs) {
            panelRow(session, arithQuery(proj, sel, nf), tp,
                     std::to_string(proj));
        }
        tp.print(std::cout);
        std::cout << "\n";
    }

    // ----- (g): aggregate, selectivity sweep -------------------------
    {
        std::cout << "-- (g) aggregate query, 8 fields projected, "
                     "selectivity sweep --\n";
        TablePrinter tp;
        tp.header(panelHeader("selectivity"));
        for (double sel : sels) {
            panelRow(session, aggrQuery(8, sel, nf), tp,
                     fmtPercent(sel, 0));
        }
        tp.print(std::cout);
        std::cout << "\n";
    }

    // ----- (h): aggregate, projectivity sweep ------------------------
    {
        std::cout << "-- (h) aggregate query, 100% records selected, "
                     "projectivity sweep --\n";
        TablePrinter tp;
        tp.header(panelHeader("fields"));
        for (unsigned proj : projs) {
            panelRow(session, aggrQuery(proj, 1.0, nf), tp,
                     std::to_string(proj));
        }
        tp.print(std::cout);
        std::cout << "\n";
    }

    // ----- (i): record-size sweep ------------------------------------
    {
        std::cout << "-- (i) record-size sweep, 100% selectivity and "
                     "projectivity --\n";
        TablePrinter tp;
        tp.header(panelHeader("record"));
        for (unsigned fields : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
            SimConfig scfg = cfg;
            scfg.taFields = fields;
            // Keep the scanned volume roughly constant.
            scfg.taRecords = std::max<std::uint64_t>(
                1024, cfg.taRecords * nf / fields / 4);
            Session ssession(scfg);
            const Query q = aggrQuery(fields, 1.0, fields);
            std::vector<std::string> row{std::to_string(fields * 8) +
                                         "B"};
            for (DesignKind d : kPanelDesigns) {
                const Comparison c = ssession.compare(d, q);
                ssession.checkResult(q, c.design);
                row.push_back(fmtNum(c.speedup));
            }
            tp.row(row);
        }
        tp.print(std::cout);
    }
    return 0;
}
