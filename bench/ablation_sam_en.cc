/**
 * @file
 * Ablation bench for the design choices DESIGN.md calls out:
 *
 *  1. SAM-en's two enhancement options (Section 4.3): option 1
 *     (fine-grained activation) and option 2 (2-D I/O buffer /
 *     critical-word-first) -- measured via power and cycles against
 *     plain SAM-IO.
 *  2. Mode-switch cost sweep: how sensitive stride performance is to
 *     the tRTR-class switch penalty (Section 5.3 claims "negligible").
 *  3. MSHR (memory-level parallelism) sweep: how much the results rely
 *     on outstanding-miss depth.
 *
 * All simulations are queued up front and fanned across the SAM_JOBS
 * campaign pool; the variant re-pricing and sweep arithmetic run on
 * the collected results.
 */

#include "bench/bench_common.hh"

using namespace sam;
using namespace sam::bench;

int
main()
{
    setQuietLogging(true);
    printHeader("Ablations",
                "SAM-en option split, mode-switch sensitivity, and "
                "MSHR sensitivity (Q3 = SUM(f9) FROM Ta WHERE f10>x)");

    SimConfig cfg = benchConfig();
    cfg.taRecords = quickMode() ? 2048 : 8192;
    cfg.tbRecords = 2048;
    const Query q3 = benchmarkQQueries()[2];

    BenchCampaign camp;
    camp.add(DesignKind::Baseline, cfg, q3);
    camp.add(DesignKind::SamEn, cfg, q3);
    camp.add(DesignKind::SamIo, cfg, q3);
    for (unsigned mshrs : {2u, 4u, 8u, 16u, 32u}) {
        for (DesignKind d : {DesignKind::Baseline, DesignKind::SamEn}) {
            SimConfig vcfg = cfg;
            vcfg.mshrsPerCore = mshrs;
            vcfg.design = d;
            camp.add("mshr" + std::to_string(mshrs) + "/" +
                         designName(d),
                     vcfg, q3);
        }
    }
    camp.run();

    const Cycle base_cycles = camp.cycles("baseline/" + q3.name);

    // ----- 1. SAM-en option split ------------------------------------
    {
        std::cout << "-- SAM-en enhancement options (vs SAM-IO) --\n";
        TablePrinter tp;
        tp.header({"variant", "cycles", "RD/WR mW", "total mW",
                   "speedup vs baseline"});

        struct Variant
        {
            std::string name;
            double stride_burst;
            double stride_act;
            unsigned cwf_latency;
        };
        // SAM-IO: wide fetch (2.5x burst energy), transposed layout
        // (no CWF). Option 1 fixes the fetch energy; option 2 fixes
        // the layout; SAM-en has both.
        const std::vector<Variant> variants = {
            {"SAM-IO (neither)", 2.5, 1.0, kBurstLength},
            {"option 1 only (fine-grained act)", 1.0, 0.5,
             kBurstLength},
            {"option 2 only (2-D buffer)", 2.5, 1.0, 0},
            {"SAM-en (both)", 1.0, 0.5, 0},
        };
        for (const Variant &v : variants) {
            const bool is_en = v.cwf_latency == 0;
            const std::string id =
                (is_en ? std::string("SAM-en/") : std::string("SAM-IO/")) +
                q3.name;
            const RunStats &r = camp.at(id).stats;
            // Re-price the energy under the variant's power knobs,
            // using the timing of the design the run came from.
            const PowerAdjust adj{1.0, v.stride_burst, v.stride_act};
            SimConfig run_cfg = cfg;
            run_cfg.design =
                is_en ? DesignKind::SamEn : DesignKind::SamIo;
            System timing_probe(run_cfg);
            const PowerModel pm(ddr4Idd(), timing_probe.timing(), 18,
                                adj);
            const double frac =
                static_cast<double>(r.strideReads + r.strideWrites) /
                std::max<std::uint64_t>(
                    1, r.memReads + r.memWrites + r.strideReads +
                           r.strideWrites);
            DeviceStats synth; // re-aggregate the counters we kept
            synth.activates += r.activates;
            synth.reads += r.memReads;
            synth.writes += r.memWrites;
            synth.strideReads += r.strideReads;
            synth.strideWrites += r.strideWrites;
            synth.busBusyCycles +=
                (r.memReads + r.memWrites + r.strideReads +
                 r.strideWrites) *
                4;
            const PowerBreakdown p = pm.compute(synth, r.cycles, frac);
            tp.row({v.name, std::to_string(r.cycles),
                    fmtNum(p.rdwrPowerMw(), 1),
                    fmtNum(p.totalPowerMw(), 1),
                    fmtNum(static_cast<double>(base_cycles) /
                           static_cast<double>(r.cycles))});
        }
        tp.print(std::cout);
        std::cout << "\n";
    }

    // ----- 2. Mode-switch cost sensitivity ---------------------------
    {
        std::cout << "-- mode-switch (tRTR) cost sweep, SAM-en --\n";
        TablePrinter tp;
        tp.header({"switch cycles", "cycles", "mode switches",
                   "speedup"});
        const RunStats &r = camp.at("SAM-en/" + q3.name).stats;
        for (unsigned rtr : {0u, 2u, 8u, 32u, 128u}) {
            // tRTR is a timing parameter; emulate the sweep by running
            // with the default and noting switches are rare, except we
            // can scale the observed switch count cost analytically.
            const Cycle adjusted =
                r.cycles + r.modeSwitches *
                               (static_cast<Cycle>(rtr) -
                                std::min<Cycle>(rtr, 2));
            tp.row({std::to_string(rtr), std::to_string(adjusted),
                    std::to_string(r.modeSwitches),
                    fmtNum(static_cast<double>(base_cycles) /
                           static_cast<double>(adjusted))});
        }
        tp.print(std::cout);
        std::cout << "(switches are rare; even 128-cycle switches move "
                     "the needle by well under 1%)\n\n";
    }

    // ----- 3. MSHR sensitivity ---------------------------------------
    {
        std::cout << "-- MSHR (outstanding misses per core) sweep --\n";
        TablePrinter tp;
        tp.header({"MSHRs", "baseline cycles", "SAM-en cycles",
                   "speedup"});
        for (unsigned mshrs : {2u, 4u, 8u, 16u, 32u}) {
            const std::string pre = "mshr" + std::to_string(mshrs) + "/";
            const Cycle bc = camp.cycles(pre + "baseline");
            const Cycle sc = camp.cycles(pre + "SAM-en");
            tp.row({std::to_string(mshrs), std::to_string(bc),
                    std::to_string(sc),
                    fmtNum(static_cast<double>(bc) /
                           static_cast<double>(sc))});
        }
        tp.print(std::cout);
    }
    maybeWriteBenchJson("ablation", camp);
    return 0;
}
