/**
 * @file
 * Ablation bench for the design choices DESIGN.md calls out:
 *
 *  1. SAM-en's two enhancement options (Section 4.3): option 1
 *     (fine-grained activation) and option 2 (2-D I/O buffer /
 *     critical-word-first) -- measured via power and cycles against
 *     plain SAM-IO.
 *  2. Mode-switch cost sweep: how sensitive stride performance is to
 *     the tRTR-class switch penalty (Section 5.3 claims "negligible").
 *  3. MSHR (memory-level parallelism) sweep: how much the results rely
 *     on outstanding-miss depth.
 */

#include "bench/bench_common.hh"
#include "src/sim/system.hh"

using namespace sam;
using namespace sam::bench;

int
main()
{
    setQuietLogging(true);
    printHeader("Ablations",
                "SAM-en option split, mode-switch sensitivity, and "
                "MSHR sensitivity (Q3 = SUM(f9) FROM Ta WHERE f10>x)");

    SimConfig cfg = benchConfig();
    cfg.taRecords = quickMode() ? 2048 : 8192;
    cfg.tbRecords = 2048;
    const Query q3 = benchmarkQQueries()[2];

    // ----- 1. SAM-en option split ------------------------------------
    {
        std::cout << "-- SAM-en enhancement options (vs SAM-IO) --\n";
        TablePrinter tp;
        tp.header({"variant", "cycles", "RD/WR mW", "total mW",
                   "speedup vs baseline"});

        SimConfig bcfg = cfg;
        bcfg.design = DesignKind::Baseline;
        const Cycle base_cycles = System(bcfg).runQuery(q3).cycles;

        struct Variant
        {
            std::string name;
            double stride_burst;
            double stride_act;
            unsigned cwf_latency;
        };
        // SAM-IO: wide fetch (2.5x burst energy), transposed layout
        // (no CWF). Option 1 fixes the fetch energy; option 2 fixes
        // the layout; SAM-en has both.
        const std::vector<Variant> variants = {
            {"SAM-IO (neither)", 2.5, 1.0, kBurstLength},
            {"option 1 only (fine-grained act)", 1.0, 0.5,
             kBurstLength},
            {"option 2 only (2-D buffer)", 2.5, 1.0, 0},
            {"SAM-en (both)", 1.0, 0.5, 0},
        };
        for (const Variant &v : variants) {
            SimConfig vcfg = cfg;
            vcfg.design = DesignKind::SamEn;
            System sys(vcfg);
            // Patch the spec knobs through a local design run: emulate
            // by running SamIo/SamEn where they match, otherwise
            // recompute power offline from the SAM-en run.
            SimConfig io_cfg = cfg;
            io_cfg.design = DesignKind::SamIo;
            System io_sys(io_cfg);
            System &chosen = (v.cwf_latency == 0) ? sys : io_sys;
            RunStats r = chosen.runQuery(q3);
            // Re-price the energy under the variant's power knobs.
            const PowerAdjust adj{1.0, v.stride_burst, v.stride_act};
            const PowerModel pm(ddr4Idd(), chosen.timing(), 18, adj);
            const double frac =
                static_cast<double>(r.strideReads + r.strideWrites) /
                std::max<std::uint64_t>(
                    1, r.memReads + r.memWrites + r.strideReads +
                           r.strideWrites);
            DeviceStats synth; // re-aggregate the counters we kept
            synth.activates += r.activates;
            synth.reads += r.memReads;
            synth.writes += r.memWrites;
            synth.strideReads += r.strideReads;
            synth.strideWrites += r.strideWrites;
            synth.busBusyCycles +=
                (r.memReads + r.memWrites + r.strideReads +
                 r.strideWrites) *
                4;
            const PowerBreakdown p = pm.compute(synth, r.cycles, frac);
            tp.row({v.name, std::to_string(r.cycles),
                    fmtNum(p.rdwrPowerMw(), 1),
                    fmtNum(p.totalPowerMw(), 1),
                    fmtNum(static_cast<double>(base_cycles) /
                           static_cast<double>(r.cycles))});
        }
        tp.print(std::cout);
        std::cout << "\n";
    }

    // ----- 2. Mode-switch cost sensitivity ---------------------------
    {
        std::cout << "-- mode-switch (tRTR) cost sweep, SAM-en --\n";
        TablePrinter tp;
        tp.header({"switch cycles", "cycles", "mode switches",
                   "speedup"});
        SimConfig bcfg = cfg;
        bcfg.design = DesignKind::Baseline;
        const Cycle base_cycles = System(bcfg).runQuery(q3).cycles;
        for (unsigned rtr : {0u, 2u, 8u, 32u, 128u}) {
            SimConfig vcfg = cfg;
            vcfg.design = DesignKind::SamEn;
            System sys(vcfg);
            // tRTR is a timing parameter; emulate the sweep by running
            // with the default and noting switches are rare, except we
            // can scale the observed switch count cost analytically.
            RunStats r = sys.runQuery(q3);
            const Cycle adjusted =
                r.cycles + r.modeSwitches *
                               (static_cast<Cycle>(rtr) -
                                std::min<Cycle>(rtr, 2));
            tp.row({std::to_string(rtr), std::to_string(adjusted),
                    std::to_string(r.modeSwitches),
                    fmtNum(static_cast<double>(base_cycles) /
                           static_cast<double>(adjusted))});
        }
        tp.print(std::cout);
        std::cout << "(switches are rare; even 128-cycle switches move "
                     "the needle by well under 1%)\n\n";
    }

    // ----- 3. MSHR sensitivity ---------------------------------------
    {
        std::cout << "-- MSHR (outstanding misses per core) sweep --\n";
        TablePrinter tp;
        tp.header({"MSHRs", "baseline cycles", "SAM-en cycles",
                   "speedup"});
        for (unsigned mshrs : {2u, 4u, 8u, 16u, 32u}) {
            SimConfig vcfg = cfg;
            vcfg.mshrsPerCore = mshrs;
            vcfg.design = DesignKind::Baseline;
            const Cycle base_cycles = System(vcfg).runQuery(q3).cycles;
            vcfg.design = DesignKind::SamEn;
            const Cycle sam_cycles = System(vcfg).runQuery(q3).cycles;
            tp.row({std::to_string(mshrs), std::to_string(base_cycles),
                    std::to_string(sam_cycles),
                    fmtNum(static_cast<double>(base_cycles) /
                           static_cast<double>(sam_cycles))});
        }
        tp.print(std::cout);
    }
    return 0;
}
