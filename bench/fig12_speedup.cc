/**
 * @file
 * Figure 12 reproduction: speedup (normalized to the row-store
 * baseline) of every design on the Q1-Q12 (column-preferring) and
 * Qs1-Qs6 (row-preferring) benchmark queries, with geometric means.
 *
 * All (design x query) simulations are independent, so they fan out
 * across the SAM_JOBS campaign pool; the table is printed from the
 * collected results and is byte-identical for any jobs count.
 *
 * Paper reference points (gmean over Q / degradation on Qs):
 *   SAM-sub 3.8x / -30%, SAM-IO 4.1x / <1%, SAM-en 4.2x / <1%,
 *   GS-DRAM-ecc 2.7x / -41%, RC-NVM-bit 2.6x / -58%,
 *   RC-NVM-wd 3.4x / -46%.
 */

#include "bench/bench_common.hh"

int
main()
{
    using namespace sam;
    using namespace sam::bench;
    setQuietLogging(true);

    printHeader("Figure 12",
                "Speedup (normalized to row-store) of all designs on "
                "the Table 3 queries");

    const SimConfig cfg = benchConfig();
    const auto designs = figureDesigns();
    const auto qq = benchmarkQQueries();
    const auto qs = benchmarkQsQueries();

    BenchCampaign camp;
    for (const auto *queries : {&qq, &qs}) {
        for (const Query &q : *queries) {
            camp.add(DesignKind::Baseline, cfg, q);
            for (DesignKind d : designs)
                camp.add(d, cfg, q, /*verify=*/true);
        }
    }
    camp.run();

    auto run_block = [&](const std::vector<Query> &queries,
                         const std::string &gmean_label) {
        TablePrinter tp;
        std::vector<std::string> head{"query"};
        for (DesignKind d : designs)
            head.push_back(designName(d));
        tp.header(head);

        std::map<DesignKind, std::vector<double>> speedups;
        for (const Query &q : queries) {
            std::vector<std::string> row{q.name};
            const std::string base_id = "baseline/" + q.name;
            for (DesignKind d : designs) {
                const double sp =
                    camp.speedup(designName(d) + "/" + q.name, base_id);
                row.push_back(fmtNum(sp));
                speedups[d].push_back(sp);
            }
            tp.row(row);
        }
        tp.separator();
        std::vector<std::string> gm{gmean_label};
        for (DesignKind d : designs)
            gm.push_back(fmtNum(geometricMean(speedups[d])));
        tp.row(gm);
        tp.print(std::cout);
        std::cout << "\n";
    };

    run_block(qq, "Gmean(Q)");
    run_block(qs, "Gmean(Qs)");

    std::cout << "Every result above was verified against the pure "
                 "reference executor.\n";
    maybeWriteBenchJson("fig12", camp);
    return 0;
}
