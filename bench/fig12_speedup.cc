/**
 * @file
 * Figure 12 reproduction: speedup (normalized to the row-store
 * baseline) of every design on the Q1-Q12 (column-preferring) and
 * Qs1-Qs6 (row-preferring) benchmark queries, with geometric means.
 *
 * Paper reference points (gmean over Q / degradation on Qs):
 *   SAM-sub 3.8x / -30%, SAM-IO 4.1x / <1%, SAM-en 4.2x / <1%,
 *   GS-DRAM-ecc 2.7x / -41%, RC-NVM-bit 2.6x / -58%,
 *   RC-NVM-wd 3.4x / -46%.
 */

#include "bench/bench_common.hh"

int
main()
{
    using namespace sam;
    using namespace sam::bench;
    setQuietLogging(true);

    printHeader("Figure 12",
                "Speedup (normalized to row-store) of all designs on "
                "the Table 3 queries");

    Session session(benchConfig());
    const auto designs = figureDesigns();

    auto run_block = [&](const std::vector<Query> &queries,
                         const std::string &gmean_label) {
        TablePrinter tp;
        std::vector<std::string> head{"query"};
        for (DesignKind d : designs)
            head.push_back(designName(d));
        tp.header(head);

        std::map<DesignKind, std::vector<double>> speedups;
        for (const Query &q : queries) {
            std::vector<std::string> row{q.name};
            for (DesignKind d : designs) {
                const Comparison c = session.compare(d, q);
                session.checkResult(q, c.design);
                row.push_back(fmtNum(c.speedup));
                speedups[d].push_back(c.speedup);
            }
            tp.row(row);
        }
        tp.separator();
        std::vector<std::string> gm{gmean_label};
        for (DesignKind d : designs)
            gm.push_back(fmtNum(geometricMean(speedups[d])));
        tp.row(gm);
        tp.print(std::cout);
        std::cout << "\n";
    };

    run_block(benchmarkQQueries(), "Gmean(Q)");
    run_block(benchmarkQsQueries(), "Gmean(Qs)");

    std::cout << "Every result above was verified against the pure "
                 "reference executor.\n";
    return 0;
}
