#!/usr/bin/env python3
"""Render telemetry JSON as human-readable latency/bandwidth tables.

Usage:
    tools/telemetry_report.py TELEMETRY.json        # sam-telemetry-v1
    tools/telemetry_report.py BENCH_fig12.json      # sam-campaign-v1

For a sam-telemetry-v1 file (samsim --telemetry) prints the per-class
latency percentiles, the per-channel bandwidth/queue/row-hit series in
window form, and the busiest banks. For a sam-campaign-v1 file
(samcampaign) prints one latency row per run from the embedded
histogram summaries.

Exit status: 0 on success, 1 on malformed input, 2 on usage errors.
"""

import json
import sys

LAT_COLUMNS = ("count", "min", "p50", "p95", "p99", "max", "mean")


def fmt(value):
    if isinstance(value, float):
        return f"{value:,.1f}"
    return f"{value:,}"


def print_table(title, header, rows):
    print(f"\n{title}")
    widths = [len(h) for h in header]
    rendered = [[fmt(c) if not isinstance(c, str) else c for c in row]
                for row in rows]
    for row in rendered:
        widths = [max(w, len(c)) for w, c in zip(widths, row)]
    line = "  ".join(h.rjust(w) for h, w in zip(header, widths))
    print(f"  {line}")
    print(f"  {'-' * len(line)}")
    for row in rendered:
        print("  " + "  ".join(c.rjust(w) for c, w in zip(row, widths)))


def latency_rows(latency, label=None):
    rows = []
    for cls, h in latency.items():
        row = [f"{label}/{cls}" if label else cls]
        row.extend(h.get(k, 0) for k in LAT_COLUMNS)
        rows.append(row)
    return rows


def series_stats(series):
    windows = series.get("windows", [])
    total = sum(w.get("sum", 0) for w in windows)
    peak = max((w.get("sum", 0) for w in windows), default=0)
    return len(windows), total, peak


def report_telemetry(doc):
    print(f"telemetry summary (window = {doc.get('windowCycles')} cycles,"
          f" tCK = {doc.get('tCkNs')} ns)")
    print_table("request latency (cycles)",
                ("class",) + LAT_COLUMNS,
                latency_rows(doc.get("latencyCycles", {})))

    rows = []
    for ch in doc.get("channels", []):
        n, total_bytes, peak_bytes = series_stats(ch["bandwidthBytes"])
        _, hits, _ = series_stats(ch["rowHitRate"])
        hit_count = sum(w.get("count", 0)
                        for w in ch["rowHitRate"].get("windows", []))
        _, switches, _ = series_stats(ch["modeSwitches"])
        rows.append([f"ch{ch.get('channel')}", n, total_bytes,
                     peak_bytes,
                     100.0 * hits / hit_count if hit_count else 0.0,
                     switches])
    print_table("channels",
                ("channel", "windows", "bytes", "peak bytes/win",
                 "row hit %", "mode switches"), rows)

    banks = sorted(doc.get("banks", []),
                   key=lambda b: -b.get("totalBytes", 0))
    rows = [[b["bank"], b.get("totalBytes", 0)] for b in banks[:16]]
    print_table(f"busiest banks (top {len(rows)} of {len(banks)} active)",
                ("bank", "bytes"), rows)

    counters = doc.get("counters", {})
    print("\ncounters: " + ", ".join(f"{k}={fmt(v)}"
                                     for k, v in counters.items()))


def report_campaign(doc):
    print(f"campaign {doc.get('campaign')!r}"
          f" ({doc.get('scale')} scale): per-run request latency")
    rows = []
    skipped = 0
    for run in doc.get("runs", []):
        latency = run.get("latency_cycles")
        if not latency:
            skipped += 1
            continue
        rows.extend(latency_rows(latency, label=run.get("id", "?")))
    if not rows:
        print("  no latency data (campaign run with --no-telemetry?)")
        return
    print_table("request latency (cycles)",
                ("run/class",) + LAT_COLUMNS, rows)
    if skipped:
        print(f"\n{skipped} run(s) had no telemetry")


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    path = sys.argv[1]
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"telemetry_report: cannot read {path}: {exc}",
              file=sys.stderr)
        return 1

    schema = doc.get("schema")
    if schema == "sam-telemetry-v1":
        report_telemetry(doc)
    elif schema == "sam-campaign-v1":
        report_campaign(doc)
    else:
        print(f"telemetry_report: {path}: unsupported schema "
              f"{schema!r}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
