#!/usr/bin/env python3
"""Project-convention linter.

Checks that clang-tidy cannot express:

  * include guards follow the ``SAM_<DIR>_<FILE>_HH`` convention and the
    ``#ifndef``/``#define`` pair matches;
  * project headers are included by their repo-root-relative path, e.g.
    ``src/dram/device.hh`` (so every translation unit compiles with the
    single repo-root include dir);
  * statistics hygiene: every ``Counter``/``Accum`` member of a ``*Stats``
    struct is registered in the corresponding ``registerIn`` implementation
    (an unregistered counter silently vanishes from stats dumps).

Run from the repository root:  python3 tools/lint.py
Exits non-zero when any finding is reported.
"""

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SOURCE_DIRS = ["src", "tests", "tools", "bench", "examples"]

findings = []


def report(path, line, message):
    findings.append(f"{path.relative_to(ROOT)}:{line}: {message}")


def expected_guard(header):
    rel = header.relative_to(ROOT / "src")
    parts = [p.upper().replace("-", "_").replace(".", "_")
             for p in rel.parts]
    return "SAM_" + "_".join(parts)


def check_include_guard(header, text):
    match = re.search(r"^#ifndef\s+(\S+)\s*\n#define\s+(\S+)", text,
                      re.MULTILINE)
    if not match:
        report(header, 1, "missing #ifndef/#define include guard")
        return
    guard = expected_guard(header)
    line = text[:match.start()].count("\n") + 1
    if match.group(1) != guard:
        report(header, line,
               f"include guard '{match.group(1)}' should be '{guard}'")
    elif match.group(2) != guard:
        report(header, line + 1,
               f"guard #define '{match.group(2)}' does not match "
               f"#ifndef '{guard}'")


def check_includes(path, text):
    for i, line in enumerate(text.splitlines(), start=1):
        match = re.match(r'\s*#include\s+"([^"]+)"', line)
        if match and not (ROOT / match.group(1)).exists():
            report(path, i,
                   f'project include "{match.group(1)}" must use the '
                   f'repo-root-relative form (src/..., bench/...)')


def struct_bodies(text, name_pattern):
    """Yield (name, body) for each struct whose name matches."""
    for match in re.finditer(r"\bstruct\s+(" + name_pattern + r")\s*\{",
                             text):
        depth, start = 1, match.end()
        pos = start
        while depth and pos < len(text):
            if text[pos] == "{":
                depth += 1
            elif text[pos] == "}":
                depth -= 1
            pos += 1
        yield match.group(1), text[start:pos - 1]


def check_stats_registration(header, text):
    impl = header.with_suffix(".cc")
    impl_text = impl.read_text() if impl.exists() else ""
    registered = set(re.findall(r"add(?:Counter|Accum)\(\s*\"[^\"]+\",\s*"
                                r"(?:\w+\.)*(\w+)", impl_text + text))
    for name, body in struct_bodies(text, r"\w*Stats"):
        if "registerIn" not in body:
            continue
        for member in re.findall(r"\b(?:Counter|Accum)\s+(\w+)\s*;",
                                 body):
            if member not in registered:
                line = text.count("\n", 0, text.find(body)) + 1
                report(header, line,
                       f"{name}::{member} is never registered via "
                       f"addCounter/addAccum in {impl.name}")


def main():
    for dirname in SOURCE_DIRS:
        for path in sorted((ROOT / dirname).rglob("*")):
            if path.suffix not in (".hh", ".cc", ".cpp", ".h"):
                continue
            text = path.read_text()
            check_includes(path, text)
            if path.suffix == ".hh" and dirname == "src":
                check_include_guard(path, text)
                check_stats_registration(path, text)

    for finding in findings:
        print(finding)
    if findings:
        print(f"lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
