#!/usr/bin/env python3
"""Generate independent ECC known-answer vectors.

Usage:
    tools/gen_ecc_vectors.py > tests/golden_ecc_vectors.hh

Re-derives the repo's ECC math from the published specifications only —
GF(2^8) with the primitive polynomial x^8+x^4+x^3+x^2+1 (0x11d),
systematic Reed-Solomon with generator roots alpha^0..alpha^{2t-1}, and
the (72,64) extended Hamming layout with data bits packed into the
non-power-of-two codeword positions — without importing or imitating
the C++ implementation. The emitted header is committed; a divergence
between src/ecc and these vectors is a codec bug, not a vector bug.

Layouts (chip interleaving of encodeLine blobs) follow the geometry
documented in src/ecc/ecc_engine.hh's header comment.
"""

import sys

# ----- GF(2^8), primitive polynomial 0x11d ---------------------------

EXP = [0] * 512
LOG = [0] * 256
_x = 1
for _i in range(255):
    EXP[_i] = _x
    LOG[_x] = _i
    _x <<= 1
    if _x & 0x100:
        _x ^= 0x11d
for _i in range(255, 512):
    EXP[_i] = EXP[_i - 255]


def gf_mul(a, b):
    if a == 0 or b == 0:
        return 0
    return EXP[LOG[a] + LOG[b]]


def poly_mul(p, q):
    """Multiply polynomials, low-order coefficient first."""
    out = [0] * (len(p) + len(q) - 1)
    for i, a in enumerate(p):
        for j, b in enumerate(q):
            out[i + j] ^= gf_mul(a, b)
    return out


def rs_generator(two_t):
    g = [1]
    for i in range(two_t):
        g = poly_mul(g, [EXP[i], 1])  # (alpha^i + x)
    return g


def rs_encode(data, n):
    """Systematic RS codeword: data then parity, high-degree first."""
    k = len(data)
    two_t = n - k
    gen = rs_generator(two_t)          # low-order first, monic
    # Remainder of m(x)*x^{2t} mod g(x), long division high-order down.
    # Codeword position j carries the coefficient of x^{n-1-j}.
    work = list(data) + [0] * two_t
    for i in range(k):
        coef = work[i]
        if coef == 0:
            continue
        # Subtract coef * g(x) aligned at degree n-1-i.
        for j in range(two_t + 1):
            work[i + j] ^= gf_mul(coef, gen[two_t - j])
    parity = work[k:]
    return list(data) + parity


# ----- (72,64) extended Hamming --------------------------------------

def secded_layout():
    """Codeword position (1..71) of each of the 64 data bits."""
    positions = []
    pos = 1
    while len(positions) < 64:
        if pos & (pos - 1):          # not a power of two
            positions.append(pos)
        pos += 1
    return positions


def secded_encode(data):
    """Check byte: 7 Hamming bits (bit c covers positions with bit c
    set) plus overall even parity of all 72 bits in bit 7."""
    positions = secded_layout()
    checks = 0
    for c in range(7):
        p = 0
        for bit in range(64):
            if (positions[bit] >> c) & 1:
                p ^= (data >> bit) & 1
        checks |= p << c
    overall = bin(data).count("1") & 1
    overall ^= bin(checks).count("1") & 1
    return checks | (overall << 7)


# ----- encodeLine blob layouts (per src/ecc/ecc_engine.hh) -----------

def blob_secded(line):
    blob = list(line) + [0] * 8
    for j in range(8):
        word = int.from_bytes(bytes(line[8 * j:8 * j + 8]), "little")
        blob[64 + j] = secded_encode(word)
    return blob


def blob_ssc(line):
    blob = list(line) + [0] * 8
    for j in range(4):
        cw = rs_encode(line[16 * j:16 * (j + 1)], 18)
        blob[64 + 2 * j] = cw[16]
        blob[64 + 2 * j + 1] = cw[17]
    return blob


def blob_ssc_dsd(line):
    blob = list(line) + [0] * 8
    for j in range(2):
        cw = rs_encode(line[32 * j:32 * (j + 1)], 36)
        blob[64 + 4 * j:64 + 4 * j + 4] = cw[32:36]
    return blob


def blob_ssc32(line):
    blob = list(line) + [0] * 8
    for j in range(2):
        for i in range(2):
            data = [line[32 * j + 2 * s + i] for s in range(16)]
            cw = rs_encode(data, 18)
            blob[64 + 4 * j + i] = cw[16]
            blob[64 + 4 * j + 2 + i] = cw[17]
    return blob


def blob_bamboo72(line):
    cw = rs_encode(list(line), 72)
    return cw  # systematic: 64 data bytes then 8 parity bytes


# ----- test patterns --------------------------------------------------

def pattern(n, mul, add):
    return [(i * mul + add) & 0xff for i in range(n)]


LINE = pattern(64, 37, 11)

RS_CASES = [
    ("kRs18Data", "kRs18Codeword", pattern(16, 7, 3), 18),
    ("kRs36Data", "kRs36Codeword", pattern(32, 13, 1), 36),
    ("kRs72Data", "kRs72Codeword", pattern(64, 29, 17), 72),
]

SECDED_WORDS = [
    0x0000000000000000,
    0x0000000000000001,
    0x8000000000000000,
    0xdeadbeefcafebabe,
    0xffffffffffffffff,
    0x0123456789abcdef,
    0xa5a5a5a5a5a5a5a5,
    0x0000000100000000,
]

ENGINE_BLOBS = [
    ("kSecDedBlob", blob_secded),
    ("kSscBlob", blob_ssc),
    ("kSscDsdBlob", blob_ssc_dsd),
    ("kSsc32Blob", blob_ssc32),
    ("kBamboo72Blob", blob_bamboo72),
]


def emit_array(name, values, width=8):
    print(f"inline constexpr std::uint8_t {name}[{len(values)}] = {{")
    for i in range(0, len(values), width):
        chunk = ", ".join(f"0x{v:02x}" for v in values[i:i + width])
        print(f"    {chunk},")
    print("};")
    print()


def main():
    print("""\
/**
 * @file
 * ECC known-answer vectors. GENERATED by tools/gen_ecc_vectors.py --
 * do not edit by hand; regenerate with:
 *
 *     python3 tools/gen_ecc_vectors.py > tests/golden_ecc_vectors.hh
 *
 * The generator re-derives GF(2^8)/RS/Hamming independently from the
 * published algebra, so these bytes cross-check the C++ codecs against
 * a second implementation, not against themselves.
 */

#ifndef SAM_TESTS_GOLDEN_ECC_VECTORS_HH
#define SAM_TESTS_GOLDEN_ECC_VECTORS_HH

#include <cstdint>

namespace sam::golden {
""")
    for data_name, cw_name, data, n in RS_CASES:
        emit_array(data_name, data)
        emit_array(cw_name, rs_encode(data, n))

    # All-zero data must encode to all-zero parity in a linear code.
    emit_array("kRs18ZeroCodeword", rs_encode([0] * 16, 18))

    print(f"inline constexpr std::uint64_t "
          f"kSecDedWords[{len(SECDED_WORDS)}] = {{")
    for w in SECDED_WORDS:
        print(f"    0x{w:016x}ull,")
    print("};")
    print()
    checks = [secded_encode(w) for w in SECDED_WORDS]
    emit_array("kSecDedChecks", checks)

    emit_array("kEngineLine", LINE)
    for name, fn in ENGINE_BLOBS:
        emit_array(name, fn(LINE))

    print("} // namespace sam::golden")
    print()
    print("#endif // SAM_TESTS_GOLDEN_ECC_VECTORS_HH")
    return 0


if __name__ == "__main__":
    sys.exit(main())
