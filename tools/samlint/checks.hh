/**
 * @file
 * samlint's project-specific checks.
 *
 * sam-determinism
 *   Code reachable from the bit-identity surface (src/runner, src/sim,
 *   src/controller, plus everything they include) must not read
 *   ambient nondeterminism: no std::rand / std::random_device /
 *   mt19937 outside the sanctioned Rng, no wall clocks, no
 *   std::this_thread, no getenv. Iterating an unordered container
 *   (hash order) or keying an ordered container by pointer (address
 *   order) makes memory layout observable and is flagged; keyed
 *   lookups (find/count/insert/erase) are fine.
 *
 * sam-cycle-accounting
 *   Fields declared with the Cycle type are simulation-time state.
 *   Mutating one outside its declaring directory or the engine path
 *   (src/dram, src/check) is flagged, as is comparing a Cycle field
 *   against a wall-clock-named value (cross-clock-domain comparison).
 *
 * sam-observer-discipline
 *   A translation unit that calls addCommandObserver() must also call
 *   removeCommandObserver() (attach/detach pairing -- a dangling
 *   observer is a use-after-free once the observer dies first), and an
 *   observer callback must not reach back into the observed device.
 *
 * sam-locking
 *   Raw std::mutex / lock_guard / unique_lock / condition_variable on
 *   the simulation surface are flagged: use sam::Mutex / sam::MutexLock
 *   (src/common/thread_annotations.hh) so the locking discipline stays
 *   visible to clang's -Wthread-safety analysis.
 *
 * sam-codec-construction
 *   Constructing or owning a ReedSolomon outside the codec layer
 *   (src/ecc/{codec_registry,reed_solomon,gf256,ecc_engine}) rebuilds
 *   its generator/syndrome tables per instance; borrow the shared
 *   immutable codec with CodecRegistry::reedSolomon(n, k) instead.
 *   Reference/pointer uses and forward declarations are fine. GF256
 *   instance declarations are flagged the same way (its tables are
 *   already a shared function-local static).
 *
 * All checks honor // NOLINT(check) and // NOLINTNEXTLINE(check).
 */

#ifndef SAM_TOOLS_SAMLINT_CHECKS_HH
#define SAM_TOOLS_SAMLINT_CHECKS_HH

#include <string>
#include <vector>

#include "tools/samlint/lexer.hh"

namespace samlint {

struct Finding
{
    std::string path;
    unsigned line = 0;
    std::string check;
    std::string message;
};

struct LintOptions
{
    /** Check names to run; empty = all. */
    std::vector<std::string> checks;
    /** Treat every file as on the bit-identity surface (fixtures). */
    bool allSurface = false;
};

/** Names of all registered checks. */
std::vector<std::string> allCheckNames();

/**
 * Run the selected checks over the whole corpus (cross-file state --
 * the include graph and the Cycle member map -- is built from every
 * file given). Findings are sorted by path then line.
 */
std::vector<Finding> runChecks(const std::vector<SourceFile> &files,
                               const LintOptions &opt);

} // namespace samlint

#endif // SAM_TOOLS_SAMLINT_CHECKS_HH
