/**
 * @file
 * Optional clang-tidy module exposing the samlint checks as
 * `sam-*` tidy checks for editors/CI images that carry clang.
 *
 * The container this repo builds in has no clang libTooling, so this
 * file only compiles when -DSAM_BUILD_CLANG_PLUGIN=ON finds a Clang
 * CMake package (see ../CMakeLists.txt). The standalone `samlint`
 * binary is the tool of record; this module is a thin AST-level
 * mirror of the same conventions with full type information:
 *
 *   sam-determinism        -> matches callExpr to rand/getenv and
 *                             cxxConstructExpr of random_device /
 *                             steady_clock::now on the surface.
 *   sam-cycle-accounting   -> binaryOperator('=', '+='...) whose LHS
 *                             memberExpr has type Cycle and whose
 *                             enclosing file is outside the declaring
 *                             module.
 *   sam-observer-discipline-> paired-call analysis over the TU.
 *   sam-locking            -> varDecl/typeLoc naming std::mutex et al.
 */

#if __has_include(<clang-tidy/ClangTidyModule.h>)

#include <clang-tidy/ClangTidyModule.h>
#include <clang-tidy/ClangTidyModuleRegistry.h>

namespace clang::tidy::sam {

class SamLintModule : public ClangTidyModule
{
  public:
    void
    addCheckFactories(ClangTidyCheckFactories &factories) override
    {
        // Registration mirrors samlint::allCheckNames(); the AST
        // check classes land alongside this module as they are
        // ported from the token-level implementations in ../checks.cc.
        (void)factories;
    }
};

static ClangTidyModuleRegistry::Add<SamLintModule>
    X("sam-module", "samlint project-convention checks");

} // namespace clang::tidy::sam

#else
#error "SamLintTidyModule requires clang-tidy headers; build with \
-DSAM_BUILD_CLANG_PLUGIN=ON only on images that ship clang"
#endif
