/**
 * @file
 * samlint driver: runs the project-specific static checks over the
 * repository's C++ sources.
 *
 * Usage:
 *     samlint --root <repo-root> [--check name]... [paths...]
 *     samlint --list-checks
 *
 * With no explicit paths, every .hh/.cc under src/ and tools/ (minus
 * samlint's own fixtures) is scanned. Exit status is 1 when any
 * finding survives NOLINT suppression, 0 otherwise.
 */

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "tools/samlint/checks.hh"
#include "tools/samlint/lexer.hh"

namespace fs = std::filesystem;

namespace {

bool
isSource(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".hh" || ext == ".cc";
}

std::string
relPath(const fs::path &abs, const fs::path &root)
{
    return fs::relative(abs, root).generic_string();
}

void
collect(const fs::path &root, const fs::path &under,
        std::vector<samlint::SourceFile> &files)
{
    if (!fs::exists(under))
        return;
    for (const auto &ent : fs::recursive_directory_iterator(under)) {
        if (!ent.is_regular_file() || !isSource(ent.path()))
            continue;
        const std::string rel = relPath(ent.path(), root);
        // The linter's own fixtures contain deliberate violations.
        if (rel.rfind("tools/samlint/fixtures/", 0) == 0)
            continue;
        files.push_back(
            samlint::lexFile(ent.path().string(), rel));
    }
}

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s --root <repo-root> [--check name]... "
                 "[--all-surface] [paths...]\n"
                 "       %s --list-checks\n",
                 argv0, argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string root = ".";
    samlint::LintOptions opt;
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--list-checks") {
            for (const std::string &c : samlint::allCheckNames())
                std::printf("%s\n", c.c_str());
            return 0;
        }
        if (arg == "--root" && i + 1 < argc) {
            root = argv[++i];
        } else if (arg == "--check" && i + 1 < argc) {
            opt.checks.push_back(argv[++i]);
        } else if (arg == "--all-surface") {
            opt.allSurface = true;
        } else if (!arg.empty() && arg[0] == '-') {
            return usage(argv[0]);
        } else {
            paths.push_back(arg);
        }
    }

    const fs::path rootPath = fs::absolute(root);
    std::vector<samlint::SourceFile> files;
    if (paths.empty()) {
        collect(rootPath, rootPath / "src", files);
        collect(rootPath, rootPath / "tools", files);
    } else {
        for (const std::string &p : paths) {
            const fs::path abs =
                fs::path(p).is_absolute() ? fs::path(p) : rootPath / p;
            if (fs::is_directory(abs))
                collect(rootPath, abs, files);
            else if (fs::exists(abs))
                files.push_back(samlint::lexFile(
                    abs.string(), relPath(abs, rootPath)));
            else
                std::fprintf(stderr, "samlint: no such path: %s\n",
                             p.c_str());
        }
    }

    const std::vector<samlint::Finding> findings =
        samlint::runChecks(files, opt);
    for (const samlint::Finding &f : findings) {
        std::printf("%s:%u: [%s] %s\n", f.path.c_str(), f.line,
                    f.check.c_str(), f.message.c_str());
    }
    std::printf("samlint: %zu file(s), %zu finding(s)\n", files.size(),
                findings.size());
    return findings.empty() ? 0 : 1;
}
