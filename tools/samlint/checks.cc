#include "tools/samlint/checks.hh"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

namespace samlint {

namespace {

const char *const kDeterminism = "sam-determinism";
const char *const kCycle = "sam-cycle-accounting";
const char *const kObserver = "sam-observer-discipline";
const char *const kLocking = "sam-locking";
const char *const kCodec = "sam-codec-construction";

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.rfind(prefix, 0) == 0;
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(),
                     suffix) == 0;
}

const std::string &
tok(const SourceFile &f, std::size_t i)
{
    static const std::string empty;
    return i < f.tokens.size() ? f.tokens[i].text : empty;
}

/** Shared corpus-level state built once per run. */
struct Corpus
{
    const std::vector<SourceFile> &files;
    /**
     * Files on the bit-identity surface: the runner/sim/controller
     * roots plus everything transitively included from them (and the
     * .cc side of every reachable header).
     */
    std::unordered_set<std::string> surface;
    /** Cycle-typed field name -> directories that declare one. */
    std::unordered_map<std::string, std::set<std::string>> cycleDirs;
};

bool
inSurfaceRoot(const std::string &path)
{
    return startsWith(path, "src/runner/") ||
           startsWith(path, "src/sim/") ||
           startsWith(path, "src/controller/");
}

void
buildSurface(Corpus &corpus)
{
    std::unordered_map<std::string, const SourceFile *> byPath;
    for (const SourceFile &f : corpus.files)
        byPath.emplace(f.path, &f);
    std::vector<const SourceFile *> frontier;
    for (const SourceFile &f : corpus.files) {
        if (inSurfaceRoot(f.path)) {
            corpus.surface.insert(f.path);
            frontier.push_back(&f);
        }
    }
    while (!frontier.empty()) {
        const SourceFile *f = frontier.back();
        frontier.pop_back();
        for (const std::string &inc : f->includes) {
            const auto it = byPath.find(inc);
            if (it == byPath.end())
                continue;
            if (corpus.surface.insert(inc).second)
                frontier.push_back(it->second);
        }
    }
    // A reachable header puts its implementation file on the surface.
    for (const SourceFile &f : corpus.files) {
        if (!endsWith(f.path, ".cc"))
            continue;
        const std::string header =
            f.path.substr(0, f.path.size() - 3) + ".hh";
        if (corpus.surface.count(header))
            corpus.surface.insert(f.path);
    }
}

void
buildCycleDirs(Corpus &corpus)
{
    for (const SourceFile &f : corpus.files) {
        const std::string dir = f.dir();
        for (std::size_t i = 0; i + 1 < f.tokens.size(); ++i) {
            if (tok(f, i) != "Cycle")
                continue;
            // `Cycle name` where the next token is not `(` (that
            // would be a function returning Cycle) and the previous
            // token is not `::`/`.` (qualified use, not a decl).
            const std::string &name = tok(f, i + 1);
            if (name.empty() ||
                !(std::isalpha(static_cast<unsigned char>(name[0])) ||
                  name[0] == '_'))
                continue;
            // `Cycle f(` is a function, `Cycle T::f` a qualified
            // definition -- neither declares a field.
            if (tok(f, i + 2) == "(" || tok(f, i + 2) == ":")
                continue;
            const std::string &prev = tok(f, i - 1);
            if (i > 0 && (prev == ":" || prev == "."))
                continue;
            corpus.cycleDirs[name].insert(dir);
        }
    }
}

using Emit = std::vector<Finding> &;

void
emit(Emit out, const SourceFile &f, unsigned line,
     const std::string &check, std::string message)
{
    if (f.suppressed(line, check))
        return;
    out.push_back({f.path, line, check, std::move(message)});
}

// --- sam-determinism ---------------------------------------------------

void
checkDeterminism(const SourceFile &f, Emit out)
{
    static const std::set<std::string> kBanned = {
        "rand",          "srand",
        "random_device", "mt19937",
        "mt19937_64",    "minstd_rand",
        "steady_clock",  "system_clock",
        "high_resolution_clock",
        "this_thread",   "getenv",
    };
    // Unordered container fields/locals declared in this file.
    std::set<std::string> unordered;
    const auto &t = f.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
        const std::string &s = t[i].text;
        if (kBanned.count(s) && tok(f, i - 1) == ":" &&
            tok(f, i - 2) == ":") {
            emit(out, f, t[i].line, kDeterminism,
                 "ambient nondeterminism (" + s +
                     ") on the bit-identity surface; use the "
                     "sanctioned sam::Rng or keep it off the "
                     "simulated path");
            continue;
        }
        if (s == "unordered_map" || s == "unordered_set") {
            // Find the declared name: skip the <...> template args.
            std::size_t k = i + 1;
            int depth = 0;
            if (tok(f, k) == "<") {
                depth = 1;
                ++k;
                bool ptrKey = false;
                int commaDepth1 = 0;
                while (k < t.size() && depth > 0) {
                    const std::string &x = t[k].text;
                    if (x == "<")
                        ++depth;
                    else if (x == ">")
                        --depth;
                    else if (x == "," && depth == 1)
                        ++commaDepth1;
                    else if (x == "*" && depth == 1 &&
                             commaDepth1 == 0)
                        ptrKey = true;
                    ++k;
                }
                (void)ptrKey; // Hash order is flagged regardless.
            }
            const std::string &name = tok(f, k);
            if (!name.empty() &&
                (std::isalpha(static_cast<unsigned char>(name[0])) ||
                 name[0] == '_') &&
                (tok(f, k + 1) == ";" || tok(f, k + 1) == "{" ||
                 tok(f, k + 1) == "="))
                unordered.insert(name);
            continue;
        }
        if ((s == "map" || s == "set") && tok(f, i - 1) == ":" &&
            tok(f, i - 2) == ":" && tok(f, i - 3) == "std" &&
            tok(f, i + 1) == "<") {
            // Ordered container keyed by pointer = address ordering.
            std::size_t k = i + 2;
            int depth = 1;
            bool ptrKey = false;
            while (k < t.size() && depth > 0) {
                const std::string &x = t[k].text;
                if (x == "<")
                    ++depth;
                else if (x == ">")
                    --depth;
                else if (x == "," && depth == 1)
                    break;
                else if (x == "*" && depth == 1)
                    ptrKey = true;
                ++k;
            }
            if (ptrKey) {
                emit(out, f, t[i].line, kDeterminism,
                     "ordered container keyed by pointer: iteration "
                     "follows allocation addresses, which are not "
                     "deterministic across runs");
            }
            continue;
        }
    }
    // Iteration over the unordered containers found above.
    for (std::size_t i = 0; i < t.size(); ++i) {
        const std::string &s = t[i].text;
        if (unordered.count(s)) {
            const std::string &next = tok(f, i + 1);
            const std::string &method = tok(f, i + 2);
            // `end()` alone is a find()-guard, not an iteration;
            // only the iteration starts give away hash order.
            if (next == "." &&
                (method == "begin" || method == "cbegin" ||
                 method == "rbegin")) {
                emit(out, f, t[i].line, kDeterminism,
                     "iterating unordered container '" + s +
                         "' exposes hash order; keep a side vector in "
                         "insertion order (see BackingStore::"
                         "overlayAll_) or use keyed lookups");
            }
        }
        if (s == "for" && tok(f, i + 1) == "(") {
            // Range-for over an unordered container: scan the header
            // for `: name )` at paren depth 1.
            std::size_t k = i + 2;
            int depth = 1;
            bool colon = false;
            std::string last;
            while (k < t.size() && depth > 0) {
                const std::string &x = t[k].text;
                if (x == "(")
                    ++depth;
                else if (x == ")")
                    --depth;
                else if (x == ":" && depth == 1 &&
                         tok(f, k + 1) != ":" && tok(f, k - 1) != ":")
                    colon = true;
                else if (depth >= 1 && colon)
                    last = x;
                ++k;
            }
            if (colon && unordered.count(last)) {
                emit(out, f, t[i].line, kDeterminism,
                     "range-for over unordered container '" + last +
                         "' exposes hash order; iterate an "
                         "insertion-order view instead");
            }
        }
    }
}

// --- sam-cycle-accounting ----------------------------------------------

void
checkCycleAccounting(const Corpus &corpus, const SourceFile &f,
                     Emit out)
{
    const std::string dir = f.dir();
    const bool engine = dir == "src/dram" || dir == "src/check";
    const auto &t = f.tokens;
    const auto allowed = [&](const std::string &member) {
        if (engine)
            return true;
        const auto it = corpus.cycleDirs.find(member);
        return it != corpus.cycleDirs.end() && it->second.count(dir);
    };
    const auto isCycleMember = [&](const std::string &name) {
        return corpus.cycleDirs.count(name) != 0;
    };
    const auto wallish = [](const std::string &name) {
        return name.find("wall") != std::string::npos ||
               name.find("Wall") != std::string::npos ||
               endsWith(name, "Ms") || endsWith(name, "Ns");
    };
    for (std::size_t i = 0; i < t.size(); ++i) {
        const std::string &s = t[i].text;
        if (!isCycleMember(s))
            continue;
        const std::string &prev = tok(f, i - 1);
        const std::string &next = tok(f, i + 1);
        // Declarations are not mutations.
        if (prev == "Cycle" || prev == "&" || prev == "*")
            continue;
        // Only member accesses (`x.field`, `p->field`) can be
        // foreign state; a bare name is a local or our own field.
        const bool memberAccess = prev == "." || prev == ">";
        const bool assign = next == "=" && tok(f, i + 2) != "=";
        const bool compound =
            (next == "+" || next == "-") && tok(f, i + 2) == "=";
        const bool increment =
            (next == "+" && tok(f, i + 2) == "+") ||
            (next == "-" && tok(f, i + 2) == "-");
        if (memberAccess && (assign || compound || increment) &&
            !allowed(s)) {
            emit(out, f, t[i].line, kCycle,
                 "mutation of Cycle-typed field '" + s +
                     "' outside its declaring module and the engine "
                     "path (src/dram, src/check); route simulated-time "
                     "updates through the owning module");
            continue;
        }
        // Cross-clock-domain comparison: Cycle vs wall-clock value.
        const bool cmpNext =
            (next == "<" || next == ">") && tok(f, i + 2) != "<" &&
            tok(f, i + 2) != ">";
        std::string other;
        if (cmpNext)
            other = tok(f, i + 2) == "=" ? tok(f, i + 3)
                                         : tok(f, i + 2);
        else if ((prev == "<" || prev == ">") && tok(f, i - 2) != "<" &&
                 tok(f, i - 2) != ">")
            other = tok(f, i - 2) == "=" ? tok(f, i - 3)
                                         : tok(f, i - 2);
        if (!other.empty() && wallish(other)) {
            emit(out, f, t[i].line, kCycle,
                 "comparison of Cycle-typed '" + s +
                     "' against wall-clock-named '" + other +
                     "': simulated cycles and host time are different "
                     "clock domains");
        }
    }
}

// --- sam-observer-discipline -------------------------------------------

void
checkObserverDiscipline(const SourceFile &f, Emit out)
{
    const auto &t = f.tokens;
    std::vector<std::size_t> attaches;
    bool detaches = false;
    for (std::size_t i = 0; i < t.size(); ++i) {
        const std::string &s = t[i].text;
        const std::string &prev = tok(f, i - 1);
        const bool call = tok(f, i + 1) == "(" &&
                          (prev == "." || prev == ">");
        if (s == "addCommandObserver" && call)
            attaches.push_back(i);
        if (s == "removeCommandObserver" && call)
            detaches = true;
    }
    for (std::size_t i : attaches) {
        if (!detaches) {
            emit(out, f, t[i].line, kObserver,
                 "addCommandObserver without a matching "
                 "removeCommandObserver in this translation unit; a "
                 "dangling observer is a use-after-free once the "
                 "observer is destroyed first");
        }
        // The observer callback must not reach back into the device:
        // scan the lambda body (if any) inside the call's arguments.
        std::size_t k = i + 2;
        int paren = 1;
        while (k < t.size() && paren > 0 && tok(f, k) != "[") {
            if (tok(f, k) == "(")
                ++paren;
            else if (tok(f, k) == ")")
                --paren;
            ++k;
        }
        if (k >= t.size() || paren == 0)
            continue; // No lambda argument.
        while (k < t.size() && tok(f, k) != "{")
            ++k;
        std::size_t body = k + 1;
        int brace = 1;
        while (body < t.size() && brace > 0) {
            const std::string &x = tok(f, body);
            if (x == "{")
                ++brace;
            else if (x == "}")
                --brace;
            else if ((x == "dev" || x == "device" || x == "device_") &&
                     (tok(f, body + 1) == "." ||
                      tok(f, body + 1) == "-")) {
                emit(out, f, t[body].line, kObserver,
                     "observer callback reaches back into the "
                     "observed device ('" + x +
                         "'); observers must record, not mutate "
                         "engine state");
            }
            ++body;
        }
    }
}

// --- sam-locking -------------------------------------------------------

void
checkLocking(const SourceFile &f, Emit out)
{
    static const std::set<std::string> kRaw = {
        "mutex",        "recursive_mutex", "timed_mutex",
        "shared_mutex", "lock_guard",      "unique_lock",
        "scoped_lock",  "condition_variable",
    };
    const auto &t = f.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (!kRaw.count(t[i].text))
            continue;
        if (tok(f, i - 1) != ":" || tok(f, i - 2) != ":" ||
            tok(f, i - 3) != "std")
            continue;
        emit(out, f, t[i].line, kLocking,
             "raw std::" + t[i].text +
                 "; use sam::Mutex / sam::MutexLock "
                 "(src/common/thread_annotations.hh) so the lock "
                 "discipline stays visible to -Wthread-safety");
    }
}

// --- sam-codec-construction --------------------------------------------

/** Files allowed to construct or own codecs directly: the registry
 *  itself, the codec implementations, and the EccEngine (whose
 *  PrivateCodec test seam owns one by design). */
bool
codecConstructionAllowed(const std::string &path)
{
    return startsWith(path, "src/ecc/codec_registry") ||
           startsWith(path, "src/ecc/reed_solomon") ||
           startsWith(path, "src/ecc/gf256") ||
           startsWith(path, "src/ecc/ecc_engine");
}

void
checkCodecConstruction(const SourceFile &f, Emit out)
{
    if (codecConstructionAllowed(f.path))
        return;
    const auto &t = f.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
        const std::string &s = t[i].text;
        if (s == "ReedSolomon") {
            // Reference/pointer use and forward declarations are fine;
            // anything else (ReedSolomon rs(18, 16), by-value member,
            // optional<ReedSolomon>, make_unique<ReedSolomon>)
            // rebuilds the generator and syndrome tables -- the cost
            // the shared CodecRegistry exists to pay once.
            const std::string &next = tok(f, i + 1);
            const std::string &prev = tok(f, i - 1);
            if (next == "&" || next == "*")
                continue;
            if (prev == "class" || prev == "struct")
                continue;
            emit(out, f, t[i].line, kCodec,
                 "direct ReedSolomon construction or ownership; "
                 "borrow the shared immutable codec via "
                 "CodecRegistry::reedSolomon(n, k) "
                 "(src/ecc/codec_registry.hh)");
        } else if (s == "GF256") {
            // GF256::mul(...) etc. is fine (tables are a function-local
            // static); `GF256 gf;` would build a private instance.
            const std::string &next = tok(f, i + 1);
            if (next == ":" || next == "&" || next == "*")
                continue;
            const std::string &prev = tok(f, i - 1);
            if (prev == "class" || prev == "struct")
                continue;
            emit(out, f, t[i].line, kCodec,
                 "GF256 instance declaration; use the shared "
                 "function-local-static tables through GF256's "
                 "static interface");
        }
    }
}

} // namespace

std::vector<std::string>
allCheckNames()
{
    return {kDeterminism, kCycle, kObserver, kLocking, kCodec};
}

std::vector<Finding>
runChecks(const std::vector<SourceFile> &files, const LintOptions &opt)
{
    Corpus corpus{files, {}, {}};
    buildSurface(corpus);
    buildCycleDirs(corpus);
    const auto enabled = [&](const char *name) {
        return opt.checks.empty() ||
               std::find(opt.checks.begin(), opt.checks.end(), name) !=
                   opt.checks.end();
    };
    std::vector<Finding> out;
    for (const SourceFile &f : files) {
        if (enabled(kDeterminism) &&
            (opt.allSurface || corpus.surface.count(f.path)))
            checkDeterminism(f, out);
        if (enabled(kCycle))
            checkCycleAccounting(corpus, f, out);
        if (enabled(kObserver))
            checkObserverDiscipline(f, out);
        if (enabled(kLocking))
            checkLocking(f, out);
        if (enabled(kCodec))
            checkCodecConstruction(f, out);
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const Finding &a, const Finding &b) {
                         if (a.path != b.path)
                             return a.path < b.path;
                         return a.line < b.line;
                     });
    return out;
}

} // namespace samlint
