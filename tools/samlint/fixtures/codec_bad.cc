// Fixture: direct codec construction outside the codec layer.
#include <memory>
#include <optional>

#include "src/ecc/reed_solomon.hh"

ReedSolomon globalCodec(18, 16);

struct Holder
{
    std::optional<ReedSolomon> maybe;
    std::unique_ptr<ReedSolomon> owned;
};

int
buildPrivately()
{
    ReedSolomon rs(36, 32);
    auto heap = std::make_unique<ReedSolomon>(72, 64);
    GF256 gf;
    return static_cast<int>(rs.n()) + static_cast<int>(heap->n());
}
