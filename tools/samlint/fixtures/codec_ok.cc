// Fixture: borrowed codecs and qualified static GF256 use are fine.
#include "src/ecc/codec_registry.hh"

class ReedSolomon;

int
borrowShared(const ReedSolomon *fallback)
{
    const ReedSolomon &rs = CodecRegistry::reedSolomon(18, 16);
    const ReedSolomon *active = fallback ? fallback : &rs;
    (void)active;
    return static_cast<int>(GF256::mul(3, 7));
}
