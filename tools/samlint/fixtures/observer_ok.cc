// Fixture: paired attach/detach with a record-only callback.
struct Cmd;

struct Dev
{
    template <typename F> void addCommandObserver(F f);
    template <typename F> void removeCommandObserver(F f);
};

struct Recorder
{
    int seen = 0;
};

void
pairedAttach(Dev &d, Recorder &rec)
{
    d.addCommandObserver([&rec](const Cmd &c) {
        (void)c;
        rec.seen += 1;
    });
    d.removeCommandObserver(nullptr);
}
