// Fixture: mutations inside the declaring directory are legitimate.
#include "tools/samlint/fixtures/engine/state.hh"

Cycle
EngineState::nextActivateAfter(Cycle gap) const
{
    return nextActivate + gap;
}

void
advance(EngineState &st, Cycle gap)
{
    st.nextActivate += gap;
    st.lastRefresh = st.nextActivate;
}
