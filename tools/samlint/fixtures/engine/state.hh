// Fixture: declares Cycle-typed fields; the declaring directory (and
// the engine path) may mutate them, everyone else may not.
#ifndef SAMLINT_FIXTURE_ENGINE_STATE_HH
#define SAMLINT_FIXTURE_ENGINE_STATE_HH

using Cycle = unsigned long long;

struct EngineState
{
    Cycle nextActivate = 0;
    Cycle lastRefresh = 0;

    Cycle nextActivateAfter(Cycle gap) const;
};

#endif
