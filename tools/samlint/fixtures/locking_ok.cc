// Fixture: the annotated wrappers keep -Wthread-safety effective.
namespace sam {
class Mutex
{
  public:
    void lock();
    void unlock();
};
class MutexLock
{
  public:
    explicit MutexLock(Mutex &m);
    ~MutexLock();
};
} // namespace sam

sam::Mutex gate;

int
criticalSection(int x)
{
    sam::MutexLock hold(gate);
    return x + 1;
}
