// Fixture: what the replay EventQueue must never be -- a "heap" whose
// order leaks allocation addresses or hash-table layout instead of the
// deterministic (cycle, source, seq) key.
#include <cstdint>
#include <map>
#include <unordered_map>

struct BadEvent
{
    std::uint64_t cycle = 0;
    std::uint32_t source = 0;
};

struct BadEventQueue
{
    // Pointer-keyed ordering: pop order follows malloc addresses.
    std::map<const BadEvent *, int> byAddress_;

    // Hash-ordered storage walked for the "minimum".
    std::unordered_map<std::uint64_t, BadEvent> bySlot_;

    const BadEvent *
    popMin()
    {
        const BadEvent *best = nullptr;
        for (auto it = bySlot_.begin(); it != bySlot_.end(); ++it) {
            if (best == nullptr || it->second.cycle < best->cycle)
                best = &it->second;
        }
        return best;
    }
};
