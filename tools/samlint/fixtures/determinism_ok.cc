// Fixture: keyed lookups and sanctioned randomness are clean.
#include <chrono>
#include <map>
#include <random>
#include <thread>
#include <unordered_map>
#include <vector>

struct OkDeterminism
{
    std::unordered_map<int, int> table_;
    std::vector<int> insertionOrder_;
    std::map<int, int> ordered_;

    // NOLINTNEXTLINE(sam-determinism): seeded from the run config.
    std::mt19937 rng_;

    // Retry-backoff jitter: a pure function of (seed, spec, attempt),
    // so a retried campaign replays its schedule exactly.
    // NOLINTNEXTLINE(sam-determinism): seeded per (spec, attempt).
    std::mt19937_64 backoffRng_;

    void
    waitBackoff(int delayMs)
    {
        // Host-side retry pacing; simulated time never observes it.
        // NOLINTNEXTLINE(sam-determinism): wall-clock sleep off the sim path.
        std::this_thread::sleep_for(std::chrono::milliseconds(delayMs));
    }

    long
    journalStamp()
    {
        // Journal ts_ms is provenance metadata: excluded from the spec
        // hash and from resume bit-identity comparisons.
        // NOLINTNEXTLINE(sam-determinism): timestamp is metadata only.
        return std::chrono::system_clock::now().time_since_epoch().count();
    }

    int
    lookups(int key)
    {
        // Keyed access does not expose hash order.
        const auto it = table_.find(key);
        int total = it == table_.end() ? 0 : it->second;
        table_[key] = total + 1;
        // Deterministic iteration goes through the side vector.
        for (int k : insertionOrder_)
            total += table_.count(k);
        for (const auto &kv : ordered_)
            total += kv.second;
        return total;
    }
};
