// Fixture: keyed lookups and sanctioned randomness are clean.
#include <map>
#include <random>
#include <unordered_map>
#include <vector>

struct OkDeterminism
{
    std::unordered_map<int, int> table_;
    std::vector<int> insertionOrder_;
    std::map<int, int> ordered_;

    // NOLINTNEXTLINE(sam-determinism): seeded from the run config.
    std::mt19937 rng_;

    int
    lookups(int key)
    {
        // Keyed access does not expose hash order.
        const auto it = table_.find(key);
        int total = it == table_.end() ? 0 : it->second;
        table_[key] = total + 1;
        // Deterministic iteration goes through the side vector.
        for (int k : insertionOrder_)
            total += table_.count(k);
        for (const auto &kv : ordered_)
            total += kv.second;
        return total;
    }
};
