// Fixture: attach with no detach, and a callback that reaches back
// into the observed device.
struct Cmd;

struct Dev
{
    template <typename F> void addCommandObserver(F f);
    template <typename F> void removeCommandObserver(F f);
    void reset();
};

void
leakyAttach(Dev &dev)
{
    dev.addCommandObserver([&](const Cmd &c) {
        (void)c;
        dev.reset();
    });
}
