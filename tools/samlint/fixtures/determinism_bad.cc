// Fixture: every construct here must trip sam-determinism.
#include <chrono>
#include <cstdlib>
#include <map>
#include <random>
#include <unordered_map>

struct Device;

struct BadDeterminism
{
    std::unordered_map<int, int> table_;
    std::map<Device *, int> byPtr_;

    int
    seedFromAmbient()
    {
        std::mt19937 gen(std::random_device{}());
        const auto now = std::chrono::steady_clock::now();
        (void)now;
        return std::rand() + static_cast<int>(gen());
    }

    int
    sumInHashOrder()
    {
        int total = 0;
        for (const auto &kv : table_)
            total += kv.second;
        auto it = table_.begin();
        (void)it;
        return total;
    }
};
