// Fixture: every construct here must trip sam-determinism.
#include <chrono>
#include <cstdlib>
#include <map>
#include <random>
#include <thread>
#include <unordered_map>

struct Device;

struct BadDeterminism
{
    std::unordered_map<int, int> table_;
    std::map<Device *, int> byPtr_;

    int
    seedFromAmbient()
    {
        std::mt19937 gen(std::random_device{}());
        const auto now = std::chrono::steady_clock::now();
        (void)now;
        return std::rand() + static_cast<int>(gen());
    }

    long
    unstampedJournalRecord()
    {
        // Wall-clock timestamp with no justifying NOLINT.
        return std::chrono::system_clock::now()
            .time_since_epoch()
            .count();
    }

    void
    ambientBackoff()
    {
        // Environment-driven, unseeded retry pacing.
        const int delay = std::getenv("SAM_DELAY") ? 10 : 20;
        std::this_thread::sleep_for(std::chrono::milliseconds(delay));
    }

    int
    sumInHashOrder()
    {
        int total = 0;
        for (const auto &kv : table_)
            total += kv.second;
        auto it = table_.begin();
        (void)it;
        return total;
    }
};
