// Fixture: reading Cycle state and comparing cycle-domain values from
// another directory is fine; only mutation and cross-domain
// comparisons are policed.
#include "tools/samlint/fixtures/engine/state.hh"

Cycle
report(const EngineState &st, Cycle now)
{
    if (st.nextActivate > now)
        return st.nextActivate - now;
    return st.lastRefresh;
}
