// Fixture: raw standard-library locking primitives.
#include <mutex>

std::mutex gate;

int
criticalSection(int x)
{
    std::lock_guard<std::mutex> hold(gate);
    return x + 1;
}
