// Fixture: mutates Cycle state from outside the declaring module and
// compares simulated cycles against a wall-clock value.
#include "tools/samlint/fixtures/engine/state.hh"

bool
tamper(EngineState &st, Cycle now, unsigned long long wallDeadlineMs)
{
    st.nextActivate = now + 10;
    st.lastRefresh += 5;
    return st.nextActivate > wallDeadlineMs;
}
