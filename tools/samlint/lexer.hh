/**
 * @file
 * Token-level C++ reader for samlint.
 *
 * samlint's checks are project-convention checks, not type checks, so
 * a full frontend is not required (and the container toolchain has no
 * clang libTooling; see clang_plugin/ for the optional tidy module).
 * The lexer produces a comment- and literal-stripped token stream with
 * line numbers, the file's `#include "src/..."` edges (for the
 * bit-identity surface reachability walk), and NOLINT / NOLINTNEXTLINE
 * suppressions parsed out of comments, clang-tidy style:
 *
 *     overlay_.begin(); // NOLINT(sam-determinism): justified because...
 *     // NOLINTNEXTLINE(sam-determinism)
 *
 * A bare NOLINT (no check list) suppresses every check on that line.
 */

#ifndef SAM_TOOLS_SAMLINT_LEXER_HH
#define SAM_TOOLS_SAMLINT_LEXER_HH

#include <string>
#include <unordered_map>
#include <vector>

namespace samlint {

/** One token: an identifier/number or a single punctuation char. */
struct Token
{
    std::string text;
    unsigned line = 0;
};

/** One lexed translation unit (or header). */
struct SourceFile
{
    /** Repo-relative path with forward slashes (e.g. "src/sim/x.cc"). */
    std::string path;
    std::vector<Token> tokens;
    /** Targets of `#include "..."` directives, as written. */
    std::vector<std::string> includes;
    /** Line -> suppressed check names ("" suppresses all checks). */
    std::unordered_map<unsigned, std::vector<std::string>> nolint;

    /** True when `check` findings on `line` are suppressed. */
    bool suppressed(unsigned line, const std::string &check) const;

    /** Directory part of `path` ("src/sim" for "src/sim/x.cc"). */
    std::string dir() const;
};

/** Lex the file at `abs_path`, recording `rel_path` as its identity. */
SourceFile lexFile(const std::string &abs_path,
                   const std::string &rel_path);

/** Lex from an in-memory buffer (tests). */
SourceFile lexString(const std::string &text,
                     const std::string &rel_path);

} // namespace samlint

#endif // SAM_TOOLS_SAMLINT_LEXER_HH
