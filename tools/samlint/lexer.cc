#include "tools/samlint/lexer.hh"

#include <cctype>
#include <fstream>
#include <sstream>

namespace samlint {

namespace {

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::string
trim(const std::string &s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

/** Record NOLINT markers found in one comment's text. */
void
recordNolint(SourceFile &out, const std::string &comment,
             unsigned comment_line)
{
    static const std::string kNext = "NOLINTNEXTLINE";
    static const std::string kHere = "NOLINT";
    bool next_line = false;
    std::size_t at = comment.find(kNext);
    std::size_t tail;
    if (at != std::string::npos) {
        next_line = true;
        tail = at + kNext.size();
    } else {
        at = comment.find(kHere);
        if (at == std::string::npos)
            return;
        tail = at + kHere.size();
    }
    std::vector<std::string> checks;
    if (tail < comment.size() && comment[tail] == '(') {
        const std::size_t close = comment.find(')', tail);
        if (close != std::string::npos) {
            std::string list = comment.substr(tail + 1,
                                              close - tail - 1);
            std::size_t pos = 0;
            while (pos <= list.size()) {
                const std::size_t comma = list.find(',', pos);
                const std::string item = trim(
                    list.substr(pos, comma == std::string::npos
                                         ? std::string::npos
                                         : comma - pos));
                if (!item.empty())
                    checks.push_back(item);
                if (comma == std::string::npos)
                    break;
                pos = comma + 1;
            }
        }
    }
    if (checks.empty())
        checks.push_back(""); // Bare NOLINT: everything.
    const unsigned target = comment_line + (next_line ? 1 : 0);
    auto &slot = out.nolint[target];
    slot.insert(slot.end(), checks.begin(), checks.end());
}

} // namespace

bool
SourceFile::suppressed(unsigned line, const std::string &check) const
{
    const auto it = nolint.find(line);
    if (it == nolint.end())
        return false;
    for (const std::string &c : it->second) {
        if (c.empty() || c == check)
            return true;
    }
    return false;
}

std::string
SourceFile::dir() const
{
    const std::size_t slash = path.rfind('/');
    return slash == std::string::npos ? std::string()
                                      : path.substr(0, slash);
}

SourceFile
lexString(const std::string &s, const std::string &rel_path)
{
    SourceFile out;
    out.path = rel_path;
    unsigned line = 1;
    std::size_t i = 0;
    const std::size_t n = s.size();
    bool line_start = true; // Only whitespace so far on this line.

    const auto countLines = [&](std::size_t from, std::size_t to) {
        for (std::size_t k = from; k < to; ++k) {
            if (s[k] == '\n')
                ++line;
        }
    };

    while (i < n) {
        const char c = s[i];
        if (c == '\n') {
            ++line;
            ++i;
            line_start = true;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        // Comments (NOLINT markers live here).
        if (c == '/' && i + 1 < n && s[i + 1] == '/') {
            std::size_t end = s.find('\n', i);
            if (end == std::string::npos)
                end = n;
            recordNolint(out, s.substr(i, end - i), line);
            i = end;
            continue;
        }
        if (c == '/' && i + 1 < n && s[i + 1] == '*') {
            std::size_t end = s.find("*/", i + 2);
            if (end == std::string::npos)
                end = n;
            else
                end += 2;
            recordNolint(out, s.substr(i, end - i), line);
            countLines(i, end);
            i = end;
            continue;
        }
        // Preprocessor directives: capture includes, emit no tokens.
        if (c == '#' && line_start) {
            std::size_t end = i;
            while (end < n) {
                end = s.find('\n', end);
                if (end == std::string::npos) {
                    end = n;
                    break;
                }
                // Honor line continuations.
                std::size_t back = end;
                while (back > i &&
                       std::isspace(static_cast<unsigned char>(
                           s[back - 1])) &&
                       s[back - 1] != '\n')
                    --back;
                if (back > i && s[back - 1] == '\\') {
                    ++end;
                    continue;
                }
                break;
            }
            const std::string text = s.substr(i, end - i);
            std::size_t inc = text.find("include");
            if (inc != std::string::npos) {
                const std::size_t q1 = text.find('"', inc);
                if (q1 != std::string::npos) {
                    const std::size_t q2 = text.find('"', q1 + 1);
                    if (q2 != std::string::npos)
                        out.includes.push_back(
                            text.substr(q1 + 1, q2 - q1 - 1));
                }
            }
            countLines(i, end);
            i = end;
            continue;
        }
        // String and char literals: stripped. Raw strings carry their
        // own delimiter.
        if (c == '"') {
            const bool raw =
                !out.tokens.empty() && out.tokens.back().line == line &&
                (out.tokens.back().text == "R" ||
                 (out.tokens.back().text.size() > 1 &&
                  out.tokens.back().text.back() == 'R'));
            if (raw) {
                const std::size_t open = s.find('(', i);
                std::string delim =
                    open == std::string::npos
                        ? std::string()
                        : s.substr(i + 1, open - i - 1);
                const std::string closer = ")" + delim + "\"";
                std::size_t end =
                    open == std::string::npos
                        ? std::string::npos
                        : s.find(closer, open + 1);
                end = end == std::string::npos ? n
                                               : end + closer.size();
                countLines(i, end);
                i = end;
            } else {
                std::size_t k = i + 1;
                while (k < n && s[k] != '"') {
                    if (s[k] == '\\')
                        ++k;
                    ++k;
                }
                countLines(i, std::min(k + 1, n));
                i = std::min(k + 1, n);
            }
            line_start = false;
            continue;
        }
        if (c == '\'') {
            std::size_t k = i + 1;
            while (k < n && s[k] != '\'') {
                if (s[k] == '\\')
                    ++k;
                ++k;
            }
            i = std::min(k + 1, n);
            line_start = false;
            continue;
        }
        line_start = false;
        if (identChar(c)) {
            std::size_t k = i;
            while (k < n && identChar(s[k]))
                ++k;
            out.tokens.push_back({s.substr(i, k - i), line});
            i = k;
            continue;
        }
        out.tokens.push_back({std::string(1, c), line});
        ++i;
    }
    return out;
}

SourceFile
lexFile(const std::string &abs_path, const std::string &rel_path)
{
    std::ifstream in(abs_path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return lexString(buf.str(), rel_path);
}

} // namespace samlint
