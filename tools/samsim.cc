/**
 * @file
 * samsim -- command-line driver for the SAM simulator.
 *
 * Run any benchmark query (or a parameterized arithmetic/aggregate
 * query) on any design, optionally comparing against the row-store
 * baseline, injecting chip failures, or dumping detailed statistics.
 *
 * Examples:
 *   samsim --list
 *   samsim --design SAM-en --query Q3
 *   samsim --design SAM-IO --query Q1 --compare --ta 8192
 *   samsim --design SAM-en --query arith --proj 16 --sel 0.4
 *   samsim --design SAM-en --query Q3 --fail-chip 5 --ecc SSC
 *   samsim --design RC-NVM-wd --query Qs3 --stats
 */

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/common/json.hh"
#include "src/common/logging.hh"
#include "src/core/session.hh"
#include "src/runner/campaign.hh"
#include "src/sim/system.hh"
#include "src/telemetry/perfetto.hh"

namespace {

using namespace sam;

[[noreturn]] void
usage(int code)
{
    std::fprintf(
        code == 0 ? stdout : stderr,
        "usage: samsim [options]\n"
        "  --list                 list designs, queries, ECC schemes\n"
        "  --design <name>        design to simulate (default SAM-en)\n"
        "  --query <name>         Q1..Q12, Qs1..Qs6, arith, aggr\n"
        "  --proj <n> --sel <f>   arith/aggr parameters\n"
        "  --ecc <scheme>         SSC-DSD (default), SSC, SSC-32,\n"
        "                         Bamboo-72, SEC-DED, none\n"
        "  --tech <DRAM|RRAM>     substrate override\n"
        "  --ta <n> --tb <n>      record counts (default 16384/16384)\n"
        "  --scale <quick|full|paper>  table scale preset; paper is\n"
        "                         the source paper's 10M records per\n"
        "                         table (explicit --ta/--tb win)\n"
        "  --cores <n>            cores (default 4)\n"
        "  --mshrs <n>            outstanding misses/core (default 8)\n"
        "  --fail-chip <c>        inject a whole-chip failure\n"
        "  --fault-model <name>   live faults: none, transient,\n"
        "                         stuckat, chipkill\n"
        "  --fit <f>              transient flips per Mcycle (def. 10)\n"
        "  --chipkill-at <cycle>  kill a chip mid-run (implies\n"
        "                         --fault-model chipkill)\n"
        "  --chipkill-chip <c>    which chip dies (default 5)\n"
        "  --fault-seed <n>       fault injector RNG seed\n"
        "  --compare              also run the row-store baseline\n"
        "  --jobs <n>             with --compare: run design and\n"
        "                         baseline in parallel (default 1)\n"
        "  --no-verify            skip the reference-result check\n"
        "  --check                print a protocol-checker summary\n"
        "  --no-check             disable the protocol-checker oracle\n"
        "  --stats                print detailed statistics\n"
        "  --telemetry <file>     write a sam-telemetry-v1 summary\n"
        "                         (latency histograms + time series)\n"
        "  --perfetto <file>      write a Chrome/Perfetto trace-event\n"
        "                         JSON of the DRAM command stream\n"
        "                         (open in ui.perfetto.dev)\n"
        "  --telemetry-window <n> time-series window width in cycles\n"
        "                         (default 4096)\n"
        "  --engine <step|event>  phase-2 replay loop (default event;\n"
        "                         both are command-stream identical)\n");
    std::exit(code);
}

/** One-line usage diagnostic; exit 2 (bench_diff.py convention). */
[[noreturn]] void
usageError(const std::string &message)
{
    std::fprintf(stderr, "samsim: %s\n", message.c_str());
    std::exit(2);
}

/** Strict bounded integer flag parser: garbage and 0/negative die. */
std::uint64_t
parseCount(const char *flag, const char *text, std::uint64_t lo,
           std::uint64_t hi)
{
    char *end = nullptr;
    errno = 0;
    const long long v = std::strtoll(text, &end, 10);
    if (end == text || *end != '\0' || errno != 0 || v < 0 ||
        static_cast<std::uint64_t>(v) < lo ||
        static_cast<std::uint64_t>(v) > hi)
        usageError(std::string(flag) + " wants an integer in [" +
                   std::to_string(lo) + ", " + std::to_string(hi) +
                   "], got '" + text + "'");
    return static_cast<std::uint64_t>(v);
}

/** Strict bounded float flag parser. */
double
parseFraction(const char *flag, const char *text, double lo, double hi)
{
    char *end = nullptr;
    errno = 0;
    const double v = std::strtod(text, &end);
    if (end == text || *end != '\0' || errno != 0 || v < lo || v > hi)
        usageError(std::string(flag) + " wants a number in [" +
                   std::to_string(lo) + ", " + std::to_string(hi) +
                   "], got '" + text + "'");
    return v;
}

DesignKind
parseDesign(const std::string &name)
{
    for (DesignKind d :
         {DesignKind::Baseline, DesignKind::RcNvmBit,
          DesignKind::RcNvmWord, DesignKind::GsDram,
          DesignKind::GsDramEcc, DesignKind::SamSub, DesignKind::SamIo,
          DesignKind::SamEn, DesignKind::Ideal}) {
        if (designName(d) == name)
            return d;
    }
    fatal("unknown design '", name, "' (try --list)");
}

EccScheme
parseEcc(const std::string &name)
{
    for (EccScheme e :
         {EccScheme::None, EccScheme::SecDed, EccScheme::Ssc,
          EccScheme::SscDsd, EccScheme::Ssc32, EccScheme::Bamboo72}) {
        if (eccSchemeName(e) == name)
            return e;
    }
    fatal("unknown ECC scheme '", name, "' (try --list)");
}

Query
parseQuery(const std::string &name, unsigned proj, double sel,
           unsigned ta_fields)
{
    if (name == "arith")
        return arithQuery(proj, sel, ta_fields);
    if (name == "aggr")
        return aggrQuery(proj, sel, ta_fields);
    for (const Query &q : benchmarkQQueries()) {
        if (q.name == name)
            return q;
    }
    for (const Query &q : benchmarkQsQueries()) {
        if (q.name == name)
            return q;
    }
    fatal("unknown query '", name, "' (try --list)");
}

void
listEverything()
{
    std::printf("designs:");
    for (DesignKind d :
         {DesignKind::Baseline, DesignKind::RcNvmBit,
          DesignKind::RcNvmWord, DesignKind::GsDram,
          DesignKind::GsDramEcc, DesignKind::SamSub, DesignKind::SamIo,
          DesignKind::SamEn, DesignKind::Ideal}) {
        std::printf(" %s", designName(d).c_str());
    }
    std::printf("\nqueries:");
    for (const Query &q : benchmarkQQueries())
        std::printf(" %s", q.name.c_str());
    for (const Query &q : benchmarkQsQueries())
        std::printf(" %s", q.name.c_str());
    std::printf(" arith aggr\necc:");
    for (EccScheme e :
         {EccScheme::None, EccScheme::SecDed, EccScheme::Ssc,
          EccScheme::SscDsd, EccScheme::Ssc32, EccScheme::Bamboo72}) {
        std::printf(" %s", eccSchemeName(e).c_str());
    }
    std::printf("\n");
}

void
printRun(const char *label, const RunStats &r)
{
    std::printf("%-10s %10llu cycles  %8.1f mW  rows %llu  "
                "hit %.0f%%  rd %llu  srd %llu  wr %llu  swr %llu\n",
                label, static_cast<unsigned long long>(r.cycles),
                r.power.totalPowerMw(),
                static_cast<unsigned long long>(r.result.rows),
                r.rowHitRate() * 100.0,
                static_cast<unsigned long long>(r.memReads),
                static_cast<unsigned long long>(r.strideReads),
                static_cast<unsigned long long>(r.memWrites),
                static_cast<unsigned long long>(r.strideWrites));
}

void
printStats(const RunStats &r)
{
    std::printf("\ndetailed statistics:\n");
    std::printf("  activates            %12llu\n",
                static_cast<unsigned long long>(r.activates));
    std::printf("  row hits / misses    %12llu / %llu\n",
                static_cast<unsigned long long>(r.rowHits),
                static_cast<unsigned long long>(r.rowMisses));
    std::printf("  I/O mode switches    %12llu\n",
                static_cast<unsigned long long>(r.modeSwitches));
    std::printf("  ECC corrected lines  %12llu\n",
                static_cast<unsigned long long>(r.eccCorrectedLines));
    std::printf("  ECC uncorrectable    %12llu\n",
                static_cast<unsigned long long>(r.eccUncorrectable));
    std::printf("  RAS scrub writebacks %12llu\n",
                static_cast<unsigned long long>(r.scrubWritebacks));
    std::printf("  RAS read retries     %12llu\n",
                static_cast<unsigned long long>(r.readRetries));
    std::printf("  RAS poisoned reads   %12llu\n",
                static_cast<unsigned long long>(r.poisonedReads));
    std::printf("  RAS lines retired    %12llu\n",
                static_cast<unsigned long long>(r.linesRetired));
    std::printf("  energy (uJ)          %15.3f\n",
                r.power.totalEnergyPj() / 1e6);
    std::printf("    activation         %15.3f\n",
                r.power.actEnergyPj / 1e6);
    std::printf("    read/write bursts  %15.3f\n",
                r.power.rdwrEnergyPj / 1e6);
    std::printf("    background         %15.3f\n",
                r.power.backgroundEnergyPj / 1e6);
    std::printf("    refresh            %15.3f\n",
                r.power.refreshEnergyPj / 1e6);
    std::printf("\nraw counters:\n%s", r.statsText.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace sam;
    setQuietLogging(true);

    SimConfig cfg;
    std::string design_name = "SAM-en";
    std::string query_name = "Q1";
    std::string ecc_name = "SSC-DSD";
    std::string tech_name;
    unsigned proj = 8;
    double sel = 0.25;
    int fail_chip = -1;
    unsigned jobs = 1;
    std::string scale;
    bool ta_given = false;
    bool tb_given = false;
    bool compare = false;
    bool verify = true;
    bool stats = false;
    bool check_summary = false;
    std::string telemetry_path;
    std::string perfetto_path;

    auto next_arg = [&](int &i, const char *flag) -> const char * {
        if (i + 1 >= argc)
            usageError(std::string(flag) + " wants a value");
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--help" || a == "-h")
            usage(0);
        else if (a == "--list") {
            listEverything();
            return 0;
        } else if (a == "--design")
            design_name = next_arg(i, "--design");
        else if (a == "--query")
            query_name = next_arg(i, "--query");
        else if (a == "--ecc")
            ecc_name = next_arg(i, "--ecc");
        else if (a == "--tech")
            tech_name = next_arg(i, "--tech");
        else if (a == "--proj")
            proj = static_cast<unsigned>(parseCount(
                "--proj", next_arg(i, "--proj"), 1, 4096));
        else if (a == "--sel")
            sel = parseFraction("--sel", next_arg(i, "--sel"), 0.0,
                                1.0);
        else if (a == "--ta") {
            cfg.taRecords = parseCount("--ta", next_arg(i, "--ta"),
                                       16, 1ull << 32);
            ta_given = true;
        } else if (a == "--tb") {
            cfg.tbRecords = parseCount("--tb", next_arg(i, "--tb"),
                                       16, 1ull << 32);
            tb_given = true;
        } else if (a == "--scale") {
            scale = next_arg(i, "--scale");
            if (scale != "quick" && scale != "full" && scale != "paper")
                usageError("--scale wants quick, full, or paper, got "
                           "'" + scale + "'");
        }
        else if (a == "--cores")
            cfg.cores = static_cast<unsigned>(parseCount(
                "--cores", next_arg(i, "--cores"), 1, 1024));
        else if (a == "--mshrs")
            cfg.mshrsPerCore = static_cast<unsigned>(parseCount(
                "--mshrs", next_arg(i, "--mshrs"), 1, 1024));
        else if (a == "--fail-chip")
            fail_chip = static_cast<int>(parseCount(
                "--fail-chip", next_arg(i, "--fail-chip"), 0, 1024));
        else if (a == "--fault-model")
            cfg.faults.model =
                parseFaultModel(next_arg(i, "--fault-model"));
        else if (a == "--fit")
            cfg.faults.fitPerMcycle = parseFraction(
                "--fit", next_arg(i, "--fit"), 0.0, 1e9);
        else if (a == "--chipkill-at") {
            cfg.faults.model = FaultModel::Chipkill;
            // NOLINTNEXTLINE(sam-cycle-accounting): pre-run config.
            cfg.faults.chipkillAt = parseCount(
                "--chipkill-at", next_arg(i, "--chipkill-at"), 0,
                ~0ull);
        } else if (a == "--chipkill-chip")
            cfg.faults.chipkillChip = static_cast<unsigned>(
                parseCount("--chipkill-chip",
                           next_arg(i, "--chipkill-chip"), 0, 1024));
        else if (a == "--fault-seed")
            cfg.faults.seed = parseCount(
                "--fault-seed", next_arg(i, "--fault-seed"), 0, ~0ull);
        else if (a == "--jobs")
            jobs = static_cast<unsigned>(parseCount(
                "--jobs", next_arg(i, "--jobs"), 1, 4096));
        else if (a == "--compare")
            compare = true;
        else if (a == "--no-verify")
            verify = false;
        else if (a == "--check")
            check_summary = true;
        else if (a == "--no-check")
            cfg.check = false;
        else if (a == "--stats")
            stats = true;
        else if (a == "--telemetry") {
            telemetry_path = next_arg(i, "--telemetry");
            cfg.telemetry.enabled = true;
        } else if (a == "--perfetto") {
            perfetto_path = next_arg(i, "--perfetto");
            cfg.telemetry.enabled = true;
            cfg.telemetry.commandTrace = true;
        } else if (a == "--telemetry-window")
            // NOLINTNEXTLINE(sam-cycle-accounting): pre-run config.
            cfg.telemetry.windowCycles = parseCount(
                "--telemetry-window",
                next_arg(i, "--telemetry-window"), 16, 1ull << 32);
        else if (a == "--engine") {
            const std::string v = next_arg(i, "--engine");
            if (v != "step" && v != "event")
                usageError("--engine wants step or event, got '" + v +
                           "'");
            cfg.engine = parseReplayEngine(v);
        } else
            usageError("unknown option '" + a + "' (try --help)");
    }

    // Scale presets fill in whatever --ta/--tb did not pin explicitly.
    if (!scale.empty()) {
        std::uint64_t ta = cfg.taRecords, tb = cfg.tbRecords;
        if (scale == "quick") {
            ta = 4096;
            tb = 8192;
        } else if (scale == "full") {
            ta = 16384;
            tb = 16384;
        } else {
            ta = tb = 10'000'000; // paper Table 2
        }
        if (!ta_given)
            cfg.taRecords = ta;
        if (!tb_given)
            cfg.tbRecords = tb;
    }

    try {
        cfg.ecc = parseEcc(ecc_name);
        if (!tech_name.empty()) {
            cfg.overrideTech = true;
            cfg.tech = tech_name == "RRAM" ? MemTech::RRAM
                                           : MemTech::DRAM;
        }
        const DesignKind design = parseDesign(design_name);
        const Query query =
            parseQuery(query_name, proj, sel, cfg.taFields);

        Session session(cfg);
        std::printf("%s on %s (%s, Ta=%llu Tb=%llu records)\n",
                    query.name.c_str(), design_name.c_str(),
                    eccSchemeName(cfg.ecc).c_str(),
                    static_cast<unsigned long long>(cfg.taRecords),
                    static_cast<unsigned long long>(cfg.tbRecords));

        RunStats run;
        RunStats base;
        bool have_base = false;
        if (compare && jobs != 1 && fail_chip < 0) {
            // Fan the design and baseline runs across a pool; each
            // executes in a fresh single-threaded Session sharing the
            // materialized-table cache, so the printed numbers match
            // the serial path exactly.
            CampaignRunner runner(jobs);
            SimConfig dcfg = cfg;
            dcfg.design = design;
            SimConfig bcfg = cfg;
            bcfg.design = DesignKind::Baseline;
            std::vector<RunSpec> specs;
            specs.push_back(RunSpec{design_name, dcfg, query, false});
            specs.push_back(RunSpec{"baseline", bcfg, query, false});
            std::vector<RunResult> results = runner.run(specs);
            run = std::move(results[0].stats);
            base = std::move(results[1].stats);
            have_base = true;
        } else {
            if (fail_chip >= 0) {
                // Materialize first, then break the chip.
                session.system(design).runQuery(query);
                session.system(design).dataPath().failChip(
                    static_cast<unsigned>(fail_chip));
                std::printf("injected whole-chip failure on chip %d\n",
                            fail_chip);
            }
            run = session.run(design, query);
        }
        printRun(design_name.c_str(), run);

        if (check_summary) {
            // A violation would have aborted the run inside runQuery;
            // reaching this point means the stream validated clean.
            if (cfg.check) {
                std::printf("protocol check: %llu commands validated, "
                            "0 violations\n",
                            static_cast<unsigned long long>(
                                run.checkedCommands));
            } else {
                std::printf("protocol check: disabled (--no-check)\n");
            }
        }

        if (verify) {
            const QueryResult expect = referenceResult(
                query,
                TableSchema{"Ta", cfg.taFields, cfg.taRecords},
                TableSchema{"Tb", cfg.tbFields, cfg.tbRecords});
            if (run.result.degraded()) {
                std::printf("result: DEGRADED -- %llu rows poisoned "
                            "(graceful failure; no silent "
                            "corruption)\n",
                            static_cast<unsigned long long>(
                                run.result.poisonedRows));
            } else if (run.result == expect) {
                std::printf("result: VERIFIED against reference "
                            "executor\n");
            } else {
                std::printf("result: MISMATCH (rows %llu vs %llu, "
                            "checksum %llu vs %llu)%s\n",
                            static_cast<unsigned long long>(
                                run.result.rows),
                            static_cast<unsigned long long>(expect.rows),
                            static_cast<unsigned long long>(
                                run.result.checksum),
                            static_cast<unsigned long long>(
                                expect.checksum),
                            fail_chip >= 0 ? "  [expected: injected "
                                             "fault on unprotected "
                                             "config?]"
                                           : "");
            }
        }

        if (compare) {
            if (!have_base)
                base = session.run(DesignKind::Baseline, query);
            printRun("baseline", base);
            std::printf("speedup: %.2fx   energy efficiency: %.2fx\n",
                        static_cast<double>(base.cycles) /
                            static_cast<double>(run.cycles),
                        base.power.totalEnergyPj() /
                            run.power.totalEnergyPj());
        }
        if (stats)
            printStats(run);

        if (run.telemetry) {
            if (!telemetry_path.empty()) {
                writeJsonFile(telemetry_path,
                              run.telemetry->summaryJson());
                std::printf("telemetry summary written to %s\n",
                            telemetry_path.c_str());
            }
            if (!perfetto_path.empty()) {
                writeJsonFile(perfetto_path,
                              perfettoTraceJson(*run.telemetry));
                std::printf("perfetto trace written to %s "
                            "(open in ui.perfetto.dev)\n",
                            perfetto_path.c_str());
            }
        }
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
    return 0;
}
