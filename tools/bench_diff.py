#!/usr/bin/env python3
"""Compare two sam-campaign JSON files and flag cycle regressions.

Usage:
    tools/bench_diff.py BASELINE.json CURRENT.json [--threshold PCT]

Both files must be `sam-campaign-v1` documents (written by samcampaign
or by the bench drivers via SAM_BENCH_JSON). Runs are matched by their
`id`. A run whose cycle count grew by more than the threshold
(default 5%) is a regression; a run present in the baseline but missing
from the current file is also an error, since silently dropping a
campaign point would hide a regression. Newly added runs are reported
but never fail the diff.

Exit status: 0 when clean, 1 on regression or missing run, 2 on usage
or schema errors.
"""

import argparse
import json
import sys


SCHEMA = "sam-campaign-v1"


def die(msg):
    """Schema/usage error: diagnostic on stderr, exit status 2."""
    print(f"bench_diff: {msg}", file=sys.stderr)
    sys.exit(2)


def numeric_cycles(path, run_id, run):
    cycles = run.get("cycles")
    # bool is an int subclass; `"cycles": true` is still a typo.
    if isinstance(cycles, bool) or not isinstance(cycles, (int, float)):
        die(f"{path}: run {run_id!r}: cycles is {cycles!r}, "
            f"expected a number")
    return cycles


def load_campaign(path, *, is_baseline=False):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        die(f"cannot read {path}: {exc}")
    if not isinstance(doc, dict):
        die(f"{path}: top level is {type(doc).__name__}, "
            f"expected an object")
    if doc.get("schema") != SCHEMA:
        die(f"{path}: expected schema {SCHEMA!r}, "
            f"got {doc.get('schema')!r}")
    raw_runs = doc.get("runs", [])
    if not isinstance(raw_runs, list):
        die(f"{path}: 'runs' is {type(raw_runs).__name__}, "
            f"expected a list")
    if is_baseline and not raw_runs:
        die(f"{path}: baseline has no runs -- an empty baseline "
            f"would vacuously pass every diff; refresh it")
    runs = {}
    for run in raw_runs:
        if not isinstance(run, dict):
            die(f"{path}: run entry is {type(run).__name__}, "
                f"expected an object")
        run_id = run.get("id")
        if not run_id:
            die(f"{path}: run without an id")
        if run_id in runs:
            die(f"{path}: duplicate run id {run_id!r}")
        numeric_cycles(path, run_id, run)
        runs[run_id] = run
    return doc, runs


def main():
    parser = argparse.ArgumentParser(
        description="flag cycle regressions between two campaign files")
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("current", help="freshly produced JSON")
    parser.add_argument("--threshold", type=float, default=5.0,
                        help="regression threshold in percent "
                             "(default: %(default)s)")
    args = parser.parse_args()
    if args.threshold < 0:
        die(f"threshold must be >= 0, got {args.threshold:g}")

    base_doc, base_runs = load_campaign(args.baseline, is_baseline=True)
    cur_doc, cur_runs = load_campaign(args.current)

    base_scale = base_doc.get("scale")
    cur_scale = cur_doc.get("scale")
    if base_scale != cur_scale:
        die(f"scale mismatch: baseline is {base_scale!r}, current is "
            f"{cur_scale!r} -- cycle counts are not comparable")

    regressions = []
    improvements = []
    skipped = []
    missing = sorted(set(base_runs) - set(cur_runs))
    added = sorted(set(cur_runs) - set(base_runs))

    for run_id in sorted(set(base_runs) & set(cur_runs)):
        base_cycles = base_runs[run_id]["cycles"]
        cur_cycles = cur_runs[run_id]["cycles"]
        if base_cycles <= 0:
            # A zero-cycle baseline run never executed; a percentage
            # against it is meaningless, but hide nothing.
            skipped.append(run_id)
            continue
        delta_pct = 100.0 * (cur_cycles - base_cycles) / base_cycles
        entry = (run_id, base_cycles, cur_cycles, delta_pct)
        if delta_pct > args.threshold:
            regressions.append(entry)
        elif delta_pct < -args.threshold:
            improvements.append(entry)

    name = cur_doc.get("campaign", "?")
    compared = len(set(base_runs) & set(cur_runs))
    print(f"bench_diff: campaign {name!r}: {compared} runs compared, "
          f"threshold {args.threshold:g}%")

    for run_id, base_c, cur_c, pct in sorted(
            regressions, key=lambda e: -e[3]):
        print(f"  REGRESSION {run_id}: {base_c} -> {cur_c} cycles "
              f"({pct:+.2f}%)")
    for run_id, base_c, cur_c, pct in sorted(
            improvements, key=lambda e: e[3]):
        print(f"  improved   {run_id}: {base_c} -> {cur_c} cycles "
              f"({pct:+.2f}%)")
    for run_id in skipped:
        print(f"  skipped    {run_id}: non-positive baseline cycle "
              f"count, percentage undefined")
    for run_id in missing:
        print(f"  MISSING    {run_id}: in baseline but not in current")
    for run_id in added:
        print(f"  new        {run_id}: not in baseline "
              f"(refresh the baseline to track it)")

    if regressions or missing:
        print(f"bench_diff: FAIL ({len(regressions)} regression(s), "
              f"{len(missing)} missing run(s))")
        return 1
    print("bench_diff: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
