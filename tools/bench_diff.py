#!/usr/bin/env python3
"""Compare two sam-campaign JSON files and flag cycle regressions.

Usage:
    tools/bench_diff.py BASELINE.json CURRENT.json [--threshold PCT]

Both files must be `sam-campaign-v1` documents (written by samcampaign
or by the bench drivers via SAM_BENCH_JSON). Runs are matched by their
`id`. A run whose cycle count grew by more than the threshold
(default 5%) is a regression; a run present in the baseline but missing
from the current file is also an error, since silently dropping a
campaign point would hide a regression. Newly added runs are reported
but never fail the diff.

Exit status: 0 when clean, 1 on regression or missing run, 2 on usage
or schema errors.
"""

import argparse
import json
import sys


SCHEMA = "sam-campaign-v1"


def load_campaign(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        sys.exit(f"bench_diff: cannot read {path}: {exc}")
    if doc.get("schema") != SCHEMA:
        sys.exit(f"bench_diff: {path}: expected schema {SCHEMA!r}, "
                 f"got {doc.get('schema')!r}")
    runs = {}
    for run in doc.get("runs", []):
        run_id = run.get("id")
        if not run_id:
            sys.exit(f"bench_diff: {path}: run without an id")
        if run_id in runs:
            sys.exit(f"bench_diff: {path}: duplicate run id {run_id!r}")
        runs[run_id] = run
    return doc, runs


def main():
    parser = argparse.ArgumentParser(
        description="flag cycle regressions between two campaign files")
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("current", help="freshly produced JSON")
    parser.add_argument("--threshold", type=float, default=5.0,
                        help="regression threshold in percent "
                             "(default: %(default)s)")
    args = parser.parse_args()

    base_doc, base_runs = load_campaign(args.baseline)
    cur_doc, cur_runs = load_campaign(args.current)

    base_scale = base_doc.get("scale")
    cur_scale = cur_doc.get("scale")
    if base_scale != cur_scale:
        sys.exit(f"bench_diff: scale mismatch: baseline is "
                 f"{base_scale!r}, current is {cur_scale!r} -- "
                 f"cycle counts are not comparable")

    regressions = []
    improvements = []
    missing = sorted(set(base_runs) - set(cur_runs))
    added = sorted(set(cur_runs) - set(base_runs))

    for run_id in sorted(set(base_runs) & set(cur_runs)):
        base_cycles = base_runs[run_id].get("cycles", 0)
        cur_cycles = cur_runs[run_id].get("cycles", 0)
        if base_cycles <= 0:
            continue
        delta_pct = 100.0 * (cur_cycles - base_cycles) / base_cycles
        entry = (run_id, base_cycles, cur_cycles, delta_pct)
        if delta_pct > args.threshold:
            regressions.append(entry)
        elif delta_pct < -args.threshold:
            improvements.append(entry)

    name = cur_doc.get("campaign", "?")
    compared = len(set(base_runs) & set(cur_runs))
    print(f"bench_diff: campaign {name!r}: {compared} runs compared, "
          f"threshold {args.threshold:g}%")

    for run_id, base_c, cur_c, pct in sorted(
            regressions, key=lambda e: -e[3]):
        print(f"  REGRESSION {run_id}: {base_c} -> {cur_c} cycles "
              f"({pct:+.2f}%)")
    for run_id, base_c, cur_c, pct in sorted(
            improvements, key=lambda e: e[3]):
        print(f"  improved   {run_id}: {base_c} -> {cur_c} cycles "
              f"({pct:+.2f}%)")
    for run_id in missing:
        print(f"  MISSING    {run_id}: in baseline but not in current")
    for run_id in added:
        print(f"  new        {run_id}: not in baseline "
              f"(refresh the baseline to track it)")

    if regressions or missing:
        print(f"bench_diff: FAIL ({len(regressions)} regression(s), "
              f"{len(missing)} missing run(s))")
        return 1
    print("bench_diff: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
