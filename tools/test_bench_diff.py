#!/usr/bin/env python3
"""Edge-case tests for tools/bench_diff.py (stdlib unittest only).

Run directly or via ctest:
    python3 tools/test_bench_diff.py
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

TOOL = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    "bench_diff.py")


def campaign(runs, schema="sam-campaign-v1", scale="small", **extra):
    doc = {"schema": schema, "campaign": "t", "scale": scale}
    doc.update(extra)
    doc["runs"] = runs
    return doc


def run(run_id, cycles):
    return {"id": run_id, "cycles": cycles}


class BenchDiffTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)

    def path(self, name, doc):
        p = os.path.join(self.tmp.name, name)
        with open(p, "w", encoding="utf-8") as fh:
            if isinstance(doc, str):
                fh.write(doc)
            else:
                json.dump(doc, fh)
        return p

    def diff(self, *argv):
        return subprocess.run([sys.executable, TOOL, *argv],
                              capture_output=True, text=True)

    def test_clean_diff_exits_zero(self):
        base = self.path("b.json", campaign([run("a", 100)]))
        cur = self.path("c.json", campaign([run("a", 102)]))
        r = self.diff(base, cur)
        self.assertEqual(r.returncode, 0, r.stderr)
        self.assertIn("OK", r.stdout)

    def test_regression_exits_one(self):
        base = self.path("b.json", campaign([run("a", 100)]))
        cur = self.path("c.json", campaign([run("a", 120)]))
        r = self.diff(base, cur)
        self.assertEqual(r.returncode, 1)
        self.assertIn("REGRESSION", r.stdout)

    def test_missing_run_exits_one(self):
        base = self.path("b.json", campaign([run("a", 100),
                                             run("b", 50)]))
        cur = self.path("c.json", campaign([run("a", 100)]))
        r = self.diff(base, cur)
        self.assertEqual(r.returncode, 1)
        self.assertIn("MISSING", r.stdout)

    def test_added_run_does_not_fail(self):
        base = self.path("b.json", campaign([run("a", 100)]))
        cur = self.path("c.json", campaign([run("a", 100),
                                            run("z", 7)]))
        r = self.diff(base, cur)
        self.assertEqual(r.returncode, 0, r.stdout)
        self.assertIn("new", r.stdout)

    def test_nonexistent_baseline_exits_two(self):
        cur = self.path("c.json", campaign([run("a", 1)]))
        r = self.diff(os.path.join(self.tmp.name, "nope.json"), cur)
        self.assertEqual(r.returncode, 2)
        self.assertIn("cannot read", r.stderr)

    def test_invalid_json_exits_two(self):
        base = self.path("b.json", "{not json")
        cur = self.path("c.json", campaign([run("a", 1)]))
        r = self.diff(base, cur)
        self.assertEqual(r.returncode, 2)
        self.assertIn("cannot read", r.stderr)

    def test_empty_file_exits_two(self):
        base = self.path("b.json", "")
        cur = self.path("c.json", campaign([run("a", 1)]))
        self.assertEqual(self.diff(base, cur).returncode, 2)

    def test_empty_baseline_runs_exits_two(self):
        base = self.path("b.json", campaign([]))
        cur = self.path("c.json", campaign([run("a", 1)]))
        r = self.diff(base, cur)
        self.assertEqual(r.returncode, 2)
        self.assertIn("no runs", r.stderr)

    def test_wrong_schema_exits_two(self):
        base = self.path("b.json",
                         campaign([run("a", 1)], schema="v0"))
        cur = self.path("c.json", campaign([run("a", 1)]))
        r = self.diff(base, cur)
        self.assertEqual(r.returncode, 2)
        self.assertIn("schema", r.stderr)

    def test_non_object_top_level_exits_two(self):
        base = self.path("b.json", [1, 2, 3])
        cur = self.path("c.json", campaign([run("a", 1)]))
        self.assertEqual(self.diff(base, cur).returncode, 2)

    def test_non_numeric_cycles_exits_two(self):
        base = self.path("b.json",
                         campaign([{"id": "a", "cycles": "fast"}]))
        cur = self.path("c.json", campaign([run("a", 1)]))
        r = self.diff(base, cur)
        self.assertEqual(r.returncode, 2)
        self.assertIn("expected a number", r.stderr)

    def test_boolean_cycles_exits_two(self):
        base = self.path("b.json",
                         campaign([{"id": "a", "cycles": True}]))
        cur = self.path("c.json", campaign([run("a", 1)]))
        self.assertEqual(self.diff(base, cur).returncode, 2)

    def test_missing_cycles_field_exits_two(self):
        base = self.path("b.json", campaign([{"id": "a"}]))
        cur = self.path("c.json", campaign([run("a", 1)]))
        self.assertEqual(self.diff(base, cur).returncode, 2)

    def test_duplicate_run_id_exits_two(self):
        base = self.path("b.json", campaign([run("a", 1),
                                             run("a", 2)]))
        cur = self.path("c.json", campaign([run("a", 1)]))
        r = self.diff(base, cur)
        self.assertEqual(r.returncode, 2)
        self.assertIn("duplicate", r.stderr)

    def test_zero_cycle_baseline_run_skipped_not_crash(self):
        base = self.path("b.json", campaign([run("a", 0),
                                             run("b", 100)]))
        cur = self.path("c.json", campaign([run("a", 999),
                                            run("b", 100)]))
        r = self.diff(base, cur)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("skipped", r.stdout)

    def test_scale_mismatch_exits_two(self):
        base = self.path("b.json",
                         campaign([run("a", 1)], scale="small"))
        cur = self.path("c.json",
                        campaign([run("a", 1)], scale="large"))
        r = self.diff(base, cur)
        self.assertEqual(r.returncode, 2)
        self.assertIn("scale mismatch", r.stderr)

    def test_negative_threshold_exits_two(self):
        base = self.path("b.json", campaign([run("a", 1)]))
        cur = self.path("c.json", campaign([run("a", 1)]))
        r = self.diff(base, cur, "--threshold", "-3")
        self.assertEqual(r.returncode, 2)

    def test_improvement_reported_but_passes(self):
        base = self.path("b.json", campaign([run("a", 200)]))
        cur = self.path("c.json", campaign([run("a", 100)]))
        r = self.diff(base, cur)
        self.assertEqual(r.returncode, 0)
        self.assertIn("improved", r.stdout)


if __name__ == "__main__":
    unittest.main()
