#!/usr/bin/env python3
"""Gate line coverage of selected source directories from an lcov info file.

Usage:
    tools/coverage_gate.py COVERAGE.info --dir src/ecc --dir src/telemetry \\
        [--min 80]

Parses the lcov tracefile records (SF: source file, LF: lines found,
LH: lines hit), aggregates line coverage per requested directory
(matched against the repo-relative part of each SF path), and fails if
any directory's coverage is below the threshold or has no data at all.

Exit status: 0 when every directory meets the bar, 1 otherwise, 2 on
usage errors.
"""

import argparse
import sys


def parse_info(path):
    """Yield (source_file, lines_found, lines_hit) per SF record."""
    records = []
    source, found, hit = None, 0, 0
    try:
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line.startswith("SF:"):
                    source, found, hit = line[3:], 0, 0
                elif line.startswith("LF:"):
                    found = int(line[3:])
                elif line.startswith("LH:"):
                    hit = int(line[3:])
                elif line == "end_of_record" and source is not None:
                    records.append((source, found, hit))
                    source = None
    except OSError as exc:
        sys.exit(f"coverage_gate: cannot read {path}: {exc}")
    return records


def main():
    parser = argparse.ArgumentParser(
        description="fail when directory line coverage drops too low")
    parser.add_argument("info", help="lcov tracefile (.info)")
    parser.add_argument("--dir", action="append", required=True,
                        dest="dirs", metavar="DIR",
                        help="repo-relative directory to gate "
                             "(repeatable)")
    parser.add_argument("--min", type=float, default=80.0,
                        help="minimum line coverage percent "
                             "(default: %(default)s)")
    args = parser.parse_args()

    records = parse_info(args.info)
    if not records:
        sys.exit(f"coverage_gate: no records in {args.info}")

    failed = False
    for directory in args.dirs:
        needle = "/" + directory.strip("/") + "/"
        found = hit = files = 0
        for source, lf, lh in records:
            if needle in source or source.startswith(needle[1:]):
                found += lf
                hit += lh
                files += 1
        if found == 0:
            print(f"coverage_gate: {directory}: NO DATA "
                  f"({files} file(s) matched)")
            failed = True
            continue
        pct = 100.0 * hit / found
        status = "ok" if pct >= args.min else "FAIL"
        print(f"coverage_gate: {directory}: {pct:.1f}% "
              f"({hit}/{found} lines over {files} file(s)) "
              f"[min {args.min:g}%] {status}")
        if pct < args.min:
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
