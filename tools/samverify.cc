/**
 * @file
 * Offline model checker for the protocol timing specification.
 *
 * Explores every reachable command sequence of a bounded depth (up to
 * state equivalence) over a configurable geometry and cross-examines
 * the declarative rule table (src/check/spec_model) against the
 * imperative ProtocolChecker at every step: agreement at the earliest
 * legal cycle and one cycle before it, state-rule agreement, deadlock
 * freedom, and upward-closure of legality in time (the monotonicity
 * property the event-driven scheduler relies on).
 *
 * Exit status: 0 when every probe agreed, 1 on any disagreement,
 * 2 on usage errors.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/check/spec_model.hh"
#include "src/dram/timing.hh"

namespace {

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--preset ddr4|rram] [--depth N] [--max-nodes N]\n"
        "          [--ranks N] [--groups N] [--banks N] [--rows N]\n"
        "          [--no-monotone] [--print-table]\n"
        "\n"
        "Cross-checks the declarative timing spec table against the\n"
        "runtime ProtocolChecker by bounded exhaustive exploration.\n"
        "  --preset      timing preset to verify (default ddr4)\n"
        "  --depth       commands per explored sequence (default 3)\n"
        "  --max-nodes   exploration cap (default 200000)\n"
        "  --ranks       ranks in the probe geometry (default 2)\n"
        "  --groups      bank groups per rank (default 2)\n"
        "  --banks       banks per group (default 1)\n"
        "  --rows        row alphabet per bank (default 2)\n"
        "  --no-monotone skip the upward-closure probes\n"
        "  --print-table print the rule table and exit\n",
        argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string preset = "ddr4";
    sam::VerifyOptions opt;
    opt.depth = 3;
    opt.maxNodes = 200000;
    sam::Geometry geom;
    geom.channels = 1;
    geom.ranks = 2;
    geom.bankGroups = 2;
    geom.banksPerGroup = 1;
    bool print_table = false;

    const auto num = [&](int &i) -> unsigned long {
        if (i + 1 >= argc) {
            usage(argv[0]);
            std::exit(2);
        }
        return std::strtoul(argv[++i], nullptr, 10);
    };
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (!std::strcmp(arg, "--preset")) {
            if (i + 1 >= argc) {
                usage(argv[0]);
                return 2;
            }
            preset = argv[++i];
        } else if (!std::strcmp(arg, "--depth")) {
            opt.depth = static_cast<unsigned>(num(i));
        } else if (!std::strcmp(arg, "--max-nodes")) {
            opt.maxNodes = num(i);
        } else if (!std::strcmp(arg, "--ranks")) {
            geom.ranks = static_cast<unsigned>(num(i));
        } else if (!std::strcmp(arg, "--groups")) {
            geom.bankGroups = static_cast<unsigned>(num(i));
        } else if (!std::strcmp(arg, "--banks")) {
            geom.banksPerGroup = static_cast<unsigned>(num(i));
        } else if (!std::strcmp(arg, "--rows")) {
            opt.probeRows = static_cast<unsigned>(num(i));
        } else if (!std::strcmp(arg, "--no-monotone")) {
            opt.monotone = false;
        } else if (!std::strcmp(arg, "--print-table")) {
            print_table = true;
        } else if (!std::strcmp(arg, "--help") ||
                   !std::strcmp(arg, "-h")) {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg);
            usage(argv[0]);
            return 2;
        }
    }

    sam::TimingParams timing;
    if (preset == "ddr4") {
        timing = sam::ddr4Timing();
    } else if (preset == "rram") {
        timing = sam::rramTiming();
    } else {
        std::fprintf(stderr, "unknown preset: %s\n", preset.c_str());
        return 2;
    }

    if (print_table) {
        std::fputs(sam::describeRuleTable(timing).c_str(), stdout);
        return 0;
    }

    std::printf("samverify: preset=%s depth=%u geometry=%uch/%urk/"
                "%ubg/%ubk rows=%u\n",
                preset.c_str(), opt.depth, geom.channels, geom.ranks,
                geom.bankGroups, geom.banksPerGroup, opt.probeRows);
    const sam::VerifyStats stats =
        sam::verifySpecAgainstChecker(geom, timing, opt);
    std::printf("%s\n", stats.summary().c_str());
    for (const std::string &f : stats.failures)
        std::printf("FAIL: %s\n", f.c_str());
    if (!stats.ok())
        return 1;
    if (!stats.exhausted)
        std::printf("note: exploration capped at --max-nodes; rerun "
                    "with a larger cap for full coverage\n");
    return 0;
}
