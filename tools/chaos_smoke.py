#!/usr/bin/env python3
"""Crash-safety smoke test for samcampaign (stdlib only).

Proves the write-ahead-journal + resume contract end to end, on real
binaries, with real SIGKILLs:

  1. run a quick fig12 campaign (cheap designs only) to get a golden
     BENCH document;
  2. for several seeds, chaos-kill the campaign process itself partway
     through (`--chaos seed=S,die@K`), then `--resume` the journal and
     assert the merged BENCH document is byte-identical to the golden
     one (wall-clock fields excepted);
  3. exhaust retries on one spec (`kill@spec:0`) and assert the
     campaign still completes with partial results, a `failed` array,
     and a non-zero exit -- then resume to convergence;
  4. spot-check flag validation (usage errors exit 2).

Usage:
    python3 tools/chaos_smoke.py <samcampaign> [<samsim>]

Registered as the `chaos_smoke` ctest; the driver passes the built
binaries. Exit 0 on success, 1 with a diagnostic on the first failure.
"""

import json
import os
import signal
import subprocess
import sys
import tempfile

# Cheap designs only: the expensive layouts (RC-NVM, SAM-sub) pay a
# multi-second table materialization per forked worker, which is an
# isolation cost, not a crash-safety behavior. 72 runs.
CAMPAIGN = [
    "--fig", "12", "--quick", "--ta", "256", "--tb", "256",
    "--only", "SAM-en/,GS-DRAM/,baseline/,ideal/",
    "--jobs", "2", "--isolate", "proc",
]
DIE_POINTS = [(3, 10), (7, 25), (11, 40)]  # (seed, launch to die at)
MAX_RESUMES = 6


def run(cmd, cwd):
    return subprocess.run(cmd, cwd=cwd, stdout=subprocess.PIPE,
                          stderr=subprocess.STDOUT, text=True)


def load_normalized(path):
    """BENCH document with wall-clock (and jobs) fields stripped."""
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    for key in ("wall_ms", "run_wall_ms_total", "jobs", "throughput"):
        doc.pop(key, None)
    for row in doc.get("runs", []):
        row.pop("wall_ms", None)
        row.pop("throughput", None)
    return doc


def fail(step, message, proc=None):
    print(f"chaos_smoke: FAIL [{step}]: {message}")
    if proc is not None:
        print(f"  command: {' '.join(proc.args)}")
        print(f"  exit:    {proc.returncode}")
        tail = proc.stdout.splitlines()[-15:]
        for line in tail:
            print(f"  | {line}")
    sys.exit(1)


def expect_exit(step, proc, want):
    if proc.returncode != want:
        fail(step, f"expected exit {want}, got {proc.returncode}", proc)


def campaign_cmd(samcampaign, out_dir, extra):
    return [samcampaign] + CAMPAIGN + ["--out", out_dir] + extra


def golden_run(samcampaign, tmp):
    out = os.path.join(tmp, "golden")
    os.mkdir(out)
    proc = run(campaign_cmd(samcampaign, out, []), tmp)
    expect_exit("golden", proc, 0)
    doc = load_normalized(os.path.join(out, "BENCH_fig12.json"))
    if len(doc["runs"]) != 72:
        fail("golden", f"expected 72 runs, got {len(doc['runs'])}")
    print(f"chaos_smoke: golden campaign ok ({len(doc['runs'])} runs)")
    return doc


def check_die_resume(samcampaign, tmp, golden, seed, point):
    step = f"die seed={seed}@{point}"
    out = os.path.join(tmp, f"die_{seed}")
    os.mkdir(out)
    journal = os.path.join(out, "J.jsonl")
    proc = run(campaign_cmd(samcampaign, out, [
        "--chaos", f"seed={seed},die@{point}", "--journal", journal]),
        tmp)
    if proc.returncode != -signal.SIGKILL and proc.returncode != 137:
        fail(step, "campaign survived its own chaos SIGKILL", proc)
    if not os.path.exists(journal):
        fail(step, "no journal written before the crash")

    for attempt in range(MAX_RESUMES):
        proc = run(campaign_cmd(samcampaign, out,
                                ["--resume", journal]), tmp)
        if proc.returncode == 0:
            break
    else:
        fail(step, f"no clean exit after {MAX_RESUMES} resumes", proc)

    merged = load_normalized(os.path.join(out, "BENCH_fig12.json"))
    if merged != golden:
        fail(step, "merged BENCH differs from the golden document")
    summary = [l for l in proc.stdout.splitlines() if "from journal" in l]
    print(f"chaos_smoke: {step} resumed ok"
          f" ({summary[0].strip() if summary else 'no summary line'})")


def check_failed_path(samcampaign, tmp, golden):
    step = "kill@spec"
    out = os.path.join(tmp, "failpath")
    os.mkdir(out)
    journal = os.path.join(out, "J.jsonl")
    proc = run(campaign_cmd(samcampaign, out, [
        "--chaos", "seed=3,kill@spec:0", "--retries", "2",
        "--journal", journal]), tmp)
    expect_exit(step, proc, 1)
    bench = os.path.join(out, "BENCH_fig12.json")
    with open(bench, encoding="utf-8") as fh:
        doc = json.load(fh)
    failed = doc.get("failed", [])
    if len(failed) != 1 or failed[0].get("failure") != "crash":
        fail(step, f"expected one crash-failed run, got {failed}", proc)
    if len(doc["runs"]) != 71:
        fail(step, f"expected 71 surviving runs, got {len(doc['runs'])}")

    proc = run(campaign_cmd(samcampaign, out, ["--resume", journal]),
               tmp)
    expect_exit(step + " resume", proc, 0)
    if load_normalized(bench) != golden:
        fail(step, "resumed BENCH differs from the golden document")
    print("chaos_smoke: retry-exhaustion path ok "
          "(partial results + failed[] + exit 1, resume converges)")


def check_flag_validation(samcampaign, samsim, tmp):
    cases = [([samcampaign, "--fig", "12", "--jobs", "0"], "--jobs 0"),
             ([samcampaign, "--fig", "12", "--chaos", "banana"],
              "--chaos banana"),
             ([samcampaign, "--fig", "99"], "--fig 99")]
    if samsim:
        cases += [([samsim, "--jobs", "0"], "samsim --jobs 0"),
                  ([samsim, "--sel", "1.5"], "samsim --sel 1.5"),
                  ([samsim, "--ta", "banana"], "samsim --ta banana")]
    for cmd, label in cases:
        proc = run(cmd, tmp)
        expect_exit(f"validation {label}", proc, 2)
        if len(proc.stdout.strip().splitlines()) != 1:
            fail(f"validation {label}",
                 "usage errors must be one-line diagnostics", proc)
    print(f"chaos_smoke: flag validation ok ({len(cases)} cases)")


def main():
    if len(sys.argv) < 2:
        print(__doc__)
        return 2
    samcampaign = os.path.abspath(sys.argv[1])
    samsim = os.path.abspath(sys.argv[2]) if len(sys.argv) > 2 else None
    with tempfile.TemporaryDirectory(prefix="chaos_smoke_") as tmp:
        golden = golden_run(samcampaign, tmp)
        for seed, point in DIE_POINTS:
            check_die_resume(samcampaign, tmp, golden, seed, point)
        check_failed_path(samcampaign, tmp, golden)
        check_flag_validation(samcampaign, samsim, tmp)
    print("chaos_smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
