/**
 * @file
 * samcampaign -- parallel figure-campaign driver with machine-readable
 * output.
 *
 * Fans the independent simulations of the paper's figure campaigns
 * (fig12 speedup, fig13 power, fig15 sweeps) across a work-stealing
 * thread pool and writes one BENCH_<fig>.json per campaign: the raw
 * per-run counters (cycles, energy, ECC events, wall time) plus the
 * figure's derived metrics. tools/bench_diff.py consumes these files
 * to flag cycle regressions against a committed baseline.
 *
 * Per-run results are bit-identical for any --jobs value: every run
 * executes in a fresh single-threaded Session, sharing only the
 * immutable materialized-table cache.
 *
 * Examples:
 *   samcampaign --fig 12 --jobs 8 --out bench-results
 *   samcampaign --fig all --quick --verify
 *   SAM_QUICK=1 samcampaign --fig 12        # same as --quick
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_common.hh"
#include "src/common/logging.hh"
#include "src/runner/campaign.hh"

namespace {

using namespace sam;
using namespace sam::bench;

[[noreturn]] void
usage(int code)
{
    std::fprintf(
        code == 0 ? stdout : stderr,
        "usage: samcampaign [options]\n"
        "  --fig <12|13|15|all>   campaign(s) to run (default 12)\n"
        "  --jobs <n>             worker threads (default: host cores;\n"
        "                         results are identical for any value)\n"
        "  --out <dir>            output directory (default .)\n"
        "  --quick                reduced scale (same as SAM_QUICK=1)\n"
        "  --verify               check results against the reference\n"
        "                         executor\n"
        "  --no-telemetry         drop the per-run latency histograms\n"
        "                         from the BENCH JSON\n");
    std::exit(code);
}

/** A campaign's specs plus an id -> result index. */
struct Book
{
    std::vector<RunSpec> specs;
    std::map<std::string, std::size_t> index;
    std::vector<RunResult> results;

    void
    add(std::string id, const SimConfig &cfg, const Query &q,
        bool verify)
    {
        if (index.count(id))
            return;
        index.emplace(id, specs.size());
        specs.push_back(RunSpec{std::move(id), cfg, q, verify});
    }

    void
    add(DesignKind d, const SimConfig &base, const Query &q, bool verify)
    {
        SimConfig cfg = base;
        cfg.design = d;
        add(designName(d) + "/" + q.name, cfg, q, verify);
    }

    const RunResult &
    at(const std::string &id) const
    {
        auto it = index.find(id);
        sam_assert(it != index.end(), "no campaign run '", id, "'");
        return results.at(it->second);
    }

    double
    speedup(const std::string &design_id,
            const std::string &base_id) const
    {
        const Cycle d = at(design_id).stats.cycles;
        const Cycle b = at(base_id).stats.cycles;
        sam_assert(d > 0 && b > 0, "run produced no work");
        return static_cast<double>(b) / static_cast<double>(d);
    }
};

std::vector<Query>
allQueries()
{
    auto qs = benchmarkQQueries();
    const auto more = benchmarkQsQueries();
    qs.insert(qs.end(), more.begin(), more.end());
    return qs;
}

// ----- fig12: speedup grid ------------------------------------------

Book
buildFig12(bool verify)
{
    Book book;
    const SimConfig cfg = benchConfig();
    for (const Query &q : allQueries()) {
        book.add(DesignKind::Baseline, cfg, q, false);
        for (DesignKind d : figureDesigns())
            book.add(d, cfg, q, verify);
    }
    return book;
}

Json
derivedFig12(const Book &book)
{
    Json derived = Json::object();
    Json speedups = Json::object();
    Json gmean_q = Json::object();
    Json gmean_qs = Json::object();
    const auto qq = benchmarkQQueries();
    const auto qs = benchmarkQsQueries();
    for (DesignKind d : figureDesigns()) {
        Json per_query = Json::object();
        std::vector<double> sp_q, sp_qs;
        for (const Query &q : qq) {
            const double sp = book.speedup(
                designName(d) + "/" + q.name, "baseline/" + q.name);
            per_query.set(q.name, sp);
            sp_q.push_back(sp);
        }
        for (const Query &q : qs) {
            const double sp = book.speedup(
                designName(d) + "/" + q.name, "baseline/" + q.name);
            per_query.set(q.name, sp);
            sp_qs.push_back(sp);
        }
        speedups.set(designName(d), std::move(per_query));
        gmean_q.set(designName(d), geometricMean(sp_q));
        gmean_qs.set(designName(d), geometricMean(sp_qs));
    }
    derived.set("speedup", std::move(speedups));
    derived.set("gmean_q", std::move(gmean_q));
    derived.set("gmean_qs", std::move(gmean_qs));
    return derived;
}

// ----- fig13: power by category -------------------------------------

Book
buildFig13(bool verify)
{
    Book book;
    const SimConfig cfg = benchConfig();
    for (const Query &q : allQueries()) {
        book.add(DesignKind::Baseline, cfg, q, false);
        for (DesignKind d : figureDesigns()) {
            if (d != DesignKind::Ideal)
                book.add(d, cfg, q, verify);
        }
    }
    return book;
}

Json
derivedFig13(const Book &book)
{
    const auto qq = benchmarkQQueries();
    const auto qs = benchmarkQsQueries();
    std::vector<std::pair<std::string, std::vector<Query>>> cats(4);
    cats[0].first = "read_q";
    cats[1].first = "write_q";
    cats[2].first = "read_qs";
    cats[3].first = "write_qs";
    for (std::size_t i = 0; i < qq.size(); ++i)
        cats[i < 10 ? 0 : 1].second.push_back(qq[i]);
    for (std::size_t i = 0; i < qs.size(); ++i)
        cats[i < 4 ? 2 : 3].second.push_back(qs[i]);

    auto aggregate = [&](DesignKind d,
                         const std::vector<Query> &queries) {
        PowerBreakdown sum;
        for (const Query &q : queries) {
            const PowerBreakdown &p =
                book.at(designName(d) + "/" + q.name).stats.power;
            sum.actEnergyPj += p.actEnergyPj;
            sum.rdwrEnergyPj += p.rdwrEnergyPj;
            sum.backgroundEnergyPj += p.backgroundEnergyPj;
            sum.refreshEnergyPj += p.refreshEnergyPj;
            sum.elapsedNs += p.elapsedNs;
        }
        return sum;
    };

    Json derived = Json::object();
    for (const auto &[cat_name, queries] : cats) {
        Json cat = Json::object();
        const PowerBreakdown base =
            aggregate(DesignKind::Baseline, queries);
        for (DesignKind d : figureDesigns()) {
            if (d == DesignKind::Ideal)
                continue;
            const PowerBreakdown p = aggregate(d, queries);
            Json row = Json::object();
            row.set("total_mw", p.totalPowerMw());
            row.set("energy_eff", p.totalEnergyPj() > 0
                                      ? base.totalEnergyPj() /
                                            p.totalEnergyPj()
                                      : 0.0);
            cat.set(designName(d), std::move(row));
        }
        derived.set(cat_name, std::move(cat));
    }
    return derived;
}

// ----- fig15: parameterized sweeps ----------------------------------

const std::vector<DesignKind> kSweepDesigns = {
    DesignKind::RcNvmWord, DesignKind::GsDramEcc, DesignKind::SamEn,
    DesignKind::Ideal};

std::string
pointId(const char *kind, unsigned proj, double sel)
{
    return std::string(kind) + "/p" + std::to_string(proj) + "/s" +
           std::to_string(static_cast<unsigned>(sel * 100 + 0.5));
}

void
addSweepPoint(Book &book, const SimConfig &cfg, const std::string &point,
              const Query &q, bool verify)
{
    SimConfig bcfg = cfg;
    bcfg.design = DesignKind::Baseline;
    book.add(point + "/baseline", bcfg, q, false);
    for (DesignKind d : kSweepDesigns) {
        SimConfig dcfg = cfg;
        dcfg.design = d;
        book.add(point + "/" + designName(d), dcfg, q, verify);
    }
}

Book
buildFig15(bool verify)
{
    Book book;
    SimConfig cfg = benchConfig();
    cfg.taRecords = quickMode() ? 2048 : 8192;
    cfg.tbRecords = 2048;
    const unsigned nf = cfg.taFields;
    const std::vector<double> sels = {0.1, 0.2, 0.3, 0.4, 0.5,
                                      0.6, 0.7, 0.8, 0.9, 1.0};
    const std::vector<unsigned> projs = {2, 4, 8, 16, 32, 64, nf};
    for (unsigned proj : {8u, 64u, nf})
        for (double sel : sels)
            addSweepPoint(book, cfg, pointId("arith", proj, sel),
                          arithQuery(proj, sel, nf), verify);
    for (double sel : {0.1, 0.5, 1.0})
        for (unsigned proj : projs)
            addSweepPoint(book, cfg, pointId("arith", proj, sel),
                          arithQuery(proj, sel, nf), verify);
    for (double sel : sels)
        addSweepPoint(book, cfg, pointId("aggr", 8, sel),
                      aggrQuery(8, sel, nf), verify);
    for (unsigned proj : projs)
        addSweepPoint(book, cfg, pointId("aggr", proj, 1.0),
                      aggrQuery(proj, 1.0, nf), verify);
    return book;
}

Json
derivedFig15(const Book &book)
{
    Json speedups = Json::object();
    for (const auto &[id, idx] : book.index) {
        (void)idx;
        const auto slash = id.rfind('/');
        const std::string design = id.substr(slash + 1);
        if (design == "baseline")
            continue;
        const std::string point = id.substr(0, slash);
        speedups.set(id, book.speedup(id, point + "/baseline"));
    }
    Json derived = Json::object();
    derived.set("speedup", std::move(speedups));
    return derived;
}

// ----- driver -------------------------------------------------------

struct CampaignDef
{
    std::string name;
    Book (*build)(bool verify);
    Json (*derived)(const Book &);
};

const std::vector<CampaignDef> kCampaigns = {
    {"fig12", buildFig12, derivedFig12},
    {"fig13", buildFig13, derivedFig13},
    {"fig15", buildFig15, derivedFig15},
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace sam;
    setQuietLogging(true);

    std::vector<std::string> figs;
    unsigned jobs = 0;
    std::string out_dir = ".";
    bool verify = false;
    bool telemetry = true;

    auto next_arg = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage(1);
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--help" || a == "-h")
            usage(0);
        else if (a == "--fig") {
            const std::string f = next_arg(i);
            if (f == "all") {
                figs.clear();
                for (const CampaignDef &c : kCampaigns)
                    figs.push_back(c.name);
            } else {
                figs.push_back("fig" + f);
            }
        } else if (a == "--jobs")
            jobs = static_cast<unsigned>(std::atoi(next_arg(i)));
        else if (a == "--out")
            out_dir = next_arg(i);
        else if (a == "--quick") {
            // Must precede the first (cached) quickMode() call.
            setenv("SAM_QUICK", "1", 1);
        } else if (a == "--verify")
            verify = true;
        else if (a == "--no-telemetry")
            telemetry = false;
        else {
            std::fprintf(stderr, "unknown option '%s'\n", a.c_str());
            usage(1);
        }
    }
    if (figs.empty())
        figs.push_back("fig12");

    try {
        CampaignRunner runner(jobs);
        std::printf("samcampaign: %u worker(s), %s scale\n",
                    runner.jobs(),
                    sam::bench::quickMode() ? "quick" : "full");
        for (const std::string &fig : figs) {
            const CampaignDef *def = nullptr;
            for (const CampaignDef &c : kCampaigns) {
                if (c.name == fig)
                    def = &c;
            }
            if (def == nullptr)
                fatal("unknown campaign '", fig, "' (try --help)");

            Book book = def->build(verify);
            // Latency histograms ride along in every run; the collector
            // is passive, so cycles are identical either way.
            for (RunSpec &spec : book.specs)
                spec.config.telemetry.enabled = telemetry;
            const auto t0 = std::chrono::steady_clock::now();
            book.results = runner.run(book.specs);
            const auto t1 = std::chrono::steady_clock::now();
            const double wall_ms =
                std::chrono::duration<double, std::milli>(t1 - t0)
                    .count();
            double run_ms = 0.0;
            for (const RunResult &r : book.results)
                run_ms += r.wallMs;

            Json doc = campaignJson(def->name, runner.jobs(),
                                    book.results);
            doc.set("scale",
                    sam::bench::quickMode() ? "quick" : "full");
            doc.set("verified", verify);
            doc.set("wall_ms", wall_ms);
            doc.set("run_wall_ms_total", run_ms);
            doc.set("derived", def->derived(book));
            const std::string path =
                out_dir + "/BENCH_" + def->name + ".json";
            writeJsonFile(path, doc);
            std::printf("%s: %zu runs, wall %.1fs, per-run total "
                        "%.1fs (parallel efficiency %.2fx), wrote "
                        "%s\n",
                        def->name.c_str(), book.results.size(),
                        wall_ms / 1e3, run_ms / 1e3,
                        wall_ms > 0 ? run_ms / wall_ms : 0.0,
                        path.c_str());
        }
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
    return 0;
}
