/**
 * @file
 * samcampaign -- parallel figure-campaign driver with machine-readable
 * output.
 *
 * Fans the independent simulations of the paper's figure campaigns
 * (fig12 speedup, fig13 power, fig15 sweeps) across a work-stealing
 * thread pool and writes one BENCH_<fig>.json per campaign: the raw
 * per-run counters (cycles, energy, ECC events, wall time) plus the
 * figure's derived metrics. tools/bench_diff.py consumes these files
 * to flag cycle regressions against a committed baseline.
 *
 * Per-run results are bit-identical for any --jobs value: every run
 * executes in a fresh single-threaded Session, sharing only the
 * immutable materialized-table cache.
 *
 * Execution is crash-safe: every completed run is appended (and
 * fsynced) to a write-ahead journal before the campaign advances, so
 * `--resume <journal>` after a crash re-emits the already-done runs
 * verbatim and simulates only what is missing — the merged BENCH JSON
 * is bit-identical to an uninterrupted campaign (wall-clock fields
 * excepted). `--isolate proc` runs every spec in a forked worker with
 * a per-run deadline and bounded retries, so a crashing, hanging, or
 * garbage-reporting run is classified and recorded as FAILED without
 * losing the rest of the campaign. `--chaos <spec>` injects such
 * faults deterministically (see src/runner/chaos.hh for the grammar).
 *
 * Examples:
 *   samcampaign --fig 12 --jobs 8 --out bench-results
 *   samcampaign --fig all --quick --verify
 *   SAM_QUICK=1 samcampaign --fig 12        # same as --quick
 *   samcampaign --fig 12 --quick --isolate proc --chaos seed=7,die@5
 *   samcampaign --fig 12 --quick --resume ./JOURNAL_fig12.jsonl
 */

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_common.hh"
#include "src/common/logging.hh"
#include "src/runner/campaign.hh"
#include "src/runner/supervisor.hh"

namespace {

using namespace sam;
using namespace sam::bench;

[[noreturn]] void
usage(int code)
{
    std::fprintf(
        code == 0 ? stdout : stderr,
        "usage: samcampaign [options]\n"
        "  --fig <12|13|15|all>   campaign(s) to run (default 12)\n"
        "  --jobs <n>             concurrent workers (default: host\n"
        "                         cores; results are identical for any\n"
        "                         value)\n"
        "  --out <dir>            output directory (default .)\n"
        "  --quick                reduced scale (same as SAM_QUICK=1)\n"
        "  --scale <quick|full|paper>  benchmark scale; paper is the\n"
        "                         source paper's 10M records per table\n"
        "  --verify               check results against the reference\n"
        "                         executor\n"
        "  --no-telemetry         drop the per-run latency histograms\n"
        "                         from the BENCH JSON\n"
        "  --engine <step|event>  phase-2 replay loop (default event;\n"
        "                         BENCH/JOURNAL output is identical\n"
        "                         either way, wall clocks excepted)\n"
        "  --ta <n> / --tb <n>    override table record counts (tiny\n"
        "                         campaigns for smoke tests)\n"
        "  --only <s1,s2,...>     keep only runs whose id contains one\n"
        "                         of the substrings (skips the derived\n"
        "                         metrics; smoke/debug use)\n"
        "crash safety:\n"
        "  --isolate <thread|proc>  thread: in-process pool (default);\n"
        "                         proc: one forked worker per attempt\n"
        "  --timeout <sec>        per-attempt deadline, SIGKILL +\n"
        "                         retry on expiry (proc mode only)\n"
        "  --retries <n>          attempts per run before FAILED\n"
        "                         (default 3)\n"
        "  --journal <path>       write-ahead journal location\n"
        "                         (default <out>/JOURNAL_<fig>.jsonl;\n"
        "                         single --fig only)\n"
        "  --resume <journal>     skip runs already completed in\n"
        "                         <journal>, append new outcomes to it\n"
        "                         (single --fig only)\n"
        "  --chaos <spec>         deterministic fault injection, e.g.\n"
        "                         seed=7,die@5 or kill%%25,hang@spec:0\n"
        "                         (implies/requires proc isolation)\n");
    std::exit(code);
}

/** One-line usage diagnostic; exit 2 (bench_diff.py convention). */
[[noreturn]] void
usageError(const std::string &message)
{
    std::fprintf(stderr, "samcampaign: %s\n", message.c_str());
    std::exit(2);
}

/** Strict bounded integer flag parser: garbage and 0/negative die. */
unsigned
parseCount(const char *flag, const char *text, unsigned lo, unsigned hi)
{
    char *end = nullptr;
    errno = 0;
    const long long v = std::strtoll(text, &end, 10);
    if (end == text || *end != '\0' || errno != 0 || v < lo ||
        v > static_cast<long long>(hi))
        usageError(std::string(flag) + " wants an integer in [" +
                   std::to_string(lo) + ", " + std::to_string(hi) +
                   "], got '" + text + "'");
    return static_cast<unsigned>(v);
}

/** A campaign's specs plus an id -> result index. */
struct Book
{
    std::vector<RunSpec> specs;
    std::map<std::string, std::size_t> index;
    std::vector<RunResult> results;

    void
    add(std::string id, const SimConfig &cfg, const Query &q,
        bool verify)
    {
        if (index.count(id))
            return;
        index.emplace(id, specs.size());
        specs.push_back(RunSpec{std::move(id), cfg, q, verify});
    }

    void
    add(DesignKind d, const SimConfig &base, const Query &q, bool verify)
    {
        SimConfig cfg = base;
        cfg.design = d;
        add(designName(d) + "/" + q.name, cfg, q, verify);
    }

    const RunResult &
    at(const std::string &id) const
    {
        auto it = index.find(id);
        sam_assert(it != index.end(), "no campaign run '", id, "'");
        return results.at(it->second);
    }

    double
    speedup(const std::string &design_id,
            const std::string &base_id) const
    {
        const Cycle d = at(design_id).stats.cycles;
        const Cycle b = at(base_id).stats.cycles;
        sam_assert(d > 0 && b > 0, "run produced no work");
        return static_cast<double>(b) / static_cast<double>(d);
    }
};

std::vector<Query>
allQueries()
{
    auto qs = benchmarkQQueries();
    const auto more = benchmarkQsQueries();
    qs.insert(qs.end(), more.begin(), more.end());
    return qs;
}

// ----- fig12: speedup grid ------------------------------------------

Book
buildFig12(bool verify)
{
    Book book;
    const SimConfig cfg = benchConfig();
    for (const Query &q : allQueries()) {
        book.add(DesignKind::Baseline, cfg, q, false);
        for (DesignKind d : figureDesigns())
            book.add(d, cfg, q, verify);
    }
    return book;
}

Json
derivedFig12(const Book &book)
{
    Json derived = Json::object();
    Json speedups = Json::object();
    Json gmean_q = Json::object();
    Json gmean_qs = Json::object();
    const auto qq = benchmarkQQueries();
    const auto qs = benchmarkQsQueries();
    for (DesignKind d : figureDesigns()) {
        Json per_query = Json::object();
        std::vector<double> sp_q, sp_qs;
        for (const Query &q : qq) {
            const double sp = book.speedup(
                designName(d) + "/" + q.name, "baseline/" + q.name);
            per_query.set(q.name, sp);
            sp_q.push_back(sp);
        }
        for (const Query &q : qs) {
            const double sp = book.speedup(
                designName(d) + "/" + q.name, "baseline/" + q.name);
            per_query.set(q.name, sp);
            sp_qs.push_back(sp);
        }
        speedups.set(designName(d), std::move(per_query));
        gmean_q.set(designName(d), geometricMean(sp_q));
        gmean_qs.set(designName(d), geometricMean(sp_qs));
    }
    derived.set("speedup", std::move(speedups));
    derived.set("gmean_q", std::move(gmean_q));
    derived.set("gmean_qs", std::move(gmean_qs));
    return derived;
}

// ----- fig13: power by category -------------------------------------

Book
buildFig13(bool verify)
{
    Book book;
    const SimConfig cfg = benchConfig();
    for (const Query &q : allQueries()) {
        book.add(DesignKind::Baseline, cfg, q, false);
        for (DesignKind d : figureDesigns()) {
            if (d != DesignKind::Ideal)
                book.add(d, cfg, q, verify);
        }
    }
    return book;
}

Json
derivedFig13(const Book &book)
{
    const auto qq = benchmarkQQueries();
    const auto qs = benchmarkQsQueries();
    std::vector<std::pair<std::string, std::vector<Query>>> cats(4);
    cats[0].first = "read_q";
    cats[1].first = "write_q";
    cats[2].first = "read_qs";
    cats[3].first = "write_qs";
    for (std::size_t i = 0; i < qq.size(); ++i)
        cats[i < 10 ? 0 : 1].second.push_back(qq[i]);
    for (std::size_t i = 0; i < qs.size(); ++i)
        cats[i < 4 ? 2 : 3].second.push_back(qs[i]);

    auto aggregate = [&](DesignKind d,
                         const std::vector<Query> &queries) {
        PowerBreakdown sum;
        for (const Query &q : queries) {
            const PowerBreakdown &p =
                book.at(designName(d) + "/" + q.name).stats.power;
            sum.actEnergyPj += p.actEnergyPj;
            sum.rdwrEnergyPj += p.rdwrEnergyPj;
            sum.backgroundEnergyPj += p.backgroundEnergyPj;
            sum.refreshEnergyPj += p.refreshEnergyPj;
            sum.elapsedNs += p.elapsedNs;
        }
        return sum;
    };

    Json derived = Json::object();
    for (const auto &[cat_name, queries] : cats) {
        Json cat = Json::object();
        const PowerBreakdown base =
            aggregate(DesignKind::Baseline, queries);
        for (DesignKind d : figureDesigns()) {
            if (d == DesignKind::Ideal)
                continue;
            const PowerBreakdown p = aggregate(d, queries);
            Json row = Json::object();
            row.set("total_mw", p.totalPowerMw());
            row.set("energy_eff", p.totalEnergyPj() > 0
                                      ? base.totalEnergyPj() /
                                            p.totalEnergyPj()
                                      : 0.0);
            cat.set(designName(d), std::move(row));
        }
        derived.set(cat_name, std::move(cat));
    }
    return derived;
}

// ----- fig15: parameterized sweeps ----------------------------------

const std::vector<DesignKind> kSweepDesigns = {
    DesignKind::RcNvmWord, DesignKind::GsDramEcc, DesignKind::SamEn,
    DesignKind::Ideal};

std::string
pointId(const char *kind, unsigned proj, double sel)
{
    return std::string(kind) + "/p" + std::to_string(proj) + "/s" +
           std::to_string(static_cast<unsigned>(sel * 100 + 0.5));
}

void
addSweepPoint(Book &book, const SimConfig &cfg, const std::string &point,
              const Query &q, bool verify)
{
    SimConfig bcfg = cfg;
    bcfg.design = DesignKind::Baseline;
    book.add(point + "/baseline", bcfg, q, false);
    for (DesignKind d : kSweepDesigns) {
        SimConfig dcfg = cfg;
        dcfg.design = d;
        book.add(point + "/" + designName(d), dcfg, q, verify);
    }
}

Book
buildFig15(bool verify)
{
    Book book;
    SimConfig cfg = benchConfig();
    cfg.taRecords = quickMode() ? 2048 : 8192;
    cfg.tbRecords = 2048;
    const unsigned nf = cfg.taFields;
    const std::vector<double> sels = {0.1, 0.2, 0.3, 0.4, 0.5,
                                      0.6, 0.7, 0.8, 0.9, 1.0};
    const std::vector<unsigned> projs = {2, 4, 8, 16, 32, 64, nf};
    for (unsigned proj : {8u, 64u, nf})
        for (double sel : sels)
            addSweepPoint(book, cfg, pointId("arith", proj, sel),
                          arithQuery(proj, sel, nf), verify);
    for (double sel : {0.1, 0.5, 1.0})
        for (unsigned proj : projs)
            addSweepPoint(book, cfg, pointId("arith", proj, sel),
                          arithQuery(proj, sel, nf), verify);
    for (double sel : sels)
        addSweepPoint(book, cfg, pointId("aggr", 8, sel),
                      aggrQuery(8, sel, nf), verify);
    for (unsigned proj : projs)
        addSweepPoint(book, cfg, pointId("aggr", proj, 1.0),
                      aggrQuery(proj, 1.0, nf), verify);
    return book;
}

Json
derivedFig15(const Book &book)
{
    Json speedups = Json::object();
    for (const auto &[id, idx] : book.index) {
        (void)idx;
        const auto slash = id.rfind('/');
        const std::string design = id.substr(slash + 1);
        if (design == "baseline")
            continue;
        const std::string point = id.substr(0, slash);
        speedups.set(id, book.speedup(id, point + "/baseline"));
    }
    Json derived = Json::object();
    derived.set("speedup", std::move(speedups));
    return derived;
}

// ----- driver -------------------------------------------------------

struct CampaignDef
{
    std::string name;
    Book (*build)(bool verify);
    Json (*derived)(const Book &);
};

const std::vector<CampaignDef> kCampaigns = {
    {"fig12", buildFig12, derivedFig12},
    {"fig13", buildFig13, derivedFig13},
    {"fig15", buildFig15, derivedFig15},
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace sam;
    setQuietLogging(true);

    std::vector<std::string> figs;
    unsigned jobs = 0;
    std::string out_dir = ".";
    bool verify = false;
    bool telemetry = true;
    sam::ReplayEngineKind engine = sam::ReplayEngineKind::Event;
    unsigned ta_override = 0;
    unsigned tb_override = 0;
    std::vector<std::string> only;
    Isolation isolation = Isolation::Thread;
    bool isolation_given = false;
    std::uint64_t timeout_ms = 0;
    unsigned retries = 3;
    std::string journal_flag;
    std::string resume_flag;
    ChaosConfig chaos;

    auto next_arg = [&](int &i, const char *flag) -> const char * {
        if (i + 1 >= argc)
            usageError(std::string(flag) + " wants a value");
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--help" || a == "-h")
            usage(0);
        else if (a == "--fig") {
            const std::string f = next_arg(i, "--fig");
            if (f == "all") {
                figs.clear();
                for (const CampaignDef &c : kCampaigns)
                    figs.push_back(c.name);
            } else {
                bool known = false;
                for (const CampaignDef &c : kCampaigns)
                    known = known || c.name == "fig" + f;
                if (!known)
                    usageError("unknown campaign 'fig" + f +
                               "' (want 12, 13, 15, or all)");
                figs.push_back("fig" + f);
            }
        } else if (a == "--jobs")
            jobs = parseCount("--jobs", next_arg(i, "--jobs"), 1,
                              4096);
        else if (a == "--out")
            out_dir = next_arg(i, "--out");
        else if (a == "--quick") {
            // Must precede the first (cached) scaleMode() call.
            setenv("SAM_SCALE", "quick", 1);
        } else if (a == "--scale") {
            const std::string s = next_arg(i, "--scale");
            if (s != "quick" && s != "full" && s != "paper")
                usageError("--scale wants quick, full, or paper, got "
                           "'" + s + "'");
            // Must precede the first (cached) scaleMode() call.
            setenv("SAM_SCALE", s.c_str(), 1);
        } else if (a == "--verify")
            verify = true;
        else if (a == "--no-telemetry")
            telemetry = false;
        else if (a == "--engine") {
            const std::string v = next_arg(i, "--engine");
            if (v != "step" && v != "event")
                usageError("--engine wants step or event, got '" + v +
                           "'");
            engine = sam::parseReplayEngine(v);
        } else if (a == "--ta")
            ta_override = parseCount("--ta", next_arg(i, "--ta"), 16,
                                     1u << 24);
        else if (a == "--tb")
            tb_override = parseCount("--tb", next_arg(i, "--tb"), 16,
                                     1u << 24);
        else if (a == "--only") {
            const std::string list = next_arg(i, "--only");
            std::size_t pos = 0;
            while (pos <= list.size()) {
                std::size_t comma = list.find(',', pos);
                if (comma == std::string::npos)
                    comma = list.size();
                if (comma > pos)
                    only.push_back(list.substr(pos, comma - pos));
                pos = comma + 1;
            }
            if (only.empty())
                usageError("--only wants a comma-separated list of "
                           "run-id substrings");
        }
        else if (a == "--isolate") {
            const std::string mode = next_arg(i, "--isolate");
            if (mode == "proc" || mode == "process")
                isolation = Isolation::Process;
            else if (mode == "thread")
                isolation = Isolation::Thread;
            else
                usageError("--isolate wants 'thread' or 'proc', got '" +
                           mode + "'");
            isolation_given = true;
        } else if (a == "--timeout")
            timeout_ms = 1000ull * parseCount("--timeout",
                                              next_arg(i, "--timeout"),
                                              1, 86400);
        else if (a == "--retries")
            retries = parseCount("--retries",
                                 next_arg(i, "--retries"), 1, 100);
        else if (a == "--journal")
            journal_flag = next_arg(i, "--journal");
        else if (a == "--resume")
            resume_flag = next_arg(i, "--resume");
        else if (a == "--chaos") {
            std::string error;
            if (!parseChaosSpec(next_arg(i, "--chaos"), chaos, error))
                usageError(error);
        } else
            usageError("unknown option '" + a + "' (try --help)");
    }
    if (figs.empty())
        figs.push_back("fig12");

    if (chaos.enabled()) {
        if (isolation_given && isolation == Isolation::Thread)
            usageError("--chaos requires --isolate proc");
        isolation = Isolation::Process;
    }
    if (timeout_ms != 0 && isolation == Isolation::Thread)
        usageError("--timeout requires --isolate proc");
    if (figs.size() > 1 &&
        (!journal_flag.empty() || !resume_flag.empty()))
        usageError("--journal/--resume apply to a single --fig");
    if (!resume_flag.empty() && !journal_flag.empty())
        usageError("--resume already names the journal; drop "
                   "--journal");

    const std::string scale = sam::bench::scaleName();
    bool any_failed = false;

    try {
        std::printf("samcampaign: %u worker(s), %s scale, %s "
                    "isolation\n",
                    jobs != 0 ? jobs : ThreadPool::defaultWorkers(),
                    scale.c_str(),
                    isolation == Isolation::Process ? "process"
                                                    : "thread");
        for (const std::string &fig : figs) {
            const CampaignDef *def = nullptr;
            for (const CampaignDef &c : kCampaigns) {
                if (c.name == fig)
                    def = &c;
            }
            sam_assert(def != nullptr, "campaign vanished");

            Book book = def->build(verify);
            if (!only.empty()) {
                Book filtered;
                for (const RunSpec &spec : book.specs) {
                    for (const std::string &pat : only) {
                        if (spec.id.find(pat) != std::string::npos) {
                            filtered.add(spec.id, spec.config,
                                         spec.query, spec.verify);
                            break;
                        }
                    }
                }
                if (filtered.specs.empty())
                    usageError("--only matched no " + def->name +
                               " runs");
                book = std::move(filtered);
            }
            // Latency histograms ride along in every run; the collector
            // is passive, so cycles are identical either way. The
            // gem5-style stats text never reaches the BENCH JSON, so
            // campaigns skip formatting it.
            for (RunSpec &spec : book.specs) {
                spec.config.telemetry.enabled = telemetry;
                spec.config.collectStatsText = false;
                // The engines are command-stream identical, so the
                // choice is invisible in every output field and stays
                // out of the journal's spec identity hash.
                spec.config.engine = engine;
                if (ta_override != 0)
                    spec.config.taRecords = ta_override;
                if (tb_override != 0)
                    spec.config.tbRecords = tb_override;
            }

            // Load the prior journal (resume) and open the write side.
            const bool resuming = !resume_flag.empty();
            const std::string journal_path =
                resuming ? resume_flag
                : !journal_flag.empty()
                    ? journal_flag
                    : out_dir + "/JOURNAL_" + def->name + ".jsonl";
            JournalState prior;
            if (resuming) {
                std::string error;
                if (!loadJournal(journal_path, prior, error))
                    usageError(error);
                if (prior.header.campaign != def->name ||
                    prior.header.scale != scale ||
                    prior.header.verify != verify ||
                    prior.header.telemetry != telemetry)
                    usageError(
                        "journal '" + journal_path + "' was written "
                        "by campaign '" + prior.header.campaign +
                        "' at " + prior.header.scale + " scale "
                        "(verify=" +
                        (prior.header.verify ? "on" : "off") +
                        ", telemetry=" +
                        (prior.header.telemetry ? "on" : "off") +
                        "); flags must match to resume");
                if (prior.truncatedLines != 0)
                    std::printf("%s: journal had %u torn trailing "
                                "line(s) (crash mid-append); "
                                "discarded\n",
                                def->name.c_str(),
                                prior.truncatedLines);
            }
            JournalHeader header;
            header.campaign = def->name;
            header.scale = scale;
            header.verify = verify;
            header.telemetry = telemetry;
            CampaignJournal journal(journal_path, header, resuming);

            SupervisorConfig scfg;
            scfg.isolation = isolation;
            scfg.jobs = jobs;
            scfg.timeoutMs = timeout_ms;
            scfg.retry.maxAttempts = retries;
            scfg.retry.seed = chaos.seed;
            scfg.chaos = chaos;
            scfg.journal = &journal;
            scfg.resume = resuming ? &prior : nullptr;
            Supervisor supervisor(std::move(scfg));

            const auto t0 = std::chrono::steady_clock::now();
            SupervisorReport report = supervisor.run(book.specs);
            const auto t1 = std::chrono::steady_clock::now();
            const double wall_ms =
                std::chrono::duration<double, std::milli>(t1 - t0)
                    .count();

            // The BENCH runs[] array re-emits each journal/worker
            // record verbatim -- that, plus spec-order results, is
            // what keeps resumed output bit-identical.
            double run_ms = 0.0;
            book.results.resize(book.specs.size());
            Json runs = Json::array();
            Json failed = Json::array();
            for (std::size_t i = 0; i < report.runs.size(); ++i) {
                SupervisedRun &run = report.runs[i];
                if (run.succeeded()) {
                    book.results[i] = std::move(run.result);
                    run_ms += book.results[i].wallMs;
                    runs.push(std::move(run.record));
                } else {
                    Json row = Json::object();
                    row.set("id", book.specs[i].id);
                    row.set("failure", failureKindName(run.failure));
                    row.set("error", run.error);
                    row.set("attempts", run.attempts);
                    failed.push(std::move(row));
                    std::printf("%s: FAILED %s after %u attempt(s): "
                                "%s (%s)\n",
                                def->name.c_str(),
                                book.specs[i].id.c_str(),
                                run.attempts, run.error.c_str(),
                                failureKindName(run.failure));
                }
            }

            Json doc = Json::object();
            doc.set("schema", "sam-campaign-v1");
            doc.set("campaign", def->name);
            doc.set("jobs", supervisor.jobs());
            doc.set("runs", std::move(runs));
            doc.set("scale", scale);
            doc.set("verified", verify);
            doc.set("wall_ms", wall_ms);
            doc.set("run_wall_ms_total", run_ms);
            // Campaign throughput in records/second of wall time --
            // wall-derived, so exempt from bench_diff and resume
            // bit-identity (like wall_ms).
            std::uint64_t total_records = 0;
            for (const RunSpec &spec : book.specs)
                total_records += spec.config.taRecords;
            doc.set("throughput",
                    wall_ms > 0
                        ? static_cast<double>(total_records) * 1e3 /
                              wall_ms
                        : 0.0);
            if (report.allDone() && only.empty())
                doc.set("derived", def->derived(book));
            if (!report.allDone())
                doc.set("failed", std::move(failed));
            const std::string path =
                out_dir + "/BENCH_" + def->name + ".json";
            writeJsonFile(path, doc);
            std::printf("%s: %zu runs (%u executed, %u from journal, "
                        "%u failed, %u retries), wall %.1fs, per-run "
                        "total %.1fs, wrote %s\n",
                        def->name.c_str(), book.specs.size(),
                        report.executed, report.fromJournal,
                        report.failed, report.retries, wall_ms / 1e3,
                        run_ms / 1e3, path.c_str());
            any_failed = any_failed || !report.allDone();
        }
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
    return any_failed ? 1 : 0;
}
