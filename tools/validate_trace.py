#!/usr/bin/env python3
"""Validate a Chrome/Perfetto trace-event JSON file.

Usage:
    tools/validate_trace.py TRACE.json

Checks the structural rules of the "JSON Array Format"/"JSON Object
Format" trace-event documents that ui.perfetto.dev and chrome://tracing
accept:

  - top level is either an event array or an object with "traceEvents"
  - every event has a "ph" phase and integer pid/tid where required
  - "X" complete events carry numeric ts and non-negative dur
  - "M" metadata events carry a name and an args.name payload
  - flow events ("s"/"t"/"f") carry matching id/cat/name, every flow id
    has exactly one start and one end, and steps/ends never precede the
    start in the event stream

Exit status: 0 when valid, 1 on any violation, 2 on usage errors.
"""

import json
import sys

KNOWN_PHASES = set("BEXIiCMsftPNODabenv")
REAL = (int, float)


def fail(errors, index, message):
    errors.append(f"  event[{index}]: {message}")


def validate(doc):
    if isinstance(doc, dict):
        events = doc.get("traceEvents")
        if not isinstance(events, list):
            return ["  top-level object lacks a 'traceEvents' array"]
    elif isinstance(doc, list):
        events = doc
    else:
        return ["  top level must be an array or an object"]

    errors = []
    flow_starts = {}
    flow_ends = {}
    for i, e in enumerate(events):
        if not isinstance(e, dict):
            fail(errors, i, "not an object")
            continue
        ph = e.get("ph")
        if not isinstance(ph, str) or ph not in KNOWN_PHASES:
            fail(errors, i, f"unknown phase {ph!r}")
            continue
        if not isinstance(e.get("pid"), int):
            fail(errors, i, "missing integer 'pid'")
        if ph != "M" and not isinstance(e.get("tid"), int):
            fail(errors, i, "missing integer 'tid'")

        if ph == "M":
            if e.get("name") not in (
                    "process_name", "thread_name", "process_labels",
                    "process_sort_index", "thread_sort_index"):
                fail(errors, i, f"metadata name {e.get('name')!r}")
            elif e["name"].endswith("_name") and not isinstance(
                    e.get("args", {}).get("name"), str):
                fail(errors, i, "metadata without args.name string")
            continue

        if not isinstance(e.get("ts"), REAL):
            fail(errors, i, "missing numeric 'ts'")
        if ph == "X":
            dur = e.get("dur")
            if not isinstance(dur, REAL):
                fail(errors, i, "complete event without numeric 'dur'")
            elif dur < 0:
                fail(errors, i, f"negative dur {dur}")
            if not isinstance(e.get("name"), str) or not e["name"]:
                fail(errors, i, "complete event without a name")

        if ph in "sft":
            key = (e.get("cat"), e.get("name"), e.get("id"))
            if key[0] is None or key[1] is None or key[2] is None:
                fail(errors, i, "flow event without cat/name/id")
                continue
            if ph == "s":
                if key in flow_starts:
                    fail(errors, i, f"duplicate flow start id {key[2]}")
                flow_starts[key] = i
            else:
                if key not in flow_starts:
                    fail(errors, i,
                         f"flow {ph!r} before its start (id {key[2]})")
                if ph == "f":
                    if key in flow_ends:
                        fail(errors, i,
                             f"duplicate flow end id {key[2]}")
                    flow_ends[key] = i

    for key, where in flow_starts.items():
        if key not in flow_ends:
            errors.append(f"  flow id {key[2]} (started at event[{where}])"
                          " never ends")
    return errors


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    path = sys.argv[1]
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"validate_trace: cannot read {path}: {exc}",
              file=sys.stderr)
        return 1

    errors = validate(doc)
    events = doc["traceEvents"] if isinstance(doc, dict) else doc
    if errors:
        print(f"validate_trace: {path}: INVALID "
              f"({len(errors)} problem(s)):")
        for line in errors[:40]:
            print(line)
        if len(errors) > 40:
            print(f"  ... and {len(errors) - 40} more")
        return 1
    counts = {}
    for e in events:
        counts[e.get("ph")] = counts.get(e.get("ph"), 0) + 1
    summary = ", ".join(f"{k}:{v}" for k, v in sorted(counts.items()))
    print(f"validate_trace: {path}: OK ({len(events)} events; {summary})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
