#!/usr/bin/env python3
"""Differential clang-tidy: lint only the files a branch touched.

Usage:
    tools/tidy_diff.py [--base REF] [--build-dir DIR] [--tidy BIN]

Runs clang-tidy (configuration from .clang-tidy, compile commands from
the build directory) over the .cc/.hh files changed between the merge
base of REF (default: origin/main) and the working tree. A full-tree
tidy run takes minutes; the differential run keeps the PR feedback
loop proportional to the change.

Exit status: 0 when clean or nothing to lint, 1 on clang-tidy
findings, 2 on usage/environment errors. When clang-tidy is not
installed the script reports and exits 0 so non-clang containers can
run the same CI recipe.
"""

import argparse
import os
import shutil
import subprocess
import sys


def changed_files(base):
    """Paths changed vs the merge base of `base`, plus uncommitted."""
    try:
        merge_base = subprocess.run(
            ["git", "merge-base", base, "HEAD"],
            capture_output=True, text=True, check=True,
        ).stdout.strip()
    except subprocess.CalledProcessError:
        # No such ref (shallow clone, detached CI checkout): fall back
        # to comparing against the ref directly, then to HEAD~1.
        merge_base = base
    paths = set()
    for args in (["git", "diff", "--name-only", merge_base, "--"],
                 ["git", "diff", "--name-only", "--"]):
        proc = subprocess.run(args, capture_output=True, text=True)
        if proc.returncode != 0:
            print(f"tidy_diff: {' '.join(args)} failed: "
                  f"{proc.stderr.strip()}", file=sys.stderr)
            sys.exit(2)
        paths.update(p for p in proc.stdout.splitlines() if p)
    return sorted(paths)


def lintable(paths):
    """Changed sources clang-tidy can process via compile commands."""
    out = []
    for p in paths:
        if not p.endswith(".cc"):
            continue
        if not (p.startswith("src/") or p.startswith("tools/")):
            continue
        if p.startswith("tools/samlint/fixtures/"):
            continue  # Deliberate violations.
        if os.path.exists(p):
            out.append(p)
    return out


def main():
    parser = argparse.ArgumentParser(
        description="clang-tidy over changed files only")
    parser.add_argument("--base", default="origin/main",
                        help="ref to diff against "
                             "(default: %(default)s)")
    parser.add_argument("--build-dir", default="build",
                        help="directory with compile_commands.json "
                             "(default: %(default)s)")
    parser.add_argument("--tidy", default="clang-tidy",
                        help="clang-tidy binary (default: %(default)s)")
    args = parser.parse_args()

    tidy = shutil.which(args.tidy)
    if tidy is None:
        print(f"tidy_diff: {args.tidy} not installed; skipping "
              f"(the samlint binary covers the project checks)")
        return 0

    if not os.path.exists(
            os.path.join(args.build_dir, "compile_commands.json")):
        print(f"tidy_diff: no compile_commands.json in "
              f"{args.build_dir!r}; configure with "
              f"-DCMAKE_EXPORT_COMPILE_COMMANDS=ON first",
              file=sys.stderr)
        return 2

    files = lintable(changed_files(args.base))
    if not files:
        print("tidy_diff: no changed .cc files to lint")
        return 0

    print(f"tidy_diff: linting {len(files)} changed file(s) vs "
          f"{args.base}")
    for f in files:
        print(f"  {f}")
    proc = subprocess.run([tidy, "-p", args.build_dir, "--quiet",
                           *files])
    return 1 if proc.returncode != 0 else 0


if __name__ == "__main__":
    sys.exit(main())
