#!/usr/bin/env python3
"""Cross-engine bit-identity smoke test for samcampaign (stdlib only).

The step and event replay engines are command-stream identical by
construction; this proves it end to end on the real campaign binaries:

  1. run the fig12/13/15 quick campaigns under `--engine step` and
     `--engine event`, at `--jobs 1` and `--jobs 8`;
  2. assert the BENCH documents are byte-identical modulo wall-clock
     fields (wall_ms, run_wall_ms_total, throughput, jobs) -- every
     cycle count, stat counter, ECC/RAS figure, and derived metric
     must match;
  3. assert the JOURNALs are identical modulo the per-line wall
     timestamp (ts_ms) and attempt wall times.

Usage:
    python3 tools/engine_diff_smoke.py <samcampaign> [fig...]

Registered as the `engine_diff_smoke` ctest; the driver passes the
built binary. Exit 0 on success, 1 with a diagnostic on the first
mismatch.
"""

import json
import os
import subprocess
import sys
import tempfile

FIGS = ["12", "13", "15"]
JOBS = ["1", "8"]
WALL_BENCH_KEYS = ("wall_ms", "run_wall_ms_total", "jobs", "throughput")
WALL_JOURNAL_KEYS = ("ts_ms", "wall_ms")


def fail(step, message, proc=None):
    print(f"engine_diff_smoke: FAIL [{step}]: {message}")
    if proc is not None:
        print(f"  command: {' '.join(proc.args)}")
        print(f"  exit:    {proc.returncode}")
        for line in proc.stdout.splitlines()[-15:]:
            print(f"  | {line}")
    sys.exit(1)


def normalized_bench(path):
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    for key in WALL_BENCH_KEYS:
        doc.pop(key, None)
    for row in doc.get("runs", []):
        for key in WALL_BENCH_KEYS:
            row.pop(key, None)
    return doc


def strip_wall(node, keys):
    """Drop wall-clock keys anywhere in a JSON tree, in place."""
    if isinstance(node, dict):
        for key in keys:
            node.pop(key, None)
        for value in node.values():
            strip_wall(value, keys)
    elif isinstance(node, list):
        for value in node:
            strip_wall(value, keys)
    return node


def normalized_journal(path):
    lines = []
    with open(path, encoding="utf-8") as fh:
        for raw in fh:
            lines.append(
                strip_wall(json.loads(raw),
                           WALL_JOURNAL_KEYS + ("throughput",)))
    # Journal lines land in worker completion order, which is
    # legitimately nondeterministic at --jobs > 1; the invariant is the
    # multiset of records, so compare in a canonical order.
    lines.sort(key=lambda row: json.dumps(row, sort_keys=True))
    return lines


def run_campaign(samcampaign, out, fig, jobs, engine):
    os.makedirs(out)
    proc = subprocess.run(
        [samcampaign, "--fig", fig, "--quick", "--jobs", jobs,
         "--engine", engine, "--out", out],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    if proc.returncode != 0:
        fail(f"fig{fig} jobs={jobs} {engine}", "campaign failed", proc)
    return (normalized_bench(os.path.join(out, f"BENCH_fig{fig}.json")),
            normalized_journal(
                os.path.join(out, f"JOURNAL_fig{fig}.jsonl")))


def first_diff(a, b):
    """Human-readable pointer at the first differing entry."""
    if isinstance(a, list) and isinstance(b, list):
        for i, (x, y) in enumerate(zip(a, b)):
            if x != y:
                return f"entry {i}: {json.dumps(x)[:200]} != " \
                       f"{json.dumps(y)[:200]}"
        return f"length {len(a)} != {len(b)}"
    ka, kb = set(a), set(b)
    if ka != kb:
        return f"key sets differ: {sorted(ka ^ kb)}"
    for k in sorted(ka):
        if a[k] != b[k]:
            if isinstance(a[k], (list, dict)):
                return f"'{k}': " + first_diff(a[k], b[k])
            return f"'{k}': {a[k]} != {b[k]}"
    return "(no diff found?)"


def main():
    if len(sys.argv) < 2:
        print(__doc__)
        return 1
    samcampaign = sys.argv[1]
    figs = sys.argv[2:] or FIGS
    with tempfile.TemporaryDirectory(prefix="engine_diff_") as tmp:
        for fig in figs:
            for jobs in JOBS:
                outs = {}
                for engine in ("step", "event"):
                    out = os.path.join(tmp, f"f{fig}_j{jobs}_{engine}")
                    outs[engine] = run_campaign(samcampaign, out, fig,
                                                jobs, engine)
                step_bench, step_journal = outs["step"]
                event_bench, event_journal = outs["event"]
                tag = f"fig{fig} jobs={jobs}"
                if step_bench != event_bench:
                    fail(tag, "BENCH differs: " +
                         first_diff(step_bench, event_bench))
                if step_journal != event_journal:
                    fail(tag, "JOURNAL differs: " +
                         first_diff(step_journal, event_journal))
                print(f"engine_diff_smoke: {tag}: BENCH+JOURNAL "
                      f"bit-identical ({len(step_bench['runs'])} runs)")
    print("engine_diff_smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
