#include "src/area/area_model.hh"

#include "src/common/logging.hh"

namespace sam {

double
AreaReport::areaOverhead() const
{
    double sum = 0.0;
    for (const auto &c : areaComponents)
        sum += c.fraction;
    return sum;
}

AreaReport
AreaModel::report(DesignKind design)
{
    AreaReport r;
    r.design = design;
    switch (design) {
      case DesignKind::Baseline:
      case DesignKind::Ideal:
        break;

      case DesignKind::RcNvmBit:
        // Section 3.3.2: duplicated peripheral circuits and wires give
        // ~15% silicon overhead plus two extra metal layers.
        r.areaComponents = {
            {"duplicated peripheral circuits (SAs, decoders)", 0.10},
            {"duplicated connection wires (CSLs, LDLs, GWLs)", 0.05},
        };
        r.extraMetalLayers = 2;
        break;

      case DesignKind::RcNvmWord:
        // Reshaped 2D (4x4-mat) subarray increases global BL count:
        // up to ~33% area overhead (Section 3.3.2).
        r.areaComponents = {
            {"duplicated peripheral circuits (SAs, decoders)", 0.10},
            {"duplicated connection wires (CSLs, LDLs, GWLs)", 0.05},
            {"additional global BLs from reshaped 2D subarray", 0.18},
        };
        r.extraMetalLayers = 2;
        break;

      case DesignKind::GsDram:
        // In-DRAM shuffling logic only; negligible.
        r.areaComponents = {
            {"intra-chip shuffle / address translation logic", 0.001},
        };
        break;

      case DesignKind::GsDramEcc:
        r.areaComponents = {
            {"intra-chip shuffle / address translation logic", 0.001},
        };
        // Embedded ECC stores the 8B of check bits per 64B line in data
        // pages: 12.5% of capacity.
        r.storageOverhead = 0.125;
        break;

      case DesignKind::SamSub:
        // Section 6.1: 4 extra global BLs in M2 (5.7%), column-subarray
        // control lines in M3 (0.7%), extra global SAs (0.8%), and the
        // simplified column decoder (<0.01%). Total ~7.2%.
        r.areaComponents = {
            {"row-wise global bitlines (8 M2 tracks)", 0.057},
            {"column-subarray control lines (M3)", 0.007},
            {"extra global sense amplifiers (0.14 mm^2)", 0.008},
            {"column-subarray decoder logic", 0.0001},
        };
        break;

      case DesignKind::SamIo:
        // Only the 7-bit I/O mode register; the driver interconnect is
        // bonded at packaging and costs no silicon (Section 4.2.1).
        r.areaComponents = {
            {"7-bit I/O mode register", 0.00005},
        };
        break;

      case DesignKind::SamEn:
        // Control lines as SAM-sub's M3 component plus the second
        // serializer set (Section 6.1: ~0.7% total).
        r.areaComponents = {
            {"fine-grained activation control lines (M3)", 0.007},
            {"second (column-wise) serializer set", 0.0001},
        };
        break;
    }
    return r;
}

double
AreaModel::areaOverhead(DesignKind design)
{
    return report(design).areaOverhead();
}

double
AreaModel::storageOverhead(DesignKind design)
{
    return report(design).storageOverhead;
}

} // namespace sam
