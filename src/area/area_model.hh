/**
 * @file
 * Analytical area / storage overhead model (Section 6.1 "Area" and
 * Figure 14(c)). Overheads are composed from the paper's published
 * wiring-track and peripheral-logic accounting; the totals drive the
 * timing derating of Section 6.1 ("other latency parameters ... are
 * increased proportionally to the area overhead").
 */

#ifndef SAM_AREA_AREA_MODEL_HH
#define SAM_AREA_AREA_MODEL_HH

#include <string>
#include <vector>

#include "src/common/types.hh"

namespace sam {

/** One contributor to a design's overhead. */
struct AreaComponent
{
    std::string name;
    double fraction;  ///< Of baseline die area (or capacity for storage).
};

/** Full overhead report for one design. */
struct AreaReport
{
    DesignKind design;
    std::vector<AreaComponent> areaComponents;
    double storageOverhead = 0.0;   ///< Capacity lost (GS-DRAM-ecc).
    unsigned extraMetalLayers = 0;  ///< RC-NVM's routing layers.

    /** Sum of area components. */
    double areaOverhead() const;
};

/** The overhead accounting for every evaluated design. */
class AreaModel
{
  public:
    /** Per-design report with itemised components. */
    static AreaReport report(DesignKind design);

    /** Total die-area overhead used for timing derating. */
    static double areaOverhead(DesignKind design);

    /** Storage (capacity) overhead. */
    static double storageOverhead(DesignKind design);
};

} // namespace sam

#endif // SAM_AREA_AREA_MODEL_HH
