/**
 * @file
 * Independent DDR4/RRAM protocol oracle.
 *
 * The ProtocolChecker observes the command stream a Device emits
 * (ACT/PRE/RD/WR/REF plus SAM I/O mode switches) and re-derives the
 * legality of every command from TimingParams with its own per-bank /
 * per-rank / per-channel state machines. It deliberately shares no
 * scheduling code with Device: the engine reserves resources forward in
 * time, the checker replays the finished stream in wall-clock order and
 * checks pairwise constraints backward -- so a bug in the engine's
 * reservation logic cannot hide itself from the oracle.
 *
 * Checked constraints:
 *  - bank state machine: no CAS to a closed bank or to the wrong row,
 *    no double ACT, ACT only tRP after PRE, REF only with every bank of
 *    the rank precharged;
 *  - bank timing: tRCD, tRAS, tRC, tWR, tRTP;
 *  - rank timing: tRRD_S/L, the 4-deep tFAW sliding window, tCCD_S/L,
 *    tWTR_S/L, refresh blackout (tRFC) and the tREFI postponement
 *    deadline (at most 8 intervals, as DDR4 allows);
 *  - SAM mode rules (Section 5.3): a switch must serialize after the
 *    rank's last CAS, consecutive switches and the first CAS after a
 *    switch are tRTR apart, and every CAS's mode must match the rank's
 *    current mode;
 *  - data bus: burst windows derived from CAS time + CL/CWL must not
 *    overlap, rank-to-rank handovers need a tRTR bubble, and write data
 *    must trail read data on the same rank by the turnaround bubble.
 *
 * The command bus itself (one command slot per cycle) is not modelled
 * by the engine and therefore not checked.
 */

#ifndef SAM_CHECK_PROTOCOL_CHECKER_HH
#define SAM_CHECK_PROTOCOL_CHECKER_HH

#include <cstddef>
#include <deque>
#include <string>
#include <vector>

#include "src/common/types.hh"
#include "src/dram/command.hh"
#include "src/dram/timing.hh"

namespace sam {

class Device;

/** One detected protocol violation, with full command context. */
struct Violation
{
    /** Name of the violated constraint (e.g. "tFAW", "bank-state"). */
    std::string constraint;
    /** Human-readable description with the commands involved. */
    std::string message;
    /** The offending command. */
    Command cmd;
    /** Index of the command in the time-sorted stream. */
    std::size_t index = 0;
};

class ProtocolChecker
{
  public:
    ProtocolChecker(const Geometry &geom, const TimingParams &timing);

    /** Detaches from the observed device, if attached. */
    ~ProtocolChecker();

    ProtocolChecker(const ProtocolChecker &) = delete;
    ProtocolChecker &operator=(const ProtocolChecker &) = delete;

    /** Record one command (any order; sorted before checking). */
    void observe(const Command &cmd);

    /**
     * Install this checker as `dev`'s command observer. The device
     * must outlive the checker (or the checker must be destroyed
     * first); the observer is unhooked in the destructor.
     */
    void attach(Device &dev);

    /**
     * Sort the observed stream and run all checks. Idempotent until
     * more commands are observed. Returns all violations found.
     */
    const std::vector<Violation> &violations();

    /** True when the whole observed stream is protocol-legal. */
    bool clean() { return violations().empty(); }

    std::size_t commandCount() const { return commands_.size(); }

    /** Multi-line report of up to `max_violations` violations. */
    std::string report(std::size_t max_violations = 20);

  private:
    struct BankCheck
    {
        bool open = false;
        std::uint64_t row = 0;
        bool hasAct = false, hasPre = false, hasRd = false,
             hasWr = false;
        Cycle lastAct = 0;   ///< Last ACT issue.
        Cycle lastPre = 0;   ///< Last PRE issue.
        Cycle lastRdCas = 0; ///< Last RD CAS issue (tRTP).
        Cycle lastWrEnd = 0; ///< Last WR data end (tWR).
    };

    struct RankCheck
    {
        bool hasAct = false, hasCas = false, hasWr = false,
             hasRd = false, hasSwitch = false, hasRef = false;
        Cycle lastAct = 0;
        Cycle lastCas = 0;
        Cycle lastWrEnd = 0; ///< tWTR_S.
        std::vector<Cycle> groupLastAct;   ///< tRRD_L.
        std::vector<Cycle> groupLastCas;   ///< tCCD_L.
        std::vector<Cycle> groupLastWrEnd; ///< tWTR_L.
        std::vector<char> groupHasAct, groupHasCas, groupHasWr;
        std::deque<Cycle> actWindow; ///< Up to 4 last ACTs (tFAW).
        AccessMode mode = AccessMode::Regular;
        Cycle lastSwitch = 0;
        Cycle refStart = 0, refEnd = 0; ///< Last refresh blackout.
        std::uint64_t refCount = 0;     ///< For the tREFI deadline.
    };

    /** One derived data-bus burst, checked in a second pass. */
    struct Burst
    {
        Cycle start = 0, end = 0;
        unsigned channel = 0, rank = 0;
        bool isWrite = false;
        std::size_t index = 0; ///< Sorted-stream index of the CAS.
        Command cmd;
    };

    void run();
    void flag(const std::string &constraint, const Command &cmd,
              std::size_t index, const std::string &detail);
    /** Commands addressed to a refreshing rank are illegal (tRFC). */
    void checkRefreshBlackout(const RankCheck &rank, const Command &cmd,
                              std::size_t index);
    void checkAct(BankCheck &bank, RankCheck &rank, const Command &cmd,
                  std::size_t index);
    void checkPre(BankCheck &bank, const Command &cmd,
                  std::size_t index);
    void checkCas(BankCheck &bank, RankCheck &rank, const Command &cmd,
                  std::size_t index);
    void checkModeSwitch(RankCheck &rank, const Command &cmd,
                         std::size_t index);
    void checkRef(RankCheck &rank, const Command &cmd,
                  std::size_t index);
    void checkDataBus(const std::vector<Burst> &bursts);

    Geometry geom_;
    TimingParams timing_;
    Device *device_ = nullptr; ///< Attached device (for detach).
    std::vector<Command> commands_;
    std::vector<Violation> violations_;
    bool checked_ = false;
};

} // namespace sam

#endif // SAM_CHECK_PROTOCOL_CHECKER_HH
