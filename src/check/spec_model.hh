/**
 * @file
 * Declarative timing specification and offline model checker.
 *
 * The ProtocolChecker (protocol_checker.cc) re-derives command legality
 * imperatively, one `if` per constraint. This module lifts the same
 * rules into data: a table of pairwise issue-gap rules
 * (prev-kind -> next-kind at bank / bank-group / rank / channel scope),
 * plus the small set of constraints that are not pairwise (the tFAW
 * four-activate window, bank/mode/refresh state legality, the tREFI
 * postponement deadline). SpecModel evaluates that table forward: given
 * a command history it answers "what is the earliest cycle this
 * candidate may issue?".
 *
 * verifySpecAgainstChecker() then explores the joint command FSM by
 * bounded BFS, and at every reachable state cross-examines the two
 * implementations:
 *
 *  - issuing a candidate at its spec-earliest cycle must be clean under
 *    the ProtocolChecker (spec is not looser than the checker);
 *  - issuing it one cycle earlier, when the bound is binding, must be
 *    flagged with one of the binding rule names (spec is not tighter);
 *  - state-illegal candidates must be flagged (bank/mode/refresh state
 *    agreement);
 *  - issuing later than the earliest must stay clean (legality is
 *    upward-closed in time -- the monotonicity property the skip-ahead
 *    scheduler relies on), except past the tREFI deadline;
 *  - every reachable state must have at least one issuable candidate
 *    with a finite earliest cycle (no deadlock).
 *
 * States are deduplicated by a canonical encoding with cycle deltas
 * rebased to the last issue and saturated at the spec horizon (the
 * largest gap any rule can look back), so the BFS terminates on the
 * quotient FSM rather than on raw unbounded cycle counts.
 */

#ifndef SAM_CHECK_SPEC_MODEL_HH
#define SAM_CHECK_SPEC_MODEL_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/types.hh"
#include "src/dram/command.hh"
#include "src/dram/timing.hh"

namespace sam {

/** Scope a pairwise rule measures its gap across. */
enum class SpecScope { Bank, BankGroup, Rank, Channel };

/** Rank relation for Channel-scope (data-bus) rules. */
enum class SpecRankRel { Any, Same, Diff };

/**
 * One pairwise issue-gap rule: a `next`-kind command must issue at
 * least `gap` cycles after the latest `prev`-kind command in scope.
 * Gaps are in issue-to-issue cycles; rules derived from data-relative
 * constraints (tWR, tWTR, bus occupancy) fold the CAS-to-data offsets
 * into the gap. `name` matches the constraint name the ProtocolChecker
 * uses when flagging a violation of the same rule.
 */
struct SpecRule
{
    CmdKind prev = CmdKind::Act;
    CmdKind next = CmdKind::Act;
    SpecScope scope = SpecScope::Bank;
    SpecRankRel rankRel = SpecRankRel::Any;
    unsigned gap = 0;
    std::string name;
};

/**
 * Build the full pairwise rule table for one timing preset. Rules whose
 * derived gap is zero or negative (e.g. the same-rank WR->RD bus rule,
 * dominated by tWTR) are dropped: a non-positive issue gap can never
 * bind. Refresh-blackout rules are dropped when tRFC is zero.
 */
std::vector<SpecRule> specRuleTable(const TimingParams &timing);

/**
 * Render the rule table plus the non-pairwise constraints as stable
 * one-line-per-rule text (golden-test surface; see
 * tests/test_spec_model.cc).
 */
std::string describeRuleTable(const TimingParams &timing);

/**
 * Forward evaluator for the rule table: tracks per-bank / per-group /
 * per-rank last-issue times, the tFAW window, bank open state, rank
 * I/O mode and refresh count, and answers earliest-legal queries.
 * Copyable value type.
 */
class SpecModel
{
  public:
    /** A candidate command, before an issue time is chosen. */
    struct Cand
    {
        CmdKind kind = CmdKind::Act;
        MappedAddr addr;
        AccessMode mode = AccessMode::Regular;
    };

    SpecModel(const Geometry &geom, const TimingParams &timing);

    /**
     * Bank/row/mode/refresh state legality -- independent of the issue
     * time chosen.
     */
    bool stateLegal(const Cand &c) const;

    /**
     * Earliest cycle >= `from` at which `c` may issue. `c` must be
     * state-legal. Pass lastIssue() as `from` to respect stream order.
     */
    Cycle earliestLegal(const Cand &c, Cycle from) const;

    /**
     * Names of the rules whose bound equals `at` (the constraints that
     * make issuing at `at - 1` illegal). Empty when no rule binds at
     * `at`, i.e. the earliest-legal bound came from `from` alone.
     */
    std::vector<std::string> bindingRules(const Cand &c, Cycle at) const;

    /** True when `c` is state-legal and `at` >= its earliest cycle. */
    bool legalAt(const Cand &c, Cycle at) const;

    /** Commit `c` at `at` (must be >= lastIssue()). */
    void apply(const Cand &c, Cycle at);

    /** Issue time of the last applied command (0 when none). */
    Cycle lastIssue() const { return lastIssue_; }

    /**
     * Latest cycle the rank's next REF may issue: DDR4 allows
     * postponing 8 refresh intervals. Meaningless when tREFI is 0.
     */
    Cycle refDeadline(unsigned channel, unsigned rank) const;

    /** Current I/O mode of a rank. */
    AccessMode rankMode(unsigned channel, unsigned rank) const;

    /**
     * Canonical state encoding: cycle ages rebased to lastIssue() and
     * saturated at horizon(). Two states with equal encodings admit
     * exactly the same future behavior.
     */
    std::string canonical() const;

    /**
     * Look-back bound: no rule (pairwise, tFAW) reaches further than
     * this many cycles into the past.
     */
    Cycle horizon() const { return horizon_; }

    const std::vector<SpecRule> &rules() const { return rules_; }
    const Geometry &geometry() const { return geom_; }
    const TimingParams &timing() const { return timing_; }

  private:
    static constexpr unsigned kKinds = 6;

    /** Last issue time per command kind at one scope. */
    struct KindTimes
    {
        std::array<Cycle, kKinds> last{};
        std::array<bool, kKinds> has{};
    };
    struct BankS
    {
        KindTimes t;
        bool open = false;
        std::uint64_t row = 0;
    };
    struct GroupS
    {
        KindTimes t;
    };
    struct RankS
    {
        KindTimes t;
        std::vector<Cycle> actWindow; ///< Up to 4 most recent ACTs.
        AccessMode mode = AccessMode::Regular;
        std::uint64_t refCount = 0;
    };

    std::size_t rankId(unsigned ch, unsigned rk) const;
    std::size_t groupId(const MappedAddr &a) const;
    std::size_t bankId(const MappedAddr &a) const;
    /** Kinds addressed to a specific bank (Act/Pre/Rd/Wr). */
    static bool bankKind(CmdKind kind);
    /**
     * Rule evaluation core shared by earliestLegal / bindingRules:
     * calls `fn(ruleIndex, boundCycle)` for every applicable rule
     * instance plus the tFAW window (ruleIndex == rules_.size()).
     */
    template <typename Fn> void forEachBound(const Cand &c, Fn fn) const;

    Geometry geom_;
    TimingParams timing_;
    std::vector<SpecRule> rules_;
    Cycle horizon_ = 0;
    Cycle lastIssue_ = 0;
    std::vector<BankS> banks_;
    std::vector<GroupS> groups_;
    std::vector<RankS> ranks_;
};

/** Knobs for the bounded BFS exploration. */
struct VerifyOptions
{
    unsigned depth = 3;           ///< Commands per explored sequence.
    std::size_t maxNodes = 4000;  ///< Stop expanding past this many.
    unsigned probeRows = 2;       ///< Row alphabet per bank.
    bool monotone = true;         ///< Probe upward-closure.
    std::size_t maxFailures = 20; ///< Stop collecting past this many.
};

/** Outcome of one verification run. */
struct VerifyStats
{
    std::size_t nodesExplored = 0;
    std::size_t statesDeduped = 0;    ///< Successors merged by canon.
    std::size_t checkerRuns = 0;      ///< ProtocolChecker replays.
    std::size_t earliestProbes = 0;   ///< Clean-at-earliest checks.
    std::size_t boundaryProbes = 0;   ///< Flagged-at-earliest-1 checks.
    std::size_t stateProbes = 0;      ///< State-illegal checks.
    std::size_t monotoneProbes = 0;   ///< Upward-closure checks.
    bool exhausted = false; ///< Frontier drained before maxNodes hit.
    std::vector<std::string> failures;

    bool ok() const { return failures.empty(); }
    std::string summary() const;
};

/**
 * Explore every command sequence of the given depth (up to state
 * equivalence) and cross-check SpecModel against ProtocolChecker at
 * each step. See the file comment for the probes performed.
 */
VerifyStats verifySpecAgainstChecker(const Geometry &geom,
                                     const TimingParams &timing,
                                     const VerifyOptions &opt);

} // namespace sam

#endif // SAM_CHECK_SPEC_MODEL_HH
