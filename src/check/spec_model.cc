#include "src/check/spec_model.hh"

#include <algorithm>
#include <deque>
#include <memory>
#include <sstream>
#include <unordered_set>

#include "src/check/protocol_checker.hh"
#include "src/common/logging.hh"

namespace sam {

namespace {

constexpr unsigned
kindIx(CmdKind kind)
{
    return static_cast<unsigned>(kind);
}

const char *
specKindName(CmdKind kind)
{
    switch (kind) {
      case CmdKind::Act:        return "ACT";
      case CmdKind::Pre:        return "PRE";
      case CmdKind::Rd:         return "RD";
      case CmdKind::Wr:         return "WR";
      case CmdKind::Ref:        return "REF";
      case CmdKind::ModeSwitch: return "MSW";
    }
    panic("unknown CmdKind");
}

const char *
scopeName(SpecScope scope)
{
    switch (scope) {
      case SpecScope::Bank:      return "bank";
      case SpecScope::BankGroup: return "group";
      case SpecScope::Rank:      return "rank";
      case SpecScope::Channel:   return "channel";
    }
    panic("unknown SpecScope");
}

const char *
relName(SpecRankRel rel)
{
    switch (rel) {
      case SpecRankRel::Any:  return "any";
      case SpecRankRel::Same: return "same";
      case SpecRankRel::Diff: return "diff";
    }
    panic("unknown SpecRankRel");
}

} // namespace

std::vector<SpecRule>
specRuleTable(const TimingParams &t)
{
    std::vector<SpecRule> rules;
    const auto add = [&rules](CmdKind prev, CmdKind next, SpecScope scope,
                              SpecRankRel rel, long long gap,
                              const char *name) {
        // A non-positive issue gap can never bind (history is always at
        // or before the issue floor), so the rule is dropped.
        if (gap <= 0)
            return;
        SpecRule r;
        r.prev = prev;
        r.next = next;
        r.scope = scope;
        r.rankRel = rel;
        r.gap = static_cast<unsigned>(gap);
        r.name = name;
        rules.push_back(std::move(r));
    };
    const auto any = SpecRankRel::Any;

    // Bank state machine timings.
    add(CmdKind::Pre, CmdKind::Act, SpecScope::Bank, any, t.tRP, "tRP");
    add(CmdKind::Act, CmdKind::Act, SpecScope::Bank, any,
        static_cast<long long>(t.tRC()), "tRC");
    add(CmdKind::Act, CmdKind::Pre, SpecScope::Bank, any, t.tRAS,
        "tRAS");
    add(CmdKind::Rd, CmdKind::Pre, SpecScope::Bank, any, t.tRTP,
        "tRTP");
    // tWR counts from write-data end; fold the CAS-to-data-end offset
    // into an issue-to-issue gap.
    add(CmdKind::Wr, CmdKind::Pre, SpecScope::Bank, any,
        static_cast<long long>(t.cwl) + t.tBL + t.tWR, "tWR");
    add(CmdKind::Act, CmdKind::Rd, SpecScope::Bank, any, t.tRCD,
        "tRCD");
    add(CmdKind::Act, CmdKind::Wr, SpecScope::Bank, any, t.tRCD,
        "tRCD");

    // Activate spacing.
    add(CmdKind::Act, CmdKind::Act, SpecScope::Rank, any, t.tRRD_S,
        "tRRD_S");
    add(CmdKind::Act, CmdKind::Act, SpecScope::BankGroup, any,
        t.tRRD_L, "tRRD_L");

    // CAS spacing.
    const CmdKind cas[2] = {CmdKind::Rd, CmdKind::Wr};
    for (CmdKind prev : cas)
        for (CmdKind next : cas)
            add(prev, next, SpecScope::Rank, any, t.tCCD_S, "tCCD_S");
    for (CmdKind prev : cas)
        for (CmdKind next : cas)
            add(prev, next, SpecScope::BankGroup, any, t.tCCD_L,
                "tCCD_L");

    // Write-to-read turnaround (from write-data end).
    add(CmdKind::Wr, CmdKind::Rd, SpecScope::Rank, any,
        static_cast<long long>(t.cwl) + t.tBL + t.tWTR_S, "tWTR_S");
    add(CmdKind::Wr, CmdKind::Rd, SpecScope::BankGroup, any,
        static_cast<long long>(t.cwl) + t.tBL + t.tWTR_L, "tWTR_L");

    // SAM I/O mode pipeline (Section 5.3): tRTR after a switch, and a
    // switch must issue strictly after the rank's last CAS.
    add(CmdKind::ModeSwitch, CmdKind::Rd, SpecScope::Rank, any, t.tRTR,
        "tRTR(mode)");
    add(CmdKind::ModeSwitch, CmdKind::Wr, SpecScope::Rank, any, t.tRTR,
        "tRTR(mode)");
    add(CmdKind::ModeSwitch, CmdKind::ModeSwitch, SpecScope::Rank, any,
        t.tRTR, "tRTR(mode)");
    add(CmdKind::Rd, CmdKind::ModeSwitch, SpecScope::Rank, any, 1,
        "mode-state");
    add(CmdKind::Wr, CmdKind::ModeSwitch, SpecScope::Rank, any, 1,
        "mode-state");

    // Refresh blackout: nothing else on the rank for tRFC. The checker
    // does not black out PRE (the engine precharges before REF), so the
    // spec must not either.
    if (t.tRFC > 0) {
        const CmdKind blocked[5] = {CmdKind::Ref, CmdKind::Act,
                                    CmdKind::Rd, CmdKind::Wr,
                                    CmdKind::ModeSwitch};
        for (CmdKind next : blocked)
            add(CmdKind::Ref, next, SpecScope::Rank, any, t.tRFC,
                "tRFC");
        // The blackout also reaches *backward* across a same-cycle
        // tie: REF sorts before an equal-time CAS or mode switch, so a
        // REF issued in the same cycle retroactively swallows it. REF
        // must serialize strictly after them.
        const CmdKind tied[3] = {CmdKind::Rd, CmdKind::Wr,
                                 CmdKind::ModeSwitch};
        for (CmdKind prev : tied)
            add(prev, CmdKind::Ref, SpecScope::Rank, any, 1, "tRFC");
    }

    // Data bus occupancy, expressed as issue-to-issue gaps: a burst
    // occupies [issue + offset, issue + offset + tBL) where the offset
    // is CL for reads and CWL for writes. Rank handovers add a tRTR
    // bubble; write data behind read data on the same rank needs the
    // 2-cycle turnaround bubble.
    const auto off = [&t](CmdKind k) -> long long {
        return k == CmdKind::Wr ? t.cwl : t.cl;
    };
    for (CmdKind prev : cas) {
        for (CmdKind next : cas) {
            const long long gap = off(prev) + t.tBL - off(next);
            add(prev, next, SpecScope::Channel, SpecRankRel::Same, gap,
                "bus-overlap");
            if (prev == CmdKind::Rd && next == CmdKind::Wr)
                add(prev, next, SpecScope::Channel, SpecRankRel::Same,
                    gap + 2, "rd-wr-turnaround");
            add(prev, next, SpecScope::Channel, SpecRankRel::Diff,
                gap + t.tRTR, "tRTR(bus)");
        }
    }
    return rules;
}

std::string
describeRuleTable(const TimingParams &t)
{
    std::ostringstream oss;
    for (const SpecRule &r : specRuleTable(t)) {
        oss << specKindName(r.prev) << "->" << specKindName(r.next)
            << " " << scopeName(r.scope) << " " << relName(r.rankRel)
            << " gap=" << r.gap << " " << r.name << "\n";
    }
    oss << "# tFAW: 5th ACT >= oldest-of-last-4-ACTs + " << t.tFAW
        << " (rank window)\n";
    oss << "# state: ACT needs bank closed; PRE needs bank open; RD/WR"
           " need open row and matching mode; REF needs all banks in"
           " rank closed\n";
    if (t.tREFI == 0)
        oss << "# refresh: REF illegal (tREFI=0)\n";
    else
        oss << "# refresh: k-th REF due by (k+9)*" << t.tREFI
            << " (tREFI, 8 postponements)\n";
    return oss.str();
}

SpecModel::SpecModel(const Geometry &geom, const TimingParams &timing)
    : geom_(geom), timing_(timing), rules_(specRuleTable(timing))
{
    for (const SpecRule &r : rules_)
        horizon_ = std::max<Cycle>(horizon_, r.gap);
    horizon_ = std::max<Cycle>(horizon_, timing_.tFAW) + 1;
    banks_.resize(static_cast<std::size_t>(geom_.channels) *
                  geom_.ranks * geom_.banksPerRank());
    groups_.resize(static_cast<std::size_t>(geom_.channels) *
                   geom_.ranks * geom_.bankGroups);
    ranks_.resize(static_cast<std::size_t>(geom_.channels) *
                  geom_.ranks);
}

std::size_t
SpecModel::rankId(unsigned ch, unsigned rk) const
{
    return static_cast<std::size_t>(ch) * geom_.ranks + rk;
}

std::size_t
SpecModel::groupId(const MappedAddr &a) const
{
    return rankId(a.channel, a.rank) * geom_.bankGroups + a.bankGroup;
}

std::size_t
SpecModel::bankId(const MappedAddr &a) const
{
    return rankId(a.channel, a.rank) * geom_.banksPerRank() +
           a.bankInRank(geom_);
}

bool
SpecModel::bankKind(CmdKind kind)
{
    return kind == CmdKind::Act || kind == CmdKind::Pre ||
           kind == CmdKind::Rd || kind == CmdKind::Wr;
}

bool
SpecModel::stateLegal(const Cand &c) const
{
    switch (c.kind) {
      case CmdKind::Act:
        return !banks_[bankId(c.addr)].open;
      case CmdKind::Pre:
        return banks_[bankId(c.addr)].open;
      case CmdKind::Rd:
      case CmdKind::Wr: {
        const BankS &bank = banks_[bankId(c.addr)];
        return bank.open && bank.row == c.addr.row &&
               c.mode == ranks_[rankId(c.addr.channel, c.addr.rank)].mode;
      }
      case CmdKind::ModeSwitch:
        return true;
      case CmdKind::Ref: {
        if (timing_.tREFI == 0)
            return false;
        const std::size_t base =
            rankId(c.addr.channel, c.addr.rank) * geom_.banksPerRank();
        for (unsigned b = 0; b < geom_.banksPerRank(); ++b) {
            if (banks_[base + b].open)
                return false;
        }
        return true;
      }
    }
    panic("unknown CmdKind");
}

template <typename Fn>
void
SpecModel::forEachBound(const Cand &c, Fn fn) const
{
    for (std::size_t i = 0; i < rules_.size(); ++i) {
        const SpecRule &r = rules_[i];
        if (r.next != c.kind)
            continue;
        const auto visit = [&](const KindTimes &t) {
            const unsigned p = kindIx(r.prev);
            if (t.has[p])
                fn(i, t.last[p] + r.gap);
        };
        switch (r.scope) {
          case SpecScope::Bank:
            visit(banks_[bankId(c.addr)].t);
            break;
          case SpecScope::BankGroup:
            visit(groups_[groupId(c.addr)].t);
            break;
          case SpecScope::Rank:
            visit(ranks_[rankId(c.addr.channel, c.addr.rank)].t);
            break;
          case SpecScope::Channel:
            for (unsigned rk = 0; rk < geom_.ranks; ++rk) {
                if (r.rankRel == SpecRankRel::Same &&
                    rk != c.addr.rank)
                    continue;
                if (r.rankRel == SpecRankRel::Diff &&
                    rk == c.addr.rank)
                    continue;
                visit(ranks_[rankId(c.addr.channel, rk)].t);
            }
            break;
        }
    }
    if (c.kind == CmdKind::Act) {
        const RankS &rank = ranks_[rankId(c.addr.channel, c.addr.rank)];
        if (rank.actWindow.size() >= 4)
            fn(rules_.size(), rank.actWindow.front() + timing_.tFAW);
    }
}

Cycle
SpecModel::earliestLegal(const Cand &c, Cycle from) const
{
    sam_assert(stateLegal(c), "earliestLegal on a state-illegal cand");
    Cycle e = from;
    forEachBound(c, [&e](std::size_t, Cycle bound) {
        e = std::max(e, bound);
    });
    return e;
}

std::vector<std::string>
SpecModel::bindingRules(const Cand &c, Cycle at) const
{
    std::vector<std::string> names;
    forEachBound(c, [&](std::size_t rule, Cycle bound) {
        if (bound != at)
            return;
        const std::string &name =
            rule < rules_.size() ? rules_[rule].name : "tFAW";
        if (std::find(names.begin(), names.end(), name) == names.end())
            names.push_back(name);
    });
    return names;
}

bool
SpecModel::legalAt(const Cand &c, Cycle at) const
{
    return stateLegal(c) && at >= earliestLegal(c, lastIssue_);
}

void
SpecModel::apply(const Cand &c, Cycle at)
{
    sam_assert(at >= lastIssue_, "commands must be applied in order");
    lastIssue_ = at;
    const unsigned k = kindIx(c.kind);
    RankS &rank = ranks_[rankId(c.addr.channel, c.addr.rank)];
    rank.t.last[k] = at;
    rank.t.has[k] = true;
    if (bankKind(c.kind)) {
        BankS &bank = banks_[bankId(c.addr)];
        GroupS &group = groups_[groupId(c.addr)];
        bank.t.last[k] = at;
        bank.t.has[k] = true;
        group.t.last[k] = at;
        group.t.has[k] = true;
        if (c.kind == CmdKind::Act) {
            bank.open = true;
            bank.row = c.addr.row;
            rank.actWindow.push_back(at);
            if (rank.actWindow.size() > 4)
                rank.actWindow.erase(rank.actWindow.begin());
        } else if (c.kind == CmdKind::Pre) {
            bank.open = false;
        }
    } else if (c.kind == CmdKind::ModeSwitch) {
        rank.mode = c.mode;
    } else {
        ++rank.refCount;
    }
}

Cycle
SpecModel::refDeadline(unsigned channel, unsigned rank) const
{
    const RankS &r = ranks_[rankId(channel, rank)];
    return (r.refCount + 1 + 8) * static_cast<Cycle>(timing_.tREFI);
}

AccessMode
SpecModel::rankMode(unsigned channel, unsigned rank) const
{
    return ranks_[rankId(channel, rank)].mode;
}

std::string
SpecModel::canonical() const
{
    std::string out;
    out.reserve(64 + banks_.size() * 32);
    const auto u32 = [&out](std::uint32_t v) {
        out.push_back(static_cast<char>(v & 0xff));
        out.push_back(static_cast<char>((v >> 8) & 0xff));
        out.push_back(static_cast<char>((v >> 16) & 0xff));
        out.push_back(static_cast<char>((v >> 24) & 0xff));
    };
    // Ages saturate at the horizon: anything older cannot influence
    // any rule and is merged with "never happened".
    const auto age = [&](const KindTimes &t, unsigned k) {
        if (!t.has[k])
            return std::uint32_t(0xffffffffu);
        const Cycle a = lastIssue_ - t.last[k];
        return a >= horizon_ ? std::uint32_t(0xffffffffu)
                             : static_cast<std::uint32_t>(a);
    };
    for (const BankS &bank : banks_) {
        u32(bank.open ? 1 : 0);
        // A closed bank's stale row is unobservable; mask it so states
        // differing only there merge.
        u32(bank.open ? static_cast<std::uint32_t>(bank.row) : 0);
        for (unsigned k = 0; k < kKinds; ++k)
            u32(age(bank.t, k));
    }
    for (const GroupS &group : groups_) {
        for (unsigned k = 0; k < kKinds; ++k)
            u32(age(group.t, k));
    }
    for (const RankS &rank : ranks_) {
        for (unsigned k = 0; k < kKinds; ++k)
            u32(age(rank.t, k));
        u32(static_cast<std::uint32_t>(rank.actWindow.size()));
        for (Cycle t : rank.actWindow) {
            const Cycle a = lastIssue_ - t;
            u32(a >= horizon_ ? static_cast<std::uint32_t>(horizon_)
                              : static_cast<std::uint32_t>(a));
        }
        u32(rank.mode == AccessMode::Stride ? 1 : 0);
        u32(static_cast<std::uint32_t>(
            std::min<std::uint64_t>(rank.refCount, 15)));
    }
    return out;
}

std::string
VerifyStats::summary() const
{
    std::ostringstream oss;
    oss << "explored " << nodesExplored << " state(s) ("
        << statesDeduped << " merged), " << checkerRuns
        << " checker replays; probes: " << earliestProbes
        << " earliest-clean, " << boundaryProbes << " boundary-flagged, "
        << stateProbes << " state-illegal, " << monotoneProbes
        << " monotone; " << (exhausted ? "exhausted" : "CAPPED") << ", "
        << failures.size() << " failure(s)";
    return oss.str();
}

namespace {

Command
candCommand(const SpecModel::Cand &c, Cycle at)
{
    Command cmd;
    cmd.kind = c.kind;
    cmd.at = at;
    cmd.addr = c.addr;
    cmd.mode = c.mode;
    return cmd;
}

/** One BFS node: the command appended to its parent's sequence. */
struct SeqNode
{
    std::shared_ptr<const SeqNode> parent;
    SpecModel::Cand cand;
    Cycle at = 0;
    unsigned depth = 0;
};

std::string
describeStream(const std::vector<Command> &cmds)
{
    if (cmds.empty())
        return "<empty>";
    std::string out;
    for (const Command &c : cmds) {
        if (!out.empty())
            out += "; ";
        out += c.str();
    }
    return out;
}

std::string
describeViolations(const std::vector<Violation> &vs)
{
    if (vs.empty())
        return "clean";
    std::string out;
    const std::size_t shown = std::min<std::size_t>(vs.size(), 2);
    for (std::size_t i = 0; i < shown; ++i) {
        if (!out.empty())
            out += " | ";
        out += vs[i].constraint + ": " + vs[i].message;
    }
    if (shown < vs.size())
        out += " | +" + std::to_string(vs.size() - shown) + " more";
    return out;
}

bool
sameCommand(const Command &a, const Command &b)
{
    return a.kind == b.kind && a.at == b.at &&
           a.addr.channel == b.addr.channel &&
           a.addr.rank == b.addr.rank &&
           a.addr.bankGroup == b.addr.bankGroup &&
           a.addr.bank == b.addr.bank && a.addr.row == b.addr.row;
}

/**
 * True when some violation blames `probe` with a constraint from
 * `names` (any constraint when `names` is null). With `names`, a
 * violation on a *different* command at the probe's cycle also counts:
 * the prefix is checker-clean by construction, so any flag is caused
 * by the probe, and a REF tie can blame the swallowed command rather
 * than the REF itself.
 */
bool
mentionsProbe(const std::vector<Violation> &vs, const Command &probe,
              const std::vector<std::string> *names)
{
    for (const Violation &v : vs) {
        if (!names) {
            if (sameCommand(v.cmd, probe))
                return true;
            continue;
        }
        if (v.cmd.at == probe.at &&
            std::find(names->begin(), names->end(), v.constraint) !=
                names->end())
            return true;
    }
    return false;
}

std::vector<SpecModel::Cand>
enumerateCands(const SpecModel &model, unsigned probe_rows)
{
    const Geometry &g = model.geometry();
    std::vector<SpecModel::Cand> out;
    for (unsigned ch = 0; ch < g.channels; ++ch) {
        for (unsigned rk = 0; rk < g.ranks; ++rk) {
            const AccessMode mode = model.rankMode(ch, rk);
            const AccessMode other = mode == AccessMode::Regular
                                         ? AccessMode::Stride
                                         : AccessMode::Regular;
            for (unsigned bg = 0; bg < g.bankGroups; ++bg) {
                for (unsigned bk = 0; bk < g.banksPerGroup; ++bk) {
                    SpecModel::Cand c;
                    c.addr.channel = ch;
                    c.addr.rank = rk;
                    c.addr.bankGroup = bg;
                    c.addr.bank = bk;
                    for (unsigned row = 0; row < probe_rows; ++row) {
                        c.addr.row = row;
                        c.kind = CmdKind::Act;
                        out.push_back(c);
                        c.kind = CmdKind::Rd;
                        c.mode = mode;
                        out.push_back(c);
                        c.kind = CmdKind::Wr;
                        out.push_back(c);
                    }
                    c.addr.row = 0;
                    c.kind = CmdKind::Pre;
                    c.mode = AccessMode::Regular;
                    out.push_back(c);
                    // Wrong-mode CAS: state-illegal probe.
                    c.kind = CmdKind::Rd;
                    c.mode = other;
                    out.push_back(c);
                }
            }
            SpecModel::Cand c;
            c.addr.channel = ch;
            c.addr.rank = rk;
            c.kind = CmdKind::ModeSwitch;
            c.mode = other;
            out.push_back(c);
            c.kind = CmdKind::Ref;
            c.mode = AccessMode::Regular;
            out.push_back(c);
        }
    }
    return out;
}

} // namespace

VerifyStats
verifySpecAgainstChecker(const Geometry &geom,
                         const TimingParams &timing,
                         const VerifyOptions &opt)
{
    // The pairwise bus rules are equivalent to the checker's
    // adjacent-burst walk only when a handover bubble fits within one
    // burst, and the equal-time tie-break analysis needs every
    // state-coupled rule to carry a positive gap. Both hold for the
    // DDR4 and RRAM presets and any derating of them.
    sam_assert(timing.tRTR <= timing.tBL,
               "spec/checker equivalence needs tRTR <= tBL");
    sam_assert(timing.tRP >= 1 && timing.tRAS >= 1 &&
                   timing.tRCD >= 1 && timing.tRTP >= 1,
               "spec/checker equivalence needs positive state gaps");

    VerifyStats stats;
    const std::vector<std::string> state_names = {"bank-state",
                                                  "mode-state", "tREFI"};
    const auto fail = [&](std::string msg) {
        if (stats.failures.size() < opt.maxFailures)
            stats.failures.push_back(std::move(msg));
    };
    const auto check = [&](const std::vector<Command> &cmds) {
        ++stats.checkerRuns;
        ProtocolChecker pc(geom, timing);
        for (const Command &c : cmds)
            pc.observe(c);
        return pc.violations();
    };

    std::unordered_set<std::string> visited;
    visited.insert(SpecModel(geom, timing).canonical());
    std::deque<std::shared_ptr<const SeqNode>> frontier;
    frontier.push_back(nullptr); // The empty sequence.
    bool capped = false;

    while (!frontier.empty() &&
           stats.failures.size() < opt.maxFailures) {
        if (stats.nodesExplored >= opt.maxNodes) {
            capped = true;
            break;
        }
        const std::shared_ptr<const SeqNode> node = frontier.front();
        frontier.pop_front();
        ++stats.nodesExplored;

        // Rebuild the node's model and command prefix from the chain.
        std::vector<const SeqNode *> chain;
        for (const SeqNode *n = node.get(); n; n = n->parent.get())
            chain.push_back(n);
        std::reverse(chain.begin(), chain.end());
        SpecModel model(geom, timing);
        std::vector<Command> cmds;
        cmds.reserve(chain.size() + 1);
        for (const SeqNode *n : chain) {
            model.apply(n->cand, n->at);
            cmds.push_back(candCommand(n->cand, n->at));
        }
        const unsigned depth = node ? node->depth : 0;
        const Cycle floor = model.lastIssue();
        std::size_t issuable = 0;

        for (const SpecModel::Cand &c :
             enumerateCands(model, opt.probeRows)) {
            if (stats.failures.size() >= opt.maxFailures)
                break;
            cmds.push_back(Command{});
            Command &probe = cmds.back();

            if (!model.stateLegal(c)) {
                // Spec says never: the checker must flag it at any
                // issue time with a state-rule constraint.
                probe = candCommand(c, floor + 1);
                ++stats.stateProbes;
                const auto &vs = check(cmds);
                if (!mentionsProbe(vs, probe, &state_names)) {
                    fail("state disagreement after [" +
                         describeStream(
                             {cmds.begin(), cmds.end() - 1}) +
                         "]: spec rejects " + probe.str() +
                         " but checker says " + describeViolations(vs));
                }
                cmds.pop_back();
                continue;
            }

            const Cycle earliest = model.earliestLegal(c, floor);
            ++issuable;
            const Cycle deadline =
                c.kind == CmdKind::Ref
                    ? model.refDeadline(c.addr.channel, c.addr.rank)
                    : 0;
            if (c.kind == CmdKind::Ref && earliest > deadline) {
                fail("REF earliest " + std::to_string(earliest) +
                     " past deadline " + std::to_string(deadline) +
                     " after [" +
                     describeStream({cmds.begin(), cmds.end() - 1}) +
                     "]");
                cmds.pop_back();
                continue;
            }

            // Issuing at the spec earliest must be checker-clean.
            probe = candCommand(c, earliest);
            ++stats.earliestProbes;
            {
                const auto &vs = check(cmds);
                if (!vs.empty()) {
                    fail("spec looser than checker: [" +
                         describeStream(cmds) + "] flagged: " +
                         describeViolations(vs));
                }
            }

            // One cycle earlier, when a rule binds, must be flagged
            // with one of the binding rule names.
            if (earliest > floor) {
                const std::vector<std::string> names =
                    model.bindingRules(c, earliest);
                probe = candCommand(c, earliest - 1);
                ++stats.boundaryProbes;
                const auto &vs = check(cmds);
                if (!mentionsProbe(vs, probe, &names)) {
                    std::string expect;
                    for (const std::string &n : names)
                        expect += (expect.empty() ? "" : "/") + n;
                    fail("spec tighter than checker: [" +
                         describeStream(cmds) + "] expected " + expect +
                         ", checker says " + describeViolations(vs));
                }
            }

            // Legality must be upward-closed in time (except the REF
            // deadline): the property the skip-ahead scheduler needs.
            if (opt.monotone) {
                const Cycle deltas[2] = {1, model.horizon()};
                for (Cycle delta : deltas) {
                    const Cycle at = earliest + delta;
                    if (c.kind == CmdKind::Ref && at > deadline)
                        continue;
                    probe = candCommand(c, at);
                    ++stats.monotoneProbes;
                    const auto &vs = check(cmds);
                    if (!vs.empty()) {
                        fail("not monotone: [" + describeStream(cmds) +
                             "] flagged: " + describeViolations(vs));
                    }
                }
            }
            cmds.pop_back();

            if (depth < opt.depth) {
                SpecModel child = model;
                child.apply(c, earliest);
                if (visited.insert(child.canonical()).second) {
                    auto next = std::make_shared<SeqNode>();
                    next->parent = node;
                    next->cand = c;
                    next->at = earliest;
                    next->depth = depth + 1;
                    frontier.push_back(std::move(next));
                } else {
                    ++stats.statesDeduped;
                }
            }
        }
        if (issuable == 0) {
            fail("deadlock: no issuable candidate after [" +
                 describeStream(cmds) + "]");
        }
    }
    stats.exhausted = !capped && frontier.empty() &&
                      stats.failures.size() < opt.maxFailures;
    return stats;
}

} // namespace sam
