#include "src/check/protocol_checker.hh"

#include <algorithm>
#include <sstream>

#include "src/common/logging.hh"
#include "src/dram/device.hh"

namespace sam {

namespace {

/**
 * Tie-break for commands scheduled in the same cycle: state-changing
 * commands that enable others (PRE before ACT before REF before CAS)
 * come first, matching how a real controller would serialize them on
 * the command bus. A mode switch sorts after an equal-time CAS: the
 * engine always commits switches strictly after the rank's last CAS,
 * so a tie only appears in adversarial streams, where the switch is
 * the offender (it would retroactively change the CAS's mode).
 */
int
kindPriority(CmdKind kind)
{
    switch (kind) {
      case CmdKind::Pre:        return 0;
      case CmdKind::Act:        return 1;
      case CmdKind::Ref:        return 2;
      case CmdKind::Rd:
      case CmdKind::Wr:         return 3;
      case CmdKind::ModeSwitch: return 4;
    }
    panic("unknown CmdKind");
}

/**
 * Signed rendering of `at - since` for violation messages: adversarial
 * streams can place a command before its reference point, where a raw
 * unsigned difference would wrap to a huge number.
 */
std::string
gapStr(Cycle at, Cycle since)
{
    return at >= since ? std::to_string(at - since)
                       : "-" + std::to_string(since - at);
}

} // namespace

ProtocolChecker::ProtocolChecker(const Geometry &geom,
                                 const TimingParams &timing)
    : geom_(geom), timing_(timing)
{
}

void
ProtocolChecker::observe(const Command &cmd)
{
    sam_assert(cmd.addr.channel < geom_.channels &&
                   cmd.addr.rank < geom_.ranks,
               "observed command outside geometry");
    commands_.push_back(cmd);
    checked_ = false;
}

ProtocolChecker::~ProtocolChecker()
{
    if (device_)
        device_->removeCommandObserver(this);
}

void
ProtocolChecker::attach(Device &dev)
{
    sam_assert(device_ == nullptr, "checker already attached");
    device_ = &dev;
    dev.addCommandObserver(
        this, [this](const Command &cmd) { observe(cmd); });
}

const std::vector<Violation> &
ProtocolChecker::violations()
{
    if (!checked_)
        run();
    return violations_;
}

std::string
ProtocolChecker::report(std::size_t max_violations)
{
    const auto &v = violations();
    std::ostringstream oss;
    oss << "ProtocolChecker: " << v.size() << " violation(s) over "
        << commands_.size() << " commands";
    const std::size_t shown = std::min(v.size(), max_violations);
    for (std::size_t i = 0; i < shown; ++i) {
        oss << "\n  [" << v[i].index << "] " << v[i].constraint << ": "
            << v[i].message;
    }
    if (shown < v.size())
        oss << "\n  ... " << (v.size() - shown) << " more";
    return oss.str();
}

void
ProtocolChecker::flag(const std::string &constraint, const Command &cmd,
                      std::size_t index, const std::string &detail)
{
    Violation v;
    v.constraint = constraint;
    v.message = cmd.str() + ": " + detail;
    v.cmd = cmd;
    v.index = index;
    violations_.push_back(std::move(v));
}

void
ProtocolChecker::checkRefreshBlackout(const RankCheck &rank,
                                      const Command &cmd,
                                      std::size_t index)
{
    if (rank.hasRef && cmd.at >= rank.refStart && cmd.at < rank.refEnd) {
        std::ostringstream oss;
        oss << "issued during refresh blackout [" << rank.refStart
            << ", " << rank.refEnd << ")";
        flag("tRFC", cmd, index, oss.str());
    }
}

void
ProtocolChecker::checkAct(BankCheck &bank, RankCheck &rank,
                          const Command &cmd, std::size_t index)
{
    checkRefreshBlackout(rank, cmd, index);
    if (bank.open) {
        flag("bank-state", cmd, index,
             "ACT to an already-open bank (row " +
                 std::to_string(bank.row) + " not precharged)");
    }
    if (bank.hasPre && cmd.at < bank.lastPre + timing_.tRP) {
        flag("tRP", cmd, index,
             "only " + gapStr(cmd.at, bank.lastPre) +
                 " cycles after PRE @" + std::to_string(bank.lastPre) +
                 ", need " + std::to_string(timing_.tRP));
    }
    if (bank.hasAct && cmd.at < bank.lastAct + timing_.tRC()) {
        flag("tRC", cmd, index,
             "only " + gapStr(cmd.at, bank.lastAct) +
                 " cycles after ACT @" + std::to_string(bank.lastAct) +
                 ", need " + std::to_string(timing_.tRC()));
    }
    if (rank.hasAct && cmd.at < rank.lastAct + timing_.tRRD_S) {
        flag("tRRD_S", cmd, index,
             "only " + gapStr(cmd.at, rank.lastAct) +
                 " cycles after rank ACT @" +
                 std::to_string(rank.lastAct) + ", need " +
                 std::to_string(timing_.tRRD_S));
    }
    const unsigned bg = cmd.addr.bankGroup;
    if (rank.groupHasAct[bg] &&
        cmd.at < rank.groupLastAct[bg] + timing_.tRRD_L) {
        flag("tRRD_L", cmd, index,
             "only " + gapStr(cmd.at, rank.groupLastAct[bg]) +
                 " cycles after same-group ACT @" +
                 std::to_string(rank.groupLastAct[bg]) + ", need " +
                 std::to_string(timing_.tRRD_L));
    }
    if (rank.actWindow.size() >= 4 &&
        cmd.at < rank.actWindow.front() + timing_.tFAW) {
        flag("tFAW", cmd, index,
             "fifth ACT only " +
                 gapStr(cmd.at, rank.actWindow.front()) +
                 " cycles after ACT @" +
                 std::to_string(rank.actWindow.front()) + ", need " +
                 std::to_string(timing_.tFAW));
    }

    bank.open = true;
    bank.row = cmd.addr.row;
    bank.hasAct = true;
    bank.lastAct = cmd.at;
    rank.hasAct = true;
    rank.lastAct = cmd.at;
    rank.groupHasAct[bg] = 1;
    rank.groupLastAct[bg] = cmd.at;
    rank.actWindow.push_back(cmd.at);
    while (rank.actWindow.size() > 4)
        rank.actWindow.pop_front();
}

void
ProtocolChecker::checkPre(BankCheck &bank, const Command &cmd,
                          std::size_t index)
{
    if (!bank.open) {
        flag("bank-state", cmd, index, "PRE to a closed bank");
    } else {
        if (cmd.at < bank.lastAct + timing_.tRAS) {
            flag("tRAS", cmd, index,
                 "only " + gapStr(cmd.at, bank.lastAct) +
                     " cycles after ACT @" +
                     std::to_string(bank.lastAct) + ", need " +
                     std::to_string(timing_.tRAS));
        }
        if (bank.hasRd && cmd.at < bank.lastRdCas + timing_.tRTP) {
            flag("tRTP", cmd, index,
                 "only " + gapStr(cmd.at, bank.lastRdCas) +
                     " cycles after RD @" +
                     std::to_string(bank.lastRdCas) + ", need " +
                     std::to_string(timing_.tRTP));
        }
        if (bank.hasWr && cmd.at < bank.lastWrEnd + timing_.tWR) {
            flag("tWR", cmd, index,
                 "only " + gapStr(cmd.at, bank.lastWrEnd) +
                     " cycles after write-data end @" +
                     std::to_string(bank.lastWrEnd) + ", need " +
                     std::to_string(timing_.tWR));
        }
    }
    bank.open = false;
    bank.hasPre = true;
    bank.lastPre = cmd.at;
}

void
ProtocolChecker::checkCas(BankCheck &bank, RankCheck &rank,
                          const Command &cmd, std::size_t index)
{
    checkRefreshBlackout(rank, cmd, index);
    const bool is_write = cmd.kind == CmdKind::Wr;
    if (!bank.open) {
        flag("bank-state", cmd, index,
             std::string(is_write ? "WR" : "RD") + " to a closed bank");
    } else if (bank.row != cmd.addr.row) {
        flag("bank-state", cmd, index,
             "CAS to row " + std::to_string(cmd.addr.row) +
                 " while row " + std::to_string(bank.row) + " is open");
    } else if (cmd.at < bank.lastAct + timing_.tRCD) {
        flag("tRCD", cmd, index,
             "only " + gapStr(cmd.at, bank.lastAct) +
                 " cycles after ACT @" + std::to_string(bank.lastAct) +
                 ", need " + std::to_string(timing_.tRCD));
    }
    if (rank.hasCas && cmd.at < rank.lastCas + timing_.tCCD_S) {
        flag("tCCD_S", cmd, index,
             "only " + gapStr(cmd.at, rank.lastCas) +
                 " cycles after rank CAS @" +
                 std::to_string(rank.lastCas) + ", need " +
                 std::to_string(timing_.tCCD_S));
    }
    const unsigned bg = cmd.addr.bankGroup;
    if (rank.groupHasCas[bg] &&
        cmd.at < rank.groupLastCas[bg] + timing_.tCCD_L) {
        flag("tCCD_L", cmd, index,
             "only " + gapStr(cmd.at, rank.groupLastCas[bg]) +
                 " cycles after same-group CAS @" +
                 std::to_string(rank.groupLastCas[bg]) + ", need " +
                 std::to_string(timing_.tCCD_L));
    }
    if (!is_write) {
        if (rank.hasWr && cmd.at < rank.lastWrEnd + timing_.tWTR_S) {
            flag("tWTR_S", cmd, index,
                 "RD only " + gapStr(cmd.at, rank.lastWrEnd) +
                     " cycles after rank write-data end @" +
                     std::to_string(rank.lastWrEnd) + ", need " +
                     std::to_string(timing_.tWTR_S));
        }
        if (rank.groupHasWr[bg] &&
            cmd.at < rank.groupLastWrEnd[bg] + timing_.tWTR_L) {
            flag("tWTR_L", cmd, index,
                 "RD only " +
                     gapStr(cmd.at, rank.groupLastWrEnd[bg]) +
                     " cycles after same-group write-data end @" +
                     std::to_string(rank.groupLastWrEnd[bg]) +
                     ", need " + std::to_string(timing_.tWTR_L));
        }
    }
    // SAM Section 5.3: the mode register is command-pipelined -- a CAS
    // samples the rank's I/O mode at issue, and the first CAS after a
    // switch must trail it by tRTR.
    if (cmd.mode != rank.mode) {
        flag("mode-state", cmd, index,
             std::string("CAS in ") +
                 (cmd.mode == AccessMode::Stride ? "stride" : "regular") +
                 " mode while the rank is in " +
                 (rank.mode == AccessMode::Stride ? "stride"
                                                  : "regular") +
                 " mode");
    }
    if (rank.hasSwitch && cmd.at < rank.lastSwitch + timing_.tRTR) {
        flag("tRTR(mode)", cmd, index,
             "CAS only " + gapStr(cmd.at, rank.lastSwitch) +
                 " cycles after mode switch @" +
                 std::to_string(rank.lastSwitch) + ", need " +
                 std::to_string(timing_.tRTR));
    }

    rank.hasCas = true;
    rank.lastCas = cmd.at;
    rank.groupHasCas[bg] = 1;
    rank.groupLastCas[bg] = cmd.at;
    if (is_write) {
        const Cycle wr_end = cmd.at + timing_.cwl + timing_.tBL;
        bank.hasWr = true;
        bank.lastWrEnd = wr_end;
        rank.hasWr = true;
        rank.lastWrEnd = std::max(rank.lastWrEnd, wr_end);
        rank.groupHasWr[bg] = 1;
        rank.groupLastWrEnd[bg] =
            std::max(rank.groupLastWrEnd[bg], wr_end);
    } else {
        bank.hasRd = true;
        bank.lastRdCas = cmd.at;
        rank.hasRd = true;
    }
}

void
ProtocolChecker::checkModeSwitch(RankCheck &rank, const Command &cmd,
                                 std::size_t index)
{
    checkRefreshBlackout(rank, cmd, index);
    // A switch issued at or before the rank's latest CAS would
    // retroactively change the mode that CAS was issued under.
    if (rank.hasCas && cmd.at <= rank.lastCas) {
        flag("mode-state", cmd, index,
             "mode switch at or before the rank's last CAS @" +
                 std::to_string(rank.lastCas));
    }
    if (rank.hasSwitch && cmd.at < rank.lastSwitch + timing_.tRTR) {
        flag("tRTR(mode)", cmd, index,
             "only " + gapStr(cmd.at, rank.lastSwitch) +
                 " cycles after previous switch @" +
                 std::to_string(rank.lastSwitch) + ", need " +
                 std::to_string(timing_.tRTR));
    }
    rank.mode = cmd.mode;
    rank.hasSwitch = true;
    rank.lastSwitch = cmd.at;
}

void
ProtocolChecker::checkRef(RankCheck &rank, const Command &cmd,
                          std::size_t index)
{
    if (timing_.tREFI == 0) {
        flag("tREFI", cmd, index,
             "REF issued to a technology without refresh");
        return;
    }
    if (rank.hasRef && cmd.at < rank.refEnd) {
        flag("tRFC", cmd, index,
             "REF only " + gapStr(cmd.at, rank.refStart) +
                 " cycles after REF @" + std::to_string(rank.refStart) +
                 ", need " + std::to_string(timing_.tRFC));
    }
    // DDR4 allows postponing up to 8 refresh commands; past that the
    // device would lose data. The k-th refresh is nominally due at
    // (k+1) * tREFI.
    const Cycle deadline =
        (rank.refCount + 1) * static_cast<Cycle>(timing_.tREFI) +
        8 * static_cast<Cycle>(timing_.tREFI);
    if (cmd.at > deadline) {
        flag("tREFI", cmd, index,
             "refresh #" + std::to_string(rank.refCount) +
                 " postponed past " + std::to_string(deadline));
    }
    rank.hasRef = true;
    rank.refStart = cmd.at;
    rank.refEnd = cmd.at + timing_.tRFC;
    ++rank.refCount;
}

void
ProtocolChecker::checkDataBus(const std::vector<Burst> &bursts)
{
    // Walk bursts in data order per channel; the engine's bus cursor is
    // monotone in data time, so adjacent-pair checks are sufficient.
    std::vector<const Burst *> last(geom_.channels, nullptr);
    std::vector<const Burst *> lastRead(
        static_cast<std::size_t>(geom_.channels) * geom_.ranks, nullptr);
    for (const Burst &b : bursts) {
        const Burst *prev = last[b.channel];
        if (prev) {
            if (b.start < prev->end) {
                flag("bus-overlap", b.cmd, b.index,
                     "data [" + std::to_string(b.start) + ", " +
                         std::to_string(b.end) +
                         ") overlaps previous burst ending @" +
                         std::to_string(prev->end));
            } else if (prev->rank != b.rank &&
                       b.start < prev->end + timing_.tRTR) {
                flag("tRTR(bus)", b.cmd, b.index,
                     "rank switch with only " +
                         gapStr(b.start, prev->end) +
                         " bubble cycles, need " +
                         std::to_string(timing_.tRTR));
            }
        }
        const std::size_t rank_id =
            static_cast<std::size_t>(b.channel) * geom_.ranks + b.rank;
        if (b.isWrite) {
            const Burst *rd = lastRead[rank_id];
            if (rd && b.start < rd->end + 2) {
                flag("rd-wr-turnaround", b.cmd, b.index,
                     "write data @" + std::to_string(b.start) +
                         " follows read data ending @" +
                         std::to_string(rd->end) +
                         " without a 2-cycle bubble");
            }
        } else {
            lastRead[rank_id] = &b;
        }
        last[b.channel] = &b;
    }
}

void
ProtocolChecker::run()
{
    violations_.clear();
    checked_ = true;

    // The engine emits commands in commit order; re-establish wall-clock
    // order before replaying the stream through the state machines.
    std::vector<Command> sorted = commands_;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const Command &a, const Command &b) {
                         if (a.at != b.at)
                             return a.at < b.at;
                         return kindPriority(a.kind) <
                                kindPriority(b.kind);
                     });

    std::vector<BankCheck> banks(static_cast<std::size_t>(
        geom_.channels) * geom_.ranks * geom_.banksPerRank());
    std::vector<RankCheck> ranks(
        static_cast<std::size_t>(geom_.channels) * geom_.ranks);
    for (auto &r : ranks) {
        r.groupLastAct.assign(geom_.bankGroups, 0);
        r.groupLastCas.assign(geom_.bankGroups, 0);
        r.groupLastWrEnd.assign(geom_.bankGroups, 0);
        r.groupHasAct.assign(geom_.bankGroups, 0);
        r.groupHasCas.assign(geom_.bankGroups, 0);
        r.groupHasWr.assign(geom_.bankGroups, 0);
    }

    std::vector<Burst> bursts;
    for (std::size_t i = 0; i < sorted.size(); ++i) {
        const Command &cmd = sorted[i];
        const std::size_t rank_id =
            static_cast<std::size_t>(cmd.addr.channel) * geom_.ranks +
            cmd.addr.rank;
        RankCheck &rank = ranks[rank_id];
        switch (cmd.kind) {
          case CmdKind::Act:
          case CmdKind::Pre:
          case CmdKind::Rd:
          case CmdKind::Wr: {
            sam_assert(cmd.addr.bankGroup < geom_.bankGroups &&
                           cmd.addr.bank < geom_.banksPerGroup,
                       "observed command outside geometry");
            BankCheck &bank =
                banks[rank_id * geom_.banksPerRank() +
                      cmd.addr.bankGroup * geom_.banksPerGroup +
                      cmd.addr.bank];
            if (cmd.kind == CmdKind::Act) {
                checkAct(bank, rank, cmd, i);
            } else if (cmd.kind == CmdKind::Pre) {
                checkPre(bank, cmd, i);
            } else {
                checkCas(bank, rank, cmd, i);
                Burst b;
                b.isWrite = cmd.kind == CmdKind::Wr;
                b.start = cmd.at + (b.isWrite ? timing_.cwl : timing_.cl);
                b.end = b.start + timing_.tBL;
                b.channel = cmd.addr.channel;
                b.rank = cmd.addr.rank;
                b.index = i;
                b.cmd = cmd;
                bursts.push_back(b);
            }
            break;
          }
          case CmdKind::ModeSwitch:
            checkModeSwitch(rank, cmd, i);
            break;
          case CmdKind::Ref: {
            // REF requires every bank of the rank precharged.
            for (unsigned b = 0; b < geom_.banksPerRank(); ++b) {
                const BankCheck &bank =
                    banks[rank_id * geom_.banksPerRank() + b];
                if (bank.open) {
                    flag("bank-state", cmd, i,
                         "REF with bank " + std::to_string(b) +
                             " open (row " + std::to_string(bank.row) +
                             ")");
                }
            }
            checkRef(rank, cmd, i);
            break;
          }
        }
    }

    // Data-bus pass. CAS order and data order can diverge (CL=17 reads
    // vs CWL=12 writes), so sort bursts by when their data actually
    // occupies the bus.
    std::stable_sort(bursts.begin(), bursts.end(),
                     [](const Burst &a, const Burst &b) {
                         return a.start < b.start;
                     });
    checkDataBus(bursts);
}

} // namespace sam
