/**
 * @file
 * Micron-methodology (IDD-based) power/energy model (Section 6.1,
 * "Power"). Energy is composed per command class from datasheet current
 * values; per-design multipliers model SAM-IO's wide internal fetch,
 * SAM-en's fine-grained activation, SAM-sub's extra decoding logic, and
 * RRAM's near-zero background / expensive writes.
 */

#ifndef SAM_POWER_POWER_MODEL_HH
#define SAM_POWER_POWER_MODEL_HH

#include "src/common/types.hh"
#include "src/dram/device.hh"
#include "src/dram/timing.hh"

namespace sam {

/**
 * Per-chip current values (mA) and supply voltage, DDR4-2400 x4 8Gb
 * class (transcribed from public Micron datasheet figures).
 */
struct IddParams
{
    double vdd = 1.2;      ///< Volts.
    double idd0 = 48.0;    ///< ACT-PRE average.
    double idd2n = 34.0;   ///< Precharge standby.
    double idd3n = 45.0;   ///< Active standby.
    double idd4r = 130.0;  ///< Burst read.
    double idd4w = 120.0;  ///< Burst write.
    double idd5b = 240.0;  ///< Refresh burst.
};

/** DRAM (DDR4-2400 x4) preset. */
IddParams ddr4Idd();

/**
 * RRAM preset: near-zero background (non-volatile cells, no refresh),
 * comparable read, substantially higher write energy (Section 6.2,
 * "the character of RRAM ... near-zero background power ... significant
 * write power").
 */
IddParams rramIdd();

IddParams iddFor(MemTech tech);

/**
 * Design-specific energy multipliers applied to stride-mode operations
 * and background power.
 */
struct PowerAdjust
{
    /** Background power factor (SAM-sub: 1.02 for extra SA/decoding). */
    double background = 1.0;
    /**
     * Multiplier on read/write burst energy for stride-mode accesses.
     * SAM-IO fetches all four I/O buffers (288B internally for 72B on
     * the channel) -> ~4x internal column energy; SAM-en's fine-grained
     * activation fetches only useful mats -> 1x.
     */
    double strideBurst = 1.0;
    /** Multiplier on activation energy for stride-mode activates. */
    double strideAct = 1.0;
};

/** Energy/power breakdown for one run (per the Figure 13 categories). */
struct PowerBreakdown
{
    double actEnergyPj = 0;
    double rdwrEnergyPj = 0;
    double backgroundEnergyPj = 0;
    double refreshEnergyPj = 0;
    double totalEnergyPj() const
    {
        return actEnergyPj + rdwrEnergyPj + backgroundEnergyPj +
               refreshEnergyPj;
    }
    double elapsedNs = 0;
    /** Average power in mW, split like Figure 13's stacked bars. */
    double actPowerMw() const;
    double rdwrPowerMw() const;
    double backgroundPowerMw() const;
    double totalPowerMw() const;
};

/**
 * Computes rank-level energy from device statistics. Stateless; one
 * instance per simulated configuration.
 */
class PowerModel
{
  public:
    PowerModel(const IddParams &idd, const TimingParams &timing,
               unsigned num_chips, PowerAdjust adjust = {});

    /**
     * Energy composition over a run.
     * @param stats          Device counters after the run.
     * @param elapsed_cycles Total bus cycles of the run.
     * @param stride_act_fraction Fraction of activates that served
     *        stride-mode accesses (device stats do not attribute ACTs).
     */
    PowerBreakdown compute(const DeviceStats &stats,
                           Cycle elapsed_cycles,
                           double stride_act_fraction = 0.0) const;

    /** Energy of a single regular activate (pJ, whole rank). */
    double actEnergyPj() const;
    /** Energy of a single regular read burst (pJ, whole rank). */
    double readBurstEnergyPj() const;
    /** Energy of a single regular write burst (pJ, whole rank). */
    double writeBurstEnergyPj() const;

  private:
    IddParams idd_;
    TimingParams timing_;
    unsigned numChips_;
    PowerAdjust adjust_;
};

} // namespace sam

#endif // SAM_POWER_POWER_MODEL_HH
