#include "src/power/power_model.hh"

#include "src/common/logging.hh"

namespace sam {

IddParams
ddr4Idd()
{
    return IddParams{};
}

IddParams
rramIdd()
{
    IddParams p;
    p.idd2n = 4.0;    // periphery only: cells burn no standby power
    p.idd3n = 6.0;
    p.idd0 = 52.0;    // activation comparable to DRAM at iso-interface
    p.idd4r = 125.0;
    p.idd4w = 420.0;  // RRAM SET/RESET pulses dominate write energy
    p.idd5b = 0.0;    // no refresh
    return p;
}

IddParams
iddFor(MemTech tech)
{
    switch (tech) {
      case MemTech::DRAM: return ddr4Idd();
      case MemTech::RRAM: return rramIdd();
    }
    panic("unknown MemTech");
}

double
PowerBreakdown::actPowerMw() const
{
    return elapsedNs > 0 ? (actEnergyPj + refreshEnergyPj) / elapsedNs
                         : 0.0;
}

double
PowerBreakdown::rdwrPowerMw() const
{
    return elapsedNs > 0 ? rdwrEnergyPj / elapsedNs : 0.0;
}

double
PowerBreakdown::backgroundPowerMw() const
{
    return elapsedNs > 0 ? backgroundEnergyPj / elapsedNs : 0.0;
}

double
PowerBreakdown::totalPowerMw() const
{
    return actPowerMw() + rdwrPowerMw() + backgroundPowerMw();
}

PowerModel::PowerModel(const IddParams &idd, const TimingParams &timing,
                       unsigned num_chips, PowerAdjust adjust)
    : idd_(idd), timing_(timing), numChips_(num_chips), adjust_(adjust)
{
    sam_assert(num_chips > 0, "power model needs at least one chip");
}

double
PowerModel::actEnergyPj() const
{
    // Micron methodology: ACT/PRE pair energy above active standby over
    // one tRC window. mA * V * ns = pJ.
    const double t_rc_ns = timing_.tRC() * timing_.tCkNs;
    return (idd_.idd0 - idd_.idd3n) * idd_.vdd * t_rc_ns * numChips_;
}

double
PowerModel::readBurstEnergyPj() const
{
    const double t_burst_ns = timing_.tBL * timing_.tCkNs;
    return (idd_.idd4r - idd_.idd3n) * idd_.vdd * t_burst_ns * numChips_;
}

double
PowerModel::writeBurstEnergyPj() const
{
    const double t_burst_ns = timing_.tBL * timing_.tCkNs;
    return (idd_.idd4w - idd_.idd3n) * idd_.vdd * t_burst_ns * numChips_;
}

PowerBreakdown
PowerModel::compute(const DeviceStats &stats, Cycle elapsed_cycles,
                    double stride_act_fraction) const
{
    sam_assert(stride_act_fraction >= 0.0 && stride_act_fraction <= 1.0,
               "bad stride activate fraction");
    PowerBreakdown out;
    out.elapsedNs = static_cast<double>(elapsed_cycles) * timing_.tCkNs;

    // Activation energy: regular ACTs at 1x; the stride-serving share
    // at the design's strideAct factor (e.g. SAM-en's fine-grained
    // activation cuts it; a column-wise subarray ACT costs the same as
    // a row-wise one per Section 4.1).
    const double n_act = static_cast<double>(stats.activates.value());
    const double stride_acts = n_act * stride_act_fraction;
    out.actEnergyPj = actEnergyPj() *
                      ((n_act - stride_acts) +
                       stride_acts * adjust_.strideAct);

    // Burst energy, split by mode. Extra bursts (ECC fetches,
    // sub-field collection) are regular-read-priced.
    const double rd = static_cast<double>(stats.reads.value()) +
                      static_cast<double>(stats.extraBursts.value());
    const double wrb = static_cast<double>(stats.writes.value());
    const double srd = static_cast<double>(stats.strideReads.value());
    const double swr = static_cast<double>(stats.strideWrites.value());
    out.rdwrEnergyPj = readBurstEnergyPj() *
                           (rd + srd * adjust_.strideBurst) +
                       writeBurstEnergyPj() *
                           (wrb + swr * adjust_.strideBurst);

    // Background: weight active vs precharged standby by bus activity
    // as a proxy for open-row residency.
    const double busy = elapsed_cycles > 0
        ? static_cast<double>(stats.busBusyCycles.value()) /
              static_cast<double>(elapsed_cycles)
        : 0.0;
    const double active_frac = std::min(1.0, 0.3 + 0.7 * busy);
    const double i_bg = active_frac * idd_.idd3n +
                        (1.0 - active_frac) * idd_.idd2n;
    out.backgroundEnergyPj = i_bg * idd_.vdd * out.elapsedNs * numChips_ *
                             adjust_.background;

    // Refresh.
    const double t_rfc_ns = timing_.tRFC * timing_.tCkNs;
    out.refreshEnergyPj = static_cast<double>(stats.refreshes.value()) *
                          (idd_.idd5b - idd_.idd2n) * idd_.vdd *
                          t_rfc_ns * numChips_;
    return out;
}

} // namespace sam
