/**
 * @file
 * Deterministic fault injection for the campaign execution layer.
 *
 * The chaos harness is how the crash-safety claims get *proved* rather
 * than asserted: tests (and `samcampaign --chaos=<spec>`) inject
 * worker-process faults at seeded, reproducible points and then check
 * that journal + resume converge to the uninterrupted campaign's
 * output. Faults:
 *
 *   kill     worker SIGKILLs itself (at a seeded sub-point: on entry,
 *            after simulating but before reporting, or mid-report so
 *            the parent sees a torn result)
 *   hang     worker stops responding (parent's deadline must fire)
 *   corrupt  worker reports garbage bytes instead of a result record
 *   slow     worker sleeps a seeded delay before starting (exercises
 *            deadline headroom, never fails a healthy run)
 *   die      the *campaign process itself* SIGKILLs before the Nth
 *            worker launch — the write-ahead-journal crash test
 *
 * Spec grammar (comma-separated terms, validated by parseChaosSpec):
 *
 *   seed=<n>          RNG seed for %-based injection and sub-points
 *   <fault>@<n>       inject at the Nth worker launch (1-based)
 *   <fault>@spec:<n>  inject on every attempt of spec index n
 *   <fault>%<p>       inject on p% of launches (seeded, deterministic)
 *
 * e.g. `--chaos=seed=7,die@5` or `--chaos=seed=3,kill%25,hang@spec:0`.
 * Scheduling is a pure function of (seed, launch counter, spec index),
 * so a chaos campaign replays its fault schedule exactly.
 */

#ifndef SAM_RUNNER_CHAOS_HH
#define SAM_RUNNER_CHAOS_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace sam {

enum class ChaosFault { None, Kill, Hang, Corrupt, Slow, Die };

const char *chaosFaultName(ChaosFault fault);

/** Parsed `--chaos=` specification. */
struct ChaosConfig
{
    std::uint64_t seed = 0;
    /** Nth-launch injections (1-based launch counter). */
    std::vector<std::pair<unsigned, ChaosFault>> launchPoints;
    /** Per-spec injections: every attempt of spec index n. */
    std::vector<std::pair<unsigned, ChaosFault>> specPoints;
    /** Probabilistic injections: fault on pct% of launches. */
    std::vector<std::pair<ChaosFault, unsigned>> percent;

    bool
    enabled() const
    {
        return !launchPoints.empty() || !specPoints.empty() ||
               !percent.empty();
    }
};

/** The fault decision for one worker launch. */
struct ChaosPlan
{
    ChaosFault fault = ChaosFault::None;
    /** Kill sub-point: 0 = on entry, 1 = pre-report, 2 = mid-report. */
    unsigned point = 0;
    /** Slow-start delay in milliseconds. */
    unsigned delayMs = 0;
};

/**
 * Parse a chaos spec string. Returns false with a one-line diagnostic
 * (no partial state) on grammar errors, unknown fault names, pct out
 * of [1,100], or a zero launch point.
 */
bool parseChaosSpec(const std::string &spec, ChaosConfig &out,
                    std::string &error);

/**
 * The injection schedule: one nextLaunch() call per worker launch, in
 * launch order. Deterministic — two engines over the same config
 * produce the same plan sequence.
 */
class ChaosEngine
{
  public:
    explicit ChaosEngine(ChaosConfig config)
        : config_(std::move(config))
    {
    }

    /** Decide the fault for the next launch of spec `specIdx`. */
    ChaosPlan nextLaunch(std::size_t specIdx);

    unsigned launches() const { return launches_; }

  private:
    ChaosConfig config_;
    unsigned launches_ = 0;
};

} // namespace sam

#endif // SAM_RUNNER_CHAOS_HH
