#include "src/runner/supervisor.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <functional>
#include <limits>
#include <thread>

#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include "src/common/logging.hh"
#include "src/common/random.hh"
#include "src/core/session.hh"

namespace sam {

const char *
failureKindName(FailureKind kind)
{
    switch (kind) {
      case FailureKind::None: return "none";
      case FailureKind::Crash: return "crash";
      case FailureKind::Hang: return "hang";
      case FailureKind::Error: return "error";
      case FailureKind::Corrupt: return "corrupt";
    }
    return "?";
}

unsigned
RetryPolicy::backoffMs(std::size_t specIdx, unsigned attempt) const
{
    sam_assert(attempt >= 1, "backoff before any attempt");
    std::uint64_t delay = baseDelayMs;
    for (unsigned a = 1; a < attempt && delay < maxDelayMs; ++a)
        delay *= 2;
    delay = std::min<std::uint64_t>(delay, maxDelayMs);
    // Deterministic jitter: the RNG is freshly seeded from
    // (seed, spec, attempt), so the backoff schedule of a retried
    // campaign replays exactly — same property the fault injector
    // relies on, and what lets tests pin the schedule.
    Rng rng(seed ^ (0x9e3779b97f4a7c15ULL * (specIdx + 1)) ^
            (0xbf58476d1ce4e5b9ULL * attempt));
    const double factor = 1.0 + jitter * (2.0 * rng.uniform() - 1.0);
    const double jittered = static_cast<double>(delay) * factor;
    return static_cast<unsigned>(std::max(1.0, jittered));
}

namespace {

/** Monotonic milliseconds for deadlines and backoff scheduling. */
std::int64_t
nowMs()
{
    // Wall time here drives only retry pacing and hang deadlines --
    // host-level supervision that no simulated state ever reads.
    // NOLINTNEXTLINE(sam-determinism)
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               // NOLINTNEXTLINE(sam-determinism)
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

void
writeAll(int fd, const char *data, std::size_t size)
{
    std::size_t off = 0;
    while (off < size) {
        const ssize_t n = ::write(fd, data + off, size - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return; // Parent went away; nothing useful left to do.
        }
        off += static_cast<std::size_t>(n);
    }
}

/** Execute one spec and return its journal-ready pieces. */
RunResult
executeSpec(const RunSpec &spec,
            const std::shared_ptr<TableCache> &tables)
{
    // Wall-clock brackets feed only wallMs reporting, never any
    // simulated state (same sanctioned read as CampaignRunner).
    // NOLINTNEXTLINE(sam-determinism)
    const auto t0 = std::chrono::steady_clock::now();
    Session session(spec.config, tables);
    RunStats stats = session.run(spec.config.design, spec.query);
    if (spec.verify)
        session.checkResult(spec.query, stats);
    // NOLINTNEXTLINE(sam-determinism)
    const auto t1 = std::chrono::steady_clock::now();
    RunResult r;
    r.id = spec.id;
    r.design = spec.config.design;
    r.query = spec.query.name;
    r.stats = std::move(stats);
    r.wallMs =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    r.records = spec.config.taRecords;
    return r;
}

/**
 * Forked worker body: run the spec, report `{"run":…,"power":…}` on
 * `fd`, and _exit. Never returns to the caller's stack; _exit (not
 * exit) skips atexit/leak machinery that belongs to the parent.
 * Chaos faults are acted out exactly where the header documents.
 */
[[noreturn]] void
childWorker(const RunSpec &spec, const ChaosPlan &plan, int fd)
{
    if (plan.fault == ChaosFault::Slow)
        ::usleep(plan.delayMs * 1000u);
    if (plan.fault == ChaosFault::Hang) {
        for (;;)
            ::pause();
    }
    if (plan.fault == ChaosFault::Kill && plan.point == 0)
        ::raise(SIGKILL);

    std::string line;
    int exitCode = 0;
    try {
        RunResult r = executeSpec(spec, nullptr);
        Json payload = Json::object();
        payload.set("power", powerJson(r.stats.power));
        payload.set("run", runResultJson(r));
        line = payload.dump(0);
    } catch (const std::exception &e) {
        Json payload = Json::object();
        payload.set("error", std::string(e.what()));
        line = payload.dump(0);
        exitCode = 3;
    }

    if (plan.fault == ChaosFault::Kill && plan.point == 1)
        ::raise(SIGKILL);
    if (plan.fault == ChaosFault::Corrupt)
        line = "{\"run\":@corrupted-by-chaos";
    if (plan.fault == ChaosFault::Kill && plan.point == 2) {
        writeAll(fd, line.data(), line.size() / 2);
        ::raise(SIGKILL);
    }
    writeAll(fd, line.data(), line.size());
    ::_exit(exitCode);
}

} // namespace

// ----- Supervisor ----------------------------------------------------

Supervisor::Supervisor(SupervisorConfig config)
    : config_(std::move(config)),
      jobs_(config_.jobs != 0 ? config_.jobs
                              : ThreadPool::defaultWorkers())
{
    sam_assert(!config_.chaos.enabled() ||
                   config_.isolation == Isolation::Process,
               "chaos injection requires process isolation");
    sam_assert(config_.retry.maxAttempts >= 1,
               "RetryPolicy.maxAttempts must be at least 1");
}

bool
Supervisor::resumeHit(const RunSpec &spec, std::uint64_t hash,
                      SupervisedRun &out) const
{
    if (config_.resume == nullptr)
        return false;
    const auto it = config_.resume->entries.find(spec.id);
    if (it == config_.resume->entries.end() || !it->second.completed)
        return false;
    if (it->second.hash != hash) {
        warn("journal entry for '", spec.id,
             "' has a stale identity hash; re-running");
        return false;
    }
    out.result = restoreRunResult(it->second);
    out.record = it->second.run;
    out.outcome = SupervisedRun::Outcome::FromJournal;
    out.failure = FailureKind::None;
    out.attempts = it->second.attempts;
    return true;
}

void
Supervisor::finishRun(const RunSpec &spec, std::uint64_t hash,
                      unsigned attempts, RunResult result,
                      Json record, Json power, SupervisedRun &out)
{
    if (config_.journal != nullptr)
        config_.journal->recordDone(spec.id, hash, attempts, record,
                                    power);
    out.result = std::move(result);
    out.record = std::move(record);
    out.outcome = SupervisedRun::Outcome::Done;
    out.failure = FailureKind::None;
    out.attempts = attempts;
}

void
Supervisor::failRun(const RunSpec &spec, std::uint64_t hash,
                    unsigned attempts, FailureKind kind,
                    const std::string &error, SupervisedRun &out)
{
    if (config_.journal != nullptr)
        config_.journal->recordFailed(spec.id, hash, attempts,
                                      failureKindName(kind), error);
    out.outcome = SupervisedRun::Outcome::Failed;
    out.failure = kind;
    out.attempts = attempts;
    out.error = error;
}

void
Supervisor::runThreaded(const std::vector<RunSpec> &specs,
                        SupervisorReport &report)
{
    if (!tables_)
        tables_ = std::make_shared<TableCache>();
    if (!pool_)
        pool_ = std::make_unique<ThreadPool>(jobs_);
    std::vector<std::function<void()>> tasks;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        SupervisedRun &slot = report.runs[i];
        if (slot.outcome == SupervisedRun::Outcome::FromJournal)
            continue;
        tasks.push_back([this, &specs, &slot, i] {
            const RunSpec &spec = specs[i];
            const std::uint64_t hash = specHash(spec);
            std::string lastError;
            for (unsigned attempt = 1;
                 attempt <= config_.retry.maxAttempts; ++attempt) {
                try {
                    RunResult r = executeSpec(spec, tables_);
                    Json record = runResultJson(r);
                    Json power = powerJson(r.stats.power);
                    finishRun(spec, hash, attempt, std::move(r),
                              std::move(record), std::move(power),
                              slot);
                    return;
                } catch (const std::exception &e) {
                    lastError = e.what();
                    if (attempt < config_.retry.maxAttempts) {
                        // Host-side retry pacing, off the simulated
                        // path entirely.
                        // NOLINTNEXTLINE(sam-determinism)
                        std::this_thread::sleep_for(
                            std::chrono::milliseconds(
                                config_.retry.backoffMs(i, attempt)));
                    }
                }
            }
            failRun(spec, hash, config_.retry.maxAttempts,
                    FailureKind::Error, lastError, slot);
        });
    }
    pool_->run(std::move(tasks));
}

/** One live forked worker in the Process-mode event loop. */
struct Supervisor::Slot
{
    pid_t pid = -1;
    int fd = -1;
    std::size_t idx = 0;
    unsigned attempt = 1;
    std::int64_t deadlineMs = 0;
    bool deadlineKilled = false;
    std::string buf;
};

void
Supervisor::runForked(const std::vector<RunSpec> &specs,
                      SupervisorReport &report)
{
    struct PendingItem
    {
        std::size_t idx;
        unsigned attempt;
        std::int64_t readyAtMs;
    };
    std::vector<PendingItem> pending;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        if (report.runs[i].outcome !=
            SupervisedRun::Outcome::FromJournal)
            pending.push_back({i, 1, 0});
    }
    std::vector<Slot> slots;
    ChaosEngine chaos(config_.chaos);
    const bool chaotic = config_.chaos.enabled();

    const auto launch = [&](const PendingItem &item) {
        ChaosPlan plan;
        if (chaotic)
            plan = chaos.nextLaunch(item.idx);
        if (plan.fault == ChaosFault::Die) {
            // The write-ahead-journal crash test: the campaign
            // process itself dies here, mid-campaign, with the
            // journal already carrying every completed run.
            ::raise(SIGKILL);
        }
        int fds[2];
        if (::pipe(fds) != 0)
            panic("pipe failed: ", std::strerror(errno));
        const pid_t pid = ::fork();
        if (pid < 0)
            panic("fork failed: ", std::strerror(errno));
        if (pid == 0) {
            ::close(fds[0]);
            childWorker(specs[item.idx], plan, fds[1]);
        }
        ::close(fds[1]);
        Slot slot;
        slot.pid = pid;
        slot.fd = fds[0];
        slot.idx = item.idx;
        slot.attempt = item.attempt;
        slot.deadlineMs = config_.timeoutMs != 0
                              ? nowMs() + static_cast<std::int64_t>(
                                              config_.timeoutMs)
                              : std::numeric_limits<
                                    std::int64_t>::max();
        slots.push_back(std::move(slot));
        ++report.launches;
    };

    const auto finalize = [&](Slot &slot) {
        ::close(slot.fd);
        int status = 0;
        while (::waitpid(slot.pid, &status, 0) < 0) {
            if (errno != EINTR)
                panic("waitpid failed: ", std::strerror(errno));
        }
        const RunSpec &spec = specs[slot.idx];
        const std::uint64_t hash = specHash(spec);
        FailureKind kind = FailureKind::None;
        std::string error;
        Json payload;
        const Json *run = nullptr;
        if (WIFSIGNALED(status)) {
            if (slot.deadlineKilled) {
                kind = FailureKind::Hang;
                error = "deadline of " +
                        std::to_string(config_.timeoutMs) +
                        "ms exceeded";
            } else {
                kind = FailureKind::Crash;
                error = "killed by signal " +
                        std::to_string(WTERMSIG(status));
            }
        } else if (WEXITSTATUS(status) != 0) {
            kind = FailureKind::Error;
            error = "worker exit code " +
                    std::to_string(WEXITSTATUS(status));
            std::string parseError;
            if (Json::parse(slot.buf, payload, parseError) &&
                payload.find("error") != nullptr)
                error += ": " + payload.find("error")->asString();
        } else {
            std::string parseError;
            if (!Json::parse(slot.buf, payload, parseError) ||
                (run = payload.find("run")) == nullptr ||
                !run->isObject()) {
                kind = FailureKind::Corrupt;
                error = "unparseable worker result (" +
                        (parseError.empty() ? "no run record"
                                            : parseError) +
                        ")";
            }
        }
        if (kind == FailureKind::None) {
            JournalEntry entry;
            entry.id = spec.id;
            entry.completed = true;
            entry.run = *run;
            const Json *power = payload.find("power");
            if (power != nullptr)
                entry.power = *power;
            finishRun(spec, hash, slot.attempt,
                      restoreRunResult(entry), entry.run, entry.power,
                      report.runs[slot.idx]);
            return;
        }
        if (slot.attempt < config_.retry.maxAttempts) {
            pending.push_back(
                {slot.idx, slot.attempt + 1,
                 nowMs() + config_.retry.backoffMs(slot.idx,
                                                   slot.attempt)});
        } else {
            failRun(spec, hash, slot.attempt, kind, error,
                    report.runs[slot.idx]);
        }
    };

    while (!pending.empty() || !slots.empty()) {
        // Launch everything ready, oldest attempts first (stable).
        std::int64_t now = nowMs();
        for (std::size_t p = 0;
             p < pending.size() && slots.size() < jobs_;) {
            if (pending[p].readyAtMs <= now) {
                launch(pending[p]);
                pending.erase(pending.begin() +
                              static_cast<std::ptrdiff_t>(p));
            } else {
                ++p;
            }
        }
        if (slots.empty() && pending.empty())
            break;

        // Sleep until the next event: readable child, deadline, or a
        // backoff becoming ready. Pending work only matters for the
        // wake-up time when a slot is free to launch it; with all
        // slots busy the next event is necessarily a child's.
        std::int64_t wake =
            std::numeric_limits<std::int64_t>::max();
        if (slots.size() < jobs_) {
            for (const PendingItem &item : pending)
                wake = std::min(wake, item.readyAtMs);
        }
        for (const Slot &slot : slots)
            wake = std::min(wake, slot.deadlineMs);
        now = nowMs();
        int timeout = -1;
        if (wake != std::numeric_limits<std::int64_t>::max())
            timeout = static_cast<int>(std::clamp<std::int64_t>(
                wake - now, 0, 60'000));
        std::vector<struct pollfd> fds;
        fds.reserve(slots.size());
        for (const Slot &slot : slots)
            fds.push_back({slot.fd, POLLIN, 0});
        const int ready =
            ::poll(fds.empty() ? nullptr : fds.data(),
                   static_cast<nfds_t>(fds.size()), timeout);
        if (ready < 0 && errno != EINTR)
            panic("poll failed: ", std::strerror(errno));

        // Drain readable pipes; finalize children at EOF.
        for (std::size_t s = 0; s < slots.size();) {
            bool eof = false;
            if (ready > 0 &&
                (fds[s].revents & (POLLIN | POLLHUP)) != 0) {
                char chunk[65536];
                const ssize_t n =
                    ::read(slots[s].fd, chunk, sizeof(chunk));
                if (n > 0)
                    slots[s].buf.append(chunk,
                                        static_cast<std::size_t>(n));
                else if (n == 0 || (n < 0 && errno != EINTR))
                    eof = true;
            }
            if (eof) {
                finalize(slots[s]);
                // fds indices must track slots for this sweep.
                fds.erase(fds.begin() +
                          static_cast<std::ptrdiff_t>(s));
                slots.erase(slots.begin() +
                            static_cast<std::ptrdiff_t>(s));
            } else {
                ++s;
            }
        }

        // Enforce deadlines: SIGKILL, then let EOF classify as hang.
        now = nowMs();
        for (Slot &slot : slots) {
            if (!slot.deadlineKilled && now >= slot.deadlineMs) {
                slot.deadlineKilled = true;
                ::kill(slot.pid, SIGKILL);
            }
        }
    }
}

SupervisorReport
Supervisor::run(const std::vector<RunSpec> &specs)
{
    SupervisorReport report;
    report.runs.resize(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const std::uint64_t hash = specHash(specs[i]);
        resumeHit(specs[i], hash, report.runs[i]);
    }
    if (config_.isolation == Isolation::Process)
        runForked(specs, report);
    else
        runThreaded(specs, report);
    for (const SupervisedRun &run : report.runs) {
        switch (run.outcome) {
          case SupervisedRun::Outcome::FromJournal:
            ++report.fromJournal;
            break;
          case SupervisedRun::Outcome::Done:
            ++report.executed;
            report.retries += run.attempts - 1;
            break;
          case SupervisedRun::Outcome::Failed:
            ++report.executed;
            ++report.failed;
            report.retries += run.attempts - 1;
            break;
        }
    }
    return report;
}

} // namespace sam
