/**
 * @file
 * Supervised campaign execution: retries, timeouts, process isolation.
 *
 * CampaignRunner's contract is all-or-nothing — one throwing run
 * aborts the batch. Paper-scale campaigns need the opposite: a run
 * that crashes, hangs, or returns garbage must be retried, classified,
 * and — if it keeps failing — recorded as FAILED while every other
 * run's work is kept. The Supervisor provides that envelope in two
 * isolation modes:
 *
 *   Thread   runs execute on the in-process work-stealing pool (same
 *            performance as CampaignRunner); exceptions are caught and
 *            retried, but a hard crash still takes the process down
 *            (the journal preserves completed work even then)
 *   Process  each attempt executes in a forked worker that reports
 *            its result record over a pipe; the parent classifies
 *            crash (signal), hang (deadline exceeded → SIGKILL),
 *            error (non-zero exit), and corrupt-result (unparseable
 *            report) failures, so no worker misbehaviour — including
 *            chaos-injected SIGKILL — can corrupt campaign state
 *
 * Retries use exponential backoff with deterministic seeded jitter
 * (RetryPolicy::backoffMs is a pure function of seed, spec index, and
 * attempt), so a retried campaign replays its schedule exactly. The
 * parent in Process mode is a single-threaded poll() event loop:
 * workers are forked only from a thread-less process, which keeps
 * fork() safe, and up to `jobs` children run concurrently.
 *
 * With a CampaignJournal attached, every outcome is written ahead
 * (append + fsync) before the in-memory report advances, and a
 * JournalState from a previous attempt short-circuits already-done
 * specs whose identity hash still matches. Results come back in spec
 * order regardless of isolation, jobs count, retries, or resume —
 * the campaign output stays bit-identical (wall-clock excepted).
 */

#ifndef SAM_RUNNER_SUPERVISOR_HH
#define SAM_RUNNER_SUPERVISOR_HH

#include <memory>
#include <string>
#include <vector>

#include "src/runner/campaign.hh"
#include "src/runner/chaos.hh"
#include "src/runner/journal.hh"
#include "src/common/thread_pool.hh"
#include "src/sim/table_cache.hh"

namespace sam {

enum class Isolation { Thread, Process };

/** Why an attempt (or a run, once retries exhaust) failed. */
enum class FailureKind { None, Crash, Hang, Error, Corrupt };

const char *failureKindName(FailureKind kind);

/** Bounded retry with exponential backoff and seeded jitter. */
struct RetryPolicy
{
    /** Total attempts per run (1 = no retry). */
    unsigned maxAttempts = 3;
    unsigned baseDelayMs = 100;
    unsigned maxDelayMs = 5000;
    /** Jitter as a fraction of the backoff: delay * [1-j, 1+j). */
    double jitter = 0.5;
    std::uint64_t seed = 0;

    /**
     * Delay before attempt `attempt + 1` of spec `specIdx` after
     * `attempt` failed (1-based). Deterministic: a pure function of
     * (seed, specIdx, attempt) via the sanctioned sam::Rng.
     */
    unsigned backoffMs(std::size_t specIdx, unsigned attempt) const;
};

struct SupervisorConfig
{
    Isolation isolation = Isolation::Thread;
    /** Concurrent workers; 0 picks the host's core count. */
    unsigned jobs = 0;
    /** Per-attempt deadline in ms; 0 disables (Process mode only). */
    std::uint64_t timeoutMs = 0;
    RetryPolicy retry;
    /** Fault injection; requires Process isolation when enabled. */
    ChaosConfig chaos;
    /** Write-ahead journal; optional, not owned. */
    CampaignJournal *journal = nullptr;
    /** Prior journal contents for --resume; optional, not owned. */
    const JournalState *resume = nullptr;
};

/** Outcome of one supervised spec. */
struct SupervisedRun
{
    enum class Outcome { Done, FromJournal, Failed };

    /** Numeric stats restored/collected; meaningless when Failed. */
    RunResult result;
    /** The BENCH runs[] record, verbatim (null when Failed). */
    Json record;
    Outcome outcome = Outcome::Failed;
    FailureKind failure = FailureKind::None;
    unsigned attempts = 0;
    std::string error;

    bool succeeded() const { return outcome != Outcome::Failed; }
};

struct SupervisorReport
{
    /** One entry per spec, in spec order. */
    std::vector<SupervisedRun> runs;
    unsigned executed = 0;    ///< Specs simulated this invocation.
    unsigned fromJournal = 0; ///< Specs skipped via resume.
    unsigned failed = 0;      ///< Specs that exhausted retries.
    unsigned retries = 0;     ///< Extra attempts beyond the first.
    unsigned launches = 0;    ///< Worker launches (Process mode).

    bool allDone() const { return failed == 0; }
};

class Supervisor
{
  public:
    explicit Supervisor(SupervisorConfig config);

    unsigned jobs() const { return jobs_; }

    /** Table cache shared by Thread-mode runs (lazily created). */
    const std::shared_ptr<TableCache> &tableCache() const
    {
        return tables_;
    }

    /**
     * Execute every spec under supervision and return outcomes in
     * spec order. Never throws for per-run failures — check
     * SupervisorReport::allDone().
     */
    SupervisorReport run(const std::vector<RunSpec> &specs);

  private:
    struct Slot; // Process-mode bookkeeping (defined in the .cc).

    bool resumeHit(const RunSpec &spec, std::uint64_t hash,
                   SupervisedRun &out) const;
    void runThreaded(const std::vector<RunSpec> &specs,
                     SupervisorReport &report);
    void runForked(const std::vector<RunSpec> &specs,
                   SupervisorReport &report);
    void finishRun(const RunSpec &spec, std::uint64_t hash,
                   unsigned attempts, RunResult result,
                   Json record, Json power, SupervisedRun &out);
    void failRun(const RunSpec &spec, std::uint64_t hash,
                 unsigned attempts, FailureKind kind,
                 const std::string &error, SupervisedRun &out);

    SupervisorConfig config_;
    unsigned jobs_;
    std::shared_ptr<TableCache> tables_;
    std::unique_ptr<ThreadPool> pool_; ///< Thread mode only, lazy.
};

} // namespace sam

#endif // SAM_RUNNER_SUPERVISOR_HH
