#include "src/runner/chaos.hh"

#include <cstdlib>

namespace sam {

const char *
chaosFaultName(ChaosFault fault)
{
    switch (fault) {
      case ChaosFault::None: return "none";
      case ChaosFault::Kill: return "kill";
      case ChaosFault::Hang: return "hang";
      case ChaosFault::Corrupt: return "corrupt";
      case ChaosFault::Slow: return "slow";
      case ChaosFault::Die: return "die";
    }
    return "?";
}

namespace {

bool
parseFaultName(const std::string &name, ChaosFault &out)
{
    for (ChaosFault f : {ChaosFault::Kill, ChaosFault::Hang,
                         ChaosFault::Corrupt, ChaosFault::Slow,
                         ChaosFault::Die}) {
        if (name == chaosFaultName(f)) {
            out = f;
            return true;
        }
    }
    return false;
}

bool
parseNumber(const std::string &text, std::uint64_t &out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    out = std::strtoull(text.c_str(), &end, 10);
    return end != nullptr && *end == '\0';
}

/** SplitMix64 finalizer: decorrelates (seed, launch, spec, salt). */
std::uint64_t
mix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

std::uint64_t
chaosHash(std::uint64_t seed, std::uint64_t launch, std::uint64_t spec,
          std::uint64_t salt)
{
    return mix(mix(mix(mix(seed) ^ launch) ^ spec) ^ salt);
}

} // namespace

bool
parseChaosSpec(const std::string &spec, ChaosConfig &out,
               std::string &error)
{
    ChaosConfig cfg;
    std::size_t start = 0;
    while (start <= spec.size()) {
        std::size_t comma = spec.find(',', start);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string term = spec.substr(start, comma - start);
        start = comma + 1;
        if (term.empty()) {
            error = "empty term in chaos spec '" + spec + "'";
            return false;
        }
        if (term.rfind("seed=", 0) == 0) {
            std::uint64_t seed = 0;
            if (!parseNumber(term.substr(5), seed)) {
                error = "bad chaos seed '" + term + "'";
                return false;
            }
            cfg.seed = seed;
            continue;
        }
        const std::size_t at = term.find('@');
        const std::size_t pct = term.find('%');
        if (at != std::string::npos) {
            ChaosFault fault = ChaosFault::None;
            if (!parseFaultName(term.substr(0, at), fault)) {
                error = "unknown chaos fault in '" + term +
                        "' (kill|hang|corrupt|slow|die)";
                return false;
            }
            std::string where = term.substr(at + 1);
            if (where.rfind("spec:", 0) == 0) {
                std::uint64_t idx = 0;
                if (!parseNumber(where.substr(5), idx)) {
                    error = "bad spec index in '" + term + "'";
                    return false;
                }
                cfg.specPoints.emplace_back(
                    static_cast<unsigned>(idx), fault);
            } else {
                std::uint64_t n = 0;
                if (!parseNumber(where, n) || n == 0) {
                    error = "bad launch point in '" + term +
                            "' (1-based integer)";
                    return false;
                }
                cfg.launchPoints.emplace_back(
                    static_cast<unsigned>(n), fault);
            }
            continue;
        }
        if (pct != std::string::npos) {
            ChaosFault fault = ChaosFault::None;
            if (!parseFaultName(term.substr(0, pct), fault)) {
                error = "unknown chaos fault in '" + term +
                        "' (kill|hang|corrupt|slow|die)";
                return false;
            }
            std::uint64_t p = 0;
            if (!parseNumber(term.substr(pct + 1), p) || p == 0 ||
                p > 100) {
                error = "chaos percentage in '" + term +
                        "' must be 1..100";
                return false;
            }
            cfg.percent.emplace_back(fault,
                                     static_cast<unsigned>(p));
            continue;
        }
        error = "cannot parse chaos term '" + term +
                "' (want seed=N, fault@N, fault@spec:N, or fault%P)";
        return false;
    }
    if (!cfg.enabled()) {
        error = "chaos spec '" + spec + "' injects nothing";
        return false;
    }
    out = std::move(cfg);
    return true;
}

ChaosPlan
ChaosEngine::nextLaunch(std::size_t specIdx)
{
    const unsigned launch = ++launches_;
    ChaosPlan plan;
    for (const auto &[at, fault] : config_.launchPoints) {
        if (at == launch)
            plan.fault = fault;
    }
    if (plan.fault == ChaosFault::None) {
        for (const auto &[idx, fault] : config_.specPoints) {
            if (idx == specIdx)
                plan.fault = fault;
        }
    }
    if (plan.fault == ChaosFault::None) {
        for (const auto &[fault, pct] : config_.percent) {
            const std::uint64_t roll =
                chaosHash(config_.seed, launch, specIdx,
                          static_cast<std::uint64_t>(fault)) %
                100;
            if (roll < pct) {
                plan.fault = fault;
                break;
            }
        }
    }
    if (plan.fault == ChaosFault::Kill)
        plan.point = static_cast<unsigned>(
            chaosHash(config_.seed, launch, specIdx, 101) % 3);
    if (plan.fault == ChaosFault::Slow)
        plan.delayMs = 20 + static_cast<unsigned>(
            chaosHash(config_.seed, launch, specIdx, 102) % 80);
    return plan;
}

} // namespace sam
