/**
 * @file
 * Parallel campaign driver.
 *
 * A campaign is a list of independent simulation runs — (design, query,
 * config) points — fanned across a work-stealing thread pool. Each run
 * executes in a fresh single-threaded Session so its RunStats (including
 * the cumulative statsText dump) are bit-identical no matter how the
 * runs are scheduled; the expensive part, ECC-encoding the benchmark
 * tables, is shared through one TableCache so each distinct table pair
 * is materialized exactly once per campaign.
 *
 * Results come back in spec order regardless of the jobs count, so
 * `--jobs 1` and `--jobs 8` produce byte-identical reports.
 */

#ifndef SAM_RUNNER_CAMPAIGN_HH
#define SAM_RUNNER_CAMPAIGN_HH

#include <memory>
#include <string>
#include <vector>

#include "src/common/json.hh"
#include "src/imdb/query.hh"
#include "src/common/thread_pool.hh"
#include "src/sim/system.hh"
#include "src/sim/table_cache.hh"

namespace sam {

/** One independent simulation in a campaign. */
struct RunSpec
{
    /** Stable identifier emitted in reports, e.g. "sam_en/Q3". */
    std::string id;
    SimConfig config;
    Query query;
    /** Check the functional result against the reference executor. */
    bool verify = false;
};

/** Everything measured for one campaign run. */
struct RunResult
{
    std::string id;
    DesignKind design = DesignKind::Baseline;
    std::string query;
    RunStats stats;
    /** Host wall time of this run, milliseconds. */
    double wallMs = 0.0;
    /** Table-A records the run scanned (throughput denominator). */
    std::uint64_t records = 0;
};

/**
 * Runs RunSpecs across a thread pool, one Session per run, sharing a
 * single TableCache. Reusable across batches; the cache persists for
 * the runner's lifetime.
 */
class CampaignRunner
{
  public:
    /** @param jobs Worker threads; 0 picks the host's core count. */
    explicit CampaignRunner(unsigned jobs = 0);

    unsigned jobs() const { return pool_.workers(); }

    const std::shared_ptr<TableCache> &tableCache() const
    {
        return tables_;
    }

    /**
     * Run every spec and return results in spec order. Rethrows the
     * first run failure after the batch drains.
     */
    std::vector<RunResult> run(const std::vector<RunSpec> &specs);

  private:
    std::shared_ptr<TableCache> tables_;
    ThreadPool pool_;
};

/** Per-run JSON record (the "runs" array element of BENCH_*.json). */
Json runResultJson(const RunResult &result);

/**
 * Standard BENCH_*.json document skeleton: schema tag, campaign name,
 * jobs count, and the runs array. Figure drivers append their derived
 * metrics (speedups, geomeans) before writing.
 */
Json campaignJson(const std::string &name, unsigned jobs,
                  const std::vector<RunResult> &results);

} // namespace sam

#endif // SAM_RUNNER_CAMPAIGN_HH
