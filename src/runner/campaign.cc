#include "src/runner/campaign.hh"

#include <chrono>

#include "src/common/types.hh"
#include "src/core/session.hh"

namespace sam {

CampaignRunner::CampaignRunner(unsigned jobs)
    : tables_(std::make_shared<TableCache>()), pool_(jobs)
{
}

std::vector<RunResult>
CampaignRunner::run(const std::vector<RunSpec> &specs)
{
    std::vector<RunResult> results(specs.size());
    std::vector<std::function<void()>> tasks;
    tasks.reserve(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        tasks.push_back([this, &specs, &results, i] {
            const RunSpec &spec = specs[i];
            // Wall-clock here feeds only wallMs reporting, never any
            // simulated state -- the one sanctioned clock read on the
            // bit-identity surface.
            // NOLINTNEXTLINE(sam-determinism)
            const auto t0 = std::chrono::steady_clock::now();
            // A fresh Session per run: per-system counters accumulate
            // across queries, so sharing one Session across runs would
            // make statsText depend on scheduling order.
            Session session(spec.config, tables_);
            RunStats stats = session.run(spec.config.design, spec.query);
            if (spec.verify)
                session.checkResult(spec.query, stats);
            // NOLINTNEXTLINE(sam-determinism)
            const auto t1 = std::chrono::steady_clock::now();
            RunResult &r = results[i];
            r.id = spec.id;
            r.design = spec.config.design;
            r.query = spec.query.name;
            r.stats = std::move(stats);
            r.wallMs = std::chrono::duration<double, std::milli>(
                t1 - t0).count();
            r.records = spec.config.taRecords;
        });
    }
    pool_.run(std::move(tasks));
    return results;
}

Json
runResultJson(const RunResult &result)
{
    const RunStats &s = result.stats;
    Json run = Json::object();
    run.set("id", result.id);
    run.set("design", designName(result.design));
    run.set("query", result.query);
    run.set("cycles", s.cycles);
    run.set("energy_pj", s.power.totalEnergyPj());
    run.set("mem_reads", s.memReads);
    run.set("mem_writes", s.memWrites);
    run.set("stride_reads", s.strideReads);
    run.set("stride_writes", s.strideWrites);
    run.set("activates", s.activates);
    run.set("row_hits", s.rowHits);
    run.set("row_misses", s.rowMisses);
    run.set("mode_switches", s.modeSwitches);
    run.set("ecc_corrected_lines", s.eccCorrectedLines);
    run.set("ecc_uncorrectable", s.eccUncorrectable);
    run.set("checked_commands", s.checkedCommands);
    run.set("result_rows", s.result.rows);
    run.set("result_checksum", s.result.checksum);
    run.set("wall_ms", result.wallMs);
    // Simulation throughput in records/second of host wall time: a
    // perf-smoke metric, wall-clock-derived and therefore exempt from
    // bit-identity and bench_diff comparison (like wall_ms).
    run.set("throughput", result.wallMs > 0
                              ? static_cast<double>(result.records) *
                                    1e3 / result.wallMs
                              : 0.0);
    // Per-class latency percentiles when the run collected telemetry.
    if (s.telemetry)
        run.set("latency_cycles", s.telemetry->latencyJson());
    return run;
}

Json
campaignJson(const std::string &name, unsigned jobs,
             const std::vector<RunResult> &results)
{
    Json doc = Json::object();
    doc.set("schema", "sam-campaign-v1");
    doc.set("campaign", name);
    doc.set("jobs", jobs);
    Json runs = Json::array();
    for (const RunResult &r : results)
        runs.push(runResultJson(r));
    doc.set("runs", std::move(runs));
    return doc;
}

} // namespace sam
