#include "src/runner/journal.hh"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>

#include <fcntl.h>
#include <unistd.h>

#include "src/common/logging.hh"

namespace sam {

namespace {

/** Wall timestamp recorded on journal lines (diagnostics only: it is
 *  never merged into BENCH output, so resume stays bit-identical). */
std::uint64_t
wallMs()
{
    // Journal timestamps are off-surface metadata; no simulated state
    // reads them.
    // NOLINTNEXTLINE(sam-determinism): provenance timestamp only.
    const auto now = std::chrono::system_clock::now();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            now.time_since_epoch())
            .count());
}

/** Canonical JSON of everything that determines a run's results.
 *  `config.engine` is deliberately absent: the step and event replay
 *  engines are command-stream and stats identical (enforced by the
 *  engine_diff suite), so a journal written under one engine validly
 *  resumes a campaign running under the other. */
Json
specIdentityJson(const RunSpec &spec)
{
    const SimConfig &c = spec.config;
    Json j = Json::object();
    j.set("id", spec.id);
    j.set("design", designName(c.design));
    j.set("ecc", eccSchemeName(c.ecc));
    j.set("override_tech", c.overrideTech);
    j.set("tech", static_cast<int>(c.tech));
    j.set("cores", c.cores);
    j.set("mshrs", c.mshrsPerCore);
    Json caches = Json::array();
    for (const CacheParams *p :
         {&c.caches.l1, &c.caches.l2, &c.caches.llc}) {
        Json cp = Json::array();
        cp.push(p->sizeBytes);
        cp.push(p->assoc);
        cp.push(p->sectorBytes);
        cp.push(static_cast<std::uint64_t>(p->hitLatency));
        caches.push(std::move(cp));
    }
    j.set("caches", std::move(caches));
    j.set("ta_records", c.taRecords);
    j.set("ta_fields", c.taFields);
    j.set("tb_records", c.tbRecords);
    j.set("tb_fields", c.tbFields);
    j.set("compute_per_record",
          static_cast<std::uint64_t>(c.computePerRecord));
    j.set("compute_per_value",
          static_cast<std::uint64_t>(c.computePerValue));
    j.set("check", c.check);
    Json faults = Json::object();
    faults.set("model", static_cast<int>(c.faults.model));
    faults.set("fit", c.faults.fitPerMcycle);
    faults.set("stuck_chip", c.faults.stuckChip);
    faults.set("stuck_p", c.faults.stuckProbability);
    faults.set("stuck_bits", c.faults.stuckBits);
    faults.set("chipkill_at",
               static_cast<std::uint64_t>(c.faults.chipkillAt));
    faults.set("chipkill_chip", c.faults.chipkillChip);
    faults.set("seed", c.faults.seed);
    j.set("faults", std::move(faults));
    Json ras = Json::object();
    ras.set("max_retries", c.ras.maxRetries);
    ras.set("scrub", c.ras.scrubEnabled);
    ras.set("bucket_threshold", c.ras.bucketThreshold);
    ras.set("bucket_window",
            static_cast<std::uint64_t>(c.ras.bucketWindow));
    ras.set("max_spare_lines", c.ras.maxSpareLines);
    ras.set("spare_base", static_cast<std::uint64_t>(c.ras.spareBase));
    j.set("ras", std::move(ras));
    const Query &q = spec.query;
    Json query = Json::object();
    query.set("name", q.name);
    query.set("kind", static_cast<int>(q.kind));
    query.set("table", static_cast<int>(q.table));
    Json fields = Json::array();
    for (unsigned f : q.fields)
        fields.push(f);
    query.set("fields", std::move(fields));
    query.set("pred", q.hasPredicate);
    query.set("pred_field", q.predField);
    query.set("sel", q.selectivity);
    query.set("pred2", q.hasPredicate2);
    query.set("pred_field2", q.predField2);
    query.set("sel2", q.selectivity2);
    query.set("limit", q.limit);
    query.set("join_field", q.joinField);
    query.set("join_sel", q.joinSelectivity);
    query.set("join_extra", q.joinExtraFilter);
    query.set("insert_count", q.insertCount);
    query.set("row_preferred", q.rowPreferred);
    query.set("field_major", q.fieldMajor);
    query.set("record_major", q.recordMajor);
    j.set("query", std::move(query));
    j.set("verify", spec.verify);
    return j;
}

} // namespace

std::uint64_t
specHash(const RunSpec &spec)
{
    const std::string text = specIdentityJson(spec).dump(0);
    // FNV-1a 64: tiny, stable across platforms, and collisions only
    // cost a spurious re-run check against a same-id entry.
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char ch : text) {
        h ^= ch;
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::string
hashHex(std::uint64_t hash)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(hash));
    return buf;
}

Json
powerJson(const PowerBreakdown &power)
{
    Json j = Json::object();
    j.set("act_pj", power.actEnergyPj);
    j.set("rdwr_pj", power.rdwrEnergyPj);
    j.set("background_pj", power.backgroundEnergyPj);
    j.set("refresh_pj", power.refreshEnergyPj);
    j.set("elapsed_ns", power.elapsedNs);
    return j;
}

// ----- append side ---------------------------------------------------

CampaignJournal::CampaignJournal(std::string path,
                                 const JournalHeader &header,
                                 bool resume)
    : path_(std::move(path))
{
    int flags = O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC;
    if (!resume)
        flags |= O_TRUNC;
    MutexLock lock(mutex_);
    fd_ = ::open(path_.c_str(), flags, 0644);
    if (fd_ < 0)
        fatal("cannot open journal ", path_, ": ",
              std::strerror(errno));
    if (!resume) {
        Json h = Json::object();
        h.set("schema", kSchema);
        h.set("campaign", header.campaign);
        h.set("scale", header.scale);
        h.set("verify", header.verify);
        h.set("telemetry", header.telemetry);
        h.set("ts_ms", wallMs());
        appendLine(h.dump(0));
    }
}

CampaignJournal::~CampaignJournal()
{
    MutexLock lock(mutex_);
    if (fd_ >= 0)
        ::close(fd_);
}

void
CampaignJournal::appendLine(const std::string &line)
{
    // Caller holds mutex_ (constructor) or takes it (record*). One
    // write(2) of the whole line against O_APPEND: concurrent appends
    // never interleave, and a crash can only truncate the tail.
    std::string buf = line;
    buf += '\n';
    std::size_t off = 0;
    while (off < buf.size()) {
        const ssize_t n =
            ::write(fd_, buf.data() + off, buf.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            panic("journal append to ", path_, " failed: ",
                  std::strerror(errno));
        }
        off += static_cast<std::size_t>(n);
    }
    // Write-ahead durability: the record must be on disk before the
    // campaign treats the run as finished.
    if (::fsync(fd_) != 0)
        panic("journal fsync of ", path_, " failed: ",
              std::strerror(errno));
}

void
CampaignJournal::recordDone(const std::string &id, std::uint64_t hash,
                            unsigned attempts, const Json &run,
                            const Json &power)
{
    Json entry = Json::object();
    entry.set("spec", id);
    entry.set("hash", hashHex(hash));
    entry.set("status", "done");
    entry.set("attempts", attempts);
    entry.set("ts_ms", wallMs());
    entry.set("run", run);
    entry.set("power", power);
    const std::string line = entry.dump(0);
    MutexLock lock(mutex_);
    appendLine(line);
}

void
CampaignJournal::recordFailed(const std::string &id,
                              std::uint64_t hash, unsigned attempts,
                              const std::string &failure,
                              const std::string &error)
{
    Json entry = Json::object();
    entry.set("spec", id);
    entry.set("hash", hashHex(hash));
    entry.set("status", "failed");
    entry.set("attempts", attempts);
    entry.set("ts_ms", wallMs());
    entry.set("failure", failure);
    entry.set("error", error);
    const std::string line = entry.dump(0);
    MutexLock lock(mutex_);
    appendLine(line);
}

// ----- load side -----------------------------------------------------

bool
loadJournal(const std::string &path, JournalState &out,
            std::string &error)
{
    out = JournalState{};
    std::ifstream in(path);
    if (!in.good()) {
        error = "cannot read journal " + path;
        return false;
    }
    std::string line;
    bool sawHeader = false;
    unsigned lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        if (line.empty())
            continue;
        Json rec;
        std::string parseError;
        if (!Json::parse(line, rec, parseError) || !rec.isObject()) {
            if (!sawHeader) {
                error = path + ":1: not a " +
                        std::string(CampaignJournal::kSchema) +
                        " header (" + parseError + ")";
                return false;
            }
            // A torn line mid-file would mean interleaved appends,
            // which the single-write discipline rules out; only the
            // final line can legitimately be partial, so anything
            // after a bad line is untrustworthy and dropped.
            ++out.truncatedLines;
            break;
        }
        if (!sawHeader) {
            if (rec.find("schema") == nullptr ||
                rec.find("schema")->asString() !=
                    CampaignJournal::kSchema) {
                error = path + ":1: expected schema '" +
                        std::string(CampaignJournal::kSchema) + "'";
                return false;
            }
            const Json *campaign = rec.find("campaign");
            const Json *scale = rec.find("scale");
            out.header.campaign =
                campaign != nullptr ? campaign->asString() : "";
            out.header.scale = scale != nullptr ? scale->asString() : "";
            const Json *verify = rec.find("verify");
            const Json *telemetry = rec.find("telemetry");
            out.header.verify =
                verify != nullptr && verify->asBool();
            out.header.telemetry =
                telemetry == nullptr || telemetry->asBool(true);
            sawHeader = true;
            continue;
        }
        JournalEntry entry;
        const Json *spec = rec.find("spec");
        const Json *status = rec.find("status");
        if (spec == nullptr || status == nullptr) {
            ++out.truncatedLines;
            break;
        }
        entry.id = spec->asString();
        const Json *hash = rec.find("hash");
        if (hash != nullptr)
            entry.hash = std::strtoull(hash->asString().c_str(),
                                       nullptr, 16);
        entry.completed = status->asString() == "done";
        const Json *attempts = rec.find("attempts");
        entry.attempts =
            attempts != nullptr
                ? static_cast<unsigned>(attempts->asU64(1))
                : 1;
        if (entry.completed) {
            const Json *run = rec.find("run");
            const Json *power = rec.find("power");
            if (run == nullptr || !run->isObject()) {
                ++out.truncatedLines;
                break;
            }
            entry.run = *run;
            if (power != nullptr)
                entry.power = *power;
        } else {
            const Json *failure = rec.find("failure");
            const Json *why = rec.find("error");
            if (failure != nullptr)
                entry.failure = failure->asString();
            if (why != nullptr)
                entry.error = why->asString();
        }
        out.entries[entry.id] = std::move(entry);
    }
    if (!sawHeader) {
        error = path + ": empty journal (no header record)";
        return false;
    }
    return true;
}

RunResult
restoreRunResult(const JournalEntry &entry)
{
    sam_assert(entry.completed, "restoring a failed journal entry '",
               entry.id, "'");
    const Json &run = entry.run;
    RunResult r;
    r.id = entry.id;
    const Json *design = run.find("design");
    if (design != nullptr) {
        for (DesignKind d :
             {DesignKind::Baseline, DesignKind::RcNvmBit,
              DesignKind::RcNvmWord, DesignKind::GsDram,
              DesignKind::GsDramEcc, DesignKind::SamSub,
              DesignKind::SamIo, DesignKind::SamEn,
              DesignKind::Ideal}) {
            if (designName(d) == design->asString())
                r.design = d;
        }
    }
    const auto u64 = [&run](const char *key) {
        const Json *v = run.find(key);
        return v != nullptr ? v->asU64() : 0;
    };
    const Json *query = run.find("query");
    r.query = query != nullptr ? query->asString() : "";
    RunStats &s = r.stats;
    // Restoring a journaled value, not advancing simulated time.
    // NOLINTNEXTLINE(sam-cycle-accounting): journal replay only.
    s.cycles = u64("cycles");
    s.memReads = u64("mem_reads");
    s.memWrites = u64("mem_writes");
    s.strideReads = u64("stride_reads");
    s.strideWrites = u64("stride_writes");
    s.activates = u64("activates");
    s.rowHits = u64("row_hits");
    s.rowMisses = u64("row_misses");
    s.modeSwitches = u64("mode_switches");
    s.eccCorrectedLines = u64("ecc_corrected_lines");
    s.eccUncorrectable = u64("ecc_uncorrectable");
    s.checkedCommands = u64("checked_commands");
    s.result.rows = u64("result_rows");
    s.result.checksum = u64("result_checksum");
    const Json *wall = run.find("wall_ms");
    r.wallMs = wall != nullptr ? wall->asDouble() : 0.0;
    const auto pd = [&entry](const char *key) {
        const Json *v = entry.power.find(key);
        return v != nullptr ? v->asDouble() : 0.0;
    };
    s.power.actEnergyPj = pd("act_pj");
    s.power.rdwrEnergyPj = pd("rdwr_pj");
    s.power.backgroundEnergyPj = pd("background_pj");
    s.power.refreshEnergyPj = pd("refresh_pj");
    s.power.elapsedNs = pd("elapsed_ns");
    return r;
}

} // namespace sam
