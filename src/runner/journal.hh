/**
 * @file
 * Write-ahead campaign journal (sam-journal-v1).
 *
 * A campaign's completed work must survive the campaign process: if a
 * run crashes, hangs the host, or the machine reboots, everything
 * already simulated is worth keeping. The journal is an append-only
 * JSONL file; line 1 is a header record pinning the schema, campaign
 * name, and scale, and every subsequent line is one run outcome:
 *
 *   {"schema":"sam-journal-v1","campaign":"fig12","scale":"quick",...}
 *   {"spec":"SAM-en/Q1","hash":"9f2c...","status":"done",
 *    "attempts":1,"ts_ms":...,"run":{...},"power":{...}}
 *   {"spec":"SAM-en/Q2","hash":"03ab...","status":"failed",
 *    "attempts":3,"ts_ms":...,"failure":"crash","error":"signal 9"}
 *
 * Each append is a single write(2) of one complete line to an
 * O_APPEND descriptor followed by fsync, so a crash can lose at most
 * a partial final line — which the loader detects and discards. The
 * "run" member is the exact BENCH runs[] record of the completed run;
 * on `--resume` it is re-emitted verbatim, which is what makes a
 * resumed campaign's merged JSON bit-identical (wall-clock fields
 * excepted) to an uninterrupted one. "hash" is a stable digest of the
 * RunSpec's identity (design, query, geometry, fault/ECC config…); a
 * journal entry whose hash no longer matches the spec is stale — the
 * configuration changed — and the run is re-executed.
 *
 * These append/replay/identity primitives are exactly the shard-lease
 * substrate the planned distributed campaign protocol (ROADMAP item 4)
 * claims work units with; keep them free of local-process assumptions.
 */

#ifndef SAM_RUNNER_JOURNAL_HH
#define SAM_RUNNER_JOURNAL_HH

#include <cstdint>
#include <map>
#include <string>

#include "src/common/json.hh"
#include "src/common/thread_annotations.hh"
#include "src/runner/campaign.hh"

namespace sam {

/** Journal header record (line 1 of the JSONL file). */
struct JournalHeader
{
    std::string campaign;    ///< e.g. "fig12".
    std::string scale;       ///< "quick", "full", or "paper".
    bool verify = false;     ///< Runs check against the reference.
    bool telemetry = true;   ///< Runs carry latency histograms.
};

/** One replayed journal line (the latest record wins per spec id). */
struct JournalEntry
{
    std::string id;
    std::uint64_t hash = 0;
    bool completed = false;   ///< status "done" vs "failed".
    unsigned attempts = 0;
    std::string failure;      ///< Failure class ("crash", "hang", …).
    std::string error;        ///< Human-readable failure detail.
    Json run;                 ///< BENCH runs[] record, verbatim.
    Json power;               ///< Power breakdown for derived metrics.
};

/** Parsed journal contents, keyed by spec id. */
struct JournalState
{
    JournalHeader header;
    std::map<std::string, JournalEntry> entries;
    /** Partial trailing lines discarded (crash mid-append). */
    unsigned truncatedLines = 0;
};

/**
 * Append side of the journal. Thread-safe: supervisor workers record
 * outcomes from any thread; each record is appended and fsynced before
 * the call returns ("write-ahead": durable before the campaign's
 * in-memory bookkeeping advances).
 */
class CampaignJournal
{
  public:
    static constexpr const char *kSchema = "sam-journal-v1";

    /**
     * Open `path` for appending. When `resume` is false the file is
     * truncated and a fresh header written; when true it must already
     * carry a matching header (verified by the caller via
     * loadJournal) and new records are appended after the old.
     * Panics on I/O failure.
     */
    CampaignJournal(std::string path, const JournalHeader &header,
                    bool resume);
    ~CampaignJournal();

    CampaignJournal(const CampaignJournal &) = delete;
    CampaignJournal &operator=(const CampaignJournal &) = delete;

    const std::string &path() const { return path_; }

    /** Record a completed run: its BENCH record + power breakdown. */
    void recordDone(const std::string &id, std::uint64_t hash,
                    unsigned attempts, const Json &run,
                    const Json &power);

    /** Record a run that exhausted its retries. */
    void recordFailed(const std::string &id, std::uint64_t hash,
                      unsigned attempts, const std::string &failure,
                      const std::string &error);

  private:
    void appendLine(const std::string &line) SAM_REQUIRES(mutex_);

    std::string path_;
    Mutex mutex_;
    int fd_ SAM_GUARDED_BY(mutex_) = -1;
};

/**
 * Parse a journal file. Returns false with a one-line diagnostic when
 * the file is unreadable or its header is not a sam-journal-v1 record;
 * a torn final line (crash mid-append) is tolerated and counted, and
 * duplicate spec ids keep the latest record (a retried run re-journals
 * its outcome).
 */
bool loadJournal(const std::string &path, JournalState &out,
                 std::string &error);

/**
 * Stable identity digest of a RunSpec: FNV-1a over the canonical
 * serialization of everything that changes simulated results (design,
 * query shape, table geometry, ECC/fault/RAS config, verify flag).
 * Telemetry and scheduling knobs are deliberately excluded — they do
 * not affect the simulated counters, so flipping them must not
 * invalidate completed journal entries' cycles.
 */
std::uint64_t specHash(const RunSpec &spec);

/** 16-digit lowercase hex rendering used in journal records. */
std::string hashHex(std::uint64_t hash);

/** Power-breakdown record journaled alongside each completed run. */
Json powerJson(const PowerBreakdown &power);

/**
 * Reconstruct a RunResult from a journaled "done" entry: the numeric
 * RunStats fields (cycles, counters, power) that derived-metric
 * computation reads are restored; statsText and the telemetry
 * snapshot are not (the BENCH record already embeds the rendered
 * latency histograms, and nothing downstream re-renders statsText).
 */
RunResult restoreRunResult(const JournalEntry &entry);

} // namespace sam

#endif // SAM_RUNNER_JOURNAL_HH
