/**
 * @file
 * Per-rank error log with a leaky-bucket threshold per line, the
 * standard server-RAS mechanism for telling a permanent fault from
 * background transients: every ECC event on a line adds to its bucket,
 * the bucket leaks over time, and an overflow classifies the line as a
 * repeat offender (permanent), which the RAS engine then retires.
 */

#ifndef SAM_FAULTS_ERROR_LOG_HH
#define SAM_FAULTS_ERROR_LOG_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/types.hh"

namespace sam {

class ErrorLog
{
  public:
    /** One logged ECC event. */
    struct Event
    {
        Addr line = 0;
        Cycle at = 0;
        bool corrected = false;  ///< false = uncorrectable.
    };

    /**
     * @param threshold Bucket level that classifies a line permanent.
     * @param window Cycles for a full bucket to leak back to empty.
     */
    ErrorLog(double threshold, Cycle window)
        : threshold_(threshold), window_(window)
    {}

    /**
     * Record an ECC event on `line` at time `now`. Returns true
     * exactly once per line: when the event pushes the bucket over the
     * threshold and the line is newly classified permanent.
     */
    bool record(Addr line, Cycle now, bool corrected);

    /** Whether the leaky bucket has classified `line` as permanent. */
    bool isPermanent(Addr line) const;

    /** Recent events, oldest first (bounded; see totalEvents()). */
    const std::vector<Event> &events() const { return events_; }

    /** Total events recorded, including any beyond the event cap. */
    std::uint64_t totalEvents() const { return total_; }

    /** Current bucket level of a line (0 when never seen). */
    double bucketLevel(Addr line, Cycle now) const;

  private:
    struct Bucket
    {
        double level = 0.0;
        Cycle last = 0;
        bool permanent = false;
    };

    /** Leak `b` down to time `now` (clock resets leak nothing). */
    double leaked(const Bucket &b, Cycle now) const;

    static constexpr std::size_t kMaxEvents = 1024;

    double threshold_;
    Cycle window_;
    std::unordered_map<Addr, Bucket> buckets_;
    std::vector<Event> events_;
    std::uint64_t total_ = 0;
};

} // namespace sam

#endif // SAM_FAULTS_ERROR_LOG_HH
