/**
 * @file
 * Read-path RAS policy engine: corrected errors are logged and
 * scrubbed (the corrected line is written back as a real, timed
 * write); uncorrectable errors get a bounded re-read retry (clears
 * transient bus faults) and are poisoned on exhaustion; the per-rank
 * ErrorLog's leaky bucket classifies repeat offenders as permanent
 * faults, which retires the line to a spare region (subsequent
 * accesses remapped, scrubbing stops -- rewriting a dead cell buys
 * nothing).
 */

#ifndef SAM_FAULTS_RAS_ENGINE_HH
#define SAM_FAULTS_RAS_ENGINE_HH

#include <cstdint>
#include <unordered_map>

#include "src/common/stats.hh"
#include "src/common/types.hh"
#include "src/dram/ras_hooks.hh"
#include "src/faults/error_log.hh"

namespace sam {

/** RAS policy knobs. */
struct RasConfig
{
    /** Re-read attempts before an uncorrectable read is poisoned. */
    unsigned maxRetries = 2;

    /** Write corrected lines back (demand scrubbing). */
    bool scrubEnabled = true;

    /** Leaky bucket: events above this level classify permanent. */
    double bucketThreshold = 4.0;
    /** Cycles for a full bucket to leak empty. */
    Cycle bucketWindow = 1'000'000;

    /** Spare-line pool for retirement. */
    unsigned maxSpareLines = 256;
    /**
     * Base of the spare region, far above any table so the remap
     * cannot collide with real data. Retirement remapping is a
     * functional-store concern only: traces keep logical addresses,
     * so the timing replay is unaffected.
     */
    Addr spareBase = Addr{1} << 40;
};

/** RAS event counters. */
struct RasStats
{
    Counter correctedErrors;    ///< Corrected-error events seen.
    Counter uncorrectableErrors;///< Accesses that hit uncorrectable.
    Counter scrubWritebacks;    ///< Corrected lines written back.
    Counter scrubsSuppressed;   ///< Skipped: line classified permanent.
    Counter retriesAttempted;   ///< Re-reads issued.
    Counter retriesExhausted;   ///< Retry budgets that ran out.
    Counter poisonedReads;      ///< Reads returned poisoned.
    Counter linesRetired;       ///< Lines remapped to spares.
    Counter spareExhausted;     ///< Retirements denied: no spares left.

    void registerIn(StatGroup &group) const;
};

class RasEngine final : public RasPolicy
{
  public:
    explicit RasEngine(const RasConfig &config = {});

    const RasConfig &config() const { return config_; }
    const RasStats &stats() const { return stats_; }
    const ErrorLog &errorLog() const { return log_; }

    /** Number of lines currently remapped to spares. */
    std::size_t retiredLineCount() const { return remap_.size(); }

    // ----- RasPolicy -------------------------------------------------
    Addr resolve(Addr line) const override;
    CorrectedDirective onCorrected(Addr line, Cycle now) override;
    bool onUncorrectable(Addr line, Cycle now, unsigned attempt) override;
    void onPoisoned(Addr line) override;
    Addr retireLine(Addr line) override;

  private:
    RasConfig config_;
    ErrorLog log_;
    RasStats stats_;
    std::unordered_map<Addr, Addr> remap_;
    unsigned sparesUsed_ = 0;
};

} // namespace sam

#endif // SAM_FAULTS_RAS_ENGINE_HH
