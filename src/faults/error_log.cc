#include "src/faults/error_log.hh"

#include <algorithm>

namespace sam {

double
ErrorLog::leaked(const Bucket &b, Cycle now) const
{
    if (now <= b.last || window_ == 0)
        return b.level;
    const double dt = static_cast<double>(now - b.last);
    const double leak = dt * threshold_ / static_cast<double>(window_);
    return b.level > leak ? b.level - leak : 0.0;
}

bool
ErrorLog::record(Addr line, Cycle now, bool corrected)
{
    ++total_;
    if (events_.size() < kMaxEvents)
        events_.push_back(Event{line, now, corrected});

    Bucket &b = buckets_[line];
    b.level = leaked(b, now) + 1.0;
    b.last = std::max(b.last, now);
    if (!b.permanent && b.level > threshold_) {
        b.permanent = true;
        return true;
    }
    return false;
}

bool
ErrorLog::isPermanent(Addr line) const
{
    auto it = buckets_.find(line);
    return it != buckets_.end() && it->second.permanent;
}

double
ErrorLog::bucketLevel(Addr line, Cycle now) const
{
    auto it = buckets_.find(line);
    return it != buckets_.end() ? leaked(it->second, now) : 0.0;
}

} // namespace sam
