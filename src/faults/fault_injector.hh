/**
 * @file
 * Live fault injector attached to the simulated rank. Driven by the
 * phase-1 core clock and a seeded RNG, it applies fault models to the
 * ECC-encoded BackingStore blobs *mid-run*:
 *
 *  - Transient: stored single-bit flips at a configurable FIT-style
 *    rate (expected flips per million bus cycles across the rank),
 *    landing on uniformly random stored lines;
 *  - StuckAt:   an intermittent stuck-at pin -- each read has a
 *    configurable probability of a few flipped bits within one chip's
 *    contribution (bus fault, not stored, so a re-read clears it);
 *  - Chipkill:  a permanent whole-chip kill at cycle T -- from then on
 *    every read sees that chip's contribution inverted.
 */

#ifndef SAM_FAULTS_FAULT_INJECTOR_HH
#define SAM_FAULTS_FAULT_INJECTOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/random.hh"
#include "src/common/stats.hh"
#include "src/common/types.hh"
#include "src/dram/ras_hooks.hh"

namespace sam {

enum class FaultModel { None, Transient, StuckAt, Chipkill };

std::string faultModelName(FaultModel model);
FaultModel parseFaultModel(const std::string &name);

/** Configuration of the live fault source. */
struct FaultConfig
{
    FaultModel model = FaultModel::None;

    /** Transient: expected stored bit flips per million cycles. */
    double fitPerMcycle = 10.0;

    /** StuckAt: affected chip, per-read fault probability, bits. */
    unsigned stuckChip = 3;
    double stuckProbability = 0.05;
    unsigned stuckBits = 2;

    /** Chipkill: cycle at which the chip dies, and which chip. */
    Cycle chipkillAt = 0;
    unsigned chipkillChip = 5;

    std::uint64_t seed = 0xFA17;
};

/** Injection counters. */
struct FaultStats
{
    Counter storedFlips;  ///< Transient bits flipped in the store.
    Counter busFaults;    ///< Per-read (in-flight) corruptions.
    Counter chipKills;    ///< Whole-chip kill events (0 or 1).

    void registerIn(StatGroup &group) const;
};

class FaultInjector final : public FaultInjectionHook
{
  public:
    explicit FaultInjector(const FaultConfig &config);

    const FaultConfig &config() const { return config_; }
    const FaultStats &stats() const { return stats_; }

    /** Whether the configured chipkill has fired yet. */
    bool chipkillFired() const { return chipkillFired_; }

    // ----- FaultInjectionHook ---------------------------------------
    void tick(Cycle now, BackingStore &store,
              const EccEngine &ecc) override;
    bool beforeDecode(Addr line, std::vector<std::uint8_t> &blob,
                      const EccEngine &ecc) override;

    /**
     * Deterministic test hook: flip the given absolute blob bits on
     * each of the next `reads` read attempts (a transient bus fault a
     * retry can clear).
     */
    void armBusFault(std::vector<std::size_t> bits, unsigned reads);

  private:
    FaultConfig config_;
    Rng rng_;
    FaultStats stats_;

    Cycle lastTick_ = 0;
    double flipBudget_ = 0.0;   ///< Fractional pending transient flips.
    bool chipkillFired_ = false;

    std::vector<std::size_t> armedBits_;
    unsigned armedReads_ = 0;
};

} // namespace sam

#endif // SAM_FAULTS_FAULT_INJECTOR_HH
