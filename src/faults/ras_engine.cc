#include "src/faults/ras_engine.hh"

namespace sam {

void
RasStats::registerIn(StatGroup &group) const
{
    group.addCounter("correctedErrors", correctedErrors,
                     "corrected-error events");
    group.addCounter("uncorrectableErrors", uncorrectableErrors,
                     "accesses that decoded uncorrectable");
    group.addCounter("scrubWritebacks", scrubWritebacks,
                     "corrected lines written back");
    group.addCounter("scrubsSuppressed", scrubsSuppressed,
                     "scrubs skipped on permanent-classified lines");
    group.addCounter("retriesAttempted", retriesAttempted,
                     "uncorrectable re-read attempts");
    group.addCounter("retriesExhausted", retriesExhausted,
                     "retry budgets exhausted");
    group.addCounter("poisonedReads", poisonedReads,
                     "reads returned poisoned");
    group.addCounter("linesRetired", linesRetired,
                     "lines remapped to spares");
    group.addCounter("spareExhausted", spareExhausted,
                     "retirements denied for lack of spares");
}

RasEngine::RasEngine(const RasConfig &config)
    : config_(config),
      log_(config.bucketThreshold, config.bucketWindow)
{
}

Addr
RasEngine::resolve(Addr line) const
{
    if (remap_.empty())
        return line;
    auto it = remap_.find(line);
    return it != remap_.end() ? it->second : line;
}

RasPolicy::CorrectedDirective
RasEngine::onCorrected(Addr line, Cycle now)
{
    ++stats_.correctedErrors;
    const bool newly_permanent = log_.record(line, now, true);
    CorrectedDirective d;
    d.retire = newly_permanent;
    if (config_.scrubEnabled) {
        if (log_.isPermanent(line) && !newly_permanent) {
            // A dead cell re-corrupts immediately; rewriting it would
            // just burn write bandwidth forever.
            ++stats_.scrubsSuppressed;
        } else {
            d.scrub = true;
            ++stats_.scrubWritebacks;
        }
    }
    return d;
}

bool
RasEngine::onUncorrectable(Addr line, Cycle now, unsigned attempt)
{
    if (attempt == 0) {
        ++stats_.uncorrectableErrors;
        log_.record(line, now, false);
    }
    if (attempt < config_.maxRetries) {
        ++stats_.retriesAttempted;
        return true;
    }
    ++stats_.retriesExhausted;
    return false;
}

void
RasEngine::onPoisoned(Addr line)
{
    (void)line;
    ++stats_.poisonedReads;
}

Addr
RasEngine::retireLine(Addr line)
{
    auto it = remap_.find(line);
    if (it != remap_.end())
        return it->second;
    if (sparesUsed_ >= config_.maxSpareLines) {
        ++stats_.spareExhausted;
        return line;
    }
    const Addr spare =
        config_.spareBase + Addr{sparesUsed_} * kCachelineBytes;
    ++sparesUsed_;
    remap_.emplace(line, spare);
    ++stats_.linesRetired;
    return spare;
}

} // namespace sam
