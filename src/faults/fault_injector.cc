#include "src/faults/fault_injector.hh"

#include <utility>

#include "src/common/logging.hh"
#include "src/dram/backing_store.hh"
#include "src/ecc/ecc_engine.hh"

namespace sam {

std::string
faultModelName(FaultModel model)
{
    switch (model) {
      case FaultModel::None:      return "none";
      case FaultModel::Transient: return "transient";
      case FaultModel::StuckAt:   return "stuckat";
      case FaultModel::Chipkill:  return "chipkill";
    }
    panic("unknown FaultModel");
}

FaultModel
parseFaultModel(const std::string &name)
{
    for (FaultModel m : {FaultModel::None, FaultModel::Transient,
                         FaultModel::StuckAt, FaultModel::Chipkill}) {
        if (faultModelName(m) == name)
            return m;
    }
    fatal("unknown fault model '", name,
          "' (none, transient, stuckat, chipkill)");
}

void
FaultStats::registerIn(StatGroup &group) const
{
    group.addCounter("storedFlips", storedFlips,
                     "transient bits flipped in stored blobs");
    group.addCounter("busFaults", busFaults,
                     "in-flight read corruptions (bus/pin)");
    group.addCounter("chipKills", chipKills, "whole-chip kill events");
}

FaultInjector::FaultInjector(const FaultConfig &config)
    : config_(config), rng_(config.seed)
{
}

void
FaultInjector::tick(Cycle now, BackingStore &store, const EccEngine &ecc)
{
    if (now < lastTick_) {
        // A new run rewound the phase-1 clock; sticky state (a fired
        // chipkill, planted store faults) persists across runs.
        lastTick_ = now;
        return;
    }
    const Cycle dt = now - lastTick_;
    lastTick_ = now;

    switch (config_.model) {
      case FaultModel::None:
      case FaultModel::StuckAt:
        break;

      case FaultModel::Transient: {
        flipBudget_ += static_cast<double>(dt) *
                       config_.fitPerMcycle / 1e6;
        while (flipBudget_ >= 1.0 && store.lineCount() > 0) {
            flipBudget_ -= 1.0;
            const Addr victim = store.sampleLine(rng_);
            std::vector<std::uint8_t> mask(store.blobBytes(), 0);
            const std::size_t bit =
                rng_.below(std::uint64_t{store.blobBytes()} * 8);
            mask[bit / 8] |= static_cast<std::uint8_t>(1u << (bit % 8));
            store.corruptLine(victim, mask);
            ++stats_.storedFlips;
        }
        break;
      }

      case FaultModel::Chipkill:
        if (!chipkillFired_ && now >= config_.chipkillAt) {
            sam_assert(config_.chipkillChip < ecc.numChips(),
                       "chipkill chip out of range");
            chipkillFired_ = true;
            ++stats_.chipKills;
        }
        break;
    }
}

bool
FaultInjector::beforeDecode(Addr line, std::vector<std::uint8_t> &blob,
                            const EccEngine &ecc)
{
    (void)line;
    bool touched = false;
    if (armedReads_ > 0) {
        for (std::size_t bit : armedBits_)
            EccEngine::flipBit(blob, bit);
        --armedReads_;
        ++stats_.busFaults;
        touched = true;
    }

    switch (config_.model) {
      case FaultModel::None:
      case FaultModel::Transient:
        break;

      case FaultModel::StuckAt:
        if (rng_.chance(config_.stuckProbability)) {
            ecc.corruptChipBits(blob, config_.stuckChip,
                                config_.stuckBits, rng_);
            ++stats_.busFaults;
            touched = true;
        }
        break;

      case FaultModel::Chipkill:
        if (chipkillFired_) {
            ecc.corruptChip(blob, config_.chipkillChip);
            touched = true;
        }
        break;
    }
    return touched;
}

void
FaultInjector::armBusFault(std::vector<std::size_t> bits, unsigned reads)
{
    armedBits_ = std::move(bits);
    armedReads_ = reads;
}

} // namespace sam
