#include "src/core/session.hh"

#include <cmath>

#include "src/common/logging.hh"

namespace sam {

Session::Session(SimConfig base, std::shared_ptr<TableCache> tables)
    : base_(std::move(base)), tables_(std::move(tables))
{
    if (!tables_)
        tables_ = std::make_shared<TableCache>();
}

System &
Session::system(DesignKind design)
{
    auto it = systems_.find(design);
    if (it == systems_.end()) {
        SimConfig cfg = base_;
        cfg.design = design;
        it = systems_.emplace(
            design, std::make_unique<System>(cfg, tables_)).first;
    }
    return *it->second;
}

RunStats
Session::run(DesignKind design, const Query &query)
{
    return system(design).runQuery(query);
}

Comparison
Session::compare(DesignKind design, const Query &query)
{
    Comparison cmp;
    cmp.design = run(design, query);
    cmp.baseline = run(DesignKind::Baseline, query);
    sam_assert(cmp.design.cycles > 0 && cmp.baseline.cycles > 0,
               "query produced no work");
    cmp.speedup = static_cast<double>(cmp.baseline.cycles) /
                  static_cast<double>(cmp.design.cycles);
    const double e_design = cmp.design.power.totalEnergyPj();
    const double e_base = cmp.baseline.power.totalEnergyPj();
    cmp.energyEfficiency = e_design > 0 ? e_base / e_design : 0.0;
    return cmp;
}

void
Session::checkResult(const Query &query, const RunStats &stats) const
{
    const QueryResult expect = referenceResult(
        query, TableSchema{"Ta", base_.taFields, base_.taRecords},
        TableSchema{"Tb", base_.tbFields, base_.tbRecords});
    sam_assert(stats.result == expect,
               "functional result mismatch on ", query.name,
               ": rows ", stats.result.rows, " vs ", expect.rows,
               ", agg ", stats.result.aggregate, " vs ",
               expect.aggregate, ", checksum ", stats.result.checksum,
               " vs ", expect.checksum);
}

double
geometricMean(const std::vector<double> &values)
{
    sam_assert(!values.empty(), "geometric mean of nothing");
    double log_sum = 0.0;
    for (double v : values) {
        sam_assert(v > 0.0, "geometric mean needs positive values");
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

} // namespace sam
