/**
 * @file
 * High-level public API of the SAM library.
 *
 * A Session owns one simulated system per design and provides
 * one-call benchmarking: run a query on a design, get cycles, power,
 * energy, ECC events, and the functional result; or compare a design
 * against the row-store baseline to obtain the paper's speedup metric.
 *
 * Typical use (see examples/quickstart.cpp):
 *
 *   sam::Session session;                       // default paper config
 *   auto q = sam::benchmarkQQueries()[0];       // Q1
 *   auto r = session.compare(sam::DesignKind::SamEn, q);
 *   std::cout << r.speedup << "\n";
 */

#ifndef SAM_CORE_SESSION_HH
#define SAM_CORE_SESSION_HH

#include <map>
#include <memory>

#include "src/imdb/query.hh"
#include "src/sim/system.hh"

namespace sam {

/** Result of comparing a design against the row-store baseline. */
struct Comparison
{
    RunStats design;
    RunStats baseline;
    /** Paper Figure 12 metric: baseline cycles / design cycles. */
    double speedup = 0.0;
    /** Paper Figure 13 metric: baseline energy / design energy. */
    double energyEfficiency = 0.0;
};

/**
 * Session: a cache of simulated systems sharing one benchmark
 * configuration. Systems (and their materialized tables) are built
 * lazily per design and reused across queries.
 */
class Session
{
  public:
    /**
     * `base` carries everything except the design kind. `tables` is
     * the materialized-table cache shared by the session's systems; a
     * private cache is created when none is given. A campaign passes
     * one cache to many sessions so each distinct table pair is
     * ECC-encoded exactly once per process.
     */
    explicit Session(SimConfig base = {},
                     std::shared_ptr<TableCache> tables = nullptr);

    const SimConfig &baseConfig() const { return base_; }

    /** The materialized-table cache backing this session's systems. */
    const std::shared_ptr<TableCache> &tableCache() const
    {
        return tables_;
    }

    /** The system simulating `design` (built on first use). */
    System &system(DesignKind design);

    /** Run one query on one design. */
    RunStats run(DesignKind design, const Query &query);

    /** Run on `design` and on the baseline; compute paper metrics. */
    Comparison compare(DesignKind design, const Query &query);

    /**
     * Verify a run's functional result against the pure reference
     * executor; panics on mismatch (used by tests and examples).
     */
    void checkResult(const Query &query, const RunStats &stats) const;

  private:
    SimConfig base_;
    std::shared_ptr<TableCache> tables_;
    std::map<DesignKind, std::unique_ptr<System>> systems_;
};

/** Geometric mean helper for the figure benches. */
double geometricMean(const std::vector<double> &values);

} // namespace sam

#endif // SAM_CORE_SESSION_HH
