#include "src/imdb/executor.hh"

#include <array>
#include <cmath>
#include <map>
#include <set>
#include <unordered_map>

#include "src/common/logging.hh"

namespace sam {

namespace {

std::uint64_t
extract64(const std::uint8_t *bytes, unsigned offset)
{
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | bytes[offset + i];
    return v;
}

void
insert64(std::vector<std::uint8_t> &bytes, unsigned offset,
         std::uint64_t v)
{
    for (unsigned i = 0; i < 8; ++i) {
        bytes[offset + i] = static_cast<std::uint8_t>(v & 0xff);
        v >>= 8;
    }
}

/** Value written by UPDATE queries. */
std::uint64_t
updatedValue(std::uint64_t rec, unsigned field)
{
    return (fieldValue(rec, field) + 7) % 1000;
}

/** Value written by INSERT queries. */
std::uint64_t
insertedValue(std::uint64_t rec, unsigned field)
{
    return (fieldValue(rec, field) * 3 + 1) % 1000;
}

/**
 * Morsel-driven work partitioning (row-granular round-robin): each core
 * owns every num_cores-th morsel, where a morsel is the group span of
 * one DRAM row. Cores therefore work in *different* banks at any
 * moment instead of queueing behind each other's row conflicts --
 * standard practice in parallel scan executors.
 */
class Partition
{
  public:
    /**
     * @param row_major Iterate records in physical row order (used by
     *        row-preferred queries): on the VerticalGroup layout the
     *        record order and the row order differ, and a SELECT * scan
     *        wants to drain each open row before switching.
     */
    Partition(const Table &table, std::uint64_t record_limit,
              unsigned core, unsigned num_cores, bool row_major = false)
        : table_(table), core_(core), numCores_(num_cores),
          rowMajor_(row_major &&
                    table.layout() == LayoutKind::VerticalGroup)
    {
        const unsigned g = table.gather();
        records_ = table.schema().numRecords;
        if (record_limit != 0)
            records_ = std::min(records_, record_limit);
        groups_ = (records_ + g - 1) / g;
        morselGroups_ = table.morselGroups();
        // Small tables: split morsels so every core gets work (at the
        // cost of sharing rows/banks, which only tiny scans notice).
        while (morselGroups_ > 1 &&
               (groups_ + morselGroups_ - 1) / morselGroups_ <
                   2 * numCores_) {
            morselGroups_ = (morselGroups_ + 1) / 2;
        }
    }

    /** Visit every owned morsel: fn(rec_lo, rec_hi). */
    template <typename F>
    void
    forEachMorsel(F &&fn) const
    {
        const unsigned g = table_.gather();
        const std::uint64_t morsels =
            (groups_ + morselGroups_ - 1) / morselGroups_;
        for (std::uint64_t m = core_; m < morsels; m += numCores_) {
            const std::uint64_t rec_lo = m * morselGroups_ * g;
            const std::uint64_t rec_hi = std::min<std::uint64_t>(
                records_, (m + 1) * morselGroups_ * g);
            if (rec_lo < rec_hi)
                fn(rec_lo, rec_hi);
        }
    }

    /** Visit every owned group in order: fn(group, rec_lo, rec_hi). */
    template <typename F>
    void
    forEachGroup(F &&fn) const
    {
        const unsigned g = table_.gather();
        forEachMorsel([&](std::uint64_t rec_lo, std::uint64_t rec_hi) {
            for (std::uint64_t group = rec_lo / g;
                 group * g < rec_hi; ++group) {
                fn(group, group * g,
                   std::min<std::uint64_t>(rec_hi, (group + 1) * g));
            }
        });
    }

    /** Visit every owned record. */
    template <typename F>
    void
    forEachRecord(F &&fn) const
    {
        if (!rowMajor_) {
            forEachGroup([&](std::uint64_t, std::uint64_t lo,
                             std::uint64_t hi) {
                for (std::uint64_t rec = lo; rec < hi; ++rec)
                    fn(rec);
            });
            return;
        }

        // Physical row order on the VerticalGroup layout: one morsel is
        // a (bank, band) region; within it, visit each DRAM row's
        // records (one per vertical run sharing the row) before moving
        // to the next row.
        const unsigned span = table_.verticalSpan();
        const unsigned banks = table_.verticalBanks();
        const std::uint64_t slots_per_row =
            table_.rowBytes() / table_.schema().recordBytes();
        const std::uint64_t runs = (records_ + span - 1) / span;
        const std::uint64_t bands =
            (runs + std::uint64_t{banks} * slots_per_row - 1) /
            (std::uint64_t{banks} * slots_per_row);
        const std::uint64_t morsels = bands * banks;
        for (std::uint64_t m = core_; m < morsels; m += numCores_) {
            const std::uint64_t bank = m % banks;
            const std::uint64_t band = m / banks;
            for (unsigned w = 0; w < span; ++w) {
                for (std::uint64_t k = 0; k < slots_per_row; ++k) {
                    const std::uint64_t run =
                        (band * slots_per_row + k) * banks + bank;
                    if (run >= runs)
                        break;
                    const std::uint64_t rec =
                        run * span + w;
                    if (rec < records_)
                        fn(rec);
                }
            }
        }
    }

  private:
    const Table &table_;
    unsigned core_;
    unsigned numCores_;
    bool rowMajor_;
    std::uint64_t records_ = 0;
    std::uint64_t groups_ = 0;
    std::uint64_t morselGroups_ = 1;
};

/** One core's execution context. */
class CoreExec
{
  public:
    CoreExec(ExecEnv &env, unsigned core)
        : env_(env), port_(*env.ports[core])
    {
    }

    /**
     * Read one field. Sequential scans on stride-capable configs use
     * sload and hold the gathered chunk in "registers" (the per-field
     * line cache), so the G values of a group cost one sload. Random
     * accesses (`sequential` false) always use regular loads.
     */
    std::uint64_t
    readField(Table &t, std::uint64_t rec, unsigned f,
              bool sequential = true)
    {
        if (env_.useStride && sequential && t.strideUsable()) {
            const std::uint64_t group = rec / t.gather();
            LineCache &lc = lineCacheFor(t, f);
            if (lc.group != group || !lc.valid) {
                t.gatherPlanInto(group, f, env_.strideUnit, lc.plan);
                port_.strideLoadInto(lc.plan, lc.line.data());
                lc.poisonBits = port_.strideLoadPoisonBits();
                lc.group = group;
                lc.valid = true;
            }
            const unsigned chunk =
                static_cast<unsigned>(rec % t.gather());
            lastPoisoned_ = (lc.poisonBits >> chunk) & 1u;
            const unsigned off =
                chunk * env_.strideUnit +
                (f * TableSchema::kFieldBytes) % env_.strideUnit;
            return extract64(lc.line.data(), off);
        }
        const std::uint64_t v = port_.load(t.fieldAddr(rec, f), 8);
        lastPoisoned_ = port_.lastAccessPoisoned();
        return v;
    }

    /** Whether the value returned by the last readField was poisoned. */
    bool lastPoisoned() const { return lastPoisoned_; }

    /** Per-chunk poison bits of the last strideUpdateGroup read. */
    std::uint32_t lastStridePoisonBits() const
    {
        return lastStridePoison_;
    }

    /**
     * Group-wise strided update: patch the gathered chunk for the
     * qualifying records and sstore it back.
     */
    void
    strideUpdateGroup(Table &t, std::uint64_t group, unsigned f,
                      const std::vector<std::uint64_t> &recs)
    {
        GatherPlan plan = t.gatherPlan(group, f, env_.strideUnit);
        std::vector<std::uint8_t> line = port_.strideLoad(plan);
        lastStridePoison_ = port_.strideLoadPoisonBits();
        for (std::uint64_t rec : recs) {
            const unsigned off =
                static_cast<unsigned>(rec % t.gather()) *
                    env_.strideUnit +
                (f * TableSchema::kFieldBytes) % env_.strideUnit;
            insert64(line, off, updatedValue(rec, f));
        }
        port_.strideStore(plan, line);
        lineCache_.clear(); // written chunks invalidate register copies
    }

    MemPort &port() { return port_; }

  private:
    struct LineCache
    {
        GatherPlan plan;
        std::array<std::uint8_t, kCachelineBytes> line;
        std::uint64_t group = ~std::uint64_t{0};
        bool valid = false;
        /** Poison bits of the gathered chunks (bit i = chunk i). */
        std::uint32_t poisonBits = 0;
    };

    /** One register per (table, field) a query touches: a handful of
     *  entries, so a linear scan beats a tree per field read. */
    struct LineCacheEntry
    {
        const Table *table;
        unsigned field;
        LineCache lc;
    };

    LineCache &
    lineCacheFor(const Table &t, unsigned f)
    {
        for (auto &e : lineCache_) {
            if (e.table == &t && e.field == f)
                return e.lc;
        }
        lineCache_.push_back({&t, f, {}});
        return lineCache_.back().lc;
    }

    ExecEnv &env_;
    MemPort &port_;
    std::vector<LineCacheEntry> lineCache_;
    bool lastPoisoned_ = false;
    std::uint32_t lastStridePoison_ = 0;
};

/** Predicate evaluation from a value actually loaded from memory. */
bool
passes(std::uint64_t loaded_value, double selectivity)
{
    return loaded_value < selectivityThreshold(selectivity);
}

} // namespace

PlanChoice
choosePlan(const Query &q, const TableSchema &schema, unsigned gather,
           bool has_row_fallback)
{
    const double projected_fields = static_cast<double>(
        q.kind == QueryKind::SelectStar ? schema.numFields
                                        : q.fields.size());
    const double effective_sel = q.hasPredicate ? q.selectivity : 1.0;
    const double g = gather;
    const double record_lines = std::max(
        1.0, schema.recordBytes() / double{kCachelineBytes});

    // Cost of fetching the projected fields of the qualifying records,
    // per record group, under each plan:
    //  * gathers: every field chunk of a group is fetched if *any* of
    //    its G records qualifies;
    //  * regular: each qualifying record's field lines are fetched,
    //    record-contiguously (a 64B line carries 8 fields of one
    //    record).
    const double any_qualifies =
        1.0 - std::pow(1.0 - effective_sel, g);
    const double gather_bursts = any_qualifies * projected_fields;
    const double regular_lines =
        effective_sel * g * std::min(projected_fields, record_lines);

    PlanChoice plan;
    plan.strideProject = gather_bursts <= regular_lines;

    // Whole-plan choice: a column plan (field sweeps) must beat the
    // record-major scan of the row-friendly layout, which reads the
    // predicate line plus the qualifying records.
    const double records = static_cast<double>(schema.numRecords);
    const double col_fetch = has_row_fallback
        ? std::min(gather_bursts, regular_lines)
        : gather_bursts;
    const double col_plan_bursts =
        records / g * (1.0 + col_fetch);
    const double row_plan_lines =
        records * (1.0 + effective_sel * record_lines);
    // Near-ties go to the plain record-major scan: the column plan's
    // extra machinery (mode switches, transposition) is not free.
    plan.worthColumns = col_plan_bursts < 0.9 * row_plan_lines;
    return plan;
}

QueryResult
executeQuery(const Query &q, ExecEnv &env)
{
    sam_assert(!env.ports.empty(), "no cores");
    const unsigned num_cores = static_cast<unsigned>(env.ports.size());
    QueryResult total;

    Table &primary = q.table == TableRef::Ta ? *env.ta : *env.tb;

    // Rows whose data came back RAS-poisoned. Poisoned values never
    // enter the result (no silent corruption); the rows are tallied so
    // the caller sees a degraded-but-honest answer.
    std::set<std::pair<const Table *, std::uint64_t>> poisoned_rows;
    auto note_poison = [&](const Table &t, std::uint64_t rec) {
        poisoned_rows.insert({&t, rec});
    };

    // Crude cost-based plan selection, as any engine would do:
    //
    //  * Column plans (field-major order, sload field scans) pay off
    //    when the query touches a small fraction of each record:
    //    expected bytes = (1 predicate + selectivity x projected)
    //    fields. Past ~75% of the record, a plain record-major scan
    //    of the row-friendly layout wins and the engine falls back to
    //    regular accesses -- this is the paper's "more fields
    //    projected becomes more suitable for the baseline".
    //  * Field switches mid-scan cost column-subarray designs
    //    (SAM-sub / RC-NVM) a column-to-column bank conflict, so those
    //    designs prefer field-major order whenever columns pay off.
    //  * Fetching projected fields of *sparse* qualifying records via
    //    a gather wastes the other G-1 chunks; below ~25% selectivity
    //    the engine fetches them with regular loads instead.
    const PlanChoice plan =
        choosePlan(q, primary.schema(), primary.gather());
    const bool worth_columns = plan.worthColumns;
    const bool stride_project = plan.strideProject;
    if (!worth_columns && !q.rowPreferred)
        env.useStride = false;

    const bool stride_capable =
        env.useStride && primary.strideUsable();
    const bool engine_prefers_columns =
        env.fieldMajorPreferred || stride_capable;
    // Field-major projection only pays when the projected fetches
    // themselves are column accesses (gathers or a column layout);
    // regular fetches of sparse qualifiers read a record's fields from
    // one row and want record order.
    const bool column_fetches =
        (stride_capable && stride_project) ||
        primary.layout() == LayoutKind::ColumnStore;
    const bool field_major =
        !q.rowPreferred && worth_columns && engine_prefers_columns &&
        column_fetches &&
        (q.fieldMajor || (env.fieldMajorPreferred && !q.recordMajor));

    /** Predicate sweep(s) producing a qualifying bitmap. */
    auto predicate_sweep = [&](Table &t) {
        std::vector<std::uint8_t> qual(t.schema().numRecords, 1);
        if (q.hasPredicate) {
            for (unsigned c = 0; c < num_cores; ++c) {
                CoreExec ex(env, c);
                Partition part(t, q.limit, c, num_cores,
                               q.rowPreferred);
                part.forEachRecord([&](std::uint64_t rec) {
                    ex.port().compute(env.computePerRecord);
                    const std::uint64_t v =
                        ex.readField(t, rec, q.predField);
                    if (ex.lastPoisoned()) {
                        note_poison(t, rec);
                        qual[rec] = 0;
                        return;
                    }
                    qual[rec] = passes(v, q.selectivity);
                });
            }
            env.barrier();
        }
        if (q.hasPredicate2) {
            for (unsigned c = 0; c < num_cores; ++c) {
                CoreExec ex(env, c);
                Partition part(t, q.limit, c, num_cores);
                part.forEachRecord([&](std::uint64_t rec) {
                    if (!qual[rec])
                        return;
                    const std::uint64_t v =
                        ex.readField(t, rec, q.predField2);
                    if (ex.lastPoisoned()) {
                        note_poison(t, rec);
                        qual[rec] = 0;
                        return;
                    }
                    qual[rec] = passes(v, q.selectivity2);
                });
            }
            env.barrier();
        }
        if (q.limit != 0) {
            for (std::uint64_t rec = q.limit;
                 rec < t.schema().numRecords; ++rec) {
                qual[rec] = 0;
            }
        }
        return qual;
    };

    switch (q.kind) {
      case QueryKind::Select:
      case QueryKind::SelectStar: {
        std::vector<unsigned> fields = q.fields;
        if (q.kind == QueryKind::SelectStar) {
            fields.clear();
            for (unsigned f = 0; f < primary.schema().numFields; ++f)
                fields.push_back(f);
        }
        if (!field_major) {
            for (unsigned c = 0; c < num_cores; ++c) {
                CoreExec ex(env, c);
                Partition part(primary, q.limit, c, num_cores,
                               q.rowPreferred);
                part.forEachRecord([&](std::uint64_t rec) {
                    ex.port().compute(env.computePerRecord);
                    bool ok = true;
                    if (q.hasPredicate) {
                        const std::uint64_t v =
                            ex.readField(primary, rec, q.predField);
                        if (ex.lastPoisoned()) {
                            note_poison(primary, rec);
                            return;
                        }
                        ok = passes(v, q.selectivity);
                    }
                    if (ok && q.hasPredicate2) {
                        const std::uint64_t v =
                            ex.readField(primary, rec, q.predField2);
                        if (ex.lastPoisoned()) {
                            note_poison(primary, rec);
                            return;
                        }
                        ok = passes(v, q.selectivity2);
                    }
                    if (!ok)
                        return;
                    ++total.rows;
                    for (unsigned f : fields) {
                        const std::uint64_t v = ex.readField(
                            primary, rec, f, stride_project);
                        if (ex.lastPoisoned())
                            note_poison(primary, rec);
                        else
                            total.checksum += v;
                        ex.port().compute(env.computePerValue);
                    }
                });
            }
            env.barrier();
        } else {
            const auto qual = predicate_sweep(primary);
            for (std::uint8_t v : qual)
                total.rows += v;
            for (unsigned f : fields) {
                for (unsigned c = 0; c < num_cores; ++c) {
                    CoreExec ex(env, c);
                    Partition part(primary, q.limit, c, num_cores);
                    part.forEachRecord([&](std::uint64_t rec) {
                        if (!qual[rec])
                            return;
                        const std::uint64_t v = ex.readField(
                            primary, rec, f, stride_project);
                        if (ex.lastPoisoned())
                            note_poison(primary, rec);
                        else
                            total.checksum += v;
                        ex.port().compute(env.computePerValue);
                    });
                }
                env.barrier();
            }
        }
        break;
      }

      case QueryKind::Aggregate: {
        if (!field_major) {
            // Record-major (the Figure 15 arithmetic query, Q3-Q6),
            // executed morsel-vectorised: within each morsel the
            // engine sweeps one field at a time into vectors and then
            // combines per record -- how block-at-a-time executors
            // evaluate per-record expressions. Field switches happen
            // once per field per *morsel*, not per record (the global
            // field-major plan of the aggregate query switches only
            // once per field per core).
            // Vector blocks are sized so one value-vector per
            // projected column fits in L1 (32KB): high projectivity
            // forces smaller blocks, i.e.\ more frequent field
            // switches -- which is exactly what stings the
            // column-subarray designs on this query (Section 6.2).
            // Row-friendly access (no columns in play) reads each
            // record's fields together instead: block size one group.
            const bool block_sweeps =
                (stride_capable && stride_project) ||
                primary.layout() == LayoutKind::ColumnStore;
            const std::uint64_t block_recs = !block_sweeps
                ? primary.gather()
                : std::max<std::uint64_t>(
                      primary.gather(),
                      (32768 / TableSchema::kFieldBytes) /
                          (q.fields.size() + 1));
            for (unsigned c = 0; c < num_cores; ++c) {
                CoreExec ex(env, c);
                Partition part(primary, 0, c, num_cores);
                part.forEachMorsel([&](std::uint64_t mlo,
                                       std::uint64_t mhi) {
                    for (std::uint64_t lo = mlo; lo < mhi;
                         lo += block_recs) {
                        const std::uint64_t hi =
                            std::min(mhi, lo + block_recs);
                        std::vector<std::uint8_t> qual(hi - lo, 1);
                        if (q.hasPredicate) {
                            for (std::uint64_t rec = lo; rec < hi;
                                 ++rec) {
                                ex.port().compute(env.computePerRecord);
                                const std::uint64_t v = ex.readField(
                                    primary, rec, q.predField);
                                if (ex.lastPoisoned()) {
                                    note_poison(primary, rec);
                                    qual[rec - lo] = 0;
                                    continue;
                                }
                                qual[rec - lo] =
                                    passes(v, q.selectivity);
                            }
                        }
                        if (block_sweeps) {
                            for (unsigned f : q.fields) {
                                for (std::uint64_t rec = lo; rec < hi;
                                     ++rec) {
                                    if (!qual[rec - lo])
                                        continue;
                                    const std::uint64_t v =
                                        ex.readField(primary, rec, f,
                                                     stride_project);
                                    if (ex.lastPoisoned())
                                        note_poison(primary, rec);
                                    else
                                        total.aggregate += v;
                                    ex.port().compute(
                                        env.computePerValue);
                                }
                            }
                        } else {
                            for (std::uint64_t rec = lo; rec < hi;
                                 ++rec) {
                                if (!qual[rec - lo])
                                    continue;
                                for (unsigned f : q.fields) {
                                    const std::uint64_t v =
                                        ex.readField(primary, rec, f,
                                                     stride_project);
                                    if (ex.lastPoisoned())
                                        note_poison(primary, rec);
                                    else
                                        total.aggregate += v;
                                    ex.port().compute(
                                        env.computePerValue);
                                }
                            }
                        }
                        for (std::uint64_t rec = lo; rec < hi; ++rec)
                            total.rows += qual[rec - lo];
                    }
                });
            }
            env.barrier();
        } else {
            // Field-major (the Figure 15 aggregate query): predicate
            // sweep first, then one full sweep per projected field.
            const auto qual = predicate_sweep(primary);
            for (std::uint8_t v : qual)
                total.rows += v;
            for (unsigned f : q.fields) {
                for (unsigned c = 0; c < num_cores; ++c) {
                    CoreExec ex(env, c);
                    Partition part(primary, 0, c, num_cores);
                    part.forEachRecord([&](std::uint64_t rec) {
                        if (!qual[rec])
                            return;
                        const std::uint64_t v = ex.readField(
                            primary, rec, f, stride_project);
                        if (ex.lastPoisoned())
                            note_poison(primary, rec);
                        else
                            total.aggregate += v;
                        ex.port().compute(env.computePerValue);
                    });
                }
                env.barrier();
            }
        }
        break;
      }

      case QueryKind::Update: {
        const bool stride_write =
            env.useStride && primary.strideUsable();
        // Predicate sweep, then one write sweep per updated field
        // (field-major keeps column-subarray designs from ping-ponging
        // between the predicate column and the written columns).
        const auto qual = predicate_sweep(primary);
        for (std::uint8_t v : qual)
            total.rows += v;
        for (unsigned f : q.fields) {
            for (unsigned c = 0; c < num_cores; ++c) {
                CoreExec ex(env, c);
                Partition part(primary, 0, c, num_cores);
                part.forEachGroup([&](std::uint64_t group,
                                      std::uint64_t lo,
                                      std::uint64_t hi) {
                    std::vector<std::uint64_t> qualifying;
                    for (std::uint64_t rec = lo; rec < hi; ++rec) {
                        if (qual[rec])
                            qualifying.push_back(rec);
                    }
                    if (qualifying.empty())
                        return;
                    if (stride_write) {
                        ex.strideUpdateGroup(primary, group, f,
                                             qualifying);
                        // Chunks that came back poisoned and were not
                        // overwritten went back to memory unrepaired:
                        // flag their rows rather than pretend the
                        // read-modify-write healed them.
                        const std::uint32_t pb =
                            ex.lastStridePoisonBits();
                        for (std::uint64_t rec = lo;
                             pb != 0 && rec < hi; ++rec) {
                            if ((pb >> (rec - lo)) & 1u)
                                note_poison(primary, rec);
                        }
                    } else {
                        for (std::uint64_t rec : qualifying) {
                            ex.port().store(primary.fieldAddr(rec, f),
                                            updatedValue(rec, f), 8);
                        }
                    }
                    for (std::uint64_t rec : qualifying) {
                        total.checksum += updatedValue(rec, f);
                        ex.port().compute(env.computePerValue);
                    }
                });
            }
            env.barrier();
        }
        break;
      }

      case QueryKind::Insert: {
        std::uint64_t count = q.insertCount != 0
            ? q.insertCount
            : primary.schema().numRecords / 8;
        count = std::min(count, primary.schema().numRecords);
        for (unsigned c = 0; c < num_cores; ++c) {
            CoreExec ex(env, c);
            Partition part(primary, count, c, num_cores,
                           q.rowPreferred);
            part.forEachRecord([&](std::uint64_t rec) {
                ex.port().compute(env.computePerRecord);
                ++total.rows;
                for (unsigned f = 0;
                     f < primary.schema().numFields; ++f) {
                    const std::uint64_t v = insertedValue(rec, f);
                    ex.port().storeStream(primary.fieldAddr(rec, f), v,
                                          8);
                    total.checksum += v;
                }
            });
        }
        env.barrier();
        break;
      }

      case QueryKind::Join: {
        // Build on Tb (hash the join field of selective values), probe
        // with Ta. Deterministic: the map keeps the minimum record id.
        std::unordered_map<std::uint64_t, std::uint64_t> build;
        const std::uint64_t jthresh =
            selectivityThreshold(q.joinSelectivity);
        for (unsigned c = 0; c < num_cores; ++c) {
            CoreExec ex(env, c);
            Partition part(*env.tb, 0, c, num_cores);
            part.forEachRecord([&](std::uint64_t rec) {
                ex.port().compute(env.computePerRecord);
                const std::uint64_t v =
                    ex.readField(*env.tb, rec, q.joinField);
                if (ex.lastPoisoned()) {
                    note_poison(*env.tb, rec);
                    return;
                }
                if (v < jthresh) {
                    auto it = build.find(v);
                    if (it == build.end() || rec < it->second)
                        build[v] = rec;
                }
            });
        }
        env.barrier();
        if (!field_major) {
            for (unsigned c = 0; c < num_cores; ++c) {
                CoreExec ex(env, c);
                Partition part(*env.ta, 0, c, num_cores);
                part.forEachRecord([&](std::uint64_t rec) {
                    ex.port().compute(env.computePerRecord);
                    const std::uint64_t v =
                        ex.readField(*env.ta, rec, q.joinField);
                    if (ex.lastPoisoned()) {
                        note_poison(*env.ta, rec);
                        return;
                    }
                    auto it = build.find(v);
                    if (it == build.end())
                        return;
                    const std::uint64_t tb_rec = it->second;
                    if (q.joinExtraFilter) {
                        const std::uint64_t f1a =
                            ex.readField(*env.ta, rec, 1);
                        if (ex.lastPoisoned()) {
                            note_poison(*env.ta, rec);
                            return;
                        }
                        const std::uint64_t f1b =
                            ex.readField(*env.tb, tb_rec, 1, false);
                        if (ex.lastPoisoned()) {
                            note_poison(*env.tb, tb_rec);
                            return;
                        }
                        if (!(f1a > f1b))
                            return;
                    }
                    const std::uint64_t va =
                        ex.readField(*env.ta, rec, q.fields[0]);
                    const bool pa = ex.lastPoisoned();
                    const std::uint64_t vb =
                        ex.readField(*env.tb, tb_rec, q.fields[1],
                                     false);
                    const bool pb = ex.lastPoisoned();
                    if (pa)
                        note_poison(*env.ta, rec);
                    if (pb)
                        note_poison(*env.tb, tb_rec);
                    if (pa || pb)
                        return;
                    ++total.rows;
                    total.checksum += va + vb;
                    ex.port().compute(env.computePerValue);
                });
            }
            env.barrier();
        } else {
            // Late materialization: probe the join column alone, then
            // sweep each output column for the matches -- avoiding
            // mid-scan field switches on column-subarray designs.
            std::vector<std::pair<std::uint64_t, std::uint64_t>>
                matches[16];
            for (unsigned c = 0; c < num_cores; ++c) {
                CoreExec ex(env, c);
                Partition part(*env.ta, 0, c, num_cores);
                part.forEachRecord([&](std::uint64_t rec) {
                    ex.port().compute(env.computePerRecord);
                    const std::uint64_t v =
                        ex.readField(*env.ta, rec, q.joinField);
                    if (ex.lastPoisoned()) {
                        note_poison(*env.ta, rec);
                        return;
                    }
                    auto it = build.find(v);
                    if (it != build.end())
                        matches[c].emplace_back(rec, it->second);
                });
            }
            env.barrier();
            if (q.joinExtraFilter) {
                for (unsigned c = 0; c < num_cores; ++c) {
                    CoreExec ex(env, c);
                    std::vector<std::pair<std::uint64_t,
                                          std::uint64_t>> kept;
                    for (auto [rec, tb_rec] : matches[c]) {
                        const std::uint64_t f1a =
                            ex.readField(*env.ta, rec, 1);
                        if (ex.lastPoisoned()) {
                            note_poison(*env.ta, rec);
                            continue;
                        }
                        const std::uint64_t f1b =
                            ex.readField(*env.tb, tb_rec, 1, false);
                        if (ex.lastPoisoned()) {
                            note_poison(*env.tb, tb_rec);
                            continue;
                        }
                        if (f1a > f1b)
                            kept.emplace_back(rec, tb_rec);
                    }
                    matches[c] = std::move(kept);
                }
                env.barrier();
            }
            for (unsigned c = 0; c < num_cores; ++c) {
                CoreExec ex(env, c);
                for (auto [rec, tb_rec] : matches[c]) {
                    const std::uint64_t va =
                        ex.readField(*env.ta, rec, q.fields[0]);
                    const bool pa = ex.lastPoisoned();
                    const std::uint64_t vb =
                        ex.readField(*env.tb, tb_rec, q.fields[1],
                                     false);
                    const bool pb = ex.lastPoisoned();
                    if (pa)
                        note_poison(*env.ta, rec);
                    if (pb)
                        note_poison(*env.tb, tb_rec);
                    if (pa || pb)
                        continue;
                    ++total.rows;
                    total.checksum += va + vb;
                    ex.port().compute(env.computePerValue);
                }
            }
            env.barrier();
        }
        break;
      }
    }
    total.poisonedRows = poisoned_rows.size();
    return total;
}

QueryResult
referenceResult(const Query &q, const TableSchema &ta,
                const TableSchema &tb)
{
    QueryResult total;
    const TableSchema &t = q.table == TableRef::Ta ? ta : tb;
    std::uint64_t records = t.numRecords;
    if (q.limit != 0)
        records = std::min(records, q.limit);

    auto qualifies = [&](std::uint64_t rec) {
        if (q.hasPredicate &&
            fieldValue(rec, q.predField) >=
                selectivityThreshold(q.selectivity)) {
            return false;
        }
        if (q.hasPredicate2 &&
            fieldValue(rec, q.predField2) >=
                selectivityThreshold(q.selectivity2)) {
            return false;
        }
        return true;
    };

    switch (q.kind) {
      case QueryKind::Select:
      case QueryKind::SelectStar: {
        std::vector<unsigned> fields = q.fields;
        if (q.kind == QueryKind::SelectStar) {
            fields.clear();
            for (unsigned f = 0; f < t.numFields; ++f)
                fields.push_back(f);
        }
        for (std::uint64_t rec = 0; rec < records; ++rec) {
            if (!qualifies(rec))
                continue;
            ++total.rows;
            for (unsigned f : fields)
                total.checksum += fieldValue(rec, f);
        }
        break;
      }

      case QueryKind::Aggregate:
        for (std::uint64_t rec = 0; rec < records; ++rec) {
            if (!qualifies(rec))
                continue;
            ++total.rows;
            for (unsigned f : q.fields)
                total.aggregate += fieldValue(rec, f);
        }
        break;

      case QueryKind::Update:
        for (std::uint64_t rec = 0; rec < records; ++rec) {
            if (!qualifies(rec))
                continue;
            ++total.rows;
            for (unsigned f : q.fields)
                total.checksum += updatedValue(rec, f);
        }
        break;

      case QueryKind::Insert: {
        std::uint64_t count =
            q.insertCount != 0 ? q.insertCount : t.numRecords / 8;
        count = std::min(count, t.numRecords);
        for (std::uint64_t rec = 0; rec < count; ++rec) {
            ++total.rows;
            for (unsigned f = 0; f < t.numFields; ++f)
                total.checksum += insertedValue(rec, f);
        }
        break;
      }

      case QueryKind::Join: {
        const std::uint64_t jthresh =
            selectivityThreshold(q.joinSelectivity);
        std::unordered_map<std::uint64_t, std::uint64_t> build;
        for (std::uint64_t rec = 0; rec < tb.numRecords; ++rec) {
            const std::uint64_t v = fieldValue(rec, q.joinField);
            if (v < jthresh) {
                auto it = build.find(v);
                if (it == build.end() || rec < it->second)
                    build[v] = rec;
            }
        }
        for (std::uint64_t rec = 0; rec < ta.numRecords; ++rec) {
            const std::uint64_t v = fieldValue(rec, q.joinField);
            auto it = build.find(v);
            if (it == build.end())
                continue;
            if (q.joinExtraFilter &&
                !(fieldValue(rec, 1) > fieldValue(it->second, 1))) {
                continue;
            }
            ++total.rows;
            total.checksum += fieldValue(rec, q.fields[0]) +
                              fieldValue(it->second, q.fields[1]);
        }
        break;
      }
    }
    return total;
}

} // namespace sam
