#include "src/imdb/table.hh"

#include <cmath>

#include "src/common/bitops.hh"
#include "src/common/logging.hh"

namespace sam {

std::uint64_t
fieldValue(std::uint64_t record, unsigned field)
{
    // SplitMix64 scramble of (record, field); reduced to [0, 1000) so
    // `value < t` predicates give exact expected selectivity t/1000.
    std::uint64_t z = record * 0x9e3779b97f4a7c15ULL +
                      (static_cast<std::uint64_t>(field) << 32) +
                      0x632be59bd9b4e019ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z = z ^ (z >> 31);
    return z % 1000;
}

std::uint64_t
selectivityThreshold(double sel)
{
    sam_assert(sel >= 0.0 && sel <= 1.0, "selectivity out of range");
    return static_cast<std::uint64_t>(std::lround(sel * 1000.0));
}

bool
passesPredicate(std::uint64_t record, unsigned field,
                std::uint64_t threshold)
{
    return fieldValue(record, field) < threshold;
}

Table::Table(TableSchema schema, Addr base, LayoutKind layout,
             unsigned gather, const Geometry &geom)
    : schema_(std::move(schema)), base_(base), layout_(layout),
      gather_(gather), rowBytes_(geom.rowBytes)
{
    // DRAM-coordinate slicing for the VerticalGroup layout: bank bits
    // sit directly above the column bits, row bits above the banks
    // (Table 2 mapping rw:rk:bk:ch:cl).
    vgBankShift_ = floorLog2(rowBytes_);
    vgBanks_ = geom.channels * geom.ranks * geom.banksPerRank();
    vgRowShift_ = vgBankShift_ + floorLog2(vgBanks_);
    vgSpan_ = geom.rowsPerSubarray();
    sam_assert(vgSpan_ % gather_ == 0,
               "subarray height must be a gather multiple");
    sam_assert(base_ % (std::uint64_t{vgBanks_} << vgBankShift_) == 0,
               "table base must be bank-span aligned");
    sam_assert(gather_ > 0 && isPowerOf2(gather_), "bad gather factor");
    sam_assert(schema_.numRecords % gather_ == 0,
               "record count must be a multiple of the gather factor");
    sam_assert(isPowerOf2(schema_.recordBytes()),
               "record size must be a power of two");
    sam_assert(schema_.recordBytes() <= rowBytes_,
               "records larger than a DRAM row are unsupported");
    if (layout_ == LayoutKind::SamAligned ||
        layout_ == LayoutKind::GsSegmented) {
        sam_assert(static_cast<std::uint64_t>(gather_) *
                           schema_.recordBytes() <= rowBytes_ ||
                       schema_.recordBytes() < kCachelineBytes,
                   "gather group exceeds a DRAM row");
    }
}

std::uint64_t
Table::colSpan() const
{
    // An odd number of rows per column makes consecutive columns walk
    // all bank ids before repeating, so concurrent per-field scan
    // streams do not collide in a bank persistently.
    std::uint64_t rows = divCeil(schema_.numRecords *
                                     TableSchema::kFieldBytes,
                                 rowBytes_);
    if (rows % 2 == 0)
        ++rows;
    return rows * rowBytes_;
}

std::uint64_t
Table::morselGroups() const
{
    switch (layout_) {
      case LayoutKind::ColumnStore:
        // One morsel = one DRAM row of a field column.
        return rowBytes_ / (static_cast<std::uint64_t>(gather_) *
                            TableSchema::kFieldBytes);
      case LayoutKind::VerticalGroup:
        // One morsel = one vertical run (one bank's worth of rows).
        return vgSpan_ / gather_;
      default:
        // One morsel = the groups sharing one DRAM row.
        return std::max<std::uint64_t>(
            1, rowBytes_ / (static_cast<std::uint64_t>(gather_) *
                            schema_.recordBytes()));
    }
}

bool
Table::strideUsable() const
{
    switch (layout_) {
      case LayoutKind::SamAligned:
      case LayoutKind::GsSegmented:
        return schema_.recordBytes() >= kCachelineBytes;
      case LayoutKind::VerticalGroup:
        return true;
      case LayoutKind::RowStore:
      case LayoutKind::ColumnStore:
        return false;
    }
    panic("unknown LayoutKind");
}

Addr
Table::fieldAddr(std::uint64_t record, unsigned field) const
{
    sam_assert(record < schema_.numRecords, "record out of range");
    sam_assert(field < schema_.numFields, "field out of range");
    const unsigned rec_bytes = schema_.recordBytes();
    const unsigned byte_in_rec = field * TableSchema::kFieldBytes;

    switch (layout_) {
      case LayoutKind::RowStore:
      case LayoutKind::SamAligned:
        // SAM alignment is plain row-store with group/row alignment
        // guaranteed by the constructor checks: record groups nest in
        // sub-rows of one DRAM row (Figure 11(a)).
        return base_ + record * rec_bytes + byte_in_rec;

      case LayoutKind::ColumnStore:
        // Columns are padded to a row boundary plus one extra row of
        // stagger so concurrent column streams land in different banks
        // (standard column-store allocator behaviour).
        return base_ + static_cast<std::uint64_t>(field) * colSpan() +
               record * TableSchema::kFieldBytes;

      case LayoutKind::VerticalGroup: {
        // SAM-sub / RC-NVM alignment: records run *vertically*, one
        // record per row down a whole subarray (the paper's "aligned by
        // every N records with N in the magnitude of KB"), so a field
        // scan is a pure column access that keeps hitting the open
        // column-wise subarray buffer for a full subarray of rows.
        // Runs rotate over the banks for parallelism. Row scans, in
        // contrast, switch rows of one bank record after record -- the
        // design's documented weakness.
        const std::uint64_t slots_per_row = rowBytes_ / rec_bytes;
        const std::uint64_t run = record / vgSpan_;
        const std::uint64_t within = record % vgSpan_;
        const std::uint64_t bank_sel = run % vgBanks_;
        const std::uint64_t slot_idx = run / vgBanks_;
        const std::uint64_t band = slot_idx / slots_per_row;
        const std::uint64_t col_slot = slot_idx % slots_per_row;
        const std::uint64_t row = band * vgSpan_ + within;
        return base_ + (row << vgRowShift_) +
               (bank_sel << vgBankShift_) + col_slot * rec_bytes +
               byte_in_rec;
      }

      case LayoutKind::GsSegmented: {
        if (rec_bytes < kCachelineBytes)
            return base_ + record * rec_bytes + byte_in_rec;
        // 64B segments of a G-record group are transposed
        // (Figure 11(b)): segment s of record i is line s*G + i.
        const std::uint64_t group = record / gather_;
        const unsigned i = static_cast<unsigned>(record % gather_);
        const unsigned seg = byte_in_rec / kCachelineBytes;
        const unsigned off = byte_in_rec % kCachelineBytes;
        return base_ +
               group * static_cast<std::uint64_t>(gather_) * rec_bytes +
               (static_cast<std::uint64_t>(seg) * gather_ + i) *
                   kCachelineBytes +
               off;
      }
    }
    panic("unknown LayoutKind");
}

GatherPlan
Table::gatherPlan(std::uint64_t group, unsigned field,
                  unsigned unit) const
{
    GatherPlan plan;
    gatherPlanInto(group, field, unit, plan);
    return plan;
}

void
Table::gatherPlanInto(std::uint64_t group, unsigned field,
                      unsigned unit, GatherPlan &plan) const
{
    sam_assert(strideUsable(), "layout does not support stride access");
    sam_assert(group < numGroups(), "group out of range");
    const unsigned chunk_byte =
        (field * TableSchema::kFieldBytes / unit) * unit;

    plan.lines.clear();
    plan.lines.reserve(gather_);
    for (unsigned i = 0; i < gather_; ++i) {
        const std::uint64_t rec = group * gather_ + i;
        // Address the chunk through its first field so transposed
        // layouts (GS-segmented) resolve correctly.
        const Addr a =
            fieldAddr(rec, chunk_byte / TableSchema::kFieldBytes);
        plan.lines.push_back(a & ~Addr{kCachelineBytes - 1});
        if (i == 0)
            plan.sector = static_cast<unsigned>(
                (a % kCachelineBytes) / unit);
    }
}

std::uint64_t
Table::footprintBytes() const
{
    const unsigned rec_bytes = schema_.recordBytes();
    switch (layout_) {
      case LayoutKind::VerticalGroup: {
        const std::uint64_t slots_per_row = rowBytes_ / rec_bytes;
        const std::uint64_t runs = divCeil(schema_.numRecords, vgSpan_);
        const std::uint64_t bands =
            divCeil(runs, vgBanks_ * slots_per_row);
        return (bands * vgSpan_) << vgRowShift_;
      }
      case LayoutKind::ColumnStore:
        return static_cast<std::uint64_t>(schema_.numFields) * colSpan();
      default:
        return roundUp(schema_.sizeBytes(), kCachelineBytes);
    }
}

bool
Table::slotOwner(std::uint64_t off, std::uint64_t &rec,
                 unsigned &field) const
{
    const unsigned rec_bytes = schema_.recordBytes();
    switch (layout_) {
      case LayoutKind::RowStore:
      case LayoutKind::SamAligned:
        rec = off / rec_bytes;
        field = static_cast<unsigned>((off % rec_bytes) /
                                      TableSchema::kFieldBytes);
        return rec < schema_.numRecords;

      case LayoutKind::ColumnStore: {
        field = static_cast<unsigned>(off / colSpan());
        const std::uint64_t in_col = off % colSpan();
        rec = in_col / TableSchema::kFieldBytes;
        return field < schema_.numFields &&
               rec < schema_.numRecords;
      }

      case LayoutKind::VerticalGroup: {
        const std::uint64_t slots_per_row = rowBytes_ / rec_bytes;
        const std::uint64_t row = off >> vgRowShift_;
        const std::uint64_t bank_sel =
            (off >> vgBankShift_) & (vgBanks_ - 1);
        const std::uint64_t within = off % rowBytes_;
        const std::uint64_t col_slot = within / rec_bytes;
        const std::uint64_t band = row / vgSpan_;
        const std::uint64_t row_in = row % vgSpan_;
        const std::uint64_t slot_idx =
            band * slots_per_row + col_slot;
        const std::uint64_t run = slot_idx * vgBanks_ + bank_sel;
        rec = run * vgSpan_ + row_in;
        field = static_cast<unsigned>(
            (within % rec_bytes) / TableSchema::kFieldBytes);
        return rec < schema_.numRecords;
      }

      case LayoutKind::GsSegmented: {
        if (rec_bytes < kCachelineBytes) {
            rec = off / rec_bytes;
            field = static_cast<unsigned>(
                (off % rec_bytes) / TableSchema::kFieldBytes);
            return rec < schema_.numRecords;
        }
        const std::uint64_t group_bytes =
            static_cast<std::uint64_t>(gather_) * rec_bytes;
        const std::uint64_t g = off / group_bytes;
        const std::uint64_t r = off % group_bytes;
        const std::uint64_t line_idx = r / kCachelineBytes;
        const unsigned within =
            static_cast<unsigned>(r % kCachelineBytes);
        const std::uint64_t seg = line_idx / gather_;
        const unsigned i = static_cast<unsigned>(line_idx % gather_);
        rec = g * gather_ + i;
        field = static_cast<unsigned>(
            (seg * kCachelineBytes + within) /
            TableSchema::kFieldBytes);
        return rec < schema_.numRecords &&
               field < schema_.numFields;
      }
    }
    panic("unknown LayoutKind");
}

namespace {

inline void
putWord(std::uint8_t *line64, unsigned w, std::uint64_t value)
{
    for (unsigned b = 0; b < 8; ++b) {
        line64[w * 8 + b] =
            static_cast<std::uint8_t>((value >> (8 * b)) & 0xff);
    }
}

} // namespace

void
Table::buildLine(std::uint64_t off, std::uint8_t *line64) const
{
    // Invert the layout: find the (record, field) word occupying every
    // 8B slot. Calling slotOwner() per word costs two integer
    // divisions each -- the hot loop of table materialization -- so
    // exploit how every layout arranges a 64B-aligned line:
    //   - ColumnStore: the line lies inside one field column (colSpan
    //     is a multiple of the row size), records advancing one per
    //     word;
    //   - every other layout: the line is a run of record segments of
    //     min(recordBytes, 64) bytes, fields advancing one per word
    //     within each segment.
    // One slotOwner() call per column/segment pins the rest down.
    sam_assert(off % kCachelineBytes == 0, "unaligned line build");
    constexpr unsigned kWords = kCachelineBytes / 8;
    const unsigned rec_bytes = schema_.recordBytes();

    if (layout_ == LayoutKind::ColumnStore) {
        std::uint64_t rec = 0;
        unsigned field = 0;
        slotOwner(off, rec, field);
        const bool field_ok = field < schema_.numFields;
        for (unsigned w = 0; w < kWords; ++w) {
            const std::uint64_t r = rec + w;
            putWord(line64, w,
                    field_ok && r < schema_.numRecords
                        ? fieldValue(r, field)
                        : 0);
        }
        return;
    }

    const unsigned seg_words =
        std::min(rec_bytes, unsigned{kCachelineBytes}) / 8;
    for (unsigned w = 0; w < kWords;) {
        std::uint64_t rec = 0;
        unsigned field = 0;
        const bool valid = slotOwner(off + w * 8, rec, field);
        for (unsigned k = 0; k < seg_words; ++k, ++w) {
            // field + k stays in range for the intra-record layouts by
            // construction; the bound only bites for GS-segmented
            // lines, matching slotOwner()'s own check.
            putWord(line64, w,
                    valid && field + k < schema_.numFields
                        ? fieldValue(rec, field + k)
                        : 0);
        }
    }
}

void
Table::materialize(DataPath &data_path) const
{
    const std::uint64_t footprint = footprintBytes();
    std::vector<std::uint8_t> line(kCachelineBytes);
    for (std::uint64_t off = 0; off < footprint;
         off += kCachelineBytes) {
        buildLine(off, line.data());
        data_path.writeLine(base_ + off, line);
    }
}

} // namespace sam
