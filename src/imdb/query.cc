#include "src/imdb/query.hh"

#include <algorithm>

#include "src/common/logging.hh"
#include "src/common/random.hh"

namespace sam {

std::vector<Query>
benchmarkQQueries()
{
    std::vector<Query> qs;

    // Q1: SELECT f3, f4 FROM Ta WHERE f10 > x
    {
        Query q;
        q.name = "Q1";
        q.kind = QueryKind::Select;
        q.table = TableRef::Ta;
        q.fields = {3, 4};
        q.hasPredicate = true;
        qs.push_back(q);
    }
    // Q2: SELECT * FROM Tb WHERE f10 > x  (f10 > x mostly false)
    {
        Query q;
        q.name = "Q2";
        q.kind = QueryKind::SelectStar;
        q.table = TableRef::Tb;
        q.hasPredicate = true;
        q.selectivity = 0.01;
        qs.push_back(q);
    }
    // Q3 / Q4: SELECT SUM(f9) FROM Ta / Tb WHERE f10 > x
    for (auto [name, table] :
         {std::pair{"Q3", TableRef::Ta}, std::pair{"Q4", TableRef::Tb}}) {
        Query q;
        q.name = name;
        q.kind = QueryKind::Aggregate;
        q.table = table;
        q.fields = {9};
        q.hasPredicate = true;
        qs.push_back(q);
    }
    // Q5 / Q6: SELECT AVG(f1) FROM Ta / Tb WHERE f10 > x
    for (auto [name, table] :
         {std::pair{"Q5", TableRef::Ta}, std::pair{"Q6", TableRef::Tb}}) {
        Query q;
        q.name = name;
        q.kind = QueryKind::Aggregate;
        q.table = table;
        q.fields = {1};
        q.hasPredicate = true;
        qs.push_back(q);
    }
    // Q7: SELECT Ta.f3, Tb.f4 FROM Ta, Tb
    //     WHERE Ta.f1 > Tb.f1 AND Ta.f9 = Tb.f9
    {
        Query q;
        q.name = "Q7";
        q.kind = QueryKind::Join;
        q.fields = {3, 4};
        q.joinExtraFilter = true;
        qs.push_back(q);
    }
    // Q8: SELECT Ta.f3, Tb.f4 FROM Ta, Tb WHERE Ta.f9 = Tb.f9
    {
        Query q;
        q.name = "Q8";
        q.kind = QueryKind::Join;
        q.fields = {3, 4};
        qs.push_back(q);
    }
    // Q9 / Q10: SELECT f3, f4 FROM Ta WHERE f1 > x AND f9/f2 < y
    for (auto [name, second] :
         {std::pair{"Q9", 9u}, std::pair{"Q10", 2u}}) {
        Query q;
        q.name = name;
        q.kind = QueryKind::Select;
        q.table = TableRef::Ta;
        q.fields = {3, 4};
        q.hasPredicate = true;
        q.predField = 1;
        q.selectivity = 0.5;
        q.hasPredicate2 = true;
        q.predField2 = second;
        q.selectivity2 = 0.5;
        qs.push_back(q);
    }
    // Q11: UPDATE Tb SET f3 = x, f4 = y WHERE f10 = z
    {
        Query q;
        q.name = "Q11";
        q.kind = QueryKind::Update;
        q.table = TableRef::Tb;
        q.fields = {3, 4};
        q.hasPredicate = true;
        qs.push_back(q);
    }
    // Q12: UPDATE Tb SET f9 = x WHERE f10 = y
    {
        Query q;
        q.name = "Q12";
        q.kind = QueryKind::Update;
        q.table = TableRef::Tb;
        q.fields = {9};
        q.hasPredicate = true;
        qs.push_back(q);
    }
    return qs;
}

std::vector<Query>
benchmarkQsQueries()
{
    std::vector<Query> qs;

    // Qs1 / Qs2: SELECT * FROM Ta / Tb LIMIT 1024
    for (auto [name, table] : {std::pair{"Qs1", TableRef::Ta},
                               std::pair{"Qs2", TableRef::Tb}}) {
        Query q;
        q.name = name;
        q.kind = QueryKind::SelectStar;
        q.table = table;
        q.limit = 1024;
        q.rowPreferred = true;
        qs.push_back(q);
    }
    // Qs3 / Qs4: SELECT * FROM Ta / Tb WHERE f10 > x
    for (auto [name, table] : {std::pair{"Qs3", TableRef::Ta},
                               std::pair{"Qs4", TableRef::Tb}}) {
        Query q;
        q.name = name;
        q.kind = QueryKind::SelectStar;
        q.table = table;
        q.hasPredicate = true;
        q.rowPreferred = true;
        qs.push_back(q);
    }
    // Qs5 / Qs6: INSERT INTO Ta / Tb VALUES (...)
    for (auto [name, table] : {std::pair{"Qs5", TableRef::Ta},
                               std::pair{"Qs6", TableRef::Tb}}) {
        Query q;
        q.name = name;
        q.kind = QueryKind::Insert;
        q.table = table;
        q.rowPreferred = true;
        qs.push_back(q);
    }
    return qs;
}

namespace {

std::vector<unsigned>
pickFields(unsigned projected, unsigned num_fields, std::uint64_t seed)
{
    sam_assert(projected >= 1 && projected <= num_fields,
               "projectivity out of range");
    // Field 0 is the predicate field; project from the rest (random
    // manner per Section 6.2), unless everything is projected.
    std::vector<unsigned> all;
    for (unsigned f = 1; f < num_fields; ++f)
        all.push_back(f);
    Rng rng(seed * 1315423911ULL + projected);
    for (std::size_t i = all.size(); i > 1; --i)
        std::swap(all[i - 1], all[rng.below(i)]);
    std::vector<unsigned> out(all.begin(),
                              all.begin() +
                                  std::min<std::size_t>(projected,
                                                        all.size()));
    if (projected == num_fields)
        out.push_back(0);
    std::sort(out.begin(), out.end());
    return out;
}

} // namespace

Query
arithQuery(unsigned projected, double selectivity, unsigned num_fields,
           std::uint64_t seed)
{
    Query q;
    q.name = "Arith(p=" + std::to_string(projected) +
             ",s=" + std::to_string(selectivity) + ")";
    q.kind = QueryKind::Aggregate;
    q.table = TableRef::Ta;
    q.fields = pickFields(projected, num_fields, seed);
    q.hasPredicate = true;
    q.predField = 0;
    q.selectivity = selectivity;
    q.recordMajor = true;
    return q;
}

Query
aggrQuery(unsigned projected, double selectivity, unsigned num_fields,
          std::uint64_t seed)
{
    Query q = arithQuery(projected, selectivity, num_fields, seed);
    q.name = "Aggr(p=" + std::to_string(projected) +
             ",s=" + std::to_string(selectivity) + ")";
    q.fieldMajor = true;
    q.recordMajor = false;
    return q;
}

} // namespace sam
