/**
 * @file
 * Query executor: runs the Table 3 benchmark queries against tables
 * through a per-core MemPort (cache hierarchy + trace capture),
 * computing real results from the bytes the simulated memory system
 * returns. Strided field scans use sload/sstore (stride accesses) on
 * designs that support them; row-preferred queries run in regular mode
 * on every design (Section 6.2).
 */

#ifndef SAM_IMDB_EXECUTOR_HH
#define SAM_IMDB_EXECUTOR_HH

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/gather.hh"
#include "src/common/types.hh"
#include "src/imdb/query.hh"
#include "src/imdb/table.hh"

namespace sam {

/** Core-side memory interface implemented by the system simulator. */
class MemPort
{
  public:
    virtual ~MemPort() = default;

    /** Load up to 8 bytes (returns zero-extended value). */
    virtual std::uint64_t load(Addr addr, unsigned bytes) = 0;

    /** Store up to 8 bytes. */
    virtual void store(Addr addr, std::uint64_t value,
                       unsigned bytes) = 0;

    /**
     * Write-combining store for bulk record writes: allocates the line
     * without read-for-ownership (the whole line will be overwritten).
     */
    virtual void storeStream(Addr addr, std::uint64_t value,
                             unsigned bytes) = 0;

    /** Strided load (sload): returns the gathered 64B line. */
    virtual std::vector<std::uint8_t> strideLoad(
        const GatherPlan &plan) = 0;

    /**
     * strideLoad() into a caller-owned 64B buffer, so scan loops can
     * hold their gather registers without per-group allocation.
     */
    virtual void strideLoadInto(const GatherPlan &plan,
                                std::uint8_t *out64)
    {
        const std::vector<std::uint8_t> line = strideLoad(plan);
        std::copy(line.begin(), line.end(), out64);
    }

    /** Strided store (sstore): scatter a 64B line of chunks. */
    virtual void strideStore(const GatherPlan &plan,
                             const std::vector<std::uint8_t> &line) = 0;

    /** Account `cycles` of core compute time. */
    virtual void compute(Cycle cycles) = 0;

    // ----- RAS poison reporting (optional) ---------------------------
    /** Whether the last load() returned RAS-poisoned data. */
    virtual bool lastAccessPoisoned() const { return false; }

    /**
     * Per-chunk poison bits of the last strideLoad() (bit i = chunk i
     * of the gathered line, i.e. source line i of the plan).
     */
    virtual std::uint32_t strideLoadPoisonBits() const { return 0; }
};

/** Merged functional result of a query (compared against a reference). */
struct QueryResult
{
    std::uint64_t rows = 0;      ///< Selected / updated / emitted rows.
    std::uint64_t aggregate = 0; ///< Sum over aggregate fields.
    std::uint64_t checksum = 0;  ///< Sum of all projected values.

    /**
     * Rows whose data was RAS-poisoned (uncorrectable memory errors
     * that survived retry). Such rows contribute nothing to rows /
     * aggregate / checksum: the query degrades gracefully instead of
     * silently returning corrupt values. Not part of equality --
     * a degraded result is compared on what it *did* compute, and
     * callers must check degraded() before trusting a mismatch.
     */
    std::uint64_t poisonedRows = 0;

    /** The result is incomplete due to uncorrectable memory errors. */
    bool degraded() const { return poisonedRows != 0; }

    bool
    operator==(const QueryResult &o) const
    {
        return rows == o.rows && aggregate == o.aggregate &&
               checksum == o.checksum;
    }
};

/** Execution environment supplied by the system simulator. */
struct ExecEnv
{
    Table *ta = nullptr;
    Table *tb = nullptr;
    std::vector<MemPort *> ports;   ///< One per core.
    /** Called between execution phases (join build/probe, field
     *  sweeps); the simulator inserts a timing barrier. */
    std::function<void()> barrier = [] {};
    /** Use sload/sstore for sequential field scans. */
    bool useStride = false;
    unsigned strideUnit = 8;
    /**
     * The memory design prefers column-at-a-time plans (SAM-sub /
     * RC-NVM column-wise subarrays, where switching fields mid-scan
     * forces a column-to-column bank conflict). The engine then
     * executes selections and aggregations field-major unless the
     * query's semantics force record-major order.
     */
    bool fieldMajorPreferred = false;
    Cycle computePerRecord = 1;
    Cycle computePerValue = 1;
};

/**
 * The engine's cost-based plan choice for a query on a table
 * (Section 6.2's selectivity/projectivity trade-off):
 *
 *  - `worthColumns`: a column plan (field sweeps / sloads) reads fewer
 *    bytes than a record-major scan of the row-friendly layout;
 *  - `strideProject`: fetching the projected fields of qualifying
 *    records via gathers beats record-contiguous regular reads.
 */
struct PlanChoice
{
    bool worthColumns = true;
    bool strideProject = true;
};

/**
 * @param has_row_fallback The design can fetch qualifying records
 *        record-contiguously from a row-friendly layout (true for the
 *        stride designs, whose layout is row-store aligned; false for
 *        a pure column store deciding whether to keep a row copy).
 */
PlanChoice choosePlan(const Query &query, const TableSchema &schema,
                      unsigned gather, bool has_row_fallback = true);

/**
 * Execute `query` across all cores (functionally sequential; the
 * timing interleave is reconstructed by the trace replay). Returns the
 * merged result.
 */
QueryResult executeQuery(const Query &query, ExecEnv &env);

/**
 * Pure-functional reference executor: recomputes the expected result
 * straight from fieldValue(), bypassing the memory system. Simulated
 * results must match exactly.
 */
QueryResult referenceResult(const Query &query, const TableSchema &ta,
                            const TableSchema &tb);

} // namespace sam

#endif // SAM_IMDB_EXECUTOR_HH
