/**
 * @file
 * In-memory database tables: schema, physical layout per design
 * (Section 5.4.1, Figure 11), deterministic data generation, and
 * stride gather planning.
 */

#ifndef SAM_IMDB_TABLE_HH
#define SAM_IMDB_TABLE_HH

#include <cstdint>
#include <string>

#include "src/common/gather.hh"
#include "src/common/types.hh"
#include "src/designs/design.hh"
#include "src/dram/data_path.hh"
#include "src/dram/timing.hh"

namespace sam {

/** Relational table shape: fixed-width 8B fields (paper Section 6.1). */
struct TableSchema
{
    std::string name;
    unsigned numFields = 16;
    std::uint64_t numRecords = 1024;

    static constexpr unsigned kFieldBytes = 8;

    unsigned recordBytes() const { return numFields * kFieldBytes; }
    std::uint64_t sizeBytes() const { return numRecords * recordBytes(); }
};

/**
 * Deterministic field contents shared by the data generator and the
 * reference executor: tests compare simulated query results against
 * values recomputed from this function.
 *
 * The value is bounded (< 4096) so aggregates never overflow, and the
 * low-order structure gives controllable selectivity: predicates of the
 * form `value % 1000 < t` select a t/1000 fraction of records.
 */
std::uint64_t fieldValue(std::uint64_t record, unsigned field);

/** Predicate threshold for selectivity `sel` against fieldValue(). */
std::uint64_t selectivityThreshold(double sel);

/** True if fieldValue(record, field) passes the selectivity test. */
bool passesPredicate(std::uint64_t record, unsigned field,
                     std::uint64_t threshold);

/**
 * A table bound to a physical base address and a layout. Addressing is
 * purely arithmetic; materialize() writes the contents through the
 * functional data path.
 */
class Table
{
  public:
    /**
     * @param gather  Records per alignment group (the design's G).
     * @param geom    Needed by the VerticalGroup layout for row size.
     */
    Table(TableSchema schema, Addr base, LayoutKind layout,
          unsigned gather, const Geometry &geom);

    const TableSchema &schema() const { return schema_; }
    Addr base() const { return base_; }
    LayoutKind layout() const { return layout_; }
    unsigned gather() const { return gather_; }
    unsigned rowBytes() const { return rowBytes_; }

    /** Byte address of (record, field). */
    Addr fieldAddr(std::uint64_t record, unsigned field) const;

    /**
     * True when stride (sload/sstore) accesses are usable on this
     * layout: grouped layouts with records of at least one line.
     */
    bool strideUsable() const;

    std::uint64_t numGroups() const
    {
        return (schema_.numRecords + gather_ - 1) / gather_;
    }

    /**
     * Gather plan returning the chunk that holds `field` for every
     * record of `group`. The caller extracts the wanted 8B at offset
     * ((field * 8) % unit) of each chunk.
     */
    GatherPlan gatherPlan(std::uint64_t group, unsigned field,
                          unsigned unit) const;

    /** gatherPlan() into a caller-owned plan, reusing its capacity so
     *  per-group replanning in scan loops stays allocation-free. */
    void gatherPlanInto(std::uint64_t group, unsigned field,
                        unsigned unit, GatherPlan &plan) const;

    /** Total physical footprint (bytes, including group padding). */
    std::uint64_t footprintBytes() const;

    /** Bank-staggered per-column span of the column-store layout. */
    std::uint64_t colSpan() const;

    /**
     * Preferred morsel size (in groups) for parallel scans: the group
     * span of one DRAM row (or one vertical run for the VerticalGroup
     * layout), so concurrently scanning cores occupy different banks.
     */
    std::uint64_t morselGroups() const;

    /** Records per vertical run (VerticalGroup layout). */
    unsigned verticalSpan() const { return vgSpan_; }

    /** Banks rotated over by vertical runs. */
    unsigned verticalBanks() const { return vgBanks_; }

    /** Write every record into the functional memory. */
    void materialize(DataPath &data_path) const;

    /**
     * Compose the 64B line at byte offset `off` from the table base
     * (layout inversion + deterministic field values). Pure function
     * of (schema, layout, off): safe to call from several threads at
     * once, which is how TableCache parallelises cold builds.
     */
    void buildLine(std::uint64_t off, std::uint8_t *line64) const;

  private:
    /** Find the (record, field) word occupying the 8B slot at `off`;
     *  false when the slot is padding. */
    bool slotOwner(std::uint64_t off, std::uint64_t &rec,
                   unsigned &field) const;
    TableSchema schema_;
    Addr base_;
    LayoutKind layout_;
    unsigned gather_;
    unsigned rowBytes_;
    /** VerticalGroup DRAM-coordinate addressing (bank/row slicing). */
    unsigned vgBankShift_ = 0;
    unsigned vgBanks_ = 1;
    unsigned vgRowShift_ = 0;
    unsigned vgSpan_ = 512;  ///< Records per vertical run (rows).
};

} // namespace sam

#endif // SAM_IMDB_TABLE_HH
