/**
 * @file
 * Query IR for the paper's benchmark (Table 3): the twelve
 * column-store-preferring Q queries from RC-NVM's suite, the six
 * row-store-preferring Qs supplements, and the parameterized arithmetic
 * / aggregate queries of Figure 15.
 */

#ifndef SAM_IMDB_QUERY_HH
#define SAM_IMDB_QUERY_HH

#include <cstdint>
#include <string>
#include <vector>

namespace sam {

enum class QueryKind {
    Select,      ///< Project fields of records passing predicates.
    SelectStar,  ///< Project all fields of records passing predicates.
    Aggregate,   ///< SUM / AVG over one or more fields.
    Update,      ///< Set fields of records passing the predicate.
    Insert,      ///< Append whole records.
    Join,        ///< Equi-join on a field, with optional extra filter.
};

/** Which table a query targets. */
enum class TableRef { Ta, Tb };

struct Query
{
    std::string name;
    QueryKind kind = QueryKind::Select;
    TableRef table = TableRef::Ta;

    /** Fields projected / summed / updated. */
    std::vector<unsigned> fields;

    /** Predicate: field `predField` selective at `selectivity`. */
    bool hasPredicate = false;
    unsigned predField = 10;
    double selectivity = 0.25;

    /** Second predicate (Q9 / Q10): AND-combined. */
    bool hasPredicate2 = false;
    unsigned predField2 = 9;
    double selectivity2 = 0.5;

    /** LIMIT for Qs1/Qs2; 0 = no limit. */
    std::uint64_t limit = 0;

    /** Join partner field (both tables) and match selectivity. */
    unsigned joinField = 9;
    double joinSelectivity = 0.25;
    /** Q7's extra Ta.f1 > Tb.f1 comparison. */
    bool joinExtraFilter = false;

    /** Insert count (Qs5/Qs6); 0 = table-size / 8 default. */
    std::uint64_t insertCount = 0;

    /**
     * Row-store-preferred (Qs-type): executed with regular accesses on
     * every design; the ideal design uses a row-store layout.
     */
    bool rowPreferred = false;

    /**
     * Field-major processing (the Figure 15 aggregate query): sweep the
     * table one projected field at a time instead of record-at-a-time.
     */
    bool fieldMajor = false;

    /**
     * Force record-at-a-time processing (the Figure 15 arithmetic
     * query): the per-record expression chains field values, so the
     * engine cannot restructure the plan into column sweeps even on
     * hardware that would prefer them.
     */
    bool recordMajor = false;
};

/** The Q1..Q12 suite (column-store preferring; Table 3 upper block). */
std::vector<Query> benchmarkQQueries();

/** The Qs1..Qs6 supplements (row-store preferring; middle block). */
std::vector<Query> benchmarkQsQueries();

/**
 * The Figure 15 arithmetic query: SELECT fi+fj+...+fk FROM Ta WHERE
 * f0 < x, with `projected` random fields and the given selectivity.
 */
Query arithQuery(unsigned projected, double selectivity,
                 unsigned num_fields, std::uint64_t seed = 1);

/** The Figure 15 aggregate query (field-major AVG over fields). */
Query aggrQuery(unsigned projected, double selectivity,
                unsigned num_fields, std::uint64_t seed = 2);

} // namespace sam

#endif // SAM_IMDB_QUERY_HH
