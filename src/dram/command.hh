/**
 * @file
 * Command-level trace records emitted by the Device's command observer.
 *
 * The timing engine in device.cc is an event-driven resource-reservation
 * model: it never materializes a DDR command stream. For validation we
 * still want one -- an independent oracle (src/check) can re-derive
 * protocol legality from the individual ACT/PRE/RD/WR/REF/mode-switch
 * commands without trusting any of the engine's scheduling state. The
 * observer hook below reports each command with the cycle the engine
 * scheduled it at.
 */

#ifndef SAM_DRAM_COMMAND_HH
#define SAM_DRAM_COMMAND_HH

#include <functional>
#include <string>

#include "src/common/types.hh"
#include "src/dram/address.hh"

namespace sam {

/** I/O mode a request requires on its rank (Section 5.3). */
enum class AccessMode { Regular, Stride };

/** The DDR4/RRAM command vocabulary visible on the command bus. */
enum class CmdKind {
    Act,        ///< Row activation (regular or column-wise subarray).
    Pre,        ///< Bank precharge (explicit or pre-refresh closure).
    Rd,         ///< Read CAS (one burst).
    Wr,         ///< Write CAS (one burst).
    Ref,        ///< All-bank refresh on one rank.
    ModeSwitch, ///< SAM I/O mode switch on one rank (Section 5.3).
};

std::string cmdKindName(CmdKind kind);

/** One command as scheduled by the timing engine. */
struct Command
{
    CmdKind kind = CmdKind::Act;
    Cycle at = 0;        ///< Cycle the command issues.
    /**
     * Full coordinates for bank-level commands; only channel/rank are
     * meaningful for Ref and ModeSwitch.
     */
    MappedAddr addr;
    /** I/O mode of a CAS; target mode of a ModeSwitch. */
    AccessMode mode = AccessMode::Regular;

    /** "RD ch0 rk1 bg2 bk3 row5 col7 @123"-style rendering. */
    std::string str() const;
};

/**
 * Observer invoked once per scheduled command. Commands arrive in
 * engine *commit* order, which is monotone per resource (bank, rank,
 * bus) but not globally monotone in time -- consumers that need
 * wall-clock order must sort.
 */
using CommandObserver = std::function<void(const Command &)>;

} // namespace sam

#endif // SAM_DRAM_COMMAND_HH
