/**
 * @file
 * A physical address decomposed into DRAM coordinates.
 */

#ifndef SAM_DRAM_ADDRESS_HH
#define SAM_DRAM_ADDRESS_HH

#include <cstdint>

#include "src/common/types.hh"
#include "src/dram/timing.hh"

namespace sam {

/**
 * DRAM coordinates of one cacheline-sized column access. Produced by the
 * controller's AddressMapping from a flat physical address.
 */
struct MappedAddr
{
    unsigned channel = 0;
    unsigned rank = 0;
    unsigned bankGroup = 0;
    unsigned bank = 0;      ///< Bank index within its group.
    std::uint64_t row = 0;
    unsigned column = 0;    ///< 64B line index within the row.

    /** Flat bank id within the rank. */
    unsigned
    bankInRank(const Geometry &geom) const
    {
        return bankGroup * geom.banksPerGroup + bank;
    }

    /** Flat bank id across the whole system. */
    unsigned
    flatBank(const Geometry &geom) const
    {
        return (channel * geom.ranks + rank) * geom.banksPerRank() +
               bankInRank(geom);
    }

    bool
    sameBank(const MappedAddr &o) const
    {
        return channel == o.channel && rank == o.rank &&
               bankGroup == o.bankGroup && bank == o.bank;
    }

    bool
    sameRow(const MappedAddr &o) const
    {
        return sameBank(o) && row == o.row;
    }
};

} // namespace sam

#endif // SAM_DRAM_ADDRESS_HH
