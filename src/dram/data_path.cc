#include "src/dram/data_path.hh"

#include <cstring>

#include "src/common/logging.hh"
#include "src/dram/io_buffer.hh"

namespace sam {

void
EccStats::registerIn(StatGroup &group) const
{
    group.addCounter("linesChecked", linesChecked, "lines ECC-checked");
    group.addCounter("correctedLines", correctedLines,
                     "lines with corrected errors");
    group.addCounter("correctedSymbols", correctedSymbols,
                     "total symbols corrected");
    group.addCounter("uncorrectable", uncorrectable,
                     "detected uncorrectable lines");
}

DataPath::DataPath(EccScheme scheme)
    : ecc_(scheme),
      store_(kCachelineBytes + EccEngine::parityBytesFor(scheme))
{
    // Lets the store reconstruct the parity of lazy-parity table
    // snapshots on demand (DataPath is non-movable, so the borrowed
    // engine pointer stays valid for the store's lifetime).
    store_.setParityEncoder(&ecc_);
}

Addr
DataPath::resolved(Addr line_addr) const
{
    return ras_ ? ras_->resolve(line_addr) : line_addr;
}

ReadFlags
DataPath::fetchInto(Addr line_addr, std::uint8_t *out64, bool rmw)
{
    const Addr phys = resolved(line_addr);
    if (faults_)
        faults_->tick(now_, store_, ecc_);

    // Clean tag read AFTER tick(): the FIT model corrupts stored
    // blobs, which clears the tag.
    const BackingStore::LineRef ref = store_.refLine(phys);
    const bool provably_clean =
        fastPath_ && ref.clean && failedChips_.empty();

    if (provably_clean && !faults_) {
        // Intact encoder output with nothing in the way: copy the data
        // bytes straight out of the store. A full decode would return
        // Clean, bump exactly these counters, and leave the bytes
        // untouched.
        ++stats_.linesChecked;
        ecc_.noteCleanLine();
        if (ref.data)
            std::memcpy(out64, ref.data, kCachelineBytes);
        else
            std::memset(out64, 0, kCachelineBytes);
        return ReadFlags{};
    }

    const unsigned blob_bytes = store_.blobBytes();
    unsigned attempt = 0;
    for (;;) {
        blobScratch_.resize(blob_bytes);
        if (ref.data && ref.lazyParity) {
            // Lazy-parity snapshot line: the stored tail is a zero
            // placeholder, so rebuild the full codeword from the data
            // bytes before anything inspects or corrupts it.
            ecc_.encodeLineInto(ref.data, blobScratch_.data());
        } else if (ref.data) {
            std::memcpy(blobScratch_.data(), ref.data, blob_bytes);
        } else {
            std::memset(blobScratch_.data(), 0, blob_bytes);
        }
        for (unsigned chip : failedChips_)
            ecc_.corruptChip(blobScratch_, chip);
        bool touched = false;
        if (faults_) {
            // Always consulted, even on clean lines: the injector's
            // per-read RNG draws are part of the deterministic replay
            // surface.
            touched = faults_->beforeDecode(phys, blobScratch_, ecc_);
        }

        if (provably_clean && !touched) {
            ++stats_.linesChecked;
            ecc_.noteCleanLine();
            std::memcpy(out64, blobScratch_.data(), kCachelineBytes);
            ReadFlags out;
            out.retries = attempt;
            return out;
        }

        const EccLineResult r = ecc_.decodeLine(blobScratch_);
        ++stats_.linesChecked;

        if (!r.uncorrectable) {
            ReadFlags out;
            out.retries = attempt;
            if (r.corrected) {
                ++stats_.correctedLines;
                stats_.correctedSymbols += r.symbolsCorrected;
                out.corrected = true;
                if (ras_ && !rmw) {
                    const auto act = ras_->onCorrected(line_addr, now_);
                    if (act.scrub) {
                        // Scrub: persist the healed blob (decode
                        // re-verified it, so it is clean encoder
                        // output). The caller records this as a real
                        // timed write.
                        store_.writeLine(phys, blobScratch_,
                                         /*clean=*/true);
                        scrubbed_.push_back(line_addr);
                        out.scrubbed = true;
                    }
                    if (act.retire) {
                        // Leaky bucket says permanent: copy the healed
                        // data to a spare; future accesses remap.
                        const Addr spare = ras_->retireLine(line_addr);
                        if (spare != line_addr)
                            store_.writeLine(spare, blobScratch_,
                                             /*clean=*/true);
                    }
                }
            }
            std::memcpy(out64, blobScratch_.data(), kCachelineBytes);
            return out;
        }

        if (ras_ && ras_->onUncorrectable(line_addr, now_, attempt)) {
            ++attempt;
            continue; // re-read clears transient bus faults
        }

        // Detected-uncorrectable, retries exhausted (or no RAS
        // attached): the access fails. `uncorrectable` counts final
        // failures, not individual retry attempts.
        ++stats_.uncorrectable;
        ReadFlags out;
        out.retries = attempt;
        out.uncorrectable = true;
        if (ras_) {
            out.poisoned = true;
            out.poisonBits = 1;
            ras_->onPoisoned(line_addr);
        }
        std::memcpy(out64, blobScratch_.data(), kCachelineBytes);
        return out;
    }
}

ReadFlags
DataPath::readLineInto(Addr line_addr, std::uint8_t *out64)
{
    scrubbed_.clear();
    return fetchInto(line_addr, out64);
}

ReadOutcome
DataPath::readLine(Addr line_addr)
{
    ReadOutcome out;
    out.data.resize(kCachelineBytes);
    const ReadFlags f = readLineInto(line_addr, out.data.data());
    out.corrected = f.corrected;
    out.uncorrectable = f.uncorrectable;
    out.poisoned = f.poisoned;
    out.retries = f.retries;
    out.poisonBits = f.poisonBits;
    out.scrubbedLines = scrubbed_;
    return out;
}

void
DataPath::writeLine(Addr line_addr, const std::vector<std::uint8_t> &data)
{
    sam_assert(data.size() == kCachelineBytes,
               "writeLine expects a 64B line, got ", data.size());
    encodeScratch_.resize(store_.blobBytes());
    ecc_.encodeLineInto(data.data(), encodeScratch_.data());
    store_.writeLine(resolved(line_addr), encodeScratch_.data(),
                     /*clean=*/true);
}

ReadFlags
DataPath::strideReadInto(const Addr *line_addrs, std::size_t count,
                         unsigned sector, unsigned unit,
                         std::uint8_t *out64)
{
    scrubbed_.clear();
    sam_assert(count * unit <= kCachelineBytes, "oversized gather");
    std::uint8_t line[kCachelineBytes];
    ReadFlags out;
    for (std::size_t i = 0; i < count; ++i) {
        const ReadFlags one = fetchInto(line_addrs[i], line);
        out.corrected = out.corrected || one.corrected;
        out.uncorrectable = out.uncorrectable || one.uncorrectable;
        out.poisoned = out.poisoned || one.poisoned;
        out.retries += one.retries;
        if (one.poisoned)
            out.poisonBits |= std::uint32_t{1} << i;
        std::memcpy(out64 + i * unit, line + sector * unit, unit);
    }
    out.scrubbed = !scrubbed_.empty();
    return out;
}

ReadOutcome
DataPath::strideRead(const Addr *line_addrs, std::size_t count,
                     unsigned sector, unsigned unit)
{
    ReadOutcome out;
    out.data.resize(kCachelineBytes);
    const ReadFlags f =
        strideReadInto(line_addrs, count, sector, unit, out.data.data());
    out.corrected = f.corrected;
    out.uncorrectable = f.uncorrectable;
    out.poisoned = f.poisoned;
    out.retries = f.retries;
    out.poisonBits = f.poisonBits;
    out.scrubbedLines = scrubbed_;
    return out;
}

ReadOutcome
DataPath::strideRead(const std::vector<Addr> &line_addrs, unsigned sector,
                     unsigned unit)
{
    return strideRead(line_addrs.data(), line_addrs.size(), sector, unit);
}

void
DataPath::strideWrite(const Addr *line_addrs, std::size_t count,
                      unsigned sector, unsigned unit,
                      const std::uint8_t *stride_line)
{
    // Read-modify-write: decode each target line, patch the chunk,
    // re-encode. Mirrors SAM's requirement that strided writes keep
    // every touched codeword consistent.
    std::uint8_t line[kCachelineBytes];
    encodeScratch_.resize(store_.blobBytes());
    for (std::size_t i = 0; i < count; ++i) {
        fetchInto(line_addrs[i], line, /*rmw=*/true);
        std::memcpy(line + sector * unit, stride_line + i * unit, unit);
        ecc_.encodeLineInto(line, encodeScratch_.data());
        store_.writeLine(resolved(line_addrs[i]), encodeScratch_.data(),
                         /*clean=*/true);
    }
}

void
DataPath::strideWrite(const std::vector<Addr> &line_addrs, unsigned sector,
                      unsigned unit,
                      const std::vector<std::uint8_t> &stride_line)
{
    strideWrite(line_addrs.data(), line_addrs.size(), sector, unit,
                stride_line.data());
}

void
DataPath::writePartial(Addr line_addr, const std::uint8_t *data64,
                       std::uint8_t sector_mask, unsigned sector_bytes)
{
    sam_assert(sector_bytes > 0 && kCachelineBytes % sector_bytes == 0,
               "bad sector size");
    std::uint8_t line[kCachelineBytes];
    fetchInto(line_addr, line, /*rmw=*/true);
    const unsigned sectors = kCachelineBytes / sector_bytes;
    for (unsigned s = 0; s < sectors; ++s) {
        if (sector_mask & (1u << s)) {
            std::memcpy(line + s * sector_bytes,
                        data64 + s * sector_bytes, sector_bytes);
        }
    }
    encodeScratch_.resize(store_.blobBytes());
    ecc_.encodeLineInto(line, encodeScratch_.data());
    store_.writeLine(resolved(line_addr), encodeScratch_.data(),
                     /*clean=*/true);
}

void
DataPath::failChip(unsigned chip)
{
    sam_assert(chip < ecc_.numChips(), "chip ", chip, " out of range");
    failedChips_.insert(chip);
}

} // namespace sam
