#include "src/dram/data_path.hh"

#include "src/common/logging.hh"
#include "src/dram/io_buffer.hh"

namespace sam {

void
EccStats::registerIn(StatGroup &group) const
{
    group.addCounter("linesChecked", linesChecked, "lines ECC-checked");
    group.addCounter("correctedLines", correctedLines,
                     "lines with corrected errors");
    group.addCounter("correctedSymbols", correctedSymbols,
                     "total symbols corrected");
    group.addCounter("uncorrectable", uncorrectable,
                     "detected uncorrectable lines");
}

DataPath::DataPath(EccScheme scheme)
    : ecc_(scheme),
      store_(kCachelineBytes + EccEngine(scheme).parityBytesPerLine())
{
}

ReadOutcome
DataPath::fetchDecoded(Addr line_addr)
{
    auto blob = store_.readLine(line_addr);
    for (unsigned chip : failedChips_)
        ecc_.corruptChip(blob, chip);

    const EccLineResult r = ecc_.decodeLine(blob);
    ++stats_.linesChecked;
    if (r.corrected) {
        ++stats_.correctedLines;
        stats_.correctedSymbols += r.symbolsCorrected;
    }
    if (r.uncorrectable)
        ++stats_.uncorrectable;

    ReadOutcome out;
    out.corrected = r.corrected;
    out.uncorrectable = r.uncorrectable;
    blob.resize(kCachelineBytes);
    out.data = std::move(blob);
    return out;
}

ReadOutcome
DataPath::readLine(Addr line_addr)
{
    return fetchDecoded(line_addr);
}

void
DataPath::writeLine(Addr line_addr, const std::vector<std::uint8_t> &data)
{
    store_.writeLine(line_addr, ecc_.encodeLine(data));
}

ReadOutcome
DataPath::strideRead(const std::vector<Addr> &line_addrs, unsigned sector,
                     unsigned unit)
{
    std::vector<std::vector<std::uint8_t>> lines;
    lines.reserve(line_addrs.size());
    ReadOutcome out;
    for (Addr a : line_addrs) {
        ReadOutcome one = fetchDecoded(a);
        out.corrected = out.corrected || one.corrected;
        out.uncorrectable = out.uncorrectable || one.uncorrectable;
        lines.push_back(std::move(one.data));
    }
    out.data = StrideGather::gather(lines, sector, unit);
    return out;
}

void
DataPath::strideWrite(const std::vector<Addr> &line_addrs, unsigned sector,
                      unsigned unit,
                      const std::vector<std::uint8_t> &stride_line)
{
    // Read-modify-write: decode each target line, patch the chunk,
    // re-encode. Mirrors SAM's requirement that strided writes keep
    // every touched codeword consistent.
    std::vector<std::vector<std::uint8_t>> lines;
    lines.reserve(line_addrs.size());
    for (Addr a : line_addrs)
        lines.push_back(fetchDecoded(a).data);

    StrideGather::scatter(stride_line, lines, sector, unit);

    for (std::size_t i = 0; i < line_addrs.size(); ++i)
        store_.writeLine(line_addrs[i], ecc_.encodeLine(lines[i]));
}

void
DataPath::writePartial(Addr line_addr,
                       const std::vector<std::uint8_t> &data,
                       std::uint8_t sector_mask, unsigned sector_bytes)
{
    sam_assert(data.size() >= kCachelineBytes, "short partial write");
    sam_assert(sector_bytes > 0 && kCachelineBytes % sector_bytes == 0,
               "bad sector size");
    std::vector<std::uint8_t> line = fetchDecoded(line_addr).data;
    const unsigned sectors = kCachelineBytes / sector_bytes;
    for (unsigned s = 0; s < sectors; ++s) {
        if (sector_mask & (1u << s)) {
            std::copy(data.begin() + s * sector_bytes,
                      data.begin() + (s + 1) * sector_bytes,
                      line.begin() + s * sector_bytes);
        }
    }
    store_.writeLine(line_addr, ecc_.encodeLine(line));
}

void
DataPath::failChip(unsigned chip)
{
    sam_assert(chip < ecc_.numChips(), "chip ", chip, " out of range");
    failedChips_.insert(chip);
}

} // namespace sam
