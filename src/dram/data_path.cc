#include "src/dram/data_path.hh"

#include "src/common/logging.hh"
#include "src/dram/io_buffer.hh"

namespace sam {

void
EccStats::registerIn(StatGroup &group) const
{
    group.addCounter("linesChecked", linesChecked, "lines ECC-checked");
    group.addCounter("correctedLines", correctedLines,
                     "lines with corrected errors");
    group.addCounter("correctedSymbols", correctedSymbols,
                     "total symbols corrected");
    group.addCounter("uncorrectable", uncorrectable,
                     "detected uncorrectable lines");
}

DataPath::DataPath(EccScheme scheme)
    : ecc_(scheme),
      store_(kCachelineBytes + EccEngine(scheme).parityBytesPerLine())
{
}

Addr
DataPath::resolved(Addr line_addr) const
{
    return ras_ ? ras_->resolve(line_addr) : line_addr;
}

ReadOutcome
DataPath::fetchDecoded(Addr line_addr, bool rmw)
{
    const Addr phys = resolved(line_addr);
    if (faults_)
        faults_->tick(now_, store_, ecc_);

    unsigned attempt = 0;
    for (;;) {
        auto blob = store_.readLine(phys);
        for (unsigned chip : failedChips_)
            ecc_.corruptChip(blob, chip);
        if (faults_)
            faults_->beforeDecode(phys, blob, ecc_);

        const EccLineResult r = ecc_.decodeLine(blob);
        ++stats_.linesChecked;

        if (!r.uncorrectable) {
            ReadOutcome out;
            out.retries = attempt;
            if (r.corrected) {
                ++stats_.correctedLines;
                stats_.correctedSymbols += r.symbolsCorrected;
                out.corrected = true;
                if (ras_ && !rmw) {
                    const auto act = ras_->onCorrected(line_addr, now_);
                    if (act.scrub) {
                        // Scrub: persist the healed blob. The caller
                        // records this as a real timed write.
                        store_.writeLine(phys, blob);
                        out.scrubbedLines.push_back(line_addr);
                    }
                    if (act.retire) {
                        // Leaky bucket says permanent: copy the healed
                        // data to a spare; future accesses remap.
                        const Addr spare = ras_->retireLine(line_addr);
                        if (spare != line_addr)
                            store_.writeLine(spare, blob);
                    }
                }
            }
            blob.resize(kCachelineBytes);
            out.data = std::move(blob);
            return out;
        }

        if (ras_ && ras_->onUncorrectable(line_addr, now_, attempt)) {
            ++attempt;
            continue; // re-read clears transient bus faults
        }

        // Detected-uncorrectable, retries exhausted (or no RAS
        // attached): the access fails. `uncorrectable` counts final
        // failures, not individual retry attempts.
        ++stats_.uncorrectable;
        ReadOutcome out;
        out.retries = attempt;
        out.uncorrectable = true;
        if (ras_) {
            out.poisoned = true;
            out.poisonBits = 1;
            ras_->onPoisoned(line_addr);
        }
        blob.resize(kCachelineBytes);
        out.data = std::move(blob);
        return out;
    }
}

ReadOutcome
DataPath::readLine(Addr line_addr)
{
    return fetchDecoded(line_addr);
}

void
DataPath::writeLine(Addr line_addr, const std::vector<std::uint8_t> &data)
{
    store_.writeLine(resolved(line_addr), ecc_.encodeLine(data));
}

ReadOutcome
DataPath::strideRead(const std::vector<Addr> &line_addrs, unsigned sector,
                     unsigned unit)
{
    std::vector<std::vector<std::uint8_t>> lines;
    lines.reserve(line_addrs.size());
    ReadOutcome out;
    for (std::size_t i = 0; i < line_addrs.size(); ++i) {
        ReadOutcome one = fetchDecoded(line_addrs[i]);
        out.corrected = out.corrected || one.corrected;
        out.uncorrectable = out.uncorrectable || one.uncorrectable;
        out.poisoned = out.poisoned || one.poisoned;
        out.retries += one.retries;
        if (one.poisoned)
            out.poisonBits |= std::uint32_t{1} << i;
        out.scrubbedLines.insert(out.scrubbedLines.end(),
                                 one.scrubbedLines.begin(),
                                 one.scrubbedLines.end());
        lines.push_back(std::move(one.data));
    }
    out.data = StrideGather::gather(lines, sector, unit);
    return out;
}

void
DataPath::strideWrite(const std::vector<Addr> &line_addrs, unsigned sector,
                      unsigned unit,
                      const std::vector<std::uint8_t> &stride_line)
{
    // Read-modify-write: decode each target line, patch the chunk,
    // re-encode. Mirrors SAM's requirement that strided writes keep
    // every touched codeword consistent.
    std::vector<std::vector<std::uint8_t>> lines;
    lines.reserve(line_addrs.size());
    for (Addr a : line_addrs)
        lines.push_back(fetchDecoded(a, /*rmw=*/true).data);

    StrideGather::scatter(stride_line, lines, sector, unit);

    for (std::size_t i = 0; i < line_addrs.size(); ++i) {
        store_.writeLine(resolved(line_addrs[i]),
                         ecc_.encodeLine(lines[i]));
    }
}

void
DataPath::writePartial(Addr line_addr,
                       const std::vector<std::uint8_t> &data,
                       std::uint8_t sector_mask, unsigned sector_bytes)
{
    sam_assert(data.size() >= kCachelineBytes, "short partial write");
    sam_assert(sector_bytes > 0 && kCachelineBytes % sector_bytes == 0,
               "bad sector size");
    std::vector<std::uint8_t> line =
        fetchDecoded(line_addr, /*rmw=*/true).data;
    const unsigned sectors = kCachelineBytes / sector_bytes;
    for (unsigned s = 0; s < sectors; ++s) {
        if (sector_mask & (1u << s)) {
            std::copy(data.begin() + s * sector_bytes,
                      data.begin() + (s + 1) * sector_bytes,
                      line.begin() + s * sector_bytes);
        }
    }
    store_.writeLine(resolved(line_addr), ecc_.encodeLine(line));
}

void
DataPath::failChip(unsigned chip)
{
    sam_assert(chip < ecc_.numChips(), "chip ", chip, " out of range");
    failedChips_.insert(chip);
}

} // namespace sam
