/**
 * @file
 * RAS (reliability/availability/serviceability) hook interfaces the
 * DataPath calls into on every functional access. The interfaces live
 * in the dram layer so the data path needs no dependency on the
 * concrete fault-injection machinery; `src/faults` provides the
 * implementations (FaultInjector, RasEngine) and `System` wires them
 * up.
 */

#ifndef SAM_DRAM_RAS_HOOKS_HH
#define SAM_DRAM_RAS_HOOKS_HH

#include <cstdint>
#include <vector>

#include "src/common/types.hh"

namespace sam {

class BackingStore;
class EccEngine;

/**
 * Live fault source attached to a rank. The data path calls tick()
 * once per access with the current phase-1 core clock (faults arrive
 * mid-run, not between runs) and beforeDecode() on every read attempt
 * so intermittent bus/pin faults can hit retried reads independently.
 */
class FaultInjectionHook
{
  public:
    virtual ~FaultInjectionHook() = default;

    /** Advance fault-model time; may corrupt stored blobs (FIT model). */
    virtual void tick(Cycle now, BackingStore &store,
                      const EccEngine &ecc) = 0;

    /**
     * Corrupt the in-flight blob of one read attempt (bus faults).
     * Returns true when the blob may have been modified -- a clean
     * line whose read returns false may skip ECC decode entirely.
     */
    virtual bool beforeDecode(Addr line, std::vector<std::uint8_t> &blob,
                              const EccEngine &ecc) = 0;
};

/**
 * Read-path RAS policy: scrub corrected errors, retry uncorrectable
 * ones, poison on exhaustion, and retire repeat offenders to spare
 * lines.
 */
class RasPolicy
{
  public:
    virtual ~RasPolicy() = default;

    /** What to do after a corrected error on `line`. */
    struct CorrectedDirective
    {
        bool scrub = false;   ///< Write the corrected blob back.
        bool retire = false;  ///< Leaky bucket overflowed: remap.
    };

    /** Map a logical line address to its current physical line. */
    virtual Addr resolve(Addr line) const = 0;

    virtual CorrectedDirective onCorrected(Addr line, Cycle now) = 0;

    /**
     * An attempt decoded as uncorrectable. Returns true to re-read
     * (bounded retry); false to give up and poison.
     */
    virtual bool onUncorrectable(Addr line, Cycle now,
                                 unsigned attempt) = 0;

    /** Retries exhausted: the returned data is poisoned. */
    virtual void onPoisoned(Addr line) = 0;

    /**
     * Allocate a spare for `line` and record the remap. Returns the
     * spare's address, or `line` itself when the spare pool is
     * exhausted (the caller then leaves the line in place).
     */
    virtual Addr retireLine(Addr line) = 0;
};

} // namespace sam

#endif // SAM_DRAM_RAS_HOOKS_HH
