/**
 * @file
 * Functional data path of one channel: ECC-encoded backing storage,
 * chip-failure injection, and the stride gather/scatter performed by the
 * SAM I/O structures. Timing lives in Device; this class moves the
 * actual bytes so simulated queries compute real results through real
 * codewords.
 */

#ifndef SAM_DRAM_DATA_PATH_HH
#define SAM_DRAM_DATA_PATH_HH

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "src/common/stats.hh"
#include "src/common/types.hh"
#include "src/dram/backing_store.hh"
#include "src/dram/ras_hooks.hh"
#include "src/ecc/ecc_engine.hh"

namespace sam {

/** ECC event counters for one channel. */
struct EccStats
{
    Counter linesChecked;
    Counter correctedLines;
    Counter correctedSymbols;
    Counter uncorrectable;

    void registerIn(StatGroup &group) const;
};

/** Outcome of a functional read. */
struct ReadOutcome
{
    std::vector<std::uint8_t> data;  ///< 64 corrected data bytes.
    bool corrected = false;
    bool uncorrectable = false;
    /** Uncorrectable survived the RAS retry budget: data is invalid. */
    bool poisoned = false;
    /** Re-read attempts spent across the access's source lines. */
    unsigned retries = 0;
    /**
     * Per-source-line poison bits: bit i set when source line i of a
     * stride gather is poisoned (bit 0 for regular reads).
     */
    std::uint32_t poisonBits = 0;
    /** Logical line addresses scrubbed (corrected data written back). */
    std::vector<Addr> scrubbedLines;
};

/**
 * Flag-only outcome of a zero-copy read: the 64 data bytes land in the
 * caller's buffer and scrubbed addresses (rare) are parked in
 * DataPath::lastScrubbedLines(), so the hot path allocates nothing.
 */
struct ReadFlags
{
    bool corrected = false;
    bool uncorrectable = false;
    bool poisoned = false;
    unsigned retries = 0;
    std::uint32_t poisonBits = 0;
    /** lastScrubbedLines() is non-empty for this access. */
    bool scrubbed = false;
};

class DataPath
{
  public:
    explicit DataPath(EccScheme scheme);

    /** Non-movable: the store borrows a pointer to ecc_ (see ctor). */
    DataPath(const DataPath &) = delete;
    DataPath &operator=(const DataPath &) = delete;

    const EccEngine &ecc() const { return ecc_; }
    EccScheme scheme() const { return ecc_.scheme(); }

    /** Read and ECC-check the 64B line at `line_addr` (64B aligned). */
    ReadOutcome readLine(Addr line_addr);

    /**
     * Zero-copy read: the corrected 64 data bytes are written to
     * `out64`. Scrubbed addresses are in lastScrubbedLines().
     */
    ReadFlags readLineInto(Addr line_addr, std::uint8_t *out64);

    /** Encode and store a full 64B line. */
    void writeLine(Addr line_addr, const std::vector<std::uint8_t> &data);

    /**
     * Stride-mode read: gather chunk `sector` of each source line into
     * one 64B strided line (Section 4.2). Sources are ECC-checked; a
     * failed chip is corrected exactly as in regular mode, which is
     * SAM's chipkill-compatibility property.
     */
    ReadOutcome strideRead(const std::vector<Addr> &line_addrs,
                           unsigned sector, unsigned unit);

    /** Span-based stride read (no line-list copy). */
    ReadOutcome strideRead(const Addr *line_addrs, std::size_t count,
                           unsigned sector, unsigned unit);

    /** Zero-copy stride read over a borrowed address span. */
    ReadFlags strideReadInto(const Addr *line_addrs, std::size_t count,
                             unsigned sector, unsigned unit,
                             std::uint8_t *out64);

    /**
     * Stride-mode write: scatter the chunks of `stride_line` into chunk
     * slot `sector` of each source line (read-modify-write with
     * re-encode).
     */
    void strideWrite(const std::vector<Addr> &line_addrs, unsigned sector,
                     unsigned unit,
                     const std::vector<std::uint8_t> &stride_line);

    /** Span-based stride write (no line-list or data copies). */
    void strideWrite(const Addr *line_addrs, std::size_t count,
                     unsigned sector, unsigned unit,
                     const std::uint8_t *stride_line);

    /**
     * Partial line write (a sector-cache writeback with only some
     * sectors dirty): read-modify-write the masked sectors. `data64`
     * is a full 64B line image.
     */
    void writePartial(Addr line_addr, const std::uint8_t *data64,
                      std::uint8_t sector_mask, unsigned sector_bytes);

    /**
     * Mark a chip as permanently failed: every subsequent read sees its
     * contribution inverted (stuck-at-complement fault model).
     */
    void failChip(unsigned chip);

    /** Clear injected chip failures. */
    void clearChipFailures() { failedChips_.clear(); }

    const std::set<unsigned> &failedChips() const { return failedChips_; }

    const EccStats &stats() const { return stats_; }
    BackingStore &store() { return store_; }

    /**
     * Logical addresses scrubbed by the most recent readLineInto /
     * strideReadInto call (valid until the next read).
     */
    const std::vector<Addr> &lastScrubbedLines() const
    {
        return scrubbed_;
    }

    /**
     * Enable/disable the clean-line decode fast path (on by default).
     * Exists so tests can force the full decode and prove the fast
     * path is observation-equivalent.
     */
    void setCleanFastPath(bool on) { fastPath_ = on; }
    bool cleanFastPath() const { return fastPath_; }

    // ----- RAS integration ------------------------------------------
    /** Attach a live fault source (nullptr detaches). */
    void setFaultHook(FaultInjectionHook *hook) { faults_ = hook; }

    /** Attach the read-path RAS policy (nullptr detaches). */
    void setRasPolicy(RasPolicy *ras) { ras_ = ras; }

    /**
     * Advance the data path's notion of phase-1 time (drives the fault
     * injector and the error log's leaky buckets). Monotone within a
     * run; beginRun() rewinds it for the next run's core clocks.
     */
    void setNow(Cycle now) { now_ = std::max(now_, now); }

    /** Start a new query run: core clocks restart at zero. */
    void beginRun() { now_ = 0; }

    Cycle now() const { return now_; }

  private:
    /**
     * Fetch blob with failures applied, decode, account stats, and run
     * the RAS read path (inject / retry / scrub / retire / poison).
     * Writes the 64 corrected data bytes to `out64`; scrub addresses
     * are appended to scrubbed_ (the public entry points clear it).
     * `rmw` suppresses scrubbing: the caller immediately overwrites
     * the line, which heals it anyway.
     *
     * Fast path: a line whose stored blob carries the clean tag, with
     * no failed chips and no in-flight fault injection, provably
     * decodes Clean -- the decode is skipped and only the counters a
     * Clean decode would bump are advanced.
     */
    ReadFlags fetchInto(Addr line_addr, std::uint8_t *out64,
                        bool rmw = false);

    /** Current physical location of a logical line (RAS remap). */
    Addr resolved(Addr line_addr) const;

    EccEngine ecc_;
    BackingStore store_;
    std::set<unsigned> failedChips_;
    EccStats stats_;
    FaultInjectionHook *faults_ = nullptr;
    RasPolicy *ras_ = nullptr;
    Cycle now_ = 0;
    bool fastPath_ = true;
    /** Reused decode scratch (blob bytes of the line being read). */
    Blob blobScratch_;
    /** Reused encode scratch (blob bytes of the line being written). */
    Blob encodeScratch_;
    /** Scrub addresses of the most recent read (usually empty). */
    std::vector<Addr> scrubbed_;
};

} // namespace sam

#endif // SAM_DRAM_DATA_PATH_HH
