#include "src/dram/command.hh"

#include <sstream>

#include "src/common/logging.hh"

namespace sam {

std::string
cmdKindName(CmdKind kind)
{
    switch (kind) {
      case CmdKind::Act:        return "ACT";
      case CmdKind::Pre:        return "PRE";
      case CmdKind::Rd:         return "RD";
      case CmdKind::Wr:         return "WR";
      case CmdKind::Ref:        return "REF";
      case CmdKind::ModeSwitch: return "MODE";
    }
    panic("unknown CmdKind");
}

std::string
Command::str() const
{
    std::ostringstream oss;
    oss << cmdKindName(kind) << " ch" << addr.channel << " rk"
        << addr.rank;
    switch (kind) {
      case CmdKind::Ref:
        break;
      case CmdKind::ModeSwitch:
        oss << (mode == AccessMode::Stride ? " ->stride" : " ->regular");
        break;
      case CmdKind::Rd:
      case CmdKind::Wr:
        oss << " bg" << addr.bankGroup << " bk" << addr.bank << " row"
            << addr.row << " col" << addr.column
            << (mode == AccessMode::Stride ? " (stride)" : "");
        break;
      case CmdKind::Act:
      case CmdKind::Pre:
        oss << " bg" << addr.bankGroup << " bk" << addr.bank << " row"
            << addr.row;
        break;
    }
    oss << " @" << at;
    return oss.str();
}

} // namespace sam
