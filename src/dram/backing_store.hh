/**
 * @file
 * Sparse functional byte storage for the simulated memory.
 *
 * Lines are stored ECC-encoded (data + parity blob) exactly as a real
 * rank would hold them, so chip-failure injection corrupts stored state
 * and the ECC engine's correction is exercised on the actual data path.
 */

#ifndef SAM_DRAM_BACKING_STORE_HH
#define SAM_DRAM_BACKING_STORE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/random.hh"
#include "src/common/types.hh"

namespace sam {

/**
 * Sparse page-granular byte store addressed by flat physical address.
 * Unwritten bytes read as zero.
 */
class BackingStore
{
  public:
    /** @param blob_bytes Stored bytes per 64B line (data + parity). */
    explicit BackingStore(unsigned blob_bytes)
        : blobBytes_(blob_bytes)
    {}

    unsigned blobBytes() const { return blobBytes_; }

    /**
     * Read the stored blob for the line containing `line_addr` (must be
     * 64B aligned in data-address space).
     */
    std::vector<std::uint8_t> readLine(Addr line_addr) const;

    /** Store a blob for an aligned line address. */
    void writeLine(Addr line_addr, const std::vector<std::uint8_t> &blob);

    /** True if the line was ever written. */
    bool contains(Addr line_addr) const;

    /**
     * XOR a mask into stored bytes of a line (error injection). A
     * never-written line is materialized zero-filled first, so faults
     * land on untouched addresses instead of being silently dropped
     * relative to the all-zero read value.
     */
    void corruptLine(Addr line_addr,
                     const std::vector<std::uint8_t> &xor_mask);

    /** Number of distinct lines stored. */
    std::size_t lineCount() const { return lines_.size(); }

    /**
     * Pick a uniformly random stored line address (fault-injection
     * target selection). lineCount() must be nonzero.
     */
    Addr sampleLine(Rng &rng) const;

  private:
    unsigned blobBytes_;
    std::unordered_map<Addr, std::vector<std::uint8_t>> lines_;
    /** Insertion-order line addresses for O(1) uniform sampling. */
    std::vector<Addr> order_;
};

} // namespace sam

#endif // SAM_DRAM_BACKING_STORE_HH
