/**
 * @file
 * Sparse functional byte storage for the simulated memory.
 *
 * Lines are stored ECC-encoded (data + parity blob) exactly as a real
 * rank would hold them, so chip-failure injection corrupts stored state
 * and the ECC engine's correction is exercised on the actual data path.
 *
 * The store is layered for campaign sharing: installed snapshots are
 * immutable base layers held by shared pointer (a materialized table is
 * encoded once and installed into many systems in O(1)), and every
 * write lands in a small per-store overlay checked first on reads.
 * Corruption copies-on-write into the overlay, so injected faults never
 * leak into sibling systems sharing the same snapshot.
 *
 * Every stored line carries a clean tag: set when the blob is known to
 * be intact encoder output (a DataPath write or a verified scrub),
 * cleared by corruptLine. The DataPath's clean-line fast path uses it
 * to skip ECC decode on lines no fault ever touched.
 */

#ifndef SAM_DRAM_BACKING_STORE_HH
#define SAM_DRAM_BACKING_STORE_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/random.hh"
#include "src/common/types.hh"

namespace sam {

class EccEngine;

/** One stored line's encoded bytes (data + parity). */
using Blob = std::vector<std::uint8_t>;
using BlobPtr = std::shared_ptr<const Blob>;

/**
 * An immutable capture of a store's contents in insertion order,
 * shareable across stores and threads.
 *
 * Table materialization appends lines in ascending address order, so
 * lookup is served by a handful of dense extents (base + count ->
 * slot range) instead of a per-line hash map -- at paper scale the map
 * alone would cost gigabytes. Irregular appends fall back to a lazily
 * built index; `find` is the only lookup path either way.
 *
 * Blob bytes live in one flat arena (blobBytes per slot, slot-major)
 * rather than a heap vector per line: a paper-scale table runs to
 * millions of lines, and per-line blob allocations dominated snapshot
 * construction before the arena.
 */
struct StoreSnapshot
{
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    /** One run of consecutive 64B lines occupying consecutive slots. */
    struct Extent
    {
        Addr base = 0;
        std::size_t count = 0;
        std::size_t firstSlot = 0;
    };

    /** Line addresses in insertion (slot) order. */
    std::vector<Addr> addrs;
    /** Parallel to `addrs`: blob is intact encoder output. */
    std::vector<bool> clean;
    /** Stored bytes per line (data + parity); set before appending. */
    unsigned blobBytes = 0;
    /**
     * Slots hold real data bytes but zero-filled parity: the builder
     * skipped the ECC encode (the dominant table-materialization cost)
     * because almost no line's parity is ever observed. Consumers that
     * do need the full codeword (fault corruption, decode under
     * injection, snapshot capture) reconstruct it on demand through the
     * owning store's parity encoder -- the encoder is deterministic, so
     * the reconstructed bytes are identical to an eager encode.
     */
    bool lazyParity = false;
    /** Blob bytes of every slot, blobBytes apiece. */
    std::vector<std::uint8_t> arena;

    std::size_t size() const { return addrs.size(); }

    const std::uint8_t *blob(std::size_t slot) const
    {
        return arena.data() + slot * blobBytes;
    }

    void append(Addr addr, const std::uint8_t *blob_bytes,
                bool is_clean);

    /**
     * Append `count` consecutive clean lines starting at `base` in one
     * step, zero-filling their arena slots, and return the first slot.
     * The bulk path behind parallel table encode: the snapshot's
     * address/extent structure is laid out up front, then worker
     * threads encode directly into the slots via mutableBlob() --
     * byte-identical to count ascending append() calls regardless of
     * how the slot range is divided among threads. Same ordering
     * contract as append(): `base` must not precede the last extent.
     */
    std::size_t appendDenseRows(Addr base, std::size_t count);

    /** Mutable blob bytes of `slot` (parallel snapshot construction). */
    std::uint8_t *mutableBlob(std::size_t slot)
    {
        return arena.data() + slot * blobBytes;
    }

    /** Slot of `addr`, or npos if absent. */
    std::size_t find(Addr addr) const;

  private:
    /** Ascending extents; authoritative while `dense_` holds. */
    std::vector<Extent> extents_;
    bool dense_ = true;
    /** Fallback index, built on the first out-of-order append. */
    std::unordered_map<Addr, std::size_t> index_;
};

/**
 * Sparse page-granular byte store addressed by flat physical address.
 * Unwritten bytes read as zero.
 */
class BackingStore
{
  public:
    /**
     * Borrowed view of one stored line. `data` points at the blob's
     * bytes (valid until the next store mutation) or is null for a
     * never-written line, which reads as all zero -- the all-zero blob
     * of every supported (linear) scheme is a valid codeword, so such
     * lines are clean by construction.
     */
    struct LineRef
    {
        const std::uint8_t *data = nullptr;
        bool clean = true;
        /**
         * The parity bytes of `data` are zero placeholders from a
         * lazy-parity snapshot layer; the first 64 data bytes are
         * real. Callers that consume the full codeword must re-encode
         * from the data bytes instead of trusting the tail.
         */
        bool lazyParity = false;
    };

    /** @param blob_bytes Stored bytes per 64B line (data + parity). */
    explicit BackingStore(unsigned blob_bytes)
        : blobBytes_(blob_bytes)
    {}

    unsigned blobBytes() const { return blobBytes_; }

    /**
     * Read the stored blob for the line containing `line_addr` (must be
     * 64B aligned in data-address space).
     */
    std::vector<std::uint8_t> readLine(Addr line_addr) const;

    /** Borrow the stored blob and clean tag without copying. */
    LineRef refLine(Addr line_addr) const;

    /**
     * Store a blob for an aligned line address. `clean` asserts the
     * blob is intact encoder output (enables the decode fast path);
     * raw byte stores must leave it false.
     */
    void writeLine(Addr line_addr, const std::vector<std::uint8_t> &blob,
                   bool clean = false);

    /**
     * Store a blob from a raw pointer of blobBytes() bytes,
     * allocation-free when the line is already in the overlay (the
     * blob is copied into the overlay arena). The hot write path.
     */
    void writeLine(Addr line_addr, const std::uint8_t *blob,
                   bool clean = false);

    /** True if the line was ever written. */
    bool contains(Addr line_addr) const;

    /**
     * XOR a mask into stored bytes of a line (error injection). A
     * never-written line is materialized zero-filled first, so faults
     * land on untouched addresses instead of being silently dropped
     * relative to the all-zero read value. Clears the clean tag.
     */
    void corruptLine(Addr line_addr,
                     const std::vector<std::uint8_t> &xor_mask);

    /** Number of distinct lines stored. */
    std::size_t lineCount() const;

    /**
     * Pick a uniformly random stored line address (fault-injection
     * target selection). lineCount() must be nonzero.
     */
    Addr sampleLine(Rng &rng) const;

    /** Capture every stored line, in insertion order. */
    StoreSnapshot snapshot() const;

    /**
     * Mount a snapshot as an immutable base layer (O(1): the blobs and
     * the index are shared, not copied). Re-installing a snapshot that
     * is already mounted reverts any overlay writes to its lines (the
     * dirty-table rebuild path). Layers are expected to cover disjoint
     * address ranges (each table layout has its own base address).
     */
    void install(std::shared_ptr<const StoreSnapshot> snap);

    /**
     * Encoder used to reconstruct the parity of lazy-parity layer
     * lines on demand (readLine, corruptLine, snapshot). The pointer
     * is borrowed; the DataPath that owns this store installs its own
     * engine and outlives it. Required before any lazy-parity snapshot
     * line is materialized.
     */
    void setParityEncoder(const EccEngine *ecc) { parityEcc_ = ecc; }

  private:
    /** An overlay line's blob plus its clean tag. */
    struct OverlayLine
    {
        /** Byte offset of the blob in arena_. */
        std::size_t offset = 0;
        bool clean = false;
    };

    /**
     * Write the full codeword of a layer line into `dst` (blobBytes_
     * bytes), re-encoding the parity if the layer is lazy.
     */
    void materializeBlob(const StoreSnapshot &layer, std::size_t slot,
                         std::uint8_t *dst) const;

    /** The overlay line for `addr`, or null if untouched. */
    const OverlayLine *findOverlay(Addr addr) const;
    /** The layer slot for `addr`, or null if no layer holds it. */
    const StoreSnapshot *findLayer(Addr addr, std::size_t &slot) const;
    bool inAnyLayer(Addr addr) const;

    unsigned blobBytes_;
    /** Borrowed parity encoder for lazy-parity layers (may be null). */
    const EccEngine *parityEcc_ = nullptr;
    /** Immutable shared base layers, oldest first. */
    std::vector<std::shared_ptr<const StoreSnapshot>> layers_;
    /** Lines written (or corrupted) in this store; checked first. */
    std::unordered_map<Addr, OverlayLine> overlay_;
    /**
     * Blob bytes of every overlay line, blobBytes_ per slot. One flat
     * allocation instead of a heap vector per written line: the write
     * path (writebacks, strided RMW) is the hottest store mutation in
     * a campaign. Slots orphaned by install()'s overlay revert are
     * simply leaked until the store dies -- reverts are rare and the
     * arena is per-system scratch, not shared state.
     */
    std::vector<std::uint8_t> arena_;
    /**
     * Insertion order of every overlay line (the deterministic
     * iteration view of overlay_ -- hash order must never become
     * observable, see sam-determinism in tools/samlint).
     */
    std::vector<Addr> overlayAll_;
    /** Insertion order of overlay lines not covered by any layer. */
    std::vector<Addr> overlayOrder_;
};

} // namespace sam

#endif // SAM_DRAM_BACKING_STORE_HH
