/**
 * @file
 * Sparse functional byte storage for the simulated memory.
 *
 * Lines are stored ECC-encoded (data + parity blob) exactly as a real
 * rank would hold them, so chip-failure injection corrupts stored state
 * and the ECC engine's correction is exercised on the actual data path.
 *
 * The store is layered for campaign sharing: installed snapshots are
 * immutable base layers held by shared pointer (a materialized table is
 * encoded once and installed into many systems in O(1)), and every
 * write lands in a small per-store overlay checked first on reads.
 * Corruption copies-on-write into the overlay, so injected faults never
 * leak into sibling systems sharing the same snapshot.
 */

#ifndef SAM_DRAM_BACKING_STORE_HH
#define SAM_DRAM_BACKING_STORE_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/random.hh"
#include "src/common/types.hh"

namespace sam {

/** One stored line's encoded bytes (data + parity). */
using Blob = std::vector<std::uint8_t>;
using BlobPtr = std::shared_ptr<const Blob>;

/**
 * An immutable capture of a store's contents in insertion order,
 * shareable across stores and threads. `index` maps a line address to
 * its position in `lines`.
 */
struct StoreSnapshot
{
    std::vector<std::pair<Addr, BlobPtr>> lines;
    std::unordered_map<Addr, std::size_t> index;

    void
    append(Addr addr, BlobPtr blob)
    {
        index.emplace(addr, lines.size());
        lines.emplace_back(addr, std::move(blob));
    }
};

/**
 * Sparse page-granular byte store addressed by flat physical address.
 * Unwritten bytes read as zero.
 */
class BackingStore
{
  public:
    /** @param blob_bytes Stored bytes per 64B line (data + parity). */
    explicit BackingStore(unsigned blob_bytes)
        : blobBytes_(blob_bytes)
    {}

    unsigned blobBytes() const { return blobBytes_; }

    /**
     * Read the stored blob for the line containing `line_addr` (must be
     * 64B aligned in data-address space).
     */
    std::vector<std::uint8_t> readLine(Addr line_addr) const;

    /** Store a blob for an aligned line address. */
    void writeLine(Addr line_addr, const std::vector<std::uint8_t> &blob);

    /** True if the line was ever written. */
    bool contains(Addr line_addr) const;

    /**
     * XOR a mask into stored bytes of a line (error injection). A
     * never-written line is materialized zero-filled first, so faults
     * land on untouched addresses instead of being silently dropped
     * relative to the all-zero read value.
     */
    void corruptLine(Addr line_addr,
                     const std::vector<std::uint8_t> &xor_mask);

    /** Number of distinct lines stored. */
    std::size_t lineCount() const;

    /**
     * Pick a uniformly random stored line address (fault-injection
     * target selection). lineCount() must be nonzero.
     */
    Addr sampleLine(Rng &rng) const;

    /** Capture every stored line, in insertion order. */
    StoreSnapshot snapshot() const;

    /**
     * Mount a snapshot as an immutable base layer (O(1): the blobs and
     * the index are shared, not copied). Re-installing a snapshot that
     * is already mounted reverts any overlay writes to its lines (the
     * dirty-table rebuild path). Layers are expected to cover disjoint
     * address ranges (each table layout has its own base address).
     */
    void install(std::shared_ptr<const StoreSnapshot> snap);

  private:
    /** The overlay blob for `addr`, or null if untouched. */
    const BlobPtr *findOverlay(Addr addr) const;
    /** The layer blob for `addr`, or null if no layer holds it. */
    const BlobPtr *findLayer(Addr addr) const;
    bool inAnyLayer(Addr addr) const;

    unsigned blobBytes_;
    /** Immutable shared base layers, oldest first. */
    std::vector<std::shared_ptr<const StoreSnapshot>> layers_;
    /** Lines written (or corrupted) in this store; checked first. */
    std::unordered_map<Addr, BlobPtr> overlay_;
    /**
     * Insertion order of every overlay line (the deterministic
     * iteration view of overlay_ -- hash order must never become
     * observable, see sam-determinism in tools/samlint).
     */
    std::vector<Addr> overlayAll_;
    /** Insertion order of overlay lines not covered by any layer. */
    std::vector<Addr> overlayOrder_;
};

} // namespace sam

#endif // SAM_DRAM_BACKING_STORE_HH
