#include "src/dram/backing_store.hh"

#include <algorithm>

#include "src/common/logging.hh"

namespace sam {

const BlobPtr *
BackingStore::findOverlay(Addr addr) const
{
    if (overlay_.empty())
        return nullptr;
    auto it = overlay_.find(addr);
    return it != overlay_.end() ? &it->second : nullptr;
}

const BlobPtr *
BackingStore::findLayer(Addr addr) const
{
    // Newest layer wins (matters only if layers ever overlapped).
    for (auto layer = layers_.rbegin(); layer != layers_.rend();
         ++layer) {
        auto it = (*layer)->index.find(addr);
        if (it != (*layer)->index.end())
            return &(*layer)->lines[it->second].second;
    }
    return nullptr;
}

bool
BackingStore::inAnyLayer(Addr addr) const
{
    return findLayer(addr) != nullptr;
}

std::vector<std::uint8_t>
BackingStore::readLine(Addr line_addr) const
{
    sam_assert(line_addr % kCachelineBytes == 0,
               "unaligned line read: ", line_addr);
    if (const BlobPtr *b = findOverlay(line_addr))
        return **b;
    if (const BlobPtr *b = findLayer(line_addr))
        return **b;
    return std::vector<std::uint8_t>(blobBytes_, 0);
}

void
BackingStore::writeLine(Addr line_addr,
                        const std::vector<std::uint8_t> &blob)
{
    sam_assert(line_addr % kCachelineBytes == 0,
               "unaligned line write: ", line_addr);
    sam_assert(blob.size() == blobBytes_,
               "blob size mismatch: ", blob.size(), " vs ", blobBytes_);
    auto [it, inserted] =
        overlay_.try_emplace(line_addr,
                             std::make_shared<const Blob>(blob));
    if (inserted) {
        overlayAll_.push_back(line_addr);
        if (!inAnyLayer(line_addr))
            overlayOrder_.push_back(line_addr);
    } else {
        it->second = std::make_shared<const Blob>(blob);
    }
}

bool
BackingStore::contains(Addr line_addr) const
{
    return findOverlay(line_addr) != nullptr || inAnyLayer(line_addr);
}

void
BackingStore::corruptLine(Addr line_addr,
                          const std::vector<std::uint8_t> &xor_mask)
{
    sam_assert(line_addr % kCachelineBytes == 0,
               "unaligned line corrupt: ", line_addr);
    sam_assert(xor_mask.size() == blobBytes_, "mask size mismatch");
    // Copy-on-write into the overlay: the current blob may be shared
    // with a table snapshot installed into other systems.
    Blob corrupted = readLine(line_addr);
    for (std::size_t i = 0; i < blobBytes_; ++i)
        corrupted[i] ^= xor_mask[i];
    auto [it, inserted] = overlay_.insert_or_assign(
        line_addr, std::make_shared<const Blob>(std::move(corrupted)));
    if (inserted) {
        overlayAll_.push_back(line_addr);
        if (!inAnyLayer(line_addr))
            overlayOrder_.push_back(line_addr);
    }
}

std::size_t
BackingStore::lineCount() const
{
    std::size_t n = overlayOrder_.size();
    for (const auto &layer : layers_)
        n += layer->lines.size();
    return n;
}

Addr
BackingStore::sampleLine(Rng &rng) const
{
    sam_assert(lineCount() > 0, "sampleLine on empty store");
    std::size_t idx = rng.below(lineCount());
    for (const auto &layer : layers_) {
        if (idx < layer->lines.size())
            return layer->lines[idx].first;
        idx -= layer->lines.size();
    }
    return overlayOrder_[idx];
}

StoreSnapshot
BackingStore::snapshot() const
{
    StoreSnapshot snap;
    snap.lines.reserve(lineCount());
    for (const auto &layer : layers_) {
        for (const auto &[addr, blob] : layer->lines) {
            if (const BlobPtr *b = findOverlay(addr))
                snap.append(addr, *b);
            else
                snap.append(addr, blob);
        }
    }
    for (Addr addr : overlayOrder_) {
        auto it = overlay_.find(addr);
        sam_assert(it != overlay_.end(), "order/overlay mismatch");
        snap.append(addr, it->second);
    }
    return snap;
}

void
BackingStore::install(std::shared_ptr<const StoreSnapshot> snap)
{
    sam_assert(snap != nullptr, "installing a null snapshot");
    sam_assert(snap->lines.empty() ||
                   snap->lines.front().second->size() == blobBytes_,
               "snapshot blob size mismatch");
    // Revert overlay writes to lines the snapshot covers, so a
    // re-install after a write query restores the clean table. Walk
    // overlayAll_ (insertion order), not overlay_ itself: hash-order
    // iteration is flagged by sam-determinism, and although the erase
    // set is order-independent today, keeping hash order unobservable
    // is the invariant the bit-identity guarantee rests on.
    if (!overlay_.empty()) {
        const auto covered = [&](Addr a) {
            return snap->index.count(a) != 0;
        };
        bool erased = false;
        for (Addr a : overlayAll_) {
            if (covered(a))
                erased = overlay_.erase(a) != 0 || erased;
        }
        if (erased) {
            overlayAll_.erase(std::remove_if(overlayAll_.begin(),
                                             overlayAll_.end(), covered),
                              overlayAll_.end());
            overlayOrder_.erase(
                std::remove_if(overlayOrder_.begin(), overlayOrder_.end(),
                               covered),
                overlayOrder_.end());
        }
    }
    for (const auto &layer : layers_) {
        if (layer == snap)
            return; // already mounted; overlay revert was the point
    }
    layers_.push_back(std::move(snap));
}

} // namespace sam
