#include "src/dram/backing_store.hh"

#include "src/common/logging.hh"

namespace sam {

std::vector<std::uint8_t>
BackingStore::readLine(Addr line_addr) const
{
    sam_assert(line_addr % kCachelineBytes == 0,
               "unaligned line read: ", line_addr);
    auto it = lines_.find(line_addr);
    if (it == lines_.end())
        return std::vector<std::uint8_t>(blobBytes_, 0);
    return it->second;
}

void
BackingStore::writeLine(Addr line_addr,
                        const std::vector<std::uint8_t> &blob)
{
    sam_assert(line_addr % kCachelineBytes == 0,
               "unaligned line write: ", line_addr);
    sam_assert(blob.size() == blobBytes_,
               "blob size mismatch: ", blob.size(), " vs ", blobBytes_);
    auto [it, inserted] = lines_.try_emplace(line_addr, blob);
    if (inserted)
        order_.push_back(line_addr);
    else
        it->second = blob;
}

bool
BackingStore::contains(Addr line_addr) const
{
    return lines_.find(line_addr) != lines_.end();
}

void
BackingStore::corruptLine(Addr line_addr,
                          const std::vector<std::uint8_t> &xor_mask)
{
    sam_assert(line_addr % kCachelineBytes == 0,
               "unaligned line corrupt: ", line_addr);
    sam_assert(xor_mask.size() == blobBytes_, "mask size mismatch");
    auto [it, inserted] = lines_.try_emplace(
        line_addr, std::vector<std::uint8_t>(blobBytes_, 0));
    if (inserted)
        order_.push_back(line_addr);
    for (std::size_t i = 0; i < blobBytes_; ++i)
        it->second[i] ^= xor_mask[i];
}

Addr
BackingStore::sampleLine(Rng &rng) const
{
    sam_assert(!order_.empty(), "sampleLine on empty store");
    return order_[rng.below(order_.size())];
}

} // namespace sam
