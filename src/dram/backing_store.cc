#include "src/dram/backing_store.hh"

#include <algorithm>
#include <cstring>

#include "src/common/logging.hh"
#include "src/ecc/ecc_engine.hh"

namespace sam {

void
StoreSnapshot::append(Addr addr, const std::uint8_t *blob_bytes,
                      bool is_clean)
{
    sam_assert(blobBytes > 0, "append before blobBytes is set");
    const std::size_t slot = addrs.size();
    if (dense_) {
        if (!extents_.empty() &&
            addr == extents_.back().base +
                        extents_.back().count * kCachelineBytes) {
            ++extents_.back().count;
        } else if (extents_.empty() ||
                   addr > extents_.back().base +
                              extents_.back().count * kCachelineBytes) {
            extents_.push_back(Extent{addr, 1, slot});
        } else {
            // Out-of-order append: fall back to a hash index built
            // from everything stored so far.
            dense_ = false;
            index_.reserve(slot + 1);
            for (std::size_t i = 0; i < slot; ++i)
                index_.emplace(addrs[i], i);
            extents_.clear();
        }
    }
    if (!dense_)
        index_.emplace(addr, slot);
    addrs.push_back(addr);
    arena.insert(arena.end(), blob_bytes, blob_bytes + blobBytes);
    clean.push_back(is_clean);
}

std::size_t
StoreSnapshot::appendDenseRows(Addr base, std::size_t count)
{
    sam_assert(blobBytes > 0, "append before blobBytes is set");
    sam_assert(base % kCachelineBytes == 0, "unaligned dense base");
    if (count == 0)
        return addrs.size();
    const std::size_t first = addrs.size();
    if (dense_) {
        if (!extents_.empty() &&
            base == extents_.back().base +
                        extents_.back().count * kCachelineBytes) {
            extents_.back().count += count;
        } else if (extents_.empty() ||
                   base > extents_.back().base +
                              extents_.back().count * kCachelineBytes) {
            extents_.push_back(Extent{base, count, first});
        } else {
            panic("appendDenseRows out of ascending order");
        }
    } else {
        for (std::size_t i = 0; i < count; ++i)
            index_.emplace(base + i * kCachelineBytes, first + i);
    }
    addrs.reserve(first + count);
    for (std::size_t i = 0; i < count; ++i)
        addrs.push_back(base + i * kCachelineBytes);
    clean.resize(first + count, true);
    arena.resize((first + count) * blobBytes, 0);
    return first;
}

std::size_t
StoreSnapshot::find(Addr addr) const
{
    if (dense_) {
        // Last extent with base <= addr.
        auto it = std::upper_bound(
            extents_.begin(), extents_.end(), addr,
            [](Addr a, const Extent &e) { return a < e.base; });
        if (it == extents_.begin())
            return npos;
        --it;
        const Addr off = addr - it->base;
        if (off % kCachelineBytes != 0 ||
            off / kCachelineBytes >= it->count) {
            return npos;
        }
        return it->firstSlot + off / kCachelineBytes;
    }
    auto it = index_.find(addr);
    return it != index_.end() ? it->second : npos;
}

void
BackingStore::materializeBlob(const StoreSnapshot &layer,
                              std::size_t slot, std::uint8_t *dst) const
{
    const std::uint8_t *src = layer.blob(slot);
    if (!layer.lazyParity || blobBytes_ <= kCachelineBytes) {
        std::memcpy(dst, src, blobBytes_);
        return;
    }
    sam_assert(parityEcc_ != nullptr,
               "lazy-parity layer line touched with no parity encoder");
    parityEcc_->encodeLineInto(src, dst);
}

const BackingStore::OverlayLine *
BackingStore::findOverlay(Addr addr) const
{
    if (overlay_.empty())
        return nullptr;
    auto it = overlay_.find(addr);
    return it != overlay_.end() ? &it->second : nullptr;
}

const StoreSnapshot *
BackingStore::findLayer(Addr addr, std::size_t &slot) const
{
    // Newest layer wins (matters only if layers ever overlapped).
    for (auto layer = layers_.rbegin(); layer != layers_.rend();
         ++layer) {
        const std::size_t s = (*layer)->find(addr);
        if (s != StoreSnapshot::npos) {
            slot = s;
            return layer->get();
        }
    }
    return nullptr;
}

bool
BackingStore::inAnyLayer(Addr addr) const
{
    std::size_t slot = 0;
    return findLayer(addr, slot) != nullptr;
}

std::vector<std::uint8_t>
BackingStore::readLine(Addr line_addr) const
{
    sam_assert(line_addr % kCachelineBytes == 0,
               "unaligned line read: ", line_addr);
    if (const OverlayLine *o = findOverlay(line_addr)) {
        const std::uint8_t *p = arena_.data() + o->offset;
        return std::vector<std::uint8_t>(p, p + blobBytes_);
    }
    std::size_t slot = 0;
    if (const StoreSnapshot *layer = findLayer(line_addr, slot)) {
        std::vector<std::uint8_t> blob(blobBytes_);
        materializeBlob(*layer, slot, blob.data());
        return blob;
    }
    return std::vector<std::uint8_t>(blobBytes_, 0);
}

BackingStore::LineRef
BackingStore::refLine(Addr line_addr) const
{
    sam_assert(line_addr % kCachelineBytes == 0,
               "unaligned line read: ", line_addr);
    if (const OverlayLine *o = findOverlay(line_addr))
        return LineRef{arena_.data() + o->offset, o->clean};
    std::size_t slot = 0;
    if (const StoreSnapshot *layer = findLayer(line_addr, slot)) {
        return LineRef{layer->blob(slot), layer->clean[slot],
                       layer->lazyParity &&
                           blobBytes_ > kCachelineBytes};
    }
    return LineRef{};
}

void
BackingStore::writeLine(Addr line_addr,
                        const std::vector<std::uint8_t> &blob, bool clean)
{
    sam_assert(blob.size() == blobBytes_,
               "blob size mismatch: ", blob.size(), " vs ", blobBytes_);
    writeLine(line_addr, blob.data(), clean);
}

void
BackingStore::writeLine(Addr line_addr, const std::uint8_t *blob,
                        bool clean)
{
    sam_assert(line_addr % kCachelineBytes == 0,
               "unaligned line write: ", line_addr);
    auto [it, inserted] =
        overlay_.try_emplace(line_addr, OverlayLine{arena_.size(), clean});
    if (inserted) {
        arena_.insert(arena_.end(), blob, blob + blobBytes_);
        overlayAll_.push_back(line_addr);
        if (!inAnyLayer(line_addr))
            overlayOrder_.push_back(line_addr);
    } else {
        // Rewrite in place: the arena slot is exclusively ours
        // (snapshots copy out of the arena, they never alias it).
        std::memcpy(arena_.data() + it->second.offset, blob, blobBytes_);
        it->second.clean = clean;
    }
}

bool
BackingStore::contains(Addr line_addr) const
{
    return findOverlay(line_addr) != nullptr || inAnyLayer(line_addr);
}

void
BackingStore::corruptLine(Addr line_addr,
                          const std::vector<std::uint8_t> &xor_mask)
{
    sam_assert(line_addr % kCachelineBytes == 0,
               "unaligned line corrupt: ", line_addr);
    sam_assert(xor_mask.size() == blobBytes_, "mask size mismatch");
    auto it = overlay_.find(line_addr);
    if (it == overlay_.end()) {
        // Copy-on-write into the overlay: the current blob may be
        // shared with a table snapshot installed into other systems.
        const std::size_t offset = arena_.size();
        arena_.resize(offset + blobBytes_, 0);
        std::size_t slot = 0;
        if (const StoreSnapshot *layer = findLayer(line_addr, slot))
            materializeBlob(*layer, slot, arena_.data() + offset);
        it = overlay_.emplace(line_addr, OverlayLine{offset, false})
                 .first;
        overlayAll_.push_back(line_addr);
        if (!inAnyLayer(line_addr))
            overlayOrder_.push_back(line_addr);
    }
    it->second.clean = false;
    std::uint8_t *blob = arena_.data() + it->second.offset;
    for (std::size_t i = 0; i < blobBytes_; ++i)
        blob[i] ^= xor_mask[i];
}

std::size_t
BackingStore::lineCount() const
{
    std::size_t n = overlayOrder_.size();
    for (const auto &layer : layers_)
        n += layer->size();
    return n;
}

Addr
BackingStore::sampleLine(Rng &rng) const
{
    sam_assert(lineCount() > 0, "sampleLine on empty store");
    std::size_t idx = rng.below(lineCount());
    for (const auto &layer : layers_) {
        if (idx < layer->size())
            return layer->addrs[idx];
        idx -= layer->size();
    }
    return overlayOrder_[idx];
}

StoreSnapshot
BackingStore::snapshot() const
{
    StoreSnapshot snap;
    snap.blobBytes = blobBytes_;
    const std::size_t n = lineCount();
    snap.addrs.reserve(n);
    snap.clean.reserve(n);
    snap.arena.reserve(n * blobBytes_);
    std::vector<std::uint8_t> scratch(blobBytes_);
    for (const auto &layer : layers_) {
        for (std::size_t i = 0; i < layer->size(); ++i) {
            const Addr addr = layer->addrs[i];
            if (const OverlayLine *o = findOverlay(addr)) {
                snap.append(addr, arena_.data() + o->offset, o->clean);
            } else {
                // Captures always carry real parity, even when the
                // layer deferred it.
                materializeBlob(*layer, i, scratch.data());
                snap.append(addr, scratch.data(), layer->clean[i]);
            }
        }
    }
    for (Addr addr : overlayOrder_) {
        auto it = overlay_.find(addr);
        sam_assert(it != overlay_.end(), "order/overlay mismatch");
        snap.append(addr, arena_.data() + it->second.offset,
                    it->second.clean);
    }
    return snap;
}

void
BackingStore::install(std::shared_ptr<const StoreSnapshot> snap)
{
    sam_assert(snap != nullptr, "installing a null snapshot");
    sam_assert(snap->size() == 0 || snap->blobBytes == blobBytes_,
               "snapshot blob size mismatch");
    // Revert overlay writes to lines the snapshot covers, so a
    // re-install after a write query restores the clean table. Walk
    // overlayAll_ (insertion order), not overlay_ itself: hash-order
    // iteration is flagged by sam-determinism, and although the erase
    // set is order-independent today, keeping hash order unobservable
    // is the invariant the bit-identity guarantee rests on.
    if (!overlay_.empty()) {
        const auto covered = [&](Addr a) {
            return snap->find(a) != StoreSnapshot::npos;
        };
        bool erased = false;
        for (Addr a : overlayAll_) {
            if (covered(a))
                erased = overlay_.erase(a) != 0 || erased;
        }
        if (erased) {
            overlayAll_.erase(std::remove_if(overlayAll_.begin(),
                                             overlayAll_.end(), covered),
                              overlayAll_.end());
            overlayOrder_.erase(
                std::remove_if(overlayOrder_.begin(), overlayOrder_.end(),
                               covered),
                overlayOrder_.end());
        }
    }
    for (const auto &layer : layers_) {
        if (layer == snap)
            return; // already mounted; overlay revert was the point
    }
    layers_.push_back(std::move(snap));
}

} // namespace sam
