#include "src/dram/io_buffer.hh"

#include "src/common/logging.hh"

namespace sam {

void
ChipIoPath::reset()
{
    buffers_.fill(0);
    mode_ = IoMode::X4;
    lane_ = 0;
}

void
ChipIoPath::setMode(IoMode mode, unsigned lane)
{
    sam_assert(lane < kLanesPerBuffer, "stride lane out of range: ", lane);
    mode_ = mode;
    lane_ = (mode == IoMode::Sx4) ? lane : 0;
}

void
ChipIoPath::loadBuffer(unsigned buf, std::uint32_t data)
{
    sam_assert(buf < kNumBuffers, "buffer index out of range: ", buf);
    buffers_[buf] = data;
}

std::uint32_t
ChipIoPath::buffer(unsigned buf) const
{
    sam_assert(buf < kNumBuffers, "buffer index out of range: ", buf);
    return buffers_[buf];
}

std::uint8_t
ChipIoPath::lane(unsigned buf, unsigned l) const
{
    return static_cast<std::uint8_t>((buffers_[buf] >> (8 * l)) & 0xff);
}

std::vector<unsigned>
ChipIoPath::enabledDrivers() const
{
    std::vector<unsigned> drivers;
    switch (mode_) {
      case IoMode::X4:
        for (unsigned d = 0; d < 4; ++d)
            drivers.push_back(d);
        break;
      case IoMode::X8:
        for (unsigned d = 0; d < 8; ++d)
            drivers.push_back(d);
        break;
      case IoMode::X16:
        for (unsigned d = 0; d < 16; ++d)
            drivers.push_back(d);
        break;
      case IoMode::Sx4:
        // Figure 7: Sx4_n enables drivers {n, n+4, n+8, n+12}, one per
        // I/O buffer, all serving lane n.
        for (unsigned b = 0; b < kNumBuffers; ++b)
            drivers.push_back(lane_ + 4 * b);
        break;
    }
    return drivers;
}

std::vector<std::uint8_t>
ChipIoPath::burstPayload() const
{
    std::vector<std::uint8_t> out;
    switch (mode_) {
      case IoMode::X4:
        for (unsigned l = 0; l < kLanesPerBuffer; ++l)
            out.push_back(lane(0, l));
        break;
      case IoMode::X8:
        for (unsigned b = 0; b < 2; ++b)
            for (unsigned l = 0; l < kLanesPerBuffer; ++l)
                out.push_back(lane(b, l));
        break;
      case IoMode::X16:
        for (unsigned b = 0; b < kNumBuffers; ++b)
            for (unsigned l = 0; l < kLanesPerBuffer; ++l)
                out.push_back(lane(b, l));
        break;
      case IoMode::Sx4:
        // Lane `lane_` of every buffer: the strided gather.
        for (unsigned b = 0; b < kNumBuffers; ++b)
            out.push_back(lane(b, lane_));
        break;
    }
    return out;
}

std::vector<std::uint8_t>
ChipIoPath::columnWisePayload(unsigned col) const
{
    sam_assert(col < kLanesPerBuffer, "column out of range: ", col);
    // The yz-plane view of the 2-D buffer: position `col` of each
    // buffer, read through the added serializer set. Identical bytes to
    // Sx4_col but stored/streamed in the default column-major layout.
    std::vector<std::uint8_t> out;
    for (unsigned b = 0; b < kNumBuffers; ++b)
        out.push_back(lane(b, col));
    return out;
}

std::array<std::uint8_t, 2>
ChipIoPath::interleavedNibblePayload(unsigned lane_pair,
                                     unsigned nibble) const
{
    sam_assert(lane_pair < 2, "lane pair out of range");
    sam_assert(nibble < 2, "nibble select out of range");
    // Figure 9(b): the interleaved MUX joins 4 bits from each of two
    // same-ID lanes so two 4-bit symbols share one driver. For buffers
    // b in {0,1} (driver 0) and {2,3} (driver 1), take the selected
    // nibble of lane (2*lane_pair + nibble)... the symbol layout packs
    // nibble `nibble` of two adjacent buffers into one byte.
    std::array<std::uint8_t, 2> out{};
    for (unsigned half = 0; half < 2; ++half) {
        const unsigned b0 = 2 * half;
        const std::uint8_t s0 = static_cast<std::uint8_t>(
            (lane(b0, 2 * lane_pair + (nibble ? 1 : 0)) >>
             (nibble ? 4 : 0)) & 0xf);
        const std::uint8_t s1 = static_cast<std::uint8_t>(
            (lane(b0 + 1, 2 * lane_pair + (nibble ? 1 : 0)) >>
             (nibble ? 4 : 0)) & 0xf);
        out[half] = static_cast<std::uint8_t>(s0 | (s1 << 4));
    }
    return out;
}

std::uint16_t
ChipIoPath::beatBits(unsigned beat) const
{
    sam_assert(beat < kBurstLength, "beat out of range: ", beat);
    const auto payload = burstPayload();
    std::uint16_t bits_out = 0;
    for (std::size_t dq = 0; dq < payload.size(); ++dq) {
        if (payload[dq] & (1u << beat))
            bits_out |= static_cast<std::uint16_t>(1u << dq);
    }
    return bits_out;
}

std::vector<std::uint8_t>
StrideGather::gather(const std::vector<std::vector<std::uint8_t>> &lines,
                     unsigned sector, unsigned unit)
{
    sam_assert(unit > 0 && kCachelineBytes % unit == 0,
               "bad stride unit: ", unit);
    const unsigned g = kCachelineBytes / unit;
    sam_assert(lines.size() == g, "gather expects ", g, " lines, got ",
               lines.size());
    sam_assert((sector + 1) * unit <= kCachelineBytes,
               "sector out of range");

    std::vector<std::uint8_t> out(kCachelineBytes);
    for (unsigned i = 0; i < g; ++i) {
        sam_assert(lines[i].size() >= kCachelineBytes,
                   "source line too short");
        for (unsigned b = 0; b < unit; ++b)
            out[i * unit + b] = lines[i][sector * unit + b];
    }
    return out;
}

void
StrideGather::scatter(const std::vector<std::uint8_t> &stride_line,
                      std::vector<std::vector<std::uint8_t>> &lines,
                      unsigned sector, unsigned unit)
{
    sam_assert(stride_line.size() >= kCachelineBytes,
               "stride line too short");
    const unsigned g = kCachelineBytes / unit;
    sam_assert(lines.size() == g, "scatter expects ", g, " lines");
    for (unsigned i = 0; i < g; ++i) {
        sam_assert(lines[i].size() >= kCachelineBytes,
                   "target line too short");
        for (unsigned b = 0; b < unit; ++b)
            lines[i][sector * unit + b] = stride_line[i * unit + b];
    }
}

} // namespace sam
