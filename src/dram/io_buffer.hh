/**
 * @file
 * Functional model of the common-die I/O path of one x4 DRAM chip
 * (Figures 3, 7, 8, 9): four 32-bit I/O buffers, each split into four
 * 8-bit lanes, 16 drivers, and the 7-bit mode register that SAM-IO adds.
 *
 * In regular x4 mode one buffer feeds four DQs; x8/x16 enable two/four
 * buffers. SAM's stride modes Sx4_n load all four buffers (each with a
 * different cacheline's slice) and select lane n of every buffer, so one
 * burst returns strided data gathered from four lines. SAM-en adds a
 * second, column-wise set of serializers (the 2-D buffer of Figure 8)
 * preserving the default data layout and critical-word-first.
 */

#ifndef SAM_DRAM_IO_BUFFER_HH
#define SAM_DRAM_IO_BUFFER_HH

#include <array>
#include <cstdint>
#include <vector>

#include "src/common/types.hh"

namespace sam {

/** I/O configuration selected by the mode register (Figure 7 table). */
enum class IoMode {
    X4,     ///< Regular narrow mode: buffer 0, drivers [0:3].
    X8,     ///< Buffers 0-1, drivers [0:7].
    X16,    ///< All buffers, drivers [0:15].
    Sx4,    ///< Stride mode Sx4_n: lane n of all four buffers.
};

/**
 * One chip's I/O stage. Data flows: GIO gating loads 32-bit buffers from
 * the array; the serializer drains the selected lanes onto the DQs over
 * an 8-beat burst.
 */
class ChipIoPath
{
  public:
    static constexpr unsigned kNumBuffers = 4;
    static constexpr unsigned kLanesPerBuffer = 4;
    static constexpr unsigned kNumDrivers = 16;

    ChipIoPath() { reset(); }

    /** Clear all buffers (power-up state). */
    void reset();

    /**
     * Set the I/O mode. `lane` selects n for Sx4_n and is ignored
     * otherwise.
     */
    void setMode(IoMode mode, unsigned lane = 0);

    IoMode mode() const { return mode_; }
    unsigned strideLane() const { return lane_; }

    /**
     * Load buffer `buf` with a 32-bit array fetch (the chip's 4B slice
     * of one cacheline). Regular x4 operation loads only buffer 0;
     * stride modes load all four.
     */
    void loadBuffer(unsigned buf, std::uint32_t data);

    /** Raw buffer contents (lane l = bits [8l, 8l+8)). */
    std::uint32_t buffer(unsigned buf) const;

    /**
     * Drivers enabled under the current mode, per the Figure 7 table:
     * X4 -> [0:3], X8 -> [0:7], X16 -> [0:15], Sx4_n -> {n, n+4, n+8,
     * n+12}.
     */
    std::vector<unsigned> enabledDrivers() const;

    /**
     * The 8-bit payload each active DQ transmits during one burst, in
     * DQ order. x4-width modes return 4 lanes; X8 returns 8; X16 all 16.
     *
     * In Sx4_n mode, DQ d carries lane n of buffer d: the strided
     * gather.
     */
    std::vector<std::uint8_t> burstPayload() const;

    /**
     * SAM-en's column-wise (yz-plane) read of the 2-D I/O buffer
     * (Figure 8(d)): returns the four bytes at column position `col`
     * across the four buffers in buffer order, i.e.\ the same strided
     * payload but stored in the default layout so critical-word-first
     * order is preserved.
     */
    std::vector<std::uint8_t> columnWisePayload(unsigned col) const;

    /**
     * Finer 4-bit granularity via the interleaved MUX (Figure 9(b)):
     * two 4-bit symbols from two same-ID lanes are steered to one
     * driver, so four symbols leave through two DQs. Returns the two
     * 8-bit DQ payloads for stride nibble `nibble` (0 or 1) of lane
     * pair `lane_pair` (0: lanes {0,1}, 1: lanes {2,3}).
     */
    std::array<std::uint8_t, 2> interleavedNibblePayload(
        unsigned lane_pair, unsigned nibble) const;

    /**
     * Serialize one beat of the burst in the current mode: bit `beat`
     * of each active lane, LSB-first, packed into the low bits of the
     * result (DQ0 = bit 0).
     */
    std::uint16_t beatBits(unsigned beat) const;

  private:
    std::uint8_t lane(unsigned buf, unsigned l) const;

    IoMode mode_ = IoMode::X4;
    unsigned lane_ = 0;
    std::array<std::uint32_t, kNumBuffers> buffers_;
};

/**
 * Rank-level stride gather/scatter semantics. A stride-mode burst
 * returns one 64B line assembled from `G` chunks: chunk i is bytes
 * [sector*unit, (sector+1)*unit) of source line i. This is the rank-wide
 * effect of every chip selecting the same lane (SAM-IO) or column
 * (SAM-en).
 */
class StrideGather
{
  public:
    /**
     * @param lines    The G decoded 64B source lines, in gather order.
     * @param sector   Which chunk-aligned slice of each line to take.
     * @param unit     Chunk size in bytes (strideUnitBytes of scheme).
     */
    static std::vector<std::uint8_t> gather(
        const std::vector<std::vector<std::uint8_t>> &lines,
        unsigned sector, unsigned unit);

    /**
     * Inverse of gather: split a 64B strided line into its G chunks and
     * overwrite slice `sector` of each source line in place.
     */
    static void scatter(const std::vector<std::uint8_t> &stride_line,
                        std::vector<std::vector<std::uint8_t>> &lines,
                        unsigned sector, unsigned unit);
};

} // namespace sam

#endif // SAM_DRAM_IO_BUFFER_HH
