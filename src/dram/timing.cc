#include "src/dram/timing.hh"

#include <cmath>

#include "src/common/logging.hh"

namespace sam {

namespace {

unsigned
scaleParam(unsigned value, double factor)
{
    return static_cast<unsigned>(std::lround(value * factor));
}

} // namespace

TimingParams
TimingParams::derated(double area_overhead) const
{
    sam_assert(area_overhead >= 0.0, "negative area overhead");
    const double f = 1.0 + area_overhead;
    TimingParams out = *this;
    // Array-side latencies grow with the array footprint; I/O-side
    // parameters are pipeline-depth bound and stay fixed (Section 6.1:
    // "core frequencies in all the designs are not changed ... other
    // latency parameters, such as tRCD, tAL, etc, are increased
    // proportionally to the area overhead").
    out.tRCD = scaleParam(tRCD, f);
    out.tRP = scaleParam(tRP, f);
    out.tRAS = scaleParam(tRAS, f);
    out.tRRD_S = scaleParam(tRRD_S, f);
    out.tRRD_L = scaleParam(tRRD_L, f);
    out.tFAW = scaleParam(tFAW, f);
    out.tWR = scaleParam(tWR, f);
    out.tRTP = scaleParam(tRTP, f);
    return out;
}

TimingParams
ddr4Timing()
{
    return TimingParams{};
}

TimingParams
rramTiming()
{
    TimingParams t;
    // Paper Table 2 RRAM row: CL-nRCD-nRP = 17-35-1; bank/bus-side
    // parameters match the DDR4 interface it reuses.
    t.tRCD = 35;
    t.tRP = 1;
    t.tRAS = 6;    // non-destructive read: no restore phase
    t.tWR = 120;   // ~100ns RRAM write pulse dominates write recovery
    t.tWTR_S = 12; // write pulse also delays following reads
    t.tWTR_L = 24;
    t.tREFI = 0;   // non-volatile: no refresh
    t.tRFC = 0;
    return t;
}

TimingParams
timingFor(MemTech tech)
{
    switch (tech) {
      case MemTech::DRAM: return ddr4Timing();
      case MemTech::RRAM: return rramTiming();
    }
    panic("unknown MemTech");
}

} // namespace sam
