/**
 * @file
 * Device timing parameters (in memory-bus clock cycles) and geometry for
 * the simulated DDR4 / RRAM devices (paper Table 2).
 */

#ifndef SAM_DRAM_TIMING_HH
#define SAM_DRAM_TIMING_HH

#include "src/common/types.hh"

namespace sam {

/**
 * Timing parameters in nCK units of the 1200 MHz DDR4-2400 bus clock
 * (tCK = 0.833 ns). RRAM values follow the paper's Table 2 and NVMain's
 * RRAM model: slow activation (tRCD 35), near-free precharge (tRP 1,
 * reads are non-destructive), long write recovery.
 */
struct TimingParams
{
    double tCkNs = 0.833;  ///< Bus clock period (ns).

    unsigned cl = 17;      ///< CAS (read) latency.
    unsigned cwl = 12;     ///< CAS write latency.
    unsigned tRCD = 17;    ///< ACT to CAS delay.
    unsigned tRP = 17;     ///< Precharge latency.
    unsigned tRAS = 39;    ///< ACT to PRE minimum.
    unsigned tBL = 4;      ///< Burst occupancy (8 beats, DDR).
    unsigned tCCD_S = 4;   ///< CAS-to-CAS, different bank group.
    unsigned tCCD_L = 6;   ///< CAS-to-CAS, same bank group.
    unsigned tRRD_S = 4;   ///< ACT-to-ACT, different bank group.
    unsigned tRRD_L = 6;   ///< ACT-to-ACT, same bank group.
    unsigned tFAW = 26;    ///< Four-activate window.
    unsigned tWR = 18;     ///< Write recovery before precharge.
    unsigned tWTR_S = 3;   ///< Write-to-read, different bank group.
    unsigned tWTR_L = 9;   ///< Write-to-read, same bank group.
    unsigned tRTP = 9;     ///< Read-to-precharge.
    unsigned tRTR = 2;     ///< Rank-to-rank switch; also the SAM I/O
                           ///< mode-switch delay (Section 5.3).
    unsigned tREFI = 9360; ///< Refresh interval (7.8 us).
    unsigned tRFC = 420;   ///< Refresh cycle time (8Gb device).

    Cycle tRC() const { return tRAS + tRP; }

    /**
     * Scale array-access latencies by an area overhead factor. The paper
     * (Section 6.1) increases latency parameters proportionally to the
     * array area overhead of each design; I/O-side parameters (CL, tBL,
     * tCCD, tRTR) are unaffected.
     */
    TimingParams derated(double area_overhead) const;
};

/** DDR4-2400 x4 preset (paper Table 2, DRAM row). */
TimingParams ddr4Timing();

/** RRAM preset (paper Table 2, RRAM row). */
TimingParams rramTiming();

/** Pick the preset for a technology. */
TimingParams timingFor(MemTech tech);

/**
 * Geometry of the simulated memory system (paper Table 2): one channel,
 * two ranks, 16 banks per rank in four bank groups, 8KB rank-level rows.
 */
struct Geometry
{
    unsigned channels = 1;
    unsigned ranks = 2;
    unsigned bankGroups = 4;   ///< Per rank.
    unsigned banksPerGroup = 4;
    unsigned rowsPerBank = 1u << 17;  ///< 256 subarrays x 512 rows.
    unsigned rowBytes = 8192;  ///< Rank-level row (16 x4 chips x 4Kb).
    unsigned subarraysPerBank = 256;

    unsigned banksPerRank() const { return bankGroups * banksPerGroup; }
    unsigned totalBanks() const
    {
        return channels * ranks * banksPerRank();
    }
    unsigned linesPerRow() const { return rowBytes / kCachelineBytes; }
    unsigned rowsPerSubarray() const
    {
        return rowsPerBank / subarraysPerBank;
    }
    std::uint64_t
    capacityBytes() const
    {
        return static_cast<std::uint64_t>(channels) * ranks *
               banksPerRank() * rowsPerBank * rowBytes;
    }
};

} // namespace sam

#endif // SAM_DRAM_TIMING_HH
