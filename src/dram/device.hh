/**
 * @file
 * Cycle-accounted DRAM/RRAM device timing model.
 *
 * The device is an event-driven resource-reservation engine: every bank,
 * rank, and the shared data bus keep "earliest next action" timestamps,
 * and each access computes its PRE/ACT/CAS/data placement against the
 * full DDR4 constraint set (tRCD, tRP, tRAS, tCCD_S/L, tRRD_S/L, tFAW,
 * tWR, tWTR, tRTP, tRTR, refresh). This captures bank-level parallelism,
 * row-buffer locality, bus occupancy, rank switches, and SAM's I/O mode
 * switches without per-cycle ticking.
 */

#ifndef SAM_DRAM_DEVICE_HH
#define SAM_DRAM_DEVICE_HH

#include <cstddef>
#include <deque>
#include <functional>
#include <utility>
#include <vector>

#include "src/common/stats.hh"
#include "src/common/types.hh"
#include "src/dram/address.hh"
#include "src/dram/command.hh"
#include "src/dram/timing.hh"

namespace sam {

/** One column access presented to the device by the controller. */
struct DeviceAccess
{
    MappedAddr addr;
    bool isWrite = false;
    AccessMode mode = AccessMode::Regular;
    /**
     * Extra same-row bursts this access needs beyond the first (e.g.\
     * GS-DRAM-ecc embedded-ECC fetch, RC-NVM-bit sub-field collection).
     */
    unsigned extraBursts = 0;
    /**
     * SAM-sub / RC-NVM column-wise activation: the ACT drives a
     * column-wise subarray spanning multiple mats (counted separately
     * for the power model; timing equals a regular ACT per Section 4.1).
     */
    bool columnActivate = false;
    /**
     * Response-path latency added after the burst completes without
     * holding any resource (e.g.\ SAM-IO's transposed layout defeats
     * critical-word-first and the controller reassembles the codeword
     * from all eight beats, Section 4.2.2).
     */
    unsigned extraLatency = 0;
};

/** Timing outcome of one access. */
struct AccessResult
{
    Cycle issue = 0;      ///< First CAS issue time.
    Cycle dataStart = 0;  ///< First beat on the data bus.
    Cycle done = 0;       ///< Last beat transferred (request complete).
    bool rowHit = false;
    bool modeSwitched = false;
    unsigned activates = 0;
};

/** Device-level counters feeding the power model. */
struct DeviceStats
{
    Counter activates;
    Counter columnActivates;
    Counter precharges;
    Counter reads;
    Counter writes;
    Counter strideReads;
    Counter strideWrites;
    Counter extraBursts;
    Counter rowHits;
    Counter rowMisses;
    Counter modeSwitches;
    Counter refreshes;
    Counter busBusyCycles;

    void registerIn(StatGroup &group) const;
};

/**
 * Observer of bank row-buffer transitions. The scheduler attaches one
 * to maintain an incremental open-row index: probing only banks that
 * are open (and have eligible requests) instead of scanning every
 * bank's state on each FR-FCFS pick. An open->open transition (row
 * miss on an open bank) is reported as a single rowOpened() with the
 * new row -- no intervening rowClosed().
 */
class RowStateListener
{
  public:
    virtual ~RowStateListener() = default;
    virtual void rowOpened(std::size_t flat_bank, std::uint64_t row) = 0;
    virtual void rowClosed(std::size_t flat_bank) = 0;
};

/**
 * The memory device shared by one channel. Not thread-safe; owned by the
 * channel's controller.
 */
class Device
{
  public:
    Device(const Geometry &geom, const TimingParams &timing);

    const Geometry &geometry() const { return geom_; }
    const TimingParams &timing() const { return timing_; }

    /**
     * Schedule one access no earlier than `earliest`. Mutates device
     * state (row buffers, bus, mode registers) and returns the timing.
     */
    AccessResult access(const DeviceAccess &acc, Cycle earliest);

    /** Open row in the bank of `addr`, or kInvalidCycle-like sentinel. */
    bool rowOpen(const MappedAddr &addr) const;
    std::uint64_t openRow(const MappedAddr &addr) const;

    /** Earliest cycle the channel's data bus is free. */
    Cycle
    busFreeAt(unsigned channel = 0) const
    {
        return channels_[channel].busFree;
    }

    // ----- Earliest-action publication -------------------------------
    // Read-only views of the resource-reservation stamps, published
    // alongside the RowStateListener hook so schedulers and tests can
    // feed an EventQueue with the device's next actionable cycles
    // instead of ticking through stall windows.

    /** The rank's next refresh deadline (tREFI schedule). */
    Cycle
    nextRefreshAt(unsigned channel, unsigned rank) const
    {
        return ranks_[channel * geom_.ranks + rank].nextRefresh;
    }

    /**
     * Bank-local floor for the next command to `addr`'s bank: the next
     * CAS when the bank's row is open, else the next ACT. Rank-wide
     * constraints (tCCD/tRRD/tFAW, refresh catch-up, bus occupancy)
     * still layer on top inside access().
     */
    Cycle
    bankReadyAt(const MappedAddr &addr) const
    {
        const BankState &b = bank(addr);
        return b.rowOpen ? b.casReady : b.actReady;
    }

    /**
     * Observer invoked once per serviced access with its timing
     * outcome (a command-level trace hook for debugging and tools).
     */
    using TraceHook = std::function<void(const DeviceAccess &,
                                         const AccessResult &)>;
    void setTraceHook(TraceHook hook) { traceHook_ = std::move(hook); }

    /**
     * Attach an observer invoked once per scheduled DDR command
     * (ACT/PRE/RD/WR/REF/mode switch) with the cycle it issues at.
     * Commands arrive in commit order (monotone per bank/rank/bus, not
     * globally monotone in time). Multiple observers may be attached
     * (e.g.\ the src/check protocol oracle plus the telemetry tracer);
     * they are notified in attach order. `owner` identifies the
     * attachment for removal; attaching the same owner twice is a
     * programming error and asserts.
     */
    void addCommandObserver(const void *owner, CommandObserver obs);

    /** Detach the observer attached under `owner` (no-op if absent). */
    void removeCommandObserver(const void *owner);

    /** Number of attached command observers. */
    std::size_t commandObservers() const { return cmdObservers_.size(); }

    /**
     * Attach a row-state listener, replaying the current open rows to
     * it so a late attach starts consistent. Several may be attached
     * (each controller sharing the device keeps its own index).
     * Attaching the same listener twice is a programming error and
     * panics (always-on check, like addCommandObserver: double
     * notifications would desynchronise the scheduler's index).
     */
    void addRowListener(RowStateListener *listener);

    /** Detach counterpart of addRowListener (no-op if absent). */
    void removeRowListener(RowStateListener *listener);

    const DeviceStats &stats() const { return stats_; }
    DeviceStats &stats() { return stats_; }

  private:
    struct BankState
    {
        bool rowOpen = false;
        std::uint64_t row = 0;
        Cycle actReady = 0;  ///< Earliest next ACT (tRP honoured).
        Cycle preReady = 0;  ///< Earliest next PRE (tRAS/tWR/tRTP).
        Cycle casReady = 0;  ///< Earliest next CAS to this bank.
    };

    struct RankState
    {
        std::vector<Cycle> groupCasReady;  ///< tCCD_L per bank group.
        std::vector<Cycle> groupActReady;  ///< tRRD_L per bank group.
        std::vector<Cycle> groupRdReady;   ///< tWTR_L per bank group.
        Cycle casReady = 0;                ///< tCCD_S rank-wide.
        Cycle actReady = 0;                ///< tRRD_S rank-wide.
        Cycle rdReady = 0;                 ///< Write-to-read (tWTR_S).
        Cycle wrReady = 0;                 ///< Read-to-write turnaround.
        std::deque<Cycle> actWindow;       ///< Last ACTs for tFAW.
        AccessMode ioMode = AccessMode::Regular;
        Cycle modeReady = 0;
        /**
         * Mode switches must serialize behind the rank's last CAS so
         * the command stream stays well-ordered (a switch issued
         * before an already-committed CAS would retroactively change
         * that CAS's mode). Timing-neutral while tRTR + 1 <= tCCD_S.
         */
        Cycle modeSwitchFloor = 0;
        Cycle nextRefresh = 0;
        Cycle refreshUntil = 0;
    };

    BankState &bank(const MappedAddr &a);
    const BankState &bank(const MappedAddr &a) const;
    RankState &rank(const MappedAddr &a);

    /** Retire refreshes due before `t`; returns updated floor time. */
    void applyRefresh(RankState &rank, unsigned channel, unsigned rank_nr,
                      Cycle t);

    /** Report one command to the observer, if any is attached. */
    void emit(CmdKind kind, Cycle at, const MappedAddr &addr,
              AccessMode mode = AccessMode::Regular);

    struct ChannelState
    {
        Cycle busFree = 0;
        int lastBusRank = -1;
    };

    Geometry geom_;
    TimingParams timing_;
    std::vector<BankState> banks_;
    std::vector<RankState> ranks_;
    std::vector<ChannelState> channels_;
    DeviceStats stats_;
    TraceHook traceHook_;
    std::vector<std::pair<const void *, CommandObserver>> cmdObservers_;
    std::vector<RowStateListener *> rowListeners_;
};

} // namespace sam

#endif // SAM_DRAM_DEVICE_HH
