#include "src/dram/device.hh"

#include <algorithm>

#include "src/common/logging.hh"

namespace sam {

void
DeviceStats::registerIn(StatGroup &group) const
{
    group.addCounter("activates", activates, "row activations");
    group.addCounter("columnActivates", columnActivates,
                     "column-wise subarray activations");
    group.addCounter("precharges", precharges, "bank precharges");
    group.addCounter("reads", reads, "regular read bursts");
    group.addCounter("writes", writes, "regular write bursts");
    group.addCounter("strideReads", strideReads, "stride-mode reads");
    group.addCounter("strideWrites", strideWrites, "stride-mode writes");
    group.addCounter("extraBursts", extraBursts,
                     "additional bursts (ECC fetch / sub-field)");
    group.addCounter("rowHits", rowHits, "row-buffer hits");
    group.addCounter("rowMisses", rowMisses, "row-buffer misses");
    group.addCounter("modeSwitches", modeSwitches, "I/O mode switches");
    group.addCounter("refreshes", refreshes, "refresh operations");
    group.addCounter("busBusyCycles", busBusyCycles,
                     "data bus occupied cycles");
}

Device::Device(const Geometry &geom, const TimingParams &timing)
    : geom_(geom), timing_(timing)
{
    banks_.resize(static_cast<std::size_t>(geom_.channels) * geom_.ranks *
                  geom_.banksPerRank());
    ranks_.resize(static_cast<std::size_t>(geom_.channels) * geom_.ranks);
    channels_.resize(geom_.channels);
    for (auto &r : ranks_) {
        r.groupCasReady.assign(geom_.bankGroups, 0);
        r.groupActReady.assign(geom_.bankGroups, 0);
        r.groupRdReady.assign(geom_.bankGroups, 0);
        // Stagger initial refreshes across ranks is unnecessary at this
        // fidelity; refresh starts one interval in.
        r.nextRefresh = timing_.tREFI;
    }
}

void
Device::addCommandObserver(const void *owner, CommandObserver obs)
{
    sam_assert(owner != nullptr, "command observer owner must be non-null");
    sam_assert(obs != nullptr, "command observer must be callable");
    // Always-on checked error (not a debug assert): a double attach
    // would silently double-count every command in telemetry and the
    // protocol oracle, so release builds must reject it too. The list
    // is left unchanged (strong guarantee).
    for (const auto &entry : cmdObservers_) {
        if (entry.first == owner) {
            panic("command observer owner ", owner,
                  " attached twice (", cmdObservers_.size(),
                  " observer(s) attached)");
        }
    }
    cmdObservers_.emplace_back(owner, std::move(obs));
}

void
Device::removeCommandObserver(const void *owner)
{
    for (auto it = cmdObservers_.begin(); it != cmdObservers_.end(); ++it) {
        if (it->first == owner) {
            cmdObservers_.erase(it);
            return;
        }
    }
}

void
Device::emit(CmdKind kind, Cycle at, const MappedAddr &addr,
             AccessMode mode)
{
    if (cmdObservers_.empty())
        return;
    Command cmd;
    cmd.kind = kind;
    cmd.at = at;
    cmd.addr = addr;
    cmd.mode = mode;
    for (const auto &entry : cmdObservers_)
        entry.second(cmd);
}

void
Device::addRowListener(RowStateListener *listener)
{
    sam_assert(listener != nullptr, "row listener must be non-null");
    for (RowStateListener *l : rowListeners_) {
        if (l == listener)
            panic("row-state listener attached twice");
    }
    rowListeners_.push_back(listener);
    for (std::size_t fb = 0; fb < banks_.size(); ++fb) {
        if (banks_[fb].rowOpen)
            listener->rowOpened(fb, banks_[fb].row);
    }
}

void
Device::removeRowListener(RowStateListener *listener)
{
    for (auto it = rowListeners_.begin(); it != rowListeners_.end(); ++it) {
        if (*it == listener) {
            rowListeners_.erase(it);
            return;
        }
    }
}

Device::BankState &
Device::bank(const MappedAddr &a)
{
    return banks_[a.flatBank(geom_)];
}

const Device::BankState &
Device::bank(const MappedAddr &a) const
{
    return banks_[a.flatBank(geom_)];
}

Device::RankState &
Device::rank(const MappedAddr &a)
{
    return ranks_[a.channel * geom_.ranks + a.rank];
}

bool
Device::rowOpen(const MappedAddr &addr) const
{
    return bank(addr).rowOpen;
}

std::uint64_t
Device::openRow(const MappedAddr &addr) const
{
    return bank(addr).row;
}

void
Device::applyRefresh(RankState &rank_state, unsigned channel,
                     unsigned rank_nr, Cycle t)
{
    if (timing_.tREFI == 0)
        return; // non-volatile technology: no refresh
    const unsigned rank_id = channel * geom_.ranks + rank_nr;
    while (rank_state.nextRefresh <= t) {
        // REF requires every bank of the rank precharged (tRP honoured)
        // and must not start before previously committed activity on
        // the rank completes -- the engine runs event-driven, so work
        // scheduled by earlier accesses may already extend past the
        // nominal tREFI deadline. Close open rows first and defer the
        // refresh start accordingly (real controllers postpone refresh
        // the same way, by up to 8 intervals).
        Cycle ref_start = std::max(rank_state.nextRefresh,
                                   rank_state.refreshUntil);
        for (unsigned b = 0; b < geom_.banksPerRank(); ++b) {
            BankState &bs = banks_[rank_id * geom_.banksPerRank() + b];
            if (!bs.rowOpen)
                continue;
            // Implicit precharge-all ahead of the refresh. Not counted
            // in stats_.precharges: its energy is part of the refresh
            // operation (IDD5), as before.
            MappedAddr pre_addr;
            pre_addr.channel = channel;
            pre_addr.rank = rank_nr;
            pre_addr.bankGroup = b / geom_.banksPerGroup;
            pre_addr.bank = b % geom_.banksPerGroup;
            pre_addr.row = bs.row;
            emit(CmdKind::Pre, bs.preReady, pre_addr);
            bs.rowOpen = false;
            for (RowStateListener *l : rowListeners_)
                l->rowClosed(rank_id * geom_.banksPerRank() + b);
            ref_start = std::max(ref_start, bs.preReady + timing_.tRP);
        }
        const Cycle ref_end = ref_start + timing_.tRFC;
        rank_state.refreshUntil = std::max(rank_state.refreshUntil,
                                           ref_end);
        // All banks of the rank are blocked until tRFC completes.
        for (unsigned b = 0; b < geom_.banksPerRank(); ++b) {
            BankState &bs = banks_[rank_id * geom_.banksPerRank() + b];
            bs.actReady = std::max(bs.actReady, ref_end);
            bs.casReady = std::max(bs.casReady, ref_end);
        }
        MappedAddr ref_addr;
        ref_addr.channel = channel;
        ref_addr.rank = rank_nr;
        emit(CmdKind::Ref, ref_start, ref_addr);
        rank_state.nextRefresh += timing_.tREFI;
        ++stats_.refreshes;
    }
}

AccessResult
Device::access(const DeviceAccess &acc, Cycle earliest)
{
    const MappedAddr &a = acc.addr;
    sam_assert(a.channel < geom_.channels && a.rank < geom_.ranks &&
                   a.bankGroup < geom_.bankGroups &&
                   a.bank < geom_.banksPerGroup,
               "access out of geometry range");

    BankState &bs = bank(a);
    RankState &rs = rank(a);
    applyRefresh(rs, a.channel, a.rank, earliest);
    const unsigned rank_id = a.channel * geom_.ranks + a.rank;

    AccessResult result;
    Cycle t = std::max(earliest, rs.refreshUntil);

    // ----- Row preparation -----------------------------------------
    const bool row_hit = bs.rowOpen && bs.row == a.row;
    Cycle cas_earliest = t;
    if (row_hit) {
        ++stats_.rowHits;
        result.rowHit = true;
    } else {
        ++stats_.rowMisses;
        Cycle act_floor = t;
        if (bs.rowOpen) {
            const Cycle pre_at = std::max(t, bs.preReady);
            MappedAddr pre_addr = a;
            pre_addr.row = bs.row;
            emit(CmdKind::Pre, pre_at, pre_addr);
            act_floor = pre_at + timing_.tRP;
            ++stats_.precharges;
        } else {
            act_floor = std::max(t, bs.actReady);
        }
        // Inter-ACT constraints: tRRD_S/L and the tFAW window.
        Cycle act_at = std::max({act_floor, rs.actReady,
                                 rs.groupActReady[a.bankGroup]});
        if (rs.actWindow.size() >= 4)
            act_at = std::max(act_at, rs.actWindow.front() + timing_.tFAW);

        // Commit the ACT.
        rs.actWindow.push_back(act_at);
        while (rs.actWindow.size() > 4)
            rs.actWindow.pop_front();
        rs.actReady = act_at + timing_.tRRD_S;
        rs.groupActReady[a.bankGroup] = act_at + timing_.tRRD_L;
        bs.rowOpen = true;
        bs.row = a.row;
        for (RowStateListener *l : rowListeners_)
            l->rowOpened(a.flatBank(geom_), a.row);
        bs.preReady = act_at + timing_.tRAS;
        bs.casReady = std::max(bs.casReady, act_at + timing_.tRCD);
        cas_earliest = act_at + timing_.tRCD;
        emit(CmdKind::Act, act_at, a);
        result.activates = 1;
        ++stats_.activates;
        if (acc.columnActivate)
            ++stats_.columnActivates;
    }

    // ----- I/O mode switch (Section 5.3: costs tRTR on the rank) ----
    if (rs.ioMode != acc.mode) {
        const Cycle sw_at = std::max({cas_earliest, rs.modeReady,
                                      rs.modeSwitchFloor});
        cas_earliest = sw_at + timing_.tRTR;
        rs.ioMode = acc.mode;
        rs.modeReady = cas_earliest;
        emit(CmdKind::ModeSwitch, sw_at, a, acc.mode);
        result.modeSwitched = true;
        ++stats_.modeSwitches;
    }

    // ----- CAS + data bursts ----------------------------------------
    const unsigned bursts = 1 + acc.extraBursts;
    const unsigned cas_lat = acc.isWrite ? timing_.cwl : timing_.cl;
    Cycle data_end = 0;
    for (unsigned b = 0; b < bursts; ++b) {
        Cycle cas_at = std::max({cas_earliest, bs.casReady, rs.casReady,
                                 rs.groupCasReady[a.bankGroup]});
        cas_at = std::max(cas_at,
                          acc.isWrite
                              ? rs.wrReady
                              : std::max(rs.rdReady,
                                         rs.groupRdReady[a.bankGroup]));

        // Data bus: the burst occupies [data_at, data_at + tBL); a rank
        // switch on the bus inserts a tRTR bubble.
        ChannelState &ch = channels_[a.channel];
        Cycle data_at = cas_at + cas_lat;
        Cycle bus_floor = ch.busFree;
        if (ch.lastBusRank >= 0 &&
            ch.lastBusRank != static_cast<int>(rank_id)) {
            bus_floor += timing_.tRTR;
        }
        if (data_at < bus_floor) {
            data_at = bus_floor;
            cas_at = data_at - cas_lat;
        }

        // Commit the CAS.
        rs.casReady = cas_at + timing_.tCCD_S;
        rs.groupCasReady[a.bankGroup] = cas_at + timing_.tCCD_L;
        bs.casReady = std::max(bs.casReady, cas_at + timing_.tCCD_L);
        rs.modeSwitchFloor = std::max(rs.modeSwitchFloor, cas_at + 1);
        if (acc.isWrite) {
            const Cycle wr_end = cas_at + timing_.cwl + timing_.tBL;
            bs.preReady = std::max(bs.preReady, wr_end + timing_.tWR);
            rs.rdReady = std::max(rs.rdReady, wr_end + timing_.tWTR_S);
            rs.groupRdReady[a.bankGroup] =
                std::max(rs.groupRdReady[a.bankGroup],
                         wr_end + timing_.tWTR_L);
        } else {
            bs.preReady = std::max(bs.preReady, cas_at + timing_.tRTP);
            // Read-to-write bus turnaround: write data may start no
            // earlier than one bubble past read-burst end. Guarded so
            // a hypothetical cwl > cl + tBL + 2 cannot wrap.
            const Cycle rd_end = cas_at + timing_.cl + timing_.tBL;
            rs.wrReady = std::max(rs.wrReady,
                                  rd_end + 2 > timing_.cwl
                                      ? rd_end + 2 - timing_.cwl
                                      : 0);
        }
        emit(acc.isWrite ? CmdKind::Wr : CmdKind::Rd, cas_at, a,
             acc.mode);

        ch.busFree = data_at + timing_.tBL;
        ch.lastBusRank = static_cast<int>(rank_id);
        stats_.busBusyCycles += timing_.tBL;
        data_end = data_at + timing_.tBL;

        if (b == 0) {
            result.issue = cas_at;
            result.dataStart = data_at;
        } else {
            ++stats_.extraBursts;
        }
        cas_earliest = cas_at + 1;
    }
    result.done = data_end + acc.extraLatency;
    if (traceHook_)
        traceHook_(acc, result);

    // ----- Statistics ------------------------------------------------
    if (acc.mode == AccessMode::Stride) {
        if (acc.isWrite)
            ++stats_.strideWrites;
        else
            ++stats_.strideReads;
    } else {
        if (acc.isWrite)
            ++stats_.writes;
        else
            ++stats_.reads;
    }
    return result;
}

} // namespace sam
