#include "src/designs/design_model.hh"

#include "src/common/logging.hh"

namespace sam {

namespace {

/** High tag bit marking synthetic column-subarray rows. */
constexpr std::uint64_t kColRowTag = std::uint64_t{1} << 62;

/** Data lines covered by one embedded-ECC line (8 x 8B per 64B). */
constexpr unsigned kEccCoverage = 8;

} // namespace

DesignModel::DesignModel(const DesignSpec &spec,
                         const AddressMapping &mapping,
                         unsigned stride_unit)
    : spec_(spec), mapping_(mapping), strideUnit_(stride_unit)
{
    sam_assert(stride_unit > 0 && kCachelineBytes % stride_unit == 0,
               "bad stride unit ", stride_unit);
}

unsigned
DesignModel::embeddedEccBursts(const MappedAddr &m, Addr line_addr,
                               bool is_write)
{
    if (!spec_.embeddedEcc)
        return 0;
    // The controller keeps a small per-bank cache of recently fetched
    // embedded-ECC lines (each covers 8 data lines); a miss costs one
    // extra burst, and writes cost an ECC write-back burst.
    const unsigned bank = m.flatBank(mapping_.geometry());
    const Addr ecc_line = line_addr / (kEccCoverage * kCachelineBytes);
    unsigned bursts = 0;
    auto &recent = lastEccLine_[bank];
    bool hit = false;
    for (std::size_t i = 0; i < recent.size(); ++i) {
        if (recent[i] == ecc_line) {
            hit = true;
            recent.erase(recent.begin() +
                         static_cast<std::ptrdiff_t>(i));
            break;
        }
    }
    if (!hit)
        bursts += 1; // fetch the ECC line
    recent.push_back(ecc_line);
    if (recent.size() > 4)
        recent.erase(recent.begin());
    if (is_write)
        bursts += 1; // write the updated ECC back
    return bursts;
}

std::uint64_t
DesignModel::columnRowId(const MappedAddr &m, unsigned sector) const
{
    const Geometry &geom = mapping_.geometry();
    // The column-wise subarray buffers one field-chunk column of a
    // whole subarray: scanning down the subarray at a fixed chunk
    // column keeps hitting it; switching field (chunk column) or
    // crossing into the next subarray re-activates.
    const std::uint64_t subarray = m.row / geom.rowsPerSubarray();
    const std::uint64_t chunk_col =
        (static_cast<std::uint64_t>(m.column) * kCachelineBytes) /
            strideUnit_ + sector;
    return kColRowTag | (subarray << 24) | chunk_col;
}

MemRequest
DesignModel::lineRequest(AccessType type, Addr line_addr, Cycle arrival,
                         unsigned core_id)
{
    sam_assert(!isStride(type), "lineRequest given a stride type");
    sam_assert(line_addr % kCachelineBytes == 0, "unaligned line");

    MemRequest req;
    req.type = type;
    req.addr = line_addr;
    req.arrival = arrival;
    req.coreId = core_id;
    req.setLine(line_addr);
    req.device.addr = mapping_.decompose(line_addr);
    req.device.isWrite = isWrite(type);
    req.device.mode = AccessMode::Regular;
    req.device.extraBursts =
        embeddedEccBursts(req.device.addr, line_addr, isWrite(type));
    return req;
}

MemRequest
DesignModel::strideRequest(AccessType type, const Addr *lines,
                           std::size_t count, unsigned sector,
                           Cycle arrival, unsigned core_id)
{
    sam_assert(isStride(type), "strideRequest given a regular type");
    sam_assert(spec_.supportsStride,
               spec_.name(), " does not support stride accesses");
    sam_assert(count == gatherFactor(),
               "gather plan has ", count, " lines, expected ",
               gatherFactor());

    MemRequest req;
    req.type = type;
    req.addr = lines[0];
    req.sector = sector;
    req.strideUnit = strideUnit_;
    req.arrival = arrival;
    req.coreId = core_id;
    req.setLines(lines, count);
    req.device.isWrite = isWrite(type);

    MappedAddr m = mapping_.decompose(lines[0]);
    if (spec_.strideAcrossRows) {
        // SAM-sub / RC-NVM: the gather opens a column-wise subarray.
        // Synthesise its row id; the bank sees a distinct "row" per
        // (subarray, field column).
        req.device.columnActivate = true;
        m.row = columnRowId(m, sector);
    } else {
        // SAM-IO / SAM-en / GS-DRAM: all source lines live in one
        // physical row (sub-row alignment, Section 5.2).
        const MappedAddr last = mapping_.decompose(lines[count - 1]);
        sam_assert(last.sameRow(mapping_.decompose(lines[0])),
                   "sub-row gather crosses a DRAM row");
    }
    req.device.addr = m;
    // GS-DRAM's widened command interface avoids the mode register
    // round-trip; SAM pays tRTR on mode change (Section 5.3).
    req.device.mode = spec_.zeroModeSwitchCost ? AccessMode::Regular
                                               : AccessMode::Stride;
    // RC-NVM-bit's sub-field collection: the extra bit-column access
    // overlaps the burst transfer roughly half of the time, so charge
    // the collection burst on alternating gathers.
    unsigned collect = 0;
    if (spec_.strideCollectBursts > 0) {
        collectToggle_ = !collectToggle_;
        if (collectToggle_)
            collect = spec_.strideCollectBursts;
    }
    req.device.extraBursts = collect +
                             embeddedEccBursts(m, lines[0],
                                               isWrite(type));
    if (!isWrite(type))
        req.device.extraLatency = spec_.strideReadLatency;
    return req;
}

} // namespace sam
