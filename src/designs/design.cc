#include "src/designs/design.hh"

#include "src/area/area_model.hh"
#include "src/common/logging.hh"

namespace sam {

std::string
layoutName(LayoutKind kind)
{
    switch (kind) {
      case LayoutKind::RowStore:      return "row-store";
      case LayoutKind::ColumnStore:   return "column-store";
      case LayoutKind::SamAligned:    return "SAM-aligned";
      case LayoutKind::VerticalGroup: return "vertical-group";
      case LayoutKind::GsSegmented:   return "GS-segmented";
    }
    panic("unknown LayoutKind");
}

DesignSpec
makeDesign(DesignKind kind, EccScheme ecc, MemTech tech_override,
           bool use_tech_override)
{
    DesignSpec d;
    d.kind = kind;
    d.ecc = ecc;
    d.areaOverhead = AreaModel::areaOverhead(kind);

    switch (kind) {
      case DesignKind::Baseline:
      case DesignKind::Ideal:
        d.layout = LayoutKind::RowStore; // ideal swaps per query
        d.traits.performance = kind == DesignKind::Ideal ? 1 : -1;
        d.traits.powerRating = 1;
        d.traits.areaRating = 1;
        d.traits.modeSwitchRating = 1;
        break;

      case DesignKind::RcNvmBit:
        d.tech = MemTech::RRAM;
        d.supportsStride = true;
        d.strideAcrossRows = true;
        // Bit-level crossbar symmetry: a word-granularity field must be
        // assembled from multiple bit-column accesses (Section 6.2);
        // one extra column access per gather models the sub-field
        // collection overhead.
        d.strideCollectBursts = 1;
        d.layout = LayoutKind::VerticalGroup;
        d.traits = {true, true, true, false, false, true,
                    -1, 0, -1, true, 0};
        break;

      case DesignKind::RcNvmWord:
        d.tech = MemTech::RRAM;
        d.supportsStride = true;
        d.strideAcrossRows = true;
        d.layout = LayoutKind::VerticalGroup;
        d.traits = {true, true, true, false, false, true,
                    -1, 0, -1, true, 0};
        break;

      case DesignKind::GsDram:
      case DesignKind::GsDramEcc:
        d.supportsStride = true;
        d.zeroModeSwitchCost = true; // widened command interface
        d.embeddedEcc = kind == DesignKind::GsDramEcc;
        d.ecc = EccScheme::None;     // chipkill-incompatible layout
        d.layout = LayoutKind::GsSegmented;
        d.traits = {true, true, true, true, true, false,
                    1, 1, 1, false, 1};
        break;

      case DesignKind::SamSub:
        d.supportsStride = true;
        d.strideAcrossRows = true;
        d.layout = LayoutKind::VerticalGroup;
        d.power.background = 1.02; // extra decoding and SA logic
        d.traits = {true, true, true, false, false, true,
                    0, 1, 0, true, 0};
        break;

      case DesignKind::SamIo:
        d.supportsStride = true;
        d.layout = LayoutKind::SamAligned;
        // Stride reads fetch all four I/O buffers (288B internally for
        // the 72B sent on the channel). The surcharge is bounded by the
        // x16-mode read current, ~2.5x the x4 mode (array fetch
        // quadruples but the I/O driver share is unchanged).
        d.power.strideBurst = 2.5;
        // Transposed codeword layout (Figure 4(c)): no critical-word
        // first, and the whole 8-beat interval must elapse before a
        // codeword is checkable (Section 4.2.2, "<1%" impact).
        d.strideReadLatency = kBurstLength;
        d.traits = {true, true, true, false, false, false,
                    1, 0, 1, true, 0};
        break;

      case DesignKind::SamEn:
        d.supportsStride = true;
        d.layout = LayoutKind::SamAligned;
        // Option 1 (fine-grained activation) trims activation energy in
        // stride mode; option 2 (2-D buffer) restores the default
        // layout, so no transposed fetch surcharge either.
        d.power.strideAct = 0.5;
        d.traits = {true, true, true, false, false, true,
                    1, 1, 1, true, 0};
        break;
    }

    if (use_tech_override)
        d.tech = tech_override;
    return d;
}

} // namespace sam
