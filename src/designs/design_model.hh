/**
 * @file
 * Runtime request expansion for one design: translates logical line /
 * stride accesses into device-level requests with the design's timing
 * behaviour (same-row sub-row gathers vs column-wise subarray activates,
 * mode switches, RC-NVM-bit sub-field collection bursts, GS-DRAM-ecc
 * embedded-ECC bursts).
 */

#ifndef SAM_DESIGNS_DESIGN_MODEL_HH
#define SAM_DESIGNS_DESIGN_MODEL_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/gather.hh"
#include "src/controller/address_mapping.hh"
#include "src/controller/request.hh"
#include "src/designs/design.hh"

namespace sam {

class DesignModel
{
  public:
    DesignModel(const DesignSpec &spec, const AddressMapping &mapping,
                unsigned stride_unit);

    const DesignSpec &spec() const { return spec_; }
    unsigned strideUnit() const { return strideUnit_; }
    unsigned gatherFactor() const
    {
        return kCachelineBytes / strideUnit_;
    }

    /** Build a regular line-granular request. */
    MemRequest lineRequest(AccessType type, Addr line_addr,
                           Cycle arrival, unsigned core_id);

    /**
     * Build a stride request over a borrowed span of source-line
     * addresses (e.g. a trace-arena view). Requires
     * spec().supportsStride and count == gatherFactor().
     */
    MemRequest strideRequest(AccessType type, const Addr *lines,
                             std::size_t count, unsigned sector,
                             Cycle arrival, unsigned core_id);

    /**
     * Build a stride request from a gather plan. Requires
     * spec().supportsStride.
     */
    MemRequest strideRequest(AccessType type, const GatherPlan &plan,
                             Cycle arrival, unsigned core_id)
    {
        return strideRequest(type, plan.lines.data(), plan.lines.size(),
                             plan.sector, arrival, core_id);
    }

    /** Reset per-run controller-side state (ECC-line tracker). */
    void
    reset()
    {
        lastEccLine_.clear();
        collectToggle_ = false;
    }

  private:
    /**
     * Extra bursts for GS-DRAM-ecc's embedded in-page ECC: one ECC-line
     * fetch whenever the access leaves the last-touched ECC line of its
     * bank, plus an ECC update burst on writes.
     */
    unsigned embeddedEccBursts(const MappedAddr &m, Addr line_addr,
                               bool is_write);

    /**
     * Synthetic row id for a column-wise subarray opening (SAM-sub /
     * RC-NVM): all gathers of the same field column within the same
     * subarray share one "column row" and hit its buffer.
     */
    std::uint64_t columnRowId(const MappedAddr &m, unsigned sector) const;

    DesignSpec spec_;
    const AddressMapping &mapping_;
    unsigned strideUnit_;
    std::unordered_map<unsigned, std::vector<Addr>> lastEccLine_;
    bool collectToggle_ = false;
};

} // namespace sam

#endif // SAM_DESIGNS_DESIGN_MODEL_HH
