/**
 * @file
 * Per-design specification: substrate technology, stride capability,
 * layout constraints, power adjustments, and the qualitative traits of
 * the paper's Table 1. One DesignSpec fully determines how the system
 * simulator instantiates and drives the memory system for that design.
 */

#ifndef SAM_DESIGNS_DESIGN_HH
#define SAM_DESIGNS_DESIGN_HH

#include <string>

#include "src/common/types.hh"
#include "src/power/power_model.hh"

namespace sam {

/** How the IMDB lays records out in physical memory (Section 5.4.1). */
enum class LayoutKind {
    RowStore,       ///< Records contiguous (baseline, ideal-for-Qs).
    ColumnStore,    ///< Fields contiguous (ideal-for-Q software layout).
    SamAligned,     ///< Row-store with G-record groups aligned to
                    ///< sub-rows (SAM-IO / SAM-en, Figure 11(a)).
    VerticalGroup,  ///< Records of a group spread across G rows of one
                    ///< bank (SAM-sub / RC-NVM alignment).
    GsSegmented,    ///< 64B-segment transposed groups (GS-DRAM,
                    ///< Figure 11(b)).
};

std::string layoutName(LayoutKind kind);

/** Table 1 qualitative traits (printed by bench/table1_qualitative). */
struct QualTraits
{
    bool needsDbAlignment = false;
    bool needsIsaExtension = false;
    bool needsSectorCache = false;
    bool modifiesMemController = false;
    bool modifiesCommandInterface = false;
    bool criticalWordFirst = true;
    int performance = 0;        ///< -1 poor, 0 fair, +1 good.
    int powerRating = 0;
    int areaRating = 0;
    bool reliable = true;       ///< Chipkill-class protection retained.
    int modeSwitchRating = 0;
};

/** Everything the simulator needs to instantiate one design. */
struct DesignSpec
{
    DesignKind kind = DesignKind::Baseline;
    MemTech tech = MemTech::DRAM;
    EccScheme ecc = EccScheme::SscDsd;

    bool supportsStride = false;
    /**
     * Stride gathers span G rows of a column-wise subarray (SAM-sub,
     * RC-NVM) rather than sub-rows of one open row (SAM-IO/en,
     * GS-DRAM).
     */
    bool strideAcrossRows = false;
    /** GS-DRAM widened the command bus: no mode-switch penalty. */
    bool zeroModeSwitchCost = false;
    /**
     * Extra same-row bursts every stride access pays to collect
     * bit-level sub-fields (RC-NVM-bit, Section 6.2).
     */
    unsigned strideCollectBursts = 0;
    /** Embedded in-page ECC (GS-DRAM-ecc): extra ECC-line bursts. */
    bool embeddedEcc = false;
    /**
     * Response-path cycles added to stride reads (SAM-IO's transposed
     * layout cannot deliver critical-word-first; the impact is small,
     * Section 4.2.2).
     */
    unsigned strideReadLatency = 0;

    /** Physical record layout this design requires. */
    LayoutKind layout = LayoutKind::RowStore;

    double areaOverhead = 0.0;  ///< Derates array timing (Section 6.1).
    PowerAdjust power;
    QualTraits traits;

    std::string name() const { return designName(kind); }
};

/**
 * Build the spec for a design under a given ECC scheme (the scheme sets
 * the strided granularity; GS-DRAM forces EccScheme::None since it is
 * incompatible with chipkill). `tech_override` re-bases a design on the
 * other technology for the Figure 14(a) experiment.
 */
DesignSpec makeDesign(DesignKind kind,
                      EccScheme ecc = EccScheme::SscDsd,
                      MemTech tech_override = MemTech::DRAM,
                      bool use_tech_override = false);

} // namespace sam

#endif // SAM_DESIGNS_DESIGN_HH
