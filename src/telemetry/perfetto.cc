#include "src/telemetry/perfetto.hh"

#include <string>
#include <utility>

namespace sam {

namespace {

/**
 * Track (thread) ids within one channel's process: banks first, then
 * one rank-level track per rank for rank-scoped commands (REF, mode
 * switches). tid 0 is left unused so tracks start at 1.
 */
unsigned
bankTid(const Geometry &geom, const MappedAddr &a)
{
    return 1 + a.rank * geom.banksPerRank() + a.bankInRank(geom);
}

unsigned
rankTid(const Geometry &geom, unsigned rank)
{
    return 1 + geom.ranks * geom.banksPerRank() + rank;
}

bool
rankScoped(CmdKind kind)
{
    return kind == CmdKind::Ref || kind == CmdKind::ModeSwitch;
}

Json
metaEvent(unsigned pid, unsigned tid, const std::string &kind,
          const std::string &name, bool thread)
{
    Json e = Json::object();
    e.set("ph", "M");
    e.set("pid", pid);
    if (thread)
        e.set("tid", tid);
    e.set("name", kind);
    Json args = Json::object();
    args.set("name", name);
    e.set("args", std::move(args));
    return e;
}

/** Nominal command occupancy used as the slice duration (cycles). */
Cycle
cmdDuration(const TimingParams &t, CmdKind kind)
{
    switch (kind) {
      case CmdKind::Act:        return t.tRCD;
      case CmdKind::Pre:        return t.tRP;
      case CmdKind::Rd:
      case CmdKind::Wr:         return t.tBL;
      case CmdKind::Ref:        return t.tRFC;
      case CmdKind::ModeSwitch: return t.tRTR;
    }
    return 1;
}

} // namespace

Json
perfettoTraceJson(const TelemetrySnapshot &snap)
{
    const Geometry &geom = snap.geom;
    // trace-event timestamps are microseconds; we simulate in bus
    // cycles of tCkNs nanoseconds.
    const double us_per_cycle = snap.tCkNs / 1000.0;
    const unsigned requests_pid = geom.channels;

    Json events = Json::array();

    // ----- Track naming metadata ------------------------------------
    for (unsigned ch = 0; ch < geom.channels; ++ch) {
        events.push(metaEvent(ch, 0, "process_name",
                              "channel " + std::to_string(ch), false));
        for (unsigned rk = 0; rk < geom.ranks; ++rk) {
            for (unsigned b = 0; b < geom.banksPerRank(); ++b) {
                MappedAddr a;
                a.channel = ch;
                a.rank = rk;
                a.bankGroup = b / geom.banksPerGroup;
                a.bank = b % geom.banksPerGroup;
                events.push(metaEvent(
                    ch, bankTid(geom, a), "thread_name",
                    "rk" + std::to_string(rk) + ".bg" +
                        std::to_string(a.bankGroup) + ".bk" +
                        std::to_string(a.bank),
                    true));
            }
            events.push(metaEvent(ch, rankTid(geom, rk), "thread_name",
                                  "rk" + std::to_string(rk) + " (rank)",
                                  true));
        }
    }
    events.push(metaEvent(requests_pid, 0, "process_name", "requests",
                          false));

    // ----- Command slices -------------------------------------------
    for (const Command &cmd : snap.commands) {
        Json e = Json::object();
        e.set("ph", "X");
        e.set("pid", cmd.addr.channel);
        e.set("tid", rankScoped(cmd.kind)
                         ? rankTid(geom, cmd.addr.rank)
                         : bankTid(geom, cmd.addr));
        e.set("ts", static_cast<double>(cmd.at) * us_per_cycle);
        e.set("dur", static_cast<double>(cmdDuration(snap.timing,
                                                     cmd.kind)) *
                         us_per_cycle);
        e.set("name", cmdKindName(cmd.kind));
        e.set("cat", "dram");
        Json args = Json::object();
        args.set("cycle", cmd.at);
        if (cmd.kind == CmdKind::Act || cmd.kind == CmdKind::Pre)
            args.set("row", cmd.addr.row);
        if (cmd.kind == CmdKind::Rd || cmd.kind == CmdKind::Wr) {
            args.set("row", cmd.addr.row);
            args.set("col", cmd.addr.column);
            args.set("mode",
                     cmd.mode == AccessMode::Stride ? "stride"
                                                    : "regular");
        }
        if (cmd.kind == CmdKind::ModeSwitch)
            args.set("mode",
                     cmd.mode == AccessMode::Stride ? "stride"
                                                    : "regular");
        e.set("args", std::move(args));
        events.push(std::move(e));
    }

    // ----- Request slices + flows to their commands ------------------
    for (const RequestRecord &req : snap.requests) {
        const unsigned tid = req.core + 1;
        const double ts = static_cast<double>(req.start) * us_per_cycle;
        const Cycle dur_cycles =
            req.done > req.start ? req.done - req.start : 1;
        Json e = Json::object();
        e.set("ph", "X");
        e.set("pid", requests_pid);
        e.set("tid", tid);
        e.set("ts", ts);
        e.set("dur", static_cast<double>(dur_cycles) * us_per_cycle);
        e.set("name", requestClassName(req.cls));
        e.set("cat", "request");
        Json args = Json::object();
        args.set("id", req.id);
        args.set("channel", req.channel);
        args.set("arrivalCycle", req.arrival);
        args.set("doneCycle", req.done);
        e.set("args", std::move(args));
        events.push(std::move(e));

        if (req.firstCmd == RequestRecord::kNoCommand)
            continue;
        Json start = Json::object();
        start.set("ph", "s");
        start.set("pid", requests_pid);
        start.set("tid", tid);
        start.set("ts", ts);
        start.set("id", req.id);
        start.set("name", "req");
        start.set("cat", "req");
        events.push(std::move(start));
        for (std::size_t i = req.firstCmd; i <= req.lastCmd; ++i) {
            const Command &cmd = snap.commands[i];
            Json f = Json::object();
            f.set("ph", i == req.lastCmd ? "f" : "t");
            f.set("pid", cmd.addr.channel);
            f.set("tid", rankScoped(cmd.kind)
                             ? rankTid(geom, cmd.addr.rank)
                             : bankTid(geom, cmd.addr));
            f.set("ts", static_cast<double>(cmd.at) * us_per_cycle);
            f.set("id", req.id);
            f.set("name", "req");
            f.set("cat", "req");
            if (i == req.lastCmd)
                f.set("bp", "e");
            events.push(std::move(f));
        }
    }

    Json doc = Json::object();
    doc.set("displayTimeUnit", "ns");
    doc.set("traceEvents", std::move(events));
    return doc;
}

} // namespace sam
