/**
 * @file
 * Chrome/Perfetto trace-event exporter for the telemetry command trace.
 *
 * Emits the JSON "trace event format" understood by ui.perfetto.dev and
 * chrome://tracing: one process per channel with one track (thread) per
 * bank plus one per rank (refresh / mode switches), a separate
 * "requests" process with one track per core, and flow arrows linking
 * each request slice to the DDR commands it generated.
 */

#ifndef SAM_TELEMETRY_PERFETTO_HH
#define SAM_TELEMETRY_PERFETTO_HH

#include "src/common/json.hh"
#include "src/telemetry/telemetry.hh"

namespace sam {

/**
 * Build the trace-event document. Requires a snapshot collected with
 * `commandTrace` enabled (an empty command stream still produces a
 * valid, if boring, trace).
 */
Json perfettoTraceJson(const TelemetrySnapshot &snap);

} // namespace sam

#endif // SAM_TELEMETRY_PERFETTO_HH
