/**
 * @file
 * Run telemetry: latency histograms, windowed time series, and an
 * optional full command trace.
 *
 * The collector rides the two existing observation points — the Device
 * command observer (shared with the src/check protocol oracle) and the
 * controller's request begin/end notifications — so it is purely
 * passive: it never changes scheduling decisions, timestamps, or data,
 * and when disabled nothing is attached and the simulated timing is
 * bit-identical to a build without telemetry.
 *
 * Collected always (when enabled):
 *   - per-request-class end-to-end latency histograms (p50/p95/p99),
 *   - per-channel windowed series: data-bus bytes, read/write queue
 *     depth at issue, row-hit rate, I/O mode switches,
 *   - per-bank windowed data-bus bytes.
 * Collected only with `commandTrace` (the Perfetto path):
 *   - the raw command stream and per-request command spans, bounded by
 *     maxTraceCommands/maxTraceRequests (overflow is counted, not
 *     silently dropped).
 */

#ifndef SAM_TELEMETRY_TELEMETRY_HH
#define SAM_TELEMETRY_TELEMETRY_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/histogram.hh"
#include "src/common/json.hh"
#include "src/common/timeseries.hh"
#include "src/common/types.hh"
#include "src/dram/command.hh"
#include "src/dram/device.hh"
#include "src/dram/timing.hh"

namespace sam {

/** Request classes tracked with separate latency histograms. */
enum class RequestClass {
    Read,
    Write,
    StrideRead,
    StrideWrite,
    Scrub,
};

inline constexpr std::size_t kRequestClasses = 5;

std::string requestClassName(RequestClass cls);

/** Collector configuration (all bounds keep the footprint fixed). */
struct TelemetryConfig
{
    /** Master switch; off means nothing is attached or recorded. */
    bool enabled = false;
    /** Record the raw command stream (needed for Perfetto export). */
    bool commandTrace = false;
    /** Width of one time-series aggregation window (cycles). */
    Cycle windowCycles = 4096;
    /** Retained windows per series (oldest evicted beyond this). */
    std::size_t maxWindows = 512;
    /** Command-trace bound; overflow is counted, not recorded. */
    std::size_t maxTraceCommands = 1u << 20;
    /** Request-span bound for the trace. */
    std::size_t maxTraceRequests = 1u << 18;
};

/** One request's command-stream span in the trace. */
struct RequestRecord
{
    std::uint64_t id = 0;
    RequestClass cls = RequestClass::Read;
    unsigned core = 0;
    unsigned channel = 0;
    Cycle arrival = 0;
    Cycle start = 0;   ///< When the controller began serving it.
    Cycle done = 0;    ///< Completion time (pipeline latency included).
    /** [firstCmd, lastCmd] index span into `commands` (npos if none). */
    std::size_t firstCmd = kNoCommand;
    std::size_t lastCmd = kNoCommand;

    static constexpr std::size_t kNoCommand = ~std::size_t{0};
};

/** Per-channel windowed series bundle. */
struct ChannelSeries
{
    ChannelSeries(Cycle window_cycles, std::size_t max_windows)
        : bandwidthBytes(window_cycles, max_windows),
          queueDepth(window_cycles, max_windows),
          rowHitRate(window_cycles, max_windows),
          modeSwitches(window_cycles, max_windows)
    {
    }

    WindowSeries bandwidthBytes;  ///< Data-bus bytes per window.
    WindowSeries queueDepth;      ///< Read+write queue depth at issue.
    WindowSeries rowHitRate;      ///< 1/0 per request; mean = hit rate.
    WindowSeries modeSwitches;    ///< SAM I/O mode switches per window.
};

/**
 * Immutable result of one run's collection. Shared (not copied) into
 * RunStats so campaign plumbing stays cheap.
 */
struct TelemetrySnapshot
{
    TelemetryConfig config;
    Geometry geom;
    TimingParams timing;
    double tCkNs = 0.833;

    std::array<Histogram, kRequestClasses> latency;
    std::vector<ChannelSeries> channels;       ///< Per channel.
    std::vector<WindowSeries> bankBandwidth;   ///< Per flat bank.

    std::vector<Command> commands;             ///< Trace only.
    std::vector<RequestRecord> requests;       ///< Trace only.

    std::uint64_t totalCommands = 0;
    std::uint64_t totalRequests = 0;
    std::uint64_t droppedCommands = 0;
    std::uint64_t droppedRequests = 0;

    const Histogram &
    classHistogram(RequestClass cls) const
    {
        return latency[static_cast<std::size_t>(cls)];
    }

    /** Flat-bank label, e.g. "ch0.rk1.bg2.bk3". */
    std::string bankLabel(std::size_t flat_bank) const;

    /** "sam-telemetry-v1" summary document (no raw command stream). */
    Json summaryJson() const;

    /** Latency histogram summaries only (embedded in BENCH JSON). */
    Json latencyJson() const;
};

/**
 * Live collector. Attach to a Device, point the controller at it, run,
 * then finish() to freeze the snapshot.
 */
class Telemetry
{
  public:
    Telemetry(const TelemetryConfig &config, const Geometry &geom,
              const TimingParams &timing);
    ~Telemetry();

    Telemetry(const Telemetry &) = delete;
    Telemetry &operator=(const Telemetry &) = delete;

    /** Subscribe to the device's command stream. */
    void attach(Device &dev);

    /** Controller hook: one request is about to be issued. */
    void beginRequest(std::uint64_t id, RequestClass cls, unsigned core,
                      unsigned channel, Cycle arrival,
                      std::size_t read_depth, std::size_t write_depth,
                      Cycle now);

    /** Controller hook: the request begun last completed. */
    void endRequest(const AccessResult &result, Cycle done);

    /** Freeze and hand over the collected data. */
    std::shared_ptr<const TelemetrySnapshot> finish();

  private:
    void onCommand(const Command &cmd);

    std::unique_ptr<TelemetrySnapshot> snap_;
    Device *device_ = nullptr;

    /** The request currently being served (controller serves one at a
     *  time, so a single pending slot suffices). */
    RequestRecord pending_;
    bool pendingActive_ = false;
    bool pendingTraced_ = false;
};

} // namespace sam

#endif // SAM_TELEMETRY_TELEMETRY_HH
