#include "src/telemetry/telemetry.hh"

#include <utility>

#include "src/common/logging.hh"

namespace sam {

namespace {

Json
histogramJson(const Histogram &h)
{
    const HistogramSummary s = h.summary();
    Json j = Json::object();
    j.set("count", s.count);
    j.set("min", s.min);
    j.set("max", s.max);
    j.set("mean", s.mean);
    j.set("p50", s.p50);
    j.set("p95", s.p95);
    j.set("p99", s.p99);
    return j;
}

Json
seriesJson(const WindowSeries &s)
{
    Json j = Json::object();
    j.set("windowCycles", s.windowCycles());
    Json windows = Json::array();
    for (const SeriesWindow &w : s.windows()) {
        Json wj = Json::object();
        wj.set("index", w.index);
        wj.set("sum", w.sum);
        wj.set("count", w.count);
        wj.set("peak", w.peak);
        windows.push(std::move(wj));
    }
    j.set("windows", std::move(windows));
    j.set("evicted", s.evicted());
    j.set("droppedOld", s.droppedOld());
    return j;
}

} // namespace

std::string
requestClassName(RequestClass cls)
{
    switch (cls) {
      case RequestClass::Read:        return "read";
      case RequestClass::Write:       return "write";
      case RequestClass::StrideRead:  return "stride_read";
      case RequestClass::StrideWrite: return "stride_write";
      case RequestClass::Scrub:       return "scrub";
    }
    panic("unknown RequestClass");
}

std::string
TelemetrySnapshot::bankLabel(std::size_t flat_bank) const
{
    const unsigned per_rank = geom.banksPerRank();
    const unsigned in_rank = static_cast<unsigned>(flat_bank % per_rank);
    const unsigned rank_id = static_cast<unsigned>(flat_bank / per_rank);
    return "ch" + std::to_string(rank_id / geom.ranks) + ".rk" +
           std::to_string(rank_id % geom.ranks) + ".bg" +
           std::to_string(in_rank / geom.banksPerGroup) + ".bk" +
           std::to_string(in_rank % geom.banksPerGroup);
}

Json
TelemetrySnapshot::latencyJson() const
{
    Json j = Json::object();
    for (std::size_t c = 0; c < kRequestClasses; ++c) {
        if (!latency[c].count())
            continue;
        j.set(requestClassName(static_cast<RequestClass>(c)),
              histogramJson(latency[c]));
    }
    return j;
}

Json
TelemetrySnapshot::summaryJson() const
{
    Json doc = Json::object();
    doc.set("schema", "sam-telemetry-v1");
    doc.set("tCkNs", tCkNs);
    doc.set("windowCycles", config.windowCycles);
    doc.set("latencyCycles", latencyJson());

    Json chans = Json::array();
    for (std::size_t c = 0; c < channels.size(); ++c) {
        Json cj = Json::object();
        cj.set("channel", static_cast<std::uint64_t>(c));
        cj.set("bandwidthBytes", seriesJson(channels[c].bandwidthBytes));
        cj.set("queueDepth", seriesJson(channels[c].queueDepth));
        cj.set("rowHitRate", seriesJson(channels[c].rowHitRate));
        cj.set("modeSwitches", seriesJson(channels[c].modeSwitches));
        chans.push(std::move(cj));
    }
    doc.set("channels", std::move(chans));

    Json banks = Json::array();
    for (std::size_t b = 0; b < bankBandwidth.size(); ++b) {
        // Idle banks are omitted so large geometries stay readable.
        if (!bankBandwidth[b].size())
            continue;
        Json bj = Json::object();
        bj.set("bank", bankLabel(b));
        bj.set("totalBytes", bankBandwidth[b].totalSum());
        bj.set("bandwidthBytes", seriesJson(bankBandwidth[b]));
        banks.push(std::move(bj));
    }
    doc.set("banks", std::move(banks));

    Json counters = Json::object();
    counters.set("totalCommands", totalCommands);
    counters.set("totalRequests", totalRequests);
    counters.set("tracedCommands",
                 static_cast<std::uint64_t>(commands.size()));
    counters.set("tracedRequests",
                 static_cast<std::uint64_t>(requests.size()));
    counters.set("droppedCommands", droppedCommands);
    counters.set("droppedRequests", droppedRequests);
    doc.set("counters", std::move(counters));
    return doc;
}

Telemetry::Telemetry(const TelemetryConfig &config, const Geometry &geom,
                     const TimingParams &timing)
    : snap_(std::make_unique<TelemetrySnapshot>())
{
    snap_->config = config;
    snap_->geom = geom;
    snap_->timing = timing;
    snap_->tCkNs = timing.tCkNs;
    snap_->channels.reserve(geom.channels);
    for (unsigned c = 0; c < geom.channels; ++c)
        snap_->channels.emplace_back(config.windowCycles,
                                     config.maxWindows);
    snap_->bankBandwidth.reserve(geom.totalBanks());
    for (unsigned b = 0; b < geom.totalBanks(); ++b)
        snap_->bankBandwidth.emplace_back(config.windowCycles,
                                          config.maxWindows);
}

Telemetry::~Telemetry()
{
    // The device must outlive the collector (declare it first); the
    // observer is unhooked here so a collector can be torn down early.
    if (device_)
        device_->removeCommandObserver(this);
}

void
Telemetry::attach(Device &dev)
{
    sam_assert(device_ == nullptr, "telemetry already attached");
    device_ = &dev;
    dev.addCommandObserver(
        this, [this](const Command &cmd) { onCommand(cmd); });
}

void
Telemetry::onCommand(const Command &cmd)
{
    TelemetrySnapshot &s = *snap_;
    ++s.totalCommands;

    const unsigned ch = cmd.addr.channel;
    if (cmd.kind == CmdKind::Rd || cmd.kind == CmdKind::Wr) {
        s.channels[ch].bandwidthBytes.add(cmd.at, kCachelineBytes);
        s.bankBandwidth[cmd.addr.flatBank(s.geom)].add(cmd.at,
                                                       kCachelineBytes);
    } else if (cmd.kind == CmdKind::ModeSwitch) {
        s.channels[ch].modeSwitches.add(cmd.at, 1.0);
    }

    if (!s.config.commandTrace)
        return;
    if (s.commands.size() >= s.config.maxTraceCommands) {
        ++s.droppedCommands;
        return;
    }
    s.commands.push_back(cmd);
    if (pendingActive_ && pendingTraced_) {
        const std::size_t idx = s.commands.size() - 1;
        if (pending_.firstCmd == RequestRecord::kNoCommand)
            pending_.firstCmd = idx;
        pending_.lastCmd = idx;
    }
}

void
Telemetry::beginRequest(std::uint64_t id, RequestClass cls, unsigned core,
                        unsigned channel, Cycle arrival,
                        std::size_t read_depth, std::size_t write_depth,
                        Cycle now)
{
    TelemetrySnapshot &s = *snap_;
    ++s.totalRequests;
    s.channels[channel].queueDepth.add(
        now, static_cast<double>(read_depth + write_depth));

    pending_ = RequestRecord{};
    pending_.id = id;
    pending_.cls = cls;
    pending_.core = core;
    pending_.channel = channel;
    pending_.arrival = arrival;
    pending_.start = now;
    pendingActive_ = true;
    pendingTraced_ = false;
    if (s.config.commandTrace) {
        if (s.requests.size() < s.config.maxTraceRequests)
            pendingTraced_ = true;
        else
            ++s.droppedRequests;
    }
}

void
Telemetry::endRequest(const AccessResult &result, Cycle done)
{
    sam_assert(pendingActive_, "endRequest without beginRequest");
    TelemetrySnapshot &s = *snap_;

    const Cycle lat = done >= pending_.arrival ? done - pending_.arrival
                                               : 0;
    s.latency[static_cast<std::size_t>(pending_.cls)].record(lat);
    s.channels[pending_.channel].rowHitRate.add(result.issue,
                                                result.rowHit ? 1.0 : 0.0);

    if (pendingTraced_) {
        pending_.done = done;
        s.requests.push_back(pending_);
    }
    pendingActive_ = false;
    pendingTraced_ = false;
}

std::shared_ptr<const TelemetrySnapshot>
Telemetry::finish()
{
    sam_assert(snap_ != nullptr, "telemetry already finished");
    if (device_) {
        device_->removeCommandObserver(this);
        device_ = nullptr;
    }
    return std::shared_ptr<const TelemetrySnapshot>(std::move(snap_));
}

} // namespace sam
