/**
 * @file
 * Shortened systematic Reed-Solomon codec over GF(2^8).
 *
 * Chipkill SSC is RS(18,16) with t = 1 (corrects any single chip symbol);
 * the SSC-DSD operating point maps to RS(36,32) with t = 2 where each chip
 * contributes one 8-bit symbol formed from two 4-bit beats (see
 * DESIGN.md, Substitutions). The decoder implements syndrome computation,
 * Berlekamp-Massey, Chien search, and Forney's algorithm.
 */

#ifndef SAM_ECC_REED_SOLOMON_HH
#define SAM_ECC_REED_SOLOMON_HH

#include <cstdint>
#include <vector>

#include "src/ecc/gf256.hh"

namespace sam {

/** Outcome of an RS decode attempt. */
enum class DecodeStatus {
    Clean,          ///< No errors detected.
    Corrected,      ///< Errors found and corrected in place.
    Detected,       ///< Uncorrectable but detected (beyond t, within
                    ///< detection capability or failed correction).
};

/** Result of decoding one codeword. */
struct DecodeResult
{
    DecodeStatus status = DecodeStatus::Clean;
    /** Symbol positions the decoder corrected (codeword indexing). */
    std::vector<unsigned> correctedPositions;
};

/**
 * A shortened RS(n, k) code over GF(2^8) with n - k = 2t check symbols.
 *
 * Codewords are laid out data-first: positions [0, k) are data symbols,
 * positions [k, n) are check symbols. Shortening from RS(255, 255-2t) is
 * implicit: absent leading symbols are treated as zero.
 */
class ReedSolomon
{
  public:
    /**
     * @param n Total symbols per codeword (data + check), n <= 255.
     * @param k Data symbols per codeword; (n - k) must be even.
     */
    ReedSolomon(unsigned n, unsigned k);

    unsigned n() const { return n_; }
    unsigned k() const { return k_; }
    unsigned numCheckSymbols() const { return n_ - k_; }
    /** Maximum number of correctable symbol errors. */
    unsigned t() const { return (n_ - k_) / 2; }

    /**
     * Systematically encode `data` (k symbols) into a full codeword of n
     * symbols (data followed by checks).
     */
    std::vector<std::uint8_t> encode(const std::vector<std::uint8_t> &data)
        const;

    /**
     * Compute the (n - k) check symbols of `data` (k symbols) into
     * `parity`, allocation-free. The hot encode path: a simulated
     * write re-encodes every touched codeword, so this runs millions
     * of times per campaign.
     */
    void encodeParity(const std::uint8_t *data,
                      std::uint8_t *parity) const;

    /**
     * Decode `codeword` (n symbols) in place, correcting up to t symbol
     * errors. If `max_correct` is less than t, the decoder refuses to
     * correct more than `max_correct` symbols and reports Detected
     * instead (models SSC-DSD's correct-one/detect-two policy).
     */
    DecodeResult decode(std::vector<std::uint8_t> &codeword,
                        unsigned max_correct = ~0u) const;

  private:
    /** Evaluate polynomial `poly` (coefficients low-order first) at x. */
    static GF256::Elem evalPoly(const std::vector<std::uint8_t> &poly,
                                GF256::Elem x);

    unsigned n_;
    unsigned k_;
    /** Generator polynomial, low-order coefficient first, degree 2t. */
    std::vector<std::uint8_t> generator_;
    /**
     * Sliced syndrome table: entry [j * 256 + v] packs the
     * contribution of symbol value v at codeword position j to all 2t
     * syndromes, syndrome i in byte i (2t <= 8 for every supported
     * code). Syndromes of a whole codeword are then one table XOR per
     * nonzero symbol, so the all-zero-syndrome bail-out never touches
     * Berlekamp-Massey.
     */
    std::vector<std::uint64_t> syndTable_;
    /**
     * Sliced encoder table: entry [v] packs v times each generator
     * coefficient into the LFSR remainder layout (remainder byte b at
     * bits 8b, highest degree at byte 0), so absorbing a data symbol
     * is shift + one XOR. Built alongside syndTable_ when 2t <= 8.
     */
    std::vector<std::uint64_t> encTable_;
};

} // namespace sam

#endif // SAM_ECC_REED_SOLOMON_HH
