#include "src/ecc/gf256.hh"

#include "src/common/logging.hh"

namespace sam {

GF256::Tables::Tables()
{
    // Build exp/log tables for generator alpha = 0x02 modulo 0x11d.
    unsigned x = 1;
    for (unsigned i = 0; i < 255; ++i) {
        exp[i] = static_cast<Elem>(x);
        log[x] = i;
        x <<= 1;
        if (x & 0x100)
            x ^= 0x11d;
    }
    // Duplicate the table so mul() can skip the mod-255 reduction.
    for (unsigned i = 255; i < 512; ++i)
        exp[i] = exp[i - 255];
    log[0] = 0; // never read; log() guards zero
}

const GF256::Tables &
GF256::tables()
{
    static const Tables t;
    return t;
}

GF256::Elem
GF256::mul(Elem a, Elem b)
{
    if (a == 0 || b == 0)
        return 0;
    const Tables &t = tables();
    return t.exp[t.log[a] + t.log[b]];
}

GF256::Elem
GF256::div(Elem a, Elem b)
{
    sam_assert(b != 0, "GF256 division by zero");
    if (a == 0)
        return 0;
    const Tables &t = tables();
    return t.exp[t.log[a] + 255 - t.log[b]];
}

GF256::Elem
GF256::inv(Elem a)
{
    sam_assert(a != 0, "GF256 inverse of zero");
    const Tables &t = tables();
    return t.exp[255 - t.log[a]];
}

GF256::Elem
GF256::pow(Elem a, unsigned n)
{
    if (n == 0)
        return 1;
    if (a == 0)
        return 0;
    const Tables &t = tables();
    return t.exp[(static_cast<unsigned long>(t.log[a]) * n) % 255];
}

GF256::Elem
GF256::alphaPow(unsigned n)
{
    return tables().exp[n % 255];
}

unsigned
GF256::log(Elem a)
{
    sam_assert(a != 0, "GF256 log of zero");
    return tables().log[a];
}

} // namespace sam
