/**
 * @file
 * Rank-level ECC engine: encodes 64B lines into data+parity blobs laid
 * out across the chips of a chipkill rank, decodes/corrects on read, and
 * exposes chip-accurate error injection (Section 2.3, Figure 4).
 *
 * Geometry per scheme (all use 16 data chips worth of payload per line
 * and 8 parity bytes per 64B, i.e. the 2-in-18 chip overhead):
 *
 *  - SEC-DED : 8 x (72,64) extended Hamming codewords, one per 8B word.
 *              A chip failure spans 4 bits of every codeword, which
 *              SEC-DED cannot correct -- the motivating weakness.
 *  - SSC     : 4 x RS(18,16) over GF(2^8); chip c holds symbol c of every
 *              codeword (8 bits per chip per codeword, Figure 4(b)).
 *  - SSC-DSD : 2 x RS(36,32) over GF(2^8); each chip contributes one
 *              8-bit symbol built from two 4-bit beats. Decode policy is
 *              correct-one / detect-two symbols (chips).
 *  - SSC-32  : 2 x (2 interleaved RS(18,16)); 16-bit symbols, chip c
 *              holds both interleaves of symbol c.
 *  - Bamboo-72: one RS(72,64) codeword over the whole 512b line (the
 *              stronger large-codeword variant the paper cites [26]);
 *              chip c holds symbols {c, 18+c, 36+c, 54+c}, so a failed
 *              chip is 4 of the 8 correctable symbols.
 */

#ifndef SAM_ECC_ECC_ENGINE_HH
#define SAM_ECC_ECC_ENGINE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/random.hh"
#include "src/common/stats.hh"
#include "src/common/types.hh"
#include "src/ecc/reed_solomon.hh"

namespace sam {

/**
 * Per-scheme codeword-granular decode counters (finer than the
 * line-granular EccStats the DataPath keeps): one engine instance
 * serves one rank, so these are the rank's per-scheme corrected /
 * detected totals surfaced in stats dumps.
 */
struct EccEngineStats
{
    Counter linesDecoded;        ///< decodeLine() invocations.
    Counter codewordsCorrected;  ///< Codewords repaired in place.
    Counter codewordsDetected;   ///< Codewords detected-uncorrectable.
    Counter symbolsCorrected;    ///< Symbols/bits repaired in total.

    void registerIn(StatGroup &group) const;
};

/** Per-line decode outcome reported to the memory controller. */
struct EccLineResult
{
    bool clean = true;           ///< No errors present.
    bool corrected = false;      ///< At least one codeword corrected.
    bool uncorrectable = false;  ///< Detected-but-uncorrectable error.
    unsigned symbolsCorrected = 0;
};

/**
 * Encoder/decoder for one rank's ECC scheme. Stateless apart from
 * statistics; safe to share across banks of the same rank.
 *
 * The Reed-Solomon codec behind the RS schemes is borrowed from the
 * process-wide CodecRegistry, so constructing an engine is cheap (no
 * table building) -- a fresh engine per Session/DataPath/worker is
 * the intended usage.
 */
class EccEngine
{
  public:
    /** Tag selecting a privately constructed codec (test seam). */
    struct PrivateCodec
    {
    };

    explicit EccEngine(EccScheme scheme);

    /**
     * Engine whose codec is constructed privately instead of borrowed
     * from the CodecRegistry. Differential tests use this to pin the
     * shared codec byte- and stats-identical to an independent build.
     */
    EccEngine(EccScheme scheme, PrivateCodec);

    EccScheme scheme() const { return scheme_; }

    /** Parity bytes appended to each 64B line (0 or 8). */
    unsigned parityBytesPerLine() const;

    /** parityBytesPerLine() without constructing an engine. */
    static unsigned parityBytesFor(EccScheme scheme)
    {
        return scheme == EccScheme::None ? 0 : 8;
    }

    /** Total chips in the rank (data + parity) for injection purposes. */
    unsigned numChips() const;

    /** Data chips in the rank. */
    unsigned numDataChips() const;

    /**
     * Encode a 64B line; returns 64 data bytes followed by
     * parityBytesPerLine() parity bytes.
     */
    std::vector<std::uint8_t> encodeLine(
        const std::vector<std::uint8_t> &line) const;

    /** Encode 64 raw bytes (no intermediate vector at the caller). */
    std::vector<std::uint8_t> encodeLine(
        const std::uint8_t *data64) const;

    /**
     * Encode 64 raw bytes into a caller-provided blob of
     * 64 + parityBytesPerLine() bytes, allocation-free. Every
     * simulated write (writebacks, strided RMW, scrubs) lands here,
     * so this path must not touch the heap.
     */
    void encodeLineInto(const std::uint8_t *data64,
                        std::uint8_t *blob) const;

    /**
     * Decode a blob produced by encodeLine() in place (correcting
     * correctable errors) and report the outcome. On success the first
     * 64 bytes of `blob` are the corrected data.
     */
    EccLineResult decodeLine(std::vector<std::uint8_t> &blob) const;

    /**
     * Account a line the DataPath's clean fast path proved intact
     * without decoding: exactly the counters a decodeLine() returning
     * Clean would have bumped (linesDecoded only), so per-scheme stats
     * are bit-identical with the fast path on or off.
     */
    void noteCleanLine() const { ++stats_.linesDecoded; }

    /**
     * Flip every bit this chip contributes to the line -- models a
     * whole-chip (chipkill) failure.
     */
    void corruptChip(std::vector<std::uint8_t> &blob, unsigned chip) const;

    /**
     * Flip `nbits` random bits of the chip's contribution (partial chip
     * fault / transient errors).
     */
    void corruptChipBits(std::vector<std::uint8_t> &blob, unsigned chip,
                         unsigned nbits, Rng &rng) const;

    /** Flip a single absolute bit of the blob. */
    static void flipBit(std::vector<std::uint8_t> &blob,
                        std::size_t bit_index);

    /** Whether a whole-chip failure is correctable under this scheme. */
    bool toleratesChipFailure() const;

    const EccEngineStats &stats() const { return stats_; }

  private:
    /** Byte indices within the blob that chip `chip` contributes to. */
    std::vector<std::size_t> chipBytes(unsigned chip) const;

    /** Bit indices (absolute in blob) chip `chip` drives. */
    std::vector<std::size_t> chipBits(unsigned chip) const;

    EccScheme scheme_;
    /** Shared immutable codec (CodecRegistry), or ownedRs_.get(). */
    const ReedSolomon *rs_ = nullptr;
    /** Non-null only for the PrivateCodec test seam. */
    std::unique_ptr<const ReedSolomon> ownedRs_;
    /** Mutable: decodeLine() is logically const w.r.t. the codec. */
    mutable EccEngineStats stats_;
};

} // namespace sam

#endif // SAM_ECC_ECC_ENGINE_HH
