#include "src/ecc/secded.hh"

#include <array>
#include <bit>

namespace sam {

namespace {

/**
 * Static layout tables for the extended Hamming code. Codeword positions
 * are 1-indexed 1..71; powers of two hold the seven Hamming check bits;
 * the overall parity bit lives conceptually at position 0.
 */
struct Layout
{
    /** Codeword position of each of the 64 data bits. */
    std::array<unsigned, 64> posOfDataBit;
    /** Data bit index at each codeword position (or -1). */
    std::array<int, 72> dataBitAtPos;
    /** For each of the 7 check bits, mask over data bits it covers. */
    std::array<std::uint64_t, 7> coverMask;

    Layout()
    {
        dataBitAtPos.fill(-1);
        unsigned data_bit = 0;
        for (unsigned pos = 1; pos < 72 && data_bit < 64; ++pos) {
            if (std::has_single_bit(pos))
                continue; // check bit position
            posOfDataBit[data_bit] = pos;
            dataBitAtPos[pos] = static_cast<int>(data_bit);
            ++data_bit;
        }
        for (unsigned c = 0; c < 7; ++c) {
            std::uint64_t mask = 0;
            for (unsigned b = 0; b < 64; ++b) {
                if (posOfDataBit[b] & (1u << c))
                    mask |= std::uint64_t{1} << b;
            }
            coverMask[c] = mask;
        }
    }
};

const Layout &
layout()
{
    static const Layout l;
    return l;
}

unsigned
parity64(std::uint64_t v)
{
    return static_cast<unsigned>(std::popcount(v)) & 1u;
}

/** The seven Hamming check bits for a data word. */
std::uint8_t
hammingChecks(std::uint64_t data)
{
    const Layout &l = layout();
    std::uint8_t checks = 0;
    for (unsigned c = 0; c < 7; ++c)
        checks |= static_cast<std::uint8_t>(parity64(data & l.coverMask[c]))
                  << c;
    return checks;
}

} // namespace

std::uint8_t
SecDed::encode(std::uint64_t data)
{
    const std::uint8_t checks = hammingChecks(data);
    // Bit 7 is the overall parity bit: even parity over all 72 bits.
    const unsigned overall =
        parity64(data) ^ (static_cast<unsigned>(std::popcount(
                              static_cast<unsigned>(checks))) & 1u);
    return static_cast<std::uint8_t>(checks | (overall << 7));
}

SecDedResult
SecDed::decode(std::uint64_t &data, std::uint8_t &check)
{
    SecDedResult result;
    const std::uint8_t expected = hammingChecks(data);
    const std::uint8_t syndrome =
        static_cast<std::uint8_t>((check ^ expected) & 0x7f);
    // Overall parity across data + all 8 check bits (stored overall
    // parity included); zero when no error or an even number of flips.
    const unsigned overall =
        parity64(data) ^
        (static_cast<unsigned>(std::popcount(static_cast<unsigned>(check)))
         & 1u);

    if (syndrome == 0 && overall == 0) {
        result.status = SecDedResult::Status::Clean;
        return result;
    }

    if (overall == 1) {
        // Odd number of bit flips: assume single-bit error.
        if (syndrome == 0) {
            // The overall parity bit itself flipped.
            check ^= 0x80;
            result.status = SecDedResult::Status::CorrectedCheck;
            return result;
        }
        if (std::has_single_bit(static_cast<unsigned>(syndrome))) {
            // A Hamming check bit flipped.
            const unsigned c = std::countr_zero(
                static_cast<unsigned>(syndrome));
            check ^= static_cast<std::uint8_t>(1u << c);
            result.status = SecDedResult::Status::CorrectedCheck;
            return result;
        }
        const Layout &l = layout();
        if (syndrome < 72 && l.dataBitAtPos[syndrome] >= 0) {
            const int bit = l.dataBitAtPos[syndrome];
            data ^= std::uint64_t{1} << bit;
            result.status = SecDedResult::Status::CorrectedData;
            result.correctedBit = bit;
            return result;
        }
        // Syndrome points outside the codeword: multi-bit corruption.
        result.status = SecDedResult::Status::Detected;
        return result;
    }

    // Even parity but non-zero syndrome: double-bit error.
    result.status = SecDedResult::Status::Detected;
    return result;
}

} // namespace sam
