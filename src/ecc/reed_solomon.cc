#include "src/ecc/reed_solomon.hh"

#include <algorithm>
#include <cstring>

#include "src/common/logging.hh"

namespace sam {

ReedSolomon::ReedSolomon(unsigned n, unsigned k)
    : n_(n), k_(k)
{
    sam_assert(n > k && n <= 255, "invalid RS(n,k): n=", n, " k=", k);
    sam_assert((n - k) % 2 == 0, "RS check symbol count must be even");

    // g(x) = prod_{i=0}^{2t-1} (x + alpha^i), low-order coefficient first.
    const unsigned two_t = n - k;
    generator_.assign(1, 1);
    for (unsigned i = 0; i < two_t; ++i) {
        std::vector<std::uint8_t> next(generator_.size() + 1, 0);
        const GF256::Elem root = GF256::alphaPow(i);
        for (std::size_t j = 0; j < generator_.size(); ++j) {
            next[j + 1] ^= generator_[j];                 // x * g
            next[j] ^= GF256::mul(generator_[j], root);   // root * g
        }
        generator_ = std::move(next);
    }
    sam_assert(generator_.size() == two_t + 1 && generator_[two_t] == 1,
               "generator polynomial must be monic of degree 2t");

    // Sliced syndrome table: all 2t syndromes of every memory-ECC
    // geometry (2t <= 8) pack into one 64-bit word, so the decode hot
    // path computes S(x) with one table XOR per nonzero symbol. Wider
    // codes (e.g. RS(255,223)) fall back to the generic Horner loop.
    if (two_t <= 8) {
        syndTable_.assign(std::size_t{n_} * 256, 0);
        for (unsigned j = 0; j < n_; ++j) {
            for (unsigned v = 1; v < 256; ++v) {
                std::uint64_t packed = 0;
                for (unsigned i = 0; i < two_t; ++i) {
                    // Position j carries the coefficient of x^{n-1-j},
                    // so its contribution to S_i = c(alpha^i) is
                    // v * alpha^{i * (n-1-j)}.
                    const GF256::Elem contrib = GF256::mul(
                        static_cast<GF256::Elem>(v),
                        GF256::alphaPow((i * (n_ - 1 - j)) % 255));
                    packed |= std::uint64_t{contrib} << (8 * i);
                }
                syndTable_[std::size_t{j} * 256 + v] = packed;
            }
        }
        // Sliced encoder table, same packing: the LFSR remainder fits
        // one 64-bit word (byte b = rem[b], highest degree at byte 0),
        // and absorbing one data symbol becomes shift + one table XOR
        // instead of 2t GF multiplies.
        encTable_.assign(256, 0);
        for (unsigned v = 1; v < 256; ++v) {
            std::uint64_t packed = 0;
            for (unsigned i = 0; i < two_t; ++i) {
                const GF256::Elem contrib =
                    GF256::mul(static_cast<GF256::Elem>(v),
                               generator_[i]);
                packed |= std::uint64_t{contrib}
                          << (8 * (two_t - 1 - i));
            }
            encTable_[v] = packed;
        }
    }
}

void
ReedSolomon::encodeParity(const std::uint8_t *data,
                          std::uint8_t *parity) const
{
    const unsigned two_t = n_ - k_;
    sam_assert(two_t <= 64, "RS encodeParity: ", two_t,
               " check symbols exceed the stack remainder buffer");
    if (!encTable_.empty()) {
        // Packed LFSR: byte b of `rem` is remainder coefficient
        // rem[b] with the highest degree at byte 0.
        std::uint64_t rem = 0;
        for (unsigned j = 0; j < k_; ++j) {
            const std::uint8_t coef =
                data[j] ^ static_cast<std::uint8_t>(rem);
            rem = (rem >> 8) ^ encTable_[coef];
        }
        for (unsigned b = 0; b < two_t; ++b)
            parity[b] = static_cast<std::uint8_t>(rem >> (8 * b));
        return;
    }
    // Synthetic division of m(x) * x^{2t} by g(x); rem is kept
    // highest-degree-first so it lands in `parity` directly.
    std::uint8_t rem[64] = {0};
    for (unsigned j = 0; j < k_; ++j) {
        const std::uint8_t coef = data[j] ^ rem[0];
        std::memmove(rem, rem + 1, two_t - 1);
        rem[two_t - 1] = 0;
        if (coef != 0) {
            for (unsigned i = 0; i < two_t; ++i)
                rem[two_t - 1 - i] ^= GF256::mul(coef, generator_[i]);
        }
    }
    std::memcpy(parity, rem, two_t);
}

std::vector<std::uint8_t>
ReedSolomon::encode(const std::vector<std::uint8_t> &data) const
{
    sam_assert(data.size() == k_, "RS encode: expected ", k_,
               " data symbols, got ", data.size());

    std::vector<std::uint8_t> codeword(n_);
    std::copy(data.begin(), data.end(), codeword.begin());
    encodeParity(codeword.data(), codeword.data() + k_);
    return codeword;
}

GF256::Elem
ReedSolomon::evalPoly(const std::vector<std::uint8_t> &poly, GF256::Elem x)
{
    // Coefficients are low-order-first; evaluate with Horner from the top.
    GF256::Elem acc = 0;
    for (auto it = poly.rbegin(); it != poly.rend(); ++it)
        acc = GF256::add(GF256::mul(acc, x), *it);
    return acc;
}

DecodeResult
ReedSolomon::decode(std::vector<std::uint8_t> &codeword,
                    unsigned max_correct) const
{
    sam_assert(codeword.size() == n_, "RS decode: expected ", n_,
               " symbols, got ", codeword.size());

    const unsigned two_t = n_ - k_;

    DecodeResult result;
    std::vector<std::uint8_t> synd(two_t, 0);
    if (!syndTable_.empty()) {
        // Syndromes S_i = c(alpha^i) via the sliced table: one 64-bit
        // XOR per nonzero symbol, and a branch-free all-zero check that
        // bails before any Berlekamp-Massey allocation.
        std::uint64_t packed = 0;
        for (unsigned j = 0; j < n_; ++j) {
            const std::uint8_t v = codeword[j];
            if (v != 0)
                packed ^= syndTable_[std::size_t{j} * 256 + v];
        }
        if (packed == 0) {
            result.status = DecodeStatus::Clean;
            return result;
        }
        for (unsigned i = 0; i < two_t; ++i) {
            synd[i] =
                static_cast<std::uint8_t>((packed >> (8 * i)) & 0xff);
        }
    } else {
        bool any = false;
        for (unsigned i = 0; i < two_t; ++i) {
            const GF256::Elem x = GF256::alphaPow(i);
            GF256::Elem acc = 0;
            for (unsigned j = 0; j < n_; ++j)
                acc = GF256::add(GF256::mul(acc, x), codeword[j]);
            synd[i] = acc;
            any = any || acc != 0;
        }
        if (!any) {
            result.status = DecodeStatus::Clean;
            return result;
        }
    }

    // Berlekamp-Massey: find the error locator polynomial Lambda(x).
    std::vector<std::uint8_t> lambda{1};
    std::vector<std::uint8_t> prev{1};
    unsigned errors = 0;  // current LFSR length L
    unsigned shift = 1;   // m: gap since last length change
    GF256::Elem prev_delta = 1;
    for (unsigned iter = 0; iter < two_t; ++iter) {
        GF256::Elem delta = synd[iter];
        for (unsigned i = 1; i <= errors && i < lambda.size(); ++i)
            delta = GF256::add(delta,
                               GF256::mul(lambda[i], synd[iter - i]));
        if (delta == 0) {
            ++shift;
            continue;
        }
        // candidate = lambda - (delta/prev_delta) * x^shift * prev
        std::vector<std::uint8_t> candidate(lambda);
        const GF256::Elem scale = GF256::div(delta, prev_delta);
        if (candidate.size() < prev.size() + shift)
            candidate.resize(prev.size() + shift, 0);
        for (std::size_t i = 0; i < prev.size(); ++i)
            candidate[i + shift] ^= GF256::mul(scale, prev[i]);
        if (2 * errors <= iter) {
            prev = std::move(lambda);
            prev_delta = delta;
            errors = iter + 1 - errors;
            shift = 1;
        } else {
            ++shift;
        }
        lambda = std::move(candidate);
    }

    const unsigned limit = std::min(max_correct, t());
    if (errors > limit) {
        result.status = DecodeStatus::Detected;
        return result;
    }

    // Omega(x) = S(x) * Lambda(x) mod x^{2t}
    std::vector<std::uint8_t> omega(two_t, 0);
    for (unsigned i = 0; i < two_t; ++i) {
        for (std::size_t j = 0; j < lambda.size() && j <= i; ++j)
            omega[i] ^= GF256::mul(synd[i - j], lambda[j]);
    }

    // Formal derivative of Lambda (char-2: even-power terms vanish).
    std::vector<std::uint8_t> lambda_deriv;
    for (std::size_t i = 1; i < lambda.size(); i += 2) {
        lambda_deriv.resize(i, 0);
        lambda_deriv[i - 1] = lambda[i];
    }

    // Chien search over the n valid positions; position j has locator
    // X_j = alpha^{n-1-j}.
    std::vector<std::uint8_t> fixed(codeword);
    unsigned roots = 0;
    for (unsigned j = 0; j < n_; ++j) {
        const GF256::Elem x = GF256::alphaPow(n_ - 1 - j);
        const GF256::Elem x_inv = GF256::inv(x);
        if (evalPoly(lambda, x_inv) != 0)
            continue;
        ++roots;
        // Forney (first root b = 0): e = X * Omega(X^-1) / Lambda'(X^-1)
        const GF256::Elem denom = evalPoly(lambda_deriv, x_inv);
        if (denom == 0) {
            result.status = DecodeStatus::Detected;
            return result;
        }
        const GF256::Elem magnitude =
            GF256::mul(x, GF256::div(evalPoly(omega, x_inv), denom));
        fixed[j] ^= magnitude;
        result.correctedPositions.push_back(j);
    }

    if (roots != errors) {
        // Locator degree and root count disagree: uncorrectable.
        result.status = DecodeStatus::Detected;
        result.correctedPositions.clear();
        return result;
    }

    // Re-verify: corrected word must have all-zero syndromes.
    for (unsigned i = 0; i < two_t; ++i) {
        const GF256::Elem x = GF256::alphaPow(i);
        GF256::Elem acc = 0;
        for (unsigned j = 0; j < n_; ++j)
            acc = GF256::add(GF256::mul(acc, x), fixed[j]);
        if (acc != 0) {
            result.status = DecodeStatus::Detected;
            result.correctedPositions.clear();
            return result;
        }
    }

    codeword = std::move(fixed);
    result.status = DecodeStatus::Corrected;
    return result;
}

} // namespace sam
