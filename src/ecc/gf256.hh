/**
 * @file
 * Arithmetic over GF(2^8) with the AES-standard primitive polynomial
 * x^8 + x^4 + x^3 + x^2 + 1 (0x11d). Used by the Reed-Solomon chipkill
 * codecs.
 */

#ifndef SAM_ECC_GF256_HH
#define SAM_ECC_GF256_HH

#include <array>
#include <cstdint>

namespace sam {

/**
 * GF(2^8) arithmetic via log/antilog tables built at static
 * initialization. All operations are total: division by zero panics.
 */
class GF256
{
  public:
    using Elem = std::uint8_t;

    static Elem add(Elem a, Elem b) { return a ^ b; }
    static Elem sub(Elem a, Elem b) { return a ^ b; }

    static Elem mul(Elem a, Elem b);
    static Elem div(Elem a, Elem b);

    /** Multiplicative inverse; panics on zero. */
    static Elem inv(Elem a);

    /** a^n for n >= 0 (0^0 == 1 by convention). */
    static Elem pow(Elem a, unsigned n);

    /** The primitive element alpha = 0x02 raised to the power n. */
    static Elem alphaPow(unsigned n);

    /** Discrete log base alpha; panics on zero. */
    static unsigned log(Elem a);

  private:
    struct Tables
    {
        std::array<Elem, 512> exp;
        std::array<unsigned, 256> log;
        Tables();
    };

    static const Tables &tables();
};

} // namespace sam

#endif // SAM_ECC_GF256_HH
