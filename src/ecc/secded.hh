/**
 * @file
 * (72,64) SEC-DED code: single-bit error correction, double-bit error
 * detection, as used by desktop-class ECC DIMMs (Figure 4(a)).
 *
 * Implemented as an extended Hamming code: seven Hamming check bits over
 * the 64 data bits plus one overall parity bit.
 */

#ifndef SAM_ECC_SECDED_HH
#define SAM_ECC_SECDED_HH

#include <cstdint>

namespace sam {

/** Result of a SEC-DED decode. */
struct SecDedResult
{
    enum class Status { Clean, CorrectedData, CorrectedCheck, Detected };

    Status status = Status::Clean;
    /** Bit index into the 64-bit data word that was corrected, or -1. */
    int correctedBit = -1;
};

/**
 * Encoder/decoder for the (72,64) extended Hamming code. The codeword is
 * carried as a 64-bit data word plus an 8-bit check byte.
 */
class SecDed
{
  public:
    /** Compute the 8 check bits for a 64-bit data word. */
    static std::uint8_t encode(std::uint64_t data);

    /**
     * Check/correct a received (data, check) pair in place.
     * Corrects any single flipped bit (data or check); flags double-bit
     * errors as Detected.
     */
    static SecDedResult decode(std::uint64_t &data, std::uint8_t &check);
};

} // namespace sam

#endif // SAM_ECC_SECDED_HH
