/**
 * @file
 * Process-wide registry of immutable ECC codecs.
 *
 * Constructing a ReedSolomon builds its generator polynomial plus the
 * sliced syndrome and encoder tables -- thousands of GF(2^8)
 * multiplies. The tables depend only on (n, k), and a codec is
 * immutable after construction (encode/decode are const and carry no
 * state), so one instance per (n, k) can serve every EccEngine in the
 * process, across threads. Before the registry this construction ran
 * once per Session (EccEngine is a by-value member of DataPath) and
 * was ~32% of a quick-scale replay; a fig15 sweep paid it hundreds of
 * times per campaign.
 *
 * GF256's log/antilog tables are already a function-local static
 * shared the same way; this registry extends the once-per-process
 * discipline to the per-(n, k) ReedSolomon state.
 *
 * The samlint check `sam-codec-construction` enforces that codecs are
 * only constructed here (reference semantics everywhere else).
 * makePrivate() is the sanctioned seam for tests that need a freshly
 * constructed codec to differentiate against the shared one.
 */

#ifndef SAM_ECC_CODEC_REGISTRY_HH
#define SAM_ECC_CODEC_REGISTRY_HH

#include <memory>

#include "src/ecc/reed_solomon.hh"

namespace sam {

class CodecRegistry
{
  public:
    /**
     * The shared immutable RS(n, k) codec, constructed on first use
     * and alive for the rest of the process. Thread-safe.
     */
    static const ReedSolomon &reedSolomon(unsigned n, unsigned k);

    /**
     * A freshly constructed private RS(n, k) codec, bypassing the
     * shared instance. Test seam: differential tests pin the shared
     * codec's output byte-identical to an independent construction.
     */
    static std::unique_ptr<const ReedSolomon> makePrivate(unsigned n,
                                                          unsigned k);
};

} // namespace sam

#endif // SAM_ECC_CODEC_REGISTRY_HH
