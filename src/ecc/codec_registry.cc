#include "src/ecc/codec_registry.hh"

#include <map>
#include <utility>

#include "src/common/thread_annotations.hh"

namespace sam {

namespace {

Mutex registryMutex;
/**
 * Shared codecs by (n, k). Never erased: pointers handed out by
 * reedSolomon() stay valid for the life of the process. Keyed map
 * (no iteration), so hash/address order never becomes observable.
 */
std::map<std::pair<unsigned, unsigned>,
         std::unique_ptr<const ReedSolomon>>
    codecs SAM_GUARDED_BY(registryMutex);

} // namespace

const ReedSolomon &
CodecRegistry::reedSolomon(unsigned n, unsigned k)
{
    MutexLock lock(registryMutex);
    auto &slot = codecs[{n, k}];
    if (!slot)
        slot = makePrivate(n, k);
    return *slot;
}

std::unique_ptr<const ReedSolomon>
CodecRegistry::makePrivate(unsigned n, unsigned k)
{
    return std::make_unique<const ReedSolomon>(n, k);
}

} // namespace sam
