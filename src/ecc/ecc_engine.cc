#include "src/ecc/ecc_engine.hh"

#include <algorithm>
#include <cstring>

#include "src/common/logging.hh"
#include "src/ecc/codec_registry.hh"
#include "src/ecc/secded.hh"

namespace sam {

namespace {

/** Little-endian load of an 8-byte word. */
std::uint64_t
load64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | p[i];
    return v;
}

void
store64(std::uint8_t *p, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        p[i] = static_cast<std::uint8_t>(v & 0xff);
        v >>= 8;
    }
}

} // namespace

void
EccEngineStats::registerIn(StatGroup &group) const
{
    group.addCounter("linesDecoded", linesDecoded,
                     "lines run through the decoder");
    group.addCounter("codewordsCorrected", codewordsCorrected,
                     "codewords repaired in place");
    group.addCounter("codewordsDetected", codewordsDetected,
                     "codewords detected-uncorrectable");
    group.addCounter("symbolsCorrected", symbolsCorrected,
                     "symbols/bits repaired in total");
}

namespace {

/** RS (n, k) of `scheme`, or (0, 0) for the non-RS schemes. */
std::pair<unsigned, unsigned>
rsParamsFor(EccScheme scheme)
{
    switch (scheme) {
      case EccScheme::Ssc:
      case EccScheme::Ssc32:
        return {18, 16};
      case EccScheme::SscDsd:
        return {36, 32};
      case EccScheme::Bamboo72:
        return {72, 64};
      case EccScheme::SecDed:
      case EccScheme::None:
        return {0, 0};
    }
    panic("unknown EccScheme");
}

} // namespace

EccEngine::EccEngine(EccScheme scheme)
    : scheme_(scheme)
{
    const auto [n, k] = rsParamsFor(scheme_);
    if (n != 0)
        rs_ = &CodecRegistry::reedSolomon(n, k);
}

EccEngine::EccEngine(EccScheme scheme, PrivateCodec)
    : scheme_(scheme)
{
    const auto [n, k] = rsParamsFor(scheme_);
    if (n != 0) {
        ownedRs_ = CodecRegistry::makePrivate(n, k);
        rs_ = ownedRs_.get();
    }
}

unsigned
EccEngine::parityBytesPerLine() const
{
    return parityBytesFor(scheme_);
}

unsigned
EccEngine::numChips() const
{
    switch (scheme_) {
      case EccScheme::None:   return 16;
      case EccScheme::SscDsd: return 36;
      default:                return 18;
    }
}

unsigned
EccEngine::numDataChips() const
{
    return scheme_ == EccScheme::SscDsd ? 32 : 16;
}

std::vector<std::uint8_t>
EccEngine::encodeLine(const std::vector<std::uint8_t> &line) const
{
    sam_assert(line.size() == kCachelineBytes,
               "encodeLine expects a 64B line, got ", line.size());
    return encodeLine(line.data());
}

std::vector<std::uint8_t>
EccEngine::encodeLine(const std::uint8_t *data64) const
{
    std::vector<std::uint8_t> blob(kCachelineBytes +
                                       parityBytesPerLine(),
                                   0);
    encodeLineInto(data64, blob.data());
    return blob;
}

void
EccEngine::encodeLineInto(const std::uint8_t *data64,
                          std::uint8_t *blob) const
{
    const std::uint8_t *line = data64;
    std::memcpy(blob, line, kCachelineBytes);

    switch (scheme_) {
      case EccScheme::None:
        break;

      case EccScheme::SecDed:
        for (unsigned j = 0; j < 8; ++j)
            blob[64 + j] = SecDed::encode(load64(&blob[8 * j]));
        break;

      case EccScheme::Ssc:
        for (unsigned j = 0; j < 4; ++j)
            rs_->encodeParity(line + 16 * j, blob + 64 + 2 * j);
        break;

      case EccScheme::Bamboo72:
        rs_->encodeParity(line, blob + 64);
        break;

      case EccScheme::SscDsd:
        for (unsigned j = 0; j < 2; ++j)
            rs_->encodeParity(line + 32 * j, blob + 64 + 4 * j);
        break;

      case EccScheme::Ssc32:
        for (unsigned j = 0; j < 2; ++j) {
            for (unsigned i = 0; i < 2; ++i) {
                std::uint8_t data[16];
                std::uint8_t parity[2];
                for (unsigned s = 0; s < 16; ++s)
                    data[s] = line[32 * j + 2 * s + i];
                rs_->encodeParity(data, parity);
                blob[64 + 4 * j + i] = parity[0];
                blob[64 + 4 * j + 2 + i] = parity[1];
            }
        }
        break;
    }
}

EccLineResult
EccEngine::decodeLine(std::vector<std::uint8_t> &blob) const
{
    sam_assert(blob.size() == kCachelineBytes + parityBytesPerLine(),
               "decodeLine: wrong blob size ", blob.size());

    EccLineResult result;
    ++stats_.linesDecoded;
    auto note = [this, &result](DecodeStatus status, unsigned n_fixed) {
        switch (status) {
          case DecodeStatus::Clean:
            break;
          case DecodeStatus::Corrected:
            result.clean = false;
            result.corrected = true;
            result.symbolsCorrected += n_fixed;
            ++stats_.codewordsCorrected;
            stats_.symbolsCorrected += n_fixed;
            break;
          case DecodeStatus::Detected:
            result.clean = false;
            result.uncorrectable = true;
            ++stats_.codewordsDetected;
            break;
        }
    };

    switch (scheme_) {
      case EccScheme::None:
        break;

      case EccScheme::SecDed:
        for (unsigned j = 0; j < 8; ++j) {
            std::uint64_t data = load64(&blob[8 * j]);
            std::uint8_t check = blob[64 + j];
            const SecDedResult r = SecDed::decode(data, check);
            switch (r.status) {
              case SecDedResult::Status::Clean:
                break;
              case SecDedResult::Status::CorrectedData:
              case SecDedResult::Status::CorrectedCheck:
                store64(&blob[8 * j], data);
                blob[64 + j] = check;
                note(DecodeStatus::Corrected, 1);
                break;
              case SecDedResult::Status::Detected:
                note(DecodeStatus::Detected, 0);
                break;
            }
        }
        break;

      case EccScheme::Bamboo72: {
        std::vector<std::uint8_t> cw(blob.begin(),
                                     blob.begin() + 72);
        const DecodeResult r = rs_->decode(cw);
        if (r.status == DecodeStatus::Corrected)
            std::copy(cw.begin(), cw.end(), blob.begin());
        note(r.status,
             static_cast<unsigned>(r.correctedPositions.size()));
        break;
      }

      case EccScheme::Ssc:
        for (unsigned j = 0; j < 4; ++j) {
            std::vector<std::uint8_t> cw(blob.begin() + 16 * j,
                                         blob.begin() + 16 * (j + 1));
            cw.push_back(blob[64 + 2 * j]);
            cw.push_back(blob[64 + 2 * j + 1]);
            const DecodeResult r = rs_->decode(cw);
            if (r.status == DecodeStatus::Corrected) {
                std::copy(cw.begin(), cw.begin() + 16,
                          blob.begin() + 16 * j);
                blob[64 + 2 * j] = cw[16];
                blob[64 + 2 * j + 1] = cw[17];
            }
            note(r.status,
                 static_cast<unsigned>(r.correctedPositions.size()));
        }
        break;

      case EccScheme::SscDsd:
        for (unsigned j = 0; j < 2; ++j) {
            std::vector<std::uint8_t> cw(blob.begin() + 32 * j,
                                         blob.begin() + 32 * (j + 1));
            for (unsigned p = 0; p < 4; ++p)
                cw.push_back(blob[64 + 4 * j + p]);
            // SSC-DSD policy: correct one chip symbol, detect two.
            const DecodeResult r = rs_->decode(cw, 1);
            if (r.status == DecodeStatus::Corrected) {
                std::copy(cw.begin(), cw.begin() + 32,
                          blob.begin() + 32 * j);
                for (unsigned p = 0; p < 4; ++p)
                    blob[64 + 4 * j + p] = cw[32 + p];
            }
            note(r.status,
                 static_cast<unsigned>(r.correctedPositions.size()));
        }
        break;

      case EccScheme::Ssc32:
        for (unsigned j = 0; j < 2; ++j) {
            for (unsigned i = 0; i < 2; ++i) {
                std::vector<std::uint8_t> cw(18);
                for (unsigned s = 0; s < 16; ++s)
                    cw[s] = blob[32 * j + 2 * s + i];
                cw[16] = blob[64 + 4 * j + i];
                cw[17] = blob[64 + 4 * j + 2 + i];
                const DecodeResult r = rs_->decode(cw);
                if (r.status == DecodeStatus::Corrected) {
                    for (unsigned s = 0; s < 16; ++s)
                        blob[32 * j + 2 * s + i] = cw[s];
                    blob[64 + 4 * j + i] = cw[16];
                    blob[64 + 4 * j + 2 + i] = cw[17];
                }
                note(r.status,
                     static_cast<unsigned>(r.correctedPositions.size()));
            }
        }
        break;
    }
    return result;
}

std::vector<std::size_t>
EccEngine::chipBits(unsigned chip) const
{
    sam_assert(chip < numChips(), "chip ", chip, " out of range");
    std::vector<std::size_t> bits;

    switch (scheme_) {
      case EccScheme::None:
      case EccScheme::SecDed:
        // x4 geometry: per 72-bit codeword, data chip c drives data bits
        // [4c, 4c+4); parity chips drive the check byte nibbles.
        for (unsigned j = 0; j < 8; ++j) {
            if (chip < 16) {
                for (unsigned b = 0; b < 4; ++b)
                    bits.push_back(static_cast<std::size_t>(8 * j) * 8 +
                                   4 * chip + b);
            } else if (scheme_ == EccScheme::SecDed) {
                const unsigned lo = (chip - 16) * 4;
                for (unsigned b = 0; b < 4; ++b)
                    bits.push_back(static_cast<std::size_t>(64 + j) * 8 +
                                   lo + b);
            }
        }
        break;

      default:
        for (std::size_t byte : chipBytes(chip)) {
            for (unsigned b = 0; b < 8; ++b)
                bits.push_back(byte * 8 + b);
        }
        break;
    }
    return bits;
}

std::vector<std::size_t>
EccEngine::chipBytes(unsigned chip) const
{
    std::vector<std::size_t> bytes;
    switch (scheme_) {
      case EccScheme::Ssc:
        for (unsigned j = 0; j < 4; ++j) {
            if (chip < 16)
                bytes.push_back(16 * j + chip);
            else
                bytes.push_back(64 + 2 * j + (chip - 16));
        }
        break;

      case EccScheme::Bamboo72:
        // Chip c's four 8-bit symbols: one per 18-symbol stripe.
        for (unsigned j = 0; j < 4; ++j) {
            if (chip < 16)
                bytes.push_back(16 * j + chip);
            else
                bytes.push_back(64 + 2 * j + (chip - 16));
        }
        break;

      case EccScheme::SscDsd:
        for (unsigned j = 0; j < 2; ++j) {
            if (chip < 32)
                bytes.push_back(32 * j + chip);
            else
                bytes.push_back(64 + 4 * j + (chip - 32));
        }
        break;

      case EccScheme::Ssc32:
        for (unsigned j = 0; j < 2; ++j) {
            if (chip < 16) {
                bytes.push_back(32 * j + 2 * chip);
                bytes.push_back(32 * j + 2 * chip + 1);
            } else {
                bytes.push_back(64 + 4 * j + 2 * (chip - 16));
                bytes.push_back(64 + 4 * j + 2 * (chip - 16) + 1);
            }
        }
        break;

      default:
        panic("chipBytes: bit-granular scheme");
    }
    return bytes;
}

void
EccEngine::corruptChip(std::vector<std::uint8_t> &blob, unsigned chip) const
{
    for (std::size_t bit : chipBits(chip))
        flipBit(blob, bit);
}

void
EccEngine::corruptChipBits(std::vector<std::uint8_t> &blob, unsigned chip,
                           unsigned nbits, Rng &rng) const
{
    auto bits = chipBits(chip);
    sam_assert(!bits.empty(), "chip drives no bits");
    for (unsigned i = 0; i < nbits; ++i)
        flipBit(blob, bits[rng.below(bits.size())]);
}

void
EccEngine::flipBit(std::vector<std::uint8_t> &blob, std::size_t bit_index)
{
    sam_assert(bit_index / 8 < blob.size(), "flipBit out of range");
    blob[bit_index / 8] ^= static_cast<std::uint8_t>(1u << (bit_index % 8));
}

bool
EccEngine::toleratesChipFailure() const
{
    switch (scheme_) {
      case EccScheme::Ssc:
      case EccScheme::SscDsd:
      case EccScheme::Ssc32:
      case EccScheme::Bamboo72:
        return true;
      case EccScheme::SecDed:
      case EccScheme::None:
        return false;
    }
    panic("unknown EccScheme");
}

} // namespace sam
