/**
 * @file
 * Per-core memory port: a private sector-cache hierarchy whose memory
 * side performs functional transfers against the DataPath and records
 * the trace that the timing replay later schedules.
 */

#ifndef SAM_SIM_CORE_PORT_HH
#define SAM_SIM_CORE_PORT_HH

#include <cstdint>
#include <vector>

#include "src/cache/hierarchy.hh"
#include "src/dram/data_path.hh"
#include "src/imdb/executor.hh"
#include "src/sim/trace.hh"

namespace sam {

/**
 * Cache configuration of one core (paper Table 2). The latency field is
 * the *core-visible issue cost* of an access satisfied at that level,
 * not the load-to-use latency: an out-of-order core overlaps
 * independent loads, so only the issue/occupancy cost serialises the
 * instruction stream. Memory-bound completion latency is modelled by
 * the MSHR-bounded trace replay.
 */
struct CoreCacheConfig
{
    CacheParams l1{32 * 1024, 8, 64, 1};
    CacheParams l2{256 * 1024, 8, 64, 2};
    /** Per-core LLC slice (8MB shared / 4 cores). */
    CacheParams llc{2 * 1024 * 1024, 16, 64, 4};
};

class CorePort : public MemPort, public MemBackend
{
  public:
    CorePort(unsigned core_id, const CoreCacheConfig &cfg,
             unsigned stride_unit, DataPath &data_path);

    // ----- MemPort (executor side) ---------------------------------
    std::uint64_t load(Addr addr, unsigned bytes) override;
    void store(Addr addr, std::uint64_t value, unsigned bytes) override;
    void storeStream(Addr addr, std::uint64_t value,
                     unsigned bytes) override;
    std::vector<std::uint8_t> strideLoad(const GatherPlan &plan) override;
    void strideLoadInto(const GatherPlan &plan,
                        std::uint8_t *out64) override;
    void strideStore(const GatherPlan &plan,
                     const std::vector<std::uint8_t> &line) override;
    void compute(Cycle cycles) override;
    bool lastAccessPoisoned() const override { return loadPoisoned_; }
    std::uint32_t strideLoadPoisonBits() const override
    {
        return strideLoadPoison_;
    }

    // ----- MemBackend (cache memory side) ---------------------------
    void fetchLine(Addr line, std::uint8_t *out64) override;
    void fetchStride(const GatherPlan &plan, std::uint8_t *out64) override;
    void writeback(const Writeback &wb) override;
    void writeStride(const GatherPlan &plan,
                     const std::uint8_t *line64) override;
    bool lastFetchPoisoned() const override { return fetchPoisoned_; }
    std::uint32_t lastStridePoisonBits() const override
    {
        return strideFetchPoison_;
    }

    /** Start a new barrier epoch. */
    void newEpoch();

    /** Flush caches (writebacks land in the current epoch). */
    void flushCaches() { hierarchy_.flush(); }

    const CoreTrace &trace() const { return trace_; }
    Cycle clock() const { return clock_; }
    unsigned coreId() const { return coreId_; }
    const CacheHierarchy &hierarchy() const { return hierarchy_; }

  private:
    /** Append one entry whose lines are already in the trace pool. */
    void record(AccessType type, std::size_t pool_offset,
                std::size_t count, unsigned sector);

    /** Record a single-line entry (regular read/write). */
    void recordLine(AccessType type, Addr line);

    /** Record a stride entry over the plan's line list. */
    void recordSpan(AccessType type, const GatherPlan &plan);

    /** Record demand-scrub writebacks the last read triggered. */
    void recordScrubs(const ReadFlags &flags);

    unsigned coreId_;
    unsigned strideUnit_;
    DataPath &dataPath_;
    CacheHierarchy hierarchy_;
    CoreTrace trace_;
    Cycle clock_ = 0;
    Cycle lastRecord_ = 0;
    // Poison state of the most recent memory-side fetches (MemBackend
    // queries) and core-side accesses (MemPort queries).
    bool fetchPoisoned_ = false;
    std::uint32_t strideFetchPoison_ = 0;
    bool loadPoisoned_ = false;
    std::uint32_t strideLoadPoison_ = 0;
};

} // namespace sam

#endif // SAM_SIM_CORE_PORT_HH
