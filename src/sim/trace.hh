/**
 * @file
 * Memory trace captured during functional execution and replayed
 * through the memory controller for timing.
 *
 * The trace is arena-backed: all source-line addresses of all entries
 * live in one shared pool and each fixed-size entry holds an (offset,
 * count) span into it. Phase 1 appends to two flat vectors instead of
 * allocating a std::vector per access, and phase 2 replays borrowed
 * spans without copying line lists.
 */

#ifndef SAM_SIM_TRACE_HH
#define SAM_SIM_TRACE_HH

#include <cstdint>
#include <vector>

#include "src/common/logging.hh"
#include "src/common/types.hh"
#include "src/controller/request.hh"

namespace sam {

/** One memory-bound event of a core's execution (16 bytes). */
struct TraceEntry
{
    AccessType type = AccessType::Read;
    /** Chunk sector of a stride access (0 for regular accesses). */
    std::uint8_t sector = 0;
    /** Source lines: 1 for regular accesses, G for strides. */
    std::uint16_t lineCount = 0;
    /** Start of this entry's lines in the trace's address pool. */
    std::uint32_t lineOffset = 0;
    /** Core cycles of compute / cache-hit time since the previous
     *  entry. */
    Cycle gap = 0;
};

/**
 * A core's trace, split into barrier-separated epochs. The trailing
 * epoch is always open: epochEnds[e] is the entry index ending epoch e,
 * and entries past the last recorded end form epoch epochEnds.size().
 */
struct CoreTrace
{
    std::vector<Addr> pool;           ///< All entries' line addresses.
    std::vector<TraceEntry> entries;  ///< In record order.
    std::vector<std::uint32_t> epochEnds;

    std::size_t numEpochs() const { return epochEnds.size() + 1; }

    std::size_t epochBegin(std::size_t e) const
    {
        return e == 0 ? 0 : epochEnds[e - 1];
    }

    std::size_t epochEnd(std::size_t e) const
    {
        return e < epochEnds.size() ? epochEnds[e] : entries.size();
    }

    /** Borrowed view of an entry's source-line addresses. */
    const Addr *lines(const TraceEntry &entry) const
    {
        return pool.data() + entry.lineOffset;
    }

    /** Append one entry whose `count` lines start at pool[offset]. */
    void append(AccessType type, unsigned sector, std::size_t offset,
                std::size_t count, Cycle gap)
    {
        sam_assert(offset <= UINT32_MAX && count <= UINT16_MAX &&
                       sector <= UINT8_MAX,
                   "trace entry field overflow");
        TraceEntry e;
        e.type = type;
        e.sector = static_cast<std::uint8_t>(sector);
        e.lineCount = static_cast<std::uint16_t>(count);
        e.lineOffset = static_cast<std::uint32_t>(offset);
        e.gap = gap;
        entries.push_back(e);
    }

    /** Close the current epoch and open a new one. */
    void beginEpoch()
    {
        sam_assert(entries.size() <= UINT32_MAX, "trace too long");
        epochEnds.push_back(static_cast<std::uint32_t>(entries.size()));
    }
};

} // namespace sam

#endif // SAM_SIM_TRACE_HH
