/**
 * @file
 * Memory trace captured during functional execution and replayed
 * through the memory controller for timing.
 */

#ifndef SAM_SIM_TRACE_HH
#define SAM_SIM_TRACE_HH

#include <cstdint>
#include <vector>

#include "src/common/gather.hh"
#include "src/common/types.hh"
#include "src/controller/request.hh"

namespace sam {

/** One memory-bound event of a core's execution. */
struct TraceEntry
{
    AccessType type = AccessType::Read;
    /** Source lines: one for regular accesses, G for strides. */
    std::vector<Addr> lines;
    unsigned sector = 0;
    /** Core cycles of compute / cache-hit time since the previous
     *  entry. */
    Cycle gap = 0;
};

/** A core's trace, split into barrier-separated epochs. */
using CoreTrace = std::vector<std::vector<TraceEntry>>;

} // namespace sam

#endif // SAM_SIM_TRACE_HH
