/**
 * @file
 * The full-system simulator: multi-core front-end with sector caches,
 * the design's memory layout, and the cycle-accounted memory system
 * (paper Table 2's simulated system).
 *
 * Each query runs in two phases. Phase 1 executes the query
 * functionally through the caches, producing real results and per-core
 * memory traces. Phase 2 replays the traces through the FR-FCFS
 * controller and device timing model with per-core MSHR-bounded memory
 * parallelism, yielding end-to-end cycles, which feed the IDD power
 * model.
 */

#ifndef SAM_SIM_SYSTEM_HH
#define SAM_SIM_SYSTEM_HH

#include <map>
#include <memory>
#include <sstream>
#include <string>

#include "src/controller/address_mapping.hh"
#include "src/controller/controller.hh"
#include "src/designs/design.hh"
#include "src/designs/design_model.hh"
#include "src/dram/data_path.hh"
#include "src/dram/device.hh"
#include "src/faults/fault_injector.hh"
#include "src/faults/ras_engine.hh"
#include "src/imdb/executor.hh"
#include "src/imdb/query.hh"
#include "src/imdb/table.hh"
#include "src/power/power_model.hh"
#include "src/sim/core_port.hh"
#include "src/sim/replay_engine.hh"
#include "src/sim/table_cache.hh"
#include "src/telemetry/telemetry.hh"

namespace sam {

/** Top-level configuration of one simulated system. */
struct SimConfig
{
    DesignKind design = DesignKind::Baseline;
    /** Chipkill scheme; sets the strided granularity (Section 4.4). */
    EccScheme ecc = EccScheme::SscDsd;
    /** Substrate override for the Figure 14(a) experiment. */
    bool overrideTech = false;
    MemTech tech = MemTech::DRAM;

    unsigned cores = 4;         ///< Table 2.
    unsigned mshrsPerCore = 8;  ///< Outstanding misses per core.
    CoreCacheConfig caches;

    /** Benchmark tables (10M records in the paper; scaled). */
    std::uint64_t taRecords = 16384;
    unsigned taFields = 128;
    std::uint64_t tbRecords = 16384;
    unsigned tbFields = 16;

    Cycle computePerRecord = 1;
    Cycle computePerValue = 1;

    /**
     * Phase-2 replay engine. The EventQueue-driven engine is the
     * default; the step-walking loop stays selectable (--engine=step)
     * so the cross-engine differential harness can drive both from the
     * same binary. The engines are command-stream identical, so the
     * choice never changes cycles, stats, or results -- which is also
     * why it is excluded from the journal's spec identity hash.
     */
    ReplayEngineKind engine = ReplayEngineKind::Event;

    /**
     * Run the protocol-checker oracle over the replay's command stream
     * and panic on any timing/state violation. On by default so every
     * simulation doubles as a protocol conformance test; disable for
     * large sweeps where the extra bookkeeping matters.
     */
    bool check = true;

    /** Live fault injection (model None disables the injector). */
    FaultConfig faults;

    /** Read-path RAS policy (always attached). */
    RasConfig ras;

    /**
     * Telemetry collection (off by default: nothing is attached and
     * the replay runs exactly as without the subsystem).
     */
    TelemetryConfig telemetry;

    /**
     * Build RunStats::statsText (the gem5-style counter dump). On by
     * default for interactive use; campaigns turn it off -- the dump
     * string-formats every counter of every run and none of it reaches
     * the BENCH JSON.
     */
    bool collectStatsText = true;
};

/** Everything measured for one query run. */
struct RunStats
{
    QueryResult result;
    Cycle cycles = 0;
    PowerBreakdown power;

    /**
     * gem5-style statistics dump of the run: device, controller, ECC,
     * and per-core cache counters, one `group.stat value` line each.
     */
    std::string statsText;

    std::uint64_t memReads = 0;
    std::uint64_t memWrites = 0;
    std::uint64_t strideReads = 0;
    std::uint64_t strideWrites = 0;
    std::uint64_t activates = 0;
    std::uint64_t rowHits = 0;
    std::uint64_t rowMisses = 0;
    std::uint64_t modeSwitches = 0;
    std::uint64_t eccCorrectedLines = 0;
    std::uint64_t eccUncorrectable = 0;
    /** Commands validated by the protocol checker (0 when disabled). */
    std::uint64_t checkedCommands = 0;

    // ----- RAS pipeline (per-run deltas) -----------------------------
    std::uint64_t scrubWritebacks = 0; ///< Corrected lines written back.
    std::uint64_t readRetries = 0;     ///< Re-reads after uncorrectable.
    std::uint64_t poisonedReads = 0;   ///< Reads that returned poison.
    std::uint64_t linesRetired = 0;    ///< Lines remapped to spares.

    /** Collected telemetry; null unless SimConfig::telemetry.enabled. */
    std::shared_ptr<const TelemetrySnapshot> telemetry;

    double rowHitRate() const
    {
        const double total =
            static_cast<double>(rowHits) + static_cast<double>(rowMisses);
        return total > 0 ? rowHits / total : 0.0;
    }
};

class System
{
  public:
    /**
     * @param tables Shared materialized-table cache. When given, the
     *        system installs pre-encoded table snapshots instead of
     *        re-encoding every line; when null, tables are materialized
     *        directly (standalone use).
     */
    explicit System(const SimConfig &config,
                    std::shared_ptr<TableCache> tables = nullptr);

    const SimConfig &config() const { return config_; }
    const DesignSpec &spec() const { return spec_; }
    const TimingParams &timing() const { return timing_; }
    unsigned strideUnit() const { return strideUnit_; }

    /** Run one benchmark query end to end. */
    RunStats runQuery(const Query &query);

    /** Functional memory (for error injection in tests/examples). */
    DataPath &dataPath() { return dataPath_; }

    /** The RAS policy engine (error log, retirement state, counters). */
    RasEngine &ras() { return *ras_; }
    const RasEngine &ras() const { return *ras_; }

    /** The live fault injector; nullptr when faults.model is None. */
    FaultInjector *injector() { return injector_.get(); }

    /** The schemas (for reference-result computation). */
    TableSchema taSchema() const;
    TableSchema tbSchema() const;

  private:
    struct TablePair
    {
        std::unique_ptr<Table> ta;
        std::unique_ptr<Table> tb;
        bool dirty = false;
    };

    /** Layout the design (or the ideal strategy) uses for a query. */
    LayoutKind layoutFor(const Query &query) const;

    /** Materialized tables for a layout, rebuilt if dirtied. */
    TablePair &tablesFor(LayoutKind layout);

    /** Timing replay of the captured traces (config_.engine picks the
     *  loop; both live in src/sim/replay_engine.cc). */
    Cycle replay(const std::vector<std::unique_ptr<CorePort>> &ports,
                 MemoryController &controller, DesignModel &model);

    SimConfig config_;
    DesignSpec spec_;
    Geometry geom_;
    TimingParams timing_;
    unsigned strideUnit_;
    AddressMapping mapping_;
    DataPath dataPath_;
    std::unique_ptr<RasEngine> ras_;
    std::unique_ptr<FaultInjector> injector_;
    std::shared_ptr<TableCache> tableCache_;
    std::map<LayoutKind, TablePair> tables_;
};

} // namespace sam

#endif // SAM_SIM_SYSTEM_HH
