/**
 * @file
 * The two trace-replay engines of phase 2.
 *
 * `replayStep` is the original round-walking loop: every round polls
 * every core for issue opportunities (in core-id order) and then
 * services one request. `replayEvent` replays the same round structure
 * through an EventQueue of stall-release events, so blocked cores are
 * never polled and serve-only spans run without touching the core
 * array at all.
 *
 * Both engines are command-stream identical by construction: the
 * per-round "issue in core-id order, then serve one" discipline fixes
 * the RequestQueue insertion sequence, which FR-FCFS uses for
 * tie-breaking, so any reordering would change scheduling picks. The
 * event engine therefore skips work the step engine provably wastes
 * (polls of cores whose block condition cannot have cleared) instead
 * of reordering work. The cross-engine differential harness
 * (tests/test_engine_diff.cc) pins the equivalence command-by-command.
 */

#ifndef SAM_SIM_REPLAY_ENGINE_HH
#define SAM_SIM_REPLAY_ENGINE_HH

#include <memory>
#include <string>
#include <vector>

#include "src/common/types.hh"
#include "src/controller/controller.hh"
#include "src/designs/design_model.hh"
#include "src/sim/core_port.hh"

namespace sam {

/** Which phase-2 replay loop drives the controller. */
enum class ReplayEngineKind
{
    Step,   ///< Original loop: poll every core every round.
    Event,  ///< EventQueue-driven: skip blocked cores, jump stalls.
};

const std::string &replayEngineName(ReplayEngineKind kind);

/** Parse "step"/"event"; fatal on anything else. */
ReplayEngineKind parseReplayEngine(const std::string &name);

/** The original step-walking replay loop (kept behind --engine=step). */
Cycle replayStep(const std::vector<std::unique_ptr<CorePort>> &ports,
                 MemoryController &controller, DesignModel &model,
                 unsigned mshrs_per_core);

/** The EventQueue-driven replay loop (the default engine). */
Cycle replayEvent(const std::vector<std::unique_ptr<CorePort>> &ports,
                  MemoryController &controller, DesignModel &model,
                  unsigned mshrs_per_core);

} // namespace sam

#endif // SAM_SIM_REPLAY_ENGINE_HH
