#include "src/sim/system.hh"

#include <algorithm>

#include "src/check/protocol_checker.hh"
#include "src/common/logging.hh"

namespace sam {

namespace {

unsigned
layoutIndex(LayoutKind layout)
{
    switch (layout) {
      case LayoutKind::RowStore:      return 0;
      case LayoutKind::ColumnStore:   return 1;
      case LayoutKind::SamAligned:    return 2;
      case LayoutKind::VerticalGroup: return 3;
      case LayoutKind::GsSegmented:   return 4;
    }
    panic("unknown LayoutKind");
}

} // namespace

System::System(const SimConfig &config, std::shared_ptr<TableCache> tables)
    : config_(config),
      spec_(makeDesign(config.design, config.ecc, config.tech,
                       config.overrideTech)),
      timing_(timingFor(spec_.tech).derated(spec_.areaOverhead)),
      strideUnit_(strideUnitBytes(config.ecc)),
      mapping_(geom_),
      dataPath_(spec_.ecc),
      ras_(std::make_unique<RasEngine>(config.ras)),
      tableCache_(std::move(tables))
{
    sam_assert(config.cores > 0, "need at least one core");
    dataPath_.setRasPolicy(ras_.get());
    if (config.faults.model != FaultModel::None) {
        injector_ = std::make_unique<FaultInjector>(config.faults);
        dataPath_.setFaultHook(injector_.get());
    }
}

TableSchema
System::taSchema() const
{
    return TableSchema{"Ta", config_.taFields, config_.taRecords};
}

TableSchema
System::tbSchema() const
{
    return TableSchema{"Tb", config_.tbFields, config_.tbRecords};
}

LayoutKind
System::layoutFor(const Query &query) const
{
    if (spec_.kind == DesignKind::Ideal) {
        // The software ideal keeps both copies and picks per query
        // (Section 1's dual-copy approach): row store for
        // row-preferred queries and whenever the engine's cost model
        // says a column plan would read more than a record-major scan.
        const TableSchema schema =
            query.table == TableRef::Ta ? taSchema() : tbSchema();
        const unsigned gather = kCachelineBytes / strideUnit_;
        if (query.rowPreferred ||
            !choosePlan(query, schema, gather,
                        /*has_row_fallback=*/false)
                 .worthColumns) {
            return LayoutKind::RowStore;
        }
        return LayoutKind::ColumnStore;
    }
    return spec_.layout;
}

System::TablePair &
System::tablesFor(LayoutKind layout)
{
    TablePair &tp = tables_[layout];
    const unsigned gather = kCachelineBytes / strideUnit_;
    if (!tp.ta || tp.dirty) {
        // Table spacing: a power-of-two span that covers the larger
        // table's physical footprint (2x leaves room for layout
        // padding), never below the historical 1 GiB so the quick/full
        // address streams are unchanged. Paper-scale tables (10M x
        // 128 fields) spill past 1 GiB and land on a wider span.
        const std::uint64_t need =
            2 * std::max(taSchema().sizeBytes(), tbSchema().sizeBytes());
        Addr span = Addr{1} << 30;
        while (span < need)
            span <<= 1;
        const Addr ta_base =
            (Addr{layoutIndex(layout)} * 2 + 1) * span;
        const Addr tb_base =
            (Addr{layoutIndex(layout)} * 2 + 2) * span;
        tp.ta = std::make_unique<Table>(taSchema(), ta_base, layout,
                                        gather, geom_);
        tp.tb = std::make_unique<Table>(tbSchema(), tb_base, layout,
                                        gather, geom_);
        if (tableCache_) {
            dataPath_.store().install(
                tableCache_->materialized(*tp.ta, *tp.tb, spec_.ecc));
        } else {
            tp.ta->materialize(dataPath_);
            tp.tb->materialize(dataPath_);
        }
        tp.dirty = false;
    }
    return tp;
}

RunStats
System::runQuery(const Query &query)
{
    TablePair &tp = tablesFor(layoutFor(query));

    // Core clocks restart at zero each run; rewind the data path's
    // phase-1 clock so the fault injector and error-log buckets follow.
    dataPath_.beginRun();

    // ----- Phase 1: functional execution + trace capture -----------
    const unsigned sector_bytes =
        spec_.supportsStride ? strideUnit_ : kCachelineBytes;
    std::vector<std::unique_ptr<CorePort>> ports;
    ExecEnv env;
    for (unsigned c = 0; c < config_.cores; ++c) {
        ports.push_back(std::make_unique<CorePort>(
            c, config_.caches, sector_bytes, dataPath_));
        env.ports.push_back(ports.back().get());
    }
    env.ta = tp.ta.get();
    env.tb = tp.tb.get();
    env.useStride = spec_.supportsStride && !query.rowPreferred;
    env.strideUnit = strideUnit_;
    // Column-subarray designs avoid mid-scan field switches; a real
    // column store (the ideal case) is vectorised column-at-a-time
    // anyway.
    env.fieldMajorPreferred = spec_.strideAcrossRows ||
                              layoutFor(query) == LayoutKind::ColumnStore;
    env.computePerRecord = config_.computePerRecord;
    env.computePerValue = config_.computePerValue;
    env.barrier = [&ports] {
        for (auto &p : ports)
            p->newEpoch();
    };

    const std::uint64_t ecc_corrected_before =
        dataPath_.stats().correctedLines.value();
    const std::uint64_t ecc_uncorr_before =
        dataPath_.stats().uncorrectable.value();
    const RasStats &ras_stats = ras_->stats();
    const std::uint64_t scrubs_before =
        ras_stats.scrubWritebacks.value();
    const std::uint64_t retries_before =
        ras_stats.retriesAttempted.value();
    const std::uint64_t poisoned_before =
        ras_stats.poisonedReads.value();
    const std::uint64_t retired_before = ras_stats.linesRetired.value();

    RunStats rs;
    rs.result = executeQuery(query, env);
    for (auto &p : ports)
        p->flushCaches();

    // ----- Phase 2: timing replay -----------------------------------
    DesignModel model(spec_, mapping_, strideUnit_);
    Device device(geom_, timing_);
    MemoryController controller(device, dataPath_, mapping_, {},
                                /*functional=*/false);
    std::unique_ptr<ProtocolChecker> checker;
    if (config_.check) {
        checker = std::make_unique<ProtocolChecker>(geom_, timing_);
        checker->attach(device);
    }
    std::unique_ptr<Telemetry> telemetry;
    if (config_.telemetry.enabled) {
        telemetry = std::make_unique<Telemetry>(config_.telemetry, geom_,
                                                timing_);
        telemetry->attach(device);
        controller.setTelemetry(telemetry.get());
    }
    rs.cycles = replay(ports, controller, model);
    if (checker) {
        rs.checkedCommands = checker->commandCount();
        if (!checker->clean())
            panic("timing engine emitted an illegal command stream\n",
                  checker->report());
    }
    if (telemetry)
        rs.telemetry = telemetry->finish();

    // ----- Statistics ------------------------------------------------
    const DeviceStats &ds = device.stats();
    if (config_.collectStatsText) {
        std::ostringstream oss;
        StatGroup dev_group("device");
        ds.registerIn(dev_group);
        dev_group.dump(oss);
        StatGroup ctrl_group("controller");
        controller.stats().registerIn(ctrl_group);
        ctrl_group.dump(oss);
        StatGroup ecc_group("ecc");
        dataPath_.stats().registerIn(ecc_group);
        ecc_group.dump(oss);
        StatGroup engine_group("ecc." + eccSchemeName(spec_.ecc));
        dataPath_.ecc().stats().registerIn(engine_group);
        engine_group.dump(oss);
        StatGroup ras_group("ras");
        ras_->stats().registerIn(ras_group);
        ras_group.dump(oss);
        if (injector_) {
            StatGroup fault_group("faults");
            injector_->stats().registerIn(fault_group);
            fault_group.dump(oss);
        }
        for (unsigned c = 0; c < config_.cores; ++c) {
            for (unsigned lvl = 0; lvl < 3; ++lvl) {
                StatGroup cache_group(
                    "core" + std::to_string(c) + ".l" +
                    std::to_string(lvl + 1));
                ports[c]->hierarchy().level(lvl).stats().registerIn(
                    cache_group);
                cache_group.dump(oss);
            }
        }
        rs.statsText = oss.str();
    }
    rs.memReads = ds.reads.value();
    rs.memWrites = ds.writes.value();
    rs.strideReads = ds.strideReads.value();
    rs.strideWrites = ds.strideWrites.value();
    rs.activates = ds.activates.value();
    rs.rowHits = ds.rowHits.value();
    rs.rowMisses = ds.rowMisses.value();
    rs.modeSwitches = ds.modeSwitches.value();
    rs.eccCorrectedLines =
        dataPath_.stats().correctedLines.value() - ecc_corrected_before;
    rs.eccUncorrectable =
        dataPath_.stats().uncorrectable.value() - ecc_uncorr_before;
    rs.scrubWritebacks =
        ras_stats.scrubWritebacks.value() - scrubs_before;
    rs.readRetries = ras_stats.retriesAttempted.value() - retries_before;
    rs.poisonedReads =
        ras_stats.poisonedReads.value() - poisoned_before;
    rs.linesRetired = ras_stats.linesRetired.value() - retired_before;

    const double total_cas =
        static_cast<double>(rs.memReads + rs.memWrites + rs.strideReads +
                            rs.strideWrites);
    const double stride_frac = total_cas > 0
        ? (rs.strideReads + rs.strideWrites) / total_cas
        : 0.0;
    const unsigned chips = spec_.ecc == EccScheme::None ? 16 : 18;
    const PowerModel pm(iddFor(spec_.tech), timing_, chips, spec_.power);
    rs.power = pm.compute(ds, rs.cycles, stride_frac);

    if (query.kind == QueryKind::Update ||
        query.kind == QueryKind::Insert) {
        tp.dirty = true;
    }
    return rs;
}

Cycle
System::replay(const std::vector<std::unique_ptr<CorePort>> &ports,
               MemoryController &controller, DesignModel &model)
{
    if (config_.engine == ReplayEngineKind::Step) {
        return replayStep(ports, controller, model,
                          config_.mshrsPerCore);
    }
    return replayEvent(ports, controller, model, config_.mshrsPerCore);
}

} // namespace sam
